// Online provisioning (Section VII-B / VIII-C): requests arrive one by one
// on SoftLayer; link and VM prices follow the Fortz-Thorup load costs, so
// every embedding steers around congestion created by its predecessors.

#include <iostream>

#include "sofe/api/registry.hpp"
#include "sofe/online/simulator.hpp"
#include "sofe/util/table.hpp"

using namespace sofe;

int main() {
  const auto topo = topology::softlayer();
  online::OnlineConfig cfg;
  cfg.requests = 20;
  cfg.min_destinations = 5;
  cfg.max_destinations = 9;
  cfg.min_sources = 4;
  cfg.max_sources = 6;
  cfg.chain_length = 3;
  cfg.vms_per_dc = 5;
  cfg.seed = 42;

  std::cout << "Online provisioning on SoftLayer: " << cfg.requests
            << " sequential requests, |D|~U[" << cfg.min_destinations << ","
            << cfg.max_destinations << "], |S|~U[" << cfg.min_sources << ","
            << cfg.max_sources << "], |C|=" << cfg.chain_length << "\n\n";

  // Persistent sessions: each solver keeps its shortest-path workspaces
  // across the arrival stream (only link/VM prices change between requests).
  const auto sofda = api::make_solver("sofda");
  const auto est = api::make_solver("baseline/est");
  const auto sofda_r = online::simulate(topo, cfg, *sofda);
  const auto est_r = online::simulate(topo, cfg, *est);

  util::Table table({"#request", "SOFDA cum. cost", "eST cum. cost"});
  for (int i = 0; i < cfg.requests; i += 2) {
    table.add_row({std::to_string(i + 1),
                   util::Table::num(sofda_r.accumulative_cost[static_cast<std::size_t>(i)], 1),
                   util::Table::num(est_r.accumulative_cost[static_cast<std::size_t>(i)], 1)});
  }
  table.print();
  std::cout << "\noverloaded links after the sequence: SOFDA " << sofda_r.overloaded_links
            << ", eST " << est_r.overloaded_links << "\n";
  const double saving = 100.0 * (1.0 - sofda_r.accumulative_cost.back() /
                                           est_r.accumulative_cost.back());
  std::cout << "SOFDA total saving vs eST: " << util::Table::num(saving, 1) << " %\n";
  return 0;
}
