// Quickstart: build a small software-defined cloud network, embed a service
// overlay forest with SOFDA, and inspect the result.
//
//   $ ./example_quickstart
//
// Walks through the library's core loop: Problem -> sofda() -> ServiceForest
// -> validate/cost, plus a comparison against SOFDA-SS, the baselines and
// the exact optimum on this small instance.

#include <iostream>

#include "sofe/baselines/baselines.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/core/sofda_ss.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/exact/solver.hpp"

using namespace sofe;

int main() {
  // A 10-node network: two sources (0, 5), two destinations (4, 9), four
  // candidate VMs (2, 3, 6, 7), and a chain of two VNFs, e.g. a transcoder
  // followed by a watermarker.
  core::Problem p;
  p.network = core::Graph(10);
  // Ring with chords (costs = link connection costs).
  const std::vector<std::tuple<int, int, double>> links = {
      {0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}, {4, 5, 2.0},
      {5, 6, 1.0}, {6, 7, 1.0}, {7, 8, 1.0}, {8, 9, 1.0}, {9, 0, 2.0},
      {1, 6, 3.0}, {3, 8, 3.0},
  };
  for (const auto& [u, v, c] : links) {
    p.network.add_edge(static_cast<core::NodeId>(u), static_cast<core::NodeId>(v), c);
  }
  p.node_cost = {0, 0, 2.0, 1.5, 0, 0, 1.0, 2.5, 0, 0};  // VM setup costs
  p.is_vm = {0, 0, 1, 1, 0, 0, 1, 1, 0, 0};
  p.sources = {0, 5};
  p.destinations = {4, 9};
  p.chain_length = 2;

  std::cout << "SOF instance: " << p.network.node_count() << " nodes, "
            << p.network.edge_count() << " links, |S|=" << p.sources.size()
            << ", |D|=" << p.destinations.size() << ", |C|=" << p.chain_length << "\n\n";

  // --- the headline algorithm: SOFDA (3*rhoST approximation) ---
  core::SofdaStats stats;
  const auto forest = core::sofda(p, {}, &stats);
  std::cout << "SOFDA result:\n" << core::describe(p, forest);
  const auto report = core::validate(p, forest);
  std::cout << "feasible: " << (report.ok ? "yes" : report.summary()) << "\n";
  std::cout << "candidate chains priced: " << stats.candidate_chains
            << ", deployed: " << stats.deployed_chains
            << ", VNF conflicts resolved: " << stats.conflicts.total_resolved() << "\n\n";

  // --- alternatives on the same instance ---
  const auto f_ss = core::sofda_ss(p, p.sources.front());
  const auto f_est = baselines::run(p, baselines::Kind::kEst);
  const auto f_st = baselines::run(p, baselines::Kind::kSt);
  const auto exact = exact::solve_exact(p);
  std::cout << "cost comparison:\n";
  std::cout << "  SOFDA     " << core::total_cost(p, forest) << "\n";
  std::cout << "  SOFDA-SS  " << core::total_cost(p, f_ss) << "  (single source "
            << p.sources.front() << ")\n";
  std::cout << "  eST       " << core::total_cost(p, f_est) << "\n";
  std::cout << "  ST        " << core::total_cost(p, f_st) << "\n";
  std::cout << "  optimum   " << exact.cost << "  (exact branch-and-bound, "
            << exact.bnb_nodes << " nodes)\n";
  return 0;
}
