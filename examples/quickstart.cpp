// Quickstart: build a small software-defined cloud network, embed a service
// overlay forest with SOFDA, and inspect the result.
//
//   $ ./example_quickstart
//
// Walks through the library's core loop: Problem -> Solver -> ServiceForest
// -> validate/cost.  Algorithms are selected by name from the solver
// registry; the same session object can embed many instances, reusing its
// shortest-path workspaces (see DESIGN.md "API layer").

#include <iostream>

#include "sofe/api/registry.hpp"
#include "sofe/core/validate.hpp"

using namespace sofe;

int main() {
  // A 10-node network: two sources (0, 5), two destinations (4, 9), four
  // candidate VMs (2, 3, 6, 7), and a chain of two VNFs, e.g. a transcoder
  // followed by a watermarker.
  core::Problem p;
  p.network = core::Graph(10);
  // Ring with chords (costs = link connection costs).
  const std::vector<std::tuple<int, int, double>> links = {
      {0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}, {4, 5, 2.0},
      {5, 6, 1.0}, {6, 7, 1.0}, {7, 8, 1.0}, {8, 9, 1.0}, {9, 0, 2.0},
      {1, 6, 3.0}, {3, 8, 3.0},
  };
  for (const auto& [u, v, c] : links) {
    p.network.add_edge(static_cast<core::NodeId>(u), static_cast<core::NodeId>(v), c);
  }
  p.node_cost = {0, 0, 2.0, 1.5, 0, 0, 1.0, 2.5, 0, 0};  // VM setup costs
  p.is_vm = {0, 0, 1, 1, 0, 0, 1, 1, 0, 0};
  p.sources = {0, 5};
  p.destinations = {4, 9};
  p.chain_length = 2;

  std::cout << "SOF instance: " << p.network.node_count() << " nodes, "
            << p.network.edge_count() << " links, |S|=" << p.sources.size()
            << ", |D|=" << p.destinations.size() << ", |C|=" << p.chain_length << "\n\n";

  // --- the headline algorithm: SOFDA (3*rhoST approximation) ---
  const auto sofda = api::make_solver("sofda");
  const auto forest = sofda->solve(p);
  std::cout << "SOFDA result:\n" << core::describe(p, forest);
  const auto report = core::validate(p, forest);
  std::cout << "feasible: " << (report.ok ? "yes" : report.summary()) << "\n";
  const auto& stats = sofda->report().sofda;
  std::cout << "candidate chains priced: " << stats.candidate_chains
            << ", deployed: " << stats.deployed_chains
            << ", VNF conflicts resolved: " << stats.conflicts.total_resolved() << "\n\n";

  // --- every other registered algorithm on the same instance ---
  std::cout << "cost comparison (all registry entries):\n";
  std::cout << "  sofda                 " << sofda->report().total_cost << "\n";
  for (const auto& name : api::SolverRegistry::global().names()) {
    if (name == "sofda") continue;
    const auto solver = api::make_solver(name);
    (void)solver->solve(p);
    std::cout << "  " << name;
    for (std::size_t pad = name.size(); pad < 22; ++pad) std::cout << ' ';
    if (!solver->report().feasible) {
      std::cout << "infeasible\n";
      continue;
    }
    std::cout << solver->report().total_cost;
    if (name == "exact") std::cout << "  (optimum; " << solver->report().bnb_nodes << " BnB nodes)";
    std::cout << "\n";
  }
  return 0;
}
