// Video CDN scenario (the paper's motivating application): multiple video
// source servers on the Cogent backbone push a live stream through a
// transcode -> watermark -> package chain to regional edge nodes.  The
// example embeds the forest with SOFDA and the baselines, then estimates
// viewer QoE with the streaming emulator.

#include <iostream>

#include "sofe/api/registry.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/qoe/streaming.hpp"
#include "sofe/topology/topology.hpp"
#include "sofe/util/table.hpp"

using namespace sofe;

int main() {
  const auto topo = topology::cogent();
  topology::ProblemConfig cfg;
  cfg.num_vms = 30;          // transcoder/watermarker/packager slots in 40 DCs
  cfg.num_sources = 4;       // ingest points
  cfg.num_destinations = 12; // regional edge nodes / DSLAM-level proxies
  cfg.chain_length = 3;      // transcode -> watermark -> package
  cfg.seed = 20170605;
  const auto p = topology::make_problem(topo, cfg);

  std::cout << "Live-streaming CDN on Cogent: " << topo.g.node_count() << " nodes, "
            << topo.g.edge_count() << " links, " << topo.dc_nodes.size() << " DCs\n"
            << "ingest points: " << p.sources.size() << ", edges served: "
            << p.destinations.size() << ", chain: transcode->watermark->package\n\n";

  struct Entry {
    const char* name;
    core::ServiceForest forest;
  };
  Entry entries[] = {
      {"SOFDA", api::make_solver("sofda")->solve(p)},
      {"eNEMP", api::make_solver("baseline/enemp")->solve(p)},
      {"eST", api::make_solver("baseline/est")->solve(p)},
      {"ST", api::make_solver("baseline/st")->solve(p)},
  };

  util::Table table({"algorithm", "total cost", "setup", "connection", "trees", "VMs"});
  for (const auto& e : entries) {
    if (e.forest.empty()) continue;
    const auto report = core::validate(p, e.forest);
    if (!report.ok) {
      std::cout << e.name << " produced an infeasible forest: " << report.summary() << "\n";
      continue;
    }
    table.add_row({e.name, util::Table::num(core::total_cost(p, e.forest), 2),
                   util::Table::num(core::setup_cost(p, e.forest), 2),
                   util::Table::num(core::connection_cost(p, e.forest), 2),
                   std::to_string(e.forest.used_sources().size()),
                   std::to_string(e.forest.enabled_vms().size())});
  }
  table.print();

  // Viewer QoE estimate for the SOFDA embedding (flow-level emulation).
  qoe::StreamingConfig q;
  q.physical_edges = topo.g.edge_count();
  q.min_link_mbps = 6.0;
  q.max_link_mbps = 12.0;
  q.trials = 100;
  const auto r = qoe::evaluate_streaming(p, entries[0].forest, q);
  std::cout << "\nviewer QoE under 6-12 Mb/s links (SOFDA embedding):\n"
            << "  avg startup latency " << r.avg_startup_latency_s << " s\n"
            << "  avg re-buffering    " << r.avg_rebuffering_s << " s\n"
            << "  avg throughput      " << r.avg_throughput_mbps << " Mb/s\n";
  return 0;
}
