// Multi-controller embedding (Section VI): the same request embedded by 1,
// 2, 4 and 6 cooperating SDN controllers.  Shows the message/round protocol
// overhead and that the distributed pipeline lands on the same Steiner
// certificate as the centralized one.

#include <iostream>

#include "sofe/api/registry.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/topology/topology.hpp"
#include "sofe/util/table.hpp"

using namespace sofe;

int main() {
  const auto topo = topology::cogent();
  topology::ProblemConfig cfg;
  cfg.num_vms = 20;
  cfg.num_sources = 5;
  cfg.num_destinations = 8;
  cfg.chain_length = 2;
  cfg.seed = 6;
  const auto p = topology::make_problem(topo, cfg);

  const auto central_solver = api::make_solver("sofda");
  (void)central_solver->solve(p);
  std::cout << "Cogent request, centralized SOFDA cost: " << central_solver->report().total_cost
            << " (certificate " << central_solver->report().sofda.steiner_tree_cost << ")\n\n";

  util::Table table({"controllers", "forest cost", "certificate", "messages",
                     "payload KB", "rounds", "feasible"});
  for (int k : {1, 2, 4, 6}) {
    const auto solver = api::make_solver("dist/k=" + std::to_string(k));
    const auto forest = solver->solve(p);
    const auto& r = solver->report();
    const auto report = core::validate(p, forest);
    table.add_row({std::to_string(k), util::Table::num(r.total_cost, 2),
                   util::Table::num(r.sofda.steiner_tree_cost, 2),
                   std::to_string(r.messages),
                   util::Table::num(static_cast<double>(r.payload_bytes) / 1024.0, 1),
                   std::to_string(r.rounds), report.ok ? "yes" : "NO"});
  }
  table.print();
  std::cout << "\nThe certificate (the Steiner tree cost in the auxiliary graph) is\n"
               "identical for every controller count: each controller builds the\n"
               "closure of its own domain and ships only its border/hub rows, and\n"
               "the coordinator's stitched view is bitwise the global closure\n"
               "(DESIGN.md §11) — so chain pricing is exact everywhere.\n";
  return 0;
}
