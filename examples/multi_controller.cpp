// Multi-controller embedding (Section VI): the same request embedded by 1,
// 2, 4 and 6 cooperating SDN controllers.  Shows the message/round protocol
// overhead and that the distributed pipeline lands on the same Steiner
// certificate as the centralized one.

#include <iostream>

#include "sofe/core/sofda.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/dist/dist_sofda.hpp"
#include "sofe/topology/topology.hpp"
#include "sofe/util/table.hpp"

using namespace sofe;

int main() {
  const auto topo = topology::cogent();
  topology::ProblemConfig cfg;
  cfg.num_vms = 20;
  cfg.num_sources = 5;
  cfg.num_destinations = 8;
  cfg.chain_length = 2;
  cfg.seed = 6;
  const auto p = topology::make_problem(topo, cfg);

  core::SofdaStats central_stats;
  const auto central = core::sofda(p, {}, &central_stats);
  std::cout << "Cogent request, centralized SOFDA cost: " << core::total_cost(p, central)
            << " (certificate " << central_stats.steiner_tree_cost << ")\n\n";

  util::Table table({"controllers", "forest cost", "certificate", "messages",
                     "payload items", "rounds", "feasible"});
  for (int k : {1, 2, 4, 6}) {
    const auto r = dist::distributed_sofda(p, k);
    const auto report = core::validate(p, r.forest);
    table.add_row({std::to_string(k), util::Table::num(core::total_cost(p, r.forest), 2),
                   util::Table::num(r.stats.steiner_tree_cost, 2),
                   std::to_string(r.messages), std::to_string(r.payload_items),
                   std::to_string(r.rounds), report.ok ? "yes" : "NO"});
  }
  table.print();
  std::cout << "\nThe certificate (the Steiner tree cost in the auxiliary graph) is\n"
               "identical for every controller count: the controllers exchange\n"
               "border-distance matrices, so chain pricing is exact everywhere.\n";
  return 0;
}
