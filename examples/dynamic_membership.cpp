// Dynamic group membership and chain updates (Section VII-C): start from a
// SOFDA embedding, then play an IPTV-style day: viewers join and leave, the
// operator inserts an ad-insertion VNF mid-stream, a link congests and the
// forest reroutes around it.

#include <algorithm>
#include <iostream>

#include "sofe/api/registry.hpp"
#include "sofe/core/dynamic.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/topology/topology.hpp"

using namespace sofe;

namespace {

void report(const char* what, const core::DynamicForest& live) {
  const auto r = core::validate(live.problem(), live.forest());
  std::cout << what << ": cost " << live.cost() << ", walks "
            << live.forest().walks.size() << ", VMs "
            << live.forest().enabled_vms().size() << ", chain |C|="
            << live.problem().chain_length << ", feasible "
            << (r.ok ? "yes" : r.summary()) << "\n";
}

}  // namespace

int main() {
  topology::ProblemConfig cfg;
  cfg.num_vms = 15;
  cfg.num_sources = 4;
  cfg.num_destinations = 5;
  cfg.chain_length = 2;
  cfg.seed = 99;
  auto p = topology::make_problem(topology::softlayer(), cfg);
  auto f = api::make_solver("sofda")->solve(p);
  core::DynamicForest live(std::move(p), std::move(f));
  report("initial SOFDA embedding", live);

  // Two viewers join from new edge nodes.
  int joined = 0;
  for (core::NodeId v = 0; v < 27 && joined < 2; ++v) {
    const auto& d = live.problem().destinations;
    const auto& s = live.problem().sources;
    if (std::find(d.begin(), d.end(), v) == d.end() &&
        std::find(s.begin(), s.end(), v) == s.end()) {
      if (live.destination_join(v)) {
        ++joined;
        std::cout << "  + viewer at node " << v << " joins\n";
      }
    }
  }
  report("after 2 joins", live);

  // One viewer leaves.
  const auto leaver = live.problem().destinations.front();
  live.destination_leave(leaver);
  std::cout << "  - viewer at node " << leaver << " leaves\n";
  report("after leave", live);

  // The operator inserts an ad-insertion VNF as the new f2.
  if (live.vnf_insert(2)) std::cout << "  * ad-insertion VNF spliced in as f2\n";
  report("after VNF insert", live);

  // A backbone link congests: reprice it and reroute.
  for (const auto& se : live.forest().stage_edges()) {
    const auto e = live.problem().network.find_edge(se.u, se.v);
    if (live.problem().network.edge(e).cost > 0.0) {
      const int n = live.reroute_link(e, live.problem().network.edge(e).cost * 40.0);
      std::cout << "  ! link " << se.u << "-" << se.v << " congested; " << n
                << " segment(s) rerouted\n";
      break;
    }
  }
  report("after congestion reroute", live);

  // Finally the transcoder VNF is retired.
  if (live.vnf_delete(1)) std::cout << "  * f1 retired from the chain\n";
  report("final state", live);
  return 0;
}
