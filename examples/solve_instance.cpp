// CLI driver: solve a SOF instance file with any algorithm in the library.
//
//   example_solve_instance [--algo sofda|sofda-ss|est|enemp|st|exact]
//                          [--dot out.dot] [instance.txt]
//
// Without an instance file, a demo instance is generated, saved to
// /tmp/sofe_demo_instance.txt and solved — so running the binary bare shows
// the full load -> solve -> export loop.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "sofe/api/registry.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/io/io.hpp"
#include "sofe/topology/topology.hpp"

using namespace sofe;

namespace {

void usage() {
  std::cout << "usage: example_solve_instance [--algo NAME] [--dot FILE] [instance.txt]\n"
               "  NAME is a solver-registry name; short aliases st/est/enemp also work.\n"
               "  registered solvers:\n";
  for (const auto& name : api::SolverRegistry::global().names()) {
    std::cout << "    " << name;
    for (std::size_t pad = name.size(); pad < 20; ++pad) std::cout << ' ';
    std::cout << api::SolverRegistry::global().describe(name) << "\n";
  }
}

/// Pre-registry spellings kept as aliases.
std::string canonical_algo(const std::string& algo) {
  if (algo == "st") return "baseline/st";
  if (algo == "est") return "baseline/est";
  if (algo == "enemp") return "baseline/enemp";
  return algo;
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = "sofda";
  std::string dot_path;
  std::string instance_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--algo") == 0 && i + 1 < argc) {
      algo = argv[++i];
    } else if (std::strcmp(argv[i], "--dot") == 0 && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage();
      return 0;
    } else {
      instance_path = argv[i];
    }
  }

  core::Problem p;
  if (instance_path.empty()) {
    topology::ProblemConfig cfg;
    cfg.num_vms = 10;
    cfg.num_sources = 3;
    cfg.num_destinations = 4;
    cfg.chain_length = 2;
    cfg.seed = 12;
    p = topology::make_problem(topology::softlayer(), cfg);
    instance_path = "/tmp/sofe_demo_instance.txt";
    io::save_instance(p, instance_path);
    std::cout << "no instance given; demo instance written to " << instance_path << "\n";
  } else {
    try {
      p = io::load_instance(instance_path);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  std::cout << "instance: " << p.network.node_count() << " nodes, "
            << p.network.edge_count() << " links, |M|=" << p.vms().size()
            << ", |S|=" << p.sources.size() << ", |D|=" << p.destinations.size()
            << ", |C|=" << p.chain_length << "\n";

  const std::string name = canonical_algo(algo);
  if (!api::SolverRegistry::global().contains(name)) {
    usage();
    return 1;
  }
  const auto solver = api::make_solver(name);
  const core::ServiceForest forest = solver->solve(p);
  if (name == "exact") {
    if (!solver->report().optimal) {
      std::cerr << "exact solver could not prove optimality within limits\n";
      return 2;
    }
    std::cout << "(optimum proven; " << solver->report().bnb_nodes
              << " branch-and-bound nodes)\n";
  }

  if (forest.empty()) {
    std::cerr << "no feasible forest found\n";
    return 2;
  }
  const auto report = core::validate(p, forest);
  std::cout << core::describe(p, forest);
  std::cout << "feasible: " << (report.ok ? "yes" : report.summary()) << "\n";
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    out << io::to_dot(p, forest);
    std::cout << "DOT written to " << dot_path << " (render: neato -Tpdf)\n";
  }
  return report.ok ? 0 : 3;
}
