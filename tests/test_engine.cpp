// Tests for the CSR graph core and the reusable ShortestPathEngine: CSR /
// adjacency agreement, workspace-reuse correctness across repeated queries,
// targeted/bounded variants, the multi-source smaller-owner tie-break
// invariant, path_to edge cases, and bit-identical multi-threaded
// MetricClosure construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sofe/graph/dijkstra.hpp"
#include "sofe/graph/metric_closure.hpp"
#include "sofe/graph/oracles.hpp"
#include "sofe/graph/shortest_path_engine.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::graph {
namespace {

Graph random_connected(util::Rng& rng, int n, double extra_edge_prob,
                       bool integer_costs = false) {
  Graph g(n);
  auto cost = [&] {
    return integer_costs ? static_cast<Cost>(rng.uniform_int(1, 6)) : rng.uniform(0.5, 10.0);
  };
  for (NodeId v = 1; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>(rng.index(static_cast<std::size_t>(v))), cost());
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(extra_edge_prob)) g.add_edge(u, v, cost());
    }
  }
  return g;
}

TEST(Csr, MatchesAdjacencyListsArcForArc) {
  util::Rng rng(7);
  const Graph g = random_connected(rng, 40, 0.2);
  const CsrView& csr = g.csr();
  ASSERT_EQ(csr.offsets.size(), static_cast<std::size_t>(g.node_count()) + 1);
  ASSERT_EQ(csr.arcs.size(), 2 * static_cast<std::size_t>(g.edge_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto arcs = g.neighbors(v);
    ASSERT_EQ(static_cast<std::size_t>(csr.end(v) - csr.begin(v)), arcs.size());
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      const CsrArc& a = csr.arcs[static_cast<std::size_t>(csr.begin(v)) + i];
      EXPECT_EQ(a.to, arcs[i].to);
      EXPECT_EQ(a.edge, arcs[i].edge);
      EXPECT_DOUBLE_EQ(a.cost, g.edge(arcs[i].edge).cost);
    }
  }
}

TEST(Csr, CostRefreshWithoutStructuralRebuild) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  const std::uint64_t v0 = g.version();
  (void)g.csr();
  g.set_edge_cost(e, 5.5);
  EXPECT_GT(g.version(), v0);
  const CsrView& csr = g.csr();
  for (std::int32_t i = csr.begin(0); i < csr.end(0); ++i) {
    EXPECT_DOUBLE_EQ(csr.arcs[static_cast<std::size_t>(i)].cost, 5.5);
  }
}

TEST(Csr, StructuralMutationRebuilds) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  (void)g.csr();
  const NodeId w = g.add_node();
  g.add_edge(1, w, 3.0);
  const CsrView& csr = g.csr();
  ASSERT_EQ(csr.offsets.size(), 4u);
  EXPECT_EQ(csr.end(1) - csr.begin(1), 2);
  EXPECT_EQ(csr.arcs[static_cast<std::size_t>(csr.begin(w))].to, 1);
}

TEST(Csr, CopyDropsCacheButStaysCorrect) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  (void)g.csr();
  Graph copy = g;
  copy.set_edge_cost(0, 9.0);
  EXPECT_DOUBLE_EQ(copy.csr().arcs[static_cast<std::size_t>(copy.csr().begin(0))].cost, 9.0);
  // The original's cache is untouched by the copy's mutation.
  EXPECT_DOUBLE_EQ(g.csr().arcs[static_cast<std::size_t>(g.csr().begin(0))].cost, 1.0);
}

class EngineRandom : public ::testing::TestWithParam<int> {};

TEST_P(EngineRandom, RunMatchesOneShotDijkstraAndBellmanFord) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const int n = rng.uniform_int(5, 40);
  const Graph g = random_connected(rng, n, 0.15);
  ShortestPathEngine engine(g);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto& t = engine.run(s);
    const auto reference = dijkstra(g, s);
    const auto bf = bellman_ford(g, s);
    // Bit-identical to the one-shot free function, value-close to the oracle.
    EXPECT_EQ(t.dist, reference.dist);
    EXPECT_EQ(t.parent, reference.parent);
    EXPECT_EQ(t.parent_edge, reference.parent_edge);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_NEAR(t.distance(v), bf[static_cast<std::size_t>(v)], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandom, ::testing::Range(1, 9));

TEST(Engine, RepeatedRunsLeaveNoResidue) {
  // A bounded run touches few nodes; the following full run must be exact
  // everywhere (the touched-list reset is what this pins down).
  util::Rng rng(42);
  const Graph g = random_connected(rng, 60, 0.1);
  ShortestPathEngine engine(g);
  const auto baseline = dijkstra(g, 7);
  (void)engine.run_bounded(3, 1.0);
  (void)engine.run_to(11, 12);
  const auto& t = engine.run(7);
  EXPECT_EQ(t.dist, baseline.dist);
  EXPECT_EQ(t.parent, baseline.parent);
}

TEST(Engine, RunToSettlesTargetExactly) {
  util::Rng rng(9);
  const Graph g = random_connected(rng, 50, 0.12);
  ShortestPathEngine engine(g);
  for (int trial = 0; trial < 20; ++trial) {
    const auto s = static_cast<NodeId>(rng.index(50));
    const auto d = static_cast<NodeId>(rng.index(50));
    const Cost expect = dijkstra(g, s).distance(d);
    EXPECT_DOUBLE_EQ(engine.distance(s, d), expect);
    const auto& t = engine.run_to(s, d);
    const auto path = t.path_to(d);
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), d);
    Cost walked = 0.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      walked += g.edge(g.find_edge(path[i], path[i + 1])).cost;
    }
    EXPECT_NEAR(walked, expect, 1e-9);
  }
}

TEST(Engine, RunBoundedSettlesEverythingWithinLimit) {
  util::Rng rng(13);
  const Graph g = random_connected(rng, 50, 0.12);
  ShortestPathEngine engine(g);
  const auto full = dijkstra(g, 0);
  const Cost limit = 8.0;
  const auto& t = engine.run_bounded(0, limit);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (full.distance(v) <= limit) {
      EXPECT_DOUBLE_EQ(t.distance(v), full.distance(v));
    } else if (t.reachable(v)) {
      // Beyond the limit entries may exist only as valid upper bounds.
      EXPECT_GE(t.distance(v) + 1e-12, full.distance(v));
    }
  }
}

TEST(Engine, UnreachableStaysInfinite) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  ShortestPathEngine engine(g);
  const auto& t = engine.run(0);
  EXPECT_FALSE(t.reachable(2));
  EXPECT_FALSE(t.reachable(3));
  EXPECT_DOUBLE_EQ(t.distance(1), 1.0);
}

TEST(PathTo, SourceEqualsTargetIsSingleton) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const auto t = dijkstra(g, 1);
  EXPECT_EQ(t.path_to(1), std::vector<NodeId>{1});
}

#ifndef NDEBUG
using PathToDeathTest = ::testing::Test;

TEST(PathToDeathTest, UnreachableTargetAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Graph g(3);
  g.add_edge(0, 1, 1.0);  // node 2 isolated
  const auto t = dijkstra(g, 0);
  EXPECT_DEATH({ (void)t.path_to(2); }, "reachable");
}
#endif

TEST(MultiSource, EqualDistanceGoesToSmallerSourceId) {
  // d(0, 2) = 5 via 0-1-2; d(3, 2) = 5 directly.  The old visit-order
  // tie-break settled node 3's relaxation first and handed 2 to owner 3;
  // the lexicographic (dist, owner) labels must hand it to 0.
  Graph g(4);
  g.add_edge(0, 1, 4.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 2, 5.0);
  const auto vor = multi_source_dijkstra(g, {0, 3});
  EXPECT_DOUBLE_EQ(vor.dist[2], 5.0);
  EXPECT_EQ(vor.owner[2], 0);
}

TEST(MultiSource, SeedProtectionShadowsNodesBehindTheProtectedSource) {
  // Sources 0 and 5 joined by a zero-cost edge; w hangs off 5.  Source 5
  // keeps its own cell (seed protection), and because labels never
  // propagate through a protected seed, w — reachable only via 5 — keeps
  // owner 5 even though d(0, w) == d(5, w) == 1.  This pins the documented
  // zero-cost-tie semantics of the (dist, owner) label order.
  Graph g(6);
  g.add_edge(0, 5, 0.0);
  const NodeId w = 1;
  g.add_edge(5, w, 1.0);
  const auto vor = multi_source_dijkstra(g, {0, 5});
  EXPECT_EQ(vor.owner[5], 5);
  EXPECT_EQ(vor.owner[0], 0);
  EXPECT_DOUBLE_EQ(vor.dist[static_cast<std::size_t>(w)], 1.0);
  EXPECT_EQ(vor.owner[static_cast<std::size_t>(w)], 5);
}

class MultiSourceRandom : public ::testing::TestWithParam<int> {};

TEST_P(MultiSourceRandom, OwnerIsSmallestAmongNearestSources) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 17);
  const int n = rng.uniform_int(8, 40);
  // Integer costs force plenty of exact distance ties.
  const Graph g = random_connected(rng, n, 0.2, /*integer_costs=*/true);
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (rng.chance(0.25)) sources.push_back(v);
  }
  if (sources.empty()) sources.push_back(static_cast<NodeId>(n - 1));

  const auto vor = multi_source_dijkstra(g, sources);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    Cost best = kInfiniteCost;
    NodeId best_src = kInvalidNode;
    for (NodeId s : sources) {  // sources ascend, so first minimum = smallest id
      const Cost d = dijkstra(g, s).distance(v);
      if (d < best) {
        best = d;
        best_src = s;
      }
    }
    EXPECT_NEAR(vor.dist[static_cast<std::size_t>(v)], best, 1e-9);
    EXPECT_EQ(vor.owner[static_cast<std::size_t>(v)], best_src) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiSourceRandom, ::testing::Range(1, 9));

TEST(MultiSource, ParentChainStaysInsideOwnersCell) {
  util::Rng rng(23);
  const Graph g = random_connected(rng, 40, 0.2, /*integer_costs=*/true);
  const std::vector<NodeId> sources{1, 9, 21};
  const auto vor = multi_source_dijkstra(g, sources);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (vor.parent[vi] == kInvalidNode) continue;
    const auto pi = static_cast<std::size_t>(vor.parent[vi]);
    EXPECT_EQ(vor.owner[pi], vor.owner[vi]);
    EXPECT_NEAR(vor.dist[pi] + g.edge(vor.parent_edge[vi]).cost, vor.dist[vi], 1e-9);
  }
}

TEST(MultiSource, EngineAgreesWithFreeFunction) {
  util::Rng rng(31);
  const Graph g = random_connected(rng, 35, 0.15, /*integer_costs=*/true);
  const std::vector<NodeId> sources{0, 5, 6, 17};
  ShortestPathEngine engine(g);
  (void)engine.run(3);  // dirty the workspaces first
  const auto& a = engine.run_multi(sources);
  const auto b = multi_source_dijkstra(g, sources);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.owner, b.owner);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.parent_edge, b.parent_edge);
}

TEST(MetricClosureThreads, BitIdenticalForAnyThreadCount) {
  util::Rng rng(77);
  const Graph g = random_connected(rng, 120, 0.05);
  std::vector<NodeId> hubs;
  for (NodeId v = 0; v < g.node_count(); v += 3) hubs.push_back(v);
  hubs.push_back(hubs.front());  // duplicate tolerated

  const MetricClosure solo(g, hubs, 1);
  for (int threads : {2, 3, 8}) {
    const MetricClosure par(g, hubs, threads);
    for (NodeId h : hubs) {
      ASSERT_TRUE(par.is_hub(h));
      const ShortestPathTree p = par.tree(h).materialize();
      const ShortestPathTree s = solo.tree(h).materialize();
      EXPECT_EQ(p.source, s.source);
      EXPECT_EQ(p.dist, s.dist);          // bitwise doubles
      EXPECT_EQ(p.parent, s.parent);
      EXPECT_EQ(p.parent_edge, s.parent_edge);
    }
  }
}

TEST(MetricClosure, TapDerivedTreesBitIdenticalToFullRuns) {
  // Hubs attached by zero-cost degree-1 taps (the library's VM attachment)
  // get their trees derived from the host tree; the result must equal a
  // full Dijkstra from the tap, bit for bit — dist, parent and parent_edge.
  util::Rng rng(55);
  Graph g = random_connected(rng, 60, 0.1);
  std::vector<NodeId> hubs;
  for (int i = 0; i < 12; ++i) {
    const auto host = static_cast<NodeId>(rng.index(60));  // several taps share hosts
    const NodeId vm = g.add_node();
    g.add_edge(vm, host, 0.0);
    hubs.push_back(vm);
  }
  hubs.push_back(3);  // one backbone hub that is also a tap host candidate
  const MetricClosure mc(g, hubs, 1);
  for (NodeId h : hubs) {
    const auto full = dijkstra(g, h);
    const ShortestPathTree got = mc.tree(h).materialize();
    EXPECT_EQ(got.source, h);
    EXPECT_EQ(got.dist, full.dist);
    EXPECT_EQ(got.parent, full.parent);
    EXPECT_EQ(got.parent_edge, full.parent_edge);
  }
}

TEST(MetricClosure, MutualZeroCostTapsFallBackToFullRuns) {
  // Two nodes joined by one zero-cost edge and nothing else: both are
  // "taps" of each other; derivation must not chase the cycle.
  Graph g(4);
  g.add_edge(0, 1, 0.0);
  g.add_edge(2, 3, 1.0);
  const MetricClosure mc(g, {0, 1}, 1);
  EXPECT_DOUBLE_EQ(mc.distance(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(mc.distance(1, 0), 0.0);
  EXPECT_FALSE(mc.tree(0).reachable(2));
}

TEST(MetricClosureThreads, TapDerivationBitIdenticalAcrossThreads) {
  util::Rng rng(66);
  Graph g = random_connected(rng, 80, 0.08);
  std::vector<NodeId> hubs;
  for (int i = 0; i < 20; ++i) {
    const auto host = static_cast<NodeId>(rng.index(80));
    const NodeId vm = g.add_node();
    g.add_edge(vm, host, 0.0);
    hubs.push_back(vm);
  }
  hubs.push_back(7);
  const MetricClosure solo(g, hubs, 1);
  const MetricClosure par(g, hubs, 4);
  for (NodeId h : hubs) {
    const ShortestPathTree p = par.tree(h).materialize();
    const ShortestPathTree s = solo.tree(h).materialize();
    EXPECT_EQ(p.dist, s.dist);
    EXPECT_EQ(p.parent, s.parent);
    EXPECT_EQ(p.parent_edge, s.parent_edge);
  }
}

TEST(MetricClosureThreads, ThreadCountClampedAndUsable) {
  Graph g(2);
  g.add_edge(0, 1, 2.0);
  const MetricClosure mc(g, {0, 1}, -4);  // clamped to 1
  EXPECT_DOUBLE_EQ(mc.distance(0, 1), 2.0);
  const MetricClosure wide(g, {0, 1}, 64);  // more threads than hubs
  EXPECT_DOUBLE_EQ(wide.distance(1, 0), 2.0);
}

// ---------------------------------------------------------------- repair ---

void expect_tree_eq(const ShortestPathTree& got, const ShortestPathTree& want,
                    const char* what) {
  EXPECT_EQ(got.source, want.source) << what;
  EXPECT_EQ(got.dist, want.dist) << what;          // bitwise doubles
  EXPECT_EQ(got.parent, want.parent) << what;
  EXPECT_EQ(got.parent_edge, want.parent_edge) << what;
}

TEST(Repair, SingleDecreaseMatchesFreshRun) {
  util::Rng rng(3);
  Graph g = random_connected(rng, 30, 0.15);
  ShortestPathEngine engine(g);
  ShortestPathTree tree;
  engine.run_into(0, tree);
  const EdgeId e = 5;
  const Cost old_cost = g.edge(e).cost;
  g.set_edge_cost(e, old_cost * 0.1);
  const EdgeCostDelta delta{e, old_cost, old_cost * 0.1};
  engine.repair(tree, {&delta, 1});
  ShortestPathTree fresh;
  ShortestPathEngine(g).run_into(0, fresh);
  expect_tree_eq(tree, fresh, "decrease");
}

TEST(Repair, SingleIncreaseMatchesFreshRun) {
  util::Rng rng(4);
  Graph g = random_connected(rng, 30, 0.15);
  ShortestPathEngine engine(g);
  ShortestPathTree tree;
  engine.run_into(2, tree);
  // Increase an arc the tree actually uses so a subtree is orphaned.
  EdgeId used = kInvalidEdge;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (tree.parent_edge[static_cast<std::size_t>(v)] != kInvalidEdge) {
      used = tree.parent_edge[static_cast<std::size_t>(v)];
    }
  }
  ASSERT_NE(used, kInvalidEdge);
  const Cost old_cost = g.edge(used).cost;
  g.set_edge_cost(used, old_cost * 50.0);
  const EdgeCostDelta delta{used, old_cost, old_cost * 50.0};
  engine.repair(tree, {&delta, 1});
  ShortestPathTree fresh;
  ShortestPathEngine(g).run_into(2, fresh);
  expect_tree_eq(tree, fresh, "increase");
}

TEST(Repair, DisconnectAndReconnectViaInfiniteCost) {
  // kInfiniteCost is a legal edge cost and acts as a soft removal: the
  // repair must carry nodes to +inf/parentless and back.
  Graph g(4);  // path 0-1-2-3
  const EdgeId cut = g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  ShortestPathEngine engine(g);
  ShortestPathTree tree;
  engine.run_into(0, tree);

  g.set_edge_cost(cut, kInfiniteCost);
  const EdgeCostDelta sever{cut, 1.0, kInfiniteCost};
  engine.repair(tree, {&sever, 1});
  EXPECT_FALSE(tree.reachable(1));
  EXPECT_FALSE(tree.reachable(3));
  ShortestPathTree fresh;
  ShortestPathEngine(g).run_into(0, fresh);
  expect_tree_eq(tree, fresh, "severed");

  g.set_edge_cost(cut, 0.25);
  const EdgeCostDelta rejoin{cut, kInfiniteCost, 0.25};
  engine.repair(tree, {&rejoin, 1});
  EXPECT_DOUBLE_EQ(tree.distance(3), 2.25);
  ShortestPathEngine(g).run_into(0, fresh);
  expect_tree_eq(tree, fresh, "rejoined");
}

TEST(Repair, ZeroCostPlateauReparentsLikeAFreshRun) {
  // Plateau {7, 2} at distance 3, entered only through 7: a fresh run
  // settles 7 before 2 (2 is only discovered by 7), so node 5's parent is
  // 7 even though 2 has the smaller id.  A cost delta elsewhere must not
  // disturb that; making 2 an entry point must flip it.
  Graph g(9);
  g.add_edge(0, 8, 3.0);   // 0 -> 8, unrelated branch we can perturb
  g.add_edge(0, 7, 3.0);   // entry into the plateau
  const EdgeId plateau_edge = g.add_edge(7, 2, 0.0);
  (void)plateau_edge;
  g.add_edge(7, 5, 2.0);   // 5 attains 5.0 via 7 ...
  g.add_edge(2, 5, 2.0);   // ... and via 2, same distance
  const EdgeId into2 = g.add_edge(0, 2, 9.0);  // too long to matter, yet
  ShortestPathEngine engine(g);
  ShortestPathTree tree;
  engine.run_into(0, tree);
  ASSERT_EQ(tree.parent[5], 7);

  // Unrelated decrease: parents inside and below the plateau stay put.
  g.set_edge_cost(0, 2.5);
  const EdgeCostDelta unrelated{0, 3.0, 2.5};
  engine.repair(tree, {&unrelated, 1});
  ShortestPathTree fresh;
  ShortestPathEngine(g).run_into(0, fresh);
  expect_tree_eq(tree, fresh, "unrelated delta");
  EXPECT_EQ(tree.parent[5], 7);

  // Make 2 an entry point at the same distance 3: level-3 now pops 2 first
  // (both heap-present, smaller id), so 2 relaxes 5 first.
  g.set_edge_cost(into2, 3.0);
  const EdgeCostDelta entry{into2, 9.0, 3.0};
  engine.repair(tree, {&entry, 1});
  ShortestPathEngine(g).run_into(0, fresh);
  expect_tree_eq(tree, fresh, "new entry point");
  EXPECT_EQ(tree.parent[5], 2);
  EXPECT_EQ(tree.parent[2], 0);
}

/// Random graph with zero-cost edges mixed in (taps and plateaus) so exact
/// distance ties and preserving plateaus are common.
Graph random_tied(util::Rng& rng, int n, double extra_edge_prob) {
  Graph g(n);
  auto cost = [&]() -> Cost {
    const int r = rng.uniform_int(0, 5);
    return r == 0 ? 0.0 : static_cast<Cost>(r);
  };
  for (NodeId v = 1; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>(rng.index(static_cast<std::size_t>(v))), cost());
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(extra_edge_prob)) g.add_edge(u, v, cost());
    }
  }
  return g;
}

class RepairFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RepairFuzz, RepeatedRepairsBitIdenticalToFreshRuns) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int n = rng.uniform_int(8, 60);
  Graph g = random_tied(rng, n, 0.12);
  const auto source = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
  ShortestPathEngine engine(g);
  ShortestPathTree tree;
  engine.run_into(source, tree);

  ShortestPathEngine fresh_engine;
  ShortestPathTree fresh;
  for (int round = 0; round < 12; ++round) {
    // A batch of random cost mutations: mixed increases, decreases,
    // zero-outs, soft removals (+inf) and restores, at most one per edge.
    const int k = rng.uniform_int(1, std::max(1, g.edge_count() / 4));
    std::map<EdgeId, Cost> old_costs;
    for (int i = 0; i < k; ++i) {
      const auto e = static_cast<EdgeId>(rng.index(static_cast<std::size_t>(g.edge_count())));
      old_costs.try_emplace(e, g.edge(e).cost);
    }
    std::vector<EdgeCostDelta> deltas;
    for (const auto& [e, old_cost] : old_costs) {
      Cost next;
      switch (rng.uniform_int(0, 4)) {
        case 0: next = 0.0; break;
        case 1: next = kInfiniteCost; break;
        case 2: next = old_cost == kInfiniteCost ? 2.0 : old_cost * 0.5; break;
        default: next = static_cast<Cost>(rng.uniform_int(0, 6)); break;
      }
      g.set_edge_cost(e, next);
      deltas.push_back(EdgeCostDelta{e, old_cost, next});
    }
    engine.repair(tree, deltas);

    fresh_engine.attach(g);
    fresh_engine.run_into(source, fresh);
    ASSERT_EQ(tree.dist, fresh.dist) << "round " << round;
    ASSERT_EQ(tree.parent, fresh.parent) << "round " << round;
    ASSERT_EQ(tree.parent_edge, fresh.parent_edge) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairFuzz, ::testing::Range(1, 17));

TEST_P(RepairFuzz, TouchedListCoversEveryChangedEntry) {
  // The §9 pricing cache trusts repair's touched_out to OVER-approximate
  // the changed entries: any (dist, parent, parent_edge) that differs from
  // the pre-repair tree must be listed (or the repair reports fell_back).
  // Serving a stale chain is the failure mode if this ever under-reports,
  // so pin it with the same delta mix as the bit-identity fuzz.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6007 + 29);
  const int n = rng.uniform_int(8, 60);
  Graph g = random_tied(rng, n, 0.12);
  const auto source = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
  ShortestPathEngine engine(g);
  ShortestPathTree tree;
  engine.run_into(source, tree);

  for (int round = 0; round < 12; ++round) {
    const int k = rng.uniform_int(1, std::max(1, g.edge_count() / 4));
    std::map<EdgeId, Cost> old_costs;
    for (int i = 0; i < k; ++i) {
      const auto e = static_cast<EdgeId>(rng.index(static_cast<std::size_t>(g.edge_count())));
      old_costs.try_emplace(e, g.edge(e).cost);
    }
    std::vector<EdgeCostDelta> deltas;
    for (const auto& [e, old_cost] : old_costs) {
      Cost next;
      switch (rng.uniform_int(0, 4)) {
        case 0: next = 0.0; break;
        case 1: next = kInfiniteCost; break;
        case 2: next = old_cost == kInfiniteCost ? 2.0 : old_cost * 0.5; break;
        default: next = static_cast<Cost>(rng.uniform_int(0, 6)); break;
      }
      g.set_edge_cost(e, next);
      deltas.push_back(EdgeCostDelta{e, old_cost, next});
    }

    const ShortestPathTree before = tree;
    std::vector<NodeId> touched;
    const auto stats = engine.repair(tree, deltas, &touched);
    if (stats.fell_back) continue;  // full rewrite: no list by contract
    std::vector<bool> listed(static_cast<std::size_t>(n), false);
    for (NodeId v : touched) listed[static_cast<std::size_t>(v)] = true;
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
      if (tree.dist[i] != before.dist[i] || tree.parent[i] != before.parent[i] ||
          tree.parent_edge[i] != before.parent_edge[i]) {
        ASSERT_TRUE(listed[i]) << "round " << round << ": node " << i
                               << " changed but is not in touched_out";
        ASSERT_TRUE(stats.changed_anything());
      }
    }
  }
}

TEST(MetricClosureRefresh, RowDeltasCoverEveryChangedRow) {
  // The closure-level half of the same §9 contract: any hub row whose tree
  // changed must appear in refresh's RowDelta list, with the differing
  // nodes covered by its change set (or the row reported full).  Tap
  // groups make the derive-inheritance path part of what is pinned.
  util::Rng rng(271);
  Graph g = random_tied(rng, 60, 0.1);
  std::vector<NodeId> hubs;
  for (NodeId v = 0; v < 60; v += 6) hubs.push_back(v);
  for (NodeId host : {NodeId{13}, NodeId{13}, NodeId{27}, NodeId{0}}) {
    const NodeId vm = g.add_node();
    g.add_edge(vm, host, 0.0);
    hubs.push_back(vm);
  }
  MetricClosure closure(g, hubs, 1);

  for (int round = 0; round < 6; ++round) {
    std::map<NodeId, ShortestPathTree> before;
    for (NodeId h : hubs) before.emplace(h, closure.tree(h).materialize());

    std::vector<EdgeCostDelta> deltas;
    for (int i = 0; i < 7; ++i) {
      const auto e = static_cast<EdgeId>(rng.index(static_cast<std::size_t>(g.edge_count())));
      const Cost old_cost = g.edge(e).cost;
      const Cost next = static_cast<Cost>(rng.uniform_int(0, 5));
      bool dup = next == old_cost;
      for (const auto& d : deltas) dup = dup || d.edge == e;
      if (dup) continue;
      g.set_edge_cost(e, next);
      deltas.push_back(EdgeCostDelta{e, old_cost, next});
    }

    std::vector<MetricClosure::RowDelta> rows;
    closure.refresh(g, deltas, round % 2 == 0 ? 1 : 4, nullptr, &rows);

    for (NodeId h : hubs) {
      const ShortestPathTree& old_tree = before.at(h);
      const ConstTreeRow new_tree = closure.tree(h);
      const MetricClosure::RowDelta* row = nullptr;
      for (const auto& r : rows) {
        if (r.hub == h) row = &r;
      }
      std::vector<bool> listed(old_tree.dist.size(), false);
      if (row != nullptr && !row->full) {
        for (NodeId v : row->nodes) listed[static_cast<std::size_t>(v)] = true;
      }
      for (std::size_t i = 0; i < old_tree.dist.size(); ++i) {
        if (new_tree.dist[i] == old_tree.dist[i] && new_tree.parent[i] == old_tree.parent[i] &&
            new_tree.parent_edge[i] == old_tree.parent_edge[i]) {
          continue;
        }
        ASSERT_NE(row, nullptr) << "round " << round << ": hub " << h
                                << " changed at node " << i << " but reported no RowDelta";
        ASSERT_TRUE(row->full || listed[i])
            << "round " << round << ": hub " << h << " changed at node " << i
            << " outside its RowDelta node set";
      }
    }
  }
}

TEST(Repair, NoOpDeltasLeaveTheTreeUntouched) {
  util::Rng rng(91);
  Graph g = random_tied(rng, 25, 0.2);
  ShortestPathEngine engine(g);
  ShortestPathTree tree;
  engine.run_into(1, tree);
  const ShortestPathTree before = tree;
  const std::vector<EdgeCostDelta> deltas{{0, g.edge(0).cost, g.edge(0).cost},
                                          {3, g.edge(3).cost, g.edge(3).cost}};
  const auto stats = engine.repair(tree, deltas);
  EXPECT_EQ(stats.invalidated, 0u);
  EXPECT_EQ(stats.improved, 0u);
  EXPECT_EQ(stats.reparented, 0u);
  expect_tree_eq(tree, before, "no-op deltas");
}

TEST(MetricClosureRefresh, RepairedTreesBitIdenticalToRebuild) {
  util::Rng rng(111);
  Graph g = random_tied(rng, 70, 0.08);
  // Hub set with taps (the online shape): backbone hubs + zero-cost VMs.
  // Several VMs share hosts so refresh's sibling derivation (one repaired
  // representative per host group) is exercised, for both stored and
  // non-stored hosts.
  std::vector<NodeId> hubs;
  for (NodeId v = 0; v < 70; v += 7) hubs.push_back(v);
  for (int i = 0; i < 8; ++i) {
    const auto host = static_cast<NodeId>(rng.index(70));
    const NodeId vm = g.add_node();
    g.add_edge(vm, host, 0.0);
    hubs.push_back(vm);
  }
  for (NodeId host : {NodeId{10}, NodeId{0}}) {  // 10 not a hub, 0 is
    for (int i = 0; i < 3; ++i) {
      const NodeId vm = g.add_node();
      g.add_edge(vm, host, 0.0);
      hubs.push_back(vm);
    }
  }
  MetricClosure closure(g, hubs, 1);

  for (int round = 0; round < 4; ++round) {
    std::vector<EdgeCostDelta> deltas;
    for (int i = 0; i < 9; ++i) {
      const auto e = static_cast<EdgeId>(rng.index(static_cast<std::size_t>(g.edge_count())));
      const Cost old_cost = g.edge(e).cost;
      const Cost next = static_cast<Cost>(rng.uniform_int(0, 5));
      if (next == old_cost) continue;
      bool dup = false;
      for (const auto& d : deltas) dup = dup || d.edge == e;
      if (dup) continue;
      g.set_edge_cost(e, next);
      deltas.push_back(EdgeCostDelta{e, old_cost, next});
    }
    const int threads = round % 2 == 0 ? 1 : 4;
    closure.refresh(g, deltas, threads);
    const MetricClosure fresh(g, hubs, 1);
    for (NodeId h : hubs) {
      const ShortestPathTree got = closure.tree(h).materialize();
      const ShortestPathTree want = fresh.tree(h).materialize();
      ASSERT_EQ(got.dist, want.dist) << "round " << round;
      ASSERT_EQ(got.parent, want.parent) << "round " << round;
      ASSERT_EQ(got.parent_edge, want.parent_edge) << "round " << round;
    }
  }
}

TEST(MetricClosureRetain, EvictsExactlyTheUnlistedHubs) {
  util::Rng rng(117);
  Graph g = random_connected(rng, 30, 0.15);
  MetricClosure closure(g, {1, 4, 9, 16, 25}, 1);
  ASSERT_EQ(closure.hub_count(), 5u);
  closure.retain({16, 4, 2});  // 2 was never a hub; listing it is harmless
  EXPECT_EQ(closure.hub_count(), 2u);
  EXPECT_TRUE(closure.is_hub(4));
  EXPECT_TRUE(closure.is_hub(16));
  EXPECT_FALSE(closure.is_hub(9));
  // Survivors are untouched, and the closure extends/refreshes normally.
  const auto full = dijkstra(g, 4);
  EXPECT_EQ(closure.tree(4).materialize().dist, full.dist);
  closure.extend(g, {9});
  EXPECT_EQ(closure.tree(9).materialize().dist, dijkstra(g, 9).dist);
}

TEST(MetricClosureExtend, GrownClosureMatchesOneShotBuildPerTree) {
  util::Rng rng(121);
  Graph g = random_connected(rng, 50, 0.1);
  // Taps whose hosts land in different batches, exercising cross-batch
  // host resolution.
  std::vector<NodeId> first{0, 3, 9};
  std::vector<NodeId> second{12, 3};  // overlap tolerated
  for (int i = 0; i < 4; ++i) {
    const NodeId vm = g.add_node();
    g.add_edge(vm, static_cast<NodeId>(i * 11 % 50), 0.0);
    (i % 2 == 0 ? first : second).push_back(vm);
  }
  MetricClosure grown(g, first, 1);
  grown.extend(g, second, 1);
  EXPECT_TRUE(grown.is_hub(12));

  std::vector<NodeId> all = first;
  all.insert(all.end(), second.begin(), second.end());
  const MetricClosure oneshot(g, all, 1);
  EXPECT_EQ(grown.hub_count(), oneshot.hub_count());
  for (NodeId h : all) {
    const ShortestPathTree got = grown.tree(h).materialize();
    const ShortestPathTree want = oneshot.tree(h).materialize();
    ASSERT_EQ(got.dist, want.dist);
    ASSERT_EQ(got.parent, want.parent);
    ASSERT_EQ(got.parent_edge, want.parent_edge);
  }
}

TEST(MetricClosureBounded, HubAndTargetQueriesMatchTheFullBuild) {
  util::Rng rng(131);
  Graph g = random_tied(rng, 90, 0.06);
  std::vector<NodeId> hubs;
  for (NodeId v = 1; v < 90; v += 9) hubs.push_back(v);
  for (int i = 0; i < 6; ++i) {  // taps, so bounded derivation is exercised
    const NodeId vm = g.add_node();
    g.add_edge(vm, static_cast<NodeId>(rng.index(90)), 0.0);
    hubs.push_back(vm);
  }
  const std::vector<NodeId> targets{4, 40, 77};

  const MetricClosure full(g, hubs, 1);
  MetricClosure bounded;
  ClosureScope scope;
  scope.bounded = true;
  scope.extra_targets = targets;
  bounded.build(g, hubs, 1, nullptr, scope);
  EXPECT_TRUE(bounded.bounded());

  for (NodeId a : hubs) {
    for (NodeId b : hubs) {
      ASSERT_EQ(bounded.distance(a, b), full.distance(a, b));  // bitwise
      if (a != b && full.tree(a).reachable(b)) {
        ASSERT_EQ(bounded.path(a, b), full.path(a, b));
      }
    }
    for (NodeId t : targets) {
      ASSERT_EQ(bounded.distance(a, t), full.distance(a, t));
      if (full.tree(a).reachable(t)) {
        ASSERT_EQ(bounded.path(a, t), full.path(a, t));
      }
    }
  }

  // Parallel bounded build is bit-identical on the settled scope too.
  MetricClosure par;
  par.build(g, hubs, 4, nullptr, scope);
  for (NodeId a : hubs) {
    for (NodeId t : targets) ASSERT_EQ(par.distance(a, t), bounded.distance(a, t));
  }
}

// ------------------------------------------------------ run_until_settled ---

TEST(RunUntilSettled, TargetsAndTheirPathsAreExact) {
  util::Rng rng(19);
  const Graph g = random_connected(rng, 80, 0.08);
  ShortestPathEngine engine(g);
  const auto full = dijkstra(g, 4);
  const std::vector<NodeId> targets{9, 31, 62, 9};  // duplicate tolerated
  const auto& t = engine.run_until_settled(4, targets);
  for (NodeId v : targets) {
    EXPECT_EQ(t.distance(v), full.distance(v));  // bitwise
    // The whole parent chain of a settled node is settled and exact.
    for (NodeId x = v; x != 4; x = t.parent[static_cast<std::size_t>(x)]) {
      EXPECT_EQ(t.dist[static_cast<std::size_t>(x)], full.dist[static_cast<std::size_t>(x)]);
      EXPECT_EQ(t.parent[static_cast<std::size_t>(x)], full.parent[static_cast<std::size_t>(x)]);
    }
    EXPECT_EQ(t.path_to(v), full.path_to(v));
  }
}

TEST(RunUntilSettled, UnreachableTargetExhaustsGracefullyAndLeavesNoResidue) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);  // separate component
  ShortestPathEngine engine(g);
  const std::vector<NodeId> targets{2, 3};
  const auto& t = engine.run_until_settled(0, targets);
  EXPECT_DOUBLE_EQ(t.distance(2), 2.0);
  EXPECT_FALSE(t.reachable(3));
  // The next full run must be exact everywhere (touched-list + target-mark
  // reset).
  const auto baseline = dijkstra(g, 1);
  const auto& full = engine.run(1);
  EXPECT_EQ(full.dist, baseline.dist);
  EXPECT_EQ(full.parent, baseline.parent);
}

TEST(RunUntilSettled, BoundedRunIntoMatchesSettledPrefix) {
  util::Rng rng(27);
  Graph g = random_connected(rng, 60, 0.1);
  ShortestPathEngine engine(g);
  std::vector<NodeId> targets{5, 17, 33};
  ShortestPathTree bounded;
  engine.run_into(8, bounded, targets);
  const auto full = dijkstra(g, 8);
  for (NodeId v : targets) {
    EXPECT_EQ(bounded.distance(v), full.distance(v));
    EXPECT_EQ(bounded.path_to(v), full.path_to(v));
  }
}

}  // namespace
}  // namespace sofe::graph
