// Tests for the CSR graph core and the reusable ShortestPathEngine: CSR /
// adjacency agreement, workspace-reuse correctness across repeated queries,
// targeted/bounded variants, the multi-source smaller-owner tie-break
// invariant, path_to edge cases, and bit-identical multi-threaded
// MetricClosure construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sofe/graph/dijkstra.hpp"
#include "sofe/graph/metric_closure.hpp"
#include "sofe/graph/oracles.hpp"
#include "sofe/graph/shortest_path_engine.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::graph {
namespace {

Graph random_connected(util::Rng& rng, int n, double extra_edge_prob,
                       bool integer_costs = false) {
  Graph g(n);
  auto cost = [&] {
    return integer_costs ? static_cast<Cost>(rng.uniform_int(1, 6)) : rng.uniform(0.5, 10.0);
  };
  for (NodeId v = 1; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>(rng.index(static_cast<std::size_t>(v))), cost());
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(extra_edge_prob)) g.add_edge(u, v, cost());
    }
  }
  return g;
}

TEST(Csr, MatchesAdjacencyListsArcForArc) {
  util::Rng rng(7);
  const Graph g = random_connected(rng, 40, 0.2);
  const CsrView& csr = g.csr();
  ASSERT_EQ(csr.offsets.size(), static_cast<std::size_t>(g.node_count()) + 1);
  ASSERT_EQ(csr.arcs.size(), 2 * static_cast<std::size_t>(g.edge_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto arcs = g.neighbors(v);
    ASSERT_EQ(static_cast<std::size_t>(csr.end(v) - csr.begin(v)), arcs.size());
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      const CsrArc& a = csr.arcs[static_cast<std::size_t>(csr.begin(v)) + i];
      EXPECT_EQ(a.to, arcs[i].to);
      EXPECT_EQ(a.edge, arcs[i].edge);
      EXPECT_DOUBLE_EQ(a.cost, g.edge(arcs[i].edge).cost);
    }
  }
}

TEST(Csr, CostRefreshWithoutStructuralRebuild) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  const std::uint64_t v0 = g.version();
  (void)g.csr();
  g.set_edge_cost(e, 5.5);
  EXPECT_GT(g.version(), v0);
  const CsrView& csr = g.csr();
  for (std::int32_t i = csr.begin(0); i < csr.end(0); ++i) {
    EXPECT_DOUBLE_EQ(csr.arcs[static_cast<std::size_t>(i)].cost, 5.5);
  }
}

TEST(Csr, StructuralMutationRebuilds) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  (void)g.csr();
  const NodeId w = g.add_node();
  g.add_edge(1, w, 3.0);
  const CsrView& csr = g.csr();
  ASSERT_EQ(csr.offsets.size(), 4u);
  EXPECT_EQ(csr.end(1) - csr.begin(1), 2);
  EXPECT_EQ(csr.arcs[static_cast<std::size_t>(csr.begin(w))].to, 1);
}

TEST(Csr, CopyDropsCacheButStaysCorrect) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  (void)g.csr();
  Graph copy = g;
  copy.set_edge_cost(0, 9.0);
  EXPECT_DOUBLE_EQ(copy.csr().arcs[static_cast<std::size_t>(copy.csr().begin(0))].cost, 9.0);
  // The original's cache is untouched by the copy's mutation.
  EXPECT_DOUBLE_EQ(g.csr().arcs[static_cast<std::size_t>(g.csr().begin(0))].cost, 1.0);
}

class EngineRandom : public ::testing::TestWithParam<int> {};

TEST_P(EngineRandom, RunMatchesOneShotDijkstraAndBellmanFord) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const int n = rng.uniform_int(5, 40);
  const Graph g = random_connected(rng, n, 0.15);
  ShortestPathEngine engine(g);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto& t = engine.run(s);
    const auto reference = dijkstra(g, s);
    const auto bf = bellman_ford(g, s);
    // Bit-identical to the one-shot free function, value-close to the oracle.
    EXPECT_EQ(t.dist, reference.dist);
    EXPECT_EQ(t.parent, reference.parent);
    EXPECT_EQ(t.parent_edge, reference.parent_edge);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_NEAR(t.distance(v), bf[static_cast<std::size_t>(v)], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandom, ::testing::Range(1, 9));

TEST(Engine, RepeatedRunsLeaveNoResidue) {
  // A bounded run touches few nodes; the following full run must be exact
  // everywhere (the touched-list reset is what this pins down).
  util::Rng rng(42);
  const Graph g = random_connected(rng, 60, 0.1);
  ShortestPathEngine engine(g);
  const auto baseline = dijkstra(g, 7);
  (void)engine.run_bounded(3, 1.0);
  (void)engine.run_to(11, 12);
  const auto& t = engine.run(7);
  EXPECT_EQ(t.dist, baseline.dist);
  EXPECT_EQ(t.parent, baseline.parent);
}

TEST(Engine, RunToSettlesTargetExactly) {
  util::Rng rng(9);
  const Graph g = random_connected(rng, 50, 0.12);
  ShortestPathEngine engine(g);
  for (int trial = 0; trial < 20; ++trial) {
    const auto s = static_cast<NodeId>(rng.index(50));
    const auto d = static_cast<NodeId>(rng.index(50));
    const Cost expect = dijkstra(g, s).distance(d);
    EXPECT_DOUBLE_EQ(engine.distance(s, d), expect);
    const auto& t = engine.run_to(s, d);
    const auto path = t.path_to(d);
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), d);
    Cost walked = 0.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      walked += g.edge(g.find_edge(path[i], path[i + 1])).cost;
    }
    EXPECT_NEAR(walked, expect, 1e-9);
  }
}

TEST(Engine, RunBoundedSettlesEverythingWithinLimit) {
  util::Rng rng(13);
  const Graph g = random_connected(rng, 50, 0.12);
  ShortestPathEngine engine(g);
  const auto full = dijkstra(g, 0);
  const Cost limit = 8.0;
  const auto& t = engine.run_bounded(0, limit);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (full.distance(v) <= limit) {
      EXPECT_DOUBLE_EQ(t.distance(v), full.distance(v));
    } else if (t.reachable(v)) {
      // Beyond the limit entries may exist only as valid upper bounds.
      EXPECT_GE(t.distance(v) + 1e-12, full.distance(v));
    }
  }
}

TEST(Engine, UnreachableStaysInfinite) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  ShortestPathEngine engine(g);
  const auto& t = engine.run(0);
  EXPECT_FALSE(t.reachable(2));
  EXPECT_FALSE(t.reachable(3));
  EXPECT_DOUBLE_EQ(t.distance(1), 1.0);
}

TEST(PathTo, SourceEqualsTargetIsSingleton) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const auto t = dijkstra(g, 1);
  EXPECT_EQ(t.path_to(1), std::vector<NodeId>{1});
}

#ifndef NDEBUG
using PathToDeathTest = ::testing::Test;

TEST(PathToDeathTest, UnreachableTargetAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Graph g(3);
  g.add_edge(0, 1, 1.0);  // node 2 isolated
  const auto t = dijkstra(g, 0);
  EXPECT_DEATH({ (void)t.path_to(2); }, "reachable");
}
#endif

TEST(MultiSource, EqualDistanceGoesToSmallerSourceId) {
  // d(0, 2) = 5 via 0-1-2; d(3, 2) = 5 directly.  The old visit-order
  // tie-break settled node 3's relaxation first and handed 2 to owner 3;
  // the lexicographic (dist, owner) labels must hand it to 0.
  Graph g(4);
  g.add_edge(0, 1, 4.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 2, 5.0);
  const auto vor = multi_source_dijkstra(g, {0, 3});
  EXPECT_DOUBLE_EQ(vor.dist[2], 5.0);
  EXPECT_EQ(vor.owner[2], 0);
}

TEST(MultiSource, SeedProtectionShadowsNodesBehindTheProtectedSource) {
  // Sources 0 and 5 joined by a zero-cost edge; w hangs off 5.  Source 5
  // keeps its own cell (seed protection), and because labels never
  // propagate through a protected seed, w — reachable only via 5 — keeps
  // owner 5 even though d(0, w) == d(5, w) == 1.  This pins the documented
  // zero-cost-tie semantics of the (dist, owner) label order.
  Graph g(6);
  g.add_edge(0, 5, 0.0);
  const NodeId w = 1;
  g.add_edge(5, w, 1.0);
  const auto vor = multi_source_dijkstra(g, {0, 5});
  EXPECT_EQ(vor.owner[5], 5);
  EXPECT_EQ(vor.owner[0], 0);
  EXPECT_DOUBLE_EQ(vor.dist[static_cast<std::size_t>(w)], 1.0);
  EXPECT_EQ(vor.owner[static_cast<std::size_t>(w)], 5);
}

class MultiSourceRandom : public ::testing::TestWithParam<int> {};

TEST_P(MultiSourceRandom, OwnerIsSmallestAmongNearestSources) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 17);
  const int n = rng.uniform_int(8, 40);
  // Integer costs force plenty of exact distance ties.
  const Graph g = random_connected(rng, n, 0.2, /*integer_costs=*/true);
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (rng.chance(0.25)) sources.push_back(v);
  }
  if (sources.empty()) sources.push_back(static_cast<NodeId>(n - 1));

  const auto vor = multi_source_dijkstra(g, sources);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    Cost best = kInfiniteCost;
    NodeId best_src = kInvalidNode;
    for (NodeId s : sources) {  // sources ascend, so first minimum = smallest id
      const Cost d = dijkstra(g, s).distance(v);
      if (d < best) {
        best = d;
        best_src = s;
      }
    }
    EXPECT_NEAR(vor.dist[static_cast<std::size_t>(v)], best, 1e-9);
    EXPECT_EQ(vor.owner[static_cast<std::size_t>(v)], best_src) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiSourceRandom, ::testing::Range(1, 9));

TEST(MultiSource, ParentChainStaysInsideOwnersCell) {
  util::Rng rng(23);
  const Graph g = random_connected(rng, 40, 0.2, /*integer_costs=*/true);
  const std::vector<NodeId> sources{1, 9, 21};
  const auto vor = multi_source_dijkstra(g, sources);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (vor.parent[vi] == kInvalidNode) continue;
    const auto pi = static_cast<std::size_t>(vor.parent[vi]);
    EXPECT_EQ(vor.owner[pi], vor.owner[vi]);
    EXPECT_NEAR(vor.dist[pi] + g.edge(vor.parent_edge[vi]).cost, vor.dist[vi], 1e-9);
  }
}

TEST(MultiSource, EngineAgreesWithFreeFunction) {
  util::Rng rng(31);
  const Graph g = random_connected(rng, 35, 0.15, /*integer_costs=*/true);
  const std::vector<NodeId> sources{0, 5, 6, 17};
  ShortestPathEngine engine(g);
  (void)engine.run(3);  // dirty the workspaces first
  const auto& a = engine.run_multi(sources);
  const auto b = multi_source_dijkstra(g, sources);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.owner, b.owner);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.parent_edge, b.parent_edge);
}

TEST(MetricClosureThreads, BitIdenticalForAnyThreadCount) {
  util::Rng rng(77);
  const Graph g = random_connected(rng, 120, 0.05);
  std::vector<NodeId> hubs;
  for (NodeId v = 0; v < g.node_count(); v += 3) hubs.push_back(v);
  hubs.push_back(hubs.front());  // duplicate tolerated

  const MetricClosure solo(g, hubs, 1);
  for (int threads : {2, 3, 8}) {
    const MetricClosure par(g, hubs, threads);
    for (NodeId h : hubs) {
      ASSERT_TRUE(par.is_hub(h));
      EXPECT_EQ(par.tree(h).source, solo.tree(h).source);
      EXPECT_EQ(par.tree(h).dist, solo.tree(h).dist);          // bitwise doubles
      EXPECT_EQ(par.tree(h).parent, solo.tree(h).parent);
      EXPECT_EQ(par.tree(h).parent_edge, solo.tree(h).parent_edge);
    }
  }
}

TEST(MetricClosure, TapDerivedTreesBitIdenticalToFullRuns) {
  // Hubs attached by zero-cost degree-1 taps (the library's VM attachment)
  // get their trees derived from the host tree; the result must equal a
  // full Dijkstra from the tap, bit for bit — dist, parent and parent_edge.
  util::Rng rng(55);
  Graph g = random_connected(rng, 60, 0.1);
  std::vector<NodeId> hubs;
  for (int i = 0; i < 12; ++i) {
    const auto host = static_cast<NodeId>(rng.index(60));  // several taps share hosts
    const NodeId vm = g.add_node();
    g.add_edge(vm, host, 0.0);
    hubs.push_back(vm);
  }
  hubs.push_back(3);  // one backbone hub that is also a tap host candidate
  const MetricClosure mc(g, hubs, 1);
  for (NodeId h : hubs) {
    const auto full = dijkstra(g, h);
    EXPECT_EQ(mc.tree(h).source, h);
    EXPECT_EQ(mc.tree(h).dist, full.dist);
    EXPECT_EQ(mc.tree(h).parent, full.parent);
    EXPECT_EQ(mc.tree(h).parent_edge, full.parent_edge);
  }
}

TEST(MetricClosure, MutualZeroCostTapsFallBackToFullRuns) {
  // Two nodes joined by one zero-cost edge and nothing else: both are
  // "taps" of each other; derivation must not chase the cycle.
  Graph g(4);
  g.add_edge(0, 1, 0.0);
  g.add_edge(2, 3, 1.0);
  const MetricClosure mc(g, {0, 1}, 1);
  EXPECT_DOUBLE_EQ(mc.distance(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(mc.distance(1, 0), 0.0);
  EXPECT_FALSE(mc.tree(0).reachable(2));
}

TEST(MetricClosureThreads, TapDerivationBitIdenticalAcrossThreads) {
  util::Rng rng(66);
  Graph g = random_connected(rng, 80, 0.08);
  std::vector<NodeId> hubs;
  for (int i = 0; i < 20; ++i) {
    const auto host = static_cast<NodeId>(rng.index(80));
    const NodeId vm = g.add_node();
    g.add_edge(vm, host, 0.0);
    hubs.push_back(vm);
  }
  hubs.push_back(7);
  const MetricClosure solo(g, hubs, 1);
  const MetricClosure par(g, hubs, 4);
  for (NodeId h : hubs) {
    EXPECT_EQ(par.tree(h).dist, solo.tree(h).dist);
    EXPECT_EQ(par.tree(h).parent, solo.tree(h).parent);
    EXPECT_EQ(par.tree(h).parent_edge, solo.tree(h).parent_edge);
  }
}

TEST(MetricClosureThreads, ThreadCountClampedAndUsable) {
  Graph g(2);
  g.add_edge(0, 1, 2.0);
  const MetricClosure mc(g, {0, 1}, -4);  // clamped to 1
  EXPECT_DOUBLE_EQ(mc.distance(0, 1), 2.0);
  const MetricClosure wide(g, {0, 1}, 64);  // more threads than hubs
  EXPECT_DOUBLE_EQ(wide.distance(1, 0), 2.0);
}

}  // namespace
}  // namespace sofe::graph
