// k-stroll substrate tests: Procedure-1 construction (cost telescoping and
// Lemma-1 triangle inequality), heuristic vs exact-DP quality, the
// Appendix-D source-cost variant, and the repair-aware pricing machinery
// (DESIGN.md §9): shared-block instance assembly bitwise vs the per-pair
// builder, and the PricingSession's cache hit/invalidate semantics across
// repair vs rebuild vs extend, departure cost restores, thread counts, and
// the equal-cost parent-flip traps.

#include <gtest/gtest.h>

#include <set>

#include "sofe/core/pricing.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/graph/shortest_path_engine.hpp"
#include "sofe/kstroll/instance.hpp"
#include "sofe/kstroll/pricing.hpp"
#include "sofe/kstroll/solver.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::kstroll {
namespace {

struct Fixture {
  Graph g;
  std::vector<Cost> node_cost;
  std::vector<NodeId> vms;
  NodeId source;
};

/// Line network: s=0 - 1 - 2 - 3 - 4 with unit edges; VMs 1..4.
Fixture line5() {
  Fixture f{Graph(5), {0.0, 2.0, 4.0, 6.0, 8.0}, {1, 2, 3, 4}, 0};
  for (NodeId v = 0; v + 1 < 5; ++v) f.g.add_edge(v, v + 1, 1.0);
  return f;
}

Fixture random_fixture(std::uint64_t seed, int n, int vms) {
  util::Rng rng(seed);
  Fixture f{Graph(n), std::vector<Cost>(static_cast<std::size_t>(n), 0.0), {}, 0};
  for (NodeId v = 1; v < n; ++v) {
    f.g.add_edge(v, static_cast<NodeId>(rng.index(static_cast<std::size_t>(v))),
                 rng.uniform(0.5, 5.0));
  }
  for (int extra = 0; extra < n; ++extra) {
    const NodeId u = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    const NodeId v = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    if (u != v && f.g.find_edge(u, v) == graph::kInvalidEdge) {
      f.g.add_edge(u, v, rng.uniform(0.5, 5.0));
    }
  }
  const auto chosen = rng.sample_without_replacement(static_cast<std::size_t>(n - 1),
                                                     static_cast<std::size_t>(vms));
  for (auto c : chosen) {
    const NodeId v = static_cast<NodeId>(c + 1);  // node 0 stays the source
    f.vms.push_back(v);
    f.node_cost[static_cast<std::size_t>(v)] = rng.uniform(1.0, 6.0);
  }
  return f;
}

graph::MetricClosure closure_for(const Fixture& f) {
  std::vector<NodeId> hubs = f.vms;
  hubs.push_back(f.source);
  return graph::MetricClosure(f.g, hubs);
}

TEST(StrollInstance, EdgeCostSharingMainModel) {
  Fixture f = line5();
  const auto mc = closure_for(f);
  const auto inst = build_stroll_instance(f.g, mc, 0, f.vms, /*u=*/4, f.node_cost);
  ASSERT_EQ(inst.size(), 5u);
  // nodes = [0, 1, 2, 3, 4]; edge (s=0, 1): d(0,1)=1 plus (c(u=4)+c(1))/2 = 5.
  EXPECT_DOUBLE_EQ(inst.edge_cost(0, 1), 1.0 + (8.0 + 2.0) / 2.0);
  // edge (1, 2): d=1 plus (c(1)+c(2))/2 = 3.
  EXPECT_DOUBLE_EQ(inst.edge_cost(1, 2), 1.0 + (2.0 + 4.0) / 2.0);
  // edge (s, u): d(0,4)=4 plus (c(4)+c(4))/2 = 8.
  EXPECT_DOUBLE_EQ(inst.edge_cost(0, 4), 4.0 + 8.0);
}

TEST(StrollInstance, PathCostTelescopesToWalkCost) {
  // §IV "first characteristic": the instance cost of a simple s→u path equals
  // the setup cost of its interior+last VMs plus shortest-path connections.
  Fixture f = line5();
  const auto mc = closure_for(f);
  const auto inst = build_stroll_instance(f.g, mc, 0, f.vms, 4, f.node_cost);
  // Path 0 -> 2 -> 4 visits VMs 2 and 4.
  const Cost path_cost = inst.edge_cost(0, 1 /*node 2? index*/);
  (void)path_cost;
  // Find indices of graph nodes 2 and 4.
  auto idx = [&](NodeId v) {
    for (std::size_t i = 0; i < inst.nodes.size(); ++i) {
      if (inst.nodes[i] == v) return i;
    }
    return std::size_t{999};
  };
  const Cost c = inst.edge_cost(0, idx(2)) + inst.edge_cost(idx(2), idx(4));
  // Setup: c(2)+c(4) = 12; connection: d(0,2)+d(2,4) = 4.
  EXPECT_DOUBLE_EQ(c, 16.0);
}

class TriangleInequality : public ::testing::TestWithParam<int> {};

TEST_P(TriangleInequality, Lemma1HoldsOnRandomInstances) {
  Fixture f = random_fixture(static_cast<std::uint64_t>(GetParam()) * 31 + 5, 18, 7);
  const auto mc = closure_for(f);
  for (NodeId u : f.vms) {
    const auto inst = build_stroll_instance(f.g, mc, f.source, f.vms, u, f.node_cost);
    const std::size_t n = inst.size();
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        for (std::size_t c = 0; c < n; ++c) {
          if (a == b || b == c || a == c) continue;
          EXPECT_LE(inst.edge_cost(a, c), inst.edge_cost(a, b) + inst.edge_cost(b, c) + 1e-9)
              << "triangle inequality violated (Lemma 1)";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleInequality, ::testing::Range(1, 9));

TEST(StrollSolver, TrivialKTwo) {
  Fixture f = line5();
  const auto mc = closure_for(f);
  const auto inst = build_stroll_instance(f.g, mc, 0, f.vms, 4, f.node_cost);
  const auto s = solve_stroll(inst, 2);
  ASSERT_TRUE(s.feasible());
  EXPECT_EQ(s.order.size(), 2u);
  EXPECT_DOUBLE_EQ(s.cost, inst.edge_cost(0, inst.last_index));
}

TEST(StrollSolver, InfeasibleWhenTooFewNodes) {
  Fixture f = line5();
  const auto mc = closure_for(f);
  const auto inst = build_stroll_instance(f.g, mc, 0, f.vms, 4, f.node_cost);
  EXPECT_FALSE(solve_stroll(inst, 7).feasible());   // only 5 nodes exist
  EXPECT_FALSE(exact_dp(inst, 7).feasible());
}

TEST(StrollSolver, LineNetworkOrderedVisit) {
  // On a line with increasing VM costs, the cheapest 3-stroll 0→4 takes the
  // cheapest intermediate VM (node 1).
  Fixture f = line5();
  const auto mc = closure_for(f);
  const auto inst = build_stroll_instance(f.g, mc, 0, f.vms, 4, f.node_cost);
  const auto s = exact_dp(inst, 3);
  ASSERT_TRUE(s.feasible());
  EXPECT_EQ(inst.nodes[s.order[1]], 1);
}

struct QualityCase {
  int seed;
  int nodes, vms, k;
};

class StrollQuality : public ::testing::TestWithParam<QualityCase> {};

TEST_P(StrollQuality, HeuristicNearExactOnPaperScales) {
  const auto [seed, n, m, k] = GetParam();
  Fixture f = random_fixture(static_cast<std::uint64_t>(seed) * 977 + 13, n, m);
  const auto mc = closure_for(f);
  for (NodeId u : f.vms) {
    const auto inst = build_stroll_instance(f.g, mc, f.source, f.vms, u, f.node_cost);
    const auto heur = solve_stroll(inst, k, StrollAlgorithm::kCheapestInsertion);
    const auto exact = solve_stroll(inst, k, StrollAlgorithm::kExactDp);
    ASSERT_EQ(heur.feasible(), exact.feasible());
    if (!exact.feasible()) continue;
    // Structure checks.
    EXPECT_EQ(heur.order.size(), static_cast<std::size_t>(k));
    EXPECT_EQ(heur.order.front(), 0u);
    EXPECT_EQ(heur.order.back(), inst.last_index);
    std::set<std::size_t> distinct(heur.order.begin(), heur.order.end());
    EXPECT_EQ(distinct.size(), heur.order.size());
    // Quality: never better than exact; within 25% at the paper's k <= 8.
    EXPECT_GE(heur.cost, exact.cost - 1e-9);
    EXPECT_LE(heur.cost, 1.25 * exact.cost + 1e-9);
    // Cost field consistent with the order.
    EXPECT_NEAR(heur.cost, inst.path_cost(heur.order), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrollQuality,
    ::testing::Values(QualityCase{1, 12, 5, 3}, QualityCase{2, 14, 6, 4},
                      QualityCase{3, 16, 7, 5}, QualityCase{4, 18, 8, 6},
                      QualityCase{5, 20, 9, 7}, QualityCase{6, 15, 6, 4},
                      QualityCase{7, 22, 10, 8}, QualityCase{8, 13, 5, 4},
                      QualityCase{9, 17, 8, 5}, QualityCase{10, 19, 9, 6}));

TEST(StrollInstance, AppendixDSourceCostTelescopes) {
  Fixture f = line5();
  const auto mc = closure_for(f);
  const Cost cs = 10.0;
  const auto inst = build_stroll_instance(f.g, mc, 0, f.vms, 4, f.node_cost, cs);
  auto idx = [&](NodeId v) {
    for (std::size_t i = 0; i < inst.nodes.size(); ++i) {
      if (inst.nodes[i] == v) return i;
    }
    return std::size_t{999};
  };
  // Walk 0 -> 2 -> 4: cost must be c(s) + c(2) + c(4) + d(0,2) + d(2,4) = 26.
  const Cost c = inst.edge_cost(0, idx(2)) + inst.edge_cost(idx(2), idx(4));
  EXPECT_DOUBLE_EQ(c, cs + 4.0 + 8.0 + 2.0 + 2.0);
  // Direct edge (s, u) carries the full c(s) + c(u).
  EXPECT_DOUBLE_EQ(inst.edge_cost(0, idx(4)), 4.0 + cs + 8.0);
}

TEST(StrollSolver, ImproveNeverWorsens) {
  Fixture f = random_fixture(4242, 20, 8);
  const auto mc = closure_for(f);
  const auto inst = build_stroll_instance(f.g, mc, f.source, f.vms, f.vms.back(), f.node_cost);
  auto s = cheapest_insertion(inst, 5);
  ASSERT_TRUE(s.feasible());
  const Cost before = s.cost;
  improve_stroll(inst, s);
  EXPECT_LE(s.cost, before + 1e-9);
}

// ---------------------------------------------------------------------------
// Repair-aware pricing (DESIGN.md §9)

TEST(SharedInstanceAssembly, BitwiseEqualToPerPairBuilder) {
  Fixture f = random_fixture(9001, 24, 9);
  const auto mc = closure_for(f);

  SharedVmBlock block;
  block.build(mc, f.vms, f.node_cost);
  InstanceAssembler assembler;
  assembler.bind_source(block, mc, f.vms, f.source);

  for (std::size_t j = 0; j < f.vms.size(); ++j) {
    const NodeId u = f.vms[j];
    const auto expect = build_stroll_instance(f.g, mc, f.source, f.vms, u, f.node_cost);
    const auto& got = assembler.with_last_vm(j, u, f.node_cost);
    ASSERT_EQ(got.nodes, expect.nodes);
    ASSERT_EQ(got.last_index, expect.last_index);
    for (std::size_t a = 0; a < expect.size(); ++a) {
      for (std::size_t b = 0; b < expect.size(); ++b) {
        EXPECT_EQ(got.cost[a][b], expect.cost[a][b])  // bitwise: == on doubles
            << "entry (" << a << ", " << b << ") for last VM " << u;
      }
    }
  }
}

/// A Problem over a Fixture: sources pick up extra ids, chain length |C|.
core::Problem problem_for(const Fixture& f, std::vector<NodeId> sources, int chain_length) {
  core::Problem p;
  p.network = f.g;
  p.node_cost = f.node_cost;
  p.is_vm.assign(static_cast<std::size_t>(f.g.node_count()), 0);
  for (NodeId v : f.vms) p.is_vm[static_cast<std::size_t>(v)] = 1;
  p.sources = std::move(sources);
  p.destinations = {f.vms.back()};
  p.chain_length = chain_length;
  return p;
}

graph::MetricClosure closure_for_problem(const core::Problem& p) {
  std::vector<NodeId> hubs = p.vms();
  hubs.insert(hubs.end(), p.sources.begin(), p.sources.end());
  return graph::MetricClosure(p.network, hubs);
}

bool chains_equal(const std::vector<core::PricedChain>& a,
                  const std::vector<core::PricedChain>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].source != b[i].source || a[i].last_vm != b[i].last_vm ||
        a[i].plan.nodes != b[i].plan.nodes || a[i].plan.vnf_pos != b[i].plan.vnf_pos ||
        a[i].plan.cost != b[i].plan.cost) {  // bitwise: == on doubles
      return false;
    }
  }
  return true;
}

TEST(PricingSession, ColdCallMatchesFreeFunctionThenHitsWhenUnchanged) {
  Fixture f = random_fixture(7117, 26, 8);
  const auto p = problem_for(f, {0, 5}, 3);
  const auto mc = closure_for_problem(p);

  const auto expect = core::price_candidate_chains(p, mc, p.sources);
  ASSERT_FALSE(expect.empty());

  core::PricingSession session;
  core::PricingTally tally;
  const auto cold = session.price(p, mc, p.sources, core::ClosureUpdate::rebuilt(), {}, 1, &tally);
  EXPECT_TRUE(chains_equal(cold, expect));
  EXPECT_EQ(tally.hits, 0);
  EXPECT_GT(tally.repriced, 0);

  const auto warm =
      session.price(p, mc, p.sources, core::ClosureUpdate::unchanged(), {}, 1, &tally);
  EXPECT_TRUE(chains_equal(warm, expect));
  EXPECT_EQ(tally.repriced, 0);
  EXPECT_GT(tally.hits, 0);
  EXPECT_EQ(session.cached_chains(), static_cast<std::size_t>(tally.hits));
}

TEST(PricingSession, RepairInvalidatesOnlyTouchedChainsAndStaysExact) {
  Fixture f = random_fixture(5150, 30, 9);
  auto p = problem_for(f, {0, 7, 11}, 3);
  auto mc = closure_for_problem(p);

  core::PricingSession session;
  (void)session.price(p, mc, p.sources, core::ClosureUpdate::rebuilt(), {});

  // An online-style reprice: a few links move, the closure repairs, and
  // the session re-prices against the refresh's changed-row report.
  std::vector<graph::EdgeCostDelta> deltas;
  for (core::EdgeId e : {1, 4, 9}) {
    const Cost old_cost = p.network.edge(e).cost;
    p.network.set_edge_cost(e, old_cost * 1.5 + 0.25);
    deltas.push_back({e, old_cost, p.network.edge(e).cost});
  }
  std::vector<graph::MetricClosure::RowDelta> rows;
  mc.refresh(p.network, deltas, 1, nullptr, &rows);

  core::ClosureUpdate update;
  update.kind = core::ClosureUpdate::Kind::kRepaired;
  update.rows = rows;
  core::PricingTally tally;
  const auto got = session.price(p, mc, p.sources, update, {}, 1, &tally);
  EXPECT_TRUE(chains_equal(got, core::price_candidate_chains(p, mc, p.sources)));
  EXPECT_EQ(tally.hits + tally.repriced,
            static_cast<int>(p.sources.size() * f.vms.size()));
}

TEST(PricingSession, RebuildUpdateFlushesEverything) {
  Fixture f = random_fixture(6161, 22, 7);
  const auto p = problem_for(f, {0, 3}, 3);
  const auto mc = closure_for_problem(p);

  core::PricingSession session;
  (void)session.price(p, mc, p.sources, core::ClosureUpdate::rebuilt(), {});
  core::PricingTally tally;
  const auto again =
      session.price(p, mc, p.sources, core::ClosureUpdate::rebuilt(), {}, 1, &tally);
  EXPECT_TRUE(tally.flushed);
  EXPECT_EQ(tally.hits, 0);
  EXPECT_TRUE(chains_equal(again, core::price_candidate_chains(p, mc, p.sources)));
}

TEST(PricingSession, ExtendFlushesOnlyTheReaddedSourceBucket) {
  Fixture f = random_fixture(3030, 24, 8);
  auto p = problem_for(f, {0, 9}, 3);
  auto mc = closure_for_problem(p);

  core::PricingSession session;
  (void)session.price(p, mc, p.sources, core::ClosureUpdate::rebuilt(), {});

  // Source 9 churns out and back in: the closure extends its tree, and the
  // session — which observed no deltas for the missing row — must flush
  // bucket 9 while bucket 0 keeps hitting.
  const std::vector<NodeId> added{9};
  core::ClosureUpdate update;
  update.kind = core::ClosureUpdate::Kind::kRepaired;
  update.added_hubs = added;
  core::PricingTally tally;
  const auto got = session.price(p, mc, p.sources, update, {}, 1, &tally);
  EXPECT_TRUE(chains_equal(got, core::price_candidate_chains(p, mc, p.sources)));
  EXPECT_EQ(tally.hits, static_cast<int>(f.vms.size()));      // all of bucket 0
  EXPECT_EQ(tally.repriced, static_cast<int>(f.vms.size()));  // all of bucket 9
}

TEST(PricingSession, DepartureCostRestoreDeltasRoundTrip) {
  Fixture f = random_fixture(2468, 28, 9);
  auto p = problem_for(f, {0, 5, 13}, 3);
  auto mc = closure_for_problem(p);

  core::PricingSession session;
  const auto base = session.price(p, mc, p.sources, core::ClosureUpdate::rebuilt(), {});

  const auto reprice_after = [&](const std::vector<graph::EdgeCostDelta>& deltas) {
    std::vector<graph::MetricClosure::RowDelta> rows;
    mc.refresh(p.network, deltas, 1, nullptr, &rows);
    core::ClosureUpdate update;
    update.kind = core::ClosureUpdate::Kind::kRepaired;
    update.rows = rows;
    return session.price(p, mc, p.sources, update, {});
  };

  // Admission: congestion charges a few links...
  std::vector<graph::EdgeCostDelta> charge;
  for (core::EdgeId e : {2, 6, 12}) {
    const Cost old_cost = p.network.edge(e).cost;
    p.network.set_edge_cost(e, old_cost + 2.5);
    charge.push_back({e, old_cost, p.network.edge(e).cost});
  }
  const auto charged = reprice_after(charge);
  EXPECT_TRUE(chains_equal(charged, core::price_candidate_chains(p, mc, p.sources)));

  // ...and the departure returns exactly what was taken: cost-RESTORE
  // deltas.  The session must land bitwise back on the original chains.
  std::vector<graph::EdgeCostDelta> restore;
  for (const auto& d : charge) {
    p.network.set_edge_cost(d.edge, d.old_cost);
    restore.push_back({d.edge, d.new_cost, d.old_cost});
  }
  const auto restored = reprice_after(restore);
  EXPECT_TRUE(chains_equal(restored, base));
}

TEST(PricingSession, BitIdenticalAcrossThreadCounts) {
  Fixture f = random_fixture(1357, 32, 10);
  auto p = problem_for(f, {0, 4, 8, 12, 16}, 3);
  auto mc = closure_for_problem(p);

  // Three identically-driven sessions, priced at 1 / 2 / 8 workers, across
  // a cold call and a repair round: outputs must match bit for bit.
  std::vector<std::unique_ptr<core::PricingSession>> sessions;
  for (int i = 0; i < 3; ++i) sessions.push_back(std::make_unique<core::PricingSession>());
  const int threads[] = {1, 2, 8};

  std::vector<std::vector<core::PricedChain>> cold(3);
  for (int i = 0; i < 3; ++i) {
    cold[static_cast<std::size_t>(i)] = sessions[static_cast<std::size_t>(i)]->price(
        p, mc, p.sources, core::ClosureUpdate::rebuilt(), {}, threads[i]);
  }
  EXPECT_TRUE(chains_equal(cold[0], cold[1]));
  EXPECT_TRUE(chains_equal(cold[0], cold[2]));
  EXPECT_TRUE(chains_equal(cold[0], core::price_candidate_chains(p, mc, p.sources)));

  std::vector<graph::EdgeCostDelta> deltas;
  for (core::EdgeId e : {0, 3, 7, 15}) {
    const Cost old_cost = p.network.edge(e).cost;
    p.network.set_edge_cost(e, old_cost * 2.0 + 0.125);
    deltas.push_back({e, old_cost, p.network.edge(e).cost});
  }
  std::vector<graph::MetricClosure::RowDelta> rows;
  mc.refresh(p.network, deltas, 1, nullptr, &rows);
  core::ClosureUpdate update;
  update.kind = core::ClosureUpdate::Kind::kRepaired;
  update.rows = rows;

  std::vector<std::vector<core::PricedChain>> warm(3);
  for (int i = 0; i < 3; ++i) {
    warm[static_cast<std::size_t>(i)] = sessions[static_cast<std::size_t>(i)]->price(
        p, mc, p.sources, update, {}, threads[i]);
  }
  EXPECT_TRUE(chains_equal(warm[0], warm[1]));
  EXPECT_TRUE(chains_equal(warm[0], warm[2]));
  EXPECT_TRUE(chains_equal(warm[0], core::price_candidate_chains(p, mc, p.sources)));
}

/// The stale-bucket trap (ISSUE satellite): a plateau reshuffle can flip
/// parents in a hub row while EVERY distance survives — serving the cached
/// chain would hand out a lift path that no longer exists in the tree (and
/// whose edges no longer sum to its cost).  Gadget: s reaches {a, b} at
/// equal distance joined by a zero-cost edge; repricing s-a flips a's
/// parent onto b without moving any dist.
TEST(PricingSession, EqualCostParentFlipWithoutDistanceChangeReprices) {
  // Nodes: s=0, a=1, b=2, t=3 (VM).  dist(a)=dist(b)=1, dist(t)=2.
  Graph g(4);
  const auto e_sa = g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 2, 0.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(2, 3, 1.0);

  core::Problem p;
  p.network = g;
  p.node_cost = {0.0, 0.0, 0.0, 2.0};
  p.is_vm = {0, 0, 0, 1};
  p.sources = {0};
  p.destinations = {3};
  p.chain_length = 1;  // 2-stroll: per-entry invalidation is in effect

  auto mc = closure_for_problem(p);
  core::PricingSession session;
  const auto before = session.price(p, mc, p.sources, core::ClosureUpdate::rebuilt(), {});
  ASSERT_EQ(before.size(), 1u);
  EXPECT_EQ(before[0].plan.nodes, (std::vector<NodeId>{0, 1, 3}));  // via a

  // s-a becomes expensive; a stays at dist 1 through the zero-cost edge
  // from b, t stays at dist 2 — only parents moved.
  const Cost old_cost = p.network.edge(e_sa).cost;
  p.network.set_edge_cost(e_sa, 5.0);
  const std::vector<graph::EdgeCostDelta> deltas{{e_sa, old_cost, 5.0}};
  std::vector<graph::MetricClosure::RowDelta> rows;
  mc.refresh(p.network, deltas, 1, nullptr, &rows);
  EXPECT_EQ(mc.tree(0).distance(1), 1.0);  // the trap: dists unchanged...
  EXPECT_EQ(mc.tree(0).distance(3), 2.0);
  EXPECT_EQ(mc.tree(0).parent[3], 2);      // ...but t now hangs off b

  core::ClosureUpdate update;
  update.kind = core::ClosureUpdate::Kind::kRepaired;
  update.rows = rows;
  core::PricingTally tally;
  const auto after = session.price(p, mc, p.sources, update, {}, 1, &tally);
  EXPECT_GT(tally.repriced, 0);  // served stale == this test fails
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].plan.nodes, (std::vector<NodeId>{0, 2, 3}));  // via b
  EXPECT_TRUE(chains_equal(after, core::price_candidate_chains(p, mc, p.sources)));
}

/// Same trap, |C| >= 2 shape: the flip happens at an interior non-VM node
/// of a lift segment, so neither the instance matrix nor any (row, VM)
/// entry changes — only the per-chain lift-path check can catch it.
TEST(PricingSession, InteriorLiftPathParentFlipReprices) {
  // Nodes: s=0, a=1, b=2, m1=3 (VM), t=4 (VM); m1 only reachable via a.
  Graph g(5);
  const auto e_sa = g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 2, 0.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(3, 4, 1.0);

  core::Problem p;
  p.network = g;
  p.node_cost = {0.0, 0.0, 0.0, 1.0, 2.0};
  p.is_vm = {0, 0, 0, 1, 1};
  p.sources = {0};
  p.destinations = {4};
  p.chain_length = 2;  // 3-strolls read the full matrix

  auto mc = closure_for_problem(p);
  core::PricingSession session;
  const auto before = session.price(p, mc, p.sources, core::ClosureUpdate::rebuilt(), {});
  ASSERT_FALSE(before.empty());
  EXPECT_EQ(before[0].plan.nodes[1], 1);  // the s->m1 segment runs through a

  const Cost old_cost = p.network.edge(e_sa).cost;
  p.network.set_edge_cost(e_sa, 5.0);
  const std::vector<graph::EdgeCostDelta> deltas{{e_sa, old_cost, 5.0}};
  std::vector<graph::MetricClosure::RowDelta> rows;
  mc.refresh(p.network, deltas, 1, nullptr, &rows);
  // Every hub-pair distance survived; a (non-VM, interior) re-parented.
  EXPECT_EQ(mc.tree(0).distance(3), 2.0);
  EXPECT_EQ(mc.tree(0).distance(4), 3.0);
  EXPECT_EQ(mc.tree(0).parent[1], 2);

  core::ClosureUpdate update;
  update.kind = core::ClosureUpdate::Kind::kRepaired;
  update.rows = rows;
  core::PricingTally tally;
  const auto after = session.price(p, mc, p.sources, update, {}, 1, &tally);
  EXPECT_GT(tally.repriced, 0);
  const auto expect = core::price_candidate_chains(p, mc, p.sources);
  EXPECT_TRUE(chains_equal(after, expect));
  EXPECT_EQ(after[0].plan.nodes[1], 2);  // the segment re-lifted through b
}

TEST(PricingSession, SetupCostChangeInvalidatesPerEntryForSingleVnfChains) {
  Fixture f = random_fixture(8642, 20, 6);
  auto p = problem_for(f, {0}, 1);
  const auto mc = closure_for_problem(p);

  core::PricingSession session;
  (void)session.price(p, mc, p.sources, core::ClosureUpdate::rebuilt(), {});

  // One VM's setup cost moves: a 2-stroll reads only its own entry, so
  // exactly that chain re-prices and the rest keep hitting.
  p.node_cost[static_cast<std::size_t>(f.vms[2])] += 1.5;
  core::PricingTally tally;
  const auto got =
      session.price(p, mc, p.sources, core::ClosureUpdate::unchanged(), {}, 1, &tally);
  EXPECT_EQ(tally.repriced, 1);
  EXPECT_EQ(tally.hits, static_cast<int>(f.vms.size()) - 1);
  EXPECT_TRUE(chains_equal(got, core::price_candidate_chains(p, mc, p.sources)));
}

TEST(PricingSession, SetupCostChangeFlushesMultiVnfChains) {
  Fixture f = random_fixture(8643, 20, 6);
  auto p = problem_for(f, {0}, 3);
  const auto mc = closure_for_problem(p);

  core::PricingSession session;
  (void)session.price(p, mc, p.sources, core::ClosureUpdate::rebuilt(), {});

  // |C| >= 2: the moved setup cost sits in shared terms of every matrix.
  p.node_cost[static_cast<std::size_t>(f.vms[2])] += 1.5;
  core::PricingTally tally;
  const auto got =
      session.price(p, mc, p.sources, core::ClosureUpdate::unchanged(), {}, 1, &tally);
  EXPECT_TRUE(tally.flushed);
  EXPECT_EQ(tally.hits, 0);
  EXPECT_TRUE(chains_equal(got, core::price_candidate_chains(p, mc, p.sources)));
}

}  // namespace
}  // namespace sofe::kstroll
