// k-stroll substrate tests: Procedure-1 construction (cost telescoping and
// Lemma-1 triangle inequality), heuristic vs exact-DP quality, and the
// Appendix-D source-cost variant.

#include <gtest/gtest.h>

#include <set>

#include "sofe/kstroll/instance.hpp"
#include "sofe/kstroll/solver.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::kstroll {
namespace {

struct Fixture {
  Graph g;
  std::vector<Cost> node_cost;
  std::vector<NodeId> vms;
  NodeId source;
};

/// Line network: s=0 - 1 - 2 - 3 - 4 with unit edges; VMs 1..4.
Fixture line5() {
  Fixture f{Graph(5), {0.0, 2.0, 4.0, 6.0, 8.0}, {1, 2, 3, 4}, 0};
  for (NodeId v = 0; v + 1 < 5; ++v) f.g.add_edge(v, v + 1, 1.0);
  return f;
}

Fixture random_fixture(std::uint64_t seed, int n, int vms) {
  util::Rng rng(seed);
  Fixture f{Graph(n), std::vector<Cost>(static_cast<std::size_t>(n), 0.0), {}, 0};
  for (NodeId v = 1; v < n; ++v) {
    f.g.add_edge(v, static_cast<NodeId>(rng.index(static_cast<std::size_t>(v))),
                 rng.uniform(0.5, 5.0));
  }
  for (int extra = 0; extra < n; ++extra) {
    const NodeId u = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    const NodeId v = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    if (u != v && f.g.find_edge(u, v) == graph::kInvalidEdge) {
      f.g.add_edge(u, v, rng.uniform(0.5, 5.0));
    }
  }
  const auto chosen = rng.sample_without_replacement(static_cast<std::size_t>(n - 1),
                                                     static_cast<std::size_t>(vms));
  for (auto c : chosen) {
    const NodeId v = static_cast<NodeId>(c + 1);  // node 0 stays the source
    f.vms.push_back(v);
    f.node_cost[static_cast<std::size_t>(v)] = rng.uniform(1.0, 6.0);
  }
  return f;
}

graph::MetricClosure closure_for(const Fixture& f) {
  std::vector<NodeId> hubs = f.vms;
  hubs.push_back(f.source);
  return graph::MetricClosure(f.g, hubs);
}

TEST(StrollInstance, EdgeCostSharingMainModel) {
  Fixture f = line5();
  const auto mc = closure_for(f);
  const auto inst = build_stroll_instance(f.g, mc, 0, f.vms, /*u=*/4, f.node_cost);
  ASSERT_EQ(inst.size(), 5u);
  // nodes = [0, 1, 2, 3, 4]; edge (s=0, 1): d(0,1)=1 plus (c(u=4)+c(1))/2 = 5.
  EXPECT_DOUBLE_EQ(inst.edge_cost(0, 1), 1.0 + (8.0 + 2.0) / 2.0);
  // edge (1, 2): d=1 plus (c(1)+c(2))/2 = 3.
  EXPECT_DOUBLE_EQ(inst.edge_cost(1, 2), 1.0 + (2.0 + 4.0) / 2.0);
  // edge (s, u): d(0,4)=4 plus (c(4)+c(4))/2 = 8.
  EXPECT_DOUBLE_EQ(inst.edge_cost(0, 4), 4.0 + 8.0);
}

TEST(StrollInstance, PathCostTelescopesToWalkCost) {
  // §IV "first characteristic": the instance cost of a simple s→u path equals
  // the setup cost of its interior+last VMs plus shortest-path connections.
  Fixture f = line5();
  const auto mc = closure_for(f);
  const auto inst = build_stroll_instance(f.g, mc, 0, f.vms, 4, f.node_cost);
  // Path 0 -> 2 -> 4 visits VMs 2 and 4.
  const Cost path_cost = inst.edge_cost(0, 1 /*node 2? index*/);
  (void)path_cost;
  // Find indices of graph nodes 2 and 4.
  auto idx = [&](NodeId v) {
    for (std::size_t i = 0; i < inst.nodes.size(); ++i) {
      if (inst.nodes[i] == v) return i;
    }
    return std::size_t{999};
  };
  const Cost c = inst.edge_cost(0, idx(2)) + inst.edge_cost(idx(2), idx(4));
  // Setup: c(2)+c(4) = 12; connection: d(0,2)+d(2,4) = 4.
  EXPECT_DOUBLE_EQ(c, 16.0);
}

class TriangleInequality : public ::testing::TestWithParam<int> {};

TEST_P(TriangleInequality, Lemma1HoldsOnRandomInstances) {
  Fixture f = random_fixture(static_cast<std::uint64_t>(GetParam()) * 31 + 5, 18, 7);
  const auto mc = closure_for(f);
  for (NodeId u : f.vms) {
    const auto inst = build_stroll_instance(f.g, mc, f.source, f.vms, u, f.node_cost);
    const std::size_t n = inst.size();
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        for (std::size_t c = 0; c < n; ++c) {
          if (a == b || b == c || a == c) continue;
          EXPECT_LE(inst.edge_cost(a, c), inst.edge_cost(a, b) + inst.edge_cost(b, c) + 1e-9)
              << "triangle inequality violated (Lemma 1)";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleInequality, ::testing::Range(1, 9));

TEST(StrollSolver, TrivialKTwo) {
  Fixture f = line5();
  const auto mc = closure_for(f);
  const auto inst = build_stroll_instance(f.g, mc, 0, f.vms, 4, f.node_cost);
  const auto s = solve_stroll(inst, 2);
  ASSERT_TRUE(s.feasible());
  EXPECT_EQ(s.order.size(), 2u);
  EXPECT_DOUBLE_EQ(s.cost, inst.edge_cost(0, inst.last_index));
}

TEST(StrollSolver, InfeasibleWhenTooFewNodes) {
  Fixture f = line5();
  const auto mc = closure_for(f);
  const auto inst = build_stroll_instance(f.g, mc, 0, f.vms, 4, f.node_cost);
  EXPECT_FALSE(solve_stroll(inst, 7).feasible());   // only 5 nodes exist
  EXPECT_FALSE(exact_dp(inst, 7).feasible());
}

TEST(StrollSolver, LineNetworkOrderedVisit) {
  // On a line with increasing VM costs, the cheapest 3-stroll 0→4 takes the
  // cheapest intermediate VM (node 1).
  Fixture f = line5();
  const auto mc = closure_for(f);
  const auto inst = build_stroll_instance(f.g, mc, 0, f.vms, 4, f.node_cost);
  const auto s = exact_dp(inst, 3);
  ASSERT_TRUE(s.feasible());
  EXPECT_EQ(inst.nodes[s.order[1]], 1);
}

struct QualityCase {
  int seed;
  int nodes, vms, k;
};

class StrollQuality : public ::testing::TestWithParam<QualityCase> {};

TEST_P(StrollQuality, HeuristicNearExactOnPaperScales) {
  const auto [seed, n, m, k] = GetParam();
  Fixture f = random_fixture(static_cast<std::uint64_t>(seed) * 977 + 13, n, m);
  const auto mc = closure_for(f);
  for (NodeId u : f.vms) {
    const auto inst = build_stroll_instance(f.g, mc, f.source, f.vms, u, f.node_cost);
    const auto heur = solve_stroll(inst, k, StrollAlgorithm::kCheapestInsertion);
    const auto exact = solve_stroll(inst, k, StrollAlgorithm::kExactDp);
    ASSERT_EQ(heur.feasible(), exact.feasible());
    if (!exact.feasible()) continue;
    // Structure checks.
    EXPECT_EQ(heur.order.size(), static_cast<std::size_t>(k));
    EXPECT_EQ(heur.order.front(), 0u);
    EXPECT_EQ(heur.order.back(), inst.last_index);
    std::set<std::size_t> distinct(heur.order.begin(), heur.order.end());
    EXPECT_EQ(distinct.size(), heur.order.size());
    // Quality: never better than exact; within 25% at the paper's k <= 8.
    EXPECT_GE(heur.cost, exact.cost - 1e-9);
    EXPECT_LE(heur.cost, 1.25 * exact.cost + 1e-9);
    // Cost field consistent with the order.
    EXPECT_NEAR(heur.cost, inst.path_cost(heur.order), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrollQuality,
    ::testing::Values(QualityCase{1, 12, 5, 3}, QualityCase{2, 14, 6, 4},
                      QualityCase{3, 16, 7, 5}, QualityCase{4, 18, 8, 6},
                      QualityCase{5, 20, 9, 7}, QualityCase{6, 15, 6, 4},
                      QualityCase{7, 22, 10, 8}, QualityCase{8, 13, 5, 4},
                      QualityCase{9, 17, 8, 5}, QualityCase{10, 19, 9, 6}));

TEST(StrollInstance, AppendixDSourceCostTelescopes) {
  Fixture f = line5();
  const auto mc = closure_for(f);
  const Cost cs = 10.0;
  const auto inst = build_stroll_instance(f.g, mc, 0, f.vms, 4, f.node_cost, cs);
  auto idx = [&](NodeId v) {
    for (std::size_t i = 0; i < inst.nodes.size(); ++i) {
      if (inst.nodes[i] == v) return i;
    }
    return std::size_t{999};
  };
  // Walk 0 -> 2 -> 4: cost must be c(s) + c(2) + c(4) + d(0,2) + d(2,4) = 26.
  const Cost c = inst.edge_cost(0, idx(2)) + inst.edge_cost(idx(2), idx(4));
  EXPECT_DOUBLE_EQ(c, cs + 4.0 + 8.0 + 2.0 + 2.0);
  // Direct edge (s, u) carries the full c(s) + c(u).
  EXPECT_DOUBLE_EQ(inst.edge_cost(0, idx(4)), 4.0 + cs + 8.0);
}

TEST(StrollSolver, ImproveNeverWorsens) {
  Fixture f = random_fixture(4242, 20, 8);
  const auto mc = closure_for(f);
  const auto inst = build_stroll_instance(f.g, mc, f.source, f.vms, f.vms.back(), f.node_cost);
  auto s = cheapest_insertion(inst, 5);
  ASSERT_TRUE(s.feasible());
  const Cost before = s.cost;
  improve_stroll(inst, s);
  EXPECT_LE(s.cost, before + 1e-9);
}

}  // namespace
}  // namespace sofe::kstroll
