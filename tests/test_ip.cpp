// IP-model tests (Section III-A): variable numbering, constraint counts,
// forest→assignment consistency (objective == forest cost on tree-like
// solutions), violation detection, and LP export sanity.

#include <gtest/gtest.h>

#include "sofe/core/sofda.hpp"
#include "sofe/core/sofda_ss.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/ip/model.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::ip {
namespace {

Problem small_problem() {
  Problem p;
  p.network = core::Graph(5);
  p.network.add_edge(0, 1, 1.0);
  p.network.add_edge(1, 2, 2.0);
  p.network.add_edge(2, 3, 1.0);
  p.network.add_edge(3, 4, 1.0);
  p.network.add_edge(1, 3, 1.5);
  p.node_cost = {0, 3, 2, 0, 0};
  p.is_vm = {0, 1, 1, 0, 0};
  p.sources = {0};
  p.destinations = {4};
  p.chain_length = 2;
  return p;
}

ServiceForest feasible_forest() {
  ServiceForest f;
  core::ChainWalk w;
  w.source = 0;
  w.destination = 4;
  w.nodes = {0, 1, 2, 3, 4};
  w.vnf_pos = {1, 2};
  f.walks.push_back(w);
  return f;
}

TEST(IpModel, VariableCounts) {
  const Problem p = small_problem();
  const IpModel model(p);
  const int n = 5, arcs = 10, dests = 1, chain = 2;
  const int expect = dests * (chain + 2) * n      // gamma
                     + dests * (chain + 1) * arcs  // pi
                     + (chain + 1) * arcs          // tau
                     + chain * n;                  // sigma
  EXPECT_EQ(model.num_variables(), expect);
}

TEST(IpModel, ForestAssignmentIsFeasible) {
  const Problem p = small_problem();
  const IpModel model(p);
  const auto a = model.from_forest(feasible_forest());
  const auto bad = model.violated(a);
  EXPECT_TRUE(bad.empty()) << "violated: " << (bad.empty() ? "" : bad.front());
}

TEST(IpModel, ObjectiveEqualsForestCost) {
  const Problem p = small_problem();
  const IpModel model(p);
  const auto f = feasible_forest();
  const auto a = model.from_forest(f);
  EXPECT_NEAR(model.objective(a), core::total_cost(p, f), 1e-9);
}

TEST(IpModel, DetectsMissingSource) {
  const Problem p = small_problem();
  const IpModel model(p);
  auto a = model.from_forest(feasible_forest());
  // Clear gamma for the source role.
  a.gamma[static_cast<std::size_t>(model.var_gamma(0, 0, 0))] = 0;
  const auto bad = model.violated(a);
  EXPECT_FALSE(bad.empty());
}

TEST(IpModel, DetectsTwoVnfsOnOneVm) {
  const Problem p = small_problem();
  const IpModel model(p);
  auto a = model.from_forest(feasible_forest());
  // Force sigma for both stages on VM 1 (sigma storage starts at
  // var_sigma(1, 0)).
  const int sigma_base = model.var_sigma(1, 0);
  a.sigma[static_cast<std::size_t>(model.var_sigma(1, 1) - sigma_base)] = 1;
  a.sigma[static_cast<std::size_t>(model.var_sigma(2, 1) - sigma_base)] = 1;
  bool found = false;
  for (const auto& name : model.violated(a)) {
    if (name.find("one_vnf") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(IpModel, DetectsBrokenFlow) {
  const Problem p = small_problem();
  const IpModel model(p);
  auto a = model.from_forest(feasible_forest());
  // Remove one pi arc from the walk: constraint (7) must trip somewhere.
  bool cleared = false;
  for (std::size_t i = 0; i < a.pi.size() && !cleared; ++i) {
    if (a.pi[i] != 0) {
      a.pi[i] = 0;
      cleared = true;
    }
  }
  ASSERT_TRUE(cleared);
  EXPECT_FALSE(model.violated(a).empty());
}

TEST(IpModel, SofdaOutputsSatisfyTheIp) {
  util::Rng rng(5150);
  for (int trial = 0; trial < 8; ++trial) {
    Problem p;
    const int n = rng.uniform_int(8, 14);
    p.network = core::Graph(n);
    for (core::NodeId v = 1; v < n; ++v) {
      p.network.add_edge(v, static_cast<core::NodeId>(rng.index(static_cast<std::size_t>(v))),
                         rng.uniform(0.5, 3.0));
    }
    for (int e = 0; e < n; ++e) {
      const auto u = static_cast<core::NodeId>(rng.index(static_cast<std::size_t>(n)));
      const auto v = static_cast<core::NodeId>(rng.index(static_cast<std::size_t>(n)));
      if (u != v && p.network.find_edge(u, v) == graph::kInvalidEdge) {
        p.network.add_edge(u, v, rng.uniform(0.5, 3.0));
      }
    }
    p.node_cost.assign(static_cast<std::size_t>(n), 0.0);
    p.is_vm.assign(static_cast<std::size_t>(n), 0);
    const auto picks = rng.sample_without_replacement(static_cast<std::size_t>(n), 6u);
    for (int i = 0; i < 3; ++i) {
      const auto v = static_cast<core::NodeId>(picks[static_cast<std::size_t>(i)]);
      p.is_vm[static_cast<std::size_t>(v)] = 1;
      p.node_cost[static_cast<std::size_t>(v)] = rng.uniform(1.0, 4.0);
    }
    p.sources = {static_cast<core::NodeId>(picks[3]), static_cast<core::NodeId>(picks[4])};
    p.destinations = {static_cast<core::NodeId>(picks[5])};
    p.chain_length = 2;

    const auto f = core::sofda(p);
    if (f.empty()) continue;
    ASSERT_TRUE(core::is_feasible(p, f));
    const IpModel model(p);
    const auto a = model.from_forest(f);
    const auto bad = model.violated(a);
    EXPECT_TRUE(bad.empty()) << "first violation: " << (bad.empty() ? "" : bad.front());
    // τ is directed, forest accounting is undirected: objective can only
    // exceed the forest cost (equal for tree-like solutions).
    EXPECT_GE(model.objective(a) + 1e-9, core::total_cost(p, f));
  }
}

TEST(IpModel, LpExportContainsSections) {
  const Problem p = small_problem();
  const IpModel model(p);
  const std::string lp = model.export_lp();
  EXPECT_NE(lp.find("Minimize"), std::string::npos);
  EXPECT_NE(lp.find("Subject To"), std::string::npos);
  EXPECT_NE(lp.find("Binary"), std::string::npos);
  EXPECT_NE(lp.find("End"), std::string::npos);
  EXPECT_NE(lp.find("sigma_f1_u1"), std::string::npos);
  EXPECT_NE(lp.find("flow_d0_f0_u0"), std::string::npos);
}

TEST(IpModel, ConstraintFamiliesPresent) {
  const Problem p = small_problem();
  const IpModel model(p);
  int src = 0, vm = 0, dest = 0, enable = 0, one = 0, flow = 0, layer = 0;
  for (const auto& c : model.constraints()) {
    if (c.name.rfind("src_", 0) == 0) ++src;
    if (c.name.rfind("vm_", 0) == 0) ++vm;
    if (c.name.rfind("dest_role", 0) == 0) ++dest;
    if (c.name.rfind("enable_", 0) == 0) ++enable;
    if (c.name.rfind("one_vnf", 0) == 0) ++one;
    if (c.name.rfind("flow_", 0) == 0) ++flow;
    if (c.name.rfind("layer_", 0) == 0) ++layer;
  }
  EXPECT_GT(src, 0);
  EXPECT_GT(vm, 0);
  EXPECT_EQ(dest, 5);        // one per node for the single destination
  EXPECT_EQ(enable, 2 * 5);  // per destination, stage, node
  EXPECT_EQ(one, 5);
  EXPECT_EQ(flow, 3 * 5);    // stages {fS, f1, f2} × nodes
  EXPECT_EQ(layer, 3 * 10);  // stages × directed arcs
}

}  // namespace
}  // namespace sofe::ip
