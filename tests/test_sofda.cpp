// SOFDA (Algorithm 2) tests: feasibility across instance shapes, multi-tree
// advantage (the paper's Fig. 1 motivation), the 3ρST envelope against the
// exact solver, and the Lemma-2 Steiner-certificate bound.

#include <gtest/gtest.h>

#include "sofe/core/sofda.hpp"
#include "sofe/core/sofda_ss.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/exact/solver.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::core {
namespace {

Problem random_problem(std::uint64_t seed, int n, int m, int srcs, int dests, int chain) {
  util::Rng rng(seed);
  Problem p;
  p.network = Graph(n);
  for (NodeId v = 1; v < n; ++v) {
    p.network.add_edge(v, static_cast<NodeId>(rng.index(static_cast<std::size_t>(v))),
                       rng.uniform(0.5, 4.0));
  }
  for (int e = 0; e < 2 * n; ++e) {
    const NodeId u = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    const NodeId v = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    if (u != v && p.network.find_edge(u, v) == graph::kInvalidEdge) {
      p.network.add_edge(u, v, rng.uniform(0.5, 4.0));
    }
  }
  p.node_cost.assign(static_cast<std::size_t>(n), 0.0);
  p.is_vm.assign(static_cast<std::size_t>(n), 0);
  const auto picks = rng.sample_without_replacement(static_cast<std::size_t>(n),
                                                    static_cast<std::size_t>(m + srcs + dests));
  int k = 0;
  for (int i = 0; i < m; ++i, ++k) {
    const NodeId v = static_cast<NodeId>(picks[static_cast<std::size_t>(k)]);
    p.is_vm[static_cast<std::size_t>(v)] = 1;
    p.node_cost[static_cast<std::size_t>(v)] = rng.uniform(0.5, 5.0);
  }
  for (int i = 0; i < srcs; ++i, ++k) {
    p.sources.push_back(static_cast<NodeId>(picks[static_cast<std::size_t>(k)]));
  }
  for (int i = 0; i < dests; ++i, ++k) {
    p.destinations.push_back(static_cast<NodeId>(picks[static_cast<std::size_t>(k)]));
  }
  p.chain_length = chain;
  return p;
}

TEST(Sofda, TwoIslandsNeedTwoTrees) {
  // Two well-separated clusters, one source+VMs+destination in each; a
  // single tree would pay the expensive inter-cluster bridge twice.
  Problem p;
  p.network = Graph(10);
  // Cluster A: 0(src) -1- 1(vm) -1- 2(vm) -1- 3(dst), chord 0-3.
  p.network.add_edge(0, 1, 1.0);
  p.network.add_edge(1, 2, 1.0);
  p.network.add_edge(2, 3, 1.0);
  p.network.add_edge(0, 3, 1.5);
  // Cluster B mirrors: 5(src) - 6(vm) - 7(vm) - 8(dst), chord 5-8.
  p.network.add_edge(5, 6, 1.0);
  p.network.add_edge(6, 7, 1.0);
  p.network.add_edge(7, 8, 1.0);
  p.network.add_edge(5, 8, 1.5);
  // Expensive bridge.
  p.network.add_edge(3, 5, 50.0);
  p.network.add_edge(4, 0, 1.0);  // spare switches to keep ids dense
  p.network.add_edge(9, 8, 1.0);
  p.node_cost = {0, 1, 1, 0, 0, 0, 1, 1, 0, 0};
  p.is_vm = {0, 1, 1, 0, 0, 0, 1, 1, 0, 0};
  p.sources = {0, 5};
  p.destinations = {3, 8};
  p.chain_length = 2;

  SofdaStats stats;
  const auto f = sofda(p, {}, &stats);
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(is_feasible(p, f)) << validate(p, f).summary();
  EXPECT_EQ(f.used_sources().size(), 2u) << "SOFDA should build two trees";
  EXPECT_LT(total_cost(p, f), 20.0) << "must avoid the 50-cost bridge";
  EXPECT_EQ(stats.deployed_chains, 2);
}

TEST(Sofda, SingleSourceMatchesReasonableCost) {
  Problem p = random_problem(42, 16, 6, 1, 3, 2);
  const auto f = sofda(p);
  if (f.empty()) GTEST_SKIP();
  EXPECT_TRUE(is_feasible(p, f)) << validate(p, f).summary();
  const auto fss = sofda_ss(p, p.sources.front());
  ASSERT_FALSE(fss.empty());
  // Same problem, two valid algorithms; both within 4x of each other.
  EXPECT_LT(total_cost(p, f), 4.0 * total_cost(p, fss) + 1e-9);
}

TEST(Sofda, EmptyDestinations) {
  Problem p = random_problem(7, 12, 4, 2, 1, 2);
  p.destinations.clear();
  EXPECT_TRUE(sofda(p).empty());
}

TEST(Sofda, ChainLengthZeroIsPureMulticast) {
  Problem p = random_problem(8, 14, 4, 2, 4, 2);
  p.chain_length = 0;
  const auto f = sofda(p);
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(is_feasible(p, f)) << validate(p, f).summary();
  EXPECT_DOUBLE_EQ(setup_cost(p, f), 0.0);
}

TEST(Sofda, StatsArePopulated) {
  Problem p = random_problem(11, 18, 6, 3, 4, 2);
  SofdaStats stats;
  const auto f = sofda(p, {}, &stats);
  if (f.empty()) GTEST_SKIP();
  EXPECT_GT(stats.candidate_chains, 0);
  EXPECT_GT(stats.deployed_chains, 0);
  EXPECT_GT(stats.steiner_tree_cost, 0.0);
  EXPECT_EQ(stats.rehomed_destinations, 0);
}

class SofdaFeasibility : public ::testing::TestWithParam<int> {};

TEST_P(SofdaFeasibility, AlwaysFeasibleOnRandomInstances) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  util::Rng shape(seed * 31337);
  const int n = shape.uniform_int(12, 40);
  const int m = shape.uniform_int(3, 8);
  const int srcs = shape.uniform_int(1, 4);
  const int dests = shape.uniform_int(1, 6);
  const int chain = shape.uniform_int(1, std::min(3, m));
  Problem p = random_problem(seed * 997 + 3, n, m, srcs, dests, chain);
  SofdaStats stats;
  const auto f = sofda(p, {}, &stats);
  if (f.empty()) GTEST_SKIP() << "infeasible instance";
  EXPECT_TRUE(is_feasible(p, f)) << validate(p, f).summary();
  EXPECT_EQ(stats.conflicts.dropped, 0) << "conflict resolution should never drop";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SofdaFeasibility, ::testing::Range(1, 41));

class SofdaEnvelope : public ::testing::TestWithParam<int> {};

TEST_P(SofdaEnvelope, WithinSixTimesOptimal) {
  // Theorem 3 with ρST = 2: cost(F) <= 6·OPT.  Empirically ~1.0-1.3x.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Problem p = random_problem(seed * 733 + 1, 14, 5, 2, 3, 2);
  SofdaStats stats;
  const auto f = sofda(p, {}, &stats);
  if (f.empty()) GTEST_SKIP();
  ASSERT_TRUE(is_feasible(p, f)) << validate(p, f).summary();
  const auto exact = exact::solve_exact(p);
  ASSERT_TRUE(exact.optimal);
  EXPECT_GE(total_cost(p, f) + 1e-9, exact.cost);
  EXPECT_LE(total_cost(p, f), 6.0 * exact.cost + 1e-9);
  // Lemma 2 certificate: the Ĝ Steiner tree costs at most 3·ρST·OPT.
  EXPECT_LE(stats.steiner_tree_cost, 6.0 * exact.cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SofdaEnvelope, ::testing::Range(1, 21));

TEST(Sofda, VnfConflictInstanceResolvedFeasibly) {
  // Engineered crossing chains: two sources on opposite sides of a shared
  // VM pair — virtual edges overlap and Procedure 4 must kick in or the
  // shared VMs must agree on indices.
  Problem p;
  p.network = Graph(8);
  p.network.add_edge(0, 2, 1.0);
  p.network.add_edge(2, 3, 1.0);
  p.network.add_edge(3, 4, 1.0);
  p.network.add_edge(4, 1, 1.0);
  p.network.add_edge(2, 5, 1.0);   // dst A off VM 2
  p.network.add_edge(4, 6, 1.0);   // dst B off VM 4
  p.network.add_edge(3, 7, 4.0);   // spare
  p.node_cost = {0, 0, 2, 2, 2, 0, 0, 0};
  p.is_vm = {0, 0, 1, 1, 1, 0, 0, 0};
  p.sources = {0, 1};
  p.destinations = {5, 6};
  p.chain_length = 2;
  SofdaStats stats;
  const auto f = sofda(p, {}, &stats);
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(is_feasible(p, f)) << validate(p, f).summary();
  EXPECT_EQ(stats.rehomed_destinations, 0);
}

TEST(Sofda, DeterministicAcrossRuns) {
  Problem p = random_problem(99, 20, 6, 3, 4, 2);
  const auto f1 = sofda(p);
  const auto f2 = sofda(p);
  ASSERT_EQ(f1.walks.size(), f2.walks.size());
  EXPECT_DOUBLE_EQ(total_cost(p, f1), total_cost(p, f2));
}

TEST(Sofda, MoreSourcesNeverHurtMuch) {
  // Adding sources enlarges the solution space; SOFDA's result should not
  // get significantly worse (exact monotonicity is not guaranteed for an
  // approximation, so allow a small tolerance).
  Problem p = random_problem(123, 24, 6, 1, 4, 2);
  const auto f1 = sofda(p);
  if (f1.empty()) GTEST_SKIP();
  Problem p2 = p;
  for (NodeId v = 0; v < p.network.node_count(); ++v) {
    if (!p.is_vm[static_cast<std::size_t>(v)] && p2.sources.size() < 4 &&
        std::find(p.destinations.begin(), p.destinations.end(), v) == p.destinations.end() &&
        v != p.sources.front()) {
      p2.sources.push_back(v);
    }
  }
  const auto f2 = sofda(p2);
  ASSERT_FALSE(f2.empty());
  EXPECT_TRUE(is_feasible(p2, f2));
  EXPECT_LE(total_cost(p2, f2), 1.5 * total_cost(p, f1) + 1e-9);
}

}  // namespace
}  // namespace sofe::core
