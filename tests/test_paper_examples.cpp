// Scenario tests encoding the paper's narrative claims on hand-verifiable
// instances (the arXiv source's figure labels are partly garbled, so these
// are reconstructions that pin the *claims*, with optima checked against the
// exact solver rather than transcribed numbers — DESIGN.md §6).

#include <gtest/gtest.h>

#include "sofe/baselines/baselines.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/exact/solver.hpp"

namespace sofe {
namespace {

using core::Graph;
using core::NodeId;
using core::Problem;
using core::total_cost;

/// Fig. 1's moral: when destinations sit near distinct cheap source/VM
/// clusters, a two-tree forest costs a fraction of any single service tree.
Problem fig1_style() {
  Problem p;
  p.network = Graph(12);
  // Cluster A: source 0 - vm 1 - vm 2 - dest 3 (all unit links).
  p.network.add_edge(0, 1, 1.0);
  p.network.add_edge(1, 2, 1.0);
  p.network.add_edge(2, 3, 1.0);
  // Cluster B: source 6 - vm 7 - vm 8 - dest 9.
  p.network.add_edge(6, 7, 1.0);
  p.network.add_edge(7, 8, 1.0);
  p.network.add_edge(8, 9, 1.0);
  // Pricey inter-cluster trunk through switches 4, 5.
  p.network.add_edge(3, 4, 10.0);
  p.network.add_edge(4, 5, 10.0);
  p.network.add_edge(5, 9, 10.0);
  // Idle switches to round out the graph.
  p.network.add_edge(10, 4, 1.0);
  p.network.add_edge(11, 5, 1.0);
  p.node_cost = {0, 1, 1, 0, 0, 0, 0, 1, 1, 0, 0, 0};
  p.is_vm = {0, 1, 1, 0, 0, 0, 0, 1, 1, 0, 0, 0};
  p.sources = {0, 6};
  p.destinations = {3, 9};
  p.chain_length = 2;
  return p;
}

TEST(PaperExamples, Fig1ForestBeatsTreeByLargeFactor) {
  const Problem p = fig1_style();
  // Hand optimum: two independent trees, each 3 unit links + 2 unit VMs = 5;
  // total 10.  Any single tree pays >= 30 on the trunk alone.
  const auto exact = exact::solve_exact(p);
  ASSERT_TRUE(exact.optimal);
  EXPECT_DOUBLE_EQ(exact.cost, 10.0);
  EXPECT_EQ(exact.forest.used_sources().size(), 2u);

  const auto f = core::sofda(p);
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(core::is_feasible(p, f));
  EXPECT_DOUBLE_EQ(total_cost(p, f), 10.0) << "SOFDA should find the two-tree optimum";

  // The single-tree baseline must pay the trunk; the paper's Fig. 1 reports
  // a ~60% saving for the forest — ours is comparable.
  const auto st = baselines::run(p, baselines::Kind::kSt);
  ASSERT_FALSE(st.empty());
  EXPECT_GE(total_cost(p, st), 2.5 * total_cost(p, f))
      << "single tree should cost several times the forest here";
}

TEST(PaperExamples, Example2WalkRevisitsNode) {
  // §III Example 1 / §IV Example 2 geometry: the cheap VMs sit on spurs, so
  // the optimal chain walk must bounce through a hub ("clones" of a node).
  Problem p;
  p.network = Graph(6);
  p.network.add_edge(0, 1, 1.0);  // source - hub
  p.network.add_edge(1, 2, 1.0);  // hub - vmA (spur)
  p.network.add_edge(1, 3, 1.0);  // hub - vmB (spur)
  p.network.add_edge(1, 4, 1.0);  // hub - switch
  p.network.add_edge(4, 5, 1.0);  // switch - dest
  p.node_cost = {0, 0, 1, 1, 0, 0};
  p.is_vm = {0, 0, 1, 1, 0, 0};
  p.sources = {0};
  p.destinations = {5};
  p.chain_length = 2;

  const auto exact = exact::solve_exact(p);
  ASSERT_TRUE(exact.optimal);
  // Walk 0-1-2(f1)-1-3(f2)-1-4-5: links 1+1+1+1+1+1+1 = 7, VMs 2 => 9.
  EXPECT_DOUBLE_EQ(exact.cost, 9.0);

  const auto f = core::sofda(p);
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(core::is_feasible(p, f));
  EXPECT_DOUBLE_EQ(total_cost(p, f), 9.0);
  // The walk genuinely revisits the hub (node 1 appears >= 2 times).
  int hub_visits = 0;
  for (NodeId v : f.walks.front().nodes) {
    if (v == 1) ++hub_visits;
  }
  EXPECT_GE(hub_visits, 2) << "the service chain must clone the hub node";
}

TEST(PaperExamples, MultipleSourcesDoNotForceMultipleTrees) {
  // The forest *generalizes* the tree: when VMs are scarce and clustered,
  // the optimum collapses to one shared service tree even though several
  // sources are available (cf. §III Example 1, where the third — optimal —
  // forest is a single tree).
  Problem p;
  p.network = Graph(7);
  p.network.add_edge(0, 1, 1.0);  // source A - vm1
  p.network.add_edge(1, 2, 1.0);  // vm1 - vm2
  p.network.add_edge(2, 3, 1.0);  // vm2 - fanout switch
  p.network.add_edge(3, 4, 1.0);  // - d1
  p.network.add_edge(3, 5, 1.0);  // - d2
  p.network.add_edge(6, 3, 4.0);  // source B hangs far from the only VMs
  p.node_cost = {0, 1, 1, 0, 0, 0, 0};
  p.is_vm = {0, 1, 1, 0, 0, 0, 0};
  p.sources = {0, 6};
  p.destinations = {4, 5};
  p.chain_length = 2;

  const auto exact = exact::solve_exact(p);
  ASSERT_TRUE(exact.optimal);
  // Hand optimum: source 0, f1@1, f2@2, shared fan-out:
  // links (0,1)+(1,2)+(2,3)+(3,4)+(3,5) = 5, VMs 1+1 = 2 -> 7.
  EXPECT_DOUBLE_EQ(exact.cost, 7.0);
  EXPECT_EQ(exact.forest.used_sources().size(), 1u);

  const auto f = core::sofda(p);
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(core::is_feasible(p, f));
  EXPECT_DOUBLE_EQ(total_cost(p, f), 7.0);
  EXPECT_EQ(f.used_sources().size(), 1u) << "SOFDA must not force a second tree";
}

}  // namespace
}  // namespace sofe
