// Online-deployment simulator tests (Section VIII-C): accumulative-cost
// bookkeeping, load charging, price growth under congestion, and paired
// request sequences across algorithms.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "sofe/api/registry.hpp"
#include "sofe/api/report.hpp"
#include "sofe/baselines/baselines.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/online/simulator.hpp"
#include "sofe/online/stream.hpp"

namespace sofe::online {
namespace {

OnlineConfig small_config() {
  OnlineConfig cfg;
  cfg.requests = 8;
  cfg.min_destinations = 2;
  cfg.max_destinations = 4;
  cfg.min_sources = 2;
  cfg.max_sources = 3;
  cfg.chain_length = 2;
  cfg.vms_per_dc = 2;
  cfg.seed = 5;
  return cfg;
}

EmbedFn sofda_fn() {
  return [](const Problem& p) { return core::sofda(p); };
}

TEST(Online, AccumulativeCostMonotone) {
  const auto topo = topology::softlayer();
  const auto r = simulate(topo, small_config(), "SOFDA", sofda_fn());
  ASSERT_EQ(r.accumulative_cost.size(), 8u);
  for (std::size_t i = 1; i < r.accumulative_cost.size(); ++i) {
    EXPECT_GE(r.accumulative_cost[i], r.accumulative_cost[i - 1]);
  }
  EXPECT_EQ(r.infeasible_requests, 0);
  EXPECT_EQ(r.algorithm, "SOFDA");
}

TEST(Online, PerRequestSumsToAccumulative) {
  const auto topo = topology::softlayer();
  const auto r = simulate(topo, small_config(), "SOFDA", sofda_fn());
  double sum = 0.0;
  for (std::size_t i = 0; i < r.per_request_cost.size(); ++i) {
    sum += r.per_request_cost[i];
    EXPECT_NEAR(sum, r.accumulative_cost[i], 1e-9);
  }
}

TEST(Online, EmbeddingsAreValidatedPerRequest) {
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  int checked = 0;
  const auto fn = [&checked](const Problem& p) {
    auto f = core::sofda(p);
    if (!f.empty()) {
      EXPECT_TRUE(core::is_feasible(p, f)) << core::validate(p, f).summary();
      ++checked;
    }
    return f;
  };
  simulate(topo, cfg, "checked", fn);
  EXPECT_EQ(checked, cfg.requests);
}

TEST(Online, PricesRiseWithLoad) {
  // With many requests the same cheap links get loaded, so the marginal
  // request cost trends upward (Fortz-Thorup convexity).
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 24;
  const auto r = simulate(topo, cfg, "SOFDA", sofda_fn());
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 8; ++i) early += r.per_request_cost[static_cast<std::size_t>(i)];
  for (int i = 16; i < 24; ++i) late += r.per_request_cost[static_cast<std::size_t>(i)];
  EXPECT_GT(late, early) << "costs should grow as the network loads up";
}

TEST(Online, SameSeedSameRequestSequence) {
  const auto topo = topology::softlayer();
  const auto cfg = small_config();
  // Two algorithms see identical request workloads: with an identical
  // embedder the whole series must match.
  const auto a = simulate(topo, cfg, "A", sofda_fn());
  const auto b = simulate(topo, cfg, "B", sofda_fn());
  ASSERT_EQ(a.accumulative_cost.size(), b.accumulative_cost.size());
  for (std::size_t i = 0; i < a.accumulative_cost.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.accumulative_cost[i], b.accumulative_cost[i]);
  }
}

TEST(Online, SofdaAccumulatesLessThanBaselines) {
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 12;
  const auto sofda_r = simulate(topo, cfg, "SOFDA", sofda_fn());
  const auto est_r = simulate(topo, cfg, "eST", [](const Problem& p) {
    return baselines::run(p, baselines::Kind::kEst);
  });
  const auto st_r = simulate(topo, cfg, "ST", [](const Problem& p) {
    return baselines::run(p, baselines::Kind::kSt);
  });
  // Fig. 12 shape: SOFDA's accumulative cost stays below the baselines.
  EXPECT_LT(sofda_r.accumulative_cost.back(), est_r.accumulative_cost.back());
  EXPECT_LT(sofda_r.accumulative_cost.back(), st_r.accumulative_cost.back());
}

TEST(Online, InfeasibleEmbedderCountsAndContinues) {
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 3;
  const auto r = simulate(topo, cfg, "null", [](const Problem&) { return ServiceForest{}; });
  EXPECT_EQ(r.infeasible_requests, 3);
  EXPECT_DOUBLE_EQ(r.accumulative_cost.back(), 0.0);
}

void expect_results_identical(const OnlineResult& a, const OnlineResult& b) {
  ASSERT_EQ(a.accumulative_cost.size(), b.accumulative_cost.size());
  for (std::size_t i = 0; i < a.accumulative_cost.size(); ++i) {
    EXPECT_EQ(a.accumulative_cost[i], b.accumulative_cost[i]) << "arrival " << i;  // bitwise
    EXPECT_EQ(a.per_request_cost[i], b.per_request_cost[i]) << "arrival " << i;
  }
  EXPECT_EQ(a.infeasible_requests, b.infeasible_requests);
  EXPECT_EQ(a.overloaded_links, b.overloaded_links);
}

TEST(OnlinePersistentProblem, BitIdenticalToTheCopyingReferenceDriver) {
  // The persistent-Problem simulator must hand every embedder exactly the
  // values the historical copy-per-arrival driver produced.
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 10;
  const auto persistent = simulate(topo, cfg, "SOFDA", sofda_fn());
  auto ref_cfg = cfg;
  ref_cfg.copy_problems = true;
  const auto copying = simulate(topo, ref_cfg, "SOFDA", sofda_fn());
  expect_results_identical(persistent, copying);
}

TEST(OnlinePersistentProblem, SessionWithRepairBitIdenticalToCopyingReference) {
  // The full acceptance chain: persistent Problem -> cost-only deltas ->
  // ClosureSession repair, against the copying driver + per-arrival
  // rebuilds.  Forests, costs and the accept/reject sequence must agree
  // bit for bit.
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 10;

  auto incremental = api::make_solver("sofda");
  const auto repaired = simulate(topo, cfg, *incremental);

  auto ref_cfg = cfg;
  ref_cfg.copy_problems = true;
  api::SolverOptions rebuild_opt;
  rebuild_opt.incremental = false;
  auto rebuilding = api::make_solver("sofda", rebuild_opt);
  const auto rebuilt = simulate(topo, ref_cfg, *rebuilding);

  expect_results_identical(repaired, rebuilt);
}

TEST(OnlinePersistentProblem, SessionSeesCostDeltasAndRepairs) {
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 8;
  auto solver = api::make_solver("sofda");
  api::ReportAccumulator acc;
  solver->set_report_sink(&acc);
  (void)simulate(topo, cfg, *solver);
  EXPECT_EQ(acc.solves(), 8u);
  // After the warm-up arrival the persistent Problem feeds the session
  // cost-only deltas plus fresh source hubs: every subsequent acquire is a
  // repair (or a pure hit when the previous embedding loaded nothing new).
  EXPECT_GE(acc.repairs() + acc.cache_hits(), acc.solves() - 1);
  EXPECT_LE(acc.rebuilds(), 1u);
}

TEST(OnlineDepartures, InfiniteHoldingMatchesNoHoldingBitForBit) {
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 10;
  const auto never = simulate(topo, cfg, "SOFDA", sofda_fn());
  auto held = cfg;
  held.holding_arrivals = cfg.requests;  // departs only after the stream ends
  const auto outlives = simulate(topo, held, "SOFDA", sofda_fn());
  expect_results_identical(never, outlives);
}

TEST(OnlineDepartures, ChargesAreRestoredWhenRequestsDepart) {
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 20;
  const auto loaded = simulate(topo, cfg, "SOFDA", sofda_fn());
  auto held = cfg;
  held.holding_arrivals = 1;  // every request departs before the next
  const auto churn = simulate(topo, held, "SOFDA", sofda_fn());
  EXPECT_EQ(churn.infeasible_requests, 0);
  // With immediate departures the network never accumulates load, so the
  // final state cannot be more congested than the never-departing run, and
  // the total cost cannot exceed it (prices are monotone in load).
  EXPECT_LE(churn.overloaded_links, loaded.overloaded_links);
  EXPECT_LE(churn.accumulative_cost.back(), loaded.accumulative_cost.back());
  // Departures restore prices, so the series still matches its own
  // copying-reference run bit for bit.
  auto ref = held;
  ref.copy_problems = true;
  expect_results_identical(churn, simulate(topo, ref, "SOFDA", sofda_fn()));
}

// --- Recurring-source mode (DESIGN.md §13) -------------------------------

TEST(RecurringSources, ValidationNamesTheOffendingField) {
  auto cfg = small_config();
  cfg.source_pool = 2;  // < max_sources: a request could not fill its draw
  EXPECT_THROW(validate(cfg), std::invalid_argument);
  cfg.source_pool = -3;
  EXPECT_THROW(validate(cfg), std::invalid_argument);
  cfg.source_pool = cfg.max_sources;
  EXPECT_NO_THROW(validate(cfg));
  cfg.source_alpha = -0.1;
  EXPECT_THROW(validate(cfg), std::invalid_argument);
}

TEST(RecurringSources, EveryDrawStaysInsideOnePoolOfDistinctNodes) {
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 30;
  cfg.source_pool = 5;
  cfg.source_alpha = 1.0;
  const ArrivalStream stream(topo, cfg);
  std::set<core::NodeId> all_sources;
  for (int r = 0; r < cfg.requests; ++r) {
    const Request& req = stream.request(r);
    const std::set<core::NodeId> distinct(req.sources.begin(), req.sources.end());
    EXPECT_EQ(distinct.size(), req.sources.size()) << "duplicate source in request " << r;
    EXPECT_GE(static_cast<int>(req.sources.size()), cfg.min_sources);
    EXPECT_LE(static_cast<int>(req.sources.size()), cfg.max_sources);
    all_sources.insert(distinct.begin(), distinct.end());
    // Destinations still roam the whole topology, pool or not.
    EXPECT_LE(static_cast<int>(req.destinations.size()), cfg.max_destinations);
  }
  // 30 requests of 2-3 sources land inside the 5-node pool — the working
  // set the retention window keeps warm.
  EXPECT_LE(all_sources.size(), static_cast<std::size_t>(cfg.source_pool));

  // Same seed, same sequence: the pool draw is part of the RNG stream.
  const ArrivalStream again(topo, cfg);
  for (int r = 0; r < cfg.requests; ++r) {
    EXPECT_EQ(stream.request(r).sources, again.request(r).sources);
    EXPECT_EQ(stream.request(r).destinations, again.request(r).destinations);
  }
}

TEST(RecurringSources, RetentionTurnsReturningSourcesIntoRowHits) {
  // The steady-state claim (DESIGN.md §13): with sources recurring from a
  // fixed pool, the retention window serves returning hubs from warm rows
  // — visible as closure_row_hits — while retention 0 never does; and the
  // window is a pure speed knob, so both series are bitwise identical.
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 24;
  cfg.holding_arrivals = 4;
  cfg.source_pool = 6;
  cfg.source_alpha = 1.0;

  api::SolverOptions warm_opt;  // default retention_rows = 256
  auto warm_solver = api::make_solver("sofda", warm_opt);
  api::ReportAccumulator warm;
  warm_solver->set_report_sink(&warm);
  const auto warm_series = simulate(topo, cfg, *warm_solver);

  api::SolverOptions cold_opt;
  cold_opt.retention_rows = 0;
  auto cold_solver = api::make_solver("sofda", cold_opt);
  api::ReportAccumulator cold;
  cold_solver->set_report_sink(&cold);
  const auto cold_series = simulate(topo, cfg, *cold_solver);

  expect_results_identical(warm_series, cold_series);
  EXPECT_GT(warm.closure_row_hits(), 0u);
  EXPECT_GT(warm.closure_rows_retained(), 0u);
  EXPECT_EQ(cold.closure_row_hits(), 0u);
  EXPECT_EQ(cold.closure_rows_retained(), 0u);
  EXPECT_GT(warm.peak_closure_bytes(), 0u);
}

}  // namespace
}  // namespace sofe::online
