// Online-deployment simulator tests (Section VIII-C): accumulative-cost
// bookkeeping, load charging, price growth under congestion, and paired
// request sequences across algorithms.

#include <gtest/gtest.h>

#include "sofe/baselines/baselines.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/online/simulator.hpp"

namespace sofe::online {
namespace {

OnlineConfig small_config() {
  OnlineConfig cfg;
  cfg.requests = 8;
  cfg.min_destinations = 2;
  cfg.max_destinations = 4;
  cfg.min_sources = 2;
  cfg.max_sources = 3;
  cfg.chain_length = 2;
  cfg.vms_per_dc = 2;
  cfg.seed = 5;
  return cfg;
}

EmbedFn sofda_fn() {
  return [](const Problem& p) { return core::sofda(p); };
}

TEST(Online, AccumulativeCostMonotone) {
  const auto topo = topology::softlayer();
  const auto r = simulate(topo, small_config(), "SOFDA", sofda_fn());
  ASSERT_EQ(r.accumulative_cost.size(), 8u);
  for (std::size_t i = 1; i < r.accumulative_cost.size(); ++i) {
    EXPECT_GE(r.accumulative_cost[i], r.accumulative_cost[i - 1]);
  }
  EXPECT_EQ(r.infeasible_requests, 0);
  EXPECT_EQ(r.algorithm, "SOFDA");
}

TEST(Online, PerRequestSumsToAccumulative) {
  const auto topo = topology::softlayer();
  const auto r = simulate(topo, small_config(), "SOFDA", sofda_fn());
  double sum = 0.0;
  for (std::size_t i = 0; i < r.per_request_cost.size(); ++i) {
    sum += r.per_request_cost[i];
    EXPECT_NEAR(sum, r.accumulative_cost[i], 1e-9);
  }
}

TEST(Online, EmbeddingsAreValidatedPerRequest) {
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  int checked = 0;
  const auto fn = [&checked](const Problem& p) {
    auto f = core::sofda(p);
    if (!f.empty()) {
      EXPECT_TRUE(core::is_feasible(p, f)) << core::validate(p, f).summary();
      ++checked;
    }
    return f;
  };
  simulate(topo, cfg, "checked", fn);
  EXPECT_EQ(checked, cfg.requests);
}

TEST(Online, PricesRiseWithLoad) {
  // With many requests the same cheap links get loaded, so the marginal
  // request cost trends upward (Fortz-Thorup convexity).
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 24;
  const auto r = simulate(topo, cfg, "SOFDA", sofda_fn());
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 8; ++i) early += r.per_request_cost[static_cast<std::size_t>(i)];
  for (int i = 16; i < 24; ++i) late += r.per_request_cost[static_cast<std::size_t>(i)];
  EXPECT_GT(late, early) << "costs should grow as the network loads up";
}

TEST(Online, SameSeedSameRequestSequence) {
  const auto topo = topology::softlayer();
  const auto cfg = small_config();
  // Two algorithms see identical request workloads: with an identical
  // embedder the whole series must match.
  const auto a = simulate(topo, cfg, "A", sofda_fn());
  const auto b = simulate(topo, cfg, "B", sofda_fn());
  ASSERT_EQ(a.accumulative_cost.size(), b.accumulative_cost.size());
  for (std::size_t i = 0; i < a.accumulative_cost.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.accumulative_cost[i], b.accumulative_cost[i]);
  }
}

TEST(Online, SofdaAccumulatesLessThanBaselines) {
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 12;
  const auto sofda_r = simulate(topo, cfg, "SOFDA", sofda_fn());
  const auto est_r = simulate(topo, cfg, "eST", [](const Problem& p) {
    return baselines::run(p, baselines::Kind::kEst);
  });
  const auto st_r = simulate(topo, cfg, "ST", [](const Problem& p) {
    return baselines::run(p, baselines::Kind::kSt);
  });
  // Fig. 12 shape: SOFDA's accumulative cost stays below the baselines.
  EXPECT_LT(sofda_r.accumulative_cost.back(), est_r.accumulative_cost.back());
  EXPECT_LT(sofda_r.accumulative_cost.back(), st_r.accumulative_cost.back());
}

TEST(Online, InfeasibleEmbedderCountsAndContinues) {
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 3;
  const auto r = simulate(topo, cfg, "null", [](const Problem&) { return ServiceForest{}; });
  EXPECT_EQ(r.infeasible_requests, 3);
  EXPECT_DOUBLE_EQ(r.accumulative_cost.back(), 0.0);
}

}  // namespace
}  // namespace sofe::online
