// Capacity-constrained admission control tests (DESIGN.md §14): hard
// feasibility at the LoadLedger boundary, the three policies' decision
// rules, the strict option-string parser, sequential-vs-pipeline bitwise
// determinism of the accept/cost series, composition with departures and
// failure drills, and the fuzzed global invariants (no ledger entry ever
// exceeds capacity in enforced mode, capacity-prefix monotonicity, and
// decision-log replay reproducing the exact ledger end state).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "sofe/api/registry.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/costmodel/load_ledger.hpp"
#include "sofe/online/admission.hpp"
#include "sofe/online/pipeline.hpp"
#include "sofe/online/stream.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::online {
namespace {

using costmodel::LoadLedger;

// Small instance where hard capacity actually binds: 5 Mb/s streams over
// 20 Mb/s links saturate a popular link after four stream copies, and two
// VNF slots per host fill fast with two VMs per DC.
OnlineConfig tight_config() {
  OnlineConfig cfg;
  cfg.requests = 12;
  cfg.min_destinations = 2;
  cfg.max_destinations = 4;
  cfg.min_sources = 2;
  cfg.max_sources = 3;
  cfg.chain_length = 2;
  cfg.vms_per_dc = 2;
  cfg.demand_mbps = 5.0;
  cfg.link_capacity = 20.0;
  cfg.host_capacity = 4.0;
  cfg.seed = 5;
  cfg.admission = "greedy";
  return cfg;
}

ServiceForest sofda_embed(const Problem& p) { return core::sofda(p); }

OnlineResult run_sequential(const topology::Topology& topo, const OnlineConfig& cfg) {
  auto solver = api::make_solver("sofda");
  return simulate(topo, cfg, *solver);
}

// The full §14 determinism surface: cost series, accept/reject series,
// decision-time utilization and every end-of-stream admission statistic,
// compared bitwise, plus the deterministic recovery fields.
void expect_admission_series_identical(const OnlineResult& a, const OnlineResult& b) {
  ASSERT_EQ(a.accumulative_cost.size(), b.accumulative_cost.size());
  for (std::size_t i = 0; i < a.accumulative_cost.size(); ++i) {
    EXPECT_EQ(a.accumulative_cost[i], b.accumulative_cost[i]) << "arrival " << i;  // bitwise
    EXPECT_EQ(a.per_request_cost[i], b.per_request_cost[i]) << "arrival " << i;
  }
  ASSERT_EQ(a.accepted.size(), b.accepted.size());
  ASSERT_EQ(a.decision_utilization.size(), b.decision_utilization.size());
  for (std::size_t i = 0; i < a.accepted.size(); ++i) {
    EXPECT_EQ(a.accepted[i], b.accepted[i]) << "arrival " << i;
    EXPECT_EQ(a.decision_utilization[i], b.decision_utilization[i]) << "arrival " << i;
  }
  EXPECT_EQ(a.infeasible_requests, b.infeasible_requests);
  EXPECT_EQ(a.rejected_requests, b.rejected_requests);
  EXPECT_EQ(a.rejected_demand_mbps, b.rejected_demand_mbps);
  EXPECT_EQ(a.accept_rate, b.accept_rate);
  EXPECT_EQ(a.overloaded_links, b.overloaded_links);
  EXPECT_EQ(a.max_link_utilization, b.max_link_utilization);
  EXPECT_EQ(a.mean_link_utilization, b.mean_link_utilization);
  EXPECT_EQ(a.max_host_utilization, b.max_host_utilization);
  EXPECT_EQ(a.mean_host_utilization, b.mean_host_utilization);
  ASSERT_EQ(a.recoveries.size(), b.recoveries.size());
  for (std::size_t i = 0; i < a.recoveries.size(); ++i) {
    EXPECT_EQ(a.recoveries[i].epoch_first, b.recoveries[i].epoch_first);
    EXPECT_EQ(a.recoveries[i].slot, b.recoveries[i].slot);
    EXPECT_EQ(a.recoveries[i].dropped_users, b.recoveries[i].dropped_users);
    EXPECT_EQ(a.recoveries[i].capacity_dropped, b.recoveries[i].capacity_dropped);
    EXPECT_EQ(a.recoveries[i].chosen_cost, b.recoveries[i].chosen_cost);
  }
}

// ------------------------------------------------------- ledger feasibility --

TEST(LedgerFeasibility, BoundaryExactlyAtCapacityIsClosed) {
  LoadLedger led(2, 10.0, 2, 2.0, /*enforce_capacity=*/true);
  EXPECT_TRUE(led.enforced());
  led.add_link_load(0, 5.0);
  // Exactly filling the link is feasible; one drop more is not.
  EXPECT_TRUE(led.can_admit({0}, 5.0, {}, 1.0));
  EXPECT_FALSE(led.can_admit({0}, 5.0 + 1e-6, {}, 1.0));
  // The untouched link has full headroom.
  EXPECT_TRUE(led.can_admit({1}, 10.0, {}, 1.0));
  EXPECT_FALSE(led.can_admit({1}, 10.0 + 1e-6, {}, 1.0));
  // Hosts: one slot taken, one left.
  led.add_host_load(0, 1.0);
  EXPECT_TRUE(led.can_admit({}, 0.0, {0}, 1.0));
  EXPECT_FALSE(led.can_admit({}, 0.0, {0}, 1.0 + 1e-6));
  EXPECT_FALSE(led.can_admit({}, 0.0, {0, 0}, 1.0));
}

TEST(LedgerFeasibility, ZeroDemandIsAlwaysFeasible) {
  LoadLedger led(1, 10.0, 1, 1.0, true);
  led.add_link_load(0, 10.0);  // completely full
  led.add_host_load(0, 1.0);
  EXPECT_TRUE(led.can_admit({0, 0, 0}, 0.0, {0}, 0.0));
  EXPECT_TRUE(led.can_admit({}, 5.0, {}, 1.0)) << "empty charge lists are trivially feasible";
}

TEST(LedgerFeasibility, MultiplicityAggregatesBeforeTheBoundaryCheck) {
  LoadLedger led(2, 10.0, 1, 3.0, true);
  // One copy fits, two copies exactly fill, three overflow — a forest that
  // crosses a link at several stages must aggregate its repeats.
  EXPECT_TRUE(led.can_admit({0}, 5.0, {}, 1.0));
  EXPECT_TRUE(led.can_admit({0, 0}, 5.0, {}, 1.0));
  EXPECT_FALSE(led.can_admit({0, 0, 0}, 5.0, {}, 1.0));
  // Repeats interleaved with other entries still aggregate per entry.
  EXPECT_TRUE(led.can_admit({0, 1, 0}, 5.0, {}, 1.0));
  EXPECT_FALSE(led.can_admit({0, 1, 0, 1, 0}, 5.0, {}, 1.0));
  // Host slots behave identically.
  EXPECT_TRUE(led.can_admit({}, 0.0, {0, 0, 0}, 1.0));
  EXPECT_FALSE(led.can_admit({}, 0.0, {0, 0, 0, 0}, 1.0));
}

TEST(LedgerFeasibility, HeadroomAndUtilizationStats) {
  LoadLedger led(2, 10.0, 2, 4.0, false);
  led.add_link_load(0, 4.0);
  led.add_host_load(1, 1.0);
  EXPECT_DOUBLE_EQ(led.link_headroom(0), 6.0);
  EXPECT_DOUBLE_EQ(led.link_headroom(1), 10.0);
  EXPECT_DOUBLE_EQ(led.host_headroom(1), 3.0);
  EXPECT_DOUBLE_EQ(led.host_utilization(1), 0.25);
  EXPECT_DOUBLE_EQ(led.max_link_utilization(), 0.4);
  EXPECT_DOUBLE_EQ(led.mean_link_utilization(), 0.2);
  EXPECT_DOUBLE_EQ(led.max_host_utilization(), 0.25);
  EXPECT_DOUBLE_EQ(led.mean_host_utilization(), 0.125);
  // Soft mode may overload; headroom clamps at zero instead of going negative.
  led.add_link_load(0, 8.0);
  EXPECT_DOUBLE_EQ(led.link_headroom(0), 0.0);
  EXPECT_EQ(led.overloaded_links(), 1u);
}

// ------------------------------------------------------------ policy units --

AdmissionCandidate cand(int slot, double marginal, double uncongested) {
  AdmissionCandidate c;
  c.slot = slot;
  c.feasible = true;
  c.marginal_cost = marginal;
  c.uncongested_cost = uncongested;
  return c;
}

AdmissionCandidate infeasible_cand(int slot) {
  AdmissionCandidate c;
  c.slot = slot;
  c.feasible = false;
  c.marginal_cost = graph::kInfiniteCost;
  c.uncongested_cost = graph::kInfiniteCost;
  return c;
}

TEST(AdmissionPolicyUnit, GreedyAdmitsExactlyTheFeasible) {
  const auto policy = make_admission_policy("greedy");
  EXPECT_EQ(policy->name(), "greedy");
  std::vector<AdmissionCandidate> batch{cand(0, 5.0, 1.0), infeasible_cand(1),
                                        cand(2, 1e9, 1.0)};
  std::vector<char> intent;
  policy->decide(batch, intent);
  ASSERT_EQ(intent.size(), 3u);
  EXPECT_EQ(intent[0], 1);
  EXPECT_EQ(intent[1], 0) << "no policy may intend an infeasible arrival";
  EXPECT_EQ(intent[2], 1) << "greedy ignores cost entirely";
}

TEST(AdmissionPolicyUnit, ThresholdPriceComparesAgainstUncongestedCost) {
  const auto policy = make_admission_policy("threshold-price,theta=1.5");
  std::vector<AdmissionCandidate> batch{
      cand(0, 10.0, 10.0),  // ratio 1.0: uncongested, admit
      cand(1, 15.0, 10.0),  // ratio exactly theta: boundary admits
      cand(2, 15.1, 10.0),  // just past: reject
      cand(3, 0.0, 0.0),    // zero-cost embedding: always admit
      infeasible_cand(4),
  };
  std::vector<char> intent;
  policy->decide(batch, intent);
  EXPECT_EQ(intent[0], 1);
  EXPECT_EQ(intent[1], 1);
  EXPECT_EQ(intent[2], 0);
  EXPECT_EQ(intent[3], 1);
  EXPECT_EQ(intent[4], 0);
}

TEST(AdmissionPolicyUnit, RejectCostliestRanksTheBatchCheapestFirst) {
  const auto policy = make_admission_policy("reject-costliest,budget=10");
  std::vector<AdmissionCandidate> batch{cand(0, 6.0, 1.0), cand(1, 5.0, 1.0),
                                        cand(2, 3.0, 1.0)};
  std::vector<char> intent;
  policy->decide(batch, intent);
  // Cheapest-first: 3 (slot 2) then 5 (slot 1) = 8 <= 10; adding 6 busts.
  EXPECT_EQ(intent[0], 0);
  EXPECT_EQ(intent[1], 1);
  EXPECT_EQ(intent[2], 1);
}

TEST(AdmissionPolicyUnit, RejectCostliestBreaksCostTiesBySlot) {
  const auto policy = make_admission_policy("reject-costliest,budget=10");
  std::vector<AdmissionCandidate> batch{cand(0, 5.0, 1.0), cand(1, 5.0, 1.0),
                                        cand(2, 5.0, 1.0)};
  std::vector<char> intent;
  policy->decide(batch, intent);
  EXPECT_EQ(intent[0], 1);
  EXPECT_EQ(intent[1], 1);
  EXPECT_EQ(intent[2], 0) << "equal costs admit in arrival order";
}

TEST(AdmissionPolicyUnit, RejectCostliestBudgetExtremes) {
  std::vector<AdmissionCandidate> batch{cand(0, 5.0, 1.0), cand(1, 7.0, 1.0)};
  std::vector<char> intent;
  make_admission_policy("reject-costliest,budget=0")->decide(batch, intent);
  EXPECT_EQ(intent[0], 0);
  EXPECT_EQ(intent[1], 0);
  make_admission_policy("reject-costliest")->decide(batch, intent);  // unbounded default
  EXPECT_EQ(intent[0], 1);
  EXPECT_EQ(intent[1], 1);
}

// ------------------------------------------------------------- spec parsing --

TEST(AdmissionSpec, AcceptsTheDocumentedGrammar) {
  EXPECT_EQ(make_admission_policy("greedy")->name(), "greedy");
  EXPECT_EQ(make_admission_policy("admission/greedy")->name(), "greedy");
  EXPECT_NE(make_admission_policy("threshold-price")->name().find("theta"),
            std::string_view::npos);
  EXPECT_NE(make_admission_policy("admission/threshold-price,theta=1.25")->name().find("1.25"),
            std::string_view::npos);
  EXPECT_NE(make_admission_policy("reject-costliest,budget=250")->name().find("250"),
            std::string_view::npos);
}

void expect_spec_throws(const std::string& spec, const std::string& needle) {
  try {
    (void)make_admission_policy(spec);
    FAIL() << "expected std::invalid_argument for \"" << spec << "\"";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "\"" << spec << "\" -> " << e.what();
  }
}

TEST(AdmissionSpec, RejectsMalformedSpecsNamingTheField) {
  expect_spec_throws("", "unknown policy");
  expect_spec_throws("gredy", "unknown policy");
  expect_spec_throws("admission/", "unknown policy");
  expect_spec_throws("greedy,theta=1", "greedy takes no parameters");
  expect_spec_throws("threshold-price,thta=1", "unknown key");
  expect_spec_throws("threshold-price,theta", "expected <key>=<value>");
  expect_spec_throws("threshold-price,theta=", "must be a number");
  expect_spec_throws("threshold-price,theta=1.5x", "must be a number");
  expect_spec_throws("threshold-price,theta=-1", "must be >= 0");
  expect_spec_throws("threshold-price,theta=1,theta=2", "duplicate key");
  expect_spec_throws("reject-costliest,budget=-2", "must be >= 0");
  expect_spec_throws("reject-costliest,theta=1", "unknown key");
}

TEST(AdmissionSpec, BothDriversThrowFromValidate) {
  const auto topo = topology::softlayer();
  auto cfg = tight_config();
  cfg.admission = "threshold-price,theta=nope";
  EXPECT_THROW(simulate(topo, cfg, "x", sofda_embed), std::invalid_argument);
  EXPECT_THROW(Pipeline(topo, cfg, "sofda", {}), std::invalid_argument);
  cfg = tight_config();
  cfg.link_capacity = -1.0;
  try {
    simulate(topo, cfg, "x", sofda_embed);
    FAIL() << "negative link_capacity must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("link_capacity"), std::string::npos) << e.what();
  }
  cfg = tight_config();
  cfg.host_capacity = 0.0;
  EXPECT_THROW(Pipeline(topo, cfg, "sofda", {}), std::invalid_argument);
}

// ------------------------------------------------------------- golden cases --

TEST(AdmissionGolden, GreedyWithAmpleCapacityMatchesTheLegacyScenario) {
  // With capacity far beyond what the stream can load, the gate never
  // fires: the greedy run's cost series must be BITWISE the legacy
  // (no-admission) run's — prices evolve identically because every arrival
  // is admitted in both.
  const auto topo = topology::softlayer();
  auto cfg = tight_config();
  cfg.link_capacity = 1e6;
  cfg.host_capacity = 1e3;
  auto legacy_cfg = cfg;
  legacy_cfg.admission.clear();
  const auto legacy = run_sequential(topo, legacy_cfg);
  const auto greedy = run_sequential(topo, cfg);
  ASSERT_EQ(legacy.accumulative_cost.size(), greedy.accumulative_cost.size());
  for (std::size_t i = 0; i < legacy.accumulative_cost.size(); ++i) {
    EXPECT_EQ(legacy.accumulative_cost[i], greedy.accumulative_cost[i]);
    EXPECT_EQ(legacy.per_request_cost[i], greedy.per_request_cost[i]);
  }
  EXPECT_EQ(greedy.rejected_requests, 0);
  EXPECT_EQ(greedy.rejected_demand_mbps, 0.0);
  EXPECT_EQ(greedy.accept_rate, 1.0);
  EXPECT_EQ(greedy.infeasible_requests, 0);
  // The legacy run reports the same accept series with every slot accepted.
  ASSERT_EQ(legacy.accepted.size(), greedy.accepted.size());
  for (std::size_t i = 0; i < legacy.accepted.size(); ++i) {
    EXPECT_EQ(legacy.accepted[i], 1);
    EXPECT_EQ(greedy.accepted[i], 1);
  }
}

TEST(AdmissionGolden, TightCapacityRejectsButNeverOverloads) {
  const auto topo = topology::softlayer();
  const auto cfg = tight_config();
  const auto r = run_sequential(topo, cfg);
  EXPECT_GT(r.rejected_requests, 0) << "the tight scenario must actually bind";
  EXPECT_EQ(r.overloaded_links, 0u) << "enforced mode forbids overload";
  EXPECT_LE(r.max_link_utilization, 1.0 + 1e-9);
  EXPECT_LE(r.max_host_utilization, 1.0 + 1e-9);
  EXPECT_LT(r.accept_rate, 1.0);
  EXPECT_DOUBLE_EQ(
      r.accept_rate,
      1.0 - static_cast<double>(r.rejected_requests + r.infeasible_requests) /
                static_cast<double>(cfg.requests));
  // A rejected arrival charges nothing and costs nothing.
  int rejected_seen = 0;
  for (std::size_t i = 0; i < r.accepted.size(); ++i) {
    if (r.accepted[i] == 0) {
      EXPECT_EQ(r.per_request_cost[i], 0.0) << "arrival " << i;
      ++rejected_seen;
    }
  }
  EXPECT_EQ(rejected_seen, r.rejected_requests + r.infeasible_requests);
  EXPECT_GT(r.rejected_demand_mbps, 0.0);
}

TEST(AdmissionGolden, ThresholdThetaDivergesRejectFirst) {
  // Run-level theta monotonicity is not well defined (decisions feed back
  // into prices), but the FIRST divergence is: both runs see identical
  // candidates until their decisions differ, and at that slot the tighter
  // theta must be the one rejecting.
  const auto topo = topology::softlayer();
  auto tight = tight_config();
  tight.link_capacity = 60.0;  // loose enough that theta, not capacity, decides
  tight.admission = "threshold-price,theta=1.02";
  auto loose = tight;
  loose.admission = "threshold-price,theta=8";
  const auto rt = run_sequential(topo, tight);
  const auto rl = run_sequential(topo, loose);
  ASSERT_EQ(rt.accepted.size(), rl.accepted.size());
  bool diverged = false;
  for (std::size_t i = 0; i < rt.accepted.size(); ++i) {
    if (rt.accepted[i] != rl.accepted[i]) {
      EXPECT_EQ(rt.accepted[i], 0) << "tight theta rejects at the first divergence";
      EXPECT_EQ(rl.accepted[i], 1);
      diverged = true;
      break;
    }
  }
  EXPECT_TRUE(diverged) << "theta 1.02 vs 8 should decide at least one arrival differently";

  // A theta beyond any congestion surcharge in this scenario is greedy.
  auto greedy_cfg = tight;
  greedy_cfg.admission = "greedy";
  auto huge = tight;
  huge.admission = "threshold-price,theta=1000000";
  expect_admission_series_identical(run_sequential(topo, greedy_cfg),
                                    run_sequential(topo, huge));
}

TEST(AdmissionGolden, RejectCostliestExtremes) {
  const auto topo = topology::softlayer();
  auto cfg = tight_config();
  cfg.admission = "reject-costliest,budget=0";
  const auto none = run_sequential(topo, cfg);
  EXPECT_EQ(none.accept_rate, 0.0);
  EXPECT_EQ(none.rejected_requests + none.infeasible_requests, cfg.requests);
  for (const Cost c : none.accumulative_cost) EXPECT_EQ(c, 0.0);
  EXPECT_EQ(none.max_link_utilization, 0.0) << "nothing admitted, nothing charged";

  // An unbounded budget admits everything feasible: bitwise greedy.
  cfg.admission = "reject-costliest";
  auto greedy_cfg = cfg;
  greedy_cfg.admission = "greedy";
  expect_admission_series_identical(run_sequential(topo, greedy_cfg),
                                    run_sequential(topo, cfg));
}

TEST(AdmissionGolden, RejectCostliestRanksWithinTheEpochBatch) {
  // With an epoch batch and a budget, the policy admits the batch's
  // cheapest arrivals first — so within some epoch an arrival can be
  // rejected while a LATER, cheaper one of the same epoch is admitted
  // (impossible for per-arrival policies, which decide in isolation).
  const auto topo = topology::softlayer();
  auto cfg = tight_config();
  cfg.requests = 16;
  cfg.epoch_size = 4;
  cfg.link_capacity = 200.0;  // budget, not capacity, is the binding constraint
  cfg.host_capacity = 50.0;
  cfg.admission = "reject-costliest,budget=40";
  const auto r = run_sequential(topo, cfg);
  ASSERT_EQ(r.infeasible_requests, 0) << "capacity is ample; every arrival should embed";
  EXPECT_GT(r.rejected_requests, 0);
  bool reject_then_accept_in_epoch = false;
  for (int first = 0; first < cfg.requests && !reject_then_accept_in_epoch; first += cfg.epoch_size) {
    bool saw_reject = false;
    for (int r2 = first; r2 < std::min(cfg.requests, first + cfg.epoch_size); ++r2) {
      const std::size_t i = static_cast<std::size_t>(r2);
      if (r.accepted[i] == 0) {
        saw_reject = true;
      } else if (saw_reject) {
        reject_then_accept_in_epoch = true;
      }
    }
  }
  EXPECT_TRUE(reject_then_accept_in_epoch)
      << "batch ranking should admit a cheaper later arrival past a costlier earlier one";
}

// --------------------------------------------------- driver determinism S×W --

TEST(AdmissionDeterminism, PipelineMatchesSequentialForEveryPolicyAcrossSxW) {
  // The acceptance criterion: accept/reject and cost series from the
  // epoch-pipelined service bitwise identical to the sequential driver for
  // every policy at S in {1,4,16} x W in {1,2,8}, on the capacity-bound
  // scenario (so rejections actually occur and the gate is exercised).
  const auto topo = topology::softlayer();
  const char* policies[] = {"greedy", "threshold-price,theta=1.2",
                            "reject-costliest,budget=120"};
  for (const char* policy : policies) {
    bool any_rejection = false;
    for (int epoch_size : {1, 4, 16}) {
      auto cfg = tight_config();
      cfg.admission = policy;
      cfg.epoch_size = epoch_size;
      const auto ref = run_sequential(topo, cfg);
      EXPECT_EQ(ref.overloaded_links, 0u);
      any_rejection = any_rejection || ref.rejected_requests > 0;
      for (int workers : {1, 2, 8}) {
        SCOPED_TRACE(std::string(policy) + " S=" + std::to_string(epoch_size) +
                     " W=" + std::to_string(workers));
        PipelineOptions popt;
        popt.workers = workers;
        const auto got = serve_pipelined(topo, cfg, "sofda", {}, popt);
        expect_admission_series_identical(ref, got);
      }
    }
    EXPECT_TRUE(any_rejection) << policy << ": the tight scenario should reject somewhere";
  }
}

// ---------------------------------------------------------------- composition --

TEST(AdmissionComposition, DepartureFreesCapacityForALaterArrival) {
  // Churn regime: requests depart after holding_arrivals, returning their
  // bandwidth.  Under tight capacity the stream saturates (a rejection),
  // then departures free room and a LATER arrival is admitted again —
  // the freed-capacity-readmits pattern, impossible without departures
  // once the ledger pins near capacity.
  const auto topo = topology::softlayer();
  auto cfg = tight_config();
  cfg.requests = 20;
  cfg.holding_arrivals = 4;
  cfg.link_capacity = 10.0;  // two stream copies per link: binds within one window
  const auto r = run_sequential(topo, cfg);
  EXPECT_EQ(r.overloaded_links, 0u);
  EXPECT_GT(r.rejected_requests, 0);
  int first_reject = -1, later_accept = -1;
  for (std::size_t i = 0; i < r.accepted.size(); ++i) {
    if (first_reject < 0 && r.accepted[i] == 0) first_reject = static_cast<int>(i);
    if (first_reject >= 0 && r.accepted[i] == 1) later_accept = static_cast<int>(i);
  }
  ASSERT_GE(first_reject, 0);
  EXPECT_GT(later_accept, first_reject)
      << "capacity freed by departures should admit a later arrival";

  // And the pipelined service agrees bitwise, departures and all.
  cfg.epoch_size = 4;
  const auto ref = run_sequential(topo, cfg);
  PipelineOptions popt;
  popt.workers = 2;
  expect_admission_series_identical(ref, serve_pipelined(topo, cfg, "sofda", {}, popt));
}

TEST(AdmissionComposition, FailureDrillUnderCapacityPressure) {
  // PR 8 composition: a link dies mid-stream while capacity is enforced.
  // Recovery re-embeds the affected forests; any recovery that no longer
  // fits is dropped (capacity_dropped) instead of overloading — and the
  // whole drill stays bitwise identical across drivers and worker counts.
  const auto topo = topology::softlayer();
  resilience::FailurePlan plan;
  plan.events.push_back(
      {resilience::FailureEvent::Target::kNode, 3, /*fail_at=*/4, /*heal_at=*/9});
  auto cfg = tight_config();
  cfg.requests = 14;
  cfg.failures = &plan;
  const auto seq = run_sequential(topo, cfg);
  EXPECT_EQ(seq.overloaded_links, 0u);
  EXPECT_LE(seq.max_link_utilization, 1.0 + 1e-9);
  for (int epoch_size : {1, 4}) {
    auto pcfg = cfg;
    pcfg.epoch_size = epoch_size;
    const auto ref = run_sequential(topo, pcfg);
    EXPECT_EQ(ref.overloaded_links, 0u);
    for (int workers : {1, 2}) {
      SCOPED_TRACE("S=" + std::to_string(epoch_size) + " W=" + std::to_string(workers));
      PipelineOptions popt;
      popt.workers = workers;
      expect_admission_series_identical(ref, serve_pipelined(topo, pcfg, "sofda", {}, popt));
    }
  }
}

// ------------------------------------------------------------ fuzz invariants --

TEST(AdmissionFuzz, LedgerNeverExceedsCapacityInEnforcedMode) {
  // Seeded random streams through the real embedder, checked INSIDE the
  // run: after every committed epoch, every ledger entry is within its
  // hard capacity (not just at the end, where departures could have masked
  // a transient overload).
  const auto topo = topology::softlayer();
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    auto cfg = tight_config();
    cfg.seed = seed;
    cfg.requests = 16;
    cfg.epoch_size = 4;
    cfg.holding_arrivals = 5;
    ArrivalStream stream(topo, cfg);
    ASSERT_TRUE(stream.has_admission());
    for (int first = 0; first < cfg.requests;) {
      const int count = stream.open_epoch(first);
      std::vector<ServiceForest> forests;
      for (int r = first; r < first + count; ++r) {
        forests.push_back(sofda_embed(stream.stage(r)));
      }
      stream.commit_epoch(first, forests);
      const auto& led = stream.ledger();
      const double link_slack = 1e-9 * std::max(1.0, led.link_capacity());
      for (graph::EdgeId e = 0; e < topo.g.edge_count(); ++e) {
        ASSERT_LE(led.link_load(e), led.link_capacity() + link_slack)
            << "seed " << seed << " epoch " << first << " link " << e;
      }
      const double host_slack = 1e-9 * std::max(1.0, led.host_capacity());
      for (std::size_t h = 0; h < led.hosts(); ++h) {
        ASSERT_LE(led.host_load(h), led.host_capacity() + host_slack)
            << "seed " << seed << " epoch " << first << " host " << h;
      }
      first += count;
    }
    EXPECT_EQ(stream.overloaded_links(), 0u);
  }
}

TEST(AdmissionFuzz, GreedyDecisionsAreCapacityPrefixMonotone) {
  // Ledger-level property: feed the SAME random candidate-charge stream to
  // greedy admit-iff-feasible gates at capacities c1 < c2.  Decisions are
  // identical until the first divergence, and the divergence can only be
  // "c1 rejects, c2 admits" — more capacity never rejects an arrival the
  // smaller ledger accepted while their histories agree.
  for (const std::uint64_t seed : {1u, 7u, 23u, 55u, 140u}) {
    util::Rng rng(seed);
    const std::size_t links = 6, hosts = 3;
    const double c1 = 20.0, c2 = 28.0;
    LoadLedger a(links, c1, hosts, 3.0, true);
    LoadLedger b(links, c2, hosts, 3.0, true);
    bool diverged = false;
    for (int step = 0; step < 200 && !diverged; ++step) {
      std::vector<graph::EdgeId> ls;
      const int n_links = rng.uniform_int(1, 3);
      for (int i = 0; i < n_links; ++i) {
        ls.push_back(static_cast<graph::EdgeId>(rng.index(links)));
      }
      std::vector<std::size_t> hs;
      if (rng.chance(0.5)) hs.push_back(rng.index(hosts));
      const double mbps = rng.uniform(1.0, 9.0);
      const bool admit_a = a.can_admit(ls, mbps, hs, 1.0);
      const bool admit_b = b.can_admit(ls, mbps, hs, 1.0);
      if (admit_a != admit_b) {
        EXPECT_FALSE(admit_a) << "seed " << seed << " step " << step
                              << ": the smaller capacity must be the one rejecting";
        EXPECT_TRUE(admit_b);
        diverged = true;
        break;
      }
      if (admit_a) {
        for (const auto e : ls) {
          a.add_link_load(e, mbps);
          b.add_link_load(e, mbps);
        }
        for (const auto h : hs) {
          a.add_host_load(h, 1.0);
          b.add_host_load(h, 1.0);
        }
      }
    }
  }
}

TEST(AdmissionFuzz, ReplayingTheDecisionLogReproducesTheLedgerEndState) {
  // The decision log plus the per-request charge lists fully determine the
  // ledger: replaying admit/release against a FRESH ledger lands on the
  // exact (bitwise) end state the live stream reached.
  const auto topo = topology::softlayer();
  for (const std::uint64_t seed : {5u, 29u}) {
    auto cfg = tight_config();
    cfg.seed = seed;
    cfg.requests = 16;
    cfg.epoch_size = 4;
    cfg.holding_arrivals = 6;  // >= epoch_size: charges stay live through each epoch
    ArrivalStream stream(topo, cfg);
    std::vector<char> admitted(static_cast<std::size_t>(cfg.requests), 0);
    std::vector<std::vector<graph::EdgeId>> links(admitted.size());
    std::vector<std::vector<std::size_t>> hosts(admitted.size());
    for (int first = 0; first < cfg.requests;) {
      const int count = stream.open_epoch(first);
      std::vector<ServiceForest> forests;
      for (int r = first; r < first + count; ++r) {
        forests.push_back(sofda_embed(stream.stage(r)));
      }
      const auto outcomes = stream.commit_epoch(first, forests);
      for (int i = 0; i < count; ++i) {
        const std::size_t r = static_cast<std::size_t>(first + i);
        if (outcomes[static_cast<std::size_t>(i)].status == SlotOutcome::Status::kAdmitted) {
          admitted[r] = 1;
          links[r] = stream.charged_links(first + i);  // copied before release
          hosts[r] = stream.charged_hosts(first + i);
        }
      }
      first += count;
    }

    // Replay: charges in admission order, releases at the departure slots
    // the stream honored.  Ledger adds/removes commute, so the end state
    // must be EXACTLY the live one.
    LoadLedger replay(static_cast<std::size_t>(topo.g.edge_count()), cfg.link_capacity,
                      topo.dc_nodes.size(), cfg.host_capacity, true);
    for (int r = 0; r < cfg.requests; ++r) {
      const int departing = r - cfg.holding_arrivals;
      if (departing >= 0 && admitted[static_cast<std::size_t>(departing)] != 0) {
        for (const auto e : links[static_cast<std::size_t>(departing)]) {
          replay.remove_link_load(e, cfg.demand_mbps);
        }
        for (const auto h : hosts[static_cast<std::size_t>(departing)]) {
          replay.remove_host_load(h, 1.0);
        }
      }
      if (admitted[static_cast<std::size_t>(r)] != 0) {
        for (const auto e : links[static_cast<std::size_t>(r)]) {
          replay.add_link_load(e, cfg.demand_mbps);
        }
        for (const auto h : hosts[static_cast<std::size_t>(r)]) {
          replay.add_host_load(h, 1.0);
        }
      }
    }
    const auto& live = stream.ledger();
    for (graph::EdgeId e = 0; e < topo.g.edge_count(); ++e) {
      EXPECT_EQ(replay.link_load(e), live.link_load(e)) << "seed " << seed << " link " << e;
    }
    for (std::size_t h = 0; h < live.hosts(); ++h) {
      EXPECT_EQ(replay.host_load(h), live.host_load(h)) << "seed " << seed << " host " << h;
    }
  }
}

}  // namespace
}  // namespace sofe::online
