// Procedure-2 tests: the planned chain walk visits |C| distinct VMs in
// order, its cost matches the stroll metric, and the Fig. 3 pipeline works
// end to end on a paper-like instance.

#include <gtest/gtest.h>

#include <set>

#include "sofe/core/chain_walk.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::core {
namespace {

Problem line_problem() {
  Problem p;
  p.network = Graph(6);
  for (NodeId v = 0; v + 1 < 6; ++v) p.network.add_edge(v, v + 1, 1.0);
  p.node_cost = {0, 1, 2, 3, 4, 0};
  p.is_vm = {0, 1, 1, 1, 1, 0};
  p.sources = {0};
  p.destinations = {5};
  p.chain_length = 2;
  return p;
}

graph::MetricClosure closure_for(const Problem& p, NodeId source) {
  auto hubs = p.vms();
  hubs.push_back(source);
  return graph::MetricClosure(p.network, hubs);
}

TEST(ChainWalk, BasicPlanStructure) {
  const Problem p = line_problem();
  const auto mc = closure_for(p, 0);
  const ChainPlan plan = plan_chain_walk(p, mc, 0, p.vms(), 4);
  ASSERT_TRUE(plan.feasible());
  EXPECT_EQ(plan.nodes.front(), 0);
  EXPECT_EQ(plan.nodes.back(), 4);
  ASSERT_EQ(plan.vnf_pos.size(), 2u);
  EXPECT_LT(plan.vnf_pos[0], plan.vnf_pos[1]);
  // All VNFs on distinct VMs.
  std::set<NodeId> slots;
  for (auto pos : plan.vnf_pos) {
    EXPECT_TRUE(p.is_vm[static_cast<std::size_t>(plan.nodes[pos])]);
    slots.insert(plan.nodes[pos]);
  }
  EXPECT_EQ(slots.size(), 2u);
  // On the line, the cheapest 2-chain to VM 4 picks VM 1 (cheapest interior).
  EXPECT_EQ(plan.nodes[plan.vnf_pos[0]], 1);
  EXPECT_DOUBLE_EQ(plan.cost, 1.0 + 4.0 + 4.0);  // setups 1+4, distance 0..4
}

TEST(ChainWalk, CostMatchesRecomputation) {
  const Problem p = line_problem();
  const auto mc = closure_for(p, 0);
  for (NodeId u : p.vms()) {
    const ChainPlan plan = plan_chain_walk(p, mc, 0, p.vms(), u);
    if (!plan.feasible()) continue;
    EXPECT_NEAR(plan.cost, chain_plan_cost(p, plan), 1e-9);
  }
}

TEST(ChainWalk, InfeasibleWhenSourceEqualsLastVm) {
  Problem p = line_problem();
  p.sources = {1};
  const auto mc = closure_for(p, 1);
  EXPECT_FALSE(plan_chain_walk(p, mc, 1, p.vms(), 1).feasible());
}

TEST(ChainWalk, InfeasibleWhenTooFewVms) {
  Problem p = line_problem();
  p.chain_length = 5;  // only 4 VMs exist
  const auto mc = closure_for(p, 0);
  EXPECT_FALSE(plan_chain_walk(p, mc, 0, p.vms(), 4).feasible());
}

TEST(ChainWalk, InfeasibleWhenDisconnected) {
  Problem p = line_problem();
  p.network = Graph(6);
  p.network.add_edge(0, 1, 1.0);  // island {0,1}; VMs 2..4 unreachable
  p.network.add_edge(2, 3, 1.0);
  p.network.add_edge(3, 4, 1.0);
  p.network.add_edge(4, 5, 1.0);
  const auto mc = closure_for(p, 0);
  EXPECT_FALSE(plan_chain_walk(p, mc, 0, p.vms(), 4).feasible());
}

TEST(ChainWalk, ZeroChainDegenerates) {
  Problem p = line_problem();
  p.chain_length = 0;
  const auto mc = closure_for(p, 0);
  const ChainPlan plan = plan_chain_walk(p, mc, 0, p.vms(), 4);
  ASSERT_TRUE(plan.feasible());
  EXPECT_EQ(plan.nodes, std::vector<NodeId>{0});
  EXPECT_TRUE(plan.vnf_pos.empty());
  EXPECT_DOUBLE_EQ(plan.cost, 0.0);
}

TEST(ChainWalk, WalkMayRevisitNodes) {
  // Fig. 3-style: the cheap VMs sit "behind" the source, so the walk must
  // bounce.  Star: center 0 (source), VMs 1, 2 on separate spokes.
  Problem p;
  p.network = Graph(4);
  p.network.add_edge(0, 1, 1.0);
  p.network.add_edge(0, 2, 1.0);
  p.network.add_edge(0, 3, 1.0);
  p.node_cost = {0, 1, 1, 0};
  p.is_vm = {0, 1, 1, 0};
  p.sources = {0};
  p.destinations = {3};
  p.chain_length = 2;
  const auto mc = closure_for(p, 0);
  const ChainPlan plan = plan_chain_walk(p, mc, 0, p.vms(), 2);
  ASSERT_TRUE(plan.feasible());
  // Walk 0-1-0-2 revisits the hub.
  EXPECT_EQ(plan.nodes, (std::vector<NodeId>{0, 1, 0, 2}));
  EXPECT_DOUBLE_EQ(plan.cost, 3.0 + 2.0);
}

TEST(ChainWalk, AppendixDSourceCostIncluded) {
  Problem p = line_problem();
  p.source_setup_cost.assign(6, 0.0);
  p.source_setup_cost[0] = 7.0;
  const auto mc = closure_for(p, 0);
  const ChainPlan plan = plan_chain_walk(p, mc, 0, p.vms(), 4);
  ASSERT_TRUE(plan.feasible());
  EXPECT_DOUBLE_EQ(plan.cost, 7.0 + 1.0 + 4.0 + 4.0);
}

class ChainWalkRandom : public ::testing::TestWithParam<int> {};

TEST_P(ChainWalkRandom, StrollCostEqualsWalkCost) {
  // The "first characteristic" of §IV, end to end: lifting the stroll back
  // into G preserves cost exactly.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const int n = rng.uniform_int(8, 24);
  Problem p;
  p.network = Graph(n);
  for (NodeId v = 1; v < n; ++v) {
    p.network.add_edge(v, static_cast<NodeId>(rng.index(static_cast<std::size_t>(v))),
                       rng.uniform(0.5, 4.0));
  }
  for (int e = 0; e < n; ++e) {
    const NodeId u = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    const NodeId v = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    if (u != v && p.network.find_edge(u, v) == graph::kInvalidEdge) {
      p.network.add_edge(u, v, rng.uniform(0.5, 4.0));
    }
  }
  p.node_cost.assign(static_cast<std::size_t>(n), 0.0);
  p.is_vm.assign(static_cast<std::size_t>(n), 0);
  const int m = rng.uniform_int(4, std::min(8, n - 1));
  const auto vms = rng.sample_without_replacement(static_cast<std::size_t>(n - 1),
                                                  static_cast<std::size_t>(m));
  for (auto c : vms) {
    const NodeId v = static_cast<NodeId>(c + 1);
    p.is_vm[static_cast<std::size_t>(v)] = 1;
    p.node_cost[static_cast<std::size_t>(v)] = rng.uniform(0.5, 5.0);
  }
  p.sources = {0};
  p.destinations = {static_cast<NodeId>(n - 1)};
  p.chain_length = rng.uniform_int(1, std::min(4, m));

  const auto mc = closure_for(p, 0);
  for (NodeId u : p.vms()) {
    const ChainPlan plan = plan_chain_walk(p, mc, 0, p.vms(), u);
    if (!plan.feasible()) continue;
    EXPECT_NEAR(plan.cost, chain_plan_cost(p, plan), 1e-9);
    EXPECT_EQ(plan.vnf_pos.size(), static_cast<std::size_t>(p.chain_length));
    EXPECT_EQ(plan.nodes.back(), u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainWalkRandom, ::testing::Range(1, 13));

}  // namespace
}  // namespace sofe::core
