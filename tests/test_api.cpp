// Tests for the sofe::api layer: the SolverRegistry round-trip, the
// session's closure-cache reuse/invalidation semantics, parallel-pricing
// bit-identity, and the simulate(Solver&) equivalence guarantee.

#include <gtest/gtest.h>

#include <stdexcept>

#include "sofe/api/registry.hpp"
#include "sofe/api/report.hpp"
#include "sofe/baselines/baselines.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/core/sofda_ss.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/dist/dist_sofda.hpp"
#include "sofe/exact/solver.hpp"
#include "sofe/online/simulator.hpp"
#include "sofe/topology/topology.hpp"

namespace {

using namespace sofe;
using api::make_solver;
using api::SolverOptions;
using api::SolverRegistry;
using core::NodeId;
using core::Problem;
using core::ServiceForest;

/// The quickstart instance (examples/quickstart.cpp): 10 nodes, 2 sources,
/// 2 destinations, 4 VMs, |C| = 2 — small enough for every solver
/// including "exact".
Problem quickstart_instance() {
  Problem p;
  p.network = core::Graph(10);
  const std::vector<std::tuple<int, int, double>> links = {
      {0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}, {4, 5, 2.0},
      {5, 6, 1.0}, {6, 7, 1.0}, {7, 8, 1.0}, {8, 9, 1.0}, {9, 0, 2.0},
      {1, 6, 3.0}, {3, 8, 3.0},
  };
  for (const auto& [u, v, c] : links) {
    p.network.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), c);
  }
  p.node_cost = {0, 0, 2.0, 1.5, 0, 0, 1.0, 2.5, 0, 0};
  p.is_vm = {0, 0, 1, 1, 0, 0, 1, 1, 0, 0};
  p.sources = {0, 5};
  p.destinations = {4, 9};
  p.chain_length = 2;
  return p;
}

bool forests_equal(const ServiceForest& a, const ServiceForest& b) {
  if (a.walks.size() != b.walks.size()) return false;
  for (std::size_t i = 0; i < a.walks.size(); ++i) {
    if (a.walks[i].source != b.walks[i].source ||
        a.walks[i].destination != b.walks[i].destination ||
        a.walks[i].nodes != b.walks[i].nodes || a.walks[i].vnf_pos != b.walks[i].vnf_pos) {
      return false;
    }
  }
  return true;
}

TEST(Registry, EveryRegisteredNameSolvesTheQuickstartInstance) {
  const auto p = quickstart_instance();
  const auto names = SolverRegistry::global().names();
  ASSERT_GE(names.size(), 9u);
  for (const auto& name : names) {
    SCOPED_TRACE(name);
    const auto solver = make_solver(name);
    ASSERT_NE(solver, nullptr);
    EXPECT_EQ(solver->name(), name);
    EXPECT_FALSE(SolverRegistry::global().describe(name).empty());
    const auto f = solver->solve(p);
    ASSERT_FALSE(f.empty());
    const auto report = core::validate(p, f);
    EXPECT_TRUE(report.ok) << report.summary();
    EXPECT_TRUE(solver->report().feasible);
    EXPECT_EQ(solver->report().solver, name);
    EXPECT_DOUBLE_EQ(solver->report().total_cost, core::total_cost(p, f));
    EXPECT_GE(solver->report().total_seconds, 0.0);
  }
}

TEST(Registry, SessionsMatchTheFreeFunctions) {
  const auto p = quickstart_instance();
  EXPECT_TRUE(forests_equal(make_solver("sofda")->solve(p), core::sofda(p)));
  EXPECT_TRUE(forests_equal(make_solver("sofda-ss")->solve(p),
                            core::sofda_ss(p, p.sources.front())));
  EXPECT_TRUE(forests_equal(make_solver("baseline/st")->solve(p),
                            baselines::run(p, baselines::Kind::kSt)));
  EXPECT_TRUE(forests_equal(make_solver("baseline/est")->solve(p),
                            baselines::run(p, baselines::Kind::kEst)));
  EXPECT_TRUE(forests_equal(make_solver("baseline/enemp")->solve(p),
                            baselines::run(p, baselines::Kind::kEnemp)));
  EXPECT_TRUE(forests_equal(make_solver("dist/k=3")->solve(p),
                            dist::distributed_sofda(p, 3).forest));
  const auto exact_f = make_solver("exact")->solve(p);
  const auto exact_r = exact::solve_exact(p);
  ASSERT_TRUE(exact_r.optimal);
  EXPECT_DOUBLE_EQ(core::total_cost(p, exact_f), exact_r.cost);
}

TEST(Registry, SofdaSessionMatchesFreeFunctionOnTopologyInstances) {
  const auto topo = topology::softlayer();
  auto solver = make_solver("sofda");
  auto threaded = make_solver("sofda", [] {
    SolverOptions o;
    o.threads = 4;
    return o;
  }());
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    topology::ProblemConfig cfg;
    cfg.seed = seed;
    const auto p = topology::make_problem(topo, cfg);
    const auto expect = core::sofda(p);
    EXPECT_TRUE(forests_equal(solver->solve(p), expect)) << "seed " << seed;
    EXPECT_TRUE(forests_equal(threaded->solve(p), expect)) << "seed " << seed;
  }
}

TEST(Registry, DistNamesAreParameterized) {
  auto& reg = SolverRegistry::global();
  EXPECT_TRUE(reg.contains("dist/k=2"));
  EXPECT_TRUE(reg.contains("dist/k=17"));  // synthesized, not pre-registered
  EXPECT_FALSE(reg.contains("dist/k=0"));
  EXPECT_FALSE(reg.contains("dist/k="));
  EXPECT_FALSE(reg.contains("dist/k=2x"));
  EXPECT_EQ(make_solver("dist/k=17")->name(), "dist/k=17");
}

TEST(Registry, MalformedDistParameterThrowsNamingTheField) {
  // A request that names the dist family but botches the controller count
  // is a malformed argument, not an unknown solver: create() must reject
  // it with a message naming the field instead of clamping or listing the
  // registry.  contains() stays lenient (above) — it answers "could this
  // name resolve", never validates.
  for (const char* name : {"dist/k=0", "dist/k=-3", "dist/k=", "dist/k=2x", "dist/k= 4"}) {
    try {
      (void)make_solver(name);
      FAIL() << name << " should have thrown";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("dist/k"), std::string::npos)
          << name << ": message must name the field, got \"" << e.what() << "\"";
    }
  }
  EXPECT_NO_THROW((void)make_solver("dist/k=3"));
}

TEST(Registry, DistSessionRepairsShardedClosureAcrossSolves) {
  const auto topo = topology::softlayer();
  topology::ProblemConfig cfg;
  cfg.seed = 11;
  auto p = topology::make_problem(topo, cfg);
  auto solver = make_solver("dist/k=3");

  const auto f_cold = solver->solve(p);
  EXPECT_FALSE(solver->report().closure_cache_hit);
  EXPECT_GT(solver->report().payload_bytes, 0u);
  const std::size_t bytes_cold = solver->report().payload_bytes;
  EXPECT_TRUE(forests_equal(f_cold, dist::distributed_sofda(p, 3).forest));

  // Unchanged problem: the sharded closure hits, so neither the partition
  // broadcast nor the row exchange is re-charged — only rounds 3-6 fly.
  const auto f_hit = solver->solve(p);
  EXPECT_TRUE(solver->report().closure_cache_hit);
  EXPECT_LT(solver->report().payload_bytes, bytes_cold);
  EXPECT_TRUE(forests_equal(f_hit, f_cold));

  // One link price moves: the session repairs the shards (re-exchanging
  // only dirtied rows) and stays bit-identical to the free function.
  p.network.set_edge_cost(0, p.network.edge(0).cost * 2.0);
  const auto f_rep = solver->solve(p);
  EXPECT_TRUE(solver->report().closure_repaired);
  EXPECT_EQ(solver->report().closure_delta_edges, 1);
  EXPECT_LT(solver->report().payload_bytes, bytes_cold);
  EXPECT_TRUE(forests_equal(f_rep, dist::distributed_sofda(p, 3).forest));
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_solver("no-such-solver"), std::invalid_argument);
  EXPECT_FALSE(SolverRegistry::global().contains("no-such-solver"));
}

TEST(Registry, CallersCanRegisterTheirOwnFactories) {
  SolverRegistry reg;  // private registry; the global one stays untouched
  class Null final : public api::Solver {
   public:
    using Solver::Solver;
    std::string_view name() const noexcept override { return "null"; }

   protected:
    ServiceForest do_solve(const Problem&, api::SolveReport&) override { return {}; }
  };
  reg.add("null", "returns the empty forest",
          [](const SolverOptions& opt) { return std::make_unique<Null>(opt); });
  ASSERT_TRUE(reg.contains("null"));
  const auto p = quickstart_instance();
  auto solver = reg.create("null");
  EXPECT_TRUE(solver->solve(p).empty());
  EXPECT_FALSE(solver->report().feasible);
}

TEST(Session, ClosureCacheHitsOnUnchangedProblem) {
  const auto p = quickstart_instance();
  auto solver = make_solver("sofda");
  const auto f1 = solver->solve(p);
  EXPECT_FALSE(solver->report().closure_cache_hit);  // cold session
  const auto f2 = solver->solve(p);
  EXPECT_TRUE(solver->report().closure_cache_hit);
  EXPECT_TRUE(forests_equal(f1, f2));
}

TEST(Session, EdgeCostMutationInvalidatesTheClosure) {
  auto p = quickstart_instance();
  auto solver = make_solver("sofda");
  (void)solver->solve(p);
  p.network.set_edge_cost(0, 10.0);
  const auto f = solver->solve(p);
  EXPECT_FALSE(solver->report().closure_cache_hit);
  EXPECT_TRUE(forests_equal(f, core::sofda(p)));  // fresh result at new costs
  (void)solver->solve(p);
  EXPECT_TRUE(solver->report().closure_cache_hit);  // steady again
}

TEST(Session, StructuralMutationInvalidatesTheClosure) {
  auto p = quickstart_instance();
  auto solver = make_solver("sofda");
  (void)solver->solve(p);
  p.network.add_edge(0, 4, 0.5);  // new shortcut straight to a destination
  const auto f = solver->solve(p);
  EXPECT_FALSE(solver->report().closure_cache_hit);
  EXPECT_TRUE(forests_equal(f, core::sofda(p)));
}

TEST(Session, HubSetShrinkReusesTheSupersetClosure) {
  // Incremental sessions cache the UNION of hub sets: dropping a source
  // leaves its (now unqueried) tree in place, so the shrunken request is a
  // pure hit — and the result still matches the free function exactly,
  // because every tree is an independent Dijkstra.
  auto p = quickstart_instance();
  auto solver = make_solver("sofda");
  (void)solver->solve(p);
  p.sources = {0};  // hubs = VMs + sources shrink
  const auto f = solver->solve(p);
  EXPECT_TRUE(solver->report().closure_cache_hit);
  EXPECT_TRUE(forests_equal(f, core::sofda(p)));
}

TEST(Session, HubSetGrowthExtendsInsteadOfRebuilding) {
  auto p = quickstart_instance();
  p.sources = {0};
  auto solver = make_solver("sofda");
  (void)solver->solve(p);
  p.sources = {0, 5};  // a new source hub appears
  const auto f = solver->solve(p);
  EXPECT_FALSE(solver->report().closure_cache_hit);
  EXPECT_TRUE(solver->report().closure_repaired);  // incremental acquire
  EXPECT_EQ(solver->report().closure_hubs_added, 1);
  EXPECT_EQ(solver->report().closure_delta_edges, 0);
  EXPECT_TRUE(forests_equal(f, core::sofda(p)));
}

TEST(Session, NonIncrementalSessionsKeepStrictKeySemantics) {
  SolverOptions strict;
  strict.incremental = false;
  auto p = quickstart_instance();
  auto solver = make_solver("sofda", strict);
  (void)solver->solve(p);
  p.sources = {0};
  (void)solver->solve(p);
  EXPECT_FALSE(solver->report().closure_cache_hit);  // exact-sequence key
  EXPECT_FALSE(solver->report().closure_repaired);
  p.network.set_edge_cost(0, 7.75);
  const auto f = solver->solve(p);
  EXPECT_FALSE(solver->report().closure_repaired);  // rebuild, never repair
  EXPECT_TRUE(forests_equal(f, core::sofda(p)));
}

TEST(Session, CostDeltasRepairTheClosureBitIdentically) {
  const auto topo = topology::softlayer();
  topology::ProblemConfig cfg;
  cfg.seed = 31;
  auto p = topology::make_problem(topo, cfg);
  auto solver = make_solver("sofda");
  (void)solver->solve(p);
  // An online-style reprice: a handful of links change cost.
  for (core::EdgeId e : {2, 9, 17, 23}) {
    p.network.set_edge_cost(e, p.network.edge(e).cost * 1.5 + 0.125);
  }
  const auto f = solver->solve(p);
  EXPECT_FALSE(solver->report().closure_cache_hit);
  EXPECT_TRUE(solver->report().closure_repaired);
  EXPECT_EQ(solver->report().closure_delta_edges, 4);
  EXPECT_TRUE(forests_equal(f, core::sofda(p)));  // repair exactness, end to end
  (void)solver->solve(p);
  EXPECT_TRUE(solver->report().closure_cache_hit);  // steady again
}

TEST(Session, StrictKeyTracksRepairPathHubChanges) {
  // A repair-path acquire rewrites the stored hub set (retain + extend);
  // the strict key must follow, or flipping the session to non-incremental
  // afterwards could falsely hit on a closure missing hub trees.
  auto p = quickstart_instance();
  auto solver = make_solver("sofda");
  (void)solver->solve(p);  // rebuild: key = VMs + {0, 5}
  p.sources = {0, 9};      // 5 churns out, 9 churns in ...
  p.network.set_edge_cost(0, 4.25);  // ... via the repair path
  (void)solver->solve(p);
  EXPECT_TRUE(solver->report().closure_repaired);
  solver->options().incremental = false;
  p.sources = {0, 5};  // the ORIGINAL hub set, unchanged costs
  const auto f = solver->solve(p);
  EXPECT_FALSE(solver->report().closure_cache_hit);  // 5's tree is gone: no hit
  EXPECT_TRUE(forests_equal(f, core::sofda(p)));
}

TEST(Session, MassiveDeltaFallsBackToRebuild) {
  auto p = quickstart_instance();
  auto solver = make_solver("sofda");
  (void)solver->solve(p);
  for (core::EdgeId e = 0; e < p.network.edge_count(); ++e) {
    p.network.set_edge_cost(e, p.network.edge(e).cost + 0.5);
  }
  const auto f = solver->solve(p);
  EXPECT_FALSE(solver->report().closure_repaired);  // above the delta threshold
  EXPECT_GT(solver->report().closure_delta_edges, 0);
  EXPECT_TRUE(forests_equal(f, core::sofda(p)));
}

TEST(BoundedClosure, SolverOutputMatchesTheFreeFunction) {
  SolverOptions bounded;
  bounded.bounded_closure = true;
  const auto topo = topology::softlayer();
  auto solver = make_solver("sofda", bounded);
  auto ss = make_solver("sofda-ss", bounded);
  for (std::uint64_t seed : {3u, 4u}) {
    topology::ProblemConfig cfg;
    cfg.seed = seed;
    const auto p = topology::make_problem(topo, cfg);
    EXPECT_TRUE(forests_equal(solver->solve(p), core::sofda(p))) << "seed " << seed;
    EXPECT_TRUE(forests_equal(ss->solve(p), core::sofda_ss(p, p.sources.front())))
        << "seed " << seed;
  }
}

// Version counters are copied with the graph, so two Problem copies can
// carry the SAME Graph::version() with DIFFERENT link costs (the online
// simulator does exactly this every arrival).  The session must not take
// that bait.
TEST(Session, EqualVersionsWithDifferentCostsDoNotFalselyHit) {
  const auto base = quickstart_instance();
  auto p1 = base;
  auto p2 = base;
  p1.network.set_edge_cost(0, 5.0);  // both copies land on version V+1 ...
  p2.network.set_edge_cost(0, 9.0);  // ... with different costs
  ASSERT_EQ(p1.network.version(), p2.network.version());
  auto solver = make_solver("sofda");
  (void)solver->solve(p1);
  const auto f2 = solver->solve(p2);
  EXPECT_FALSE(solver->report().closure_cache_hit);
  EXPECT_TRUE(forests_equal(f2, core::sofda(p2)));
}

TEST(ParallelPricing, BitIdenticalForThreads128OnInet) {
  const auto topo = topology::inet(300, 600, 120, 5);
  topology::ProblemConfig cfg;
  cfg.num_vms = 12;
  cfg.num_sources = 7;
  cfg.num_destinations = 4;
  cfg.chain_length = 3;
  cfg.seed = 21;
  const auto p = topology::make_problem(topo, cfg);

  std::vector<NodeId> hubs = p.vms();
  hubs.insert(hubs.end(), p.sources.begin(), p.sources.end());
  const graph::MetricClosure closure(p.network, hubs);

  const auto serial = core::price_candidate_chains(p, closure, p.sources, {}, 1);
  ASSERT_FALSE(serial.empty());
  for (int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    const auto par = core::price_candidate_chains(p, closure, p.sources, {}, threads);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(par[i].source, serial[i].source);
      EXPECT_EQ(par[i].last_vm, serial[i].last_vm);
      EXPECT_EQ(par[i].plan.nodes, serial[i].plan.nodes);
      EXPECT_EQ(par[i].plan.vnf_pos, serial[i].plan.vnf_pos);
      EXPECT_EQ(par[i].plan.cost, serial[i].plan.cost);  // bitwise: == on doubles
    }
  }
}

TEST(PricingCache, SessionTracksFreeFunctionAcrossArrivalStyleMutations) {
  // The SOFDA session's PricedChain cache (DESIGN.md §9) rides the closure
  // session's change stream: cost deltas, source churn, setup-cost moves.
  // Every solve must stay bitwise equal to the free function.
  const auto topo = topology::softlayer();
  topology::ProblemConfig cfg;
  cfg.seed = 19;
  auto p = topology::make_problem(topo, cfg);
  auto solver = make_solver("sofda");

  EXPECT_TRUE(forests_equal(solver->solve(p), core::sofda(p)));
  EXPECT_GT(solver->report().pricing_repriced, 0);  // cold cache
  EXPECT_TRUE(solver->report().pricing_flushed);

  // Unchanged problem: the closure hits and every chain serves from cache.
  EXPECT_TRUE(forests_equal(solver->solve(p), core::sofda(p)));
  EXPECT_EQ(solver->report().pricing_repriced, 0);
  EXPECT_GT(solver->report().pricing_hits, 0);

  // A handful of link repricings: the closure repairs; chains whose rows
  // were touched re-price, and the result still matches exactly.
  for (core::EdgeId e : {3, 11, 19}) {
    p.network.set_edge_cost(e, p.network.edge(e).cost * 1.25 + 0.5);
  }
  EXPECT_TRUE(forests_equal(solver->solve(p), core::sofda(p)));
  EXPECT_TRUE(solver->report().closure_repaired);

  // Source churn (drop one, later re-add): buckets flush only as needed.
  auto sources = p.sources;
  p.sources.pop_back();
  EXPECT_TRUE(forests_equal(solver->solve(p), core::sofda(p)));
  p.sources = sources;
  EXPECT_TRUE(forests_equal(solver->solve(p), core::sofda(p)));

  // A VM setup-cost move (|C| >= 2): the shared terms shift, all chains
  // re-price — and still match.
  const auto vms = p.vms();
  p.node_cost[static_cast<std::size_t>(vms[1])] += 0.75;
  EXPECT_TRUE(forests_equal(solver->solve(p), core::sofda(p)));
  EXPECT_TRUE(solver->report().pricing_flushed);
}

TEST(PricingCache, KnobOffRestoresFromScratchPricing) {
  const auto p = quickstart_instance();
  SolverOptions off;
  off.incremental_pricing = false;
  auto solver = make_solver("sofda", off);
  EXPECT_TRUE(forests_equal(solver->solve(p), core::sofda(p)));
  EXPECT_EQ(solver->report().pricing_hits, 0);
  EXPECT_EQ(solver->report().pricing_repriced, 0);  // tallies come from the cache only
  (void)solver->solve(p);
  EXPECT_EQ(solver->report().pricing_hits, 0);  // never served from a cache

  // Flipping the knob mid-session starts cold (no stale serves), then
  // behaves like a fresh incremental session.
  solver->options().incremental_pricing = true;
  EXPECT_TRUE(forests_equal(solver->solve(p), core::sofda(p)));
  EXPECT_GT(solver->report().pricing_repriced, 0);
  EXPECT_TRUE(forests_equal(solver->solve(p), core::sofda(p)));
  EXPECT_EQ(solver->report().pricing_repriced, 0);
  EXPECT_GT(solver->report().pricing_hits, 0);
}

TEST(PricingCache, AccumulatorAggregatesPricingTallies) {
  const auto p = quickstart_instance();
  auto solver = make_solver("sofda");
  api::ReportAccumulator acc;
  solver->set_report_sink(&acc);
  (void)solver->solve(p);  // cold: everything re-prices (one flush)
  (void)solver->solve(p);  // warm: everything hits
  EXPECT_GT(acc.pricing_repriced(), 0u);
  EXPECT_GT(acc.pricing_hits(), 0u);
  EXPECT_EQ(acc.pricing_flushes(), 1u);
}

TEST(OnlineSession, SimulateWithSolverMatchesEmbedFnBitForBit) {
  const auto topo = topology::softlayer();
  online::OnlineConfig cfg;
  cfg.requests = 6;
  cfg.min_destinations = 3;
  cfg.max_destinations = 5;
  cfg.min_sources = 2;
  cfg.max_sources = 3;
  cfg.seed = 77;

  const auto legacy = online::simulate(topo, cfg, "sofda",
                                       [](const Problem& p) { return core::sofda(p); });
  auto solver = make_solver("sofda");
  const auto session = online::simulate(topo, cfg, *solver);

  EXPECT_EQ(session.algorithm, "sofda");
  ASSERT_EQ(session.accumulative_cost.size(), legacy.accumulative_cost.size());
  for (std::size_t i = 0; i < legacy.accumulative_cost.size(); ++i) {
    EXPECT_EQ(session.accumulative_cost[i], legacy.accumulative_cost[i]);  // bitwise
    EXPECT_EQ(session.per_request_cost[i], legacy.per_request_cost[i]);
  }
  EXPECT_EQ(session.infeasible_requests, legacy.infeasible_requests);
  EXPECT_EQ(session.overloaded_links, legacy.overloaded_links);
}

TEST(OnlineSession, HoldingDeparturesStayBitIdenticalWithPricingCache) {
  // Departures return their ledger charges as cost-RESTORE deltas; the
  // pricing cache must ride both delta directions through the arrival
  // loop and reproduce the free-function series exactly.
  const auto topo = topology::softlayer();
  online::OnlineConfig cfg;
  cfg.requests = 10;
  cfg.min_destinations = 3;
  cfg.max_destinations = 5;
  cfg.min_sources = 2;
  cfg.max_sources = 3;
  cfg.holding_arrivals = 3;
  cfg.seed = 99;

  const auto legacy = online::simulate(topo, cfg, "sofda",
                                       [](const Problem& p) { return core::sofda(p); });
  auto solver = make_solver("sofda");
  const auto session = online::simulate(topo, cfg, *solver);
  ASSERT_EQ(session.accumulative_cost.size(), legacy.accumulative_cost.size());
  for (std::size_t i = 0; i < legacy.accumulative_cost.size(); ++i) {
    EXPECT_EQ(session.accumulative_cost[i], legacy.accumulative_cost[i]);  // bitwise
  }
  EXPECT_EQ(session.infeasible_requests, legacy.infeasible_requests);
  EXPECT_EQ(session.overloaded_links, legacy.overloaded_links);
}

TEST(ReportAccumulator, AggregatesPhaseTimingsAndCacheOutcomes) {
  const auto p = quickstart_instance();
  auto solver = make_solver("sofda");
  api::ReportAccumulator acc;
  solver->set_report_sink(&acc);
  (void)solver->solve(p);  // cold: rebuild
  (void)solver->solve(p);  // hit
  (void)solver->solve(p);  // hit
  EXPECT_EQ(acc.solves(), 3u);
  EXPECT_EQ(acc.cache_hits(), 2u);
  EXPECT_EQ(acc.repairs(), 0u);
  EXPECT_EQ(acc.rebuilds(), 1u);
  EXPECT_EQ(acc.infeasible(), 0u);
  const auto total = acc.total();
  EXPECT_EQ(total.count, 3u);
  EXPECT_GT(total.mean, 0.0);
  EXPECT_LE(total.p50, total.p95);
  EXPECT_LE(total.min, total.p50);
  EXPECT_LE(total.p95, total.max);
  EXPECT_NEAR(total.total, total.mean * 3.0, 1e-12);
  const auto closure = acc.closure();
  EXPECT_EQ(closure.count, 3u);
  EXPECT_GE(closure.max, 0.0);

  solver->set_report_sink(nullptr);
  (void)solver->solve(p);
  EXPECT_EQ(acc.solves(), 3u);  // detached

  acc.clear();
  EXPECT_EQ(acc.solves(), 0u);
  EXPECT_EQ(acc.total().count, 0u);
}

TEST(SolveReport, CarriesDistProtocolAndExactCertificates) {
  const auto p = quickstart_instance();
  auto d = make_solver("dist/k=4");
  (void)d->solve(p);
  EXPECT_EQ(d->report().controllers, 4);
  EXPECT_GT(d->report().messages, 0u);
  EXPECT_GT(d->report().rounds, 0);
  EXPECT_GT(d->report().sofda.deployed_chains, 0);

  auto ex = make_solver("exact");
  (void)ex->solve(p);
  EXPECT_TRUE(ex->report().optimal);
  EXPECT_GE(ex->report().bnb_nodes, 1);
}

TEST(SolverOptions, RoundTripsThroughAlgoOptions) {
  SolverOptions o;
  o.stroll = kstroll::StrollAlgorithm::kExactDp;
  o.steiner = steiner::Algorithm::kKmb;
  o.shorten = false;
  o.threads = 8;
  const auto a = o.algo();
  EXPECT_EQ(a.stroll, o.stroll);
  EXPECT_EQ(a.steiner, o.steiner);
  EXPECT_EQ(a.shorten, o.shorten);
  EXPECT_EQ(a.closure_threads, 8);
  const auto back = SolverOptions::from(a);
  EXPECT_EQ(back.threads, 8);
  EXPECT_EQ(back.steiner, o.steiner);
}

// --- Steady-state closure engine (DESIGN.md §13) --------------------------

TEST(CowPublish, EpochStaysBitwiseFrozenWhileTheLiveClosureRepairs) {
  auto g = quickstart_instance().network;
  const std::vector<NodeId> hubs{0, 5, 2};
  api::ClosureSession session;
  api::ClosureRequest req;
  api::SolveReport rep;

  const api::ClosureEpoch epoch = session.publish(g, hubs, req, rep);
  ASSERT_NE(epoch.closure, nullptr);
  const auto before = epoch.closure->tree(0).materialize();
  const core::Cost* epoch_dist = epoch.closure->tree(0).dist;
  const std::uint64_t epoch_gen = epoch.closure->row_generation(0);

  // Publishing shares row slabs, it does not deep-copy: the live closure's
  // row for hub 0 is the very same memory the epoch reads.
  api::SolveReport hit_rep;
  const graph::MetricClosure& live = session.acquire(g, hubs, req, hit_rep);
  EXPECT_TRUE(hit_rep.closure_cache_hit);
  EXPECT_EQ(live.tree(0).dist, epoch_dist);

  // A cost move dirties hub 0's tree; the live session repairs.  The
  // epoch pins its slabs, so the repair relocates the row (copy-on-write)
  // instead of overwriting what the epoch's readers see.
  g.set_edge_cost(g.find_edge(0, 1), 10.0);
  api::SolveReport repair_rep;
  session.acquire(g, hubs, req, repair_rep);
  ASSERT_TRUE(repair_rep.closure_repaired);
  EXPECT_NE(live.tree(0).dist, epoch_dist);
  EXPECT_NE(live.tree(0).materialize().dist, before.dist);

  // The published face is untouched: same memory, same values, still the
  // publish-time write generation — while the live row moved ahead.
  EXPECT_EQ(epoch.closure->tree(0).dist, epoch_dist);
  const auto after = epoch.closure->tree(0).materialize();
  EXPECT_EQ(after.dist, before.dist);
  EXPECT_EQ(after.parent, before.parent);
  EXPECT_EQ(after.parent_edge, before.parent_edge);
  EXPECT_EQ(epoch.closure->row_generation(0), epoch_gen);
  EXPECT_GT(live.row_generation(0), epoch_gen);

  session.retire();
}

TEST(CowPublish, RetireUnpinsSlabsAndRepairsGoBackInPlace) {
  auto g = quickstart_instance().network;
  const std::vector<NodeId> hubs{0, 5};
  api::ClosureSession session;
  api::ClosureRequest req;
  api::SolveReport rep;

  const graph::MetricClosure& live = session.acquire(g, hubs, req, rep);
  const core::Cost* row0 = live.tree(0).dist;

  // Nothing pinned: a repair writes the row in place (no allocation).
  g.set_edge_cost(g.find_edge(0, 1), 5.0);
  api::SolveReport r1;
  session.acquire(g, hubs, req, r1);
  ASSERT_TRUE(r1.closure_repaired);
  EXPECT_EQ(live.tree(0).dist, row0);

  // Published epoch: its pin forces the next repair to relocate.
  const api::ClosureEpoch epoch = session.publish(g, hubs, req, rep);
  g.set_edge_cost(g.find_edge(0, 1), 7.0);
  api::SolveReport r2;
  session.acquire(g, hubs, req, r2);
  ASSERT_TRUE(r2.closure_repaired);
  const core::Cost* relocated = live.tree(0).dist;
  EXPECT_NE(relocated, row0);
  EXPECT_EQ(epoch.closure->tree(0).dist, row0);

  // Retire drops the snapshot's rows and unpins its slabs; with the pin
  // gone, repairs are in place again (the pipeline retires before each
  // publish for exactly this reason).
  session.retire();
  EXPECT_EQ(epoch.closure->hub_count(), 0u);
  g.set_edge_cost(g.find_edge(0, 1), 9.0);
  api::SolveReport r3;
  session.acquire(g, hubs, req, r3);
  ASSERT_TRUE(r3.closure_repaired);
  EXPECT_EQ(live.tree(0).dist, relocated);
}

TEST(RetentionWindow, LruKeepsRecentRowsEvictsOldestAndCapsAtTheWindow) {
  auto g = quickstart_instance().network;
  api::ClosureSession session;
  api::ClosureRequest req;
  req.retention = 1;

  api::SolveReport cold;
  session.acquire(g, {0}, req, cold);  // cold rebuild: nothing retained yet

  api::SolveReport second;
  session.acquire(g, {5}, req, second);  // extends 5, retains 0 (window cap 1)
  EXPECT_EQ(second.closure_row_hits, 0);
  EXPECT_EQ(second.closure_rows_retained, 1);
  EXPECT_EQ(second.closure_rows_evicted, 0);

  api::SolveReport third;
  session.acquire(g, {7}, req, third);  // retains 5 (most recent), evicts 0
  EXPECT_EQ(third.closure_row_hits, 0);
  EXPECT_EQ(third.closure_rows_retained, 1);
  EXPECT_EQ(third.closure_rows_evicted, 1);

  api::SolveReport returning;
  session.acquire(g, {5}, req, returning);  // 5 was kept warm: a row hit
  EXPECT_EQ(returning.closure_row_hits, 1);

  api::SolveReport evicted;
  session.acquire(g, {0}, req, evicted);  // 0 fell out of the window: cold
  EXPECT_EQ(evicted.closure_row_hits, 0);
}

TEST(RetentionWindow, ZeroRetentionKeepsStrictRequestRows) {
  auto g = quickstart_instance().network;
  api::ClosureSession session;
  api::ClosureRequest req;  // retention = 0

  api::SolveReport first;
  const graph::MetricClosure& live = session.acquire(g, {0}, req, first);

  api::SolveReport second;
  session.acquire(g, {5}, req, second);
  EXPECT_EQ(second.closure_rows_retained, 0);
  EXPECT_EQ(second.closure_rows_evicted, 1);
  EXPECT_FALSE(live.is_hub(0));
  EXPECT_TRUE(live.is_hub(5));

  api::SolveReport back;
  session.acquire(g, {0}, req, back);  // dropped, so no warm row to hit
  EXPECT_EQ(back.closure_row_hits, 0);
}

}  // namespace
