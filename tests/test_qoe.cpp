// Streaming-QoE emulation tests (Table II substitute): throughput/bottleneck
// mechanics, startup/rebuffer formulas, and the SOFDA-vs-baselines ordering
// on the Fig. 13 testbed.

#include <gtest/gtest.h>

#include "sofe/baselines/baselines.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/qoe/streaming.hpp"
#include "sofe/topology/topology.hpp"

namespace sofe::qoe {
namespace {

/// One walk over a 3-link path with one VNF; used for closed-form checks.
struct PathSetup {
  Problem p;
  ServiceForest f;
};

PathSetup path_setup() {
  PathSetup s;
  s.p.network = core::Graph(4);
  s.p.network.add_edge(0, 1, 1.0);
  s.p.network.add_edge(1, 2, 1.0);
  s.p.network.add_edge(2, 3, 1.0);
  s.p.node_cost = {0, 1, 0, 0};
  s.p.is_vm = {0, 1, 0, 0};
  s.p.sources = {0};
  s.p.destinations = {3};
  s.p.chain_length = 1;
  core::ChainWalk w;
  w.source = 0;
  w.destination = 3;
  w.nodes = {0, 1, 2, 3};
  w.vnf_pos = {1};
  s.f.walks.push_back(w);
  return s;
}

TEST(Qoe, NoStallWhenBandwidthSuffices) {
  const auto s = path_setup();
  StreamingConfig cfg;
  cfg.bitrate_mbps = 4.0;
  cfg.min_link_mbps = 8.0;
  cfg.max_link_mbps = 9.0;
  cfg.trials = 50;
  const auto r = evaluate_streaming(s.p, s.f, cfg);
  EXPECT_DOUBLE_EQ(r.avg_rebuffering_s, 0.0);
  EXPECT_DOUBLE_EQ(r.stall_fraction, 0.0);
  EXPECT_GT(r.avg_startup_latency_s, cfg.base_setup_s);
}

TEST(Qoe, AlwaysStallsWhenBitrateAboveCapacity) {
  const auto s = path_setup();
  StreamingConfig cfg;
  cfg.bitrate_mbps = 8.0;
  cfg.min_link_mbps = 4.5;
  cfg.max_link_mbps = 7.0;  // strictly below the bitrate
  cfg.trials = 50;
  const auto r = evaluate_streaming(s.p, s.f, cfg);
  EXPECT_DOUBLE_EQ(r.stall_fraction, 1.0);
  EXPECT_GT(r.avg_rebuffering_s, 10.0);
}

TEST(Qoe, ClosedFormSingleLink) {
  // Deterministic capacity band (min == max) makes the formulas exact.
  const auto s = path_setup();
  StreamingConfig cfg;
  cfg.bitrate_mbps = 8.0;
  cfg.min_link_mbps = 6.0;
  cfg.max_link_mbps = 6.0;
  cfg.trials = 3;
  cfg.base_setup_s = 1.0;
  cfg.startup_buffer_s = 2.0;
  cfg.stall_overhead_s = 0.0;
  cfg.duration_s = 120.0;
  const auto r = evaluate_streaming(s.p, s.f, cfg);
  EXPECT_NEAR(r.avg_startup_latency_s, 1.0 + 2.0 * 8.0 / 6.0, 1e-9);
  EXPECT_NEAR(r.avg_rebuffering_s, 120.0 * (8.0 - 6.0) / 6.0, 1e-9);
  EXPECT_NEAR(r.avg_throughput_mbps, 6.0, 1e-9);
}

TEST(Qoe, MulticastSharesStageDuplicationDoesNot) {
  // Two walks crossing the same trunk at the SAME stage carry one multicast
  // copy (full rate); crossing it at DIFFERENT stages duplicates the stream
  // (halved rate) — the effect Table II credits for SOFDA's QoE edge.
  Problem p;
  p.network = core::Graph(5);
  p.network.add_edge(0, 1, 1.0);
  p.network.add_edge(1, 2, 1.0);  // trunk under test
  p.network.add_edge(2, 3, 1.0);
  p.network.add_edge(2, 4, 1.0);
  p.node_cost = {0, 2, 0, 2, 0};
  p.is_vm = {0, 1, 0, 1, 0};
  p.sources = {0};
  p.destinations = {3, 4};
  p.chain_length = 1;

  StreamingConfig cfg;
  cfg.bitrate_mbps = 8.0;
  cfg.min_link_mbps = 8.0;
  cfg.max_link_mbps = 8.0;
  cfg.trials = 1;

  // Shared stage: both walks run f1 at VM 1, trunk carries stage-1 data once.
  ServiceForest shared;
  core::ChainWalk a;
  a.source = 0;
  a.destination = 4;
  a.nodes = {0, 1, 2, 4};
  a.vnf_pos = {1};
  core::ChainWalk b;
  b.source = 0;
  b.destination = 3;
  b.nodes = {0, 1, 2, 3};
  b.vnf_pos = {1};
  shared.walks = {a, b};
  EXPECT_NEAR(evaluate_streaming(p, shared, cfg).avg_throughput_mbps, 8.0, 1e-9);

  // Stage-distinct: walk b now runs f1 at VM 3 instead, so the trunk carries
  // stage-1 data (walk a) AND stage-0 data (walk b): two copies, rate 4.
  ServiceForest split = shared;
  split.walks[1].vnf_pos = {3};
  EXPECT_NEAR(evaluate_streaming(p, split, cfg).avg_throughput_mbps, 4.0, 1e-9);
}

TEST(Qoe, ProfilesDiffer) {
  const auto ours = profile_ours();
  const auto emu = profile_emulab();
  EXPECT_GT(ours.base_setup_s, emu.base_setup_s)
      << "hardware testbed has slower rule installation than Emulab";
}

TEST(Qoe, SofdaBeatsBaselinesOnTestbed) {
  // Table II shape: with congestion-aware prices (the embedding sees the
  // same capacities the stream will meet), SOFDA's startup latency and
  // re-buffering are the lowest, averaged over capacity draws.
  const auto topo = topology::testbed14();
  auto cfg_q = profile_ours();
  cfg_q.physical_edges = topo.g.edge_count();

  double s_sofda = 0, s_est = 0, s_enemp = 0;
  double r_sofda = 0, r_est = 0, r_enemp = 0;
  int trials = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    topology::ProblemConfig cfg;
    cfg.num_vms = 8;
    cfg.num_sources = 2;
    cfg.num_destinations = 4;
    cfg.chain_length = 2;  // transcoder + watermarker
    cfg.seed = 2017 + seed;
    cfg.randomize_link_usage = false;
    auto p = topology::make_problem(topo, cfg);
    util::Rng rng(seed * 0xbeef);
    const auto capacities = price_links_by_capacity(p, topo.g.edge_count(), cfg_q, rng);

    const auto f_sofda = core::sofda(p);
    const auto f_est = baselines::run(p, baselines::Kind::kEst);
    const auto f_enemp = baselines::run(p, baselines::Kind::kEnemp);
    if (f_sofda.empty() || f_est.empty() || f_enemp.empty()) continue;
    const auto q_sofda = evaluate_streaming_fixed(p, f_sofda, cfg_q, capacities);
    const auto q_est = evaluate_streaming_fixed(p, f_est, cfg_q, capacities);
    const auto q_enemp = evaluate_streaming_fixed(p, f_enemp, cfg_q, capacities);
    s_sofda += q_sofda.avg_startup_latency_s;
    s_est += q_est.avg_startup_latency_s;
    s_enemp += q_enemp.avg_startup_latency_s;
    r_sofda += q_sofda.avg_rebuffering_s;
    r_est += q_est.avg_rebuffering_s;
    r_enemp += q_enemp.avg_rebuffering_s;
    ++trials;
  }
  ASSERT_GE(trials, 6);
  EXPECT_LE(s_sofda, s_est + 1e-9);
  EXPECT_LE(s_sofda, s_enemp + 1e-9);
  EXPECT_LE(r_sofda, r_est + 1e-9);
}

TEST(Qoe, EmptyForestYieldsZeros) {
  const auto s = path_setup();
  const auto r = evaluate_streaming(s.p, ServiceForest{}, StreamingConfig{});
  EXPECT_DOUBLE_EQ(r.avg_startup_latency_s, 0.0);
}

}  // namespace
}  // namespace sofe::qoe
