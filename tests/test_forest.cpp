// ServiceForest cost-accounting tests: stage-edge deduplication (τ), shared
// VM setup (σ), walk revisits, and the pass-through shortening post-step.

#include <gtest/gtest.h>

#include "sofe/core/forest.hpp"
#include "sofe/core/validate.hpp"

namespace sofe::core {
namespace {

/// Line 0-1-2-3-4-5 with unit edges; VMs at 2 and 3.
Problem line6() {
  Problem p;
  p.network = Graph(6);
  for (NodeId v = 0; v + 1 < 6; ++v) p.network.add_edge(v, v + 1, 1.0);
  p.node_cost = {0, 0, 5, 7, 0, 0};
  p.is_vm = {0, 0, 1, 1, 0, 0};
  p.sources = {0};
  p.destinations = {5};
  p.chain_length = 2;
  return p;
}

ChainWalk straight_walk() {
  ChainWalk w;
  w.source = 0;
  w.destination = 5;
  w.nodes = {0, 1, 2, 3, 4, 5};
  w.vnf_pos = {2, 3};
  return w;
}

TEST(ForestCost, SingleWalk) {
  Problem p = line6();
  ServiceForest f;
  f.walks.push_back(straight_walk());
  EXPECT_DOUBLE_EQ(setup_cost(p, f), 12.0);
  EXPECT_DOUBLE_EQ(connection_cost(p, f), 5.0);
  EXPECT_DOUBLE_EQ(total_cost(p, f), 17.0);
  EXPECT_TRUE(is_feasible(p, f));
}

TEST(ForestCost, SharedChainCountedOnce) {
  Problem p = line6();
  p.destinations = {4, 5};
  ServiceForest f;
  ChainWalk w1 = straight_walk();
  w1.destination = 4;
  w1.nodes = {0, 1, 2, 3, 4};
  ChainWalk w2 = straight_walk();
  f.walks = {w1, w2};
  // Chain edges 0-1,1-2,2-3 and distribution 3-4 shared; 4-5 extra for w2.
  EXPECT_DOUBLE_EQ(connection_cost(p, f), 5.0);
  EXPECT_DOUBLE_EQ(setup_cost(p, f), 12.0);  // VMs shared
  EXPECT_TRUE(is_feasible(p, f));
}

TEST(ForestCost, RevisitedEdgePaidPerStage) {
  // Walk 0-1-2(f1)-1-2: edge 1-2 is used at stage 1 (to reach VM 2) and
  // again at stages 1/2 after bouncing — the paper's Fig. 1(b) effect.
  Problem p = line6();
  p.destinations = {4};
  p.chain_length = 1;
  ServiceForest f;
  ChainWalk w;
  w.source = 0;
  w.destination = 4;
  w.nodes = {0, 1, 2, 1, 2, 3, 4};
  w.vnf_pos = {2};  // f1 at first visit of node 2
  f.walks.push_back(w);
  // Stage 0: edges (0,1),(1,2).  Stage 1: (2,1),(1,2) dedup to {1,2} once,
  // plus (2,3),(3,4).  (1,2) appears at stage 0 AND stage 1: paid twice.
  EXPECT_DOUBLE_EQ(connection_cost(p, f), 2.0 + 3.0);
  EXPECT_TRUE(is_feasible(p, f));
}

TEST(ForestCost, TwoTreesIndependent) {
  Problem p = line6();
  p.sources = {0, 5};
  p.destinations = {1, 4};
  p.chain_length = 1;
  ServiceForest f;
  ChainWalk a;
  a.source = 0;
  a.destination = 1;
  a.nodes = {0, 1, 2, 1};
  a.vnf_pos = {2};
  ChainWalk b;
  b.source = 5;
  b.destination = 4;
  b.nodes = {5, 4, 3, 4};
  b.vnf_pos = {2};
  f.walks = {a, b};
  EXPECT_DOUBLE_EQ(setup_cost(p, f), 12.0);
  EXPECT_EQ(f.used_sources().size(), 2u);
  EXPECT_TRUE(is_feasible(p, f));
}

TEST(ForestCost, EnabledVmsAggregates) {
  Problem p = line6();
  ServiceForest f;
  f.walks.push_back(straight_walk());
  const auto enabled = f.enabled_vms();
  ASSERT_EQ(enabled.size(), 2u);
  EXPECT_EQ(enabled.at(2), 1);
  EXPECT_EQ(enabled.at(3), 2);
}

TEST(ForestCost, SourceSetupCostsAppendixD) {
  Problem p = line6();
  p.source_setup_cost.assign(6, 0.0);
  p.source_setup_cost[0] = 4.0;
  ServiceForest f;
  f.walks.push_back(straight_walk());
  EXPECT_DOUBLE_EQ(setup_cost(p, f), 16.0);
}

TEST(Shorten, RemovesUselessDetour) {
  // Walk detours 0-1-2(f1)-1-0-1-2-3... no; simpler: add a shortcut edge and
  // a walk that ignores it on its pass-through segment.
  Problem p = line6();
  p.network.add_edge(2, 5, 1.0);  // shortcut from VM 2 straight to 5
  p.chain_length = 1;
  ServiceForest f;
  ChainWalk w;
  w.source = 0;
  w.destination = 5;
  w.nodes = {0, 1, 2, 3, 4, 5};
  w.vnf_pos = {2};
  f.walks.push_back(w);
  const Cost before = total_cost(p, f);  // connection 5 + setup 5 = 10
  shorten_pass_through(p, f);
  EXPECT_LE(total_cost(p, f), before);
  // After the splice: 0-1-2 (2) + shortcut 2-5 (1) + setup 5 = 8.
  EXPECT_DOUBLE_EQ(total_cost(p, f), 8.0);
  EXPECT_TRUE(is_feasible(p, f));
}

TEST(Shorten, KeepsSharedSegmentsWhenCheaper) {
  // Two walks share an expensive-but-paid segment; shortening one onto a
  // private shortcut would RAISE the forest cost, so it must not happen.
  Problem p;
  p.network = Graph(5);
  p.network.add_edge(0, 1, 1.0);   // s -> vm
  p.network.add_edge(1, 2, 4.0);   // shared distribution trunk
  p.network.add_edge(2, 3, 0.5);   // to d1
  p.network.add_edge(2, 4, 0.5);   // to d2
  p.network.add_edge(1, 3, 4.2);   // private shortcut for d1 (longer than 0!)
  p.node_cost = {0, 1, 0, 0, 0};
  p.is_vm = {0, 1, 0, 0, 0};
  p.sources = {0};
  p.destinations = {3, 4};
  p.chain_length = 1;

  ServiceForest f;
  ChainWalk w1;
  w1.source = 0;
  w1.destination = 3;
  w1.nodes = {0, 1, 2, 3};
  w1.vnf_pos = {1};
  ChainWalk w2;
  w2.source = 0;
  w2.destination = 4;
  w2.nodes = {0, 1, 2, 4};
  w2.vnf_pos = {1};
  f.walks = {w1, w2};
  const Cost before = total_cost(p, f);  // 1 + 4 + 0.5 + 0.5 + setup 1 = 7
  shorten_pass_through(p, f);
  EXPECT_DOUBLE_EQ(total_cost(p, f), before) << "shortening must not raise forest cost";
}

TEST(Describe, MentionsCostAndVnfs) {
  Problem p = line6();
  ServiceForest f;
  f.walks.push_back(straight_walk());
  const std::string text = describe(p, f);
  EXPECT_NE(text.find("total cost 17"), std::string::npos);
  EXPECT_NE(text.find("[f1]"), std::string::npos);
  EXPECT_NE(text.find("[f2]"), std::string::npos);
}

TEST(StageEdges, StagesComputedCorrectly) {
  ChainWalk w = straight_walk();
  EXPECT_EQ(w.stage_at(0), 0);
  EXPECT_EQ(w.stage_at(1), 0);
  EXPECT_EQ(w.stage_at(2), 1);
  EXPECT_EQ(w.stage_at(3), 2);
  EXPECT_EQ(w.vnf_node(1), 2);
  EXPECT_EQ(w.vnf_node(2), 3);
}

}  // namespace
}  // namespace sofe::core
