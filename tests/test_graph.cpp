// Unit and property tests for the graph substrate: Dijkstra vs oracles,
// MST, DSU, metric closure, Voronoi partitions.

#include <gtest/gtest.h>

#include <algorithm>

#include "sofe/graph/dijkstra.hpp"
#include "sofe/graph/dsu.hpp"
#include "sofe/graph/metric_closure.hpp"
#include "sofe/graph/mst.hpp"
#include "sofe/graph/oracles.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::graph {
namespace {

Graph diamond() {
  // 0 -1- 1 -1- 3,  0 -3- 2 -1- 3,  1 -1- 2
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 3.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(1, 2, 1.0);
  return g;
}

Graph random_connected(util::Rng& rng, int n, double extra_edge_prob) {
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>(rng.index(static_cast<std::size_t>(v))),
               rng.uniform(0.5, 10.0));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(extra_edge_prob)) g.add_edge(u, v, rng.uniform(0.5, 10.0));
    }
  }
  return g;
}

TEST(Graph, BasicAccessors) {
  Graph g = diamond();
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 5);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.edge(0).other(0), 1);
  EXPECT_EQ(g.edge(0).other(1), 0);
}

TEST(Graph, FindEdgePicksCheapestParallel) {
  Graph g(2);
  g.add_edge(0, 1, 5.0);
  const EdgeId cheap = g.add_edge(0, 1, 2.0);
  EXPECT_EQ(g.find_edge(0, 1), cheap);
  EXPECT_EQ(g.find_edge(1, 0), cheap);
}

TEST(Graph, EdgeKeyCanonical) {
  EXPECT_EQ(Graph::edge_key(3, 1), (std::pair<NodeId, NodeId>{1, 3}));
  EXPECT_EQ(Graph::edge_key(1, 3), (std::pair<NodeId, NodeId>{1, 3}));
}

TEST(Graph, SetEdgeCost) {
  Graph g = diamond();
  g.set_edge_cost(0, 7.5);
  EXPECT_DOUBLE_EQ(g.edge(0).cost, 7.5);
}

TEST(Dijkstra, DiamondDistances) {
  Graph g = diamond();
  const auto t = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(t.distance(0), 0.0);
  EXPECT_DOUBLE_EQ(t.distance(1), 1.0);
  EXPECT_DOUBLE_EQ(t.distance(2), 2.0);  // via node 1, not the direct 3-edge
  EXPECT_DOUBLE_EQ(t.distance(3), 2.0);
}

TEST(Dijkstra, PathReconstruction) {
  Graph g = diamond();
  const auto t = dijkstra(g, 0);
  const auto path = t.path_to(3);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 3);
  // Path cost must equal the reported distance.
  Cost c = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    c += g.edge(g.find_edge(path[i], path[i + 1])).cost;
  }
  EXPECT_DOUBLE_EQ(c, t.distance(3));
}

TEST(Dijkstra, UnreachableIsInfinite) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const auto t = dijkstra(g, 0);
  EXPECT_FALSE(t.reachable(2));
  EXPECT_EQ(t.distance(2), kInfiniteCost);
}

class DijkstraRandom : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraRandom, MatchesFloydWarshallAndBellmanFord) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = rng.uniform_int(5, 30);
  Graph g = random_connected(rng, n, 0.15);
  const auto fw = floyd_warshall(g);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto t = dijkstra(g, s);
    const auto bf = bellman_ford(g, s);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_NEAR(t.distance(v), fw[static_cast<std::size_t>(s)][static_cast<std::size_t>(v)],
                  1e-9);
      EXPECT_NEAR(t.distance(v), bf[static_cast<std::size_t>(v)], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraRandom, ::testing::Range(1, 13));

TEST(MultiSourceDijkstra, OwnersAreNearestSources) {
  util::Rng rng(99);
  Graph g = random_connected(rng, 25, 0.1);
  const std::vector<NodeId> sources{2, 11, 19};
  const auto vor = multi_source_dijkstra(g, sources);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    Cost best = kInfiniteCost;
    for (NodeId s : sources) best = std::min(best, dijkstra(g, s).distance(v));
    EXPECT_NEAR(vor.dist[static_cast<std::size_t>(v)], best, 1e-9);
    EXPECT_NE(vor.owner[static_cast<std::size_t>(v)], kInvalidNode);
  }
}

TEST(MultiSourceDijkstra, DuplicateSeedsTolerated) {
  Graph g = diamond();
  const auto vor = multi_source_dijkstra(g, {0, 0, 3});
  EXPECT_DOUBLE_EQ(vor.dist[1], 1.0);
}

TEST(Mst, DiamondCost) {
  Graph g = diamond();
  const auto mst = minimum_spanning_forest(g);
  EXPECT_EQ(mst.edges.size(), 3u);
  EXPECT_DOUBLE_EQ(mst.total_cost(g), 3.0);
}

class MstRandom : public ::testing::TestWithParam<int> {};

TEST_P(MstRandom, MatchesPrimOnConnectedGraphs) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);
  const int n = rng.uniform_int(4, 40);
  Graph g = random_connected(rng, n, 0.2);
  const auto kruskal = minimum_spanning_forest(g);
  std::vector<bool> all(static_cast<std::size_t>(n), true);
  const auto prim = prim_subgraph(g, all, 0);
  EXPECT_EQ(kruskal.edges.size(), static_cast<std::size_t>(n - 1));
  EXPECT_EQ(prim.edges.size(), static_cast<std::size_t>(n - 1));
  EXPECT_NEAR(kruskal.total_cost(g), prim.total_cost(g), 1e-9);
  EXPECT_TRUE(is_forest(g, kruskal.edges));
  EXPECT_TRUE(is_forest(g, prim.edges));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstRandom, ::testing::Range(1, 13));

TEST(Dsu, UniteAndFind) {
  DisjointSetUnion dsu(6);
  EXPECT_EQ(dsu.component_count(), 6u);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(1, 2));
  EXPECT_FALSE(dsu.unite(0, 2));
  EXPECT_TRUE(dsu.connected(0, 2));
  EXPECT_FALSE(dsu.connected(0, 3));
  EXPECT_EQ(dsu.component_count(), 4u);
  EXPECT_EQ(dsu.component_size(2), 3u);
}

TEST(PruneLeaves, RemovesOnlyNonTerminals) {
  // Path 0-1-2-3 with terminals {0, 2}: edge 2-3 should be pruned.
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1, 1.0);
  const EdgeId e12 = g.add_edge(1, 2, 1.0);
  const EdgeId e23 = g.add_edge(2, 3, 1.0);
  std::vector<bool> keep(4, false);
  keep[0] = keep[2] = true;
  const auto pruned = prune_non_terminal_leaves(g, {e01, e12, e23}, keep);
  EXPECT_EQ(pruned.size(), 2u);
  EXPECT_TRUE(std::find(pruned.begin(), pruned.end(), e23) == pruned.end());
}

TEST(PruneLeaves, CascadingPrune) {
  // Star with a two-hop dead branch: both its edges must go.
  Graph g(5);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  const EdgeId b = g.add_edge(1, 2, 1.0);   // 2 is a terminal
  const EdgeId c = g.add_edge(1, 3, 1.0);   // dead branch 1-3-4
  const EdgeId d = g.add_edge(3, 4, 1.0);
  std::vector<bool> keep(5, false);
  keep[0] = keep[2] = true;
  const auto pruned = prune_non_terminal_leaves(g, {a, b, c, d}, keep);
  EXPECT_EQ(pruned.size(), 2u);
}

TEST(MetricClosure, DistancesAndPaths) {
  Graph g = diamond();
  MetricClosure mc(g, {0, 3});
  EXPECT_TRUE(mc.is_hub(0));
  EXPECT_FALSE(mc.is_hub(1));
  EXPECT_DOUBLE_EQ(mc.distance(0, 3), 2.0);
  const auto p = mc.path(3, 0);
  EXPECT_EQ(p.front(), 3);
  EXPECT_EQ(p.back(), 0);
}

TEST(Connectivity, DetectsDisconnected) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_FALSE(is_connected(g));
  g.add_edge(1, 2, 1.0);
  EXPECT_TRUE(is_connected(g));
}

}  // namespace
}  // namespace sofe::graph
