// I/O tests: serialize/deserialize round trip, malformed-input rejection,
// and DOT export structure.

#include <gtest/gtest.h>

#include "sofe/core/sofda.hpp"
#include "sofe/io/io.hpp"
#include "sofe/topology/topology.hpp"

namespace sofe::io {
namespace {

Problem sample() {
  topology::ProblemConfig cfg;
  cfg.num_vms = 6;
  cfg.num_sources = 3;
  cfg.num_destinations = 4;
  cfg.chain_length = 2;
  cfg.seed = 44;
  return topology::make_problem(topology::softlayer(), cfg);
}

TEST(Io, RoundTripPreservesEverything) {
  const Problem p = sample();
  const Problem q = deserialize(serialize(p));
  ASSERT_EQ(q.network.node_count(), p.network.node_count());
  ASSERT_EQ(q.network.edge_count(), p.network.edge_count());
  for (graph::EdgeId e = 0; e < p.network.edge_count(); ++e) {
    EXPECT_EQ(q.network.edge(e).u, p.network.edge(e).u);
    EXPECT_EQ(q.network.edge(e).v, p.network.edge(e).v);
    EXPECT_DOUBLE_EQ(q.network.edge(e).cost, p.network.edge(e).cost);
  }
  EXPECT_EQ(q.node_cost, p.node_cost);
  EXPECT_EQ(q.is_vm, p.is_vm);
  EXPECT_EQ(q.sources, p.sources);
  EXPECT_EQ(q.destinations, p.destinations);
  EXPECT_EQ(q.chain_length, p.chain_length);
}

TEST(Io, RoundTripWithSourceCosts) {
  Problem p = sample();
  p.source_setup_cost.assign(static_cast<std::size_t>(p.network.node_count()), 0.0);
  for (auto s : p.sources) p.source_setup_cost[static_cast<std::size_t>(s)] = 2.5;
  const Problem q = deserialize(serialize(p));
  ASSERT_TRUE(q.has_source_costs());
  for (auto s : p.sources) EXPECT_DOUBLE_EQ(q.source_cost(s), 2.5);
}

TEST(Io, RoundTripEquivalentSolverBehavior) {
  const Problem p = sample();
  const Problem q = deserialize(serialize(p));
  EXPECT_DOUBLE_EQ(core::total_cost(p, core::sofda(p)), core::total_cost(q, core::sofda(q)));
}

TEST(Io, RejectsMalformedInput) {
  EXPECT_THROW(deserialize(""), std::runtime_error);
  EXPECT_THROW(deserialize("sofe-instance v2\n"), std::runtime_error);
  EXPECT_THROW(deserialize("sofe-instance v1\nnodes -3\n"), std::runtime_error);
  EXPECT_THROW(deserialize("sofe-instance v1\nnodes 2\nchain 1\nedges 1\n0 5 1.0\n"),
               std::runtime_error);
  // Well-formedness is enforced: a "switch" with nonzero cost cannot appear
  // because only VMs carry costs in the format; missing sources fail.
  EXPECT_THROW(deserialize("sofe-instance v1\nnodes 2\nchain 1\nedges 1\n0 1 1.0\n"
                           "vms 1:2.0\nsources\ndestinations 0\n"),
               std::runtime_error);
}

TEST(Io, SaveLoadFile) {
  const Problem p = sample();
  const std::string path = "/tmp/sofe_io_test_instance.txt";
  save_instance(p, path);
  const Problem q = load_instance(path);
  EXPECT_EQ(q.sources, p.sources);
  EXPECT_THROW(load_instance("/nonexistent/dir/x.txt"), std::runtime_error);
}

TEST(Io, DotContainsRolesAndStages) {
  const Problem p = sample();
  const auto f = core::sofda(p);
  const std::string dot = to_dot(p, f);
  EXPECT_NE(dot.find("graph sof {"), std::string::npos);
  EXPECT_NE(dot.find("lightblue"), std::string::npos);   // sources
  EXPECT_NE(dot.find("lightyellow"), std::string::npos); // destinations
  EXPECT_NE(dot.find("palegreen"), std::string::npos);   // enabled VMs
  EXPECT_NE(dot.find("penwidth=2.5"), std::string::npos); // walk edges
  EXPECT_NE(dot.find("f1"), std::string::npos);           // VNF label
  // Bare export works too.
  const std::string bare = to_dot(p);
  EXPECT_EQ(bare.find("penwidth"), std::string::npos);
}

}  // namespace
}  // namespace sofe::io
