// End-to-end integration tests: the full pipeline on every evaluation
// topology, larger-scale smoke runs, and the dynamic/online/distributed
// subsystems driven off real SOFDA embeddings.

#include <gtest/gtest.h>

#include "sofe/baselines/baselines.hpp"
#include "sofe/core/dynamic.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/dist/dist_sofda.hpp"
#include "sofe/online/simulator.hpp"
#include "sofe/qoe/streaming.hpp"
#include "sofe/topology/topology.hpp"
#include "sofe/util/stopwatch.hpp"

namespace sofe {
namespace {

using core::total_cost;

TEST(Integration, SoftlayerDefaultsAllAlgorithms) {
  // The paper's default cell: 14 sources, 6 destinations, 25 VMs, |C| = 3.
  topology::ProblemConfig cfg;
  cfg.seed = 1;
  const auto p = topology::make_problem(topology::softlayer(), cfg);
  const auto f_sofda = core::sofda(p);
  const auto f_est = baselines::run(p, baselines::Kind::kEst);
  const auto f_enemp = baselines::run(p, baselines::Kind::kEnemp);
  const auto f_st = baselines::run(p, baselines::Kind::kSt);
  for (const auto* f : {&f_sofda, &f_est, &f_enemp, &f_st}) {
    ASSERT_FALSE(f->empty());
    EXPECT_TRUE(core::is_feasible(p, *f)) << core::validate(p, *f).summary();
  }
  EXPECT_LE(total_cost(p, f_sofda), total_cost(p, f_st) + 1e-9);
}

TEST(Integration, CogentScale) {
  topology::ProblemConfig cfg;
  cfg.num_vms = 25;
  cfg.num_sources = 14;
  cfg.num_destinations = 10;
  cfg.chain_length = 3;
  cfg.seed = 2;
  const auto p = topology::make_problem(topology::cogent(), cfg);
  const auto f = core::sofda(p);
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(core::is_feasible(p, f)) << core::validate(p, f).summary();
}

TEST(Integration, InetMidScaleUnderTimeBudget) {
  // 1000-node synthetic network; SOFDA must finish well under the paper's
  // reported seconds-scale runtime.
  topology::ProblemConfig cfg;
  cfg.num_vms = 25;
  cfg.num_sources = 8;
  cfg.num_destinations = 10;
  cfg.chain_length = 3;
  cfg.seed = 3;
  const auto topo = topology::inet(1000, 2000, 400, 42);
  const auto p = topology::make_problem(topo, cfg);
  util::Stopwatch watch;
  const auto f = core::sofda(p);
  const double secs = watch.seconds();
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(core::is_feasible(p, f)) << core::validate(p, f).summary();
  EXPECT_LT(secs, 30.0) << "SOFDA too slow at 1000 nodes";
}

TEST(Integration, EmbedThenChurnThenReroute) {
  topology::ProblemConfig cfg;
  cfg.num_vms = 12;
  cfg.num_sources = 4;
  cfg.num_destinations = 5;
  cfg.chain_length = 2;
  cfg.seed = 4;
  auto p = topology::make_problem(topology::softlayer(), cfg);
  auto f = core::sofda(p);
  ASSERT_FALSE(f.empty());
  core::DynamicForest live(std::move(p), std::move(f));

  ASSERT_TRUE(live.destination_leave(live.problem().destinations.front()));
  ASSERT_TRUE(live.vnf_insert(3));
  ASSERT_TRUE(live.vnf_delete(1));
  const auto uses = live.forest().stage_edges();
  for (const auto& se : uses) {
    const auto e = live.problem().network.find_edge(se.u, se.v);
    if (live.problem().network.edge(e).cost > 0.0) {
      live.reroute_link(e, live.problem().network.edge(e).cost * 50.0);
      break;
    }
  }
  EXPECT_TRUE(core::is_feasible(live.problem(), live.forest()))
      << core::validate(live.problem(), live.forest()).summary();
}

TEST(Integration, OnlineThenQoeOnTestbed) {
  // Embed a request on the Fig. 13 testbed, then stream over it.
  const auto topo = topology::testbed14();
  topology::ProblemConfig cfg;
  cfg.num_vms = 6;
  cfg.num_sources = 2;
  cfg.num_destinations = 4;
  cfg.chain_length = 2;
  cfg.seed = 5;
  const auto p = topology::make_problem(topo, cfg);
  const auto f = core::sofda(p);
  ASSERT_FALSE(f.empty());
  auto q = qoe::profile_ours();
  q.physical_edges = topo.g.edge_count();
  q.trials = 100;
  const auto r = qoe::evaluate_streaming(p, f, q);
  EXPECT_GT(r.avg_startup_latency_s, 0.0);
  EXPECT_GE(r.avg_rebuffering_s, 0.0);
  EXPECT_GT(r.avg_throughput_mbps, 0.0);
}

TEST(Integration, DistributedOnCogent) {
  topology::ProblemConfig cfg;
  cfg.num_vms = 10;
  cfg.num_sources = 4;
  cfg.num_destinations = 6;
  cfg.chain_length = 2;
  cfg.seed = 6;
  const auto p = topology::make_problem(topology::cogent(), cfg);
  const auto r = dist::distributed_sofda(p, 4);
  ASSERT_FALSE(r.forest.empty());
  EXPECT_TRUE(core::is_feasible(p, r.forest)) << core::validate(p, r.forest).summary();
  EXPECT_EQ(r.controllers, 4);
  EXPECT_GT(r.messages, 0u);
}

TEST(Integration, OnlineSequenceAllAlgorithms) {
  const auto topo = topology::softlayer();
  online::OnlineConfig cfg;
  cfg.requests = 6;
  cfg.min_destinations = 3;
  cfg.max_destinations = 5;
  cfg.min_sources = 2;
  cfg.max_sources = 4;
  cfg.vms_per_dc = 3;
  cfg.seed = 7;
  const auto sofda_r = online::simulate(topo, cfg, "SOFDA", [](const core::Problem& p) {
    return core::sofda(p);
  });
  const auto est_r = online::simulate(topo, cfg, "eST", [](const core::Problem& p) {
    return baselines::run(p, baselines::Kind::kEst);
  });
  EXPECT_EQ(sofda_r.infeasible_requests, 0);
  EXPECT_EQ(est_r.infeasible_requests, 0);
  EXPECT_GT(sofda_r.accumulative_cost.back(), 0.0);
}

TEST(Integration, AppendixDSourceCostsEndToEnd) {
  topology::ProblemConfig cfg;
  cfg.num_vms = 10;
  cfg.num_sources = 5;
  cfg.num_destinations = 5;
  cfg.chain_length = 2;
  cfg.seed = 8;
  auto p = topology::make_problem(topology::softlayer(), cfg);
  auto p_priced = p;
  p_priced.source_setup_cost.assign(static_cast<std::size_t>(p.network.node_count()), 0.0);
  for (auto s : p_priced.sources) {
    p_priced.source_setup_cost[static_cast<std::size_t>(s)] = 5.0;
  }
  const auto f_free = core::sofda(p);
  const auto f_priced = core::sofda(p_priced);
  ASSERT_FALSE(f_free.empty());
  ASSERT_FALSE(f_priced.empty());
  EXPECT_TRUE(core::is_feasible(p_priced, f_priced));
  // Priced sources make the forest at least as expensive and tend to shrink
  // the number of trees.
  EXPECT_GE(total_cost(p_priced, f_priced) + 1e-9, total_cost(p, f_free));
  EXPECT_LE(f_priced.used_sources().size(), f_free.used_sources().size() + 1);
}

}  // namespace
}  // namespace sofe
