// Epoch-pipelined admission service tests (DESIGN.md §10): worker-count
// determinism against the sequential driver, the stale-price repricing
// rule under mid-epoch departures, OnlineConfig validation, and the
// price_epoch generation dedup.

#include <gtest/gtest.h>

#include <stdexcept>

#include "sofe/api/registry.hpp"
#include "sofe/api/report.hpp"
#include "sofe/core/pricing.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/graph/metric_closure.hpp"
#include "sofe/online/pipeline.hpp"
#include "sofe/online/stream.hpp"

namespace sofe::online {
namespace {

OnlineConfig pipeline_config() {
  OnlineConfig cfg;
  cfg.requests = 12;
  cfg.min_destinations = 2;
  cfg.max_destinations = 4;
  cfg.min_sources = 2;
  cfg.max_sources = 3;
  cfg.chain_length = 2;
  cfg.vms_per_dc = 2;
  cfg.seed = 5;
  return cfg;
}

void expect_series_identical(const OnlineResult& a, const OnlineResult& b) {
  ASSERT_EQ(a.accumulative_cost.size(), b.accumulative_cost.size());
  for (std::size_t i = 0; i < a.accumulative_cost.size(); ++i) {
    EXPECT_EQ(a.accumulative_cost[i], b.accumulative_cost[i]) << "arrival " << i;  // bitwise
    EXPECT_EQ(a.per_request_cost[i], b.per_request_cost[i]) << "arrival " << i;
  }
  EXPECT_EQ(a.infeasible_requests, b.infeasible_requests);
  EXPECT_EQ(a.overloaded_links, b.overloaded_links);
}

OnlineResult sequential_reference(const topology::Topology& topo, const OnlineConfig& cfg) {
  auto solver = api::make_solver("sofda");
  return simulate(topo, cfg, *solver);
}

// The tentpole contract: at every worker count and epoch size, with and
// without departures, on more than one topology, the pipeline's cost
// series is bitwise the sequential driver's.
TEST(PipelineDeterminism, MatchesSequentialDriverAcrossWorkersEpochsHolding) {
  const topology::Topology topos[] = {topology::softlayer(), topology::inet(40, 80, 8, 7)};
  for (const auto& topo : topos) {
    for (int holding : {0, 8}) {
      for (int epoch_size : {1, 4, 16}) {
        auto cfg = pipeline_config();
        cfg.holding_arrivals = holding;
        cfg.epoch_size = epoch_size;
        const OnlineResult ref = sequential_reference(topo, cfg);
        for (int workers : {1, 2, 8}) {
          PipelineOptions popt;
          popt.workers = workers;
          const OnlineResult got = serve_pipelined(topo, cfg, "sofda", {}, popt);
          SCOPED_TRACE(topo.name + " holding=" + std::to_string(holding) +
                       " S=" + std::to_string(epoch_size) + " W=" + std::to_string(workers));
          expect_series_identical(ref, got);
          EXPECT_EQ(got.workers, workers);
          EXPECT_EQ(got.epoch_size, epoch_size);
        }
      }
    }
  }
}

// PR 9's knob contract (DESIGN.md §13): the LRU row-retention window is —
// like threads, workers and epoch size — a pure speed/memory knob.  The
// fuzz drives the steady-state scenario where the window actually engages
// (sources recurring from a fixed Zipf-ish pool, departures churning the
// ledger both ways) across retention {off, tiny, default} × closure
// threads × pipeline workers on two topologies, and demands every series
// bitwise equal to the plain-defaults sequential reference.
TEST(PipelineDeterminism, RetentionWindowIsAPureSpeedKnobAcrossThreadsAndWorkers) {
  const topology::Topology topos[] = {topology::softlayer(), topology::inet(40, 80, 8, 7)};
  for (const auto& topo : topos) {
    for (int holding : {0, 8}) {
      auto cfg = pipeline_config();
      cfg.holding_arrivals = holding;
      cfg.epoch_size = 4;
      cfg.source_pool = 6;
      cfg.source_alpha = 1.0;
      const OnlineResult ref = sequential_reference(topo, cfg);
      for (int retention : {0, 8, 256}) {
        api::SolverOptions opt;
        opt.retention_rows = retention;
        for (int threads : {1, 2, 8}) {
          opt.threads = threads;
          auto solver = api::make_solver("sofda", opt);
          SCOPED_TRACE(topo.name + " holding=" + std::to_string(holding) +
                       " retention=" + std::to_string(retention) +
                       " threads=" + std::to_string(threads));
          expect_series_identical(ref, simulate(topo, cfg, *solver));
        }
        for (int workers : {1, 2, 8}) {
          PipelineOptions popt;
          popt.workers = workers;
          SCOPED_TRACE(topo.name + " holding=" + std::to_string(holding) +
                       " retention=" + std::to_string(retention) +
                       " workers=" + std::to_string(workers));
          expect_series_identical(ref, serve_pipelined(topo, cfg, "sofda", opt, popt));
        }
      }
    }
  }
}

// online::simulate re-expressed: at epoch_size 1 the sequential driver IS
// the historical per-arrival loop (pinned against the free function), and
// the 1-worker pipeline reproduces it through the full publish/commit
// machinery.
TEST(PipelineDeterminism, DegenerateCaseIsTheSequentialLoop) {
  const auto topo = topology::softlayer();
  const auto cfg = pipeline_config();  // epoch_size = 1
  const OnlineResult free_fn =
      simulate(topo, cfg, "SOFDA", [](const Problem& p) { return core::sofda(p); });
  const OnlineResult session = sequential_reference(topo, cfg);
  expect_series_identical(free_fn, session);
  PipelineOptions one;
  one.workers = 1;
  expect_series_identical(free_fn, serve_pipelined(topo, cfg, "sofda", {}, one));
}

// The stale-epoch gadget: holding_arrivals < epoch_size makes departures
// land mid-epoch, so the NEXT epoch's refresh moves prices downward while
// speculating workers (workers > epoch slots, lookahead on) already hold
// results priced against the old snapshot.  The stale-price rule must
// discard and re-solve them — the series still matches sequentially.
TEST(PipelineDeterminism, StaleEpochGadgetWithMidEpochDepartures) {
  const auto topo = topology::softlayer();
  auto cfg = pipeline_config();
  cfg.requests = 16;
  cfg.holding_arrivals = 2;  // departs inside the 4-slot epoch
  cfg.epoch_size = 4;
  const OnlineResult ref = sequential_reference(topo, cfg);
  PipelineOptions popt;
  popt.workers = 8;  // more workers than epoch slots forces speculation
  popt.lookahead_epochs = 1;
  const OnlineResult got = serve_pipelined(topo, cfg, "sofda", {}, popt);
  expect_series_identical(ref, got);
  // Speculation happened one way or the other; both outcomes of the rule
  // are schedule-dependent, so only their sum's possibility is asserted.
  EXPECT_GE(got.stale_repriced + got.speculative_commits, 0);
}

// Speculation off: lookahead 0 never prices ahead, so nothing can go
// stale, and the series still matches.
TEST(PipelineDeterminism, NoSpeculationStillMatches) {
  const auto topo = topology::softlayer();
  auto cfg = pipeline_config();
  cfg.epoch_size = 4;
  PipelineOptions popt;
  popt.workers = 4;
  popt.lookahead_epochs = 0;
  const OnlineResult got = serve_pipelined(topo, cfg, "sofda", {}, popt);
  expect_series_identical(sequential_reference(topo, cfg), got);
  EXPECT_EQ(got.stale_repriced, 0);
  EXPECT_EQ(got.speculative_commits, 0);
}

// Solvers that don't price against shared closures run through the
// pipeline's non-epoch path (solve() on the replica) and must match too.
TEST(PipelineDeterminism, NonClosureSolverFamilyMatches) {
  const auto topo = topology::softlayer();
  auto cfg = pipeline_config();
  cfg.requests = 8;
  cfg.epoch_size = 4;
  auto solver = api::make_solver("baseline/est");
  const OnlineResult ref = simulate(topo, cfg, *solver);
  PipelineOptions popt;
  popt.workers = 4;
  expect_series_identical(ref, serve_pipelined(topo, cfg, "baseline/est", {}, popt));
}

// The epoch-size semantics are real: with prices frozen for a whole epoch
// the drivers see different Problems than per-arrival refresh, so the
// series of different epoch sizes are NOT compared — but each one is
// internally consistent (accumulative = running sum of per-request).
TEST(PipelineSemantics, EpochSeriesInternallyConsistent) {
  const auto topo = topology::softlayer();
  auto cfg = pipeline_config();
  cfg.epoch_size = 4;
  PipelineOptions popt;
  popt.workers = 2;
  const OnlineResult r = serve_pipelined(topo, cfg, "sofda", {}, popt);
  ASSERT_EQ(r.per_request_cost.size(), static_cast<std::size_t>(cfg.requests));
  ASSERT_EQ(r.arrival_seconds.size(), static_cast<std::size_t>(cfg.requests));
  double sum = 0.0;
  for (std::size_t i = 0; i < r.per_request_cost.size(); ++i) {
    sum += r.per_request_cost[i];
    EXPECT_NEAR(sum, r.accumulative_cost[i], 1e-9);
  }
}

TEST(PipelineReports, SinkCollectsQueueWaitAndCommitPhases) {
  const auto topo = topology::softlayer();
  auto cfg = pipeline_config();
  cfg.requests = 8;
  cfg.epoch_size = 4;
  Pipeline pipeline(topo, cfg, "sofda", {}, PipelineOptions{2, 1});
  api::ReportAccumulator acc;
  pipeline.set_report_sink(&acc);
  (void)pipeline.run();
  // One committed report per arrival (a re-solved stale slot folds its
  // replacement, not both), with matching phase sample counts.
  EXPECT_EQ(acc.solves(), 8u);
  EXPECT_EQ(acc.queue_wait().count, 8u);
  EXPECT_EQ(acc.commit().count, 8u);
  EXPECT_GE(acc.queue_wait().total, 0.0);
}

TEST(PipelineValidation, RejectsDegenerateConfigs) {
  const auto topo = topology::softlayer();
  const auto expect_rejected = [&](OnlineConfig cfg) {
    EXPECT_THROW(simulate(topo, cfg, "SOFDA",
                          [](const Problem& p) { return core::sofda(p); }),
                 std::invalid_argument);
    EXPECT_THROW(Pipeline(topo, cfg, "sofda", {}, {}), std::invalid_argument);
  };
  auto cfg = pipeline_config();
  cfg.requests = 0;
  expect_rejected(cfg);
  cfg = pipeline_config();
  cfg.min_destinations = 5;
  cfg.max_destinations = 4;
  expect_rejected(cfg);
  cfg = pipeline_config();
  cfg.min_sources = 0;
  expect_rejected(cfg);
  cfg = pipeline_config();
  cfg.holding_arrivals = -1;
  expect_rejected(cfg);
  cfg = pipeline_config();
  cfg.epoch_size = 0;
  expect_rejected(cfg);
  cfg = pipeline_config();
  cfg.link_capacity = 0.0;
  expect_rejected(cfg);
}

TEST(PipelineValidation, AcceptsTheDefaults) {
  EXPECT_NO_THROW(validate(OnlineConfig{}));
}

// price_epoch's generation dedup, in isolation: a repeated generation must
// serve everything from cache (the update was already applied), and a
// generation gap must flush (this session missed an epoch's deltas).
TEST(PricingEpochMode, GenerationDedupAndGapFlush) {
  const auto topo = topology::softlayer();
  ArrivalStream stream(topo, pipeline_config());
  (void)stream.open_epoch(0);
  core::Problem p = stream.stage(0);  // a private copy to price against

  graph::MetricClosure closure;
  std::vector<core::NodeId> hubs = p.vms();
  hubs.insert(hubs.end(), p.sources.begin(), p.sources.end());
  closure.build(p.network, hubs);

  core::PricingSession session;
  core::PricingTally tally;
  const core::AlgoOptions opt;
  const auto first = session.price_epoch(p, closure, p.sources, 1,
                                         core::ClosureUpdate::rebuilt(), opt, 1, &tally);
  ASSERT_FALSE(first.empty());
  EXPECT_GT(tally.repriced, 0);

  // Same generation again: the "update" argument must be ignored — the
  // session already observed this epoch — so everything hits.
  const auto repeat = session.price_epoch(p, closure, p.sources, 1,
                                          core::ClosureUpdate::rebuilt(), opt, 1, &tally);
  EXPECT_EQ(repeat.size(), first.size());
  EXPECT_EQ(tally.repriced, 0);
  EXPECT_GT(tally.hits, 0);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].source, repeat[i].source);
    EXPECT_EQ(first[i].last_vm, repeat[i].last_vm);
    EXPECT_EQ(first[i].plan.cost, repeat[i].plan.cost);  // bitwise
  }

  // Jumping to generation 5 skips epochs 2..4: the session cannot know
  // what it missed, so it must flush and re-price.
  (void)session.price_epoch(p, closure, p.sources, 5, core::ClosureUpdate::unchanged(), opt, 1,
                            &tally);
  EXPECT_TRUE(tally.flushed);
  EXPECT_GT(tally.repriced, 0);
}

// The sequential epoch driver itself: persistent vs copy-per-arrival
// differential at epoch_size > 1 (the same invariant PR 4 pinned at 1).
TEST(EpochDriver, PersistentMatchesCopyingReferenceAtEpochSize4) {
  const auto topo = topology::softlayer();
  auto cfg = pipeline_config();
  cfg.epoch_size = 4;
  cfg.holding_arrivals = 3;
  const auto persistent =
      simulate(topo, cfg, "SOFDA", [](const Problem& p) { return core::sofda(p); });
  auto ref = cfg;
  ref.copy_problems = true;
  const auto copying =
      simulate(topo, ref, "SOFDA", [](const Problem& p) { return core::sofda(p); });
  expect_series_identical(persistent, copying);
}

}  // namespace
}  // namespace sofe::online
