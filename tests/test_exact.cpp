// Exact-solver tests: hand-computed optima, feasibility of reconstructed
// forests, the one-VNF-per-VM branch-and-bound, and lower-bound status
// against every approximation.

#include <gtest/gtest.h>

#include "sofe/core/sofda.hpp"
#include "sofe/core/sofda_ss.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/exact/solver.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::exact {
namespace {

using core::ChainWalk;
using core::Graph;

TEST(Exact, LineInstanceHandOptimum) {
  // 0 -1- 1(vm,c1) -1- 2(vm,c2) -1- 3: chain 2, D={3}.
  // Only possible assignment: f1@1, f2@2; cost = 3 edges + 3 setup = 6.
  Problem p;
  p.network = Graph(4);
  p.network.add_edge(0, 1, 1.0);
  p.network.add_edge(1, 2, 1.0);
  p.network.add_edge(2, 3, 1.0);
  p.node_cost = {0, 1, 2, 0};
  p.is_vm = {0, 1, 1, 0};
  p.sources = {0};
  p.destinations = {3};
  p.chain_length = 2;
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.optimal);
  EXPECT_DOUBLE_EQ(r.cost, 6.0);
  EXPECT_TRUE(core::is_feasible(p, r.forest)) << core::validate(p, r.forest).summary();
  EXPECT_NEAR(core::total_cost(p, r.forest), r.cost, 1e-9);
}

TEST(Exact, PicksCheaperOfTwoVms) {
  // Two parallel VMs; the optimum must take the cheap one.
  Problem p;
  p.network = Graph(5);
  p.network.add_edge(0, 1, 1.0);  // cheap VM branch
  p.network.add_edge(1, 3, 1.0);
  p.network.add_edge(0, 2, 1.0);  // expensive VM branch
  p.network.add_edge(2, 3, 1.0);
  p.network.add_edge(3, 4, 1.0);
  p.node_cost = {0, 1, 10, 0, 0};
  p.is_vm = {0, 1, 1, 0, 0};
  p.sources = {0};
  p.destinations = {4};
  p.chain_length = 1;
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.optimal);
  EXPECT_DOUBLE_EQ(r.cost, 1.0 + 3.0);
  EXPECT_EQ(r.forest.enabled_vms().begin()->first, 1);
}

TEST(Exact, SharedTreeBeatsTwoChains) {
  // Two destinations behind one VM: optimal shares chain + VM.
  Problem p;
  p.network = Graph(5);
  p.network.add_edge(0, 1, 2.0);
  p.network.add_edge(1, 2, 1.0);
  p.network.add_edge(2, 3, 1.0);
  p.network.add_edge(2, 4, 1.0);
  p.node_cost = {0, 3, 0, 0, 0};
  p.is_vm = {0, 1, 0, 0, 0};
  p.sources = {0};
  p.destinations = {3, 4};
  p.chain_length = 1;
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.optimal);
  // Chain 0-1 (2) + setup 3 + shared 1-2 (1) + leaves (1+1) = 8.
  EXPECT_DOUBLE_EQ(r.cost, 8.0);
  EXPECT_TRUE(core::is_feasible(p, r.forest));
}

TEST(Exact, BranchAndBoundEnforcesOneVnfPerVm) {
  // One central cheap VM that the relaxation wants for BOTH stages; a far
  // expensive VM exists.  The B&B must split the stages across two VMs.
  Problem p;
  p.network = Graph(5);
  p.network.add_edge(0, 1, 1.0);   // source - cheapVM
  p.network.add_edge(1, 2, 1.0);   // cheapVM - switch
  p.network.add_edge(2, 3, 1.0);   // switch - dest
  p.network.add_edge(1, 4, 0.5);   // cheapVM - secondVM (short hop)
  p.network.add_edge(4, 2, 0.5);
  p.node_cost = {0, 1, 0, 0, 5};
  p.is_vm = {0, 1, 0, 0, 1};
  p.sources = {0};
  p.destinations = {3};
  p.chain_length = 2;
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.optimal);
  const auto enabled = r.forest.enabled_vms();
  ASSERT_EQ(enabled.size(), 2u);
  EXPECT_NE(enabled.at(1), enabled.at(4)) << "both VMs must host distinct VNFs";
  EXPECT_TRUE(core::is_feasible(p, r.forest)) << core::validate(p, r.forest).summary();
  EXPECT_GT(r.bnb_nodes, 1) << "the relaxation alone cannot be conflict-free here";
  // Optimum: 0-1(f1) 1-4(f2) 4-2 2-3 edges 1+0.5+0.5+1 = 3, setup 1+5 = 6.
  EXPECT_DOUBLE_EQ(r.cost, 9.0);
}

TEST(Exact, MultiSourceUsesBothTrees) {
  Problem p;
  p.network = Graph(8);
  p.network.add_edge(0, 1, 1.0);
  p.network.add_edge(1, 2, 1.0);
  p.network.add_edge(4, 5, 1.0);
  p.network.add_edge(5, 6, 1.0);
  p.network.add_edge(2, 6, 30.0);  // expensive bridge
  p.network.add_edge(2, 3, 1.0);   // spare
  p.network.add_edge(6, 7, 1.0);
  p.node_cost = {0, 1, 0, 0, 0, 1, 0, 0};
  p.is_vm = {0, 1, 0, 0, 0, 1, 0, 0};
  p.sources = {0, 4};
  p.destinations = {2, 6};
  p.chain_length = 1;
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.optimal);
  EXPECT_DOUBLE_EQ(r.cost, 2.0 + 1.0 + 2.0 + 1.0);  // two independent trees
  EXPECT_EQ(r.forest.used_sources().size(), 2u);
}

TEST(Exact, InfeasibleWhenNoVms) {
  Problem p;
  p.network = Graph(3);
  p.network.add_edge(0, 1, 1.0);
  p.network.add_edge(1, 2, 1.0);
  p.node_cost = {0, 0, 0};
  p.is_vm = {0, 0, 0};
  p.sources = {0};
  p.destinations = {2};
  p.chain_length = 1;
  const auto r = solve_exact(p);
  EXPECT_FALSE(r.optimal);
}

TEST(Exact, RespectsDestinationLimit) {
  Problem p;
  p.network = Graph(20);
  for (core::NodeId v = 0; v + 1 < 20; ++v) p.network.add_edge(v, v + 1, 1.0);
  p.node_cost.assign(20, 0.0);
  p.is_vm.assign(20, 0);
  p.is_vm[1] = 1;
  p.node_cost[1] = 1.0;
  p.sources = {0};
  p.chain_length = 1;
  for (core::NodeId v = 2; v < 18; ++v) p.destinations.push_back(v);
  ExactLimits limits;
  limits.max_destinations = 8;
  const auto r = solve_exact(p, limits);
  EXPECT_FALSE(r.optimal) << "must refuse oversized instances, not hang";
}

TEST(Exact, ZeroChainIsSteinerForest) {
  Problem p;
  p.network = Graph(4);
  p.network.add_edge(0, 1, 1.0);
  p.network.add_edge(1, 2, 1.0);
  p.network.add_edge(1, 3, 1.0);
  p.node_cost = {0, 0, 0, 0};
  p.is_vm = {0, 0, 0, 0};
  p.sources = {0};
  p.destinations = {2, 3};
  p.chain_length = 0;
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.optimal);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
}

class ExactLowerBound : public ::testing::TestWithParam<int> {};

TEST_P(ExactLowerBound, NeverAboveAnyHeuristic) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 613 + 29);
  const int n = rng.uniform_int(8, 16);
  Problem p;
  p.network = Graph(n);
  for (core::NodeId v = 1; v < n; ++v) {
    p.network.add_edge(v, static_cast<core::NodeId>(rng.index(static_cast<std::size_t>(v))),
                       rng.uniform(0.5, 3.0));
  }
  for (int e = 0; e < n; ++e) {
    const auto u = static_cast<core::NodeId>(rng.index(static_cast<std::size_t>(n)));
    const auto v = static_cast<core::NodeId>(rng.index(static_cast<std::size_t>(n)));
    if (u != v && p.network.find_edge(u, v) == graph::kInvalidEdge) {
      p.network.add_edge(u, v, rng.uniform(0.5, 3.0));
    }
  }
  p.node_cost.assign(static_cast<std::size_t>(n), 0.0);
  p.is_vm.assign(static_cast<std::size_t>(n), 0);
  const auto picks = rng.sample_without_replacement(static_cast<std::size_t>(n), 7u);
  for (int i = 0; i < 4; ++i) {
    const auto v = static_cast<core::NodeId>(picks[static_cast<std::size_t>(i)]);
    p.is_vm[static_cast<std::size_t>(v)] = 1;
    p.node_cost[static_cast<std::size_t>(v)] = rng.uniform(0.5, 4.0);
  }
  p.sources = {static_cast<core::NodeId>(picks[4])};
  p.destinations = {static_cast<core::NodeId>(picks[5]), static_cast<core::NodeId>(picks[6])};
  p.chain_length = 2;

  const auto r = solve_exact(p);
  ASSERT_TRUE(r.optimal);
  EXPECT_TRUE(core::is_feasible(p, r.forest)) << core::validate(p, r.forest).summary();
  EXPECT_NEAR(core::total_cost(p, r.forest), r.cost, 1e-9);

  const auto fa = core::sofda(p);
  if (!fa.empty()) {
    EXPECT_GE(core::total_cost(p, fa) + 1e-9, r.cost);
  }
  const auto fs = core::sofda_ss(p, p.sources.front());
  if (!fs.empty()) {
    EXPECT_GE(core::total_cost(p, fs) + 1e-9, r.cost);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactLowerBound, ::testing::Range(1, 25));

}  // namespace
}  // namespace sofe::exact
