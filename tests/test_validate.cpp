// Feasibility-validator tests: every IP constraint family must be detected
// when violated and accepted when satisfied.

#include <gtest/gtest.h>

#include "sofe/core/validate.hpp"

namespace sofe::core {
namespace {

Problem base_problem() {
  // 0 - 1(vm) - 2(vm) - 3, plus 1-3 shortcut.
  Problem p;
  p.network = Graph(4);
  p.network.add_edge(0, 1, 1.0);
  p.network.add_edge(1, 2, 1.0);
  p.network.add_edge(2, 3, 1.0);
  p.network.add_edge(1, 3, 1.0);
  p.node_cost = {0, 2, 3, 0};
  p.is_vm = {0, 1, 1, 0};
  p.sources = {0};
  p.destinations = {3};
  p.chain_length = 2;
  return p;
}

ServiceForest good_forest() {
  ServiceForest f;
  ChainWalk w;
  w.source = 0;
  w.destination = 3;
  w.nodes = {0, 1, 2, 3};
  w.vnf_pos = {1, 2};
  f.walks.push_back(w);
  return f;
}

TEST(Validate, AcceptsFeasible) {
  const Problem p = base_problem();
  const auto r = validate(p, good_forest());
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(Validate, DetectsUnservedDestination) {
  const Problem p = base_problem();
  ServiceForest f;
  const auto r = validate(p, f);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("not served"), std::string::npos);
}

TEST(Validate, DetectsDoubleService) {
  const Problem p = base_problem();
  ServiceForest f = good_forest();
  f.walks.push_back(f.walks.front());
  EXPECT_FALSE(validate(p, f).ok);
}

TEST(Validate, DetectsForeignDestination) {
  const Problem p = base_problem();
  ServiceForest f = good_forest();
  ChainWalk w = f.walks.front();
  w.destination = 2;
  w.nodes = {0, 1, 2};
  w.vnf_pos = {1, 2};
  f.walks.push_back(w);
  const auto r = validate(p, f);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("non-destination"), std::string::npos);
}

TEST(Validate, DetectsBadSource) {
  const Problem p = base_problem();
  ServiceForest f = good_forest();
  f.walks.front().source = 2;
  f.walks.front().nodes.front() = 2;
  EXPECT_FALSE(validate(p, f).ok);
}

TEST(Validate, DetectsWalkNotStartingAtSource) {
  const Problem p = base_problem();
  ServiceForest f = good_forest();
  f.walks.front().nodes.front() = 1;  // claims source 0 but starts at 1
  EXPECT_FALSE(validate(p, f).ok);
}

TEST(Validate, DetectsWalkNotEndingAtDestination) {
  const Problem p = base_problem();
  ServiceForest f = good_forest();
  f.walks.front().nodes.pop_back();
  EXPECT_FALSE(validate(p, f).ok);
}

TEST(Validate, DetectsNonAdjacentStep) {
  const Problem p = base_problem();
  ServiceForest f = good_forest();
  f.walks.front().nodes = {0, 2, 3};  // 0-2 is not a link
  f.walks.front().vnf_pos = {1, 1};
  EXPECT_FALSE(validate(p, f).ok);
}

TEST(Validate, DetectsRepeatedConsecutiveNode) {
  const Problem p = base_problem();
  ServiceForest f = good_forest();
  f.walks.front().nodes = {0, 1, 1, 2, 3};
  f.walks.front().vnf_pos = {1, 3};
  EXPECT_FALSE(validate(p, f).ok);
}

TEST(Validate, DetectsWrongVnfCount) {
  const Problem p = base_problem();
  ServiceForest f = good_forest();
  f.walks.front().vnf_pos = {1};
  const auto r = validate(p, f);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("expected 2 VNFs"), std::string::npos);
}

TEST(Validate, DetectsNonIncreasingPositions) {
  const Problem p = base_problem();
  ServiceForest f = good_forest();
  f.walks.front().vnf_pos = {2, 1};
  EXPECT_FALSE(validate(p, f).ok);
}

TEST(Validate, DetectsVnfOnSwitch) {
  const Problem p = base_problem();
  ServiceForest f = good_forest();
  f.walks.front().vnf_pos = {1, 3};  // position 3 is destination switch 3
  const auto r = validate(p, f);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("non-VM"), std::string::npos);
}

TEST(Validate, DetectsVnfConflictAcrossWalks) {
  Problem p = base_problem();
  p.destinations = {3, 0};
  p.sources = {0, 3};
  ServiceForest f = good_forest();
  ChainWalk w;  // reverse-direction walk assigning f1 to VM 2 (conflict: f2).
  w.source = 3;
  w.destination = 0;
  w.nodes = {3, 2, 1, 0};
  w.vnf_pos = {1, 2};
  f.walks.push_back(w);
  const auto r = validate(p, f);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("VNF conflict"), std::string::npos);
}

TEST(Validate, AcceptsSharedVmSameIndex) {
  Problem p = base_problem();
  p.destinations = {3, 2};
  ServiceForest f = good_forest();
  ChainWalk w;
  w.source = 0;
  w.destination = 2;
  w.nodes = {0, 1, 2};
  w.vnf_pos = {1, 2};
  f.walks.push_back(w);
  const auto r = validate(p, f);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(Validate, DetectsSameVmTwiceInOneChain) {
  Problem p = base_problem();
  ServiceForest f;
  ChainWalk w;
  w.source = 0;
  w.destination = 3;
  w.nodes = {0, 1, 2, 1, 3};
  w.vnf_pos = {1, 3};  // node 1 runs f1 AND f2
  f.walks.push_back(w);
  const auto r = validate(p, f);
  EXPECT_FALSE(r.ok);
}

TEST(Validate, MalformedProblemRejected) {
  Problem p = base_problem();
  p.node_cost[0] = 5.0;  // switch with nonzero cost
  const auto r = validate(p, good_forest());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("malformed"), std::string::npos);
}

}  // namespace
}  // namespace sofe::core
