// Dynamic-operation tests (Section VII-C): join/leave, VNF insert/delete,
// congestion reroute and VM migration — every operation must preserve
// feasibility and behave as the paper specifies.

#include <gtest/gtest.h>

#include "sofe/core/dynamic.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/topology/topology.hpp"

namespace sofe::core {
namespace {

DynamicForest make_live(std::uint64_t seed, int vms = 10, int srcs = 3, int dests = 4,
                        int chain = 2) {
  topology::ProblemConfig cfg;
  cfg.num_vms = vms;
  cfg.num_sources = srcs;
  cfg.num_destinations = dests;
  cfg.chain_length = chain;
  cfg.seed = seed;
  Problem p = topology::make_problem(topology::softlayer(), cfg);
  ServiceForest f = sofda(p);
  EXPECT_FALSE(f.empty());
  EXPECT_TRUE(is_feasible(p, f));
  return DynamicForest(std::move(p), std::move(f));
}

TEST(Dynamic, LeaveRemovesWalkAndLowersCost) {
  auto live = make_live(1);
  const Cost before = live.cost();
  const NodeId d = live.problem().destinations.front();
  ASSERT_TRUE(live.destination_leave(d));
  EXPECT_TRUE(is_feasible(live.problem(), live.forest()))
      << validate(live.problem(), live.forest()).summary();
  EXPECT_LE(live.cost(), before + 1e-9);
  EXPECT_FALSE(live.destination_leave(d)) << "double leave must fail";
}

TEST(Dynamic, LeaveAllThenForestEmpty) {
  auto live = make_live(2, 8, 2, 3, 2);
  const auto dests = live.problem().destinations;
  for (NodeId d : dests) EXPECT_TRUE(live.destination_leave(d));
  EXPECT_TRUE(live.forest().empty());
}

TEST(Dynamic, JoinServesNewcomer) {
  auto live = make_live(3);
  // Find an access node that is neither a source nor a destination.
  const Problem& p = live.problem();
  NodeId newcomer = graph::kInvalidNode;
  for (NodeId v = 0; v < 27; ++v) {
    const bool used =
        std::find(p.destinations.begin(), p.destinations.end(), v) != p.destinations.end() ||
        std::find(p.sources.begin(), p.sources.end(), v) != p.sources.end();
    if (!used) {
      newcomer = v;
      break;
    }
  }
  ASSERT_NE(newcomer, graph::kInvalidNode);
  const Cost before = live.cost();
  ASSERT_TRUE(live.destination_join(newcomer));
  EXPECT_TRUE(is_feasible(live.problem(), live.forest()))
      << validate(live.problem(), live.forest()).summary();
  EXPECT_GE(live.cost(), before - 1e-9) << "joining cannot reduce cost";
  EXPECT_EQ(live.forest().walks.size(), 5u);
  EXPECT_FALSE(live.destination_join(newcomer)) << "double join must fail";
}

TEST(Dynamic, JoinReusesExistingChains) {
  auto live = make_live(4);
  const auto enabled_before = live.forest().enabled_vms();
  NodeId newcomer = graph::kInvalidNode;
  const Problem& p = live.problem();
  for (NodeId v = 0; v < 27; ++v) {
    const bool used =
        std::find(p.destinations.begin(), p.destinations.end(), v) != p.destinations.end() ||
        std::find(p.sources.begin(), p.sources.end(), v) != p.sources.end();
    if (!used) {
      newcomer = v;
      break;
    }
  }
  ASSERT_TRUE(live.destination_join(newcomer));
  // A full-forest attachment (stage == |C|) adds no new VMs; allow the
  // k-stroll completion to add some, but never to change existing ones.
  for (const auto& [vm, idx] : enabled_before) {
    const auto now = live.forest().enabled_vms();
    ASSERT_TRUE(now.contains(vm));
    EXPECT_EQ(now.at(vm), idx);
  }
}

TEST(Dynamic, VnfDeleteShrinksChains) {
  auto live = make_live(5, 10, 3, 4, 3);
  const Cost before = live.cost();
  ASSERT_TRUE(live.vnf_delete(2));
  EXPECT_EQ(live.problem().chain_length, 2);
  EXPECT_TRUE(is_feasible(live.problem(), live.forest()))
      << validate(live.problem(), live.forest()).summary();
  EXPECT_LE(live.cost(), before + 1e-9) << "dropping a VNF cannot cost more";
  EXPECT_FALSE(live.vnf_delete(7)) << "out-of-range index must fail";
}

TEST(Dynamic, VnfDeleteFirstAndLast) {
  auto live = make_live(6, 10, 3, 3, 3);
  ASSERT_TRUE(live.vnf_delete(1));
  EXPECT_TRUE(is_feasible(live.problem(), live.forest()));
  ASSERT_TRUE(live.vnf_delete(live.problem().chain_length));
  EXPECT_TRUE(is_feasible(live.problem(), live.forest()));
  EXPECT_EQ(live.problem().chain_length, 1);
}

TEST(Dynamic, VnfInsertGrowsChains) {
  auto live = make_live(7, 12, 3, 4, 2);
  const Cost before = live.cost();
  ASSERT_TRUE(live.vnf_insert(2));
  EXPECT_EQ(live.problem().chain_length, 3);
  EXPECT_TRUE(is_feasible(live.problem(), live.forest()))
      << validate(live.problem(), live.forest()).summary();
  EXPECT_GE(live.cost(), before - 1e-9) << "adding a VNF cannot be free";
  EXPECT_FALSE(live.vnf_insert(9)) << "out-of-range position must fail";
}

TEST(Dynamic, VnfInsertAtHeadAndTail) {
  auto live = make_live(8, 12, 3, 3, 2);
  ASSERT_TRUE(live.vnf_insert(1));  // new first VNF
  EXPECT_TRUE(is_feasible(live.problem(), live.forest()))
      << validate(live.problem(), live.forest()).summary();
  ASSERT_TRUE(live.vnf_insert(live.problem().chain_length + 1));  // new last
  EXPECT_TRUE(is_feasible(live.problem(), live.forest()))
      << validate(live.problem(), live.forest()).summary();
  EXPECT_EQ(live.problem().chain_length, 4);
}

TEST(Dynamic, InsertThenDeleteRoundTrip) {
  auto live = make_live(9, 12, 3, 3, 2);
  const Cost before = live.cost();
  ASSERT_TRUE(live.vnf_insert(2));
  ASSERT_TRUE(live.vnf_delete(2));
  EXPECT_EQ(live.problem().chain_length, 2);
  EXPECT_TRUE(is_feasible(live.problem(), live.forest()));
  // Shortening on delete may even beat the original embedding slightly.
  EXPECT_LE(live.cost(), 1.25 * before + 1e-9);
}

TEST(Dynamic, RerouteAvoidsCongestedLink) {
  auto live = make_live(10);
  // Pick a link actually used by the forest.
  const auto uses = live.forest().stage_edges();
  ASSERT_FALSE(uses.empty());
  graph::EdgeId target = graph::kInvalidEdge;
  for (const auto& se : uses) {
    const auto e = live.problem().network.find_edge(se.u, se.v);
    if (live.problem().network.edge(e).cost > 0.0) {
      target = e;
      break;
    }
  }
  if (target == graph::kInvalidEdge) GTEST_SKIP() << "forest uses only free taps";
  // Snapshot the forest, reprice the link, and compare: the rerouted forest
  // must cost no more than the old forest at the new price (it avoids the
  // congested link wherever an alternative exists; on a cut edge both cost
  // the same).
  const ServiceForest before = live.forest();
  const int rerouted = live.reroute_link(target, 1000.0);
  EXPECT_TRUE(is_feasible(live.problem(), live.forest()))
      << validate(live.problem(), live.forest()).summary();
  EXPECT_GE(rerouted, 0);
  EXPECT_LE(live.cost(), total_cost(live.problem(), before) + 1e-9);
}

TEST(Dynamic, MigrateVmMovesVnf) {
  auto live = make_live(11);
  const auto enabled = live.forest().enabled_vms();
  ASSERT_FALSE(enabled.empty());
  const NodeId victim = enabled.begin()->first;
  const int idx = enabled.begin()->second;
  ASSERT_TRUE(live.migrate_vm(victim, 1e6));
  EXPECT_TRUE(is_feasible(live.problem(), live.forest()))
      << validate(live.problem(), live.forest()).summary();
  const auto now = live.forest().enabled_vms();
  EXPECT_FALSE(now.contains(victim)) << "overloaded VM must be vacated";
  // Some VM still runs that VNF index.
  bool found = false;
  for (const auto& [vm, j] : now) {
    (void)vm;
    if (j == idx) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Dynamic, MigrateUnusedVmIsNoOp) {
  auto live = make_live(12);
  const auto enabled = live.forest().enabled_vms();
  NodeId unused = graph::kInvalidNode;
  for (NodeId v : live.problem().vms()) {
    if (!enabled.contains(v)) {
      unused = v;
      break;
    }
  }
  ASSERT_NE(unused, graph::kInvalidNode);
  const Cost before = live.cost();
  EXPECT_TRUE(live.migrate_vm(unused, 123.0));
  EXPECT_NEAR(live.cost(), before, 1e-9);
}

class DynamicChurn : public ::testing::TestWithParam<int> {};

TEST_P(DynamicChurn, RandomOperationSequencePreservesFeasibility) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  auto live = make_live(seed * 131 + 7, 14, 3, 5, 2);
  util::Rng rng(seed);
  for (int step = 0; step < 12; ++step) {
    const int op = rng.uniform_int(0, 3);
    switch (op) {
      case 0: {  // leave (keep at least one destination)
        if (live.problem().destinations.size() > 1) {
          live.destination_leave(live.problem().destinations.front());
        }
        break;
      }
      case 1: {  // join any unserved access node
        for (NodeId v = 0; v < 27; ++v) {
          const auto& d = live.problem().destinations;
          const auto& s = live.problem().sources;
          if (std::find(d.begin(), d.end(), v) == d.end() &&
              std::find(s.begin(), s.end(), v) == s.end()) {
            live.destination_join(v);
            break;
          }
        }
        break;
      }
      case 2: {
        if (live.problem().chain_length > 1) live.vnf_delete(1);
        break;
      }
      default: {
        if (live.problem().chain_length < 4) live.vnf_insert(live.problem().chain_length + 1);
        break;
      }
    }
    ASSERT_TRUE(is_feasible(live.problem(), live.forest()))
        << "step " << step << " op " << op << ": "
        << validate(live.problem(), live.forest()).summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicChurn, ::testing::Range(1, 13));

}  // namespace
}  // namespace sofe::core
