// VNF-conflict resolution tests (Procedure 4): the three attachment cases,
// the no-new-resources invariant behind Theorem 3, and pool bookkeeping.

#include <gtest/gtest.h>

#include <set>

#include "sofe/core/conflict.hpp"

namespace sofe::core {
namespace {

/// A ring-with-chords network big enough for crossing chains.
Problem arena() {
  Problem p;
  p.network = Graph(10);
  for (NodeId v = 0; v < 10; ++v) p.network.add_edge(v, (v + 1) % 10, 1.0);
  p.network.add_edge(0, 5, 1.0);
  p.network.add_edge(2, 7, 1.0);
  p.node_cost = {0, 0, 3, 4, 0, 0, 0, 5, 6, 0};
  p.is_vm = {0, 0, 1, 1, 0, 0, 0, 1, 1, 0};
  p.sources = {0, 5};
  p.destinations = {4, 9};
  p.chain_length = 2;
  return p;
}

DeployedChain make_chain(NodeId source, std::vector<NodeId> nodes,
                         std::vector<std::size_t> slots) {
  DeployedChain c;
  c.source = source;
  c.nodes = std::move(nodes);
  c.vnf_pos = std::move(slots);
  c.last_vm = c.nodes.back();
  return c;
}

TEST(ChainPool, NoConflictCommitsVerbatim) {
  const Problem p = arena();
  ChainPool pool(p);
  EXPECT_TRUE(pool.add(0, make_chain(0, {0, 1, 2, 3}, {2, 3})));
  ASSERT_NE(pool.find(0), nullptr);
  EXPECT_EQ(pool.find(0)->nodes, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(pool.stats().total_resolved(), 0);
  const auto enabled = pool.enabled();
  EXPECT_EQ(enabled.at(2), 1);
  EXPECT_EQ(enabled.at(3), 2);
}

TEST(ChainPool, AgreementIsNotAConflict) {
  const Problem p = arena();
  ChainPool pool(p);
  EXPECT_TRUE(pool.add(0, make_chain(0, {0, 1, 2, 3}, {2, 3})));
  // Second chain uses the same VMs with the same indices.
  EXPECT_TRUE(pool.add(1, make_chain(5, {5, 4, 3, 2, 3}, {3, 4})));
  EXPECT_EQ(pool.stats().total_resolved(), 0);
}

TEST(ChainPool, Case1AttachesNewWalkToExisting) {
  const Problem p = arena();
  ChainPool pool(p);
  // W1: f1@2, f2@3.
  ASSERT_TRUE(pool.add(0, make_chain(0, {0, 1, 2, 3}, {2, 3})));
  // W: f1@3 (conflict at 3: j=1 <= i=2) — W must adopt W1's prefix.
  ASSERT_TRUE(pool.add(1, make_chain(5, {5, 4, 3, 2, 7}, {2, 4})));
  EXPECT_GE(pool.stats().case1, 1);
  const DeployedChain* w = pool.find(1);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->source, 0) << "the walk must now hang off W1's source";
  EXPECT_EQ(w->last_vm, 7);
  // No VM may carry two indices.
  const auto enabled = pool.enabled();
  std::set<NodeId> seen;
  for (const auto& [id, chain] : pool.committed()) {
    (void)id;
    for (std::size_t j = 0; j < chain.vnf_pos.size(); ++j) {
      const NodeId vm = chain.nodes[chain.vnf_pos[j]];
      EXPECT_EQ(enabled.at(vm), static_cast<int>(j) + 1);
    }
  }
}

TEST(ChainPool, NoNewVmsEnabledByResolution) {
  // The Theorem-3 invariant: resolution never enables a VM outside
  // (existing enabled) ∪ (new chain's planned slots).
  const Problem p = arena();
  ChainPool pool(p);
  ASSERT_TRUE(pool.add(0, make_chain(0, {0, 1, 2, 3}, {2, 3})));
  const auto before = pool.enabled();
  DeployedChain w = make_chain(5, {5, 4, 3, 2, 7}, {2, 4});
  std::set<NodeId> allowed;
  for (const auto& [vm, idx] : before) {
    (void)idx;
    allowed.insert(vm);
  }
  for (auto pos : w.vnf_pos) allowed.insert(w.nodes[pos]);
  ASSERT_TRUE(pool.add(1, std::move(w)));
  for (const auto& [vm, idx] : pool.enabled()) {
    (void)idx;
    EXPECT_TRUE(allowed.contains(vm)) << "VM " << vm << " enabled out of thin air";
  }
}

TEST(ChainPool, Case3RewritesCommittedChain) {
  const Problem p = arena();
  ChainPool pool(p);
  // W1: f1@7, f2@8  (committed first).
  ASSERT_TRUE(pool.add(0, make_chain(5, {5, 6, 7, 8}, {2, 3})));
  // W: f1@2, f2@7.  Conflict at 7: j=2 > i=1; no other shared VM, so case 3
  // rewrites W1 to adopt W's prefix through 7.
  ASSERT_TRUE(pool.add(1, make_chain(0, {0, 1, 2, 7}, {2, 3})));
  EXPECT_GE(pool.stats().case3, 1);
  const auto enabled = pool.enabled();
  EXPECT_EQ(enabled.at(2), 1);
  EXPECT_EQ(enabled.at(7), 2);
  // W1 still ends at its own last VM 8 and is conflict-free.
  const DeployedChain* w1 = pool.find(0);
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w1->last_vm, 8);
  for (const auto& [id, chain] : pool.committed()) {
    (void)id;
    for (std::size_t j = 0; j < chain.vnf_pos.size(); ++j) {
      EXPECT_EQ(enabled.at(chain.nodes[chain.vnf_pos[j]]), static_cast<int>(j) + 1);
    }
  }
}

TEST(ChainPool, WalksRemainStructurallySound) {
  const Problem p = arena();
  ChainPool pool(p);
  ASSERT_TRUE(pool.add(0, make_chain(0, {0, 1, 2, 3}, {2, 3})));
  ASSERT_TRUE(pool.add(1, make_chain(5, {5, 4, 3, 2, 7}, {2, 4})));
  for (const auto& [id, chain] : pool.committed()) {
    (void)id;
    ASSERT_EQ(chain.vnf_pos.size(), 2u);
    EXPECT_LT(chain.vnf_pos[0], chain.vnf_pos[1]);
    EXPECT_EQ(chain.nodes.back(), chain.last_vm);
    for (std::size_t i = 0; i + 1 < chain.nodes.size(); ++i) {
      EXPECT_NE(p.network.find_edge(chain.nodes[i], chain.nodes[i + 1]), graph::kInvalidEdge);
    }
    for (auto pos : chain.vnf_pos) {
      EXPECT_TRUE(p.is_vm[static_cast<std::size_t>(chain.nodes[pos])]);
    }
  }
}

TEST(SpliceChains, BasicPrefixTail) {
  DeployedChain prefix = make_chain(0, {0, 1, 2, 3}, {2, 3});
  // Keep prefix through position 2 (VM 2, f1): k = 1.
  const auto out = splice_chains(prefix, 2, 1, {7, 8}, {0, 1}, 2);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->nodes, (std::vector<NodeId>{0, 1, 2, 7, 8}));
  ASSERT_EQ(out->vnf_pos.size(), 2u);
  EXPECT_EQ(out->vnf_pos[0], 2u);
  EXPECT_EQ(out->vnf_pos[1], 4u);  // f2 on the LAST eligible tail slot
  EXPECT_EQ(out->last_vm, 8);
}

TEST(SpliceChains, SkipsTailSlotsAlreadyInPrefix) {
  DeployedChain prefix = make_chain(0, {0, 2, 3}, {1, 2});  // f1@2, f2@3
  // Tail slots at nodes {3, 8}: node 3 already runs f2 in the prefix; with
  // k = 2 and |C| = 3 we need one slot — it must land on 8, not 3.
  const auto out = splice_chains(prefix, 2, 2, {3, 8}, {0, 1}, 3);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->vnf_pos.back(), 4u);
  EXPECT_EQ(out->nodes[out->vnf_pos.back()], 8);
}

TEST(SpliceChains, FailsWhenTooFewEligibleSlots) {
  DeployedChain prefix = make_chain(0, {0, 2, 3}, {1, 2});
  // Need one more slot (|C|=3, k=2) but the only tail slot's VM (3) is
  // already a prefix VM — no eligible slot remains.
  const auto out = splice_chains(prefix, 2, 2, {3}, {0}, 3);
  EXPECT_FALSE(out.has_value());
}

TEST(SpliceChains, EmptyTailKeepsPrefixEnd) {
  DeployedChain prefix = make_chain(0, {0, 1, 2, 3}, {2, 3});
  const auto out = splice_chains(prefix, 3, 2, {}, {}, 2);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->nodes, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(out->last_vm, 3);
}

}  // namespace
}  // namespace sofe::core
