// Multi-controller tests (Section VI): partition sanity, oracle exactness
// (composed inter-domain distances == global Dijkstra), message accounting,
// and distributed-vs-centralized SOFDA equivalence.

#include <gtest/gtest.h>

#include <algorithm>

#include "sofe/core/sofda.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/dist/dist_sofda.hpp"
#include "sofe/dist/oracle.hpp"
#include "sofe/graph/dijkstra.hpp"
#include "sofe/topology/topology.hpp"

namespace sofe::dist {
namespace {

TEST(Partition, CoversAllNodesConnectedDomains) {
  const auto topo = topology::softlayer();
  for (int k : {1, 2, 3, 5}) {
    const auto part = partition_bfs(topo.g, k);
    EXPECT_EQ(part.num_domains, k);
    std::size_t covered = 0;
    for (int d = 0; d < k; ++d) covered += part.members[static_cast<std::size_t>(d)].size();
    EXPECT_EQ(covered, static_cast<std::size_t>(topo.g.node_count()));
    for (NodeId v = 0; v < topo.g.node_count(); ++v) {
      EXPECT_GE(part.domain_of[static_cast<std::size_t>(v)], 0);
      EXPECT_LT(part.domain_of[static_cast<std::size_t>(v)], k);
    }
  }
}

TEST(Partition, BordersTouchOtherDomains) {
  const auto topo = topology::softlayer();
  const auto part = partition_bfs(topo.g, 3);
  for (int d = 0; d < 3; ++d) {
    for (NodeId b : part.borders[static_cast<std::size_t>(d)]) {
      bool crosses = false;
      for (const auto& arc : topo.g.neighbors(b)) {
        if (part.domain_of[static_cast<std::size_t>(arc.to)] != d) crosses = true;
      }
      EXPECT_TRUE(crosses) << "border node " << b << " has no cross-domain link";
    }
  }
}

class OracleExactness : public ::testing::TestWithParam<int> {};

TEST_P(OracleExactness, ComposedDistancesEqualGlobalDijkstra) {
  const int k = GetParam();
  const auto topo = topology::softlayer();
  MessageBus bus;
  const auto part = partition_bfs(topo.g, k);
  DistanceOracle oracle(topo.g, part, bus);
  // Spot-check a grid of pairs against global Dijkstra.
  for (NodeId x = 0; x < topo.g.node_count(); x += 3) {
    const auto sp = graph::dijkstra(topo.g, x);
    for (NodeId y = 0; y < topo.g.node_count(); y += 5) {
      EXPECT_NEAR(oracle.distance(x, y), sp.distance(y), 1e-9)
          << "pair (" << x << ", " << y << ") with " << k << " domains";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, OracleExactness, ::testing::Values(1, 2, 3, 4, 6));

TEST(Oracle, StitchedPathsAreRealAndTight) {
  const auto topo = topology::cogent();
  MessageBus bus;
  const auto part = partition_bfs(topo.g, 4);
  DistanceOracle oracle(topo.g, part, bus);
  for (NodeId x = 0; x < topo.g.node_count(); x += 37) {
    const auto sp = graph::dijkstra(topo.g, x);
    for (NodeId y = 1; y < topo.g.node_count(); y += 41) {
      const auto path = oracle.path(x, y);
      ASSERT_EQ(path.front(), x);
      ASSERT_EQ(path.back(), y);
      graph::Cost c = 0.0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto e = topo.g.find_edge(path[i], path[i + 1]);
        ASSERT_NE(e, graph::kInvalidEdge) << "stitched path uses a phantom link";
        c += topo.g.edge(e).cost;
      }
      EXPECT_NEAR(c, sp.distance(y), 1e-9) << "stitched path is not shortest";
    }
  }
}

TEST(Oracle, MatrixExchangeCounted) {
  const auto topo = topology::softlayer();
  MessageBus bus;
  const auto part = partition_bfs(topo.g, 3);
  DistanceOracle oracle(topo.g, part, bus);
  // 3 controllers broadcast to 2 peers each.
  EXPECT_EQ(bus.messages(), 6u);
  EXPECT_EQ(bus.rounds(), 1);
  (void)oracle.distance(0, 26);
  EXPECT_GE(bus.messages(), 6u);
}

TEST(DistributedSofda, MatchesCentralizedCertificate) {
  topology::ProblemConfig cfg;
  cfg.num_vms = 8;
  cfg.num_sources = 3;
  cfg.num_destinations = 4;
  cfg.chain_length = 2;
  cfg.seed = 77;
  const auto topo = topology::softlayer();
  const auto p = topology::make_problem(topo, cfg);

  core::SofdaStats central_stats;
  const auto central = core::sofda(p, {}, &central_stats);
  ASSERT_FALSE(central.empty());

  for (int controllers : {2, 3, 4}) {
    const auto dist_r = distributed_sofda(p, controllers);
    ASSERT_FALSE(dist_r.forest.empty()) << controllers << " controllers";
    EXPECT_TRUE(core::is_feasible(p, dist_r.forest))
        << core::validate(p, dist_r.forest).summary();
    // Cost-exact simulation: identical chain prices and auxiliary graph give
    // the identical Steiner certificate.
    EXPECT_NEAR(dist_r.stats.steiner_tree_cost, central_stats.steiner_tree_cost, 1e-6);
    EXPECT_EQ(dist_r.stats.deployed_chains, central_stats.deployed_chains);
    // Walk geometry may differ in shortest-path tie-breaks only; the total
    // cost must stay in a tight band around the centralized result.
    EXPECT_NEAR(core::total_cost(p, dist_r.forest), core::total_cost(p, central),
                0.05 * core::total_cost(p, central) + 1e-6);
    EXPECT_GT(dist_r.messages, 0u);
    EXPECT_GE(dist_r.rounds, 4);
  }
}

TEST(DistributedSofda, SingleControllerDegeneratesToCentralized) {
  topology::ProblemConfig cfg;
  cfg.num_vms = 6;
  cfg.num_sources = 2;
  cfg.num_destinations = 3;
  cfg.chain_length = 2;
  cfg.seed = 13;
  const auto p = topology::make_problem(topology::softlayer(), cfg);
  const auto central = core::sofda(p);
  const auto dist_r = distributed_sofda(p, 1);
  ASSERT_FALSE(dist_r.forest.empty());
  EXPECT_NEAR(core::total_cost(p, dist_r.forest), core::total_cost(p, central), 1e-6);
}

TEST(Partition, OneDomainPerNode) {
  // k == |V|: every domain is a single node, and every node is a border of
  // its own domain (all of its links cross).
  const auto topo = topology::softlayer();
  const int n = static_cast<int>(topo.g.node_count());
  const auto part = partition_bfs(topo.g, n);
  EXPECT_EQ(part.num_domains, n);
  for (int d = 0; d < n; ++d) {
    ASSERT_EQ(part.members[static_cast<std::size_t>(d)].size(), 1u);
    EXPECT_EQ(part.borders[static_cast<std::size_t>(d)],
              part.members[static_cast<std::size_t>(d)]);
  }
}

TEST(Partition, ClampsControllerCountToNodeCount) {
  const auto topo = topology::ring(4);
  const auto part = partition_bfs(topo.g, 10);
  EXPECT_EQ(part.num_domains, 4);
  std::size_t covered = 0;
  for (const auto& m : part.members) covered += m.size();
  EXPECT_EQ(covered, 4u);
}

TEST(Partition, DisconnectedGraphStaysCovering) {
  // Two components (0-1-2 and 3-4).  The partition cannot keep every domain
  // connected, but it must stay a total, in-bounds covering in every build
  // type, with each component seeded before any gets a second seed.
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  for (int k : {1, 2, 3, 5}) {
    const auto part = partition_bfs(g, k);
    EXPECT_EQ(part.num_domains, k);
    std::size_t covered = 0;
    for (const auto& m : part.members) covered += m.size();
    EXPECT_EQ(covered, 5u);
    for (NodeId v = 0; v < 5; ++v) {
      EXPECT_GE(part.domain_of[static_cast<std::size_t>(v)], 0);
      EXPECT_LT(part.domain_of[static_cast<std::size_t>(v)], k);
    }
  }
}

TEST(Oracle, ExactWithSingleNodeDomains) {
  // ring(5) with 3 controllers yields a mixed partition with single-node
  // domains; all-pairs composed distances must still equal global Dijkstra.
  const auto topo = topology::ring(5);
  MessageBus bus;
  const auto part = partition_bfs(topo.g, 3);
  bool has_singleton = false;
  for (const auto& m : part.members) has_singleton |= (m.size() == 1);
  ASSERT_TRUE(has_singleton) << "partition no longer produces a single-node domain";
  DistanceOracle oracle(topo.g, part, bus);
  for (NodeId x = 0; x < topo.g.node_count(); ++x) {
    const auto sp = graph::dijkstra(topo.g, x);
    for (NodeId y = 0; y < topo.g.node_count(); ++y) {
      EXPECT_NEAR(oracle.distance(x, y), sp.distance(y), 1e-9);
    }
  }
}

TEST(Oracle, ExactWhenEveryDomainIsOneNode) {
  // The degenerate overlay: the overlay *is* the graph (every node a border,
  // every link a cross link); composition must reduce to plain Dijkstra.
  const auto topo = topology::grid(3, 3);
  MessageBus bus;
  const auto part = partition_bfs(topo.g, static_cast<int>(topo.g.node_count()));
  DistanceOracle oracle(topo.g, part, bus);
  for (NodeId x = 0; x < topo.g.node_count(); ++x) {
    const auto sp = graph::dijkstra(topo.g, x);
    for (NodeId y = 0; y < topo.g.node_count(); ++y) {
      EXPECT_NEAR(oracle.distance(x, y), sp.distance(y), 1e-9);
    }
  }
}

TEST(DistributedSofda, AllSourcesInOneDomain) {
  // Every source administered by a single controller: the other controllers
  // contribute no candidates, yet the merged pipeline must still reproduce
  // the centralized certificate.
  constexpr int kControllers = 3;
  topology::ProblemConfig cfg;
  cfg.num_vms = 8;
  cfg.num_sources = 2;
  cfg.num_destinations = 4;
  cfg.chain_length = 2;
  cfg.seed = 41;
  auto p = topology::make_problem(topology::softlayer(), cfg);

  // Re-home all sources into domain 0 of the partition the driver will use.
  const auto part = partition_bfs(p.network, kControllers);
  p.sources.clear();
  for (NodeId v : part.members[0]) {
    if (p.is_vm[static_cast<std::size_t>(v)]) continue;
    if (std::find(p.destinations.begin(), p.destinations.end(), v) != p.destinations.end()) {
      continue;
    }
    p.sources.push_back(v);
    if (p.sources.size() == 3) break;
  }
  ASSERT_GE(p.sources.size(), 2u) << "domain 0 too small to host the sources";
  for (NodeId s : p.sources) {
    ASSERT_EQ(part.domain(s), 0);
  }

  core::SofdaStats central_stats;
  const auto central = core::sofda(p, {}, &central_stats);
  ASSERT_FALSE(central.empty());
  const auto dist_r = distributed_sofda(p, kControllers);
  ASSERT_FALSE(dist_r.forest.empty());
  EXPECT_TRUE(core::is_feasible(p, dist_r.forest))
      << core::validate(p, dist_r.forest).summary();
  EXPECT_NEAR(dist_r.stats.steiner_tree_cost, central_stats.steiner_tree_cost, 1e-6);
  EXPECT_EQ(dist_r.stats.deployed_chains, central_stats.deployed_chains);
  EXPECT_NEAR(core::total_cost(p, dist_r.forest), core::total_cost(p, central),
              0.05 * core::total_cost(p, central) + 1e-6);
  EXPECT_GT(dist_r.messages, 0u);
}

TEST(DistributedSofda, MoreControllersMoreMessages) {
  topology::ProblemConfig cfg;
  cfg.num_vms = 6;
  cfg.num_sources = 2;
  cfg.num_destinations = 3;
  cfg.chain_length = 2;
  cfg.seed = 29;
  const auto p = topology::make_problem(topology::softlayer(), cfg);
  const auto r2 = distributed_sofda(p, 2);
  const auto r5 = distributed_sofda(p, 5);
  EXPECT_GT(r5.messages, r2.messages);
}

}  // namespace
}  // namespace sofe::dist
