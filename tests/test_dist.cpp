// Multi-controller tests (Section VI): partition sanity, oracle exactness
// (composed inter-domain distances == global Dijkstra), message accounting,
// and distributed-vs-centralized SOFDA equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "sofe/api/solver.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/dist/dist_sofda.hpp"
#include "sofe/dist/oracle.hpp"
#include "sofe/dist/sharded_closure.hpp"
#include "sofe/graph/dijkstra.hpp"
#include "sofe/graph/metric_closure.hpp"
#include "sofe/topology/topology.hpp"

namespace sofe::dist {
namespace {

/// Bitwise row comparison over the query contract of a sharded closure:
/// every hub's distance AND path to every hub/destination must equal the
/// global closure's exactly (EXPECT_EQ on doubles is deliberate).
void expect_rows_bitwise_equal(const graph::MetricClosure& sharded,
                               const graph::MetricClosure& global,
                               const std::vector<NodeId>& hubs,
                               const std::vector<NodeId>& targets, const char* label) {
  std::vector<NodeId> queries = hubs;
  queries.insert(queries.end(), targets.begin(), targets.end());
  for (NodeId h : hubs) {
    ASSERT_TRUE(sharded.is_hub(h)) << label;
    for (NodeId x : queries) {
      EXPECT_EQ(sharded.distance(h, x), global.distance(h, x))
          << label << ": distance (" << h << " -> " << x << ")";
      if (global.distance(h, x) < graph::kInfiniteCost) {
        EXPECT_EQ(sharded.path(h, x), global.path(h, x))
            << label << ": path (" << h << " -> " << x << ")";
      }
    }
  }
}

core::Problem sharded_problem(unsigned seed = 77) {
  topology::ProblemConfig cfg;
  cfg.num_vms = 8;
  cfg.num_sources = 3;
  cfg.num_destinations = 4;
  cfg.chain_length = 2;
  cfg.seed = seed;
  return topology::make_problem(topology::softlayer(), cfg);
}

std::vector<NodeId> hub_set(const core::Problem& p) {
  std::vector<NodeId> hubs = p.vms();
  hubs.insert(hubs.end(), p.sources.begin(), p.sources.end());
  return hubs;
}

TEST(Partition, CoversAllNodesConnectedDomains) {
  const auto topo = topology::softlayer();
  for (int k : {1, 2, 3, 5}) {
    const auto part = partition_bfs(topo.g, k);
    EXPECT_EQ(part.num_domains, k);
    std::size_t covered = 0;
    for (int d = 0; d < k; ++d) covered += part.members[static_cast<std::size_t>(d)].size();
    EXPECT_EQ(covered, static_cast<std::size_t>(topo.g.node_count()));
    for (NodeId v = 0; v < topo.g.node_count(); ++v) {
      EXPECT_GE(part.domain_of[static_cast<std::size_t>(v)], 0);
      EXPECT_LT(part.domain_of[static_cast<std::size_t>(v)], k);
    }
  }
}

TEST(Partition, BordersTouchOtherDomains) {
  const auto topo = topology::softlayer();
  const auto part = partition_bfs(topo.g, 3);
  for (int d = 0; d < 3; ++d) {
    for (NodeId b : part.borders[static_cast<std::size_t>(d)]) {
      bool crosses = false;
      for (const auto& arc : topo.g.neighbors(b)) {
        if (part.domain_of[static_cast<std::size_t>(arc.to)] != d) crosses = true;
      }
      EXPECT_TRUE(crosses) << "border node " << b << " has no cross-domain link";
    }
  }
}

class OracleExactness : public ::testing::TestWithParam<int> {};

TEST_P(OracleExactness, ComposedDistancesEqualGlobalDijkstra) {
  const int k = GetParam();
  const auto topo = topology::softlayer();
  MessageBus bus;
  const auto part = partition_bfs(topo.g, k);
  DistanceOracle oracle(topo.g, part, bus);
  // Spot-check a grid of pairs against global Dijkstra.
  for (NodeId x = 0; x < topo.g.node_count(); x += 3) {
    const auto sp = graph::dijkstra(topo.g, x);
    for (NodeId y = 0; y < topo.g.node_count(); y += 5) {
      EXPECT_NEAR(oracle.distance(x, y), sp.distance(y), 1e-9)
          << "pair (" << x << ", " << y << ") with " << k << " domains";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, OracleExactness, ::testing::Values(1, 2, 3, 4, 6));

TEST(Oracle, StitchedPathsAreRealAndTight) {
  const auto topo = topology::cogent();
  MessageBus bus;
  const auto part = partition_bfs(topo.g, 4);
  DistanceOracle oracle(topo.g, part, bus);
  for (NodeId x = 0; x < topo.g.node_count(); x += 37) {
    const auto sp = graph::dijkstra(topo.g, x);
    for (NodeId y = 1; y < topo.g.node_count(); y += 41) {
      const auto path = oracle.path(x, y);
      ASSERT_EQ(path.front(), x);
      ASSERT_EQ(path.back(), y);
      graph::Cost c = 0.0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto e = topo.g.find_edge(path[i], path[i + 1]);
        ASSERT_NE(e, graph::kInvalidEdge) << "stitched path uses a phantom link";
        c += topo.g.edge(e).cost;
      }
      EXPECT_NEAR(c, sp.distance(y), 1e-9) << "stitched path is not shortest";
    }
  }
}

TEST(Oracle, MatrixExchangeCounted) {
  const auto topo = topology::softlayer();
  MessageBus bus;
  const auto part = partition_bfs(topo.g, 3);
  DistanceOracle oracle(topo.g, part, bus);
  // 3 controllers broadcast to 2 peers each.
  EXPECT_EQ(bus.messages(), 6u);
  EXPECT_EQ(bus.rounds(), 1);
  (void)oracle.distance(0, 26);
  EXPECT_GE(bus.messages(), 6u);
}

TEST(DistributedSofda, MatchesCentralizedCertificate) {
  topology::ProblemConfig cfg;
  cfg.num_vms = 8;
  cfg.num_sources = 3;
  cfg.num_destinations = 4;
  cfg.chain_length = 2;
  cfg.seed = 77;
  const auto topo = topology::softlayer();
  const auto p = topology::make_problem(topo, cfg);

  core::SofdaStats central_stats;
  const auto central = core::sofda(p, {}, &central_stats);
  ASSERT_FALSE(central.empty());

  for (int controllers : {2, 3, 4}) {
    const auto dist_r = distributed_sofda(p, controllers);
    ASSERT_FALSE(dist_r.forest.empty()) << controllers << " controllers";
    EXPECT_TRUE(core::is_feasible(p, dist_r.forest))
        << core::validate(p, dist_r.forest).summary();
    // Cost-exact simulation: identical chain prices and auxiliary graph give
    // the identical Steiner certificate.
    EXPECT_NEAR(dist_r.stats.steiner_tree_cost, central_stats.steiner_tree_cost, 1e-6);
    EXPECT_EQ(dist_r.stats.deployed_chains, central_stats.deployed_chains);
    // Walk geometry may differ in shortest-path tie-breaks only; the total
    // cost must stay in a tight band around the centralized result.
    EXPECT_NEAR(core::total_cost(p, dist_r.forest), core::total_cost(p, central),
                0.05 * core::total_cost(p, central) + 1e-6);
    EXPECT_GT(dist_r.messages, 0u);
    EXPECT_GE(dist_r.rounds, 4);
  }
}

TEST(DistributedSofda, SingleControllerDegeneratesToCentralized) {
  topology::ProblemConfig cfg;
  cfg.num_vms = 6;
  cfg.num_sources = 2;
  cfg.num_destinations = 3;
  cfg.chain_length = 2;
  cfg.seed = 13;
  const auto p = topology::make_problem(topology::softlayer(), cfg);
  const auto central = core::sofda(p);
  const auto dist_r = distributed_sofda(p, 1);
  ASSERT_FALSE(dist_r.forest.empty());
  EXPECT_NEAR(core::total_cost(p, dist_r.forest), core::total_cost(p, central), 1e-6);
}

TEST(Partition, OneDomainPerNode) {
  // k == |V|: every domain is a single node, and every node is a border of
  // its own domain (all of its links cross).
  const auto topo = topology::softlayer();
  const int n = static_cast<int>(topo.g.node_count());
  const auto part = partition_bfs(topo.g, n);
  EXPECT_EQ(part.num_domains, n);
  for (int d = 0; d < n; ++d) {
    ASSERT_EQ(part.members[static_cast<std::size_t>(d)].size(), 1u);
    EXPECT_EQ(part.borders[static_cast<std::size_t>(d)],
              part.members[static_cast<std::size_t>(d)]);
  }
}

TEST(Partition, ClampsControllerCountToNodeCount) {
  const auto topo = topology::ring(4);
  const auto part = partition_bfs(topo.g, 10);
  EXPECT_EQ(part.num_domains, 4);
  std::size_t covered = 0;
  for (const auto& m : part.members) covered += m.size();
  EXPECT_EQ(covered, 4u);
}

TEST(Partition, DisconnectedGraphStaysCovering) {
  // Two components (0-1-2 and 3-4).  The partition cannot keep every domain
  // connected, but it must stay a total, in-bounds covering in every build
  // type, with each component seeded before any gets a second seed.
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  for (int k : {1, 2, 3, 5}) {
    const auto part = partition_bfs(g, k);
    EXPECT_EQ(part.num_domains, k);
    std::size_t covered = 0;
    for (const auto& m : part.members) covered += m.size();
    EXPECT_EQ(covered, 5u);
    for (NodeId v = 0; v < 5; ++v) {
      EXPECT_GE(part.domain_of[static_cast<std::size_t>(v)], 0);
      EXPECT_LT(part.domain_of[static_cast<std::size_t>(v)], k);
    }
  }
}

TEST(Oracle, ExactWithSingleNodeDomains) {
  // ring(5) with 3 controllers yields a mixed partition with single-node
  // domains; all-pairs composed distances must still equal global Dijkstra.
  const auto topo = topology::ring(5);
  MessageBus bus;
  const auto part = partition_bfs(topo.g, 3);
  bool has_singleton = false;
  for (const auto& m : part.members) has_singleton |= (m.size() == 1);
  ASSERT_TRUE(has_singleton) << "partition no longer produces a single-node domain";
  DistanceOracle oracle(topo.g, part, bus);
  for (NodeId x = 0; x < topo.g.node_count(); ++x) {
    const auto sp = graph::dijkstra(topo.g, x);
    for (NodeId y = 0; y < topo.g.node_count(); ++y) {
      EXPECT_NEAR(oracle.distance(x, y), sp.distance(y), 1e-9);
    }
  }
}

TEST(Oracle, ExactWhenEveryDomainIsOneNode) {
  // The degenerate overlay: the overlay *is* the graph (every node a border,
  // every link a cross link); composition must reduce to plain Dijkstra.
  const auto topo = topology::grid(3, 3);
  MessageBus bus;
  const auto part = partition_bfs(topo.g, static_cast<int>(topo.g.node_count()));
  DistanceOracle oracle(topo.g, part, bus);
  for (NodeId x = 0; x < topo.g.node_count(); ++x) {
    const auto sp = graph::dijkstra(topo.g, x);
    for (NodeId y = 0; y < topo.g.node_count(); ++y) {
      EXPECT_NEAR(oracle.distance(x, y), sp.distance(y), 1e-9);
    }
  }
}

TEST(DistributedSofda, AllSourcesInOneDomain) {
  // Every source administered by a single controller: the other controllers
  // contribute no candidates, yet the merged pipeline must still reproduce
  // the centralized certificate.
  constexpr int kControllers = 3;
  topology::ProblemConfig cfg;
  cfg.num_vms = 8;
  cfg.num_sources = 2;
  cfg.num_destinations = 4;
  cfg.chain_length = 2;
  cfg.seed = 41;
  auto p = topology::make_problem(topology::softlayer(), cfg);

  // Re-home all sources into domain 0 of the partition the driver will use.
  const auto part = partition_bfs(p.network, kControllers);
  p.sources.clear();
  for (NodeId v : part.members[0]) {
    if (p.is_vm[static_cast<std::size_t>(v)]) continue;
    if (std::find(p.destinations.begin(), p.destinations.end(), v) != p.destinations.end()) {
      continue;
    }
    p.sources.push_back(v);
    if (p.sources.size() == 3) break;
  }
  ASSERT_GE(p.sources.size(), 2u) << "domain 0 too small to host the sources";
  for (NodeId s : p.sources) {
    ASSERT_EQ(part.domain(s), 0);
  }

  core::SofdaStats central_stats;
  const auto central = core::sofda(p, {}, &central_stats);
  ASSERT_FALSE(central.empty());
  const auto dist_r = distributed_sofda(p, kControllers);
  ASSERT_FALSE(dist_r.forest.empty());
  EXPECT_TRUE(core::is_feasible(p, dist_r.forest))
      << core::validate(p, dist_r.forest).summary();
  EXPECT_NEAR(dist_r.stats.steiner_tree_cost, central_stats.steiner_tree_cost, 1e-6);
  EXPECT_EQ(dist_r.stats.deployed_chains, central_stats.deployed_chains);
  EXPECT_NEAR(core::total_cost(p, dist_r.forest), core::total_cost(p, central),
              0.05 * core::total_cost(p, central) + 1e-6);
  EXPECT_GT(dist_r.messages, 0u);
}

TEST(DistributedSofda, MoreControllersMoreMessages) {
  topology::ProblemConfig cfg;
  cfg.num_vms = 6;
  cfg.num_sources = 2;
  cfg.num_destinations = 3;
  cfg.chain_length = 2;
  cfg.seed = 29;
  const auto p = topology::make_problem(topology::softlayer(), cfg);
  const auto r2 = distributed_sofda(p, 2);
  const auto r5 = distributed_sofda(p, 5);
  EXPECT_GT(r5.messages, r2.messages);
}

class ShardedClosureBitIdentity : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShardedClosureBitIdentity, MatchesGlobalClosure) {
  // The tentpole contract: sharded per-domain builds + border-row exchange +
  // masked stitch reproduce the global MetricClosure bit for bit on every
  // hub × (hub ∪ destination) query — including the zero-cost VM-tap hubs
  // make_problem attaches — at every k and thread count.
  const auto [k, threads] = GetParam();
  const auto p = sharded_problem();
  const auto hubs = hub_set(p);
  const graph::MetricClosure global(p.network, hubs, 1);

  const int kk = k > 0 ? k : static_cast<int>(p.network.node_count());
  MessageBus bus;
  ShardedClosure sc;
  sc.build(p.network, partition_bfs(p.network, kk), hubs, p.destinations, threads, bus,
           /*bounded=*/true);
  expect_rows_bitwise_equal(sc.closure(), global, hubs, p.destinations, "bounded");

  // The repairable (unbounded) flavor must agree too.
  MessageBus bus2;
  ShardedClosure sc2;
  sc2.build(p.network, partition_bfs(p.network, kk), hubs, p.destinations, threads, bus2,
            /*bounded=*/false);
  expect_rows_bitwise_equal(sc2.closure(), global, hubs, p.destinations, "unbounded");
}

INSTANTIATE_TEST_SUITE_P(KTimesThreads, ShardedClosureBitIdentity,
                         ::testing::Combine(::testing::Values(1, 2, 4, 0),  // 0 = |V|
                                            ::testing::Values(1, 2, 8)));

TEST(ShardedClosure, BitIdenticalOnUnitCostTies) {
  // grid() is unit-cost: equal-length shortest paths abound, so this pins
  // the tie-break argument (local chains = global segments in exact
  // arithmetic) rather than relying on generic costs.
  const auto topo = topology::grid(5, 5);
  const std::vector<NodeId> hubs = {0, 7, 12, 24, 18};
  const std::vector<NodeId> dests = {4, 20, 13};
  const graph::MetricClosure global(topo.g, hubs, 1);
  for (int k : {2, 3, 4, 25}) {
    MessageBus bus;
    ShardedClosure sc;
    sc.build(topo.g, partition_bfs(topo.g, k), hubs, dests, 2, bus, true);
    expect_rows_bitwise_equal(sc.closure(), global, hubs, dests, "grid");
  }
}

TEST(ShardedClosure, DisconnectedGraphStaysExact) {
  // Two components; hubs and destinations on both sides.  Unreachable pairs
  // must be +inf on both views, reachable ones bitwise equal.
  Graph g(7);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 0.5);
  g.add_edge(2, 0, 2.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 2.5);
  g.add_edge(5, 6, 0.75);
  const std::vector<NodeId> hubs = {0, 2, 3, 6};
  const std::vector<NodeId> dests = {1, 5};
  const graph::MetricClosure global(g, hubs, 1);
  for (int k : {1, 2, 3}) {
    MessageBus bus;
    ShardedClosure sc;
    sc.build(g, partition_bfs(g, k), hubs, dests, 2, bus, true);
    expect_rows_bitwise_equal(sc.closure(), global, hubs, dests, "disconnected");
  }
}

TEST(ShardedClosure, ExchangeLedgerChargesRowsAndBytes) {
  const auto p = sharded_problem();
  const auto hubs = hub_set(p);
  MessageBus bus;
  ShardedClosure sc;
  sc.build(p.network, partition_bfs(p.network, 4), hubs, p.destinations, 1, bus, true);
  const auto& st = sc.stats();
  EXPECT_EQ(st.domains, 4);
  EXPECT_GT(st.rows, 0u);
  EXPECT_GT(st.exchanged_rows, 0u);
  EXPECT_LT(st.exchanged_rows, st.rows + 1);  // coordinator rows never ship
  // One message per shipped row, entries counted as payload items, bytes
  // charged per entry — the MessageBus accounting-fix satellite.
  EXPECT_EQ(bus.messages(), st.exchanged_rows);
  EXPECT_EQ(bus.payload_items(), st.exchanged_entries);
  EXPECT_EQ(bus.payload_bytes(), st.exchanged_entries * sizeof(graph::Cost));
  EXPECT_EQ(st.exchanged_bytes, bus.payload_bytes());
  EXPECT_EQ(bus.rounds(), 1);
  // The skeleton is a strict subgraph on this instance: the whole point of
  // advertising rows instead of the global edge list.
  EXPECT_LT(st.skeleton_edges, static_cast<std::size_t>(p.network.edge_count()));
}

class ShardedClosureRepair : public ::testing::TestWithParam<int> {};

TEST_P(ShardedClosureRepair, DeltaRepairMatchesFreshGlobal) {
  // set_edge_cost on an intra-domain edge, a cross link, and a
  // border-incident edge; after each batch the repaired sharded closure
  // must match a fresh global closure at the new costs, bit for bit.
  const int threads = GetParam();
  auto p = sharded_problem(91);
  const auto hubs = hub_set(p);
  const int k = 4;
  const auto part = partition_bfs(p.network, k);

  MessageBus bus;
  ShardedClosure sc;
  sc.build(p.network, part, hubs, p.destinations, threads, bus, /*bounded=*/false);

  // Pick one edge of each flavor.
  EdgeId intra = graph::kInvalidEdge, cross = graph::kInvalidEdge,
         border_touch = graph::kInvalidEdge;
  const auto& edges = p.network.edges();
  std::vector<char> is_border(static_cast<std::size_t>(p.network.node_count()), 0);
  for (const auto& bl : part.borders) {
    for (NodeId b : bl) is_border[static_cast<std::size_t>(b)] = 1;
  }
  for (EdgeId e = 0; e < p.network.edge_count(); ++e) {
    const auto& ed = edges[static_cast<std::size_t>(e)];
    if (ed.cost == 0.0) continue;  // keep VM taps intact
    const bool crossing = part.domain(ed.u) != part.domain(ed.v);
    const bool touches_border =
        is_border[static_cast<std::size_t>(ed.u)] || is_border[static_cast<std::size_t>(ed.v)];
    if (crossing && cross == graph::kInvalidEdge) cross = e;
    if (!crossing && touches_border && border_touch == graph::kInvalidEdge) border_touch = e;
    if (!crossing && !touches_border && intra == graph::kInvalidEdge) intra = e;
  }
  ASSERT_NE(intra, graph::kInvalidEdge);
  ASSERT_NE(cross, graph::kInvalidEdge);
  ASSERT_NE(border_touch, graph::kInvalidEdge);

  int batch = 0;
  for (const auto& [e, factor] : {std::pair<EdgeId, double>{intra, 0.25},
                                  {cross, 3.0},
                                  {border_touch, 0.1}}) {
    ++batch;
    const Cost old_cost = p.network.edge(e).cost;
    const Cost new_cost = old_cost * factor;
    p.network.set_edge_cost(e, new_cost);
    const graph::EdgeCostDelta delta{e, old_cost, new_cost};
    const std::size_t rows_before = sc.stats().exchanged_rows;
    sc.refresh(p.network, std::span(&delta, 1), threads, bus);
    const graph::MetricClosure fresh(p.network, hubs, 1);
    expect_rows_bitwise_equal(sc.closure(), fresh, hubs, p.destinations,
                              batch == 1 ? "intra" : batch == 2 ? "cross" : "border");
    // Only dirtied rows re-ship: never the whole advertisement set again.
    EXPECT_LE(sc.stats().exchanged_rows - rows_before, sc.stats().rows);
  }
  EXPECT_GT(sc.stats().repaired_rows, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, ShardedClosureRepair, ::testing::Values(1, 2, 8));

TEST(ShardedClosure, ExtendAddsHubRowsIncrementally) {
  // The session's churned-in-source path: build without one source, extend
  // with it, and land bitwise on the full global closure.
  const auto p = sharded_problem(55);
  auto hubs = hub_set(p);
  const NodeId late = hubs.back();
  std::vector<NodeId> initial(hubs.begin(), hubs.end() - 1);

  MessageBus bus;
  ShardedClosure sc;
  sc.build(p.network, partition_bfs(p.network, 3), initial, p.destinations, 2, bus,
           /*bounded=*/false);
  ASSERT_FALSE(sc.closure().is_hub(late));

  sc.extend(p.network, hubs, 2, bus);
  const graph::MetricClosure global(p.network, hubs, 1);
  expect_rows_bitwise_equal(sc.closure(), global, hubs, p.destinations, "extend");

  // Retain back to the initial set and re-extend: the warm local rows make
  // the second extend exchange-free or cheaper, never wrong.
  const std::size_t entries_first = sc.stats().exchanged_entries;
  sc.retain(initial);
  EXPECT_FALSE(sc.closure().is_hub(late));
  sc.extend(p.network, hubs, 2, bus);
  expect_rows_bitwise_equal(sc.closure(), global, hubs, p.destinations, "re-extend");
  EXPECT_EQ(sc.stats().exchanged_entries, entries_first)
      << "re-extending a warm hub should not re-ship rows";
}

TEST(ShardedClosure, RetentionWindowServesReturningHubsWithoutReExchange) {
  // The session-level steady state (DESIGN.md §13): a source hub leaves
  // the request set, the LRU retention window keeps its rows — local roots
  // AND the stitched row — warm through the delta stream, and when the hub
  // returns it is served as a row hit with ZERO additional exchanged
  // entries (extending the warm-local-roots property of the retain/extend
  // test above to the whole acquire path).
  auto p = sharded_problem(55);
  auto hubs = hub_set(p);
  const NodeId late = hubs.back();
  const std::vector<NodeId> without(hubs.begin(), hubs.end() - 1);

  api::ClosureSession session;
  api::ClosureRequest req;
  req.threads = 2;
  req.retention = 8;
  req.settle_targets = std::span<const NodeId>(p.destinations);
  MessageBus bus;

  api::SolveReport cold;
  session.acquire_sharded(p.network, hubs, 3, req, bus, cold);
  EXPECT_FALSE(cold.closure_cache_hit);

  // The hub leaves; a price move forces the repair path.  The window
  // retains the hub's rows instead of evicting them, and the refresh
  // revalidates everything kept against the delta batch.
  p.network.set_edge_cost(0, p.network.edge(0).cost * 2.0);
  api::SolveReport drop;
  const auto& repaired = session.acquire_sharded(p.network, without, 3, req, bus, drop);
  ASSERT_TRUE(drop.closure_repaired);
  EXPECT_EQ(drop.closure_rows_retained, 1);
  EXPECT_EQ(drop.closure_rows_evicted, 0);
  ASSERT_TRUE(repaired.closure().is_hub(late)) << "retained hub lost its stitched row";
  const std::size_t entries_after_drop = repaired.stats().exchanged_entries;

  // The hub returns with prices unchanged: every requested row is already
  // stored and repaired, so the acquire hits, counts the comeback as a
  // row hit, ships nothing — and the answers are bitwise the global
  // closure's.
  api::SolveReport back;
  const auto& warm = session.acquire_sharded(p.network, hubs, 3, req, bus, back);
  EXPECT_TRUE(back.closure_cache_hit);
  EXPECT_EQ(back.closure_row_hits, 1);
  EXPECT_EQ(warm.stats().exchanged_entries, entries_after_drop)
      << "a returning retained hub must not re-ship rows";

  const graph::MetricClosure global(p.network, hubs, 1);
  expect_rows_bitwise_equal(warm.closure(), global, hubs, p.destinations, "retention");
}

TEST(DistributedSofda, CertificateBitwiseIdenticalAcrossKAndThreads) {
  // The acceptance bar: "dist/k=<int>" solves stay *bitwise* identical to
  // the centralized run — certificate, walks and total cost, not just a
  // tolerance band — at every controller and thread count.
  const auto p = sharded_problem(77);
  core::SofdaStats central_stats;
  const auto central = core::sofda(p, {}, &central_stats);
  ASSERT_FALSE(central.empty());
  const Cost central_cost = core::total_cost(p, central);

  for (int controllers : {2, 3, 4, 7}) {
    for (int threads : {1, 4}) {
      core::AlgoOptions opt;
      opt.closure_threads = threads;
      const auto dist_r = distributed_sofda(p, controllers, opt);
      ASSERT_EQ(dist_r.forest.walks.size(), central.walks.size());
      for (std::size_t w = 0; w < central.walks.size(); ++w) {
        EXPECT_EQ(dist_r.forest.walks[w].source, central.walks[w].source);
        EXPECT_EQ(dist_r.forest.walks[w].destination, central.walks[w].destination);
        EXPECT_EQ(dist_r.forest.walks[w].nodes, central.walks[w].nodes);
        EXPECT_EQ(dist_r.forest.walks[w].vnf_pos, central.walks[w].vnf_pos);
      }
      EXPECT_EQ(dist_r.stats.steiner_tree_cost, central_stats.steiner_tree_cost);
      EXPECT_EQ(dist_r.stats.deployed_chains, central_stats.deployed_chains);
      EXPECT_EQ(core::total_cost(p, dist_r.forest), central_cost);
      EXPECT_EQ(dist_r.payload_bytes, dist_r.payload_bytes);  // field exists and is charged
      EXPECT_GT(dist_r.payload_bytes, 0u);
    }
  }
}

}  // namespace
}  // namespace sofe::dist
