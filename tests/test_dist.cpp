// Multi-controller tests (Section VI): partition sanity, oracle exactness
// (composed inter-domain distances == global Dijkstra), message accounting,
// and distributed-vs-centralized SOFDA equivalence.

#include <gtest/gtest.h>

#include "sofe/core/sofda.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/dist/dist_sofda.hpp"
#include "sofe/dist/oracle.hpp"
#include "sofe/graph/dijkstra.hpp"
#include "sofe/topology/topology.hpp"

namespace sofe::dist {
namespace {

TEST(Partition, CoversAllNodesConnectedDomains) {
  const auto topo = topology::softlayer();
  for (int k : {1, 2, 3, 5}) {
    const auto part = partition_bfs(topo.g, k);
    EXPECT_EQ(part.num_domains, k);
    std::size_t covered = 0;
    for (int d = 0; d < k; ++d) covered += part.members[static_cast<std::size_t>(d)].size();
    EXPECT_EQ(covered, static_cast<std::size_t>(topo.g.node_count()));
    for (NodeId v = 0; v < topo.g.node_count(); ++v) {
      EXPECT_GE(part.domain_of[static_cast<std::size_t>(v)], 0);
      EXPECT_LT(part.domain_of[static_cast<std::size_t>(v)], k);
    }
  }
}

TEST(Partition, BordersTouchOtherDomains) {
  const auto topo = topology::softlayer();
  const auto part = partition_bfs(topo.g, 3);
  for (int d = 0; d < 3; ++d) {
    for (NodeId b : part.borders[static_cast<std::size_t>(d)]) {
      bool crosses = false;
      for (const auto& arc : topo.g.neighbors(b)) {
        if (part.domain_of[static_cast<std::size_t>(arc.to)] != d) crosses = true;
      }
      EXPECT_TRUE(crosses) << "border node " << b << " has no cross-domain link";
    }
  }
}

class OracleExactness : public ::testing::TestWithParam<int> {};

TEST_P(OracleExactness, ComposedDistancesEqualGlobalDijkstra) {
  const int k = GetParam();
  const auto topo = topology::softlayer();
  MessageBus bus;
  const auto part = partition_bfs(topo.g, k);
  DistanceOracle oracle(topo.g, part, bus);
  // Spot-check a grid of pairs against global Dijkstra.
  for (NodeId x = 0; x < topo.g.node_count(); x += 3) {
    const auto sp = graph::dijkstra(topo.g, x);
    for (NodeId y = 0; y < topo.g.node_count(); y += 5) {
      EXPECT_NEAR(oracle.distance(x, y), sp.distance(y), 1e-9)
          << "pair (" << x << ", " << y << ") with " << k << " domains";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, OracleExactness, ::testing::Values(1, 2, 3, 4, 6));

TEST(Oracle, StitchedPathsAreRealAndTight) {
  const auto topo = topology::cogent();
  MessageBus bus;
  const auto part = partition_bfs(topo.g, 4);
  DistanceOracle oracle(topo.g, part, bus);
  for (NodeId x = 0; x < topo.g.node_count(); x += 37) {
    const auto sp = graph::dijkstra(topo.g, x);
    for (NodeId y = 1; y < topo.g.node_count(); y += 41) {
      const auto path = oracle.path(x, y);
      ASSERT_EQ(path.front(), x);
      ASSERT_EQ(path.back(), y);
      graph::Cost c = 0.0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto e = topo.g.find_edge(path[i], path[i + 1]);
        ASSERT_NE(e, graph::kInvalidEdge) << "stitched path uses a phantom link";
        c += topo.g.edge(e).cost;
      }
      EXPECT_NEAR(c, sp.distance(y), 1e-9) << "stitched path is not shortest";
    }
  }
}

TEST(Oracle, MatrixExchangeCounted) {
  const auto topo = topology::softlayer();
  MessageBus bus;
  const auto part = partition_bfs(topo.g, 3);
  DistanceOracle oracle(topo.g, part, bus);
  // 3 controllers broadcast to 2 peers each.
  EXPECT_EQ(bus.messages(), 6u);
  EXPECT_EQ(bus.rounds(), 1);
  (void)oracle.distance(0, 26);
  EXPECT_GE(bus.messages(), 6u);
}

TEST(DistributedSofda, MatchesCentralizedCertificate) {
  topology::ProblemConfig cfg;
  cfg.num_vms = 8;
  cfg.num_sources = 3;
  cfg.num_destinations = 4;
  cfg.chain_length = 2;
  cfg.seed = 77;
  const auto topo = topology::softlayer();
  const auto p = topology::make_problem(topo, cfg);

  core::SofdaStats central_stats;
  const auto central = core::sofda(p, {}, &central_stats);
  ASSERT_FALSE(central.empty());

  for (int controllers : {2, 3, 4}) {
    const auto dist_r = distributed_sofda(p, controllers);
    ASSERT_FALSE(dist_r.forest.empty()) << controllers << " controllers";
    EXPECT_TRUE(core::is_feasible(p, dist_r.forest))
        << core::validate(p, dist_r.forest).summary();
    // Cost-exact simulation: identical chain prices and auxiliary graph give
    // the identical Steiner certificate.
    EXPECT_NEAR(dist_r.stats.steiner_tree_cost, central_stats.steiner_tree_cost, 1e-6);
    EXPECT_EQ(dist_r.stats.deployed_chains, central_stats.deployed_chains);
    // Walk geometry may differ in shortest-path tie-breaks only; the total
    // cost must stay in a tight band around the centralized result.
    EXPECT_NEAR(core::total_cost(p, dist_r.forest), core::total_cost(p, central),
                0.05 * core::total_cost(p, central) + 1e-6);
    EXPECT_GT(dist_r.messages, 0u);
    EXPECT_GE(dist_r.rounds, 4);
  }
}

TEST(DistributedSofda, SingleControllerDegeneratesToCentralized) {
  topology::ProblemConfig cfg;
  cfg.num_vms = 6;
  cfg.num_sources = 2;
  cfg.num_destinations = 3;
  cfg.chain_length = 2;
  cfg.seed = 13;
  const auto p = topology::make_problem(topology::softlayer(), cfg);
  const auto central = core::sofda(p);
  const auto dist_r = distributed_sofda(p, 1);
  ASSERT_FALSE(dist_r.forest.empty());
  EXPECT_NEAR(core::total_cost(p, dist_r.forest), core::total_cost(p, central), 1e-6);
}

TEST(DistributedSofda, MoreControllersMoreMessages) {
  topology::ProblemConfig cfg;
  cfg.num_vms = 6;
  cfg.num_sources = 2;
  cfg.num_destinations = 3;
  cfg.chain_length = 2;
  cfg.seed = 29;
  const auto p = topology::make_problem(topology::softlayer(), cfg);
  const auto r2 = distributed_sofda(p, 2);
  const auto r5 = distributed_sofda(p, 5);
  EXPECT_GT(r5.messages, r2.messages);
}

}  // namespace
}  // namespace sofe::dist
