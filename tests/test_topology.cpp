// Topology tests: exact paper node/link/DC counts, connectivity, degree
// shape of the Inet generator, determinism, and problem sampling.

#include <gtest/gtest.h>

#include <algorithm>

#include "sofe/graph/oracles.hpp"
#include "sofe/topology/topology.hpp"

namespace sofe::topology {
namespace {

TEST(Topology, SoftlayerCounts) {
  const auto t = softlayer();
  EXPECT_EQ(t.g.node_count(), 27);
  EXPECT_EQ(t.g.edge_count(), 49);
  EXPECT_EQ(t.dc_nodes.size(), 17u);
  EXPECT_TRUE(graph::is_connected(t.g));
}

TEST(Topology, CogentCounts) {
  const auto t = cogent();
  EXPECT_EQ(t.g.node_count(), 190);
  EXPECT_EQ(t.g.edge_count(), 260);
  EXPECT_EQ(t.dc_nodes.size(), 40u);
  EXPECT_TRUE(graph::is_connected(t.g));
}

TEST(Topology, InetCountsSmall) {
  const auto t = inet(500, 1000, 200, 5);
  EXPECT_EQ(t.g.node_count(), 500);
  EXPECT_EQ(t.g.edge_count(), 1000);
  EXPECT_EQ(t.dc_nodes.size(), 200u);
  EXPECT_TRUE(graph::is_connected(t.g));
}

TEST(Topology, InetHeavyTailedDegrees) {
  const auto t = inet(1000, 2000, 100, 9);
  std::size_t max_degree = 0;
  for (graph::NodeId v = 0; v < t.g.node_count(); ++v) {
    max_degree = std::max(max_degree, t.g.degree(v));
  }
  // Mean degree is 4; preferential attachment should produce hubs far above.
  EXPECT_GE(max_degree, 20u) << "degree distribution does not look heavy-tailed";
}

TEST(Topology, InetDeterministicPerSeed) {
  const auto a = inet(300, 600, 50, 17);
  const auto b = inet(300, 600, 50, 17);
  ASSERT_EQ(a.g.edge_count(), b.g.edge_count());
  for (graph::EdgeId e = 0; e < a.g.edge_count(); ++e) {
    EXPECT_EQ(a.g.edge(e).u, b.g.edge(e).u);
    EXPECT_EQ(a.g.edge(e).v, b.g.edge(e).v);
  }
  const auto c = inet(300, 600, 50, 18);
  bool differs = false;
  for (graph::EdgeId e = 0; e < c.g.edge_count() && !differs; ++e) {
    differs = a.g.edge(e).u != c.g.edge(e).u || a.g.edge(e).v != c.g.edge(e).v;
  }
  EXPECT_TRUE(differs) << "different seeds should give different graphs";
}

TEST(Topology, Testbed14Counts) {
  const auto t = testbed14();
  EXPECT_EQ(t.g.node_count(), 14);
  EXPECT_EQ(t.g.edge_count(), 20);
  EXPECT_TRUE(graph::is_connected(t.g));
}

TEST(Topology, GeneratorsConnected) {
  EXPECT_TRUE(graph::is_connected(ring(8).g));
  EXPECT_TRUE(graph::is_connected(grid(4, 5).g));
  EXPECT_TRUE(graph::is_connected(random_geometric(60, 0.25, 3).g));
}

TEST(MakeProblem, StructureAndCosts) {
  ProblemConfig cfg;
  cfg.num_vms = 10;
  cfg.num_sources = 4;
  cfg.num_destinations = 5;
  cfg.chain_length = 3;
  cfg.seed = 21;
  const auto t = softlayer();
  const auto p = make_problem(t, cfg);
  EXPECT_TRUE(p.well_formed());
  EXPECT_EQ(p.network.node_count(), 27 + 10);
  EXPECT_EQ(p.vms().size(), 10u);
  EXPECT_EQ(p.sources.size(), 4u);
  EXPECT_EQ(p.destinations.size(), 5u);
  // Sources and destinations are distinct access nodes.
  for (auto s : p.sources) {
    EXPECT_LT(s, 27);
    EXPECT_EQ(std::count(p.destinations.begin(), p.destinations.end(), s), 0);
  }
  // VM costs positive and scaled; switch costs zero.
  for (graph::NodeId v = 0; v < p.network.node_count(); ++v) {
    if (p.is_vm[static_cast<std::size_t>(v)]) {
      EXPECT_GT(p.node_cost[static_cast<std::size_t>(v)], 0.0);
    } else {
      EXPECT_EQ(p.node_cost[static_cast<std::size_t>(v)], 0.0);
    }
  }
  // Each VM hangs off a DC with a zero-cost tap.
  for (auto vm : p.vms()) {
    ASSERT_EQ(p.network.degree(vm), 1u);
    const auto& arc = p.network.neighbors(vm)[0];
    EXPECT_DOUBLE_EQ(p.network.edge(arc.edge).cost, 0.0);
    EXPECT_NE(std::find(t.dc_nodes.begin(), t.dc_nodes.end(), arc.to), t.dc_nodes.end());
  }
}

TEST(MakeProblem, SetupScaleScalesVmCosts) {
  ProblemConfig cfg;
  cfg.seed = 5;
  cfg.setup_scale = 1.0;
  const auto t = softlayer();
  const auto p1 = make_problem(t, cfg);
  cfg.setup_scale = 5.0;
  const auto p5 = make_problem(t, cfg);
  for (auto vm : p1.vms()) {
    EXPECT_NEAR(p5.node_cost[static_cast<std::size_t>(vm)],
                5.0 * p1.node_cost[static_cast<std::size_t>(vm)], 1e-9);
  }
}

TEST(MakeProblem, DeterministicPerSeed) {
  ProblemConfig cfg;
  cfg.seed = 33;
  const auto t = cogent();
  const auto a = make_problem(t, cfg);
  const auto b = make_problem(t, cfg);
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_EQ(a.destinations, b.destinations);
  for (graph::EdgeId e = 0; e < a.network.edge_count(); ++e) {
    EXPECT_DOUBLE_EQ(a.network.edge(e).cost, b.network.edge(e).cost);
  }
}

}  // namespace
}  // namespace sofe::topology
