// Steiner substrate tests: validity on hand instances, 2-approximation
// envelope against the exact Dreyfus-Wagner oracle on random graphs, and
// algorithm cross-checks.

#include <gtest/gtest.h>

#include "sofe/graph/oracles.hpp"
#include "sofe/steiner/steiner.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::steiner {
namespace {

Graph random_connected(util::Rng& rng, int n, double extra_edge_prob) {
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>(rng.index(static_cast<std::size_t>(v))),
               rng.uniform(0.5, 10.0));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(extra_edge_prob)) g.add_edge(u, v, rng.uniform(0.5, 10.0));
    }
  }
  return g;
}

/// The classic KMB worst-ish case: a hub with cheap spokes vs a ring of
/// terminals.  Optimal = star through the hub.
Graph star_trap(int k, Cost spoke, Cost rim) {
  Graph g(k + 1);  // node k = hub
  for (NodeId v = 0; v < k; ++v) {
    g.add_edge(v, k, spoke);
    g.add_edge(v, (v + 1) % k, rim);
  }
  return g;
}

TEST(Steiner, SingleTerminalIsEmpty) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  for (auto algo : {Algorithm::kKmb, Algorithm::kMehlhorn, Algorithm::kTakahashiMatsuyama,
                    Algorithm::kDreyfusWagner}) {
    EXPECT_TRUE(solve(g, {1}, algo).edges.empty());
  }
}

TEST(Steiner, TwoTerminalsIsShortestPath) {
  // 0-1-2 (1+1) vs direct 0-2 (3): tree must cost 2.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 3.0);
  for (auto algo : {Algorithm::kKmb, Algorithm::kMehlhorn, Algorithm::kTakahashiMatsuyama,
                    Algorithm::kDreyfusWagner}) {
    const auto tree = solve(g, {0, 2}, algo);
    EXPECT_DOUBLE_EQ(tree.cost(g), 2.0) << "algorithm " << static_cast<int>(algo);
  }
}

TEST(Steiner, ExactFindsHubStar) {
  // 4 terminals on a rim (rim edges cost 2), hub spokes cost 1:
  // exact Steiner = 4 spokes (cost 4); pure terminal-MST = 3 rim edges (6).
  Graph g = star_trap(4, 1.0, 2.0);
  const auto exact = dreyfus_wagner(g, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(exact.cost(g), 4.0);
  EXPECT_TRUE(is_valid_steiner_tree(g, exact, {0, 1, 2, 3}));
}

TEST(Steiner, ApproxWithinTwoOnHubStar) {
  Graph g = star_trap(6, 1.0, 1.8);
  const std::vector<NodeId> T{0, 1, 2, 3, 4, 5};
  const Cost opt = dreyfus_wagner(g, T).cost(g);
  for (auto algo : {Algorithm::kKmb, Algorithm::kMehlhorn, Algorithm::kTakahashiMatsuyama}) {
    const auto tree = solve(g, T, algo);
    EXPECT_TRUE(is_valid_steiner_tree(g, tree, T));
    EXPECT_LE(tree.cost(g), 2.0 * opt + 1e-9);
  }
}

TEST(Steiner, DuplicateTerminalsTolerated) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const auto tree = mehlhorn(g, {0, 2, 0, 2, 2});
  EXPECT_DOUBLE_EQ(tree.cost(g), 2.0);
}

struct RandomCase {
  int seed;
  int nodes;
  int terminals;
};

class SteinerRandom : public ::testing::TestWithParam<RandomCase> {};

TEST_P(SteinerRandom, AllApproxValidAndWithinRatio) {
  const auto [seed, n, t] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 1000 + 7);
  Graph g = random_connected(rng, n, 0.12);
  std::vector<NodeId> T;
  const auto chosen = rng.sample_without_replacement(static_cast<std::size_t>(n),
                                                     static_cast<std::size_t>(t));
  for (auto v : chosen) T.push_back(static_cast<NodeId>(v));

  const auto exact = dreyfus_wagner(g, T);
  ASSERT_TRUE(is_valid_steiner_tree(g, exact, T));
  const Cost opt = exact.cost(g);

  for (auto algo : {Algorithm::kKmb, Algorithm::kMehlhorn, Algorithm::kTakahashiMatsuyama}) {
    const auto tree = solve(g, T, algo);
    EXPECT_TRUE(is_valid_steiner_tree(g, tree, T)) << "algo " << static_cast<int>(algo);
    EXPECT_GE(tree.cost(g), opt - 1e-9) << "approx beat the exact optimum?!";
    EXPECT_LE(tree.cost(g), 2.0 * opt + 1e-9) << "2-approximation bound violated";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SteinerRandom,
    ::testing::Values(RandomCase{1, 10, 3}, RandomCase{2, 12, 4}, RandomCase{3, 15, 5},
                      RandomCase{4, 18, 6}, RandomCase{5, 20, 4}, RandomCase{6, 22, 7},
                      RandomCase{7, 25, 5}, RandomCase{8, 14, 8}, RandomCase{9, 30, 6},
                      RandomCase{10, 16, 3}, RandomCase{11, 28, 8}, RandomCase{12, 24, 9}));

TEST(Steiner, MehlhornEqualsKmbCostOnTrees) {
  // On a tree graph the Steiner tree is unique: all algorithms must agree.
  Graph g(7);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(1, 3, 4.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(0, 5, 3.0);
  g.add_edge(5, 6, 2.0);
  const std::vector<NodeId> T{2, 4, 6};
  const Cost expect = dreyfus_wagner(g, T).cost(g);
  EXPECT_DOUBLE_EQ(kmb(g, T).cost(g), expect);
  EXPECT_DOUBLE_EQ(mehlhorn(g, T).cost(g), expect);
  EXPECT_DOUBLE_EQ(takahashi_matsuyama(g, T).cost(g), expect);
}

TEST(Steiner, ZeroCostEdgesHandled) {
  Graph g(4);
  g.add_edge(0, 1, 0.0);
  g.add_edge(1, 2, 0.0);
  g.add_edge(2, 3, 5.0);
  g.add_edge(0, 3, 9.0);
  const auto tree = mehlhorn(g, {0, 3});
  EXPECT_DOUBLE_EQ(tree.cost(g), 5.0);
}

}  // namespace
}  // namespace sofe::steiner
