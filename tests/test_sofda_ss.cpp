// SOFDA-SS (Algorithm 1) tests: feasibility, optimality on hand instances,
// the chain/tree trade-off, and the (2+ρST) envelope vs the exact solver.

#include <gtest/gtest.h>

#include "sofe/core/sofda_ss.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/exact/solver.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::core {
namespace {

Problem line_problem() {
  Problem p;
  p.network = Graph(6);
  for (NodeId v = 0; v + 1 < 6; ++v) p.network.add_edge(v, v + 1, 1.0);
  p.node_cost = {0, 1, 2, 3, 4, 0};
  p.is_vm = {0, 1, 1, 1, 1, 0};
  p.sources = {0};
  p.destinations = {5};
  p.chain_length = 2;
  return p;
}

Problem random_problem(std::uint64_t seed, int n, int m, int dests, int chain) {
  util::Rng rng(seed);
  Problem p;
  p.network = Graph(n);
  for (NodeId v = 1; v < n; ++v) {
    p.network.add_edge(v, static_cast<NodeId>(rng.index(static_cast<std::size_t>(v))),
                       rng.uniform(0.5, 4.0));
  }
  for (int e = 0; e < n; ++e) {
    const NodeId u = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    const NodeId v = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    if (u != v && p.network.find_edge(u, v) == graph::kInvalidEdge) {
      p.network.add_edge(u, v, rng.uniform(0.5, 4.0));
    }
  }
  p.node_cost.assign(static_cast<std::size_t>(n), 0.0);
  p.is_vm.assign(static_cast<std::size_t>(n), 0);
  const auto picks = rng.sample_without_replacement(static_cast<std::size_t>(n - 1),
                                                    static_cast<std::size_t>(m + dests));
  for (int i = 0; i < m; ++i) {
    const NodeId v = static_cast<NodeId>(picks[static_cast<std::size_t>(i)] + 1);
    p.is_vm[static_cast<std::size_t>(v)] = 1;
    p.node_cost[static_cast<std::size_t>(v)] = rng.uniform(0.5, 5.0);
  }
  for (int i = m; i < m + dests; ++i) {
    p.destinations.push_back(static_cast<NodeId>(picks[static_cast<std::size_t>(i)] + 1));
  }
  p.sources = {0};
  p.chain_length = chain;
  return p;
}

TEST(SofdaSs, LineInstanceExactStructure) {
  const Problem p = line_problem();
  const auto f = sofda_ss(p);
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(is_feasible(p, f)) << validate(p, f).summary();
  // Optimal: f1@1, f2@2, walk straight to 5: setup 3 + connection 5 = 8.
  EXPECT_DOUBLE_EQ(total_cost(p, f), 8.0);
}

TEST(SofdaSs, EmptyDestinationsGivesEmptyForest) {
  Problem p = line_problem();
  p.destinations.clear();
  EXPECT_TRUE(sofda_ss(p).empty());
}

TEST(SofdaSs, LastVmTradeoffPrefersTreeProximity) {
  // Expensive VM near the destinations beats a cheap VM far from them when
  // the tree saving dominates — the crux of Algorithm 1's per-u scan.
  Problem p;
  p.network = Graph(7);
  p.network.add_edge(0, 1, 1.0);   // s - cheapVM
  p.network.add_edge(1, 2, 10.0);  // long haul
  p.network.add_edge(2, 3, 1.0);   // nearVM - d1
  p.network.add_edge(2, 4, 1.0);   //        - d2
  p.network.add_edge(2, 5, 1.0);   //        - d3
  p.network.add_edge(2, 6, 1.0);   // nearVM hangs off node 2
  p.node_cost = {0, 1, 0, 0, 0, 0, 2};
  p.is_vm = {0, 1, 0, 0, 0, 0, 1};
  p.sources = {0};
  p.destinations = {3, 4, 5};
  p.chain_length = 2;
  const auto f = sofda_ss(p);
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(is_feasible(p, f));
  const auto enabled = f.enabled_vms();
  EXPECT_TRUE(enabled.contains(6)) << "the last VM should sit next to the destinations";
  EXPECT_EQ(enabled.at(6), 2);
}

TEST(SofdaSs, DestinationOnChainHandled) {
  Problem p = line_problem();
  p.destinations = {3};  // destination is also a VM on the likely chain
  const auto f = sofda_ss(p);
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(is_feasible(p, f)) << validate(p, f).summary();
}

TEST(SofdaSs, MultipleDestinationsShareChain) {
  Problem p = line_problem();
  p.destinations = {4, 5};
  const auto f = sofda_ss(p);
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(is_feasible(p, f));
  // Both walks must share the enabled VMs (setup paid once).
  EXPECT_EQ(f.enabled_vms().size(), 2u);
}

class SofdaSsEnvelope : public ::testing::TestWithParam<int> {};

TEST_P(SofdaSsEnvelope, WithinTheoreticalBoundOfExact) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Problem p = random_problem(seed * 271 + 9, 14, 5, 3, 2);
  const auto f = sofda_ss(p);
  if (f.empty()) GTEST_SKIP() << "instance infeasible";
  ASSERT_TRUE(is_feasible(p, f)) << validate(p, f).summary();

  const auto exact = exact::solve_exact(p);
  ASSERT_TRUE(exact.optimal);
  // (2 + ρST) with ρST = 2 ⇒ 4·OPT; empirically SOFDA-SS sits far below.
  EXPECT_GE(total_cost(p, f), exact.cost - 1e-9);
  EXPECT_LE(total_cost(p, f), 4.0 * exact.cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SofdaSsEnvelope, ::testing::Range(1, 17));

TEST(SofdaSs, ShortenOptionNeverWorsens) {
  const Problem p = random_problem(777, 16, 6, 4, 3);
  AlgoOptions no_shorten;
  no_shorten.shorten = false;
  AlgoOptions with_shorten;
  with_shorten.shorten = true;
  const auto f1 = sofda_ss(p, 0, no_shorten);
  const auto f2 = sofda_ss(p, 0, with_shorten);
  if (f1.empty()) GTEST_SKIP();
  EXPECT_LE(total_cost(p, f2), total_cost(p, f1) + 1e-9);
}

}  // namespace
}  // namespace sofe::core
