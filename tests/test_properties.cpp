// Cross-cutting property tests (DESIGN.md §6), parameterized over seeds and
// instance shapes.  These are the invariants the paper's proofs rest on:
//   * every algorithm's output passes the IP-mirror validator;
//   * the exact solver lower-bounds everything;
//   * SOFDA stays within 3ρST of OPT, SOFDA-SS within (2+ρST) — ρST = 2;
//   * costs respond monotonically to instance knobs (more VMs / sources
//     never hurt much; longer chains and more destinations cost more);
//   * the Ĝ Steiner certificate bounds SOFDA's forest cost from above.

#include <gtest/gtest.h>

#include "sofe/baselines/baselines.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/core/sofda_ss.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/exact/solver.hpp"
#include "sofe/ip/model.hpp"
#include "sofe/topology/topology.hpp"
#include "sofe/util/rng.hpp"

namespace sofe {
namespace {

using core::Problem;
using core::ServiceForest;
using core::total_cost;

Problem sampled(std::uint64_t seed, int vms, int srcs, int dests, int chain) {
  topology::ProblemConfig cfg;
  cfg.num_vms = vms;
  cfg.num_sources = srcs;
  cfg.num_destinations = dests;
  cfg.chain_length = chain;
  cfg.seed = seed;
  return topology::make_problem(topology::softlayer(), cfg);
}

struct Shape {
  int vms, srcs, dests, chain;
};

class EveryAlgorithmFeasible : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EveryAlgorithmFeasible, OutputsPassTheValidator) {
  const auto [seed, shape_idx] = GetParam();
  static const Shape kShapes[] = {
      {5, 2, 2, 1}, {10, 4, 4, 2}, {15, 6, 6, 3}, {20, 8, 8, 4}, {25, 14, 6, 3},
  };
  const Shape s = kShapes[shape_idx];
  const Problem p = sampled(static_cast<std::uint64_t>(seed) * 37 + 11, s.vms, s.srcs, s.dests,
                            s.chain);

  struct Algo {
    const char* name;
    ServiceForest forest;
  };
  std::vector<Algo> algos;
  algos.push_back({"SOFDA", core::sofda(p)});
  algos.push_back({"SOFDA-SS", core::sofda_ss(p, p.sources.front())});
  algos.push_back({"eST", baselines::run(p, baselines::Kind::kEst)});
  algos.push_back({"eNEMP", baselines::run(p, baselines::Kind::kEnemp)});
  algos.push_back({"ST", baselines::run(p, baselines::Kind::kSt)});
  for (const auto& a : algos) {
    if (a.forest.empty()) continue;
    const auto r = core::validate(p, a.forest);
    EXPECT_TRUE(r.ok) << a.name << ": " << r.summary();
    // IP consistency: the induced assignment satisfies every constraint.
    const ip::IpModel model(p);
    const auto assignment = model.from_forest(a.forest);
    const auto bad = model.violated(assignment);
    EXPECT_TRUE(bad.empty()) << a.name << " violates " << (bad.empty() ? "" : bad.front());
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsTimesShapes, EveryAlgorithmFeasible,
                         ::testing::Combine(::testing::Range(1, 7), ::testing::Range(0, 5)));

class ApproximationEnvelope : public ::testing::TestWithParam<int> {};

TEST_P(ApproximationEnvelope, TheoremBoundsHold) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Problem p = sampled(seed * 797 + 3, 8, 3, 4, 2);
  const auto exact = exact::solve_exact(p);
  if (!exact.optimal) GTEST_SKIP();

  core::SofdaStats stats;
  const auto f = core::sofda(p, {}, &stats);
  ASSERT_FALSE(f.empty());
  const double c = total_cost(p, f);
  EXPECT_GE(c + 1e-9, exact.cost);
  EXPECT_LE(c, 6.0 * exact.cost + 1e-9) << "3·ρST bound (ρST = 2) violated";
  // Lemma 2: certificate tree within 3·ρST·OPT; forest no worse than the
  // certificate plus nothing (conflict resolution adds no cost).
  EXPECT_LE(stats.steiner_tree_cost, 6.0 * exact.cost + 1e-9);
  EXPECT_LE(c, stats.steiner_tree_cost + 1e-6)
      << "deployment must not exceed the Steiner certificate";

  const auto fss = core::sofda_ss(p, p.sources.front());
  if (!fss.empty()) {
    EXPECT_LE(total_cost(p, fss), 4.0 * exact.cost + 1e-9) << "(2+ρST) bound violated";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproximationEnvelope, ::testing::Range(1, 25));

class KnobMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(KnobMonotonicity, CostsRespondSanely) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 4493 + 1;
  // Longer chains cost more (same seed => same placement of shared knobs).
  const double c2 = total_cost(sampled(seed, 15, 6, 5, 2), core::sofda(sampled(seed, 15, 6, 5, 2)));
  const double c5 = total_cost(sampled(seed, 15, 6, 5, 5), core::sofda(sampled(seed, 15, 6, 5, 5)));
  EXPECT_LE(c2, c5 + 1e-9) << "a longer chain cannot be cheaper";
  // Averaged trends for destinations (strict per-seed monotonicity is not
  // guaranteed because the random draws differ).
  double few = 0.0, many = 0.0;
  for (std::uint64_t t = 0; t < 4; ++t) {
    const Problem pf = sampled(seed + t, 15, 6, 2, 3);
    const Problem pm = sampled(seed + t, 15, 6, 9, 3);
    few += total_cost(pf, core::sofda(pf));
    many += total_cost(pm, core::sofda(pm));
  }
  EXPECT_LT(few, many) << "more destinations should cost more on average";
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnobMonotonicity, ::testing::Range(1, 7));

TEST(Property, MoreVmsHelpOnAverage) {
  double small = 0.0, large = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Problem p5 = sampled(seed * 271, 5, 6, 6, 3);
    const Problem p45 = sampled(seed * 271, 45, 6, 6, 3);
    small += total_cost(p5, core::sofda(p5));
    large += total_cost(p45, core::sofda(p45));
  }
  EXPECT_LT(large, small) << "Fig. 8(c) shape: more VMs reduce cost";
}

TEST(Property, MoreSourcesHelpOnAverage) {
  double few = 0.0, many = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Problem p2 = sampled(seed * 13, 15, 2, 6, 3);
    const Problem p26 = sampled(seed * 13, 15, 20, 6, 3);
    few += total_cost(p2, core::sofda(p2));
    many += total_cost(p26, core::sofda(p26));
  }
  EXPECT_LT(many, few) << "Fig. 8(a) shape: more sources reduce cost";
}

TEST(Property, SetupScaleReducesVmUsage) {
  // Fig. 11(b): as VM setup cost rises, SOFDA uses fewer VMs.
  double cheap_vms = 0.0, pricey_vms = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    topology::ProblemConfig cfg;
    cfg.num_vms = 20;
    cfg.num_sources = 8;
    cfg.num_destinations = 6;
    cfg.chain_length = 3;
    cfg.seed = seed * 53;
    cfg.setup_scale = 1.0;
    const auto p1 = topology::make_problem(topology::softlayer(), cfg);
    cfg.setup_scale = 9.0;
    const auto p9 = topology::make_problem(topology::softlayer(), cfg);
    cheap_vms += static_cast<double>(core::sofda(p1).enabled_vms().size());
    pricey_vms += static_cast<double>(core::sofda(p9).enabled_vms().size());
  }
  EXPECT_LE(pricey_vms, cheap_vms);
}

TEST(Property, DeterminismAcrossAlgorithms) {
  const Problem p = sampled(31415, 12, 5, 5, 3);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_DOUBLE_EQ(total_cost(p, core::sofda(p)), total_cost(p, core::sofda(p)));
    EXPECT_DOUBLE_EQ(total_cost(p, baselines::run(p, baselines::Kind::kEst)),
                     total_cost(p, baselines::run(p, baselines::Kind::kEst)));
  }
}

}  // namespace
}  // namespace sofe
