// Baseline tests: eST / eNEMP / ST produce feasible forests, respect their
// structural restrictions, and SOFDA is never (meaningfully) worse.

#include <gtest/gtest.h>

#include "sofe/baselines/baselines.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/topology/topology.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::baselines {
namespace {

using core::total_cost;

Problem sample_problem(std::uint64_t seed, int vms = 10, int srcs = 4, int dests = 4,
                       int chain = 2) {
  topology::ProblemConfig cfg;
  cfg.num_vms = vms;
  cfg.num_sources = srcs;
  cfg.num_destinations = dests;
  cfg.chain_length = chain;
  cfg.seed = seed;
  return topology::make_problem(topology::softlayer(), cfg);
}

TEST(Baselines, StFeasible) {
  const Problem p = sample_problem(1);
  const auto f = run(p, Kind::kSt);
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(core::is_feasible(p, f)) << core::validate(p, f).summary();
  EXPECT_EQ(f.used_sources().size(), 1u) << "ST must use exactly one tree";
}

TEST(Baselines, EstFeasibleAndNoWorseThanSt) {
  const Problem p = sample_problem(2);
  const auto st = run(p, Kind::kSt);
  const auto est = run(p, Kind::kEst);
  ASSERT_FALSE(st.empty());
  ASSERT_FALSE(est.empty());
  EXPECT_TRUE(core::is_feasible(p, est)) << core::validate(p, est).summary();
  EXPECT_LE(total_cost(p, est), total_cost(p, st) + 1e-9)
      << "the iterative extension only accepts improvements";
}

TEST(Baselines, EnempFeasible) {
  const Problem p = sample_problem(3);
  const auto f = run(p, Kind::kEnemp);
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(core::is_feasible(p, f)) << core::validate(p, f).summary();
}

TEST(Baselines, SingleTreeUsesDeclaredVmsOnly) {
  const Problem p = sample_problem(4);
  const auto vms = p.vms();
  const std::vector<graph::NodeId> subset(vms.begin(), vms.begin() + 5);
  const auto f = single_tree_est(p, p.sources.front(), subset, {});
  if (f.empty()) GTEST_SKIP();
  for (const auto& [vm, idx] : f.enabled_vms()) {
    (void)idx;
    EXPECT_NE(std::find(subset.begin(), subset.end(), vm), subset.end())
        << "VM " << vm << " was not in the usable set";
  }
}

class BaselineSweep : public ::testing::TestWithParam<int> {};

TEST_P(BaselineSweep, AllFeasibleAndOrderedBySophistication) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Problem p = sample_problem(seed * 101 + 11);
  const auto st = run(p, Kind::kSt);
  const auto est = run(p, Kind::kEst);
  const auto enemp = run(p, Kind::kEnemp);
  const auto sofda_f = core::sofda(p);
  ASSERT_FALSE(st.empty());
  ASSERT_FALSE(est.empty());
  ASSERT_FALSE(enemp.empty());
  ASSERT_FALSE(sofda_f.empty());
  for (const auto* f : {&st, &est, &enemp, &sofda_f}) {
    EXPECT_TRUE(core::is_feasible(p, *f)) << core::validate(p, *f).summary();
  }
  // eST never worse than ST (superset search).  SOFDA is an approximation,
  // not a dominance guarantee, so allow slack — but it must stay in range.
  EXPECT_LE(total_cost(p, est), total_cost(p, st) + 1e-9);
  EXPECT_LE(total_cost(p, sofda_f), 1.6 * total_cost(p, est) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineSweep, ::testing::Range(1, 13));

TEST(Baselines, SofdaWinsOnAverage) {
  // The paper's headline: SOFDA beats the baselines by a clear margin on
  // average.  Averaged over seeds to avoid single-instance noise.
  double sofda_total = 0.0, est_total = 0.0, st_total = 0.0;
  int counted = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Problem p = sample_problem(seed * 977 + 5, 12, 6, 6, 3);
    const auto f_sofda = core::sofda(p);
    const auto f_est = run(p, Kind::kEst);
    const auto f_st = run(p, Kind::kSt);
    if (f_sofda.empty() || f_est.empty() || f_st.empty()) continue;
    sofda_total += total_cost(p, f_sofda);
    est_total += total_cost(p, f_est);
    st_total += total_cost(p, f_st);
    ++counted;
  }
  ASSERT_GE(counted, 8);
  EXPECT_LT(sofda_total, est_total) << "SOFDA should beat eST on average";
  EXPECT_LT(sofda_total, st_total) << "SOFDA should beat ST on average";
}

}  // namespace
}  // namespace sofe::baselines
