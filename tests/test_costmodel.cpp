// Fortz-Thorup cost-function tests (Fig. 7): segment values, continuity at
// every breakpoint (including the paper's 14318/3 typo fix), homogeneity,
// convexity, and the load ledger.

#include <gtest/gtest.h>

#include "sofe/costmodel/fortz_thorup.hpp"
#include "sofe/costmodel/load_ledger.hpp"

namespace sofe::costmodel {
namespace {

TEST(FortzThorup, SegmentValues) {
  // p = 1 (Fig. 7's axis).
  EXPECT_DOUBLE_EQ(fortz_thorup(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(fortz_thorup(0.2, 1.0), 0.2);
  EXPECT_NEAR(fortz_thorup(0.5, 1.0), 3 * 0.5 - 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(fortz_thorup(0.8, 1.0), 10 * 0.8 - 16.0 / 3.0, 1e-12);
  EXPECT_NEAR(fortz_thorup(0.95, 1.0), 70 * 0.95 - 178.0 / 3.0, 1e-12);
  EXPECT_NEAR(fortz_thorup(1.05, 1.0), 500 * 1.05 - 1468.0 / 3.0, 1e-12);
  EXPECT_NEAR(fortz_thorup(1.2, 1.0), 5000 * 1.2 - 16318.0 / 3.0, 1e-12);
}

TEST(FortzThorup, ContinuousAtEveryBreakpoint) {
  constexpr double kEps = 1e-9;
  for (double p : {1.0, 100.0, 7.5}) {
    for (double b : {1.0 / 3.0, 2.0 / 3.0, 9.0 / 10.0, 1.0, 11.0 / 10.0}) {
      const double lo = fortz_thorup(b * p - kEps * p, p);
      const double hi = fortz_thorup(b * p + kEps * p, p);
      EXPECT_NEAR(lo, hi, 1e-5 * p) << "discontinuity at u=" << b << " p=" << p
                                    << " (the paper's 14318/3 typo would break this)";
    }
  }
}

TEST(FortzThorup, Homogeneous) {
  for (double u : {0.1, 0.4, 0.7, 0.95, 1.05, 1.3}) {
    EXPECT_NEAR(fortz_thorup(u * 100.0, 100.0), 100.0 * fortz_thorup(u, 1.0), 1e-9);
  }
}

TEST(FortzThorup, ConvexIncreasing) {
  double prev = -1.0;
  double prev_slope = 0.0;
  for (double l = 0.0; l <= 1.4; l += 0.01) {
    const double c = fortz_thorup(l, 1.0);
    EXPECT_GE(c, prev) << "cost must be nondecreasing";
    prev = c;
    const double s = fortz_thorup_slope(l, 1.0);
    EXPECT_GE(s, prev_slope) << "slope must be nondecreasing (convexity)";
    prev_slope = s;
  }
}

TEST(FortzThorup, SlopeMatchesFiniteDifference) {
  for (double l : {0.1, 0.5, 0.8, 0.95, 1.05, 1.2}) {
    const double h = 1e-7;
    const double fd = (fortz_thorup(l + h, 1.0) - fortz_thorup(l, 1.0)) / h;
    EXPECT_NEAR(fd, fortz_thorup_slope(l, 1.0), 1e-3);
  }
}

TEST(LoadLedger, TracksAndPrices) {
  LoadLedger ledger(3, 100.0, 2, 5.0);
  EXPECT_DOUBLE_EQ(ledger.link_load(0), 0.0);
  ledger.add_link_load(0, 30.0);
  ledger.add_link_load(0, 10.0);
  EXPECT_DOUBLE_EQ(ledger.link_load(0), 40.0);
  EXPECT_DOUBLE_EQ(ledger.link_utilization(0), 0.4);
  // Price of 5 more Mb/s at load 40/100: FT(45, 100).
  EXPECT_NEAR(ledger.link_price(0, 5.0), fortz_thorup(45.0, 100.0), 1e-12);
  ledger.add_host_load(1, 2.0);
  EXPECT_NEAR(ledger.host_price(1), fortz_thorup(3.0, 5.0), 1e-12);
  EXPECT_EQ(ledger.overloaded_links(), 0u);
  ledger.add_link_load(2, 130.0);
  EXPECT_EQ(ledger.overloaded_links(), 1u);
}

TEST(LoadLedger, PricesGrowWithLoad) {
  LoadLedger ledger(1, 100.0, 1, 5.0);
  double prev = ledger.link_price(0, 5.0);
  for (int i = 0; i < 25; ++i) {
    ledger.add_link_load(0, 5.0);
    const double now = ledger.link_price(0, 5.0);
    EXPECT_GE(now, prev);
    prev = now;
  }
  EXPECT_GT(prev, 100.0) << "beyond capacity the price must explode";
}

}  // namespace
}  // namespace sofe::costmodel
