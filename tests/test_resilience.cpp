// Failure injection + budget-bounded survivable re-embedding (DESIGN.md
// §12): plan validation from both drivers, fail/heal round-trip
// bit-identity at the stream level, drill recovery of every affected
// forest, migration-budget boundary cases (0 = repair-only, unbounded =
// from-scratch quality), disconnected-component failures, and determinism
// across solver threads and pipeline worker counts.

#include <gtest/gtest.h>

#include <stdexcept>

#include "sofe/api/registry.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/costmodel/load_ledger.hpp"
#include "sofe/online/pipeline.hpp"
#include "sofe/online/simulator.hpp"
#include "sofe/online/stream.hpp"

namespace sofe::online {
namespace {

using resilience::FailureEvent;
using resilience::FailurePlan;

OnlineConfig small_config() {
  OnlineConfig cfg;
  cfg.requests = 8;
  cfg.min_destinations = 2;
  cfg.max_destinations = 4;
  cfg.min_sources = 2;
  cfg.max_sources = 3;
  cfg.chain_length = 2;
  cfg.vms_per_dc = 2;
  cfg.seed = 5;
  return cfg;
}

EmbedFn sofda_fn() {
  return [](const Problem& p) { return core::sofda(p); };
}

/// A physical link request 0's embedding is guaranteed to charge: run the
/// stream once without failures, capture the first admitted forest and take
/// its first hop that lives in the physical topology.
graph::EdgeId charged_link_of_first_request(const topology::Topology& topo,
                                            const OnlineConfig& cfg) {
  ServiceForest first;
  auto probe = cfg;
  probe.requests = 1;
  simulate(topo, probe, "probe", [&](const Problem& p) {
    first = core::sofda(p);
    return first;
  });
  for (const auto& se : first.stage_edges()) {
    if (se.u < topo.g.node_count() && se.v < topo.g.node_count()) {
      const graph::EdgeId e = topo.g.find_edge(se.u, se.v);
      if (e != graph::kInvalidEdge) return e;
    }
  }
  ADD_FAILURE() << "request 0 produced no physical hop to fail";
  return 0;
}

void expect_series_identical(const OnlineResult& a, const OnlineResult& b) {
  ASSERT_EQ(a.accumulative_cost.size(), b.accumulative_cost.size());
  for (std::size_t i = 0; i < a.accumulative_cost.size(); ++i) {
    EXPECT_EQ(a.accumulative_cost[i], b.accumulative_cost[i]) << "arrival " << i;  // bitwise
    EXPECT_EQ(a.per_request_cost[i], b.per_request_cost[i]) << "arrival " << i;
  }
  EXPECT_EQ(a.infeasible_requests, b.infeasible_requests);
  EXPECT_EQ(a.overloaded_links, b.overloaded_links);
}

/// Everything but `seconds` (wall time) must match bitwise.
void expect_recoveries_identical(const OnlineResult& a, const OnlineResult& b) {
  ASSERT_EQ(a.recoveries.size(), b.recoveries.size());
  for (std::size_t i = 0; i < a.recoveries.size(); ++i) {
    const auto& x = a.recoveries[i];
    const auto& y = b.recoveries[i];
    EXPECT_EQ(x.epoch_first, y.epoch_first) << "recovery " << i;
    EXPECT_EQ(x.slot, y.slot) << "recovery " << i;
    EXPECT_EQ(x.rerouted_segments, y.rerouted_segments) << "recovery " << i;
    EXPECT_EQ(x.moved_users, y.moved_users) << "recovery " << i;
    EXPECT_EQ(x.dropped_users, y.dropped_users) << "recovery " << i;
    EXPECT_EQ(x.escalated, y.escalated) << "recovery " << i;
    EXPECT_EQ(x.repaired_cost, y.repaired_cost) << "recovery " << i;  // bitwise
    EXPECT_EQ(x.scratch_cost, y.scratch_cost) << "recovery " << i;
    EXPECT_EQ(x.chosen_cost, y.chosen_cost) << "recovery " << i;
  }
}

// ---------------------------------------------------------------- validate --

TEST(ResilienceValidate, NegativeFailIndexRejectedFromBothDrivers) {
  const auto topo = topology::softlayer();
  FailurePlan plan;
  plan.events.push_back({FailureEvent::Target::kLink, 0, /*fail_at=*/-1, /*heal_at=*/-1});
  auto cfg = small_config();
  cfg.failures = &plan;
  try {
    simulate(topo, cfg, "x", sofda_fn());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("FailurePlan.events[0].fail_at"), std::string::npos)
        << e.what();
  }
  // The pipeline validates at construction, before any thread spawns.
  EXPECT_THROW(Pipeline(topo, cfg, "sofda", {}, {}), std::invalid_argument);
}

TEST(ResilienceValidate, HealBeforeFailRejected) {
  const auto topo = topology::softlayer();
  FailurePlan plan;
  plan.events.push_back({FailureEvent::Target::kLink, 1, /*fail_at=*/4, /*heal_at=*/4});
  auto cfg = small_config();
  cfg.failures = &plan;
  try {
    simulate(topo, cfg, "x", sofda_fn());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("heal_at"), std::string::npos) << e.what();
  }
}

TEST(ResilienceValidate, UnknownIdsRejectedPerTargetKind) {
  const auto topo = topology::softlayer();
  auto expect_rejects = [&](FailureEvent ev, const char* member) {
    FailurePlan plan;
    plan.events.push_back(ev);
    auto cfg = small_config();
    cfg.failures = &plan;
    try {
      simulate(topo, cfg, "x", sofda_fn());
      FAIL() << "expected std::invalid_argument for " << member;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(member), std::string::npos) << e.what();
    }
  };
  expect_rejects({FailureEvent::Target::kLink, topo.g.edge_count(), 1, -1}, ".id");
  expect_rejects({FailureEvent::Target::kNode, topo.g.node_count(), 1, -1}, ".id");
  expect_rejects({FailureEvent::Target::kDataCenter,
                  static_cast<std::int32_t>(topo.dc_nodes.size()), 1, -1},
                 ".id");
}

TEST(ResilienceValidate, NegativeMigrationWeightRejected) {
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.recovery.migration_cost_weight = -1.0;
  EXPECT_THROW(simulate(topo, cfg, "x", sofda_fn()), std::invalid_argument);
}

// ----------------------------------------------------- fail/heal round-trip --

TEST(ResilienceRoundTrip, HealRestoresEveryPriceBitForBit) {
  // Stream-level drill with empty commits: the ledger never moves, so the
  // only deltas are the drill's own — fail must drive exactly the target
  // link to +inf, heal must restore the pre-failure vector bitwise, and
  // both must surface as ordinary EdgeCostDelta entries.
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 6;
  const graph::EdgeId victim = 3;
  FailurePlan plan;
  plan.events.push_back({FailureEvent::Target::kLink, victim, /*fail_at=*/2, /*heal_at=*/4});
  cfg.failures = &plan;

  ArrivalStream stream(topo, cfg);
  stream.set_recovery_embedder([](const Problem&) { return ServiceForest{}; });

  std::vector<graph::EdgeCostDelta> deltas;
  // The first refresh reprices every link from its topology base cost to the
  // zero-load Fortz-Thorup price; capture that steady state as the baseline.
  stream.open_epoch(0, &deltas);
  std::vector<Cost> baseline;
  for (graph::EdgeId e = 0; e < topo.g.edge_count(); ++e) {
    baseline.push_back(stream.master().network.edge(e).cost);
  }
  stream.commit_epoch(0, {ServiceForest{}});

  stream.open_epoch(1, &deltas);
  stream.commit_epoch(1, {ServiceForest{}});

  stream.open_epoch(2, &deltas);  // failure fires here
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].edge, victim);
  EXPECT_EQ(stream.master().network.edge(victim).cost, graph::kInfiniteCost);
  for (graph::EdgeId e = 0; e < topo.g.edge_count(); ++e) {
    if (e != victim) {
      EXPECT_EQ(stream.master().network.edge(e).cost, baseline[static_cast<std::size_t>(e)]);
    }
  }
  stream.commit_epoch(2, {ServiceForest{}});

  stream.open_epoch(3, &deltas);
  EXPECT_TRUE(deltas.empty()) << "failed link stays failed without a toggle";
  stream.commit_epoch(3, {ServiceForest{}});

  stream.open_epoch(4, &deltas);  // heal fires here
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].edge, victim);
  for (graph::EdgeId e = 0; e < topo.g.edge_count(); ++e) {
    EXPECT_EQ(stream.master().network.edge(e).cost, baseline[static_cast<std::size_t>(e)])
        << "heal must restore the pre-failure price vector bit for bit";
  }
  EXPECT_TRUE(stream.recoveries().empty()) << "nothing was admitted, nothing to recover";
}

// ----------------------------------------------------------------- recovery --

TEST(ResilienceDrill, DrillRecoversEveryAffectedForest) {
  // The acceptance drill: kill a link request 0 provably charges, heal it
  // three arrivals later.  Request 0 must be recovered at the failure
  // epoch, and every recovery must adopt a finite-cost embedding (the
  // unbounded default escalates to the from-scratch re-embed).
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  const graph::EdgeId victim = charged_link_of_first_request(topo, cfg);
  FailurePlan plan;
  plan.events.push_back({FailureEvent::Target::kLink, static_cast<std::int32_t>(victim),
                         /*fail_at=*/2, /*heal_at=*/5});
  cfg.failures = &plan;

  const auto r = simulate(topo, cfg, "SOFDA", sofda_fn());
  ASSERT_FALSE(r.recoveries.empty());
  bool recovered_first = false;
  for (const auto& rep : r.recoveries) {
    EXPECT_EQ(rep.epoch_first, 2);
    EXPECT_LT(rep.slot, 2) << "only already-admitted requests can be affected";
    if (rep.slot == 0) recovered_first = true;
    EXPECT_LT(rep.chosen_cost, graph::kInfiniteCost)
        << "softlayer minus one link stays connected: recovery must be feasible";
    EXPECT_EQ(rep.dropped_users, 0);
  }
  EXPECT_TRUE(recovered_first) << "request 0 charged the dead link and must be recovered";
}

TEST(ResilienceDrill, BudgetZeroIsRepairOnly) {
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  const graph::EdgeId victim = charged_link_of_first_request(topo, cfg);
  FailurePlan plan;
  plan.events.push_back({FailureEvent::Target::kLink, static_cast<std::int32_t>(victim),
                         /*fail_at=*/3, /*heal_at=*/-1});
  cfg.failures = &plan;
  cfg.recovery.max_moved_users = 0;

  const auto r = simulate(topo, cfg, "SOFDA", sofda_fn());
  ASSERT_FALSE(r.recoveries.empty());
  for (const auto& rep : r.recoveries) {
    EXPECT_EQ(rep.moved_users, 0) << "budget 0 may never move a user";
    EXPECT_FALSE(rep.escalated) << "budget 0 cannot afford the from-scratch re-embed";
  }
}

TEST(ResilienceDrill, UnboundedBudgetMatchesFromScratchQuality) {
  // Budget ∞: every recovery adopts the from-scratch candidate, so the
  // chosen cost IS the from-scratch reference cost — and the whole drill
  // (series + reports) is bitwise identical between the warm incremental
  // session and the cold recomputing reference driver.
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 10;
  const graph::EdgeId victim = charged_link_of_first_request(topo, cfg);
  FailurePlan plan;
  plan.events.push_back({FailureEvent::Target::kLink, static_cast<std::int32_t>(victim),
                         /*fail_at=*/4, /*heal_at=*/8});
  cfg.failures = &plan;
  cfg.recovery.max_moved_users = -1;

  auto warm = api::make_solver("sofda");
  const auto incremental = simulate(topo, cfg, *warm);
  ASSERT_FALSE(incremental.recoveries.empty());
  for (const auto& rep : incremental.recoveries) {
    ASSERT_LT(rep.scratch_cost, graph::kInfiniteCost);
    EXPECT_TRUE(rep.escalated);
    EXPECT_EQ(rep.chosen_cost, rep.scratch_cost);  // bitwise
  }

  auto ref_cfg = cfg;
  ref_cfg.copy_problems = true;
  api::SolverOptions cold_opt;
  cold_opt.incremental = false;
  cold_opt.incremental_pricing = false;
  auto cold = api::make_solver("sofda", cold_opt);
  const auto reference = simulate(topo, ref_cfg, *cold);
  expect_series_identical(incremental, reference);
  expect_recoveries_identical(incremental, reference);
}

TEST(ResilienceDrill, DisconnectedComponentDropsOnlyUnreachableUsers) {
  // Node failure that cuts a served destination off entirely: the repair
  // keeps the survivors, the orphan is dropped (no feasible attachment),
  // and escalation cannot rescue it either (a full re-embed is infeasible
  // with an unreachable destination) — so the drill reports dropped users
  // instead of an infinite chosen cost.
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  ArrivalStream probe(topo, cfg);
  const core::NodeId victim = probe.request(0).destinations.front();
  FailurePlan plan;
  plan.events.push_back({FailureEvent::Target::kNode, victim, /*fail_at=*/2, /*heal_at=*/-1});
  cfg.failures = &plan;

  const auto r = simulate(topo, cfg, "SOFDA", sofda_fn());
  ASSERT_FALSE(r.recoveries.empty());
  bool saw_first = false;
  int dropped = 0;
  for (const auto& rep : r.recoveries) {
    if (rep.slot == 0) saw_first = true;
    dropped += rep.dropped_users;
    EXPECT_FALSE(rep.escalated)
        << "a from-scratch re-embed cannot serve an unreachable destination";
  }
  EXPECT_TRUE(saw_first) << "request 0 serves the failed node and must be in the drill";
  EXPECT_GE(dropped, 1) << "the cut-off destination cannot be served by any recovery";
}

TEST(ResilienceDrill, HoldingDeparturesComposeWithFailures) {
  // Departures and failures share the release path: a request that departs
  // before the failure must NOT be recovered; the run must still match its
  // own copying-reference driver bit for bit.
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 10;
  cfg.holding_arrivals = 3;
  const graph::EdgeId victim = charged_link_of_first_request(topo, cfg);
  FailurePlan plan;
  plan.events.push_back({FailureEvent::Target::kLink, static_cast<std::int32_t>(victim),
                         /*fail_at=*/6, /*heal_at=*/-1});
  cfg.failures = &plan;

  const auto r = simulate(topo, cfg, "SOFDA", sofda_fn());
  for (const auto& rep : r.recoveries) {
    EXPECT_GE(rep.slot, 6 - cfg.holding_arrivals)
        << "request " << rep.slot << " departed before the failure";
  }
  auto ref_cfg = cfg;
  ref_cfg.copy_problems = true;
  const auto reference = simulate(topo, ref_cfg, "SOFDA", sofda_fn());
  expect_series_identical(r, reference);
  expect_recoveries_identical(r, reference);
}

// -------------------------------------------------------------- determinism --

TEST(ResilienceDeterminism, IdenticalAcrossSolverThreadsAndPipelineWorkers) {
  // The drill is a pure speed-knob invariant like everything else: solver
  // threads {1, 2, 8} and pipeline workers {1, 2, 8} must reproduce the
  // sequential single-thread drill bit for bit, recoveries included.
  const auto topo = topology::softlayer();
  auto cfg = small_config();
  cfg.requests = 12;
  cfg.epoch_size = 4;
  const graph::EdgeId victim = charged_link_of_first_request(topo, cfg);
  FailurePlan plan;
  plan.events.push_back({FailureEvent::Target::kLink, static_cast<std::int32_t>(victim),
                         /*fail_at=*/5, /*heal_at=*/9});
  plan.events.push_back({FailureEvent::Target::kDataCenter, 0, /*fail_at=*/7, /*heal_at=*/-1});
  cfg.failures = &plan;

  auto reference_solver = api::make_solver("sofda");
  const auto reference = simulate(topo, cfg, *reference_solver);
  ASSERT_FALSE(reference.recoveries.empty());

  for (const int threads : {2, 8}) {
    api::SolverOptions opt;
    opt.threads = threads;
    auto solver = api::make_solver("sofda", opt);
    const auto got = simulate(topo, cfg, *solver);
    expect_series_identical(got, reference);
    expect_recoveries_identical(got, reference);
  }
  for (const int workers : {1, 2, 8}) {
    PipelineOptions popt;
    popt.workers = workers;
    const auto got = serve_pipelined(topo, cfg, "sofda", {}, popt);
    expect_series_identical(got, reference);
    expect_recoveries_identical(got, reference);
  }
}

// ------------------------------------------------- ledger hardening (§12e) --

TEST(ResilienceLedger, DoubleReleaseClampsAtZeroAndAssertsInDebug) {
  costmodel::LoadLedger ledger(2, 100.0, 1, 5.0);
  ledger.add_link_load(0, 5.0);
  EXPECT_DOUBLE_EQ(ledger.remove_link_load(0, 5.0), 5.0);
  // A second release of the same charge is a caller bug: debug builds trip
  // the assert; release builds clamp at zero and report the shortfall via
  // the returned amount.
  EXPECT_DEBUG_DEATH(
      {
        const double removed = ledger.remove_link_load(0, 5.0);
        EXPECT_DOUBLE_EQ(removed, 0.0);
        EXPECT_DOUBLE_EQ(ledger.link_load(0), 0.0);
      },
      "removing more link load");

  ledger.add_host_load(0, 1.0);
  EXPECT_DOUBLE_EQ(ledger.remove_host_load(0, 1.0), 1.0);
  EXPECT_DEBUG_DEATH(
      {
        const double removed = ledger.remove_host_load(0, 1.0);
        EXPECT_DOUBLE_EQ(removed, 0.0);
        EXPECT_DOUBLE_EQ(ledger.host_load(0), 0.0);
      },
      "removing more host load");
}

}  // namespace
}  // namespace sofe::online
