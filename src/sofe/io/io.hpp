#pragma once
// Instance and solution I/O:
//  * Graphviz DOT export of a problem and an embedded forest (VMs, sources,
//    destinations and per-stage walk edges are styled distinctly), for
//    inspecting embeddings visually;
//  * a plain-text instance format with full round-trip fidelity, so problem
//    instances can be shipped alongside bug reports and experiment logs.

#include <iosfwd>
#include <string>

#include "sofe/core/forest.hpp"
#include "sofe/core/problem.hpp"

namespace sofe::io {

using core::Problem;
using core::ServiceForest;

/// Graphviz DOT of the bare problem (roles coloured, links weighted).
std::string to_dot(const Problem& p);

/// Graphviz DOT of the problem plus an embedded forest: enabled VMs carry
/// their VNF index, walk edges are coloured per stage.
std::string to_dot(const Problem& p, const ServiceForest& f);

/// Serializes the problem to the `sofe-instance v1` text format.
std::string serialize(const Problem& p);

/// Parses a `sofe-instance v1` text.  Throws std::runtime_error on malformed
/// input.
Problem deserialize(const std::string& text);

/// File helpers.
void save_instance(const Problem& p, const std::string& path);
Problem load_instance(const std::string& path);

}  // namespace sofe::io
