#include "sofe/io/io.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace sofe::io {

using core::Cost;
using core::NodeId;

namespace {

const char* kStageColors[] = {"black", "blue", "red", "darkgreen", "purple",
                              "orange", "brown", "cyan4"};

std::string node_attrs(const Problem& p, NodeId v, const std::map<NodeId, int>& enabled) {
  const bool is_src = std::find(p.sources.begin(), p.sources.end(), v) != p.sources.end();
  const bool is_dst =
      std::find(p.destinations.begin(), p.destinations.end(), v) != p.destinations.end();
  std::ostringstream os;
  os << "label=\"" << v;
  if (p.is_vm[static_cast<std::size_t>(v)]) {
    os << "\\nc=" << p.node_cost[static_cast<std::size_t>(v)];
    const auto it = enabled.find(v);
    if (it != enabled.end()) os << "\\nf" << it->second;
  }
  os << "\"";
  if (is_src) {
    os << ", shape=box, style=filled, fillcolor=lightblue";
  } else if (is_dst) {
    os << ", shape=doublecircle, style=filled, fillcolor=lightyellow";
  } else if (p.is_vm[static_cast<std::size_t>(v)]) {
    os << ", shape=hexagon, style=filled, "
       << (enabled.contains(v) ? "fillcolor=palegreen" : "fillcolor=gray90");
  } else {
    os << ", shape=circle";
  }
  return os.str();
}

}  // namespace

std::string to_dot(const Problem& p) {
  return to_dot(p, ServiceForest{});
}

std::string to_dot(const Problem& p, const ServiceForest& f) {
  const auto enabled = f.enabled_vms();
  std::ostringstream os;
  os << "graph sof {\n  overlap=false;\n";
  for (NodeId v = 0; v < p.network.node_count(); ++v) {
    os << "  n" << v << " [" << node_attrs(p, v, enabled) << "];\n";
  }
  // Stage-edge uses (if any) override plain link styling.
  std::map<std::pair<NodeId, NodeId>, std::set<int>> stages;
  for (const auto& se : f.stage_edges()) {
    stages[{se.u, se.v}].insert(se.stage);
  }
  std::set<std::pair<NodeId, NodeId>> drawn;
  for (const auto& e : p.network.edges()) {
    const auto key = core::Graph::edge_key(e.u, e.v);
    if (!drawn.insert(key).second) continue;  // parallel edges share a line
    os << "  n" << key.first << " -- n" << key.second << " [label=\"" << e.cost << "\"";
    const auto it = stages.find(key);
    if (it != stages.end()) {
      os << ", penwidth=2.5, color=\"";
      bool first = true;
      for (int s : it->second) {
        if (!first) os << ":";
        os << kStageColors[static_cast<std::size_t>(s) % 8];
        first = false;
      }
      os << "\"";
    } else {
      os << ", color=gray70";
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string serialize(const Problem& p) {
  std::ostringstream os;
  os.precision(17);
  os << "sofe-instance v1\n";
  os << "nodes " << p.network.node_count() << "\n";
  os << "chain " << p.chain_length << "\n";
  os << "edges " << p.network.edge_count() << "\n";
  for (const auto& e : p.network.edges()) {
    os << e.u << " " << e.v << " " << e.cost << "\n";
  }
  os << "vms";
  for (NodeId v = 0; v < p.network.node_count(); ++v) {
    if (p.is_vm[static_cast<std::size_t>(v)]) {
      os << " " << v << ":" << p.node_cost[static_cast<std::size_t>(v)];
    }
  }
  os << "\nsources";
  for (NodeId s : p.sources) os << " " << s;
  os << "\ndestinations";
  for (NodeId d : p.destinations) os << " " << d;
  os << "\n";
  if (p.has_source_costs()) {
    os << "source_costs";
    for (NodeId s : p.sources) os << " " << s << ":" << p.source_cost(s);
    os << "\n";
  }
  return os.str();
}

Problem deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  auto fail = [](const std::string& why) -> void {
    throw std::runtime_error("sofe-instance parse error: " + why);
  };
  if (!std::getline(is, line) || line != "sofe-instance v1") fail("bad header");

  Problem p;
  std::string key;
  int nodes = 0, edges = 0;
  if (!(is >> key >> nodes) || key != "nodes" || nodes < 0) fail("nodes");
  if (!(is >> key >> p.chain_length) || key != "chain" || p.chain_length < 0) fail("chain");
  if (!(is >> key >> edges) || key != "edges" || edges < 0) fail("edges");
  p.network = core::Graph(nodes);
  p.node_cost.assign(static_cast<std::size_t>(nodes), 0.0);
  p.is_vm.assign(static_cast<std::size_t>(nodes), 0);
  for (int e = 0; e < edges; ++e) {
    NodeId u = 0, v = 0;
    Cost c = 0;
    if (!(is >> u >> v >> c) || u < 0 || v < 0 || u >= nodes || v >= nodes) fail("edge");
    p.network.add_edge(u, v, c);
  }
  if (!(is >> key) || key != "vms") fail("vms");
  std::getline(is, line);
  {
    std::istringstream ls(line);
    std::string tok;
    while (ls >> tok) {
      const auto colon = tok.find(':');
      if (colon == std::string::npos) fail("vm token");
      const NodeId v = std::stoi(tok.substr(0, colon));
      if (v < 0 || v >= nodes) fail("vm id");
      p.is_vm[static_cast<std::size_t>(v)] = 1;
      p.node_cost[static_cast<std::size_t>(v)] = std::stod(tok.substr(colon + 1));
    }
  }
  if (!(is >> key) || key != "sources") fail("sources");
  std::getline(is, line);
  {
    std::istringstream ls(line);
    NodeId s = 0;
    while (ls >> s) p.sources.push_back(s);
  }
  if (!(is >> key) || key != "destinations") fail("destinations");
  std::getline(is, line);
  {
    std::istringstream ls(line);
    NodeId d = 0;
    while (ls >> d) p.destinations.push_back(d);
  }
  if (is >> key) {
    if (key != "source_costs") fail("trailing content");
    p.source_setup_cost.assign(static_cast<std::size_t>(nodes), 0.0);
    std::getline(is, line);
    std::istringstream ls(line);
    std::string tok;
    while (ls >> tok) {
      const auto colon = tok.find(':');
      if (colon == std::string::npos) fail("source cost token");
      const NodeId s = std::stoi(tok.substr(0, colon));
      if (s < 0 || s >= nodes) fail("source cost id");
      p.source_setup_cost[static_cast<std::size_t>(s)] = std::stod(tok.substr(colon + 1));
    }
  }
  if (!p.well_formed()) fail("instance fails well-formedness checks");
  return p;
}

void save_instance(const Problem& p, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << serialize(p);
}

Problem load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize(buffer.str());
}

}  // namespace sofe::io
