#pragma once
// Evaluation topologies (Section VIII-A) and SOF problem-instance sampling.
//
// The paper evaluates on the IBM SoftLayer inter-data-center network
// (27 access nodes, 49 links, 17 data centers), the Cogent backbone
// (190 nodes, 260 links, 40 data centers), an Inet-generated synthetic
// network (5000 nodes, 10000 links, 2000 data centers), and a 14-node /
// 20-link experimental SDN testbed (Fig. 13).  The vendor maps are not
// redistributable, so we reconstruct deterministic topologies with exactly
// the published node/link/DC counts and geographic-style structure
// (DESIGN.md §3).  All generators are seed-deterministic.

#include <string>
#include <vector>

#include "sofe/core/problem.hpp"
#include "sofe/graph/graph.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::topology {

using core::Problem;
using graph::Cost;
using graph::Graph;
using graph::NodeId;

/// A bare network: access/backbone nodes plus the subset hosting DCs.
struct Topology {
  std::string name;
  Graph g;                       // link costs = geographic-style base lengths
  std::vector<NodeId> dc_nodes;  // data-center sites (VM attachment points)
};

/// IBM SoftLayer reconstruction: 27 nodes, 49 links, 17 DCs.
Topology softlayer();

/// Cogent reconstruction: 190 nodes, 260 links, 40 DCs.
Topology cogent();

/// Inet-style preferential-attachment synthetic network.
/// Defaults follow the paper: 5000 nodes, 10000 links, 2000 DCs.
Topology inet(int nodes = 5000, int links = 10000, int dcs = 2000,
              std::uint64_t seed = 1);

/// The 14-node / 20-link experimental SDN of Fig. 13.
Topology testbed14();

/// Simple generators for tests.
Topology ring(int nodes);
Topology grid(int rows, int cols);
Topology random_geometric(int nodes, double radius, std::uint64_t seed);

/// Parameters for turning a Topology into a SOF Problem instance, following
/// the one-time-deployment setup of Section VIII-A: VMs are attached to
/// random DCs by zero-cost access links, link costs follow the Fortz-Thorup
/// function of a random utilization in (0,1), and VM setup costs follow the
/// host-utilization model scaled by `setup_scale` (Fig. 11 sweeps it).
struct ProblemConfig {
  int num_vms = 25;
  int num_sources = 14;
  int num_destinations = 6;
  int chain_length = 3;
  double setup_scale = 1.0;   // the Fig. 11 "1x" baseline; at this ratio the
                              // optimum forest uses ~2 trees on SoftLayer,
                              // matching the paper's multi-tree regime
  std::uint64_t seed = 7;
  bool randomize_link_usage = true;  // false => keep base (geographic) costs
};

/// Samples a Problem on a copy of `topo`.  Sources and destinations are
/// distinct access nodes chosen uniformly at random; VM nodes are appended
/// to the graph.  Deterministic in (topo, cfg.seed).
Problem make_problem(const Topology& topo, const ProblemConfig& cfg);

}  // namespace sofe::topology
