#include "sofe/topology/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "sofe/costmodel/fortz_thorup.hpp"
#include "sofe/graph/dsu.hpp"
#include "sofe/graph/oracles.hpp"

namespace sofe::topology {

namespace {

struct City {
  const char* name;
  double x, y;  // abstract map coordinates (longitude/latitude-like)
  bool dc;
};

double dist(const City& a, const City& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Builds a connected geographic mesh: Euclidean MST + the shortest extra
/// links until `links` edges exist.  Deterministic.
Topology geographic_mesh(std::string name, const std::vector<City>& cities, int links) {
  const int n = static_cast<int>(cities.size());
  Topology t;
  t.name = std::move(name);
  t.g = Graph(n);
  for (NodeId v = 0; v < n; ++v) {
    if (cities[static_cast<std::size_t>(v)].dc) t.dc_nodes.push_back(v);
  }

  struct Cand {
    double d;
    NodeId u, v;
  };
  std::vector<Cand> cands;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      cands.push_back({dist(cities[static_cast<std::size_t>(u)],
                            cities[static_cast<std::size_t>(v)]),
                       u, v});
    }
  }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Cand& a, const Cand& b) { return a.d < b.d; });

  graph::DisjointSetUnion dsu(static_cast<std::size_t>(n));
  std::set<std::pair<NodeId, NodeId>> present;
  // Kruskal pass for connectivity.
  for (const Cand& c : cands) {
    if (dsu.unite(static_cast<std::size_t>(c.u), static_cast<std::size_t>(c.v))) {
      t.g.add_edge(c.u, c.v, c.d);
      present.insert({c.u, c.v});
    }
  }
  // Fill in the shortest remaining pairs up to the link budget.
  for (const Cand& c : cands) {
    if (t.g.edge_count() >= links) break;
    if (present.contains({c.u, c.v})) continue;
    t.g.add_edge(c.u, c.v, c.d);
    present.insert({c.u, c.v});
  }
  assert(t.g.edge_count() == links);
  assert(graph::is_connected(t.g));
  return t;
}

}  // namespace

Topology softlayer() {
  // 27 SoftLayer-era PoP/DC metros with abstract map coordinates (scaled
  // lon/lat); 17 of them host data centers — counts per the paper.
  static const std::vector<City> kCities = {
      {"Seattle", 2.0, 18.0, true},     {"SanJose", 1.0, 12.0, true},
      {"LosAngeles", 2.5, 9.0, false},  {"Denver", 9.0, 12.0, false},
      {"Dallas", 12.0, 7.0, true},      {"Houston", 12.5, 5.0, true},
      {"Chicago", 16.0, 14.0, true},    {"StLouis", 15.0, 11.0, false},
      {"Atlanta", 18.0, 7.5, true},     {"Miami", 20.5, 3.0, true},
      {"WashingtonDC", 20.5, 11.5, true}, {"NewYork", 21.5, 13.5, true},
      {"Boston", 22.5, 15.0, false},    {"Toronto", 18.5, 15.5, true},
      {"Montreal", 20.5, 17.0, false},  {"Mexico", 10.0, 1.0, false},
      {"London", 32.0, 18.0, true},     {"Amsterdam", 34.0, 19.0, true},
      {"Paris", 33.0, 16.5, true},      {"Frankfurt", 35.5, 17.0, false},
      {"Milan", 35.0, 14.5, true},      {"Singapore", 52.0, 2.0, true},
      {"HongKong", 54.0, 6.0, true},    {"Tokyo", 60.0, 11.0, true},
      {"Sydney", 62.0, -6.0, false},    {"Melbourne", 60.0, -8.0, false},
      {"SaoPaulo", 26.0, -6.0, false},
  };
  return geographic_mesh("SoftLayer", kCities, 49);
}

Topology cogent() {
  // 190 nodes across North America and Europe (Cogent's two footprints),
  // seeded deterministically; 40 DC metros.  Counts per the paper.
  util::Rng rng(0xC09E27);
  std::vector<City> cities;
  cities.reserve(190);
  // Two continental clusters roughly mirroring Cogent's map density:
  // 120 North-American nodes, 70 European nodes.
  for (int i = 0; i < 120; ++i) {
    cities.push_back(City{"na", rng.uniform(0.0, 26.0), rng.uniform(0.0, 16.0), false});
  }
  for (int i = 0; i < 70; ++i) {
    cities.push_back(City{"eu", rng.uniform(32.0, 46.0), rng.uniform(8.0, 20.0), false});
  }
  // 40 DCs: spread deterministically over both continents.
  util::Rng pick(0xD47ACE);
  const auto chosen = pick.sample_without_replacement(cities.size(), 40);
  for (std::size_t idx : chosen) cities[idx].dc = true;
  return geographic_mesh("Cogent", cities, 260);
}

Topology inet(int nodes, int links, int dcs, std::uint64_t seed) {
  assert(nodes >= 3 && links >= nodes - 1 && dcs <= nodes);
  util::Rng rng(seed ^ 0x1e37);
  Topology t;
  t.name = "Inet";
  t.g = Graph(nodes);

  // Preferential attachment on a small connected seed: heavy-tailed degrees
  // over a connected core, matching Inet's defining property at this scale.
  std::vector<NodeId> endpoint_pool;  // node repeated once per incident edge
  std::set<std::pair<NodeId, NodeId>> present;
  auto link = [&](NodeId u, NodeId v) {
    const auto key = Graph::edge_key(u, v);
    if (u == v || present.contains(key)) return false;
    present.insert(key);
    // Link length: mild random transmission cost; refined by make_problem.
    t.g.add_edge(u, v, rng.uniform(1.0, 2.0));
    endpoint_pool.push_back(u);
    endpoint_pool.push_back(v);
    return true;
  };
  link(0, 1);
  link(1, 2);
  link(2, 0);
  for (NodeId v = 3; v < nodes; ++v) {
    // Attach each newcomer to one preferential endpoint.
    while (true) {
      const NodeId target = endpoint_pool[rng.index(endpoint_pool.size())];
      if (link(v, target)) break;
    }
  }
  // Remaining links: preferential pairs.
  int guard = links * 64;
  while (t.g.edge_count() < links && guard-- > 0) {
    const NodeId u = endpoint_pool[rng.index(endpoint_pool.size())];
    const NodeId v = endpoint_pool[rng.index(endpoint_pool.size())];
    link(u, v);
  }
  // Extremely unlikely fallback: fill with uniform random pairs.
  while (t.g.edge_count() < links) {
    link(static_cast<NodeId>(rng.index(static_cast<std::size_t>(nodes))),
         static_cast<NodeId>(rng.index(static_cast<std::size_t>(nodes))));
  }

  const auto chosen = rng.sample_without_replacement(static_cast<std::size_t>(nodes),
                                                     static_cast<std::size_t>(dcs));
  t.dc_nodes.assign(chosen.begin(), chosen.end());
  std::sort(t.dc_nodes.begin(), t.dc_nodes.end());
  return t;
}

Topology testbed14() {
  // Fig. 13: 14 nodes, 20 links.  The published figure labels nodes 0-13;
  // we use a two-tier layout (core ring + access spurs) with 20 links.
  Topology t;
  t.name = "Testbed";
  t.g = Graph(14);
  const std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 1}, {0, 2},  {1, 2},  {1, 3},  {2, 4},  {3, 4},  {3, 5},
      {4, 6}, {5, 6},  {5, 7},  {6, 8},  {7, 8},  {7, 9},  {8, 10},
      {9, 11}, {10, 12}, {9, 10}, {11, 12}, {11, 13}, {12, 13},
  };
  for (const auto& [u, v] : edges) t.g.add_edge(u, v, 1.0);
  assert(t.g.edge_count() == 20);
  for (NodeId v = 0; v < 14; ++v) t.dc_nodes.push_back(v);  // any node may host a VNF
  return t;
}

Topology ring(int nodes) {
  Topology t;
  t.name = "Ring";
  t.g = Graph(nodes);
  for (NodeId v = 0; v < nodes; ++v) {
    t.g.add_edge(v, (v + 1) % nodes, 1.0);
    t.dc_nodes.push_back(v);
  }
  return t;
}

Topology grid(int rows, int cols) {
  Topology t;
  t.name = "Grid";
  t.g = Graph(rows * cols);
  auto id = [cols](int r, int c) { return static_cast<NodeId>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.g.add_edge(id(r, c), id(r, c + 1), 1.0);
      if (r + 1 < rows) t.g.add_edge(id(r, c), id(r + 1, c), 1.0);
      t.dc_nodes.push_back(id(r, c));
    }
  }
  return t;
}

Topology random_geometric(int nodes, double radius, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<City> cities;
  cities.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    cities.push_back(City{"p", rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0), true});
  }
  Topology t;
  t.name = "Geometric";
  t.g = Graph(nodes);
  for (NodeId u = 0; u < nodes; ++u) {
    t.dc_nodes.push_back(u);
    for (NodeId v = u + 1; v < nodes; ++v) {
      const double d = dist(cities[static_cast<std::size_t>(u)],
                            cities[static_cast<std::size_t>(v)]);
      if (d <= radius) t.g.add_edge(u, v, d);
    }
  }
  // Ensure connectivity by chaining components through nearest pairs.
  graph::DisjointSetUnion dsu(static_cast<std::size_t>(nodes));
  for (const auto& e : t.g.edges()) {
    dsu.unite(static_cast<std::size_t>(e.u), static_cast<std::size_t>(e.v));
  }
  for (NodeId v = 1; v < nodes; ++v) {
    if (!dsu.connected(0, static_cast<std::size_t>(v))) {
      t.g.add_edge(0, v, 1.0);
      dsu.unite(0, static_cast<std::size_t>(v));
    }
  }
  return t;
}

Problem make_problem(const Topology& topo, const ProblemConfig& cfg) {
  assert(cfg.num_vms >= 0 && !topo.dc_nodes.empty());
  util::Rng rng(cfg.seed ^ 0x50f);

  Problem p;
  p.network = topo.g;
  p.chain_length = cfg.chain_length;
  const NodeId n_access = topo.g.node_count();
  p.node_cost.assign(static_cast<std::size_t>(n_access), 0.0);
  p.is_vm.assign(static_cast<std::size_t>(n_access), 0);

  // Link costs: Fortz-Thorup of a random utilization in (0,1) (Section
  // VIII-A; capacity 100 Mb/s and demand 5 Mb/s give the same shape after
  // normalization because the cost function is homogeneous).
  if (cfg.randomize_link_usage) {
    for (graph::EdgeId e = 0; e < p.network.edge_count(); ++e) {
      const double usage = rng.uniform(0.01, 0.99);
      p.network.set_edge_cost(e, costmodel::fortz_thorup(usage, 1.0));
    }
  }

  // VMs: each is attached to a uniformly random DC by a zero-cost access
  // link; its setup cost follows the host-utilization model [48], scaled.
  for (int i = 0; i < cfg.num_vms; ++i) {
    const NodeId dc = topo.dc_nodes[rng.index(topo.dc_nodes.size())];
    const NodeId vm = p.network.add_node();
    p.network.add_edge(vm, dc, 0.0);
    const double host_util = rng.uniform(0.05, 0.95);
    p.node_cost.push_back(cfg.setup_scale * costmodel::fortz_thorup(host_util, 1.0));
    p.is_vm.push_back(1);
  }

  // Sources and destinations are drawn from two independent seeded
  // permutations of the access nodes ("chosen uniformly at random from the
  // nodes in the network"); a node may serve both roles, as in the paper —
  // SoftLayer's 27 nodes must fit |S| = 26 alongside |D| = 6.  Sweeping one
  // count at a fixed seed keeps the other set fixed and grows its own set
  // monotonically, which keeps parameter sweeps paired.
  assert(cfg.num_destinations <= n_access && cfg.num_sources <= n_access);
  util::Rng dest_rng(cfg.seed ^ 0xd15c0);
  util::Rng src_rng(cfg.seed * 0x9e3779b9ULL + 0x50face);
  std::vector<NodeId> dperm(static_cast<std::size_t>(n_access));
  for (NodeId v = 0; v < n_access; ++v) dperm[static_cast<std::size_t>(v)] = v;
  std::vector<NodeId> sperm = dperm;
  dest_rng.shuffle(dperm);
  src_rng.shuffle(sperm);
  for (int i = 0; i < cfg.num_destinations; ++i) {
    p.destinations.push_back(dperm[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < cfg.num_sources; ++i) {
    p.sources.push_back(sperm[static_cast<std::size_t>(i)]);
  }
  assert(p.well_formed());
  return p;
}

}  // namespace sofe::topology
