#pragma once
// Exact SOF solver (the paper's "CPLEX" comparator).
//
// Reduction (DESIGN.md §5): build the stage-expanded digraph L with nodes
// (v, j) = "data at v after j VNFs", arcs
//     (u,j) -> (v,j)   cost c(u,v)    (forwarding at stage j)
//     (v,j) -> (v,j+1) cost c(v)      (v ∈ M runs VNF j+1)
//     root  -> (s,0)   cost c_src(s)  (source selection; 0 by default)
// and terminals (d, |C|).  A minimum-cost subgraph of L connecting the root
// to every terminal is WLOG an arborescence whose cost equals the IP
// objective; we compute it exactly with a Dreyfus-Wagner-style dynamic
// program over destination subsets (3^|D| merges + 2^|D| Dijkstra sweeps).
//
// The layered relaxation may let one VM run two different VNFs (violating
// IP constraint (6)); a branch-and-bound wrapper then branches on the
// conflicted VM's allowed stage until the optimum is conflict-free.  The
// result is the exact optimum of the SOF problem.

#include <optional>

#include "sofe/core/forest.hpp"
#include "sofe/core/problem.hpp"

namespace sofe::exact {

using core::Cost;
using core::NodeId;
using core::Problem;
using core::ServiceForest;

struct ExactResult {
  Cost cost = graph::kInfiniteCost;
  ServiceForest forest;           // an optimal solution (for validation)
  int bnb_nodes = 1;              // branch-and-bound tree size
  bool optimal = false;           // false => infeasible or limits exceeded
};

struct ExactLimits {
  int max_destinations = 14;      // 2^|D| DP states
  int max_bnb_nodes = 4096;       // branch-tree size cap
  double max_seconds = 300.0;     // wall-clock cap; exceeded => not proven
  bool seed_with_heuristic = true;  // prime the incumbent with SOFDA's cost
                                    // so the branch tree prunes aggressively
};

/// Solves SOF exactly.  Practical for |D| <= ~12 on hundreds of nodes —
/// exactly the regime where the paper ran CPLEX (SoftLayer only).
ExactResult solve_exact(const Problem& p, const ExactLimits& limits = {});

}  // namespace sofe::exact
