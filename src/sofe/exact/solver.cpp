#include "sofe/exact/solver.hpp"

#include "sofe/core/sofda.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/util/stopwatch.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <map>
#include <queue>
#include <set>
#include <vector>

namespace sofe::exact {

namespace {

using graph::kInfiniteCost;

/// Stage-expanded digraph.  Node ids: (v, j) -> j * n + v for j in [0, L],
/// root = (L + 1) * n.  Arcs are stored flat with in/out adjacency.
struct Layered {
  struct Arc {
    int from, to;
    Cost cost;
    // For VNF arcs: the VM and 1-based stage it enables; -1 otherwise.
    NodeId vm = graph::kInvalidNode;
    int stage = -1;
  };

  int n = 0, layers = 0, root = 0, node_count = 0;
  std::vector<Arc> arcs;
  std::vector<std::vector<int>> out, in;

  int id(NodeId v, int j) const { return j * n + v; }

  void add_arc(int from, int to, Cost cost, NodeId vm = graph::kInvalidNode, int stage = -1) {
    const int a = static_cast<int>(arcs.size());
    arcs.push_back(Arc{from, to, cost, vm, stage});
    out[static_cast<std::size_t>(from)].push_back(a);
    in[static_cast<std::size_t>(to)].push_back(a);
  }
};

Layered build_layered(const Problem& p) {
  Layered L;
  L.n = p.network.node_count();
  L.layers = p.chain_length;
  L.node_count = (L.layers + 1) * L.n + 1;
  L.root = L.node_count - 1;
  L.out.resize(static_cast<std::size_t>(L.node_count));
  L.in.resize(static_cast<std::size_t>(L.node_count));

  for (int j = 0; j <= L.layers; ++j) {
    for (graph::EdgeId e = 0; e < p.network.edge_count(); ++e) {
      const auto& ed = p.network.edge(e);
      L.add_arc(L.id(ed.u, j), L.id(ed.v, j), ed.cost);
      L.add_arc(L.id(ed.v, j), L.id(ed.u, j), ed.cost);
    }
  }
  // Symmetry breaking for interchangeable VMs: VMs whose whole connectivity
  // is a single equal-cost tap onto the same node are mutually swappable, so
  // WLOG an optimum assigns the group's k-th cheapest VM to the k-th
  // smallest stage it serves — hence rank-k VMs (0-based) need no stage arcs
  // below stage k+1.  This prunes the branch-and-bound tree of
  // permutation-equivalent assignments without affecting the optimum value.
  std::map<NodeId, int> symmetry_rank;
  {
    std::map<std::pair<NodeId, long long>, std::vector<NodeId>> groups;
    for (NodeId v = 0; v < L.n; ++v) {
      if (!p.is_vm[static_cast<std::size_t>(v)]) continue;
      const auto nb = p.network.neighbors(v);
      if (nb.size() == 1) {
        const long long microcost =
            static_cast<long long>(p.network.edge(nb[0].edge).cost * 1e9);
        groups[{nb[0].to, microcost}].push_back(v);
      } else {
        symmetry_rank[v] = 0;
      }
    }
    for (auto& [key, members] : groups) {
      (void)key;
      std::stable_sort(members.begin(), members.end(), [&](NodeId a, NodeId b) {
        return p.node_cost[static_cast<std::size_t>(a)] < p.node_cost[static_cast<std::size_t>(b)];
      });
      for (std::size_t k = 0; k < members.size(); ++k) {
        symmetry_rank[members[k]] = static_cast<int>(k);
      }
    }
  }
  for (int j = 0; j + 1 <= L.layers; ++j) {
    for (NodeId v = 0; v < L.n; ++v) {
      if (p.is_vm[static_cast<std::size_t>(v)]) {
        if (j + 1 < symmetry_rank.at(v) + 1) continue;  // stage j+1 < rank+1
        L.add_arc(L.id(v, j), L.id(v, j + 1), p.node_cost[static_cast<std::size_t>(v)], v, j + 1);
      }
    }
  }
  std::set<NodeId> srcs(p.sources.begin(), p.sources.end());
  for (NodeId s : srcs) {
    L.add_arc(L.root, L.id(s, 0), p.source_cost(s));
  }
  return L;
}

/// Exact directed Steiner arborescence DP with an arc-disable mask.
/// Returns cost and the selected arc set (deduplicated).
struct DstResult {
  Cost cost = kInfiniteCost;
  std::vector<int> arcs;
};

class DstSolver {
 public:
  DstSolver(const Layered& L, const std::vector<int>& terminals)
      : L_(&L), terminals_(terminals) {
    const int t = static_cast<int>(terminals_.size());
    const std::uint32_t full = (1u << t) - 1u;
    const auto nodes = static_cast<std::size_t>(L_->node_count);
    val_.assign(full + 1, std::vector<Cost>(nodes, kInfiniteCost));
    dec_.assign(full + 1, std::vector<Decision>(nodes));
    for (std::uint32_t m = 1; m <= full; ++m) {
      if (std::popcount(m) >= 2) masks_.push_back(m);
    }
    std::stable_sort(masks_.begin(), masks_.end(), [](std::uint32_t a, std::uint32_t b) {
      return std::popcount(a) < std::popcount(b);
    });
  }

  /// Exact DP under the given arc-enable mask; buffers are reused across
  /// branch-and-bound nodes.
  DstResult solve(const std::vector<bool>& arc_enabled) {
    enabled_ = &arc_enabled;
    const int t = static_cast<int>(terminals_.size());
    const std::uint32_t full = (1u << t) - 1u;
    const auto nodes = static_cast<std::size_t>(L_->node_count);

    // Base: singleton subsets via backward Dijkstra from each terminal
    // (val[v] = cheapest v -> terminal path).
    for (int i = 0; i < t; ++i) {
      const std::uint32_t mask = 1u << i;
      std::fill(val_[mask].begin(), val_[mask].end(), kInfiniteCost);
      std::fill(dec_[mask].begin(), dec_[mask].end(), Decision{});
      val_[mask][static_cast<std::size_t>(terminals_[static_cast<std::size_t>(i)])] = 0.0;
      relax(mask);
    }
    for (std::uint32_t X : masks_) {
      std::fill(val_[X].begin(), val_[X].end(), kInfiniteCost);
      std::fill(dec_[X].begin(), dec_[X].end(), Decision{});
      const std::uint32_t low = X & (~X + 1u);
      for (std::uint32_t sub = (X - 1) & X; sub > 0; sub = (sub - 1) & X) {
        if (!(sub & low)) continue;
        const std::uint32_t rest = X ^ sub;
        for (std::size_t v = 0; v < nodes; ++v) {
          if (val_[sub][v] == kInfiniteCost || val_[rest][v] == kInfiniteCost) continue;
          const Cost c = val_[sub][v] + val_[rest][v];
          if (c < val_[X][v]) {
            val_[X][v] = c;
            dec_[X][v] = Decision{sub, -1};
          }
        }
      }
      relax(X);
    }

    DstResult res;
    res.cost = val_[full][static_cast<std::size_t>(L_->root)];
    if (res.cost == kInfiniteCost) return res;
    // Reconstruct the arc set.
    std::set<int> arcs;
    std::vector<std::pair<std::uint32_t, int>> stack{{full, L_->root}};
    while (!stack.empty()) {
      const auto [X, v] = stack.back();
      stack.pop_back();
      const Decision d = dec_[X][static_cast<std::size_t>(v)];
      if (d.split != 0) {
        stack.emplace_back(d.split, v);
        stack.emplace_back(X ^ d.split, v);
      } else if (d.via_arc >= 0) {
        arcs.insert(d.via_arc);
        stack.emplace_back(X, L_->arcs[static_cast<std::size_t>(d.via_arc)].to);
      }
      // split == 0 && via_arc < 0: v is the subset's terminal; done.
    }
    res.arcs.assign(arcs.begin(), arcs.end());
    return res;
  }

 private:
  struct Decision {
    std::uint32_t split = 0;  // nonzero => merge of (split, X^split) at v
    int via_arc = -1;         // >= 0 => follow this out-arc
  };

  /// Dijkstra sweep: val[v] = min(val[v], min over enabled arcs (v -> w) of
  /// arc.cost + val[w]).  Initial labels are the merge results.
  void relax(std::uint32_t X) {
    struct Item {
      Cost cost;
      int node;
      bool operator>(const Item& o) const noexcept {
        if (cost != o.cost) return cost > o.cost;
        return node > o.node;
      }
    };
    auto& val = val_[X];
    auto& dec = dec_[X];
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    for (std::size_t v = 0; v < val.size(); ++v) {
      if (val[v] < kInfiniteCost) heap.push({val[v], static_cast<int>(v)});
    }
    while (!heap.empty()) {
      const auto [c, w] = heap.top();
      heap.pop();
      if (c > val[static_cast<std::size_t>(w)]) continue;
      for (int a : L_->in[static_cast<std::size_t>(w)]) {
        if (!(*enabled_)[static_cast<std::size_t>(a)]) continue;
        const auto& arc = L_->arcs[static_cast<std::size_t>(a)];
        const Cost nc = c + arc.cost;
        if (nc < val[static_cast<std::size_t>(arc.from)]) {
          val[static_cast<std::size_t>(arc.from)] = nc;
          dec[static_cast<std::size_t>(arc.from)] = Decision{0, a};
          heap.push({nc, arc.from});
        }
      }
    }
  }

  const Layered* L_;
  std::vector<int> terminals_;
  const std::vector<bool>* enabled_ = nullptr;
  std::vector<std::uint32_t> masks_;
  std::vector<std::vector<Cost>> val_;
  std::vector<std::vector<Decision>> dec_;
};

/// Finds a VM that the arc set uses at two or more distinct stages.
/// Returns the VM and its used stages, or nullopt when conflict-free.
std::optional<std::pair<NodeId, std::vector<int>>> find_vnf_conflict(const Layered& L,
                                                                     const std::vector<int>& arcs) {
  std::map<NodeId, std::set<int>> used;
  for (int a : arcs) {
    const auto& arc = L.arcs[static_cast<std::size_t>(a)];
    if (arc.stage >= 1) used[arc.vm].insert(arc.stage);
  }
  std::optional<std::pair<NodeId, std::vector<int>>> out;
  for (const auto& [vm, stages] : used) {
    if (stages.size() >= 2) {
      out = {vm, std::vector<int>(stages.begin(), stages.end())};
      break;  // deterministic: lowest VM id
    }
  }
  return out;
}

/// Converts a conflict-free arborescence arc set into a ServiceForest.
ServiceForest forest_from_arcs(const Problem& p, const Layered& L, const std::vector<int>& arcs) {
  // parent arc per layered node (arborescence => unique; ties resolved by
  // first-seen during BFS from the root).
  std::vector<int> parent_arc(static_cast<std::size_t>(L.node_count), -1);
  std::vector<std::vector<int>> children(static_cast<std::size_t>(L.node_count));
  for (int a : arcs) {
    children[static_cast<std::size_t>(L.arcs[static_cast<std::size_t>(a)].from)].push_back(a);
  }
  std::vector<bool> reached(static_cast<std::size_t>(L.node_count), false);
  std::queue<int> q;
  q.push(L.root);
  reached[static_cast<std::size_t>(L.root)] = true;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int a : children[static_cast<std::size_t>(v)]) {
      const int to = L.arcs[static_cast<std::size_t>(a)].to;
      if (!reached[static_cast<std::size_t>(to)]) {
        reached[static_cast<std::size_t>(to)] = true;
        parent_arc[static_cast<std::size_t>(to)] = a;
        q.push(to);
      }
    }
  }

  ServiceForest f;
  for (NodeId d : p.destinations) {
    const int term = L.id(d, L.layers);
    assert(reached[static_cast<std::size_t>(term)]);
    // Trace root -> terminal, collecting graph nodes and VNF arcs.
    std::vector<int> rev_arcs;
    for (int v = term; parent_arc[static_cast<std::size_t>(v)] >= 0;
         v = L.arcs[static_cast<std::size_t>(parent_arc[static_cast<std::size_t>(v)])].from) {
      rev_arcs.push_back(parent_arc[static_cast<std::size_t>(v)]);
    }
    core::ChainWalk w;
    w.destination = d;
    for (auto it = rev_arcs.rbegin(); it != rev_arcs.rend(); ++it) {
      const auto& arc = L.arcs[static_cast<std::size_t>(*it)];
      if (arc.from == L.root) {
        w.source = arc.to % L.n;  // (s, 0)
        w.nodes.push_back(w.source);
      } else if (arc.stage >= 1) {
        // VNF arc: same graph node, next layer.
        w.vnf_pos.push_back(w.nodes.size() - 1);
      } else {
        w.nodes.push_back(arc.to % L.n);
      }
    }
    f.walks.push_back(std::move(w));
  }
  return f;
}

}  // namespace

ExactResult solve_exact(const Problem& p, const ExactLimits& limits) {
  assert(p.well_formed());
  ExactResult best;
  if (p.destinations.empty()) {
    best.cost = 0.0;
    best.optimal = true;
    return best;
  }
  if (static_cast<int>(p.destinations.size()) > limits.max_destinations) return best;

  const Layered L = build_layered(p);
  std::vector<int> terminals;
  std::set<NodeId> dset(p.destinations.begin(), p.destinations.end());
  for (NodeId d : dset) terminals.push_back(L.id(d, L.layers));

  // Prime the incumbent with a feasible heuristic solution: any B&B node
  // whose relaxation is not strictly better gets pruned immediately, which
  // collapses the branch tree on instances where the relaxation badly wants
  // one VM for several stages.  Correctness: the true optimum costs at most
  // the seed, so the strict `>=` prune never cuts it off; if nothing in the
  // tree beats the seed, the seed itself is optimal.
  if (limits.seed_with_heuristic) {
    const ServiceForest heuristic = core::sofda(p);
    if (!heuristic.empty() && core::is_feasible(p, heuristic)) {
      best.cost = core::total_cost(p, heuristic);
      best.forest = heuristic;
      best.optimal = true;  // revoked below if the search is truncated
    }
  }

  // Branch and bound over arc-enable masks: best-first on the parent's
  // relaxation bound, with mask memoization (the same restriction set is
  // reachable through many branch orders — deduplicating collapses the
  // tree), and one DP solver whose buffers are reused by every node.
  struct Node {
    Cost bound;  // parent's relaxation value (a valid lower bound)
    std::vector<bool> enabled;
    bool operator>(const Node& o) const noexcept { return bound > o.bound; }
  };
  std::priority_queue<Node, std::vector<Node>, std::greater<>> frontier;
  frontier.push(Node{0.0, std::vector<bool>(L.arcs.size(), true)});
  std::set<std::vector<bool>> visited;
  DstSolver solver(L, terminals);
  int explored = 0;
  bool truncated = false;

  const util::Stopwatch watch;
  while (!frontier.empty()) {
    if (explored >= limits.max_bnb_nodes || watch.seconds() > limits.max_seconds) {
      truncated = true;
      break;
    }
    Node node = std::move(const_cast<Node&>(frontier.top()));
    frontier.pop();
    if (node.bound >= best.cost) break;  // best-first: nothing better remains
    if (!visited.insert(node.enabled).second) continue;
    ++explored;

    const DstResult r = solver.solve(node.enabled);
    if (r.cost >= best.cost) continue;  // bound (also prunes infeasible)

    const auto conflict = find_vnf_conflict(L, r.arcs);
    if (!conflict) {
      best.cost = r.cost;
      best.forest = forest_from_arcs(p, L, r.arcs);
      best.optimal = true;
      continue;
    }
    // Branch: the conflicted VM may keep exactly one of its currently
    // enabled stages ("keep" children also admit solutions where the VM is
    // unused, so the children jointly cover every feasible completion).
    const NodeId vm = conflict->first;
    std::vector<int> enabled_stages;
    for (std::size_t a = 0; a < L.arcs.size(); ++a) {
      const auto& arc = L.arcs[a];
      if (arc.vm == vm && arc.stage >= 1 && node.enabled[a]) enabled_stages.push_back(arc.stage);
    }
    for (int keep : enabled_stages) {
      Node child{r.cost, node.enabled};
      for (std::size_t a = 0; a < L.arcs.size(); ++a) {
        const auto& arc = L.arcs[a];
        if (arc.vm == vm && arc.stage >= 1 && arc.stage != keep) child.enabled[a] = false;
      }
      if (!visited.contains(child.enabled)) frontier.push(std::move(child));
    }
  }
  best.bnb_nodes = explored;
  // Optimality is proven only when the frontier was exhausted or the best
  // remaining bound cannot beat the incumbent.
  if (truncated) best.optimal = false;
  return best;
}

}  // namespace sofe::exact
