#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component of the library (topology generators, workload
// samplers, simulation drivers) takes an explicit Rng so that a run is fully
// determined by its seed.  std::mt19937_64 is seeded through splitmix64 to
// decorrelate nearby seeds.

#include <cstdint>
#include <random>
#include <vector>

namespace sofe::util {

/// splitmix64 step; used to turn small consecutive seeds into well-spread
/// initial states.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic RNG wrapper with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    engine_.seed(splitmix64(s));
  }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform std::size_t in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Samples k distinct values from [0, n).  Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k) {
    // Floyd's algorithm: O(k) expected insertions, no O(n) shuffle.
    std::vector<std::size_t> out;
    out.reserve(k);
    std::vector<bool> seen(n, false);
    for (std::size_t j = n - k; j < n; ++j) {
      const std::size_t t = index(j + 1);
      if (!seen[t]) {
        seen[t] = true;
        out.push_back(t);
      } else {
        seen[j] = true;
        out.push_back(j);
      }
    }
    return out;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derives an independent child generator; useful for fanning a seed out to
  /// parallel experiment cells without correlating their streams.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sofe::util
