#pragma once
// Minimal fixed-width table printer used by the benchmark harnesses to emit
// paper-style tables and figure series on stdout.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace sofe::util {

/// Accumulates rows of string cells and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Appends a row; missing trailing cells render empty.
  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Formats a double with fixed precision (default one decimal, matching the
  /// paper's tables).
  static std::string num(double v, int precision = 1) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto line = [&] {
      os << '+';
      for (std::size_t c = 0; c < width.size(); ++c) {
        os << std::string(width[c] + 2, '-') << '+';
      }
      os << '\n';
    };
    auto emit = [&](const std::vector<std::string>& row) {
      os << '|';
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string{};
        os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << cell << " |";
      }
      os << '\n';
    };
    line();
    emit(header_);
    line();
    for (const auto& row : rows_) emit(row);
    line();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sofe::util
