#include "sofe/kstroll/instance.hpp"

#include <algorithm>
#include <cassert>

namespace sofe::kstroll {

StrollInstance build_stroll_instance(const Graph& g, const MetricClosure& closure, NodeId s,
                                     const std::vector<NodeId>& vms, NodeId u,
                                     const std::vector<Cost>& node_cost, Cost source_setup) {
  assert(g.valid_node(s) && g.valid_node(u));
  assert(std::find(vms.begin(), vms.end(), u) != vms.end() && "last VM must be in the VM set");
  assert(u != s && "the last VM must differ from the source");
  (void)g;  // consulted by the asserts only; the closure carries the distances

  StrollInstance inst;
  inst.source = s;
  inst.last_vm = u;
  inst.nodes.push_back(s);
  for (NodeId v : vms) {
    if (v != s) inst.nodes.push_back(v);  // V = M ∪ {s}; dedupe s if s ∈ M
  }
  const std::size_t n = inst.nodes.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (inst.nodes[i] == u) inst.last_index = i;
  }

  const Cost cu = node_cost[static_cast<std::size_t>(u)];
  auto setup = [&](NodeId v) { return node_cost[static_cast<std::size_t>(v)]; };

  inst.cost.assign(n, std::vector<Cost>(n, 0.0));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const NodeId v1 = inst.nodes[a];
      const NodeId v2 = inst.nodes[b];
      const Cost base = closure.distance(v1, v2);
      Cost share = 0.0;
      if (source_setup == 0.0) {
        // Main construction (Section IV).
        if (v1 == s) {
          share = (cu + setup(v2)) / 2.0;
        } else if (v2 == s) {
          share = (setup(v1) + cu) / 2.0;
        } else {
          share = (setup(v1) + setup(v2)) / 2.0;
        }
      } else {
        // Appendix D: the source cost c(s) is shared like the last VM's.
        const Cost cs = source_setup;
        const bool a_is_s = v1 == s, b_is_s = v2 == s;
        const bool a_is_u = v1 == u, b_is_u = v2 == u;
        if ((a_is_s && b_is_u) || (a_is_u && b_is_s)) {
          share = cs + cu;
        } else if (a_is_s) {
          share = (cs + cu + setup(v2)) / 2.0;
        } else if (b_is_s) {
          share = (setup(v1) + cs + cu) / 2.0;
        } else if (a_is_u) {
          share = (setup(v2) + cs + cu) / 2.0;
        } else if (b_is_u) {
          share = (setup(v1) + cs + cu) / 2.0;
        } else {
          share = (setup(v1) + setup(v2)) / 2.0;
        }
      }
      inst.cost[a][b] = inst.cost[b][a] = base + share;
    }
  }
  return inst;
}

}  // namespace sofe::kstroll
