#pragma once
// k-stroll solvers over a Procedure-1 metric instance.
//
// The k-stroll problem (Definition 2): find the cheapest walk from s to u
// visiting at least k distinct nodes.  In a metric instance an optimal
// solution is WLOG a simple path on exactly k nodes, so the solvers return an
// ordered selection of k distinct instance indices starting at the source
// and ending at the last VM.
//
// The paper invokes the 2-approximation of Chaudhuri et al. [29]; per
// DESIGN.md §3 we field a cheapest-insertion construction refined by
// 2-opt/or-opt/node-swap local search (the standard practical equivalent on
// metric instances — k = |C|+1 ≤ 8 in every experiment), plus an exact
// Held-Karp-style DP used as oracle and for small instances.

#include <optional>
#include <vector>

#include "sofe/kstroll/instance.hpp"

namespace sofe::kstroll {

/// Result: `order` holds instance indices, order.front() == 0 (the source),
/// order.back() == inst.last_index, all distinct, |order| == k.
struct Stroll {
  std::vector<std::size_t> order;
  Cost cost = graph::kInfiniteCost;

  bool feasible() const noexcept { return cost < graph::kInfiniteCost; }
};

enum class StrollAlgorithm {
  kCheapestInsertion,  // greedy insertion + local search (default)
  kExactDp,            // exact subset DP; instance size must be <= ~20
};

/// Solves for a stroll on exactly k distinct nodes (k >= 2).  Returns an
/// infeasible Stroll when the instance has fewer than k nodes.
Stroll solve_stroll(const StrollInstance& inst, int k,
                    StrollAlgorithm algo = StrollAlgorithm::kCheapestInsertion);

/// Exposed pieces for tests/ablation.
Stroll cheapest_insertion(const StrollInstance& inst, int k);
Stroll exact_dp(const StrollInstance& inst, int k);

/// In-place local search on a fixed-endpoint path: 2-opt segment reversal,
/// or-opt single-node relocation, and swap of a chosen interior node with an
/// unchosen instance node.  Never increases cost.
void improve_stroll(const StrollInstance& inst, Stroll& stroll);

}  // namespace sofe::kstroll
