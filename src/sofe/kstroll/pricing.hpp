#pragma once
// Incremental Procedure-1 instance assembly for repair-aware pricing
// (DESIGN.md §9).
//
// SOFDA prices every (source, last VM) pair on a Procedure-1 metric
// instance over V = M ∪ {s}.  Under the paper's main construction
// (source_setup == 0) the instance decomposes:
//
//   * the (VM, VM) sub-matrix — base distance plus the shared-setup term
//     (c(v1) + c(v2))/2 — depends on neither the source NOR the last VM,
//     so ONE dense block serves every pair of every source;
//   * the source row depends on the source (base distances d(s, ·)) and on
//     the last VM u (the (c(u) + c(v))/2 share), i.e. O(|M|) values per
//     pair instead of O(|M|²).
//
// build_stroll_instance recomputes the full matrix per pair — with one
// closure hash lookup per entry and |M|+1 vector allocations per call.  On
// an online arrival stream that construction dominates SOFDA's wall clock;
// the classes here assemble bitwise-identical instances (tested) from a
// session-cached block: SharedVmBlock is rebuilt only when a VM's setup
// cost or a closure row changed at a VM, InstanceAssembler copies it once
// per source and rewrites only the source row per last VM, reusing all
// storage.  core::PricingSession drives both across arrivals.

#include <vector>

#include "sofe/kstroll/instance.hpp"

namespace sofe::kstroll {

/// The source-independent (VM, VM) sub-matrix of every main-construction
/// Procedure-1 instance: values()[i * size() + j] is the instance edge cost
/// between vms[i] and vms[j] (0 on the diagonal).  Entry (i, j) with i < j
/// reads closure.tree(vms[i]) exactly like build_stroll_instance reads the
/// lower-indexed instance node's row, so the block is bitwise what the
/// per-pair build computes.
class SharedVmBlock {
 public:
  /// Rebuilds the block in place (storage reused).  `closure` must hold a
  /// tree for every node of `vms`; `node_cost[v]` is the setup cost c(v).
  void build(const MetricClosure& closure, const std::vector<NodeId>& vms,
             const std::vector<Cost>& node_cost);

  /// Drops the cached values; valid() turns false until the next build.
  void invalidate() noexcept { valid_ = false; }

  bool valid() const noexcept { return valid_; }

  /// Number of VMs the block covers (row/column count).
  std::size_t size() const noexcept { return m_; }

  /// Row-major size() x size() values; meaningful only while valid().
  const std::vector<Cost>& values() const noexcept { return values_; }

 private:
  std::vector<Cost> values_;
  std::size_t m_ = 0;
  bool valid_ = false;
};

/// Per-thread workspace that assembles the full StrollInstance for one
/// (source, last VM) pair from a SharedVmBlock: bind_source() copies the
/// block and reads the source's base distances once, with_last_vm()
/// rewrites only the source row/column and the last index.  The returned
/// instance is bitwise equal to
///   build_stroll_instance(g, closure, s, vms, u, node_cost, 0.0)
/// for every u (tested) — preconditions: s ∉ vms and zero source setup
/// (callers with s ∈ vms or Appendix-D source costs use the per-pair
/// builder instead).
class InstanceAssembler {
 public:
  /// Binds the workspace to source `s`: nodes become [s] + vms, the VM
  /// block is copied in, and d(s, vms[j]) is read from closure.tree(s).
  /// `block` must be valid and built over this same `vms`/`closure` state.
  void bind_source(const SharedVmBlock& block, const MetricClosure& closure,
                   const std::vector<NodeId>& vms, NodeId s);

  /// True after bind_source until the next bind_source (diagnostics).
  bool bound() const noexcept { return bound_; }

  /// Rewrites the source row for last VM `u` (instance index `vm_index`+1
  /// into the bound vms order) and returns the assembled instance.  The
  /// reference is invalidated by the next with_last_vm/bind_source call.
  const StrollInstance& with_last_vm(std::size_t vm_index, NodeId u,
                                     const std::vector<Cost>& node_cost);

 private:
  StrollInstance inst_;
  std::vector<Cost> base_row_;  // d(s, vms[j]), read once per bind
  bool bound_ = false;
};

}  // namespace sofe::kstroll
