#include "sofe/kstroll/solver.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>

namespace sofe::kstroll {

namespace {

constexpr std::size_t kSourceIndex = 0;

Cost recompute(const StrollInstance& inst, const std::vector<std::size_t>& order) {
  Cost sum = 0.0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) sum += inst.edge_cost(order[i], order[i + 1]);
  return sum;
}

}  // namespace

Stroll cheapest_insertion(const StrollInstance& inst, int k) {
  assert(k >= 2);
  const std::size_t n = inst.size();
  if (n < static_cast<std::size_t>(k) || inst.last_index == kSourceIndex) return {};

  Stroll s;
  s.order = {kSourceIndex, inst.last_index};
  std::vector<bool> used(n, false);
  used[kSourceIndex] = used[inst.last_index] = true;

  while (s.order.size() < static_cast<std::size_t>(k)) {
    // Pick (node, gap) with minimal insertion delta.
    Cost best_delta = graph::kInfiniteCost;
    std::size_t best_node = n, best_gap = 0;
    for (std::size_t x = 0; x < n; ++x) {
      if (used[x]) continue;
      for (std::size_t gap = 0; gap + 1 < s.order.size(); ++gap) {
        const std::size_t a = s.order[gap];
        const std::size_t b = s.order[gap + 1];
        const Cost delta = inst.edge_cost(a, x) + inst.edge_cost(x, b) - inst.edge_cost(a, b);
        if (delta < best_delta) {
          best_delta = delta;
          best_node = x;
          best_gap = gap;
        }
      }
    }
    assert(best_node < n);
    s.order.insert(s.order.begin() + static_cast<std::ptrdiff_t>(best_gap) + 1, best_node);
    used[best_node] = true;
  }
  s.cost = recompute(inst, s.order);
  improve_stroll(inst, s);
  return s;
}

void improve_stroll(const StrollInstance& inst, Stroll& s) {
  const std::size_t n = inst.size();
  const std::size_t m = s.order.size();
  if (m < 3) return;
  std::vector<bool> used(n, false);
  for (std::size_t x : s.order) used[x] = true;

  constexpr Cost kEps = 1e-12;
  bool improved = true;
  int guard = 256;  // steepest-descent passes; tiny instances converge fast
  while (improved && guard-- > 0) {
    improved = false;
    // 2-opt: reverse interior segment [i, j].
    for (std::size_t i = 1; i + 1 < m; ++i) {
      for (std::size_t j = i; j + 1 < m; ++j) {
        const Cost before = inst.edge_cost(s.order[i - 1], s.order[i]) +
                            inst.edge_cost(s.order[j], s.order[j + 1]);
        const Cost after = inst.edge_cost(s.order[i - 1], s.order[j]) +
                           inst.edge_cost(s.order[i], s.order[j + 1]);
        if (after + kEps < before) {
          std::reverse(s.order.begin() + static_cast<std::ptrdiff_t>(i),
                       s.order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
          improved = true;
        }
      }
    }
    // or-opt: relocate one interior node to another gap.
    for (std::size_t i = 1; i + 1 < m && !improved; ++i) {
      const Cost remove_gain = inst.edge_cost(s.order[i - 1], s.order[i]) +
                               inst.edge_cost(s.order[i], s.order[i + 1]) -
                               inst.edge_cost(s.order[i - 1], s.order[i + 1]);
      for (std::size_t gap = 0; gap + 1 < m; ++gap) {
        if (gap == i - 1 || gap == i) continue;
        const Cost insert_cost = inst.edge_cost(s.order[gap], s.order[i]) +
                                 inst.edge_cost(s.order[i], s.order[gap + 1]) -
                                 inst.edge_cost(s.order[gap], s.order[gap + 1]);
        if (insert_cost + kEps < remove_gain) {
          const std::size_t node = s.order[i];
          s.order.erase(s.order.begin() + static_cast<std::ptrdiff_t>(i));
          const std::size_t g = gap > i ? gap - 1 : gap;
          s.order.insert(s.order.begin() + static_cast<std::ptrdiff_t>(g) + 1, node);
          improved = true;
          break;
        }
      }
    }
    // node swap: replace a chosen interior node with an unchosen one.
    for (std::size_t i = 1; i + 1 < m && !improved; ++i) {
      const Cost here = inst.edge_cost(s.order[i - 1], s.order[i]) +
                        inst.edge_cost(s.order[i], s.order[i + 1]);
      for (std::size_t x = 0; x < n; ++x) {
        if (used[x]) continue;
        const Cost there = inst.edge_cost(s.order[i - 1], x) + inst.edge_cost(x, s.order[i + 1]);
        if (there + kEps < here) {
          used[s.order[i]] = false;
          used[x] = true;
          s.order[i] = x;
          improved = true;
          break;
        }
      }
    }
  }
  s.cost = recompute(inst, s.order);
}

Stroll exact_dp(const StrollInstance& inst, int k) {
  assert(k >= 2);
  const std::size_t n = inst.size();
  if (n < static_cast<std::size_t>(k) || inst.last_index == kSourceIndex) return {};
  if (k == 2) {
    Stroll s;
    s.order = {kSourceIndex, inst.last_index};
    s.cost = inst.edge_cost(kSourceIndex, inst.last_index);
    return s;
  }

  // Interior candidates: everything except source and last VM.
  std::vector<std::size_t> cand;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != kSourceIndex && i != inst.last_index) cand.push_back(i);
  }
  const std::size_t c = cand.size();
  assert(c <= 22 && "exact_dp is exponential in instance size");
  const std::size_t need = static_cast<std::size_t>(k) - 2;  // interior nodes to pick
  if (c < need) return {};

  // dp[mask][j] = cheapest path source -> (visits exactly `mask`) -> cand[j].
  const std::uint32_t full = (1u << c) - 1u;
  std::vector<std::vector<Cost>> dp(full + 1, std::vector<Cost>(c, graph::kInfiniteCost));
  std::vector<std::vector<std::int8_t>> pre(full + 1, std::vector<std::int8_t>(c, -1));
  for (std::size_t j = 0; j < c; ++j) {
    dp[1u << j][j] = inst.edge_cost(kSourceIndex, cand[j]);
  }
  Cost best = graph::kInfiniteCost;
  std::uint32_t best_mask = 0;
  std::size_t best_last = 0;
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    const int pc = std::popcount(mask);
    if (static_cast<std::size_t>(pc) > need) continue;
    for (std::size_t j = 0; j < c; ++j) {
      if (!(mask & (1u << j)) || dp[mask][j] == graph::kInfiniteCost) continue;
      if (static_cast<std::size_t>(pc) == need) {
        const Cost total = dp[mask][j] + inst.edge_cost(cand[j], inst.last_index);
        if (total < best) {
          best = total;
          best_mask = mask;
          best_last = j;
        }
        continue;
      }
      for (std::size_t x = 0; x < c; ++x) {
        if (mask & (1u << x)) continue;
        const Cost nd = dp[mask][j] + inst.edge_cost(cand[j], cand[x]);
        const std::uint32_t nm = mask | (1u << x);
        if (nd < dp[nm][x]) {
          dp[nm][x] = nd;
          pre[nm][x] = static_cast<std::int8_t>(j);
        }
      }
    }
  }
  if (best == graph::kInfiniteCost) return {};

  Stroll s;
  s.cost = best;
  std::vector<std::size_t> rev{inst.last_index};
  std::uint32_t mask = best_mask;
  std::size_t j = best_last;
  while (true) {
    rev.push_back(cand[j]);
    const std::int8_t p = pre[mask][j];
    mask ^= (1u << j);
    if (p < 0) break;
    j = static_cast<std::size_t>(p);
  }
  rev.push_back(kSourceIndex);
  s.order.assign(rev.rbegin(), rev.rend());
  assert(s.order.size() == static_cast<std::size_t>(k));
  return s;
}

Stroll solve_stroll(const StrollInstance& inst, int k, StrollAlgorithm algo) {
  switch (algo) {
    case StrollAlgorithm::kCheapestInsertion:
      return cheapest_insertion(inst, k);
    case StrollAlgorithm::kExactDp:
      return exact_dp(inst, k);
  }
  return {};
}

}  // namespace sofe::kstroll
