#pragma once
// Procedure 1 of the paper: construction of the k-stroll metric instance.
//
// Given network G, source s, VM set M and a designated last VM u, the
// instance is the complete graph over V = M ∪ {s} whose edge costs embed both
// shortest-path connection costs and *shared* VM setup costs:
//
//   c(v1, v2) = d_G(v1, v2) + (c(u) + c(v2))/2          if v1 = s
//               d_G(v1, v2) + (c(v1) + c(u))/2          if v2 = s
//               d_G(v1, v2) + (c(v1) + c(v2))/2         otherwise
//
// so that the cost of any simple s→u path visiting nodes s=u1,…,uk=u in the
// instance telescopes to  Σ setup(u2..uk) + Σ d_G(uj, uj+1)  — exactly the
// setup + connection cost of the corresponding service-chain walk in G
// (Section IV, "first characteristic").  Appendix D extends the sharing rule
// when the source itself carries a setup cost c(s).
//
// Lemma 1: these edge costs satisfy the triangle inequality (tested).

#include <cassert>
#include <vector>

#include "sofe/graph/graph.hpp"
#include "sofe/graph/metric_closure.hpp"

namespace sofe::kstroll {

using graph::Cost;
using graph::Graph;
using graph::MetricClosure;
using graph::NodeId;

/// Dense metric k-stroll instance ("G-cal" in the paper).
struct StrollInstance {
  NodeId source = graph::kInvalidNode;   // s in G
  NodeId last_vm = graph::kInvalidNode;  // u in G
  std::vector<NodeId> nodes;             // instance nodes; nodes[0] == s
  std::size_t last_index = 0;            // index of u in `nodes`
  std::vector<std::vector<Cost>> cost;   // dense symmetric cost matrix

  std::size_t size() const noexcept { return nodes.size(); }

  Cost edge_cost(std::size_t a, std::size_t b) const {
    assert(a < size() && b < size());
    return cost[a][b];
  }

  /// Cost of a simple path through instance indices (diagnostics/tests).
  Cost path_cost(const std::vector<std::size_t>& order) const {
    Cost sum = 0.0;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) sum += edge_cost(order[i], order[i + 1]);
    return sum;
  }
};

/// Builds the Procedure-1 instance.
///
/// `closure` must contain Dijkstra trees for s and every VM in `vms`.
/// `node_cost[v]` is the setup cost c(v).  `source_setup` is the Appendix-D
/// source cost c(s) (0 reproduces the paper's main construction).
/// Requires: u ∈ vms, u != s, and all of vms ∪ {s} reachable from s.
StrollInstance build_stroll_instance(const Graph& g, const MetricClosure& closure, NodeId s,
                                     const std::vector<NodeId>& vms, NodeId u,
                                     const std::vector<Cost>& node_cost,
                                     Cost source_setup = 0.0);

}  // namespace sofe::kstroll
