#include "sofe/kstroll/pricing.hpp"

#include <algorithm>
#include <cassert>

namespace sofe::kstroll {

void SharedVmBlock::build(const MetricClosure& closure, const std::vector<NodeId>& vms,
                          const std::vector<Cost>& node_cost) {
  m_ = vms.size();
  values_.assign(m_ * m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    // One tree lookup per ROW (the per-pair builder pays one per entry);
    // entry (i, j < i) was already written by row j's pass.
    const auto& row = closure.tree(vms[i]);
    const Cost ci = node_cost[static_cast<std::size_t>(vms[i])];
    for (std::size_t j = i + 1; j < m_; ++j) {
      // Exactly build_stroll_instance's arithmetic for a VM pair: base
      // distance from the lower-indexed node's tree plus the shared setup.
      const Cost base = row.distance(vms[j]);
      const Cost share = (ci + node_cost[static_cast<std::size_t>(vms[j])]) / 2.0;
      values_[i * m_ + j] = values_[j * m_ + i] = base + share;
    }
  }
  valid_ = true;
}

void InstanceAssembler::bind_source(const SharedVmBlock& block, const MetricClosure& closure,
                                    const std::vector<NodeId>& vms, NodeId s) {
  assert(block.valid() && block.size() == vms.size());
  assert(std::find(vms.begin(), vms.end(), s) == vms.end() &&
         "sources inside the VM set use the per-pair builder");
  const std::size_t m = vms.size();
  const std::size_t n = m + 1;

  inst_.source = s;
  inst_.last_vm = graph::kInvalidNode;
  inst_.last_index = 0;
  inst_.nodes.clear();
  inst_.nodes.reserve(n);
  inst_.nodes.push_back(s);
  inst_.nodes.insert(inst_.nodes.end(), vms.begin(), vms.end());

  inst_.cost.resize(n);
  for (auto& row : inst_.cost) row.resize(n);
  inst_.cost[0][0] = 0.0;
  const std::vector<Cost>& block_values = block.values();
  for (std::size_t i = 0; i < m; ++i) {
    std::copy(block_values.begin() + static_cast<std::ptrdiff_t>(i * m),
              block_values.begin() + static_cast<std::ptrdiff_t>((i + 1) * m),
              inst_.cost[i + 1].begin() + 1);
  }

  const auto& source_tree = closure.tree(s);
  base_row_.resize(m);
  for (std::size_t j = 0; j < m; ++j) base_row_[j] = source_tree.distance(vms[j]);
  bound_ = true;
}

const StrollInstance& InstanceAssembler::with_last_vm(std::size_t vm_index, NodeId u,
                                                      const std::vector<Cost>& node_cost) {
  assert(bound_ && "bind_source first");
  assert(vm_index + 1 < inst_.nodes.size() && inst_.nodes[vm_index + 1] == u);
  const std::size_t m = inst_.nodes.size() - 1;
  const Cost cu = node_cost[static_cast<std::size_t>(u)];
  for (std::size_t j = 0; j < m; ++j) {
    // build_stroll_instance's v1 == s branch: base + (c(u) + c(v2)) / 2.
    const Cost share = (cu + node_cost[static_cast<std::size_t>(inst_.nodes[j + 1])]) / 2.0;
    inst_.cost[0][j + 1] = inst_.cost[j + 1][0] = base_row_[j] + share;
  }
  inst_.last_vm = u;
  inst_.last_index = vm_index + 1;
  return inst_;
}

}  // namespace sofe::kstroll
