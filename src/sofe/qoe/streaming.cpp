#include "sofe/qoe/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "sofe/costmodel/fortz_thorup.hpp"

namespace sofe::qoe {

using graph::EdgeId;
using graph::NodeId;

StreamingConfig profile_ours() {
  StreamingConfig cfg;
  cfg.base_setup_s = 2.5;       // hardware OpenFlow rule installation + codec
  cfg.startup_buffer_s = 2.5;
  cfg.stall_overhead_s = 0.8;
  cfg.seed = 3;
  return cfg;
}

StreamingConfig profile_emulab() {
  StreamingConfig cfg;
  cfg.base_setup_s = 1.2;       // software switches start faster
  cfg.startup_buffer_s = 2.0;
  cfg.stall_overhead_s = 0.6;
  cfg.seed = 4;
  return cfg;
}

namespace {

/// Shared core: one playback evaluation against a capacity lookup.
StreamingResult evaluate_against(
    const ServiceForest& f, const StreamingConfig& cfg,
    const std::map<std::pair<NodeId, NodeId>, int>& copies,
    const std::map<std::pair<NodeId, NodeId>, double>& capacity) {
  StreamingResult out;
  double startup_sum = 0.0, rebuffer_sum = 0.0, throughput_sum = 0.0;
  int samples = 0, stalled = 0;
  for (const core::ChainWalk& w : f.walks) {
    double rate = 1e9;
    for (std::size_t i = 0; i + 1 < w.nodes.size(); ++i) {
      const auto key = graph::Graph::edge_key(w.nodes[i], w.nodes[i + 1]);
      const auto it = copies.find(key);
      if (it == copies.end()) continue;
      rate = std::min(rate, capacity.at(key) / it->second);
    }
    rate = std::min(rate, cfg.max_link_mbps);
    const double startup = cfg.base_setup_s + cfg.startup_buffer_s * cfg.bitrate_mbps / rate;
    double rebuffer = 0.0;
    if (rate < cfg.bitrate_mbps) {
      rebuffer = cfg.duration_s * (cfg.bitrate_mbps - rate) / rate;
      rebuffer += std::ceil(rebuffer / 10.0) * cfg.stall_overhead_s;
      ++stalled;
    }
    startup_sum += startup;
    rebuffer_sum += rebuffer;
    throughput_sum += rate;
    ++samples;
  }
  if (samples > 0) {
    out.avg_startup_latency_s = startup_sum / samples;
    out.avg_rebuffering_s = rebuffer_sum / samples;
    out.avg_throughput_mbps = throughput_sum / samples;
    out.stall_fraction = static_cast<double>(stalled) / samples;
  }
  return out;
}

std::map<std::pair<NodeId, NodeId>, int> count_copies(const Problem& p, const ServiceForest& f,
                                                      EdgeId physical) {
  std::map<std::pair<NodeId, NodeId>, int> copies;
  for (const auto& se : f.stage_edges()) {
    const EdgeId e = p.network.find_edge(se.u, se.v);
    if (e < physical) ++copies[{se.u, se.v}];
  }
  return copies;
}

}  // namespace

std::vector<double> price_links_by_capacity(Problem& p, int physical_edges,
                                            const StreamingConfig& cfg, util::Rng& rng) {
  std::vector<double> capacity(static_cast<std::size_t>(physical_edges));
  for (EdgeId e = 0; e < physical_edges; ++e) {
    capacity[static_cast<std::size_t>(e)] = rng.uniform(cfg.min_link_mbps, cfg.max_link_mbps);
    // Cost of pushing the stream across this link at its available capacity;
    // a nearly-saturated link prices itself out (Section VII-B).
    p.network.set_edge_cost(
        e, costmodel::fortz_thorup(cfg.bitrate_mbps, capacity[static_cast<std::size_t>(e)]));
  }
  return capacity;
}

StreamingResult evaluate_streaming_fixed(const Problem& p, const ServiceForest& f,
                                         const StreamingConfig& cfg,
                                         const std::vector<double>& capacity_mbps) {
  StreamingResult out;
  if (f.empty()) return out;
  const EdgeId physical = static_cast<EdgeId>(capacity_mbps.size());
  const auto copies = count_copies(p, f, physical);
  std::map<std::pair<NodeId, NodeId>, double> capacity;
  for (const auto& [key, n] : copies) {
    (void)n;
    const EdgeId e = p.network.find_edge(key.first, key.second);
    capacity[key] = capacity_mbps[static_cast<std::size_t>(e)];
  }
  return evaluate_against(f, cfg, copies, capacity);
}

StreamingResult evaluate_streaming(const Problem& p, const ServiceForest& f,
                                   const StreamingConfig& cfg) {
  StreamingResult out;
  if (f.empty()) return out;
  util::Rng rng(cfg.seed ^ 0x90e);
  const EdgeId physical = cfg.physical_edges < 0
                              ? p.network.edge_count()
                              : static_cast<EdgeId>(cfg.physical_edges);
  const auto copies = count_copies(p, f, physical);

  double startup = 0.0, rebuffer = 0.0, throughput = 0.0, stalls = 0.0;
  for (int trial = 0; trial < cfg.trials; ++trial) {
    std::map<std::pair<NodeId, NodeId>, double> capacity;
    for (const auto& [key, n] : copies) {
      (void)n;
      capacity[key] = rng.uniform(cfg.min_link_mbps, cfg.max_link_mbps);
    }
    const StreamingResult one = evaluate_against(f, cfg, copies, capacity);
    startup += one.avg_startup_latency_s;
    rebuffer += one.avg_rebuffering_s;
    throughput += one.avg_throughput_mbps;
    stalls += one.stall_fraction;
  }
  if (cfg.trials > 0) {
    out.avg_startup_latency_s = startup / cfg.trials;
    out.avg_rebuffering_s = rebuffer / cfg.trials;
    out.avg_throughput_mbps = throughput / cfg.trials;
    out.stall_fraction = stalls / cfg.trials;
  }
  return out;
}

}  // namespace sofe::qoe
