#pragma once
// Flow-level streaming QoE emulation (Table II substitute; see DESIGN.md §3).
//
// The paper streams a 137 s full-HD H.264 video at 8 Mb/s over the embedded
// forest in a 14-node testbed whose links fluctuate between 4.5 and 9 Mb/s,
// and measures startup latency and total re-buffering time with VLC.  We
// reproduce the mechanism that differentiates the algorithms: the embedding
// decides how many stream copies cross each link, the bottleneck share
// determines each destination's sustainable download rate, and a playout
// buffer model converts rates into startup latency and stall time.

#include <string>
#include <vector>

#include "sofe/core/forest.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::qoe {

using core::Cost;
using core::Problem;
using core::ServiceForest;

struct StreamingConfig {
  double bitrate_mbps = 8.0;     // H.264 full-HD test stream
  double duration_s = 137.0;     // test video length
  double min_link_mbps = 4.5;    // congested-testbed range
  double max_link_mbps = 9.0;
  double startup_buffer_s = 2.0;  // playout buffer filled before start
  double base_setup_s = 1.0;      // signaling/codec init per profile
  double stall_overhead_s = 0.5;  // per re-buffering event
  int trials = 200;               // link-capacity resamples
  std::uint64_t seed = 3;
  int physical_edges = -1;  // edges [0, physical_edges) carry capacity
                            // constraints; -1 = all edges (VM taps included)
};

/// Table II calibration profiles.
StreamingConfig profile_ours();    // HP OpenFlow testbed ("Ours")
StreamingConfig profile_emulab();  // Emulab

struct StreamingResult {
  double avg_startup_latency_s = 0.0;
  double avg_rebuffering_s = 0.0;
  double avg_throughput_mbps = 0.0;
  double stall_fraction = 0.0;  // fraction of (trial, destination) pairs stalled
};

/// Evaluates the forest under the streaming model, resampling link
/// capacities per trial.
StreamingResult evaluate_streaming(const Problem& p, const ServiceForest& f,
                                   const StreamingConfig& cfg);

/// Evaluates against a FIXED per-physical-edge capacity vector (one trial).
/// Used by the Table II harness, where the same capacities first price the
/// embedding and then carry the stream.
StreamingResult evaluate_streaming_fixed(const Problem& p, const ServiceForest& f,
                                         const StreamingConfig& cfg,
                                         const std::vector<double>& capacity_mbps);

/// Congestion-aware pricing for the Table II harness: assigns every physical
/// edge the Fortz-Thorup cost of carrying `bitrate` on its capacity, so the
/// embedding "sees" the congestion the stream will meet.  Returns the
/// sampled capacities (indexed by edge id) for evaluate_streaming_fixed.
std::vector<double> price_links_by_capacity(Problem& p, int physical_edges,
                                            const StreamingConfig& cfg, util::Rng& rng);

}  // namespace sofe::qoe
