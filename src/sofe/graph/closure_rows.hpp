#pragma once
// Slab-backed row storage for MetricClosure (DESIGN.md §13).
//
// A closure row is one hub's shortest-path tree stored structure-of-arrays:
// a dist row of node_count Cost entries and an idx row of 2 * node_count
// int32 entries (parents first, then parent edges).  Rows live inside
// fixed-capacity slabs shared through shared_ptr, which buys three things
// over the per-tree std::vector layout this replaces:
//
//   * builds and refreshes write cache-linearly into a handful of large
//     allocations instead of one small heap block per hub, and the whole
//     closure footprint is measurable (memory_bytes) and compact;
//   * rows can alias: a zero-cost tap's dist row IS its host's dist row
//     bit for bit (0 + d == d), so tap hubs share the host's dist slab row
//     and pay only for their 2n-int32 idx row — the dominant share of a
//     SOFDA hub set (vms_per_dc taps per DC) at roughly half the bytes;
//   * published closure epochs (api::ClosureSession::publish) snapshot by
//     copying row references and pinning their slabs, instead of deep
//     copies.  The live closure copies a row out of a pinned slab before
//     its next in-place write (copy-on-write), so an epoch's rows stay
//     bitwise frozen while the live side keeps repairing.
//
// Threading contract: allocation, release, pinning and copy-on-write all
// happen in single-threaded planning phases (MetricClosure's serial
// sections, the session's publish/retire).  Parallel build/refresh workers
// only write through row pointers handed out by the plan — slabs are
// allocated at full capacity up front, so those pointers are stable.

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "sofe/graph/graph.hpp"

namespace sofe::graph {

class RowStore {
 public:
  /// Rows per slab.  Small enough that retain()-evicted working sets free
  /// whole slabs eventually, large enough that a Cogent-scale closure sits
  /// in a handful of allocations.
  static constexpr std::size_t kRowsPerSlab = 8;

  template <typename T>
  struct Slab {
    std::vector<T> data;  // sized at creation; never reallocates
    /// Published-epoch pin count (ClosureSession::publish snapshots).  A
    /// pinned slab's existing rows are read-only for the live closure:
    /// in-place writes relocate first (copy-on-write), and freed rows in
    /// it are not recycled until every pin is released.  Mutated only on
    /// the single-threaded publish/plan path.
    int pins = 0;
  };
  using DistSlab = Slab<Cost>;
  using IdxSlab = Slab<std::int32_t>;

  /// Reference to one dist row (node_count Cost entries).  `at` is the
  /// element offset inside the slab, so two refs alias exactly when their
  /// (slab, at) pairs match.
  struct DistRef {
    std::shared_ptr<DistSlab> slab;
    std::uint32_t at = 0;
    Cost* get() const { return slab->data.data() + at; }
    bool aliases(const DistRef& o) const { return slab == o.slab && at == o.at; }
    explicit operator bool() const { return slab != nullptr; }
  };
  /// Reference to one idx row (2 * node_count int32: parents, then
  /// parent edges).
  struct IdxRef {
    std::shared_ptr<IdxSlab> slab;
    std::uint32_t at = 0;
    std::int32_t* get() const { return slab->data.data() + at; }
    explicit operator bool() const { return slab != nullptr; }
  };

  /// (Re)binds the store to a row width of `node_count` entries.  A width
  /// change drops the open slabs and free lists — outstanding epoch
  /// references keep their slabs alive through their own shared_ptrs.
  void reset(std::size_t node_count);

  std::size_t node_count() const noexcept { return n_; }

  /// Allocates a row, preferring a freed row whose slab holds no epoch
  /// pins, else carving from the open slab.  Contents are unspecified
  /// (every caller fully overwrites).
  DistRef alloc_dist();
  IdxRef alloc_idx();

  /// Returns a row to the free list.  The caller guarantees no other live
  /// closure row references it; epoch snapshots may still — the row is
  /// simply not recycled until its slab's pins drop to zero.
  void release(DistRef ref);
  void release(IdxRef ref);

  /// Folds the store-owned allocations (open slabs, free-list slabs) into
  /// a byte tally, deduplicating against `seen` (slab addresses already
  /// counted by the caller's walk over live rows).
  void account(std::unordered_set<const void*>& seen, std::size_t& bytes) const;

 private:
  std::size_t n_ = 0;
  std::shared_ptr<DistSlab> open_dist_;
  std::size_t open_dist_used_ = 0;  // rows carved from open_dist_
  std::shared_ptr<IdxSlab> open_idx_;
  std::size_t open_idx_used_ = 0;
  std::vector<DistRef> free_dist_;
  std::vector<IdxRef> free_idx_;
};

}  // namespace sofe::graph
