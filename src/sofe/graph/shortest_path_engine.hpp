#pragma once
// Reusable shortest-path engine over the CSR adjacency view (DESIGN.md §2).
//
// Every solver layer in this library — Procedure-1 metric instances,
// KMB/Mehlhorn Steiner, SOFDA pricing, the distributed distance oracle, the
// dynamic-forest operations — bottoms out in Dijkstra.  The free functions in
// dijkstra.hpp allocate three O(V) arrays plus a heap per call; on the hot
// paths (metric closures over dozens of hubs, per-segment shortening sweeps,
// online arrival streams) that allocation dominates.  The engine owns the
// workspaces once and reuses them across queries:
//
//   * result arrays are reset via a touched-node list, so a bounded or
//     targeted query that settles k nodes costs O(k log k), not O(V);
//   * the binary heap keeps its capacity between runs — zero allocation at
//     steady state;
//   * adjacency is streamed from Graph::csr(): three parallel flat arrays
//     instead of the Arc -> edges_ pointer chase.
//
// Workspace-reuse contract: `run`, `run_to`, `run_bounded` and `run_multi`
// return references to engine-owned storage that the NEXT run_* call
// overwrites.  Copy what must outlive the next query, or use `run_into`,
// which writes a standalone tree directly into caller storage (this is what
// MetricClosure stores).  One engine serves one thread; parallel callers use
// one engine each over a shared, prebuilt CSR (see MetricClosure).
//
// Determinism: identical inputs produce identical trees, bit for bit.
// Single-source runs break heap ties on node id exactly like the historical
// free-function Dijkstra.  Multi-source runs order labels lexicographically
// by (distance, owner, node): an equal-distance node goes to the smallest
// owner among the labels that reach it — the deterministic Voronoi
// tie-break the Mehlhorn construction and its tests rely on.  A source
// always keeps its own cell, even when a zero-cost path from a smaller
// source reaches it; consequently a smaller source's label does not
// propagate THROUGH a protected source, and nodes reachable from it only
// via that source inherit the protected source's id (see dijkstra.hpp).

#include <cstdint>
#include <span>
#include <vector>

#include "sofe/graph/dijkstra.hpp"
#include "sofe/graph/graph.hpp"

namespace sofe::graph {

class ShortestPathEngine {
 public:
  ShortestPathEngine() = default;
  explicit ShortestPathEngine(const Graph& g) { attach(g); }

  /// (Re)binds the engine to a graph.  Workspaces are kept and only grow, so
  /// rebinding between graphs (e.g. the distance oracle's per-domain
  /// subgraphs) does not thrash the allocator.  The graph must outlive the
  /// engine's use of it.
  void attach(const Graph& g) { g_ = &g; }

  const Graph* graph() const noexcept { return g_; }

  /// Full single-source Dijkstra.  The returned tree is engine-owned and
  /// overwritten by the next run_* call.
  const ShortestPathTree& run(NodeId source) {
    return run_impl(source, kInvalidNode, kInfiniteCost);
  }

  /// Dijkstra that stops as soon as `target` is settled.  dist/parent are
  /// exact for `target` and every node settled before it; the remaining
  /// entries are unexplored (+inf) or tentative upper bounds.
  const ShortestPathTree& run_to(NodeId source, NodeId target) {
    return run_impl(source, target, kInfiniteCost);
  }

  /// Dijkstra that settles exactly the nodes within distance `limit`.
  /// Entries beyond the limit are unexplored or tentative, as in run_to.
  const ShortestPathTree& run_bounded(NodeId source, Cost limit) {
    return run_impl(source, kInvalidNode, limit);
  }

  /// Exact point-to-point distance (targeted run; +inf when unreachable).
  Cost distance(NodeId source, NodeId target) {
    return run_to(source, target).dist[static_cast<std::size_t>(target)];
  }

  /// Full single-source Dijkstra written into caller-owned storage (the
  /// persistence path: MetricClosure hub trees, DynamicForest's cache).
  /// Only the heap workspace is engine-shared, so `out` is a standalone
  /// ShortestPathTree with no tie to the engine's lifetime.
  void run_into(NodeId source, ShortestPathTree& out);

  /// Multi-source Dijkstra (Mehlhorn's Voronoi partition).  Duplicate
  /// sources are tolerated; equal-distance ties deterministically assign
  /// ownership to the smallest source id.  Engine-owned result, same
  /// overwrite contract as run().
  const VoronoiPartition& run_multi(std::span<const NodeId> sources);

 private:
  struct HeapItem {
    Cost dist;
    NodeId node;
    bool operator>(const HeapItem& o) const noexcept {
      if (dist != o.dist) return dist > o.dist;
      return node > o.node;
    }
  };
  struct MultiHeapItem {
    Cost dist;
    NodeId owner;
    NodeId node;
    bool operator>(const MultiHeapItem& o) const noexcept {
      if (dist != o.dist) return dist > o.dist;
      if (owner != o.owner) return owner > o.owner;
      return node > o.node;
    }
  };

  /// One node's full Dijkstra state packed into 16 bytes, so a relaxation
  /// reads and writes a single cache line per node instead of touching
  /// three parallel arrays.  Results are unpacked into the ShortestPathTree
  /// layout with one sequential sweep after the run.
  struct Label {
    Cost dist;
    NodeId parent;
    EdgeId parent_edge;
  };

  const ShortestPathTree& run_impl(NodeId source, NodeId target, Cost limit);
  void reset_tree(std::size_t n);
  void reset_voronoi(std::size_t n);

  const Graph* g_ = nullptr;
  ShortestPathTree tree_;
  VoronoiPartition vor_;
  std::vector<Label> labels_;  // run_into scratch
  std::vector<NodeId> tree_touched_;
  std::vector<NodeId> vor_touched_;
  std::vector<NodeId> seeds_;
  std::vector<HeapItem> heap_;
  std::vector<MultiHeapItem> multi_heap_;
};

}  // namespace sofe::graph
