#pragma once
// Reusable shortest-path engine over the CSR adjacency view (DESIGN.md §2).
//
// Every solver layer in this library — Procedure-1 metric instances,
// KMB/Mehlhorn Steiner, SOFDA pricing, the distributed distance oracle, the
// dynamic-forest operations — bottoms out in Dijkstra.  The free functions in
// dijkstra.hpp allocate three O(V) arrays plus a heap per call; on the hot
// paths (metric closures over dozens of hubs, per-segment shortening sweeps,
// online arrival streams) that allocation dominates.  The engine owns the
// workspaces once and reuses them across queries:
//
//   * result arrays are reset via a touched-node list, so a bounded or
//     targeted query that settles k nodes costs O(k log k), not O(V);
//   * the binary heap keeps its capacity between runs — zero allocation at
//     steady state;
//   * adjacency is streamed from Graph::csr(): three parallel flat arrays
//     instead of the Arc -> edges_ pointer chase.
//
// Workspace-reuse contract: `run`, `run_to`, `run_bounded` and `run_multi`
// return references to engine-owned storage that the NEXT run_* call
// overwrites.  Copy what must outlive the next query, or use `run_into`,
// which writes a standalone tree directly into caller storage (this is what
// MetricClosure stores).  One engine serves one thread; parallel callers use
// one engine each over a shared, prebuilt CSR (see MetricClosure).
//
// Determinism: identical inputs produce identical trees, bit for bit.
// Single-source runs break heap ties on node id exactly like the historical
// free-function Dijkstra.  Multi-source runs order labels lexicographically
// by (distance, owner, node): an equal-distance node goes to the smallest
// owner among the labels that reach it — the deterministic Voronoi
// tie-break the Mehlhorn construction and its tests rely on.  A source
// always keeps its own cell, even when a zero-cost path from a smaller
// source reaches it; consequently a smaller source's label does not
// propagate THROUGH a protected source, and nodes reachable from it only
// via that source inherit the protected source's id (see dijkstra.hpp).

#include <cstdint>
#include <span>
#include <vector>

#include "sofe/graph/dijkstra.hpp"
#include "sofe/graph/graph.hpp"

namespace sofe::graph {

class ShortestPathEngine {
 public:
  ShortestPathEngine() = default;
  explicit ShortestPathEngine(const Graph& g) { attach(g); }

  /// (Re)binds the engine to a graph.  Workspaces are kept and only grow, so
  /// rebinding between graphs (e.g. the distance oracle's per-domain
  /// subgraphs) does not thrash the allocator.  The graph must outlive the
  /// engine's use of it.
  void attach(const Graph& g) { g_ = &g; }

  const Graph* graph() const noexcept { return g_; }

  /// Full single-source Dijkstra.  The returned tree is engine-owned and
  /// overwritten by the next run_* call.
  const ShortestPathTree& run(NodeId source) {
    return run_impl(source, kInvalidNode, kInfiniteCost);
  }

  /// Dijkstra that stops as soon as `target` is settled.  dist/parent are
  /// exact for `target` and every node settled before it; the remaining
  /// entries are unexplored (+inf) or tentative upper bounds.
  const ShortestPathTree& run_to(NodeId source, NodeId target) {
    return run_impl(source, target, kInfiniteCost);
  }

  /// Dijkstra that settles exactly the nodes within distance `limit`.
  /// Entries beyond the limit are unexplored or tentative, as in run_to.
  const ShortestPathTree& run_bounded(NodeId source, Cost limit) {
    return run_impl(source, kInvalidNode, limit);
  }

  /// Dijkstra that stops once every node in `targets` is settled (duplicates
  /// tolerated; unreachable targets simply exhaust the graph).  dist/parent
  /// are exact for every settled node — in particular for every reachable
  /// target AND every node on a shortest path to one, since parents settle
  /// first — the remaining entries are tentative, as in run_to.  This is
  /// the engine-owned face of the stop-when-all-hubs-settled mode; bounded
  /// MetricClosure builds (ClosureScope, which is how chain pricing gets
  /// truncated hub trees) use the identical truncation through run_into's
  /// `stop_targets` parameter, since closure trees are caller-owned.
  const ShortestPathTree& run_until_settled(NodeId source, std::span<const NodeId> targets) {
    return run_impl(source, kInvalidNode, kInfiniteCost, targets);
  }

  /// Exact point-to-point distance (targeted run; +inf when unreachable).
  Cost distance(NodeId source, NodeId target) {
    return run_to(source, target).dist[static_cast<std::size_t>(target)];
  }

  /// Full single-source Dijkstra written into caller-owned storage (the
  /// persistence path: MetricClosure hub trees, DynamicForest's cache).
  /// Only the heap workspace is engine-shared, so `out` is a standalone
  /// ShortestPathTree with no tie to the engine's lifetime.  A non-empty
  /// `stop_targets` truncates the run as in run_until_settled (bounded
  /// MetricClosure builds); truncated trees are NOT repairable.
  void run_into(NodeId source, ShortestPathTree& out, std::span<const NodeId> stop_targets = {});

  /// run_into writing through a raw row view (slab-backed closure storage,
  /// DESIGN.md §13).  `out` must view exactly node_count() entries; the
  /// caller records `source` itself (the view's own source field is not
  /// consulted).  Bit-identical to the ShortestPathTree overload.
  void run_into(NodeId source, TreeRow out, std::span<const NodeId> stop_targets = {});

  /// Per-repair effect counters (diagnostics; tests, the repair-vs-
  /// rebuild heuristics and the pricing-cache invalidation consume them).
  struct RepairStats {
    std::size_t invalidated = 0;  // nodes orphaned by increased tree arcs
    std::size_t improved = 0;     // nodes whose dist was otherwise rewritten
    std::size_t reparented = 0;   // nodes whose parent arc changed
    bool fell_back = false;       // oversized orphan set: run_into rewrote the tree

    /// True when the repair may have altered any (dist, parent, parent_edge)
    /// entry at all; false guarantees the tree is bitwise untouched.
    bool changed_anything() const noexcept {
      return fell_back || invalidated > 0 || improved > 0 || reparented > 0;
    }
  };

  /// Delta-aware repair (Ramalingam–Reps style; DESIGN.md §8).  `tree` must
  /// be a COMPLETE tree over the attached graph (produced by run/run_into
  /// with no stop targets, or by a previous repair) computed when every
  /// edge cost equaled its current value except those listed in `deltas`
  /// (new_cost = current cost, old_cost = the cost the tree saw; at most
  /// one delta per edge).  The tree is repaired in place: arcs that got
  /// cheaper re-relax outward from their endpoints, subtrees hanging off
  /// costlier tree arcs are invalidated and resettled from the surviving
  /// frontier, and parents are re-derived canonically — including the
  /// discovery-order tie-break inside zero-cost (more precisely,
  /// distance-preserving) plateaus.  The result is bit-identical to a
  /// fresh run from tree.source at the new costs: dist, parent and
  /// parent_edge, every entry (tested by fuzz against run_into).  Cost is
  /// proportional to the affected region plus |deltas|, not to |V| + |E|.
  ///
  /// `touched_out`, when given, receives every node whose tree entry may
  /// have changed (appended; duplicates possible) — a sound OVER-approx of
  /// the real change set: every dist rewrite, parent reassignment and
  /// plateau replay lands in it, but queued-yet-unchanged fixup candidates
  /// (delta endpoints, neighbors of touched nodes) may appear too.  This
  /// is what the repair-aware pricing cache keys its invalidation on
  /// (DESIGN.md §9).  When the repair falls back to a full run
  /// (stats.fell_back), the list is NOT filled — treat every entry as
  /// changed.
  RepairStats repair(ShortestPathTree& tree, std::span<const EdgeCostDelta> deltas,
                     std::vector<NodeId>* touched_out = nullptr);

  /// repair over a raw row view; `tree.source` must be set and the view
  /// must cover exactly node_count() entries.  Same contract and
  /// bit-identity guarantee as the ShortestPathTree overload (which now
  /// wraps this one).
  RepairStats repair(TreeRow tree, std::span<const EdgeCostDelta> deltas,
                     std::vector<NodeId>* touched_out = nullptr);

  /// Multi-source Dijkstra (Mehlhorn's Voronoi partition).  Duplicate
  /// sources are tolerated; equal-distance ties deterministically assign
  /// ownership to the smallest source id.  Engine-owned result, same
  /// overwrite contract as run().
  const VoronoiPartition& run_multi(std::span<const NodeId> sources);

 private:
  struct HeapItem {
    Cost dist;
    NodeId node;
    bool operator>(const HeapItem& o) const noexcept {
      if (dist != o.dist) return dist > o.dist;
      return node > o.node;
    }
  };
  struct MultiHeapItem {
    Cost dist;
    NodeId owner;
    NodeId node;
    bool operator>(const MultiHeapItem& o) const noexcept {
      if (dist != o.dist) return dist > o.dist;
      if (owner != o.owner) return owner > o.owner;
      return node > o.node;
    }
  };

  /// One node's full Dijkstra state packed into 16 bytes, so a relaxation
  /// reads and writes a single cache line per node instead of touching
  /// three parallel arrays.  Results are unpacked into the ShortestPathTree
  /// layout with one sequential sweep after the run.
  struct Label {
    Cost dist;
    NodeId parent;
    EdgeId parent_edge;
  };

  const ShortestPathTree& run_impl(NodeId source, NodeId target, Cost limit,
                                   std::span<const NodeId> settle_targets = {});
  void reset_tree(std::size_t n);
  void reset_voronoi(std::size_t n);
  /// Marks `targets` in target_mark_ and returns the distinct count;
  /// clear_targets undoes the marks after a (possibly truncated) run.
  std::size_t mark_targets(std::span<const NodeId> targets);
  void clear_targets(std::span<const NodeId> targets);

  const Graph* g_ = nullptr;
  ShortestPathTree tree_;
  VoronoiPartition vor_;
  std::vector<Label> labels_;  // run_into scratch
  std::vector<NodeId> tree_touched_;
  std::vector<NodeId> vor_touched_;
  std::vector<NodeId> seeds_;
  std::vector<HeapItem> heap_;
  std::vector<MultiHeapItem> multi_heap_;
  std::vector<std::uint8_t> target_mark_;  // run_until_settled scratch
  // repair() workspaces: per-node state bits with a touched list for O(k)
  // reset, plus worklists for subtree invalidation, parent fixup and
  // plateau resolution.
  std::vector<std::uint8_t> mark_;
  std::vector<NodeId> mark_touched_;
  std::vector<NodeId> stack_;
  std::vector<NodeId> invalid_;
  std::vector<NodeId> fix_;
  std::vector<NodeId> plateau_heap_;
  std::vector<NodeId> plateau_members_;
  std::vector<NodeId> cand_members_;
};

}  // namespace sofe::graph
