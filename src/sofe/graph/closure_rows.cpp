#include "sofe/graph/closure_rows.hpp"

namespace sofe::graph {

void RowStore::reset(std::size_t node_count) {
  if (n_ == node_count) return;
  n_ = node_count;
  open_dist_.reset();
  open_dist_used_ = 0;
  open_idx_.reset();
  open_idx_used_ = 0;
  free_dist_.clear();
  free_idx_.clear();
}

RowStore::DistRef RowStore::alloc_dist() {
  // Recycle newest-freed-first: the common retain/extend churn then reuses
  // the very rows it just dropped, keeping the hot set in the same slabs.
  for (std::size_t i = free_dist_.size(); i-- > 0;) {
    if (free_dist_[i].slab->pins == 0) {
      DistRef ref = std::move(free_dist_[i]);
      free_dist_.erase(free_dist_.begin() + static_cast<std::ptrdiff_t>(i));
      return ref;
    }
  }
  if (open_dist_ == nullptr || open_dist_used_ == kRowsPerSlab) {
    open_dist_ = std::make_shared<DistSlab>();
    open_dist_->data.resize(n_ * kRowsPerSlab);
    open_dist_used_ = 0;
  }
  DistRef ref{open_dist_, static_cast<std::uint32_t>(open_dist_used_ * n_)};
  ++open_dist_used_;
  return ref;
}

RowStore::IdxRef RowStore::alloc_idx() {
  for (std::size_t i = free_idx_.size(); i-- > 0;) {
    if (free_idx_[i].slab->pins == 0) {
      IdxRef ref = std::move(free_idx_[i]);
      free_idx_.erase(free_idx_.begin() + static_cast<std::ptrdiff_t>(i));
      return ref;
    }
  }
  if (open_idx_ == nullptr || open_idx_used_ == kRowsPerSlab) {
    open_idx_ = std::make_shared<IdxSlab>();
    open_idx_->data.resize(2 * n_ * kRowsPerSlab);
    open_idx_used_ = 0;
  }
  IdxRef ref{open_idx_, static_cast<std::uint32_t>(open_idx_used_ * 2 * n_)};
  ++open_idx_used_;
  return ref;
}

void RowStore::release(DistRef ref) {
  if (ref) free_dist_.push_back(std::move(ref));
}

void RowStore::release(IdxRef ref) {
  if (ref) free_idx_.push_back(std::move(ref));
}

void RowStore::account(std::unordered_set<const void*>& seen, std::size_t& bytes) const {
  const auto add_dist = [&](const std::shared_ptr<DistSlab>& s) {
    if (s != nullptr && seen.insert(s.get()).second) bytes += s->data.capacity() * sizeof(Cost);
  };
  const auto add_idx = [&](const std::shared_ptr<IdxSlab>& s) {
    if (s != nullptr && seen.insert(s.get()).second) {
      bytes += s->data.capacity() * sizeof(std::int32_t);
    }
  };
  add_dist(open_dist_);
  add_idx(open_idx_);
  for (const DistRef& r : free_dist_) add_dist(r.slab);
  for (const IdxRef& r : free_idx_) add_idx(r.slab);
}

}  // namespace sofe::graph
