#include "sofe/graph/metric_closure.hpp"

#include <algorithm>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "sofe/graph/shortest_path_engine.hpp"

namespace sofe::graph {

namespace {

/// The single zero-cost arc of a degree-1 hub, or kInvalidEdge.
/// Such a "tap" hub shares all shortest paths with the arc's head.
Arc zero_cost_tap(const Graph& g, NodeId v) {
  const auto arcs = g.neighbors(v);
  if (arcs.size() == 1 && g.edge(arcs[0].edge).cost == 0.0) return arcs[0];
  return Arc{};
}

}  // namespace

// Tap derivation on rows.  Why it is exact, bit for bit: every path out of
// tap v is v -e-> h -> ..., and e costs zero, so 0.0 + d == d leaves every
// label, comparison and settle-order key of the host's run unchanged — the
// tap's dist array IS the host image's dist array, which is why derived
// rows alias it instead of copying.  Only the parents at the endpoints of
// the tap edges differ:
//
//   * host image -> tap v (derive_tap_fixups): v becomes the root (no
//     parent) and h hangs off v through e;
//   * sibling tap v0's tree -> tap v1 (derive_sibling_fixups): v1 becomes
//     the root, h hangs off v1 through e1, and v0 hangs off h through e0
//     the way every non-root tap does.  Used by refresh(), where the
//     host's own tree is usually not stored — one repaired representative
//     carries its whole sibling group.
//
// Callers copy the source idx row into `row` first (or convert the host
// image in place) and then apply the fixups.

static void derive_tap_fixups(const TreeRow& row, NodeId v, NodeId h, EdgeId e) {
  row.parent[static_cast<std::size_t>(v)] = kInvalidNode;
  row.parent_edge[static_cast<std::size_t>(v)] = kInvalidEdge;
  row.parent[static_cast<std::size_t>(h)] = v;
  row.parent_edge[static_cast<std::size_t>(h)] = e;
}

static void derive_sibling_fixups(const TreeRow& row, NodeId v0, EdgeId e0, NodeId v1, EdgeId e1,
                                  NodeId h) {
  row.parent[static_cast<std::size_t>(v1)] = kInvalidNode;
  row.parent_edge[static_cast<std::size_t>(v1)] = kInvalidEdge;
  row.parent[static_cast<std::size_t>(h)] = v1;
  row.parent_edge[static_cast<std::size_t>(h)] = e1;
  row.parent[static_cast<std::size_t>(v0)] = h;
  row.parent_edge[static_cast<std::size_t>(v0)] = e0;
}

void MetricClosure::build(const Graph& g, const std::vector<NodeId>& hubs, int num_threads,
                          ShortestPathEngine* engine, ClosureScope scope) {
  tree_index_.clear();
  bounded_ = scope.bounded;
  settle_targets_.clear();
  if (bounded_) {
    // The settle set of every run: all hubs plus the caller's extra targets
    // (duplicates are fine; the engine counts distinct marks).
    settle_targets_.assign(hubs.begin(), hubs.end());
    settle_targets_.insert(settle_targets_.end(), scope.extra_targets.begin(),
                           scope.extra_targets.end());
  }
  build_or_extend(g, hubs, num_threads, engine, /*rebuild=*/true);
}

void MetricClosure::extend(const Graph& g, const std::vector<NodeId>& hubs, int num_threads,
                           ShortestPathEngine* engine) {
  assert(!bounded_ && "bounded closures have a fixed settle scope; rebuild instead");
  build_or_extend(g, hubs, num_threads, engine, /*rebuild=*/false);
}

void MetricClosure::refresh(const Graph& g, std::span<const EdgeCostDelta> deltas,
                            int num_threads, ShortestPathEngine* engine,
                            std::vector<RowDelta>* changed) {
  assert(!bounded_ && "truncated trees cannot be repaired; rebuild instead");
  if (changed != nullptr) changed->clear();
  if (deltas.empty() || rows_.empty()) return;
  ++write_gen_;

  // Tap-aware repair plan, mirroring the build's derivation: a zero-cost
  // degree-1 tap shares every label with its host, so one repaired
  // representative per distinct host carries its whole tap group — the
  // rest re-derive by copy.  Without this a SOFDA hub set (vms_per_dc
  // taps per DC) would pay vms_per_dc repairs where the build pays one
  // Dijkstra.  Classification uses the CURRENT graph: an edge repriced
  // away from zero simply demotes its tap to an individual repair.
  // NOTE: the case analysis (host stored / mutual zero-cost pair / sibling
  // group) must stay in lockstep with build_or_extend's tap rules above —
  // both encode the same "derivation is exact unless the host chases back
  // into a tap" invariant.
  const std::size_t n_slots = rows_.size();
  std::vector<NodeId> slot_hub(n_slots, kInvalidNode);
  for (const auto& [hub, slot] : tree_index_) slot_hub[slot] = hub;

  struct Tap {
    NodeId host = kInvalidNode;
    EdgeId edge = kInvalidEdge;
  };
  std::vector<Tap> taps(n_slots);
  for (std::size_t i = 0; i < n_slots; ++i) {
    const Arc a = zero_cost_tap(g, slot_hub[i]);
    if (a.edge != kInvalidEdge) taps[i] = Tap{a.to, a.edge};
  }
  const auto is_tap_hub = [&](NodeId v) {
    const auto it = tree_index_.find(v);
    return it != tree_index_.end() && taps[it->second].host != kInvalidNode;
  };

  // For every tap, the slot whose repaired tree it derives from: the
  // host's own tree when stored (and not itself a tap — the mutual-pair
  // degenerate repairs individually), else the first sibling of its host
  // group.  That first sibling repairs as the group's representative.
  struct Job {
    std::size_t slot;
    std::size_t from = SIZE_MAX;  // SIZE_MAX: repair; else derive from slot
  };
  std::vector<std::size_t> repairs;
  std::vector<Job> derives;
  std::unordered_map<NodeId, std::size_t> group_rep;  // non-stored host -> slot
  for (std::size_t i = 0; i < n_slots; ++i) {
    const Tap& t = taps[i];
    if (t.host == kInvalidNode) {
      repairs.push_back(i);
      continue;
    }
    const auto host_it = tree_index_.find(t.host);
    if (host_it != tree_index_.end()) {
      if (is_tap_hub(t.host)) {
        repairs.push_back(i);  // mutual zero-cost pair; no derivation
      } else {
        derives.push_back(Job{i, host_it->second});
      }
      continue;
    }
    const auto [rep, fresh] = group_rep.emplace(t.host, i);
    if (fresh) {
      repairs.push_back(i);  // first tap of the group: the representative
    } else {
      derives.push_back(Job{i, rep->second});
    }
  }

  // --- Copy-on-write / writability plan (serial, before the parallel
  // repairs touch anything).  Two reasons a row must be relocated before
  // its in-place write: its slab is pinned by a published epoch snapshot
  // (snapshot_to), or its dist row is aliased by a live row that is NOT
  // re-derived from it this round (a demoted tap, or a group whose
  // representative changed) — both that row's repair and ours need the
  // shared pre-delta dist as their private starting state.  Derive
  // targets never repair in place: they re-point their dist at the
  // representative's row and take a fresh idx row when theirs is pinned
  // (no copy — the derive pass fully overwrites it).  A dropped dist
  // reference is recycled once no live row holds it.
  std::unordered_map<const Cost*, std::size_t> dist_refs;  // live alias counts
  for (const StoredRow& row : rows_) ++dist_refs[row.dist.get()];
  std::vector<std::size_t> derive_from(n_slots, SIZE_MAX);
  for (const Job& j : derives) derive_from[j.slot] = j.from;
  const auto drop_dist_ref = [&](RowStore::DistRef ref) {
    if (--dist_refs[ref.get()] == 0) store_.release(std::move(ref));
  };
  std::unordered_map<const Cost*, std::vector<std::size_t>> alias_slots;
  for (std::size_t i = 0; i < n_slots; ++i) {
    if (dist_refs[rows_[i].dist.get()] > 1) alias_slots[rows_[i].dist.get()].push_back(i);
  }
  for (std::size_t s : repairs) {
    StoredRow& row = rows_[s];
    bool copy_dist = row.dist.slab->pins > 0;
    if (!copy_dist) {
      const auto it = alias_slots.find(row.dist.get());
      if (it != alias_slots.end()) {
        for (std::size_t x : it->second) {
          if (x != s && derive_from[x] != s) {
            copy_dist = true;
            break;
          }
        }
      }
    }
    if (copy_dist) {
      RowStore::DistRef fresh = store_.alloc_dist();
      std::memcpy(fresh.get(), row.dist.get(), n_ * sizeof(Cost));
      RowStore::DistRef old = std::move(row.dist);
      row.dist = std::move(fresh);
      ++dist_refs[row.dist.get()];
      drop_dist_ref(std::move(old));
    }
    if (row.idx.slab->pins > 0) {
      RowStore::IdxRef fresh = store_.alloc_idx();
      std::memcpy(fresh.get(), row.idx.get(), 2 * n_ * sizeof(std::int32_t));
      store_.release(std::move(row.idx));
      row.idx = std::move(fresh);
    }
    row.gen = write_gen_;
  }
  for (const Job& j : derives) {
    StoredRow& dst = rows_[j.slot];
    const StoredRow& rep = rows_[j.from];  // post-relocation reference
    if (!dst.dist.aliases(rep.dist)) {
      RowStore::DistRef old = std::move(dst.dist);
      dst.dist = rep.dist;
      ++dist_refs[dst.dist.get()];
      drop_dist_ref(std::move(old));
    }
    if (dst.idx.slab->pins > 0) {
      store_.release(std::move(dst.idx));
      dst.idx = store_.alloc_idx();
    }
    dst.gen = write_gen_;
  }

  // Per-repair change records (preassigned slots so the parallel stripes
  // write disjoint locations; only filled when the caller wants them).
  struct RepairOutcome {
    bool changed = false;
    bool full = false;
    std::vector<NodeId> nodes;
  };
  std::vector<RepairOutcome> outcomes(changed != nullptr ? repairs.size() : 0);
  const auto repair_one = [&](ShortestPathEngine& eng, std::size_t ri) {
    if (changed == nullptr) {
      eng.repair(row_view(repairs[ri]), deltas);
      return;
    }
    RepairOutcome& out = outcomes[ri];
    const auto stats = eng.repair(row_view(repairs[ri]), deltas, &out.nodes);
    out.changed = stats.changed_anything();
    out.full = stats.fell_back;
  };

  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(num_threads, 1)), std::max<std::size_t>(repairs.size(), 1));
  if (workers <= 1) {
    ShortestPathEngine local;
    ShortestPathEngine& eng = engine != nullptr ? *engine : local;
    eng.attach(g);
    for (std::size_t ri = 0; ri < repairs.size(); ++ri) repair_one(eng, ri);
  } else {
    g.ensure_csr();  // the lazy csr() cost refresh is not thread-safe on a miss
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        ShortestPathEngine worker(g);
        for (std::size_t ri = w; ri < repairs.size(); ri += workers) repair_one(worker, ri);
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Directly repaired rows are their own memo (and change report).
  std::vector<std::size_t> slot_outcome(changed != nullptr ? n_slots : 0, SIZE_MAX);
  for (std::size_t ri = 0; ri < repairs.size(); ++ri) {
    derive_memo_[repairs[ri]] = DeriveMemo{};
    if (changed == nullptr) continue;
    slot_outcome[repairs[ri]] = ri;
    const RepairOutcome& out = outcomes[ri];
    if (out.changed) {
      changed->push_back(RowDelta{slot_hub[repairs[ri]], out.full, out.nodes});
    }
  }

  // One pass over the deltas buys O(1) tap-edge membership checks below
  // (delta lists can reach E/4 on the repair path, derive jobs one per tap).
  std::unordered_set<EdgeId> delta_edges;
  if (!derives.empty()) {
    delta_edges.reserve(deltas.size());
    for (const EdgeCostDelta& d : deltas) delta_edges.insert(d.edge);
  }
  const auto edge_in_deltas = [&](EdgeId e) { return delta_edges.contains(e); };

  for (const Job& job : derives) {
    const NodeId v = slot_hub[job.slot];
    const Tap& t = taps[job.slot];
    const NodeId from_hub = slot_hub[job.from];
    if (changed != nullptr) {
      // The derived tree inherits its representative's change set — exact
      // (DESIGN.md §9).  Every derivation of the same (host, tap edge) is
      // the same "host image" tree regardless of WHICH sibling served as
      // representative, so the memo only has to certify that the old tree
      // was such an image (from_hub set, same host/edge) and that no tap
      // edge involved was repriced across the delta (a 0 <-> nonzero flip
      // voids the zero-cost-equivalence on one side); otherwise the whole
      // row must be treated as changed.
      const DeriveMemo memo = derive_memo_[job.slot];
      const bool same_shape = memo.from_hub != kInvalidNode && memo.host == t.host &&
                              memo.edge == t.edge && !edge_in_deltas(t.edge) &&
                              (from_hub == t.host || !edge_in_deltas(taps[job.from].edge));
      const std::size_t rep_outcome = slot_outcome[job.from];
      assert(rep_outcome != SIZE_MAX && "a derive source must be a repaired slot");
      const RepairOutcome& rep = outcomes[rep_outcome];
      if (!same_shape) {
        changed->push_back(RowDelta{v, /*full=*/true, {}});
      } else if (rep.changed) {
        changed->push_back(RowDelta{v, rep.full, rep.nodes});
      }
    }
    // Dist is shared with the representative (re-pointed in the plan
    // above); only the idx row is copied, then fixed up.
    StoredRow& dst = rows_[job.slot];
    const StoredRow& rep = rows_[job.from];
    assert(dst.dist.aliases(rep.dist));
    std::memcpy(dst.idx.get(), rep.idx.get(), 2 * n_ * sizeof(std::int32_t));
    dst.source = v;
    if (from_hub == t.host) {
      derive_tap_fixups(row_view(job.slot), v, t.host, t.edge);
    } else {
      derive_sibling_fixups(row_view(job.slot), from_hub, taps[job.from].edge, v, t.edge,
                            t.host);
    }
    derive_memo_[job.slot] = DeriveMemo{from_hub, t.host, t.edge};
  }
}

void MetricClosure::retain(const std::vector<NodeId>& hubs) {
  assert(!bounded_ && "bounded closures have a fixed hub scope; rebuild instead");
  std::unordered_map<NodeId, char> keep;
  keep.reserve(hubs.size());
  for (NodeId h : hubs) keep.emplace(h, 0);
  if (keep.size() >= tree_index_.size()) {
    bool all_kept = true;
    for (const auto& [hub, slot] : tree_index_) {
      (void)slot;
      all_kept = all_kept && keep.contains(hub);
    }
    if (all_kept) return;  // nothing stale — the common steady state
  }
  std::vector<NodeId> slot_hub(rows_.size(), kInvalidNode);
  for (const auto& [hub, slot] : tree_index_) slot_hub[slot] = hub;

  // A dropped dist row is recycled only when no surviving row aliases it:
  // a tap group's shared host image stays alive as long as any member
  // does (and the next refresh re-reps the group onto a survivor).
  std::unordered_set<const Cost*> kept_dist;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (keep.contains(slot_hub[i])) kept_dist.insert(rows_[i].dist.get());
  }
  std::vector<StoredRow> kept;
  std::vector<DeriveMemo> kept_memo;
  kept.reserve(rows_.size());
  kept_memo.reserve(rows_.size());
  tree_index_.clear();
  std::unordered_set<const Cost*> released_dist;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (keep.contains(slot_hub[i])) {
      tree_index_.emplace(slot_hub[i], kept.size());
      kept.push_back(std::move(rows_[i]));
      kept_memo.push_back(derive_memo_[i]);
      continue;
    }
    StoredRow& row = rows_[i];
    if (!kept_dist.contains(row.dist.get()) && released_dist.insert(row.dist.get()).second) {
      store_.release(std::move(row.dist));
    }
    store_.release(std::move(row.idx));
  }
  rows_ = std::move(kept);
  derive_memo_ = std::move(kept_memo);
}

void MetricClosure::snapshot_to(MetricClosure& out) const {
  out.release_rows();
  out.rows_ = rows_;
  out.tree_index_ = tree_index_;
  out.n_ = n_;
  out.bounded_ = bounded_;
  out.pinned_ = true;
  // Pin each distinct slab once: the live side's refresh/retain/build
  // relocate instead of writing pinned rows, so the snapshot stays frozen.
  std::unordered_set<const void*> seen;
  for (const StoredRow& r : out.rows_) {
    if (r.dist.slab != nullptr && seen.insert(r.dist.slab.get()).second) ++r.dist.slab->pins;
    if (r.idx.slab != nullptr && seen.insert(r.idx.slab.get()).second) ++r.idx.slab->pins;
  }
}

void MetricClosure::release_rows() {
  if (pinned_) {
    std::unordered_set<const void*> seen;
    for (const StoredRow& r : rows_) {
      if (r.dist.slab != nullptr && seen.insert(r.dist.slab.get()).second) --r.dist.slab->pins;
      if (r.idx.slab != nullptr && seen.insert(r.idx.slab.get()).second) --r.idx.slab->pins;
    }
    pinned_ = false;
  }
  rows_.clear();
  tree_index_.clear();
  derive_memo_.clear();
}

std::size_t MetricClosure::memory_bytes() const {
  std::unordered_set<const void*> seen;
  std::size_t bytes = 0;
  for (const StoredRow& r : rows_) {
    if (r.dist.slab != nullptr && seen.insert(r.dist.slab.get()).second) {
      bytes += r.dist.slab->data.capacity() * sizeof(Cost);
    }
    if (r.idx.slab != nullptr && seen.insert(r.idx.slab.get()).second) {
      bytes += r.idx.slab->data.capacity() * sizeof(std::int32_t);
    }
  }
  store_.account(seen, bytes);
  return bytes;
}

void MetricClosure::build_or_extend(const Graph& g, const std::vector<NodeId>& hubs,
                                    int num_threads, ShortestPathEngine* engine, bool rebuild) {
  ++write_gen_;
  const auto n = static_cast<std::size_t>(g.node_count());
  if (rebuild) {
    // Recycle every row through the store's free lists (dist rows once per
    // distinct row — tap groups share) so a same-shape rebuild reuses the
    // identical slab memory; reset() drops the lists wholesale when the
    // node count changed.  Rows shared with an epoch snapshot stay alive
    // through the snapshot's own references and are skipped by the
    // allocator until retired.
    std::unordered_set<const Cost*> released;
    for (StoredRow& row : rows_) {
      if (row.dist && released.insert(row.dist.get()).second) {
        store_.release(std::move(row.dist));
      }
      store_.release(std::move(row.idx));
    }
    rows_.clear();
    derive_memo_.clear();
    store_.reset(n);
    n_ = n;
  } else {
    assert(n_ == n && "extend requires the same graph the closure was built over");
  }

  // Dedupe the NEW hubs in first-seen order against whatever is already
  // indexed; every new hub gets a preassigned row slot, so the parallel
  // build below writes disjoint, fixed locations.
  const std::size_t base = rows_.size();
  std::vector<NodeId> fresh;
  fresh.reserve(hubs.size());
  for (NodeId h : hubs) {
    if (tree_index_.contains(h)) continue;
    tree_index_.emplace(h, base + fresh.size());
    fresh.push_back(h);
  }
  rows_.resize(base + fresh.size());
  derive_memo_.resize(base + fresh.size());
  std::fill(derive_memo_.begin() + static_cast<std::ptrdiff_t>(base), derive_memo_.end(),
            DeriveMemo{});

  // Classify the new hubs: a zero-cost degree-1 tap is derived from its
  // host's tree instead of running its own Dijkstra — unless the host is a
  // tap hub being built in this same batch (two taps joined by one
  // zero-cost edge would chase each other), where both run fully.  A host
  // whose tree already exists (slot < base) is always usable: stored trees
  // equal full runs, derived or not.
  struct Tap {
    NodeId host = kInvalidNode;
    EdgeId edge = kInvalidEdge;
  };
  std::vector<Tap> taps(fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const Arc a = zero_cost_tap(g, fresh[i]);
    if (a.edge != kInvalidEdge) taps[i] = Tap{a.to, a.edge};
  }
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    if (taps[i].host == kInvalidNode) continue;
    const auto it = tree_index_.find(taps[i].host);
    if (it != tree_index_.end() && it->second >= base &&
        taps[it->second - base].host != kInvalidNode) {
      taps[i] = Tap{};  // host is itself a new tap hub; run this one fully
    }
  }

  // Row allocation plan (serial; the allocator is not thread-safe).  Every
  // fresh hub owns an idx row.  Dist rows: non-tap hubs own one; the FIRST
  // tap of a group whose host is not a hub owns one too — the host's
  // Dijkstra runs directly into that tap's row (the host image; dist is
  // bitwise the tap's own), and the serial derive pass converts it in
  // place.  Every other tap aliases its derivation source's dist row.
  // group_image: non-hub host -> the fresh index owning its host image.
  std::unordered_map<NodeId, std::size_t> group_image;
  std::vector<std::size_t> derive_source(fresh.size(), SIZE_MAX);  // slot to copy idx from
  std::vector<char> is_image(fresh.size(), 0);
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    StoredRow& row = rows_[base + i];
    row.source = fresh[i];
    row.gen = write_gen_;
    row.idx = store_.alloc_idx();
    const Tap& t = taps[i];
    if (t.host == kInvalidNode) {
      row.dist = store_.alloc_dist();
    } else if (!tree_index_.contains(t.host) && group_image.emplace(t.host, i).second) {
      is_image[i] = 1;  // the host image lands here, converted in place
      row.dist = store_.alloc_dist();
    }
  }
  // Aliases second: a tap's host may be a fresh non-tap hub whose own dist
  // row was only allocated later in the pass above.
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const Tap& t = taps[i];
    if (t.host == kInvalidNode || is_image[i]) continue;
    const auto it = tree_index_.find(t.host);
    derive_source[i] = it != tree_index_.end() ? it->second : base + group_image.at(t.host);
    rows_[base + i].dist = rows_[derive_source[i]].dist;
  }

  // The full-run worklist: every new non-tap hub (into its own row) plus
  // every distinct non-hub tap host (into its first tap's row), scheduled
  // in fresh order — bit-identical work assignment to the historical
  // side-storage layout at any thread count.
  struct Run {
    NodeId root = kInvalidNode;
    std::size_t slot = 0;
  };
  std::vector<Run> runs;
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    if (taps[i].host == kInvalidNode) {
      runs.push_back(Run{fresh[i], base + i});
    } else if (is_image[i]) {
      runs.push_back(Run{taps[i].host, base + i});
    }
  }

  const std::span<const NodeId> stop = bounded_ ? std::span<const NodeId>(settle_targets_)
                                                : std::span<const NodeId>{};
  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(num_threads, 1)), std::max<std::size_t>(runs.size(), 1));
  if (workers <= 1) {
    ShortestPathEngine local;
    ShortestPathEngine& eng = engine != nullptr ? *engine : local;
    eng.attach(g);
    for (const Run& r : runs) eng.run_into(r.root, row_view(r.slot), stop);
  } else {
    g.ensure_csr();  // the lazy csr() rebuild is not thread-safe on a miss
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        ShortestPathEngine worker(g);
        for (std::size_t i = w; i < runs.size(); i += workers) {
          worker.run_into(runs[i].root, row_view(runs[i].slot), stop);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Derive every new tap hub from its host's finished image.  Siblings
  // copy the image's idx row BEFORE the image slot is converted to its
  // own tap's tree (in-place fixups, no copy), so the copy order below —
  // non-image taps first, image taps last — matters.  The derivation memo
  // records host-image shape: refresh() re-derives tap groups through a
  // stored representative, so its shape check treats a host-derived memo
  // as matching only when it derives from the host again.
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const Tap& t = taps[i];
    if (t.host == kInvalidNode || is_image[i]) continue;
    StoredRow& row = rows_[base + i];
    std::memcpy(row.idx.get(), rows_[derive_source[i]].idx.get(),
                2 * n_ * sizeof(std::int32_t));
    derive_tap_fixups(row_view(base + i), fresh[i], t.host, t.edge);
    derive_memo_[base + i] = DeriveMemo{t.host, t.host, t.edge};
  }
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const Tap& t = taps[i];
    if (t.host == kInvalidNode || !is_image[i]) continue;
    derive_tap_fixups(row_view(base + i), fresh[i], t.host, t.edge);
    derive_memo_[base + i] = DeriveMemo{t.host, t.host, t.edge};
  }
}

}  // namespace sofe::graph
