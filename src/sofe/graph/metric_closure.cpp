#include "sofe/graph/metric_closure.hpp"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "sofe/graph/shortest_path_engine.hpp"

namespace sofe::graph {

namespace {

/// The single zero-cost arc of a degree-1 hub, or kInvalidEdge.
/// Such a "tap" hub shares all shortest paths with the arc's head.
Arc zero_cost_tap(const Graph& g, NodeId v) {
  const auto arcs = g.neighbors(v);
  if (arcs.size() == 1 && g.edge(arcs[0].edge).cost == 0.0) return arcs[0];
  return Arc{};
}

/// Derives the tree a full Dijkstra from tap hub `v` would produce, given
/// the tree of its host `h` (reached via zero-cost edge `e`).
///
/// Why this is exact, bit for bit: every path out of v is v -e-> h -> ...,
/// and e costs zero, so 0.0 + d == d leaves every label, comparison and
/// settle-order key of the host's run unchanged.  The only differences in
/// the resulting tree are at the two endpoints of e: v becomes the root
/// (no parent) and h hangs off v through e.
void derive_tap_tree(const ShortestPathTree& host_tree, NodeId v, NodeId h, EdgeId e,
                     ShortestPathTree& out) {
  out = host_tree;
  out.source = v;
  out.parent[static_cast<std::size_t>(v)] = kInvalidNode;
  out.parent_edge[static_cast<std::size_t>(v)] = kInvalidEdge;
  out.parent[static_cast<std::size_t>(h)] = v;
  out.parent_edge[static_cast<std::size_t>(h)] = e;
}

}  // namespace

void MetricClosure::build(const Graph& g, const std::vector<NodeId>& hubs, int num_threads,
                          ShortestPathEngine* engine) {
  // Dedupe in first-seen order; every unique hub gets a preassigned tree
  // slot, so the parallel build below writes disjoint, fixed locations.
  // Rebuilds reuse trees_ elements (and their vector capacities) in place.
  tree_index_.clear();
  std::vector<NodeId> unique_hubs;
  unique_hubs.reserve(hubs.size());
  for (NodeId h : hubs) {
    if (tree_index_.contains(h)) continue;
    tree_index_.emplace(h, unique_hubs.size());
    unique_hubs.push_back(h);
  }
  trees_.resize(unique_hubs.size());

  // Classify hubs: a zero-cost degree-1 tap is derived from its host's tree
  // instead of running its own Dijkstra — unless the host is itself a tap
  // hub (two taps joined by one zero-cost edge), where both run fully.
  struct Tap {
    NodeId host = kInvalidNode;
    EdgeId edge = kInvalidEdge;
  };
  std::vector<Tap> taps(unique_hubs.size());
  for (std::size_t i = 0; i < unique_hubs.size(); ++i) {
    const Arc a = zero_cost_tap(g, unique_hubs[i]);
    if (a.edge != kInvalidEdge) taps[i] = Tap{a.to, a.edge};
  }
  for (std::size_t i = 0; i < unique_hubs.size(); ++i) {
    if (taps[i].host == kInvalidNode) continue;
    const auto it = tree_index_.find(taps[i].host);
    if (it != tree_index_.end() && taps[it->second].host != kInvalidNode) {
      taps[i] = Tap{};  // host is itself a tap hub; run this one fully
    }
  }

  // The full-run worklist: every non-tap hub (into its slot) plus every
  // distinct tap host that is not already a hub (into side storage).
  struct Run {
    NodeId root = kInvalidNode;
    ShortestPathTree* out = nullptr;
  };
  std::vector<Run> runs;
  std::unordered_map<NodeId, std::size_t> extra_index;  // non-hub host -> slot
  std::vector<ShortestPathTree> extra_trees;
  for (std::size_t i = 0; i < unique_hubs.size(); ++i) {
    if (taps[i].host == kInvalidNode) runs.push_back(Run{unique_hubs[i], &trees_[i]});
  }
  for (const Tap& t : taps) {
    if (t.host == kInvalidNode || tree_index_.contains(t.host)) continue;
    if (extra_index.emplace(t.host, extra_trees.size()).second) {
      extra_trees.emplace_back();
    }
  }
  // extra_trees no longer grows; pointers into it are stable from here on.
  runs.reserve(runs.size() + extra_trees.size());
  std::vector<bool> scheduled(extra_trees.size(), false);
  for (const Tap& t : taps) {  // first-seen host order
    if (t.host == kInvalidNode) continue;
    const auto it = extra_index.find(t.host);
    if (it == extra_index.end() || scheduled[it->second]) continue;
    scheduled[it->second] = true;
    runs.push_back(Run{t.host, &extra_trees[it->second]});
  }

  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(num_threads, 1)), std::max<std::size_t>(runs.size(), 1));
  if (workers <= 1) {
    ShortestPathEngine local;
    ShortestPathEngine& eng = engine != nullptr ? *engine : local;
    eng.attach(g);
    for (const Run& r : runs) eng.run_into(r.root, *r.out);
  } else {
    g.ensure_csr();  // the lazy csr() rebuild is not thread-safe on a miss
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        ShortestPathEngine engine(g);
        for (std::size_t i = w; i < runs.size(); i += workers) {
          engine.run_into(runs[i].root, *runs[i].out);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Derive every tap hub from its host's finished tree (memcpy-bound).
  for (std::size_t i = 0; i < unique_hubs.size(); ++i) {
    const Tap& t = taps[i];
    if (t.host == kInvalidNode) continue;
    const auto it = tree_index_.find(t.host);
    const ShortestPathTree& host_tree =
        it != tree_index_.end() ? trees_[it->second] : extra_trees[extra_index.at(t.host)];
    derive_tap_tree(host_tree, unique_hubs[i], t.host, t.edge, trees_[i]);
  }
}

}  // namespace sofe::graph
