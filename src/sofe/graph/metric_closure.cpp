#include "sofe/graph/metric_closure.hpp"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "sofe/graph/shortest_path_engine.hpp"

namespace sofe::graph {

namespace {

/// The single zero-cost arc of a degree-1 hub, or kInvalidEdge.
/// Such a "tap" hub shares all shortest paths with the arc's head.
Arc zero_cost_tap(const Graph& g, NodeId v) {
  const auto arcs = g.neighbors(v);
  if (arcs.size() == 1 && g.edge(arcs[0].edge).cost == 0.0) return arcs[0];
  return Arc{};
}

/// Derives the tree a full Dijkstra from tap hub `v` would produce, given
/// the tree of its host `h` (reached via zero-cost edge `e`).
///
/// Why this is exact, bit for bit: every path out of v is v -e-> h -> ...,
/// and e costs zero, so 0.0 + d == d leaves every label, comparison and
/// settle-order key of the host's run unchanged.  The only differences in
/// the resulting tree are at the two endpoints of e: v becomes the root
/// (no parent) and h hangs off v through e.
void derive_tap_tree(const ShortestPathTree& host_tree, NodeId v, NodeId h, EdgeId e,
                     ShortestPathTree& out) {
  out = host_tree;
  out.source = v;
  out.parent[static_cast<std::size_t>(v)] = kInvalidNode;
  out.parent_edge[static_cast<std::size_t>(v)] = kInvalidEdge;
  out.parent[static_cast<std::size_t>(h)] = v;
  out.parent_edge[static_cast<std::size_t>(h)] = e;
}

/// Derives tap v1's tree from SIBLING tap v0's tree — both zero-cost
/// degree-1 taps of the same host h (v0 via e0, v1 via e1).  The two runs
/// share every label: both settle their own root, then h, then the rest of
/// the dist-0 plateau and the graph in an identical sequence (a tap's only
/// arc leads to h, so relaxations from other taps never matter).  Only
/// three parents differ: v1 becomes the root, h hangs off v1, and v0 hangs
/// off h the way every non-root tap does.  Used by refresh(), where the
/// host's own tree is usually not stored — one repaired representative
/// carries its whole sibling group.
void derive_sibling_tap_tree(const ShortestPathTree& rep_tree, NodeId v0, EdgeId e0, NodeId v1,
                             EdgeId e1, NodeId h, ShortestPathTree& out) {
  out = rep_tree;
  out.source = v1;
  out.parent[static_cast<std::size_t>(v1)] = kInvalidNode;
  out.parent_edge[static_cast<std::size_t>(v1)] = kInvalidEdge;
  out.parent[static_cast<std::size_t>(h)] = v1;
  out.parent_edge[static_cast<std::size_t>(h)] = e1;
  out.parent[static_cast<std::size_t>(v0)] = h;
  out.parent_edge[static_cast<std::size_t>(v0)] = e0;
}

}  // namespace

void MetricClosure::build(const Graph& g, const std::vector<NodeId>& hubs, int num_threads,
                          ShortestPathEngine* engine, ClosureScope scope) {
  tree_index_.clear();
  bounded_ = scope.bounded;
  settle_targets_.clear();
  if (bounded_) {
    // The settle set of every run: all hubs plus the caller's extra targets
    // (duplicates are fine; the engine counts distinct marks).
    settle_targets_.assign(hubs.begin(), hubs.end());
    settle_targets_.insert(settle_targets_.end(), scope.extra_targets.begin(),
                           scope.extra_targets.end());
  }
  build_or_extend(g, hubs, num_threads, engine, /*rebuild=*/true);
}

void MetricClosure::extend(const Graph& g, const std::vector<NodeId>& hubs, int num_threads,
                           ShortestPathEngine* engine) {
  assert(!bounded_ && "bounded closures have a fixed settle scope; rebuild instead");
  build_or_extend(g, hubs, num_threads, engine, /*rebuild=*/false);
}

void MetricClosure::refresh(const Graph& g, std::span<const EdgeCostDelta> deltas,
                            int num_threads, ShortestPathEngine* engine,
                            std::vector<RowDelta>* changed) {
  assert(!bounded_ && "truncated trees cannot be repaired; rebuild instead");
  if (changed != nullptr) changed->clear();
  if (deltas.empty() || trees_.empty()) return;

  // Tap-aware repair plan, mirroring the build's derivation: a zero-cost
  // degree-1 tap shares every label with its host, so one repaired
  // representative per distinct host carries its whole tap group — the
  // rest re-derive by copy.  Without this a SOFDA hub set (vms_per_dc
  // taps per DC) would pay vms_per_dc repairs where the build pays one
  // Dijkstra.  Classification uses the CURRENT graph: an edge repriced
  // away from zero simply demotes its tap to an individual repair.
  // NOTE: the case analysis (host stored / mutual zero-cost pair / sibling
  // group) must stay in lockstep with build_or_extend's tap rules above —
  // both encode the same "derivation is exact unless the host chases back
  // into a tap" invariant.
  const std::size_t n_slots = trees_.size();
  std::vector<NodeId> slot_hub(n_slots, kInvalidNode);
  for (const auto& [hub, slot] : tree_index_) slot_hub[slot] = hub;

  struct Tap {
    NodeId host = kInvalidNode;
    EdgeId edge = kInvalidEdge;
  };
  std::vector<Tap> taps(n_slots);
  for (std::size_t i = 0; i < n_slots; ++i) {
    const Arc a = zero_cost_tap(g, slot_hub[i]);
    if (a.edge != kInvalidEdge) taps[i] = Tap{a.to, a.edge};
  }
  const auto is_tap_hub = [&](NodeId v) {
    const auto it = tree_index_.find(v);
    return it != tree_index_.end() && taps[it->second].host != kInvalidNode;
  };

  // For every tap, the slot whose repaired tree it derives from: the
  // host's own tree when stored (and not itself a tap — the mutual-pair
  // degenerate repairs individually), else the first sibling of its host
  // group.  That first sibling repairs as the group's representative.
  struct Job {
    std::size_t slot;
    std::size_t from = SIZE_MAX;  // SIZE_MAX: repair; else derive from slot
  };
  std::vector<std::size_t> repairs;
  std::vector<Job> derives;
  std::unordered_map<NodeId, std::size_t> group_rep;  // non-stored host -> slot
  for (std::size_t i = 0; i < n_slots; ++i) {
    const Tap& t = taps[i];
    if (t.host == kInvalidNode) {
      repairs.push_back(i);
      continue;
    }
    const auto host_it = tree_index_.find(t.host);
    if (host_it != tree_index_.end()) {
      if (is_tap_hub(t.host)) {
        repairs.push_back(i);  // mutual zero-cost pair; no derivation
      } else {
        derives.push_back(Job{i, host_it->second});
      }
      continue;
    }
    const auto [rep, fresh] = group_rep.emplace(t.host, i);
    if (fresh) {
      repairs.push_back(i);  // first tap of the group: the representative
    } else {
      derives.push_back(Job{i, rep->second});
    }
  }

  // Per-repair change records (preassigned slots so the parallel stripes
  // write disjoint locations; only filled when the caller wants them).
  struct RepairOutcome {
    bool changed = false;
    bool full = false;
    std::vector<NodeId> nodes;
  };
  std::vector<RepairOutcome> outcomes(changed != nullptr ? repairs.size() : 0);
  const auto repair_one = [&](ShortestPathEngine& eng, std::size_t ri) {
    if (changed == nullptr) {
      eng.repair(trees_[repairs[ri]], deltas);
      return;
    }
    RepairOutcome& out = outcomes[ri];
    const auto stats = eng.repair(trees_[repairs[ri]], deltas, &out.nodes);
    out.changed = stats.changed_anything();
    out.full = stats.fell_back;
  };

  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(num_threads, 1)), std::max<std::size_t>(repairs.size(), 1));
  if (workers <= 1) {
    ShortestPathEngine local;
    ShortestPathEngine& eng = engine != nullptr ? *engine : local;
    eng.attach(g);
    for (std::size_t ri = 0; ri < repairs.size(); ++ri) repair_one(eng, ri);
  } else {
    g.ensure_csr();  // the lazy csr() cost refresh is not thread-safe on a miss
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        ShortestPathEngine worker(g);
        for (std::size_t ri = w; ri < repairs.size(); ri += workers) repair_one(worker, ri);
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Directly repaired rows are their own memo (and change report).
  std::vector<std::size_t> slot_outcome(changed != nullptr ? n_slots : 0, SIZE_MAX);
  for (std::size_t ri = 0; ri < repairs.size(); ++ri) {
    derive_memo_[repairs[ri]] = DeriveMemo{};
    if (changed == nullptr) continue;
    slot_outcome[repairs[ri]] = ri;
    const RepairOutcome& out = outcomes[ri];
    if (out.changed) {
      changed->push_back(RowDelta{slot_hub[repairs[ri]], out.full, out.nodes});
    }
  }

  // One pass over the deltas buys O(1) tap-edge membership checks below
  // (delta lists can reach E/4 on the repair path, derive jobs one per tap).
  std::unordered_set<EdgeId> delta_edges;
  if (!derives.empty()) {
    delta_edges.reserve(deltas.size());
    for (const EdgeCostDelta& d : deltas) delta_edges.insert(d.edge);
  }
  const auto edge_in_deltas = [&](EdgeId e) { return delta_edges.contains(e); };

  for (const Job& job : derives) {
    const NodeId v = slot_hub[job.slot];
    const Tap& t = taps[job.slot];
    const NodeId from_hub = slot_hub[job.from];
    if (changed != nullptr) {
      // The derived tree inherits its representative's change set — exact
      // (DESIGN.md §9).  Every derivation of the same (host, tap edge) is
      // the same "host image" tree regardless of WHICH sibling served as
      // representative, so the memo only has to certify that the old tree
      // was such an image (from_hub set, same host/edge) and that no tap
      // edge involved was repriced across the delta (a 0 <-> nonzero flip
      // voids the zero-cost-equivalence on one side); otherwise the whole
      // row must be treated as changed.
      const DeriveMemo memo = derive_memo_[job.slot];
      const bool same_shape = memo.from_hub != kInvalidNode && memo.host == t.host &&
                              memo.edge == t.edge && !edge_in_deltas(t.edge) &&
                              (from_hub == t.host || !edge_in_deltas(taps[job.from].edge));
      const std::size_t rep_outcome = slot_outcome[job.from];
      assert(rep_outcome != SIZE_MAX && "a derive source must be a repaired slot");
      const RepairOutcome& rep = outcomes[rep_outcome];
      if (!same_shape) {
        changed->push_back(RowDelta{v, /*full=*/true, {}});
      } else if (rep.changed) {
        changed->push_back(RowDelta{v, rep.full, rep.nodes});
      }
    }
    if (from_hub == t.host) {
      derive_tap_tree(trees_[job.from], v, t.host, t.edge, trees_[job.slot]);
    } else {
      derive_sibling_tap_tree(trees_[job.from], from_hub, taps[job.from].edge, v, t.edge,
                              t.host, trees_[job.slot]);
    }
    derive_memo_[job.slot] = DeriveMemo{from_hub, t.host, t.edge};
  }
}

void MetricClosure::retain(const std::vector<NodeId>& hubs) {
  assert(!bounded_ && "bounded closures have a fixed hub scope; rebuild instead");
  std::unordered_map<NodeId, char> keep;
  keep.reserve(hubs.size());
  for (NodeId h : hubs) keep.emplace(h, 0);
  if (keep.size() >= tree_index_.size()) {
    bool all_kept = true;
    for (const auto& [hub, slot] : tree_index_) {
      (void)slot;
      all_kept = all_kept && keep.contains(hub);
    }
    if (all_kept) return;  // nothing stale — the common steady state
  }
  std::vector<NodeId> slot_hub(trees_.size(), kInvalidNode);
  for (const auto& [hub, slot] : tree_index_) slot_hub[slot] = hub;
  std::vector<ShortestPathTree> kept;
  std::vector<DeriveMemo> kept_memo;
  kept.reserve(trees_.size());
  kept_memo.reserve(trees_.size());
  tree_index_.clear();
  for (std::size_t i = 0; i < trees_.size(); ++i) {
    if (!keep.contains(slot_hub[i])) continue;
    tree_index_.emplace(slot_hub[i], kept.size());
    kept.push_back(std::move(trees_[i]));
    kept_memo.push_back(derive_memo_[i]);
  }
  trees_ = std::move(kept);
  derive_memo_ = std::move(kept_memo);
}

void MetricClosure::build_or_extend(const Graph& g, const std::vector<NodeId>& hubs,
                                    int num_threads, ShortestPathEngine* engine, bool rebuild) {
  // Dedupe the NEW hubs in first-seen order against whatever is already
  // indexed; every new hub gets a preassigned tree slot, so the parallel
  // build below writes disjoint, fixed locations.  Rebuilds (base == 0)
  // reuse trees_ elements (and their vector capacities) in place.
  const std::size_t base = rebuild ? 0 : trees_.size();
  std::vector<NodeId> fresh;
  fresh.reserve(hubs.size());
  for (NodeId h : hubs) {
    if (tree_index_.contains(h)) continue;
    tree_index_.emplace(h, base + fresh.size());
    fresh.push_back(h);
  }
  trees_.resize(base + fresh.size());
  derive_memo_.resize(base + fresh.size());
  std::fill(derive_memo_.begin() + static_cast<std::ptrdiff_t>(base), derive_memo_.end(),
            DeriveMemo{});

  // Classify the new hubs: a zero-cost degree-1 tap is derived from its
  // host's tree instead of running its own Dijkstra — unless the host is a
  // tap hub being built in this same batch (two taps joined by one
  // zero-cost edge would chase each other), where both run fully.  A host
  // whose tree already exists (slot < base) is always usable: stored trees
  // equal full runs, derived or not.
  struct Tap {
    NodeId host = kInvalidNode;
    EdgeId edge = kInvalidEdge;
  };
  std::vector<Tap> taps(fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const Arc a = zero_cost_tap(g, fresh[i]);
    if (a.edge != kInvalidEdge) taps[i] = Tap{a.to, a.edge};
  }
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    if (taps[i].host == kInvalidNode) continue;
    const auto it = tree_index_.find(taps[i].host);
    if (it != tree_index_.end() && it->second >= base &&
        taps[it->second - base].host != kInvalidNode) {
      taps[i] = Tap{};  // host is itself a new tap hub; run this one fully
    }
  }

  // The full-run worklist: every new non-tap hub (into its slot) plus every
  // distinct tap host that is not a hub at all (into side storage).
  struct Run {
    NodeId root = kInvalidNode;
    ShortestPathTree* out = nullptr;
  };
  std::vector<Run> runs;
  std::unordered_map<NodeId, std::size_t> extra_index;  // non-hub host -> slot
  std::vector<ShortestPathTree> extra_trees;
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    if (taps[i].host == kInvalidNode) runs.push_back(Run{fresh[i], &trees_[base + i]});
  }
  for (const Tap& t : taps) {
    if (t.host == kInvalidNode || tree_index_.contains(t.host)) continue;
    if (extra_index.emplace(t.host, extra_trees.size()).second) {
      extra_trees.emplace_back();
    }
  }
  // extra_trees no longer grows; pointers into it are stable from here on.
  runs.reserve(runs.size() + extra_trees.size());
  std::vector<bool> scheduled(extra_trees.size(), false);
  for (const Tap& t : taps) {  // first-seen host order
    if (t.host == kInvalidNode) continue;
    const auto it = extra_index.find(t.host);
    if (it == extra_index.end() || scheduled[it->second]) continue;
    scheduled[it->second] = true;
    runs.push_back(Run{t.host, &extra_trees[it->second]});
  }

  const std::span<const NodeId> stop = bounded_ ? std::span<const NodeId>(settle_targets_)
                                                : std::span<const NodeId>{};
  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(num_threads, 1)), std::max<std::size_t>(runs.size(), 1));
  if (workers <= 1) {
    ShortestPathEngine local;
    ShortestPathEngine& eng = engine != nullptr ? *engine : local;
    eng.attach(g);
    for (const Run& r : runs) eng.run_into(r.root, *r.out, stop);
  } else {
    g.ensure_csr();  // the lazy csr() rebuild is not thread-safe on a miss
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        ShortestPathEngine worker(g);
        for (std::size_t i = w; i < runs.size(); i += workers) {
          worker.run_into(runs[i].root, *runs[i].out, stop);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Derive every new tap hub from its host's finished tree (memcpy-bound).
  // The derivation memo records host-image shape: refresh() re-derives tap
  // groups through a stored representative, so its shape check treats a
  // host-derived memo as matching only when it derives from the host again.
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const Tap& t = taps[i];
    if (t.host == kInvalidNode) continue;
    const auto it = tree_index_.find(t.host);
    const ShortestPathTree& host_tree =
        it != tree_index_.end() ? trees_[it->second] : extra_trees[extra_index.at(t.host)];
    derive_tap_tree(host_tree, fresh[i], t.host, t.edge, trees_[base + i]);
    derive_memo_[base + i] = DeriveMemo{t.host, t.host, t.edge};
  }
}

}  // namespace sofe::graph
