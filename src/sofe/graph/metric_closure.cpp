#include "sofe/graph/metric_closure.hpp"

namespace sofe::graph {

MetricClosure::MetricClosure(const Graph& g, const std::vector<NodeId>& hubs) {
  trees_.reserve(hubs.size());
  for (NodeId h : hubs) {
    if (tree_index_.contains(h)) continue;
    tree_index_.emplace(h, trees_.size());
    trees_.push_back(dijkstra(g, h));
  }
}

}  // namespace sofe::graph
