#pragma once
// Slow reference algorithms used as test oracles: Floyd-Warshall all-pairs
// shortest paths and Bellman-Ford.  Never used on large instances.

#include <vector>

#include "sofe/graph/graph.hpp"

namespace sofe::graph {

/// All-pairs shortest path distance matrix via Floyd-Warshall, O(V^3).
std::vector<std::vector<Cost>> floyd_warshall(const Graph& g);

/// Bellman-Ford single-source distances, O(V*E).
std::vector<Cost> bellman_ford(const Graph& g, NodeId source);

/// Connectivity check via BFS.
bool is_connected(const Graph& g);

}  // namespace sofe::graph
