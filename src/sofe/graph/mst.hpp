#pragma once
// Minimum spanning tree / forest algorithms (Kruskal and Prim) plus simple
// tree utilities shared by the Steiner-tree substrate.

#include <vector>

#include "sofe/graph/graph.hpp"

namespace sofe::graph {

/// An (edge-id) subset of a host graph forming a tree or forest.
struct TreeEdges {
  std::vector<EdgeId> edges;

  Cost total_cost(const Graph& g) const {
    Cost sum = 0.0;
    for (EdgeId e : edges) sum += g.edge(e).cost;
    return sum;
  }
};

/// Kruskal over all edges.  Returns a spanning forest (spanning tree when the
/// graph is connected).  Deterministic: ties break by edge id.
TreeEdges minimum_spanning_forest(const Graph& g);

/// Prim restricted to the nodes marked in `in_subgraph` (size = node_count).
/// Grows from `start`; returns a spanning tree of `start`'s component within
/// the induced subgraph.
TreeEdges prim_subgraph(const Graph& g, const std::vector<bool>& in_subgraph, NodeId start);

/// True iff `edges` forms a forest (no cycle) over g.
bool is_forest(const Graph& g, const std::vector<EdgeId>& edges);

/// True iff `edges` connects every node in `nodes` into one component.
bool spans(const Graph& g, const std::vector<EdgeId>& edges, const std::vector<NodeId>& nodes);

/// Iteratively removes degree-1 nodes that are not marked `keep` (terminal
/// pruning for Steiner-tree construction).  Returns the pruned edge set.
std::vector<EdgeId> prune_non_terminal_leaves(const Graph& g, std::vector<EdgeId> edges,
                                              const std::vector<bool>& keep);

}  // namespace sofe::graph
