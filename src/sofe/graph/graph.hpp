#pragma once
// Core weighted undirected graph used throughout the library.
//
// Design notes (see DESIGN.md §2):
//  * Nodes are dense integer ids [0, node_count).  Every higher layer
//    (problem instances, topologies, auxiliary graphs) maps its entities onto
//    these ids, so the graph stays a small cache-friendly POD store.
//  * Parallel edges are permitted (the SOFDA auxiliary graph needs several
//    virtual edges between the same endpoint pair); self loops are not.
//  * Costs are nonnegative doubles; the library asserts this at insertion.

#include <cassert>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace sofe::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
using Cost = double;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;
inline constexpr Cost kInfiniteCost = std::numeric_limits<Cost>::infinity();

/// One undirected edge.  `u < v` is NOT enforced; callers that need a
/// canonical key use `Graph::edge_key`.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  Cost cost = 0.0;

  /// The endpoint opposite to `from`.  Requires from ∈ {u, v}.
  NodeId other(NodeId from) const noexcept {
    assert(from == u || from == v);
    return from == u ? v : u;
  }
};

/// Adjacency entry: neighbouring node plus the edge that reaches it.
struct Arc {
  NodeId to = kInvalidNode;
  EdgeId edge = kInvalidEdge;
};

/// Record of one edge-cost mutation: the input of the incremental shortest-
/// path machinery (ShortestPathEngine::repair, MetricClosure::refresh,
/// api::ClosureSession).  `new_cost` must equal the edge's current cost in
/// the graph the consumer is attached to; `old_cost` is the value the
/// derived structure (tree, closure) was computed against.  At most one
/// delta per edge — a caller that mutates the same edge twice folds the
/// pair into one record.  A cost of kInfiniteCost is legal and acts as a
/// soft edge removal (infinite arcs never relax), so disconnect/reconnect
/// is expressible as a cost delta.
struct EdgeCostDelta {
  EdgeId edge = kInvalidEdge;
  Cost old_cost = 0.0;
  Cost new_cost = 0.0;
};

/// One CSR adjacency entry: head node, edge id and the edge's cost packed
/// into 16 bytes, so a relaxation reads one cache line per few arcs and
/// never touches the Edge array.
struct CsrArc {
  Cost cost = 0.0;
  NodeId to = kInvalidNode;
  EdgeId edge = kInvalidEdge;
};

/// Flat compressed-sparse-row adjacency snapshot (see DESIGN.md §2).
///
/// The arcs of node v live contiguously at [offsets[v], offsets[v+1]) in
/// `arcs`, in the same order `neighbors(v)` reports them.  Built lazily by
/// `Graph::csr()` and cached; structural mutations (add_node/add_edge) force
/// a full rebuild, cost mutations (set_edge_cost) only refresh the stored
/// costs in one O(E) sweep.
struct CsrView {
  std::vector<std::int32_t> offsets;  // size node_count()+1
  std::vector<CsrArc> arcs;           // size 2*edge_count()

  std::int32_t begin(NodeId v) const noexcept {
    return offsets[static_cast<std::size_t>(v)];
  }
  std::int32_t end(NodeId v) const noexcept {
    return offsets[static_cast<std::size_t>(v) + 1];
  }
};

/// Weighted undirected multigraph with O(1) node/edge addition and
/// contiguous adjacency storage.
class Graph {
 public:
  Graph() = default;
  explicit Graph(NodeId node_count) : adj_(static_cast<std::size_t>(node_count)) {
    assert(node_count >= 0);
  }

  NodeId node_count() const noexcept { return static_cast<NodeId>(adj_.size()); }
  EdgeId edge_count() const noexcept { return static_cast<EdgeId>(edges_.size()); }

  /// Appends an isolated node and returns its id.
  NodeId add_node() {
    adj_.emplace_back();
    ++version_;
    csr_.structure_valid = false;
    return node_count() - 1;
  }

  /// Adds an undirected edge with nonnegative cost; returns its id.
  EdgeId add_edge(NodeId u, NodeId v, Cost cost) {
    assert(valid_node(u) && valid_node(v));
    assert(u != v && "self loops are not supported");
    assert(cost >= 0.0 && "edge costs must be nonnegative");
    const EdgeId id = edge_count();
    edges_.push_back(Edge{u, v, cost});
    adj_[static_cast<std::size_t>(u)].push_back(Arc{v, id});
    adj_[static_cast<std::size_t>(v)].push_back(Arc{u, id});
    ++version_;
    csr_.structure_valid = false;
    return id;
  }

  const Edge& edge(EdgeId e) const {
    assert(valid_edge(e));
    return edges_[static_cast<std::size_t>(e)];
  }

  /// Mutable edge cost (used by the online simulator when loads change).
  /// O(1): the CSR cache is refreshed lazily on the next `csr()` call.
  void set_edge_cost(EdgeId e, Cost cost) {
    assert(valid_edge(e));
    assert(cost >= 0.0);
    edges_[static_cast<std::size_t>(e)].cost = cost;
    ++version_;
    csr_.costs_valid = false;
  }

  /// Monotone mutation counter: bumped by add_node/add_edge/set_edge_cost.
  /// Callers that cache derived structures (shortest-path trees, closures)
  /// key their invalidation on it.
  std::uint64_t version() const noexcept { return version_; }

  /// The CSR adjacency snapshot, (re)built lazily.  NOT thread-safe on a
  /// cache miss: call `ensure_csr()` before sharing the graph across reader
  /// threads.
  const CsrView& csr() const {
    if (!csr_.structure_valid) {
      rebuild_csr();
    } else if (!csr_.costs_valid) {
      refresh_csr_costs();
    }
    return csr_.view;
  }

  /// Forces the CSR cache into a valid state now.  The one call that makes
  /// concurrent read-only use of this graph safe: every subsequent `csr()`
  /// is a pure read until the next mutation.  MetricClosure and the api
  /// solver sessions call this before fanning out worker threads.
  const CsrView& ensure_csr() const { return csr(); }

  std::span<const Arc> neighbors(NodeId v) const {
    assert(valid_node(v));
    return adj_[static_cast<std::size_t>(v)];
  }

  std::span<const Edge> edges() const noexcept { return edges_; }

  /// Degree counting parallel edges.
  std::size_t degree(NodeId v) const { return neighbors(v).size(); }

  /// First edge between u and v (cheapest if `cheapest`), or kInvalidEdge.
  EdgeId find_edge(NodeId u, NodeId v, bool cheapest = true) const {
    EdgeId best = kInvalidEdge;
    for (const Arc& a : neighbors(u)) {
      if (a.to != v) continue;
      if (best == kInvalidEdge || edge(a.edge).cost < edge(best).cost) best = a.edge;
      if (!cheapest) break;
    }
    return best;
  }

  bool valid_node(NodeId v) const noexcept { return v >= 0 && v < node_count(); }
  bool valid_edge(EdgeId e) const noexcept { return e >= 0 && e < edge_count(); }

  /// Canonical (min, max) endpoint pair, usable as a map key for undirected
  /// edge identity irrespective of orientation.
  static std::pair<NodeId, NodeId> edge_key(NodeId u, NodeId v) noexcept {
    return u < v ? std::pair{u, v} : std::pair{v, u};
  }

  /// Total cost of all edges (diagnostics).
  Cost total_edge_cost() const {
    Cost sum = 0.0;
    for (const Edge& e : edges_) sum += e.cost;
    return sum;
  }

 private:
  /// CSR cache.  Copying a Graph deliberately drops the cache (copies are
  /// usually mutated immediately — SOFDA's auxiliary graph, the online
  /// simulator's per-request problem — so carrying a stale snapshot would
  /// only waste memory); moves keep it.
  struct CsrCache {
    CsrView view;
    bool structure_valid = false;
    bool costs_valid = false;

    CsrCache() = default;
    CsrCache(const CsrCache&) noexcept {}
    CsrCache& operator=(const CsrCache&) noexcept {
      view = CsrView{};
      structure_valid = costs_valid = false;
      return *this;
    }
    CsrCache(CsrCache&& o) noexcept
        : view(std::move(o.view)),
          structure_valid(o.structure_valid),
          costs_valid(o.costs_valid) {
      o.structure_valid = o.costs_valid = false;
    }
    CsrCache& operator=(CsrCache&& o) noexcept {
      view = std::move(o.view);
      structure_valid = o.structure_valid;
      costs_valid = o.costs_valid;
      o.structure_valid = o.costs_valid = false;
      return *this;
    }
  };

  void rebuild_csr() const;
  void refresh_csr_costs() const;

  std::vector<Edge> edges_;
  std::vector<std::vector<Arc>> adj_;
  std::uint64_t version_ = 0;
  mutable CsrCache csr_;
};

}  // namespace sofe::graph
