#pragma once
// Single-source shortest paths (binary-heap Dijkstra) and path extraction.
//
// Dijkstra underlies nearly everything in this library: the Procedure-1
// metric instance, the KMB/Mehlhorn Steiner algorithms, walk lifting, and the
// exact layered-graph solver all consume `ShortestPathTree`s.

#include <vector>

#include "sofe/graph/graph.hpp"

namespace sofe::graph {

/// Result of one Dijkstra run: distance and predecessor arrays.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<Cost> dist;        // dist[v] = d(source, v); +inf if unreachable
  std::vector<NodeId> parent;    // predecessor node on a shortest path
  std::vector<EdgeId> parent_edge;  // edge used to reach v from parent[v]

  bool reachable(NodeId v) const { return dist[static_cast<std::size_t>(v)] < kInfiniteCost; }

  Cost distance(NodeId v) const { return dist[static_cast<std::size_t>(v)]; }

  /// Reconstructs the node sequence source -> ... -> target.
  /// Requires reachable(target).
  std::vector<NodeId> path_to(NodeId target) const;
};

/// Runs Dijkstra from `source` over the whole graph.
ShortestPathTree dijkstra(const Graph& g, NodeId source);

/// Multi-source Dijkstra: distance to the nearest of `sources`, with
/// `owner[v]` identifying which source claimed v (Mehlhorn's Voronoi
/// partition).  Ties break toward the smaller source id, deterministically.
struct VoronoiPartition {
  std::vector<Cost> dist;
  std::vector<NodeId> owner;
  std::vector<NodeId> parent;
  std::vector<EdgeId> parent_edge;
};
VoronoiPartition multi_source_dijkstra(const Graph& g, const std::vector<NodeId>& sources);

}  // namespace sofe::graph
