#pragma once
// Shortest-path result types and one-shot Dijkstra conveniences.
//
// Dijkstra underlies nearly everything in this library: the Procedure-1
// metric instance, the KMB/Mehlhorn Steiner algorithms, walk lifting, and the
// exact layered-graph solver all consume `ShortestPathTree`s.  The free
// functions below run one query with throwaway workspaces; repeated queries
// go through graph::ShortestPathEngine (shortest_path_engine.hpp), which
// reuses its workspaces and the graph's CSR adjacency so the hot paths do no
// per-query allocation.  Both produce bit-identical trees.

#include <cstddef>
#include <vector>

#include "sofe/graph/graph.hpp"

namespace sofe::graph {

/// Result of one Dijkstra run: distance and predecessor arrays.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<Cost> dist;        // dist[v] = d(source, v); +inf if unreachable
  std::vector<NodeId> parent;    // predecessor node on a shortest path
  std::vector<EdgeId> parent_edge;  // edge used to reach v from parent[v]

  bool reachable(NodeId v) const { return dist[static_cast<std::size_t>(v)] < kInfiniteCost; }

  Cost distance(NodeId v) const { return dist[static_cast<std::size_t>(v)]; }

  /// Reconstructs the node sequence source -> ... -> target.
  /// Requires reachable(target) (asserted).  path_to(source) == {source}.
  std::vector<NodeId> path_to(NodeId target) const;
};

/// Mutable view of one shortest-path tree stored as raw rows (slab-backed
/// closure storage, DESIGN.md §13).  Same field meanings as
/// ShortestPathTree; the arrays live elsewhere and must hold `n` entries.
/// ShortestPathEngine's run_into/repair write through views like this one,
/// so a tree row never needs to round-trip through per-tree vectors.
struct TreeRow {
  NodeId source = kInvalidNode;
  Cost* dist = nullptr;
  NodeId* parent = nullptr;
  EdgeId* parent_edge = nullptr;
  std::size_t n = 0;
};

/// Read-only view of one stored shortest-path tree; the query surface of
/// MetricClosure::tree().  Mirrors ShortestPathTree's accessors so callers
/// binding `const auto&` keep compiling unchanged.
struct ConstTreeRow {
  NodeId source = kInvalidNode;
  const Cost* dist = nullptr;
  const NodeId* parent = nullptr;
  const EdgeId* parent_edge = nullptr;
  std::size_t n = 0;

  ConstTreeRow() = default;
  ConstTreeRow(NodeId src, const Cost* d, const NodeId* p, const EdgeId* pe, std::size_t count)
      : source(src), dist(d), parent(p), parent_edge(pe), n(count) {}
  ConstTreeRow(const TreeRow& row)  // NOLINT(google-explicit-constructor)
      : source(row.source), dist(row.dist), parent(row.parent),
        parent_edge(row.parent_edge), n(row.n) {}
  ConstTreeRow(const ShortestPathTree& t)  // NOLINT(google-explicit-constructor)
      : source(t.source), dist(t.dist.data()), parent(t.parent.data()),
        parent_edge(t.parent_edge.data()), n(t.dist.size()) {}

  bool reachable(NodeId v) const { return dist[static_cast<std::size_t>(v)] < kInfiniteCost; }

  Cost distance(NodeId v) const { return dist[static_cast<std::size_t>(v)]; }

  /// Reconstructs the node sequence source -> ... -> target.
  /// Requires reachable(target) (asserted).  path_to(source) == {source}.
  std::vector<NodeId> path_to(NodeId target) const;

  /// Deep copy into an owning ShortestPathTree (snapshots for diffing in
  /// tests, dist-layer row export).  The view itself never owns storage.
  ShortestPathTree materialize() const;
};

/// Runs Dijkstra from `source` over the whole graph.
ShortestPathTree dijkstra(const Graph& g, NodeId source);

/// Multi-source Dijkstra: distance to the nearest of `sources`, with
/// `owner[v]` identifying which source claimed v (Mehlhorn's Voronoi
/// partition).  Labels are ordered lexicographically by (distance, owner),
/// so an equal-distance node deterministically goes to the smallest owner
/// among the labels that reach it — not a heuristic of visit order
/// (tested).  With strictly positive costs this IS the smallest source id
/// at minimum distance.  A source always owns itself, even when a
/// zero-cost path from a smaller source reaches it (every source keeps a
/// non-empty cell — Mehlhorn requires it); since labels never propagate
/// through the protected source, nodes it alone reaches keep its id even
/// if a smaller source ties through that zero-cost path.
struct VoronoiPartition {
  std::vector<Cost> dist;
  std::vector<NodeId> owner;
  std::vector<NodeId> parent;
  std::vector<EdgeId> parent_edge;
};
VoronoiPartition multi_source_dijkstra(const Graph& g, const std::vector<NodeId>& sources);

}  // namespace sofe::graph
