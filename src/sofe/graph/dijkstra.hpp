#pragma once
// Shortest-path result types and one-shot Dijkstra conveniences.
//
// Dijkstra underlies nearly everything in this library: the Procedure-1
// metric instance, the KMB/Mehlhorn Steiner algorithms, walk lifting, and the
// exact layered-graph solver all consume `ShortestPathTree`s.  The free
// functions below run one query with throwaway workspaces; repeated queries
// go through graph::ShortestPathEngine (shortest_path_engine.hpp), which
// reuses its workspaces and the graph's CSR adjacency so the hot paths do no
// per-query allocation.  Both produce bit-identical trees.

#include <vector>

#include "sofe/graph/graph.hpp"

namespace sofe::graph {

/// Result of one Dijkstra run: distance and predecessor arrays.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<Cost> dist;        // dist[v] = d(source, v); +inf if unreachable
  std::vector<NodeId> parent;    // predecessor node on a shortest path
  std::vector<EdgeId> parent_edge;  // edge used to reach v from parent[v]

  bool reachable(NodeId v) const { return dist[static_cast<std::size_t>(v)] < kInfiniteCost; }

  Cost distance(NodeId v) const { return dist[static_cast<std::size_t>(v)]; }

  /// Reconstructs the node sequence source -> ... -> target.
  /// Requires reachable(target) (asserted).  path_to(source) == {source}.
  std::vector<NodeId> path_to(NodeId target) const;
};

/// Runs Dijkstra from `source` over the whole graph.
ShortestPathTree dijkstra(const Graph& g, NodeId source);

/// Multi-source Dijkstra: distance to the nearest of `sources`, with
/// `owner[v]` identifying which source claimed v (Mehlhorn's Voronoi
/// partition).  Labels are ordered lexicographically by (distance, owner),
/// so an equal-distance node deterministically goes to the smallest owner
/// among the labels that reach it — not a heuristic of visit order
/// (tested).  With strictly positive costs this IS the smallest source id
/// at minimum distance.  A source always owns itself, even when a
/// zero-cost path from a smaller source reaches it (every source keeps a
/// non-empty cell — Mehlhorn requires it); since labels never propagate
/// through the protected source, nodes it alone reaches keep its id even
/// if a smaller source ties through that zero-cost path.
struct VoronoiPartition {
  std::vector<Cost> dist;
  std::vector<NodeId> owner;
  std::vector<NodeId> parent;
  std::vector<EdgeId> parent_edge;
};
VoronoiPartition multi_source_dijkstra(const Graph& g, const std::vector<NodeId>& sources);

}  // namespace sofe::graph
