#include "sofe/graph/graph.hpp"

namespace sofe::graph {

void Graph::rebuild_csr() const {
  CsrView& v = csr_.view;
  const auto n = static_cast<std::size_t>(node_count());
  const std::size_t m2 = 2 * static_cast<std::size_t>(edge_count());

  v.offsets.assign(n + 1, 0);
  v.arcs.resize(m2);

  // Counting sort over endpoints.  Arc order within a node matches the
  // insertion order of `adj_` (edges are scanned in id order and each edge
  // appends one arc per endpoint), so CSR and `neighbors()` agree on
  // iteration order — and so do the relaxation orders of the engine and the
  // historical adjacency-list Dijkstra, keeping their trees bit-identical.
  for (const Edge& e : edges_) {
    ++v.offsets[static_cast<std::size_t>(e.u) + 1];
    ++v.offsets[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) v.offsets[i] += v.offsets[i - 1];

  std::vector<std::int32_t> cursor(v.offsets.begin(), v.offsets.end() - 1);
  for (EdgeId id = 0; id < edge_count(); ++id) {
    const Edge& e = edges_[static_cast<std::size_t>(id)];
    const auto cu = static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++);
    v.arcs[cu] = CsrArc{e.cost, e.v, id};
    const auto cv = static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)]++);
    v.arcs[cv] = CsrArc{e.cost, e.u, id};
  }

  csr_.structure_valid = true;
  csr_.costs_valid = true;
}

void Graph::refresh_csr_costs() const {
  for (CsrArc& a : csr_.view.arcs) {
    a.cost = edges_[static_cast<std::size_t>(a.edge)].cost;
  }
  csr_.costs_valid = true;
}

}  // namespace sofe::graph
