#include "sofe/graph/mst.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

#include "sofe/graph/dsu.hpp"

namespace sofe::graph {

TreeEdges minimum_spanning_forest(const Graph& g) {
  std::vector<EdgeId> order(static_cast<std::size_t>(g.edge_count()));
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return g.edge(a).cost < g.edge(b).cost;
  });
  DisjointSetUnion dsu(static_cast<std::size_t>(g.node_count()));
  TreeEdges out;
  for (EdgeId e : order) {
    const Edge& ed = g.edge(e);
    if (dsu.unite(static_cast<std::size_t>(ed.u), static_cast<std::size_t>(ed.v))) {
      out.edges.push_back(e);
    }
  }
  return out;
}

TreeEdges prim_subgraph(const Graph& g, const std::vector<bool>& in_subgraph, NodeId start) {
  assert(g.valid_node(start));
  assert(in_subgraph.size() == static_cast<std::size_t>(g.node_count()));
  assert(in_subgraph[static_cast<std::size_t>(start)]);

  struct Item {
    Cost cost;
    EdgeId edge;
    NodeId to;
    bool operator>(const Item& o) const noexcept {
      if (cost != o.cost) return cost > o.cost;
      return edge > o.edge;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<bool> in_tree(static_cast<std::size_t>(g.node_count()), false);
  TreeEdges out;

  auto scan = [&](NodeId v) {
    in_tree[static_cast<std::size_t>(v)] = true;
    for (const Arc& a : g.neighbors(v)) {
      if (in_subgraph[static_cast<std::size_t>(a.to)] && !in_tree[static_cast<std::size_t>(a.to)]) {
        heap.push({g.edge(a.edge).cost, a.edge, a.to});
      }
    }
  };
  scan(start);
  while (!heap.empty()) {
    const Item item = heap.top();
    heap.pop();
    if (in_tree[static_cast<std::size_t>(item.to)]) continue;
    out.edges.push_back(item.edge);
    scan(item.to);
  }
  return out;
}

bool is_forest(const Graph& g, const std::vector<EdgeId>& edges) {
  DisjointSetUnion dsu(static_cast<std::size_t>(g.node_count()));
  for (EdgeId e : edges) {
    const Edge& ed = g.edge(e);
    if (!dsu.unite(static_cast<std::size_t>(ed.u), static_cast<std::size_t>(ed.v))) return false;
  }
  return true;
}

bool spans(const Graph& g, const std::vector<EdgeId>& edges, const std::vector<NodeId>& nodes) {
  if (nodes.empty()) return true;
  DisjointSetUnion dsu(static_cast<std::size_t>(g.node_count()));
  for (EdgeId e : edges) {
    const Edge& ed = g.edge(e);
    dsu.unite(static_cast<std::size_t>(ed.u), static_cast<std::size_t>(ed.v));
  }
  const auto root = dsu.find(static_cast<std::size_t>(nodes.front()));
  for (NodeId v : nodes) {
    if (dsu.find(static_cast<std::size_t>(v)) != root) return false;
  }
  return true;
}

std::vector<EdgeId> prune_non_terminal_leaves(const Graph& g, std::vector<EdgeId> edges,
                                              const std::vector<bool>& keep) {
  assert(keep.size() == static_cast<std::size_t>(g.node_count()));
  std::vector<int> degree(static_cast<std::size_t>(g.node_count()), 0);
  std::vector<bool> alive(edges.size(), true);
  for (EdgeId e : edges) {
    ++degree[static_cast<std::size_t>(g.edge(e).u)];
    ++degree[static_cast<std::size_t>(g.edge(e).v)];
  }
  // Repeatedly strip prunable leaves.  Each pass is O(|edges|); the loop runs
  // at most O(tree diameter) times, trivial at our scales.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!alive[i]) continue;
      const Edge& ed = g.edge(edges[i]);
      for (NodeId leaf : {ed.u, ed.v}) {
        if (degree[static_cast<std::size_t>(leaf)] == 1 && !keep[static_cast<std::size_t>(leaf)]) {
          alive[i] = false;
          --degree[static_cast<std::size_t>(ed.u)];
          --degree[static_cast<std::size_t>(ed.v)];
          changed = true;
          break;
        }
      }
    }
  }
  std::vector<EdgeId> out;
  out.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (alive[i]) out.push_back(edges[i]);
  }
  return out;
}

}  // namespace sofe::graph
