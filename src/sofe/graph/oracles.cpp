#include "sofe/graph/oracles.hpp"

#include <algorithm>
#include <queue>

namespace sofe::graph {

std::vector<std::vector<Cost>> floyd_warshall(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<std::vector<Cost>> d(n, std::vector<Cost>(n, kInfiniteCost));
  for (std::size_t i = 0; i < n; ++i) d[i][i] = 0.0;
  for (const Edge& e : g.edges()) {
    const auto u = static_cast<std::size_t>(e.u);
    const auto v = static_cast<std::size_t>(e.v);
    d[u][v] = std::min(d[u][v], e.cost);
    d[v][u] = std::min(d[v][u], e.cost);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (d[i][k] == kInfiniteCost) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (d[k][j] == kInfiniteCost) continue;
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

std::vector<Cost> bellman_ford(const Graph& g, NodeId source) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<Cost> dist(n, kInfiniteCost);
  dist[static_cast<std::size_t>(source)] = 0.0;
  for (std::size_t round = 0; round + 1 < n; ++round) {
    bool changed = false;
    for (const Edge& e : g.edges()) {
      const auto u = static_cast<std::size_t>(e.u);
      const auto v = static_cast<std::size_t>(e.v);
      if (dist[u] + e.cost < dist[v]) {
        dist[v] = dist[u] + e.cost;
        changed = true;
      }
      if (dist[v] + e.cost < dist[u]) {
        dist[u] = dist[v] + e.cost;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

bool is_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  std::vector<bool> seen(static_cast<std::size_t>(g.node_count()), false);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const Arc& a : g.neighbors(u)) {
      if (!seen[static_cast<std::size_t>(a.to)]) {
        seen[static_cast<std::size_t>(a.to)] = true;
        ++visited;
        q.push(a.to);
      }
    }
  }
  return visited == static_cast<std::size_t>(g.node_count());
}

}  // namespace sofe::graph
