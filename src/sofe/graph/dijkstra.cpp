#include "sofe/graph/dijkstra.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace sofe::graph {

namespace {

struct HeapItem {
  Cost dist;
  NodeId node;
  bool operator>(const HeapItem& o) const noexcept {
    if (dist != o.dist) return dist > o.dist;
    return node > o.node;  // deterministic tie-break
  }
};

using MinHeap = std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>;

}  // namespace

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
  assert(reachable(target));
  std::vector<NodeId> path;
  for (NodeId v = target; v != kInvalidNode; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  assert(path.front() == source);
  return path;
}

ShortestPathTree dijkstra(const Graph& g, NodeId source) {
  assert(g.valid_node(source));
  const auto n = static_cast<std::size_t>(g.node_count());
  ShortestPathTree t;
  t.source = source;
  t.dist.assign(n, kInfiniteCost);
  t.parent.assign(n, kInvalidNode);
  t.parent_edge.assign(n, kInvalidEdge);

  MinHeap heap;
  t.dist[static_cast<std::size_t>(source)] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > t.dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    for (const Arc& a : g.neighbors(u)) {
      const Cost nd = d + g.edge(a.edge).cost;
      auto& dv = t.dist[static_cast<std::size_t>(a.to)];
      if (nd < dv) {
        dv = nd;
        t.parent[static_cast<std::size_t>(a.to)] = u;
        t.parent_edge[static_cast<std::size_t>(a.to)] = a.edge;
        heap.push({nd, a.to});
      }
    }
  }
  return t;
}

VoronoiPartition multi_source_dijkstra(const Graph& g, const std::vector<NodeId>& sources) {
  const auto n = static_cast<std::size_t>(g.node_count());
  VoronoiPartition p;
  p.dist.assign(n, kInfiniteCost);
  p.owner.assign(n, kInvalidNode);
  p.parent.assign(n, kInvalidNode);
  p.parent_edge.assign(n, kInvalidEdge);

  MinHeap heap;
  // Seed in ascending id order so equal-distance ties resolve to the smaller
  // source id regardless of the order in `sources`.
  std::vector<NodeId> seeds = sources;
  std::sort(seeds.begin(), seeds.end());
  for (NodeId s : seeds) {
    assert(g.valid_node(s));
    auto& d = p.dist[static_cast<std::size_t>(s)];
    if (d == 0.0) continue;  // duplicate seed
    d = 0.0;
    p.owner[static_cast<std::size_t>(s)] = s;
    heap.push({0.0, s});
  }
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > p.dist[static_cast<std::size_t>(u)]) continue;
    for (const Arc& a : g.neighbors(u)) {
      const Cost nd = d + g.edge(a.edge).cost;
      auto& dv = p.dist[static_cast<std::size_t>(a.to)];
      if (nd < dv) {
        dv = nd;
        p.owner[static_cast<std::size_t>(a.to)] = p.owner[static_cast<std::size_t>(u)];
        p.parent[static_cast<std::size_t>(a.to)] = u;
        p.parent_edge[static_cast<std::size_t>(a.to)] = a.edge;
        heap.push({nd, a.to});
      }
    }
  }
  return p;
}

}  // namespace sofe::graph
