#include "sofe/graph/dijkstra.hpp"

#include <algorithm>
#include <cassert>

#include "sofe/graph/shortest_path_engine.hpp"

namespace sofe::graph {

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
  assert(reachable(target));
  std::vector<NodeId> path;
  for (NodeId v = target; v != kInvalidNode; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  assert(path.front() == source);
  return path;
}

std::vector<NodeId> ConstTreeRow::path_to(NodeId target) const {
  assert(reachable(target));
  std::vector<NodeId> path;
  for (NodeId v = target; v != kInvalidNode; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  assert(path.front() == source);
  return path;
}

ShortestPathTree ConstTreeRow::materialize() const {
  ShortestPathTree t;
  t.source = source;
  t.dist.assign(dist, dist + n);
  t.parent.assign(parent, parent + n);
  t.parent_edge.assign(parent_edge, parent_edge + n);
  return t;
}

// The free functions are one-shot conveniences (tests, oracles, small
// callers); hot paths hold a ShortestPathEngine and amortize its workspaces
// across queries instead.

ShortestPathTree dijkstra(const Graph& g, NodeId source) {
  ShortestPathEngine engine(g);
  ShortestPathTree t;
  engine.run_into(source, t);
  return t;
}

VoronoiPartition multi_source_dijkstra(const Graph& g, const std::vector<NodeId>& sources) {
  ShortestPathEngine engine(g);
  return engine.run_multi(sources);  // copies the engine-owned partition out
}

}  // namespace sofe::graph
