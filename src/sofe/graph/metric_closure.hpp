#pragma once
// Metric closure over a subset of "hub" nodes: pairwise shortest-path
// distances plus stored shortest-path trees for path reconstruction.
//
// Procedure 1 of the paper (k-stroll instance construction), the KMB Steiner
// algorithm, and SOFDA's auxiliary-graph pricing all consult distances among
// the same hub set {sources} ∪ {VMs} ∪ {destinations}; this class computes
// each hub's Dijkstra tree once and shares it.

#include <cassert>
#include <unordered_map>
#include <vector>

#include "sofe/graph/dijkstra.hpp"
#include "sofe/graph/graph.hpp"

namespace sofe::graph {

class ShortestPathEngine;

class MetricClosure {
 public:
  /// Builds the shortest-path tree of every node in `hubs` (duplicates
  /// tolerated) through a ShortestPathEngine over the graph's CSR view.
  ///
  /// Tap-hub derivation: a hub attached to the rest of the graph by a
  /// single zero-cost edge — the library's canonical VM tap
  /// (topology::make_problem, the online simulator) — shares every shortest
  /// path with its attachment host, so its tree is derived from the host's
  /// tree in one O(V) copy plus two parent fixups instead of a full
  /// Dijkstra.  The derived tree is bit-identical to what the full run
  /// produces (tested): with a zero-cost tap, label arithmetic, settle
  /// order and every relaxation outcome coincide.  A SOFDA-style hub set
  /// (many VMs per data center plus sources) therefore costs one Dijkstra
  /// per *distinct host* rather than one per VM.
  ///
  /// `num_threads` > 1 runs the full (non-derived) trees in parallel: the
  /// CSR is prebuilt once (`Graph::ensure_csr`), roots are striped over
  /// workers in a fixed assignment, and each worker runs its own engine into
  /// preassigned slots — so the result is bit-identical to the
  /// single-threaded build for any thread count (tested).  Values < 1 are
  /// clamped to 1; the thread count is a knob on AlgoOptions
  /// (closure_threads) and api::SolverOptions (threads) for the solver
  /// layers.
  MetricClosure(const Graph& g, const std::vector<NodeId>& hubs, int num_threads = 1) {
    build(g, hubs, num_threads);
  }

  /// An empty closure; populate with build().  Lets long-lived solver
  /// sessions keep one MetricClosure object across solves.
  MetricClosure() = default;

  /// (Re)builds the closure in place.  Tree and index storage is reused, so
  /// a session that rebuilds after an edge-cost change (the online
  /// simulator's per-arrival price refresh) recomputes the Dijkstra trees
  /// without reallocating their O(hubs · V) arrays.  When `engine` is given
  /// it runs the single-threaded build (persistent heap/label workspaces —
  /// api::ClosureSession passes its session engine); parallel builds use
  /// one worker-local engine per thread regardless.
  void build(const Graph& g, const std::vector<NodeId>& hubs, int num_threads = 1,
             ShortestPathEngine* engine = nullptr);

  /// Shortest-path distance from hub `from` to any node `to`.
  /// Requires `from` to be a hub.
  Cost distance(NodeId from, NodeId to) const {
    return tree(from).distance(to);
  }

  /// Shortest path (node sequence) from hub `from` to `to`.
  std::vector<NodeId> path(NodeId from, NodeId to) const {
    return tree(from).path_to(to);
  }

  bool is_hub(NodeId v) const { return tree_index_.contains(v); }

  const ShortestPathTree& tree(NodeId hub) const {
    const auto it = tree_index_.find(hub);
    assert(it != tree_index_.end() && "node is not a hub of this closure");
    return trees_[it->second];
  }

 private:
  std::vector<ShortestPathTree> trees_;
  std::unordered_map<NodeId, std::size_t> tree_index_;
};

}  // namespace sofe::graph
