#pragma once
// Metric closure over a subset of "hub" nodes: pairwise shortest-path
// distances plus stored shortest-path trees for path reconstruction.
//
// Procedure 1 of the paper (k-stroll instance construction), the KMB Steiner
// algorithm, and SOFDA's auxiliary-graph pricing all consult distances among
// the same hub set {sources} ∪ {VMs} ∪ {destinations}; this class computes
// each hub's Dijkstra tree once and shares it.
//
// Storage is slab-backed rows (RowStore, DESIGN.md §13): each hub owns one
// dist row and one idx row (parents + parent edges) addressed by slot, tap
// hubs alias their host's dist row, and api::ClosureSession::publish
// snapshots the closure by sharing row references copy-on-write instead of
// deep-copying trees.

#include <cassert>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "sofe/graph/closure_rows.hpp"
#include "sofe/graph/dijkstra.hpp"
#include "sofe/graph/graph.hpp"

namespace sofe::graph {

class ShortestPathEngine;

/// Settle scope of a closure build.  The default builds complete trees.
/// `bounded = true` stops every hub run once all hubs (plus
/// `extra_targets`) are settled — exact for every hub-to-hub / hub-to-
/// target distance AND path (parents settle first), undefined beyond.
/// SOFDA pricing only ever queries hubs and destinations, so its closures
/// can be bounded (SolverOptions::bounded_closure); bounded closures are
/// NOT repairable (refresh asserts) and not extendable.
struct ClosureScope {
  bool bounded = false;
  std::span<const NodeId> extra_targets;
};

class MetricClosure {
 public:
  /// One hub row's change report from refresh() (DESIGN.md §9): after a
  /// repair, the row `hub` may differ from its pre-repair state only at the
  /// listed `nodes` (an over-approximation — listed nodes may be unchanged,
  /// unlisted nodes never changed; duplicates possible), or anywhere when
  /// `full` is set (the repair fell back to a fresh run, or the tree was
  /// re-derived through a different representative than last time).  Rows
  /// that provably did not change are not reported at all.  This is the
  /// feed the repair-aware pricing cache (core::PricingSession) subscribes
  /// to through api::ClosureSession.
  struct RowDelta {
    NodeId hub = kInvalidNode;
    bool full = false;
    std::vector<NodeId> nodes;
  };
  /// Builds the shortest-path tree of every node in `hubs` (duplicates
  /// tolerated) through a ShortestPathEngine over the graph's CSR view.
  ///
  /// Tap-hub derivation: a hub attached to the rest of the graph by a
  /// single zero-cost edge — the library's canonical VM tap
  /// (topology::make_problem, the online simulator) — shares every shortest
  /// path with its attachment host, so its tree is derived from the host's
  /// tree instead of a full Dijkstra: its dist row ALIASES the host image's
  /// dist row (0 + d == d makes them bitwise equal), and its idx row is the
  /// host's plus two parent fixups.  The derived tree is bit-identical to
  /// what the full run produces (tested).  A SOFDA-style hub set (many VMs
  /// per data center plus sources) therefore costs one Dijkstra and one
  /// dist row per *distinct host* rather than one per VM.
  ///
  /// `num_threads` > 1 runs the full (non-derived) trees in parallel: the
  /// CSR is prebuilt once (`Graph::ensure_csr`), roots are striped over
  /// workers in a fixed assignment, and each worker runs its own engine into
  /// preassigned rows — so the result is bit-identical to the
  /// single-threaded build for any thread count (tested).  Values < 1 are
  /// clamped to 1; the thread count is a knob on AlgoOptions
  /// (closure_threads) and api::SolverOptions (threads) for the solver
  /// layers.
  MetricClosure(const Graph& g, const std::vector<NodeId>& hubs, int num_threads = 1) {
    build(g, hubs, num_threads);
  }

  /// An empty closure; populate with build().  Lets long-lived solver
  /// sessions keep one MetricClosure object across solves.
  MetricClosure() = default;

  /// Rows are shared-by-reference with published epochs; a plain copy
  /// would share them without the copy-on-write pins.  Snapshot through
  /// snapshot_to() instead.  Moves are fine.
  MetricClosure(const MetricClosure&) = delete;
  MetricClosure& operator=(const MetricClosure&) = delete;
  MetricClosure(MetricClosure&&) = default;
  MetricClosure& operator=(MetricClosure&&) = default;
  ~MetricClosure() { release_rows(); }

  /// (Re)builds the closure in place.  Row storage is recycled through the
  /// store's free lists, so a session that rebuilds after an edge-cost
  /// change (the online simulator's per-arrival price refresh) recomputes
  /// the Dijkstra trees without reallocating their O(hubs · V) arrays.
  /// When `engine` is given it runs the single-threaded build (persistent
  /// heap/label workspaces — api::ClosureSession passes its session
  /// engine); parallel builds use one worker-local engine per thread
  /// regardless.  `scope` optionally bounds every run to settle-all-hubs
  /// (see ClosureScope).
  void build(const Graph& g, const std::vector<NodeId>& hubs, int num_threads = 1,
             ShortestPathEngine* engine = nullptr, ClosureScope scope = {});

  /// Adds trees for the hubs of `hubs` not yet present, leaving existing
  /// trees untouched — the incremental half of api::ClosureSession: across
  /// an online arrival stream the VM hubs persist while the sampled source
  /// hubs churn, so each acquire builds only the handful of new roots.
  /// Every tree is an independent Dijkstra (tap hubs derive from their
  /// host's tree, which may already be stored), so a closure grown by any
  /// build+extend sequence is per-tree bit-identical to a one-shot build.
  /// Not available on bounded closures (asserted): their truncation scope
  /// is fixed at build time.
  void extend(const Graph& g, const std::vector<NodeId>& hubs, int num_threads = 1,
              ShortestPathEngine* engine = nullptr);

  /// Repairs the stored trees in place after the edge-cost mutations in
  /// `deltas` (ShortestPathEngine::repair preconditions apply: the closure
  /// must have been built against the old costs over this same graph
  /// structure, complete trees only).  Bit-identical to a full rebuild at
  /// the new costs.  Like the build, the repair is tap-aware: one repaired
  /// representative per distinct zero-cost-tap host carries its whole tap
  /// group by re-derivation, so the repair count matches the build's
  /// Dijkstra count rather than the (vms_per_dc times larger) tree count.
  /// Threading stripes the representative repairs over workers.  Rows
  /// living in slabs pinned by a published epoch are relocated (copied)
  /// before the repair writes them — the copy-on-write half of
  /// snapshot_to()'s contract.
  ///
  /// `changed`, when given, is cleared and filled with one RowDelta per hub
  /// row that may have changed (see RowDelta): directly repaired rows carry
  /// the engine's touched-node over-approximation, tap-derived rows inherit
  /// their representative's set when the derivation shape (representative,
  /// host, tap edge) matches the previous build/refresh and the tap edges
  /// sit outside `deltas` — else they are reported `full`.  Rows the repair
  /// left bitwise untouched are omitted, which is what makes per-arrival
  /// pricing-cache invalidation proportional to the affected rows.
  void refresh(const Graph& g, std::span<const EdgeCostDelta> deltas, int num_threads = 1,
               ShortestPathEngine* engine = nullptr, std::vector<RowDelta>* changed = nullptr);

  /// Drops every stored tree whose hub is not in `hubs` (kept trees stay
  /// in slot order); freed rows return to the store for recycling.  The
  /// session's repair path calls this before refresh so hubs that churned
  /// out of the working set — an arrival stream's stale source hubs, minus
  /// the session's retention window — stop costing one repair per solve.
  void retain(const std::vector<NodeId>& hubs);

  /// Shares every row with `out` (an epoch snapshot): row references are
  /// copied and each distinct slab is pinned once, so this costs O(rows),
  /// not O(rows · V).  While the snapshot is live, this closure's
  /// refresh/retain/build relocate instead of overwriting pinned rows —
  /// the snapshot stays bitwise frozen at its publish generation.  Undo
  /// with out.release_rows() (api::ClosureSession::retire).
  void snapshot_to(MetricClosure& out) const;

  /// Unpins and drops every row reference (the epoch side of the COW
  /// handshake; also run by the destructor).  Slabs whose last reference
  /// this was are freed; slabs shared with the live closure return to
  /// writability once their pin count hits zero.
  void release_rows();

  /// Whether this closure was built with a bounded scope (truncated trees).
  bool bounded() const noexcept { return bounded_; }

  /// Number of stored hub trees (diagnostics).
  std::size_t hub_count() const noexcept { return rows_.size(); }

  /// Bytes held by this closure's slabs (live rows, open slabs and free
  /// lists; epoch snapshots share rather than double-count — each
  /// closure's walk counts every slab it can reach exactly once).
  std::size_t memory_bytes() const;

  /// The write generation stamped on a hub's row: bumped per mutating
  /// operation (build/extend/refresh), so an epoch snapshot's rows keep
  /// the generation they were published at while the live closure's move
  /// ahead — the observable face of the COW rule (tests).
  std::uint64_t row_generation(NodeId hub) const {
    const auto it = tree_index_.find(hub);
    assert(it != tree_index_.end() && "node is not a hub of this closure");
    return rows_[it->second].gen;
  }

  /// Shortest-path distance from hub `from` to any node `to`.
  /// Requires `from` to be a hub.
  Cost distance(NodeId from, NodeId to) const {
    return tree(from).distance(to);
  }

  /// Shortest path (node sequence) from hub `from` to `to`.
  std::vector<NodeId> path(NodeId from, NodeId to) const {
    return tree(from).path_to(to);
  }

  bool is_hub(NodeId v) const { return tree_index_.contains(v); }

  /// Read view of one hub's stored tree.  The view is invalidated by the
  /// next mutating call (build/extend/refresh/retain) — same lifetime rule
  /// the old by-reference accessor had, now explicit in the value type.
  ConstTreeRow tree(NodeId hub) const {
    const auto it = tree_index_.find(hub);
    assert(it != tree_index_.end() && "node is not a hub of this closure");
    const StoredRow& row = rows_[it->second];
    const std::int32_t* idx = row.idx.get();
    return ConstTreeRow{row.source, row.dist.get(), idx, idx + n_, n_};
  }

 private:
  /// One hub's stored tree: a dist row (possibly aliased with the hub's
  /// zero-cost-tap host image) plus a privately owned idx row of parents
  /// and parent edges.
  struct StoredRow {
    NodeId source = kInvalidNode;
    RowStore::DistRef dist;
    RowStore::IdxRef idx;
    std::uint64_t gen = 0;  // write_gen_ at last content write
  };

  void build_or_extend(const Graph& g, const std::vector<NodeId>& hubs, int num_threads,
                       ShortestPathEngine* engine, bool rebuild);

  /// Mutable engine view of a slot's row.
  TreeRow row_view(std::size_t slot) {
    StoredRow& row = rows_[slot];
    std::int32_t* idx = row.idx.get();
    return TreeRow{row.source, row.dist.get(), idx, idx + n_, n_};
  }

  /// How a slot's tree was last produced: derived from `from_hub`'s tree
  /// (its own host, or a sibling-tap representative) through the zero-cost
  /// `edge` to `host`, or run/repaired directly (from_hub == kInvalidNode).
  /// refresh() compares this against its current derivation plan to decide
  /// whether a derived row's change set can inherit the representative's
  /// (shape unchanged) or must be reported full (shape changed).
  struct DeriveMemo {
    NodeId from_hub = kInvalidNode;
    NodeId host = kInvalidNode;
    EdgeId edge = kInvalidEdge;
  };

  RowStore store_;
  std::vector<StoredRow> rows_;
  std::vector<DeriveMemo> derive_memo_;  // parallel to rows_
  std::unordered_map<NodeId, std::size_t> tree_index_;
  std::size_t n_ = 0;          // node count the rows cover
  std::uint64_t write_gen_ = 0;  // bumped by every mutating operation
  bool pinned_ = false;        // populated by snapshot_to: rows hold slab pins
  bool bounded_ = false;
  std::vector<NodeId> settle_targets_;  // bounded builds: hubs ∪ extra targets
};

}  // namespace sofe::graph
