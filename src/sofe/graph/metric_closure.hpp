#pragma once
// Metric closure over a subset of "hub" nodes: pairwise shortest-path
// distances plus stored shortest-path trees for path reconstruction.
//
// Procedure 1 of the paper (k-stroll instance construction), the KMB Steiner
// algorithm, and SOFDA's auxiliary-graph pricing all consult distances among
// the same hub set {sources} ∪ {VMs} ∪ {destinations}; this class computes
// each hub's Dijkstra tree once and shares it.

#include <cassert>
#include <unordered_map>
#include <vector>

#include "sofe/graph/dijkstra.hpp"
#include "sofe/graph/graph.hpp"

namespace sofe::graph {

class MetricClosure {
 public:
  /// Runs Dijkstra from every node in `hubs` (duplicates tolerated).
  MetricClosure(const Graph& g, const std::vector<NodeId>& hubs);

  /// Shortest-path distance from hub `from` to any node `to`.
  /// Requires `from` to be a hub.
  Cost distance(NodeId from, NodeId to) const {
    return tree(from).distance(to);
  }

  /// Shortest path (node sequence) from hub `from` to `to`.
  std::vector<NodeId> path(NodeId from, NodeId to) const {
    return tree(from).path_to(to);
  }

  bool is_hub(NodeId v) const { return tree_index_.contains(v); }

  const ShortestPathTree& tree(NodeId hub) const {
    const auto it = tree_index_.find(hub);
    assert(it != tree_index_.end() && "node is not a hub of this closure");
    return trees_[it->second];
  }

 private:
  std::vector<ShortestPathTree> trees_;
  std::unordered_map<NodeId, std::size_t> tree_index_;
};

}  // namespace sofe::graph
