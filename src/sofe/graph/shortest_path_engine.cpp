#include "sofe/graph/shortest_path_engine.hpp"

#include <algorithm>
#include <cassert>

namespace sofe::graph {

namespace {

// Binary min-heap with lazy deletion over a reusable buffer (capacity
// persists across runs).  Lazy deletion beats an indexed decrease-key heap
// here: the position array's random writes on every sift cost more than the
// stale pops save (measured on Inet-scale closures).  Pop order is the
// minimum of a TOTAL order (ties broken by node / owner / node), so any
// correct heap yields the same settle sequence — trees are bit-identical to
// the historical priority_queue implementation.

template <typename Item>
inline void heap_push(std::vector<Item>& h, Item item) {
  h.push_back(item);
  std::push_heap(h.begin(), h.end(), std::greater<>{});
}

template <typename Item>
inline Item heap_pop(std::vector<Item>& h) {
  std::pop_heap(h.begin(), h.end(), std::greater<>{});
  const Item top = h.back();
  h.pop_back();
  return top;
}

}  // namespace

void ShortestPathEngine::reset_tree(std::size_t n) {
  if (tree_.dist.size() != n) {
    tree_.dist.assign(n, kInfiniteCost);
    tree_.parent.assign(n, kInvalidNode);
    tree_.parent_edge.assign(n, kInvalidEdge);
  } else {
    for (NodeId v : tree_touched_) {
      const auto i = static_cast<std::size_t>(v);
      tree_.dist[i] = kInfiniteCost;
      tree_.parent[i] = kInvalidNode;
      tree_.parent_edge[i] = kInvalidEdge;
    }
  }
  tree_touched_.clear();
}

void ShortestPathEngine::reset_voronoi(std::size_t n) {
  if (vor_.dist.size() != n) {
    vor_.dist.assign(n, kInfiniteCost);
    vor_.owner.assign(n, kInvalidNode);
    vor_.parent.assign(n, kInvalidNode);
    vor_.parent_edge.assign(n, kInvalidEdge);
  } else {
    for (NodeId v : vor_touched_) {
      const auto i = static_cast<std::size_t>(v);
      vor_.dist[i] = kInfiniteCost;
      vor_.owner[i] = kInvalidNode;
      vor_.parent[i] = kInvalidNode;
      vor_.parent_edge[i] = kInvalidEdge;
    }
  }
  vor_touched_.clear();
}

const ShortestPathTree& ShortestPathEngine::run_impl(NodeId source, NodeId target, Cost limit) {
  assert(g_ != nullptr && "engine is not attached to a graph");
  assert(g_->valid_node(source));
  const CsrView& csr = g_->csr();
  const auto n = static_cast<std::size_t>(g_->node_count());
  reset_tree(n);

  tree_.source = source;
  tree_.dist[static_cast<std::size_t>(source)] = 0.0;
  tree_touched_.push_back(source);

  heap_.clear();
  heap_.push_back(HeapItem{0.0, source});
  while (!heap_.empty()) {
    const auto [d, u] = heap_pop(heap_);
    if (d > tree_.dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    if (u == target) break;
    if (d > limit) break;
    const std::int32_t hi = csr.end(u);
    for (std::int32_t i = csr.begin(u); i < hi; ++i) {
      const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
      const Cost nd = d + a.cost;
      auto& dv = tree_.dist[static_cast<std::size_t>(a.to)];
      if (nd < dv) {
        if (dv == kInfiniteCost) tree_touched_.push_back(a.to);
        dv = nd;
        tree_.parent[static_cast<std::size_t>(a.to)] = u;
        tree_.parent_edge[static_cast<std::size_t>(a.to)] = a.edge;
        heap_push(heap_, HeapItem{nd, a.to});
      }
    }
  }
  return tree_;
}

void ShortestPathEngine::run_into(NodeId source, ShortestPathTree& out) {
  assert(g_ != nullptr && "engine is not attached to a graph");
  assert(g_->valid_node(source));
  const CsrView& csr = g_->csr();
  const auto n = static_cast<std::size_t>(g_->node_count());

  labels_.assign(n, Label{kInfiniteCost, kInvalidNode, kInvalidEdge});
  labels_[static_cast<std::size_t>(source)].dist = 0.0;

  heap_.clear();
  heap_.push_back(HeapItem{0.0, source});
  while (!heap_.empty()) {
    const auto [d, u] = heap_pop(heap_);
    if (d > labels_[static_cast<std::size_t>(u)].dist) continue;  // stale entry
    const std::int32_t hi = csr.end(u);
    for (std::int32_t i = csr.begin(u); i < hi; ++i) {
      const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
      const Cost nd = d + a.cost;
      Label& lv = labels_[static_cast<std::size_t>(a.to)];
      if (nd < lv.dist) {
        lv = Label{nd, u, a.edge};
        heap_push(heap_, HeapItem{nd, a.to});
      }
    }
  }

  // Unpack the packed labels into the tree layout in one sequential sweep.
  out.source = source;
  out.dist.resize(n);
  out.parent.resize(n);
  out.parent_edge.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.dist[i] = labels_[i].dist;
    out.parent[i] = labels_[i].parent;
    out.parent_edge[i] = labels_[i].parent_edge;
  }
}

const VoronoiPartition& ShortestPathEngine::run_multi(std::span<const NodeId> sources) {
  assert(g_ != nullptr && "engine is not attached to a graph");
  const CsrView& csr = g_->csr();
  const auto n = static_cast<std::size_t>(g_->node_count());
  reset_voronoi(n);

  // Seed in ascending id order (duplicates skipped).  With the
  // (dist, owner, node) label order this is cosmetic — ownership of ties is
  // decided by the lexicographic relaxation below, not by seed order — but
  // it keeps the initial heap layout canonical.
  seeds_.assign(sources.begin(), sources.end());
  std::sort(seeds_.begin(), seeds_.end());
  multi_heap_.clear();
  for (NodeId s : seeds_) {
    assert(g_->valid_node(s));
    auto& d = vor_.dist[static_cast<std::size_t>(s)];
    if (d == 0.0) continue;  // duplicate seed
    d = 0.0;
    vor_.owner[static_cast<std::size_t>(s)] = s;
    vor_touched_.push_back(s);
    heap_push(multi_heap_, MultiHeapItem{0.0, s, s});
  }

  // Lexicographic Dijkstra on labels (dist, owner): a node's settled label
  // is min over sources s of (d(s, v), s), i.e. the nearest source with the
  // smallest id among equals.  Standard Dijkstra finality holds because edge
  // relaxation is monotone in the label order (nonnegative cost added to
  // dist, owner carried through), so owners never change after settling and
  // parent chains stay within one Voronoi cell.
  while (!multi_heap_.empty()) {
    const auto [d, o, u] = heap_pop(multi_heap_);
    const auto ui = static_cast<std::size_t>(u);
    if (d > vor_.dist[ui] || (d == vor_.dist[ui] && o > vor_.owner[ui])) continue;  // stale
    const std::int32_t hi = csr.end(u);
    for (std::int32_t i = csr.begin(u); i < hi; ++i) {
      const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
      const Cost nd = d + a.cost;
      const auto ti = static_cast<std::size_t>(a.to);
      // The tie branch never re-owns a seed (owner == self): every source
      // must keep its own Voronoi cell even when a zero-cost path from a
      // smaller source reaches it at distance 0 — Mehlhorn's bridge MST
      // needs all |T| cells non-empty, and the library's VM-tap and
      // auxiliary-graph constructions make zero-cost edges routine.
      if (nd < vor_.dist[ti] ||
          (nd == vor_.dist[ti] && o < vor_.owner[ti] && vor_.owner[ti] != a.to)) {
        if (vor_.dist[ti] == kInfiniteCost) vor_touched_.push_back(a.to);
        vor_.dist[ti] = nd;
        vor_.owner[ti] = o;
        vor_.parent[ti] = u;
        vor_.parent_edge[ti] = a.edge;
        heap_push(multi_heap_, MultiHeapItem{nd, o, a.to});
      }
    }
  }
  return vor_;
}

}  // namespace sofe::graph
