#include "sofe/graph/shortest_path_engine.hpp"

#include <algorithm>
#include <cassert>

namespace sofe::graph {

namespace {

// Binary min-heap with lazy deletion over a reusable buffer (capacity
// persists across runs).  Lazy deletion beats an indexed decrease-key heap
// here: the position array's random writes on every sift cost more than the
// stale pops save (measured on Inet-scale closures).  Pop order is the
// minimum of a TOTAL order (ties broken by node / owner / node), so any
// correct heap yields the same settle sequence — trees are bit-identical to
// the historical priority_queue implementation.

template <typename Item>
inline void heap_push(std::vector<Item>& h, Item item) {
  h.push_back(item);
  std::push_heap(h.begin(), h.end(), std::greater<>{});
}

template <typename Item>
inline Item heap_pop(std::vector<Item>& h) {
  std::pop_heap(h.begin(), h.end(), std::greater<>{});
  const Item top = h.back();
  h.pop_back();
  return top;
}

}  // namespace

void ShortestPathEngine::reset_tree(std::size_t n) {
  if (tree_.dist.size() != n) {
    tree_.dist.assign(n, kInfiniteCost);
    tree_.parent.assign(n, kInvalidNode);
    tree_.parent_edge.assign(n, kInvalidEdge);
  } else {
    for (NodeId v : tree_touched_) {
      const auto i = static_cast<std::size_t>(v);
      tree_.dist[i] = kInfiniteCost;
      tree_.parent[i] = kInvalidNode;
      tree_.parent_edge[i] = kInvalidEdge;
    }
  }
  tree_touched_.clear();
}

void ShortestPathEngine::reset_voronoi(std::size_t n) {
  if (vor_.dist.size() != n) {
    vor_.dist.assign(n, kInfiniteCost);
    vor_.owner.assign(n, kInvalidNode);
    vor_.parent.assign(n, kInvalidNode);
    vor_.parent_edge.assign(n, kInvalidEdge);
  } else {
    for (NodeId v : vor_touched_) {
      const auto i = static_cast<std::size_t>(v);
      vor_.dist[i] = kInfiniteCost;
      vor_.owner[i] = kInvalidNode;
      vor_.parent[i] = kInvalidNode;
      vor_.parent_edge[i] = kInvalidEdge;
    }
  }
  vor_touched_.clear();
}

std::size_t ShortestPathEngine::mark_targets(std::span<const NodeId> targets) {
  const auto n = static_cast<std::size_t>(g_->node_count());
  if (target_mark_.size() != n) target_mark_.assign(n, 0);
  std::size_t pending = 0;
  for (NodeId t : targets) {
    assert(g_->valid_node(t));
    auto& m = target_mark_[static_cast<std::size_t>(t)];
    if (!m) {
      m = 1;
      ++pending;
    }
  }
  return pending;
}

void ShortestPathEngine::clear_targets(std::span<const NodeId> targets) {
  for (NodeId t : targets) target_mark_[static_cast<std::size_t>(t)] = 0;
}

const ShortestPathTree& ShortestPathEngine::run_impl(NodeId source, NodeId target, Cost limit,
                                                     std::span<const NodeId> settle_targets) {
  assert(g_ != nullptr && "engine is not attached to a graph");
  assert(g_->valid_node(source));
  const CsrView& csr = g_->csr();
  const auto n = static_cast<std::size_t>(g_->node_count());
  reset_tree(n);

  std::size_t pending = settle_targets.empty() ? 0 : mark_targets(settle_targets);

  tree_.source = source;
  tree_.dist[static_cast<std::size_t>(source)] = 0.0;
  tree_touched_.push_back(source);

  heap_.clear();
  heap_.push_back(HeapItem{0.0, source});
  while (!heap_.empty()) {
    const auto [d, u] = heap_pop(heap_);
    if (d > tree_.dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    if (u == target) break;
    if (d > limit) break;
    if (pending > 0 && target_mark_[static_cast<std::size_t>(u)]) {
      target_mark_[static_cast<std::size_t>(u)] = 0;
      if (--pending == 0) break;  // last target settled; like run_to, no relax
    }
    const std::int32_t hi = csr.end(u);
    for (std::int32_t i = csr.begin(u); i < hi; ++i) {
      const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
      const Cost nd = d + a.cost;
      auto& dv = tree_.dist[static_cast<std::size_t>(a.to)];
      if (nd < dv) {
        if (dv == kInfiniteCost) tree_touched_.push_back(a.to);
        dv = nd;
        tree_.parent[static_cast<std::size_t>(a.to)] = u;
        tree_.parent_edge[static_cast<std::size_t>(a.to)] = a.edge;
        heap_push(heap_, HeapItem{nd, a.to});
      }
    }
  }
  if (!settle_targets.empty()) clear_targets(settle_targets);
  return tree_;
}

void ShortestPathEngine::run_into(NodeId source, ShortestPathTree& out,
                                  std::span<const NodeId> stop_targets) {
  const auto n = static_cast<std::size_t>(g_->node_count());
  out.source = source;
  out.dist.resize(n);
  out.parent.resize(n);
  out.parent_edge.resize(n);
  run_into(source,
           TreeRow{source, out.dist.data(), out.parent.data(), out.parent_edge.data(), n},
           stop_targets);
}

void ShortestPathEngine::run_into(NodeId source, TreeRow out,
                                  std::span<const NodeId> stop_targets) {
  assert(g_ != nullptr && "engine is not attached to a graph");
  assert(g_->valid_node(source));
  const CsrView& csr = g_->csr();
  const auto n = static_cast<std::size_t>(g_->node_count());
  assert(out.n == n && "row view must cover the whole graph");

  std::size_t pending = stop_targets.empty() ? 0 : mark_targets(stop_targets);

  labels_.assign(n, Label{kInfiniteCost, kInvalidNode, kInvalidEdge});
  labels_[static_cast<std::size_t>(source)].dist = 0.0;

  heap_.clear();
  heap_.push_back(HeapItem{0.0, source});
  while (!heap_.empty()) {
    const auto [d, u] = heap_pop(heap_);
    if (d > labels_[static_cast<std::size_t>(u)].dist) continue;  // stale entry
    if (pending > 0 && target_mark_[static_cast<std::size_t>(u)]) {
      target_mark_[static_cast<std::size_t>(u)] = 0;
      if (--pending == 0) break;
    }
    const std::int32_t hi = csr.end(u);
    for (std::int32_t i = csr.begin(u); i < hi; ++i) {
      const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
      const Cost nd = d + a.cost;
      Label& lv = labels_[static_cast<std::size_t>(a.to)];
      if (nd < lv.dist) {
        lv = Label{nd, u, a.edge};
        heap_push(heap_, HeapItem{nd, a.to});
      }
    }
  }
  if (!stop_targets.empty()) clear_targets(stop_targets);

  // Unpack the packed labels into the row layout in one sequential sweep.
  for (std::size_t i = 0; i < n; ++i) {
    out.dist[i] = labels_[i].dist;
    out.parent[i] = labels_[i].parent;
    out.parent_edge[i] = labels_[i].parent_edge;
  }
}

ShortestPathEngine::RepairStats ShortestPathEngine::repair(ShortestPathTree& tree,
                                                           std::span<const EdgeCostDelta> deltas,
                                                           std::vector<NodeId>* touched_out) {
  assert(tree.dist.size() == static_cast<std::size_t>(g_->node_count()) &&
         "repair requires a complete tree over the attached graph");
  return repair(TreeRow{tree.source, tree.dist.data(), tree.parent.data(),
                        tree.parent_edge.data(), tree.dist.size()},
                deltas, touched_out);
}

ShortestPathEngine::RepairStats ShortestPathEngine::repair(TreeRow tree,
                                                           std::span<const EdgeCostDelta> deltas,
                                                           std::vector<NodeId>* touched_out) {
  assert(g_ != nullptr && "engine is not attached to a graph");
  const CsrView& csr = g_->csr();  // also refreshes cached costs after set_edge_cost
  const auto n = static_cast<std::size_t>(g_->node_count());
  assert(tree.n == n && "repair requires a complete tree over the attached graph");
  assert(g_->valid_node(tree.source));
  assert(tree.dist[static_cast<std::size_t>(tree.source)] == 0.0);

  RepairStats stats;
  if (mark_.size() != n) mark_.assign(n, 0);

  // Per-node state bits, reset via mark_touched_ on exit.
  constexpr std::uint8_t kTouched = 1;      // dist invalidated or rewritten
  constexpr std::uint8_t kFixQueued = 2;    // on the parent-fixup worklist
  constexpr std::uint8_t kPlateauSeen = 4;  // collected into a tie plateau
  constexpr std::uint8_t kPlateauDone = 8;  // discovered by the plateau replay
  constexpr std::uint8_t kCandSeen = 16;    // candidate-order replay: collected
  constexpr std::uint8_t kCandDone = 32;    //   …discovered
  constexpr std::uint8_t kCandTarget = 64;  //   …is one of the tied candidates

  const auto set_bit = [&](NodeId v, std::uint8_t bit) {
    auto& m = mark_[static_cast<std::size_t>(v)];
    if (m == 0) mark_touched_.push_back(v);
    m |= bit;
  };
  const auto has_bit = [&](NodeId v, std::uint8_t bit) {
    return (mark_[static_cast<std::size_t>(v)] & bit) != 0;
  };

  // --- Phase 1: orphan every subtree hanging off an increased tree arc.
  // Children are found through the adjacency (child w of v satisfies
  // parent[w] == v via exactly the connecting arc), so the traversal costs
  // the orphaned region's degree sum, not O(V).
  stack_.clear();
  invalid_.clear();
  for (const EdgeCostDelta& d : deltas) {
    assert(g_->valid_edge(d.edge));
    assert(g_->edge(d.edge).cost == d.new_cost && "delta disagrees with the graph");
    if (!(d.new_cost > d.old_cost)) continue;
    const Edge& e = g_->edge(d.edge);
    if (tree.parent_edge[static_cast<std::size_t>(e.u)] == d.edge) stack_.push_back(e.u);
    if (tree.parent_edge[static_cast<std::size_t>(e.v)] == d.edge) stack_.push_back(e.v);
  }
  while (!stack_.empty()) {
    const NodeId v = stack_.back();
    stack_.pop_back();
    if (has_bit(v, kTouched)) continue;
    set_bit(v, kTouched);
    invalid_.push_back(v);
    const std::int32_t hi = csr.end(v);
    for (std::int32_t i = csr.begin(v); i < hi; ++i) {
      const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
      if (tree.parent[static_cast<std::size_t>(a.to)] == v &&
          tree.parent_edge[static_cast<std::size_t>(a.to)] == a.edge) {
        stack_.push_back(a.to);
      }
    }
  }
  for (NodeId v : invalid_) {
    const auto vi = static_cast<std::size_t>(v);
    tree.dist[vi] = kInfiniteCost;
    tree.parent[vi] = kInvalidNode;
    tree.parent_edge[vi] = kInvalidEdge;
  }
  stats.invalidated = invalid_.size();

  // Bail-out: when the orphaned region already covers a third of the
  // graph (the online simulator's congestion spikes reprice the busiest
  // links, whose subtrees are the deepest), resettling plus the parent
  // fixup sweep costs more than one clean pass — and run_into rewrites
  // the tree wholesale, so falling back is trivially still bit-identical
  // to a fresh run.
  if (invalid_.size() * 3 > n) {
    for (NodeId v : mark_touched_) mark_[static_cast<std::size_t>(v)] = 0;
    mark_touched_.clear();
    run_into(tree.source, tree);
    stats.fell_back = true;  // touched_out stays unfilled: every entry may differ
    return stats;
  }

  // --- Phase 2: seed the frontier.  Orphans reseed from their surviving
  // neighbors (an upper bound that later pops tighten); decreased arcs relax
  // outward from both endpoints.  Seeding with upper bounds is safe: every
  // node whose dist must change has a true path whose first deviation from
  // the old tree is a seeded node, and settling proceeds in dist order.
  heap_.clear();
  for (NodeId v : invalid_) {
    const auto vi = static_cast<std::size_t>(v);
    Cost best = kInfiniteCost;
    const std::int32_t hi = csr.end(v);
    for (std::int32_t i = csr.begin(v); i < hi; ++i) {
      const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
      const Cost nd = tree.dist[static_cast<std::size_t>(a.to)] + a.cost;
      if (nd < best) best = nd;
    }
    if (best < kInfiniteCost) {
      tree.dist[vi] = best;
      heap_push(heap_, HeapItem{best, v});
    }
  }
  for (const EdgeCostDelta& d : deltas) {
    if (!(d.new_cost < d.old_cost)) continue;
    const Edge& e = g_->edge(d.edge);
    const auto relax_seed = [&](NodeId from, NodeId to) {
      const Cost df = tree.dist[static_cast<std::size_t>(from)];
      if (df == kInfiniteCost) return;
      const Cost nd = df + d.new_cost;
      if (nd < tree.dist[static_cast<std::size_t>(to)]) {
        tree.dist[static_cast<std::size_t>(to)] = nd;
        set_bit(to, kTouched);
        heap_push(heap_, HeapItem{nd, to});
      }
    };
    relax_seed(e.u, e.v);
    relax_seed(e.v, e.u);
  }

  // --- Phase 3: settle the affected region (plain Dijkstra; dist values are
  // produced by the same dist[u] + cost additions a fresh run performs, so
  // the repaired array is the bitwise-identical pointwise minimum).
  while (!heap_.empty()) {
    const auto [d, u] = heap_pop(heap_);
    if (d > tree.dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    const std::int32_t hi = csr.end(u);
    for (std::int32_t i = csr.begin(u); i < hi; ++i) {
      const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
      const Cost nd = d + a.cost;
      auto& dv = tree.dist[static_cast<std::size_t>(a.to)];
      if (nd < dv) {
        dv = nd;
        set_bit(a.to, kTouched);
        heap_push(heap_, HeapItem{nd, a.to});
      }
    }
  }
  stats.improved = mark_touched_.size() - stats.invalidated;

  // --- Phase 4: parent fixup, reproducing the fresh run's tie-breaks.
  //
  // A fresh run's parent of v is the first SETTLED neighbor whose relaxation
  // attains dist[v] (later equal relaxations are not strict and never
  // overwrite).  Settle order is ascending (dist, node) — with one twist:
  // a node inside a distance-preserving plateau (neighbors at equal dist
  // joined by arcs with d + cost == d; zero-cost VM taps are the canonical
  // case) is only heap-present once a fellow member discovers it, so within
  // a plateau the order is discovery-driven, not id-driven.  Hence:
  //   * candidates strictly below dist[v]: the minimum (dist[u], u, edge)
  //     wins — unless several tie on dist[u] and sit inside plateaus, where
  //     settle_rank_winner replays their level to rank them;
  //   * candidates at dist[v] (v's own plateau): resolve_plateau replays the
  //     whole plateau and rewrites every non-entry member's parent.
  // Only nodes whose outcome could have changed are fixed: dist-touched
  // nodes, their neighbors, the endpoints of every delta, and — queued by
  // resolve_plateau — the neighbors of any replayed plateau (a reshuffled
  // plateau changes which member settles first, which re-parents downstream
  // neighbors whose own dist never moved).
  const auto assign_parent = [&](NodeId v, NodeId pu, EdgeId pe) {
    const auto vi = static_cast<std::size_t>(v);
    if (tree.parent[vi] != pu || tree.parent_edge[vi] != pe) {
      tree.parent[vi] = pu;
      tree.parent_edge[vi] = pe;
      ++stats.reparented;
    }
  };

  fix_.clear();
  const auto queue_fix = [&](NodeId v) {
    if (has_bit(v, kFixQueued)) return;
    set_bit(v, kFixQueued);
    fix_.push_back(v);
  };

  const auto heap_push_id = [&](std::vector<NodeId>& h, NodeId v) {
    h.push_back(v);
    std::push_heap(h.begin(), h.end(), std::greater<>{});
  };
  const auto heap_pop_id = [&](std::vector<NodeId>& h) {
    std::pop_heap(h.begin(), h.end(), std::greater<>{});
    const NodeId top = h.back();
    h.pop_back();
    return top;
  };

  /// True iff `v` starts level `d` heap-present: it is the source or some
  /// strictly-below neighbor's relaxation attains d.
  const auto is_entry = [&](NodeId v, Cost d) {
    if (v == tree.source) return true;
    const std::int32_t hi = csr.end(v);
    for (std::int32_t i = csr.begin(v); i < hi; ++i) {
      const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
      const Cost du = tree.dist[static_cast<std::size_t>(a.to)];
      if (du < d && du + a.cost == d) return true;
    }
    return false;
  };

  /// Replays level-`d` settling restricted to the plateaus containing the
  /// kCandTarget-marked candidates (pre-collected in cand_members_ via
  /// kCandSeen) and returns the first candidate to settle.  Relative order
  /// is exact: discovery only travels preserving arcs inside a plateau, and
  /// among heap-present nodes the (dist, node) heap pops ascending ids —
  /// unrelated level-d nodes interleave but never reorder these.
  const auto settle_rank_winner = [&](Cost d) {
    // Expand the collected seeds to full plateaus.
    for (std::size_t k = 0; k < cand_members_.size(); ++k) {
      const NodeId v = cand_members_[k];
      const std::int32_t hi = csr.end(v);
      for (std::int32_t i = csr.begin(v); i < hi; ++i) {
        const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
        if (d + a.cost != d) continue;
        if (tree.dist[static_cast<std::size_t>(a.to)] != d) continue;
        if (has_bit(a.to, kCandSeen)) continue;
        set_bit(a.to, kCandSeen);
        cand_members_.push_back(a.to);
      }
    }
    plateau_heap_.clear();
    for (NodeId v : cand_members_) {
      if (is_entry(v, d)) {
        set_bit(v, kCandDone);
        heap_push_id(plateau_heap_, v);
      }
    }
    assert(!plateau_heap_.empty() && "a settled level must have an entry node");
    NodeId winner = kInvalidNode;
    while (winner == kInvalidNode && !plateau_heap_.empty()) {
      const NodeId u = heap_pop_id(plateau_heap_);
      if (has_bit(u, kCandTarget)) {
        winner = u;
        break;
      }
      const std::int32_t hi = csr.end(u);
      for (std::int32_t i = csr.begin(u); i < hi; ++i) {
        const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
        if (d + a.cost != d) continue;
        if (tree.dist[static_cast<std::size_t>(a.to)] != d) continue;
        if (has_bit(a.to, kCandDone)) continue;
        set_bit(a.to, kCandDone);
        heap_push_id(plateau_heap_, a.to);
      }
    }
    assert(winner != kInvalidNode && "some candidate must settle");
    for (NodeId v : cand_members_) {
      mark_[static_cast<std::size_t>(v)] &= static_cast<std::uint8_t>(~(kCandSeen | kCandDone | kCandTarget));
    }
    cand_members_.clear();
    return winner;
  };

  /// Replays the whole plateau of `start` (collected via kPlateauSeen so
  /// each plateau is resolved at most once per repair): entry nodes keep
  /// their strictly-below parents, every other member is re-parented by its
  /// replay discoverer, and all members' neighbors join the fix worklist.
  const auto resolve_plateau = [&](NodeId start) {
    const Cost d = tree.dist[static_cast<std::size_t>(start)];
    plateau_members_.clear();
    set_bit(start, kPlateauSeen);
    plateau_members_.push_back(start);
    for (std::size_t k = 0; k < plateau_members_.size(); ++k) {
      const NodeId v = plateau_members_[k];
      const std::int32_t hi = csr.end(v);
      for (std::int32_t i = csr.begin(v); i < hi; ++i) {
        const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
        if (d + a.cost != d) continue;  // not distance-preserving
        if (tree.dist[static_cast<std::size_t>(a.to)] != d) continue;
        if (has_bit(a.to, kPlateauSeen)) continue;
        set_bit(a.to, kPlateauSeen);
        plateau_members_.push_back(a.to);
      }
    }
    plateau_heap_.clear();
    for (NodeId v : plateau_members_) {
      if (is_entry(v, d)) {
        set_bit(v, kPlateauDone);
        heap_push_id(plateau_heap_, v);
      }
    }
    assert(!plateau_heap_.empty() && "a settled plateau must have an entry node");
    while (!plateau_heap_.empty()) {
      const NodeId u = heap_pop_id(plateau_heap_);
      const std::int32_t hi = csr.end(u);
      for (std::int32_t i = csr.begin(u); i < hi; ++i) {
        const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
        if (d + a.cost != d) continue;
        if (tree.dist[static_cast<std::size_t>(a.to)] != d) continue;
        if (has_bit(a.to, kPlateauDone)) continue;
        set_bit(a.to, kPlateauDone);
        assign_parent(a.to, u, a.edge);  // first preserving arc in u's order
        heap_push_id(plateau_heap_, a.to);
      }
    }
    for (NodeId v : plateau_members_) {
      const std::int32_t hi = csr.end(v);
      for (std::int32_t i = csr.begin(v); i < hi; ++i) {
        queue_fix(csr.arcs[static_cast<std::size_t>(i)].to);
      }
    }
  };

  const std::size_t touched_count = mark_touched_.size();
  for (std::size_t k = 0; k < touched_count; ++k) {
    const NodeId v = mark_touched_[k];
    queue_fix(v);
    const std::int32_t hi = csr.end(v);
    for (std::int32_t i = csr.begin(v); i < hi; ++i) {
      queue_fix(csr.arcs[static_cast<std::size_t>(i)].to);
    }
  }
  for (const EdgeCostDelta& d : deltas) {
    if (d.new_cost == d.old_cost) continue;
    queue_fix(g_->edge(d.edge).u);
    queue_fix(g_->edge(d.edge).v);
  }

  for (std::size_t k = 0; k < fix_.size(); ++k) {  // grows as plateaus resolve
    const NodeId v = fix_[k];
    const auto vi = static_cast<std::size_t>(v);
    if (v == tree.source) continue;
    if (tree.dist[vi] == kInfiniteCost) {
      assign_parent(v, kInvalidNode, kInvalidEdge);
      continue;
    }
    const Cost dv = tree.dist[vi];
    NodeId bu = kInvalidNode;
    EdgeId be = kInvalidEdge;
    Cost bd = kInfiniteCost;
    bool tie_arc = false;
    bool group_multi = false;  // several distinct candidates tie on min dist
    const std::int32_t hi = csr.end(v);
    for (std::int32_t i = csr.begin(v); i < hi; ++i) {
      const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
      const Cost du = tree.dist[static_cast<std::size_t>(a.to)];
      if (du + a.cost != dv) continue;  // not attaining (bitwise-exact test)
      if (du == dv) {
        tie_arc = true;  // v's own plateau; ordering is discovery-driven
        continue;
      }
      if (du < bd) {
        bd = du;
        bu = a.to;
        be = a.edge;
        group_multi = false;
      } else if (du == bd) {
        if (a.to != bu) group_multi = true;
        if (a.to < bu || (a.to == bu && a.edge < be)) {
          bu = a.to;
          be = a.edge;
        }
      }
    }
    assert((bu != kInvalidNode || tie_arc) && "finite dist must be supported by some arc");
    if (bu != kInvalidNode) {
      if (group_multi) {
        // Does any min-dist candidate sit inside a preserving plateau?  If
        // not, all are heap-present when their level starts and ascending
        // node id is the settle order — bu/be already hold the winner.
        bool plateau_bound = false;
        cand_members_.clear();
        for (std::int32_t i = csr.begin(v); i < hi; ++i) {
          const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
          if (tree.dist[static_cast<std::size_t>(a.to)] != bd || bd + a.cost != dv) continue;
          if (!has_bit(a.to, kCandSeen)) {
            set_bit(a.to, kCandSeen);
            set_bit(a.to, kCandTarget);
            cand_members_.push_back(a.to);
            const std::int32_t chi = csr.end(a.to);
            for (std::int32_t j = csr.begin(a.to); !plateau_bound && j < chi; ++j) {
              const CsrArc& c = csr.arcs[static_cast<std::size_t>(j)];
              if (bd + c.cost == bd && tree.dist[static_cast<std::size_t>(c.to)] == bd) {
                plateau_bound = true;
              }
            }
          }
        }
        if (plateau_bound) {
          const NodeId win = settle_rank_winner(bd);
          if (win != bu) {
            bu = win;
            be = kInvalidEdge;
            for (std::int32_t i = csr.begin(v); i < hi; ++i) {
              const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
              if (a.to == win && bd + a.cost == dv) {
                be = a.edge;  // ascending scan: first hit is the minimal edge
                break;
              }
            }
            assert(be != kInvalidEdge);
          }
        } else {
          for (NodeId m : cand_members_) {
            mark_[static_cast<std::size_t>(m)] &=
                static_cast<std::uint8_t>(~(kCandSeen | kCandTarget));
          }
          cand_members_.clear();
        }
      }
      assign_parent(v, bu, be);
    }
    if (tie_arc && !has_bit(v, kPlateauSeen)) resolve_plateau(v);
  }

  // mark_touched_ is the superset of everything this repair wrote or queued
  // — exactly the over-approximated change set the pricing cache consumes.
  if (touched_out != nullptr && stats.changed_anything()) {
    touched_out->insert(touched_out->end(), mark_touched_.begin(), mark_touched_.end());
  }
  for (NodeId v : mark_touched_) mark_[static_cast<std::size_t>(v)] = 0;
  mark_touched_.clear();
  return stats;
}

const VoronoiPartition& ShortestPathEngine::run_multi(std::span<const NodeId> sources) {
  assert(g_ != nullptr && "engine is not attached to a graph");
  const CsrView& csr = g_->csr();
  const auto n = static_cast<std::size_t>(g_->node_count());
  reset_voronoi(n);

  // Seed in ascending id order (duplicates skipped).  With the
  // (dist, owner, node) label order this is cosmetic — ownership of ties is
  // decided by the lexicographic relaxation below, not by seed order — but
  // it keeps the initial heap layout canonical.
  seeds_.assign(sources.begin(), sources.end());
  std::sort(seeds_.begin(), seeds_.end());
  multi_heap_.clear();
  for (NodeId s : seeds_) {
    assert(g_->valid_node(s));
    auto& d = vor_.dist[static_cast<std::size_t>(s)];
    if (d == 0.0) continue;  // duplicate seed
    d = 0.0;
    vor_.owner[static_cast<std::size_t>(s)] = s;
    vor_touched_.push_back(s);
    heap_push(multi_heap_, MultiHeapItem{0.0, s, s});
  }

  // Lexicographic Dijkstra on labels (dist, owner): a node's settled label
  // is min over sources s of (d(s, v), s), i.e. the nearest source with the
  // smallest id among equals.  Standard Dijkstra finality holds because edge
  // relaxation is monotone in the label order (nonnegative cost added to
  // dist, owner carried through), so owners never change after settling and
  // parent chains stay within one Voronoi cell.
  while (!multi_heap_.empty()) {
    const auto [d, o, u] = heap_pop(multi_heap_);
    const auto ui = static_cast<std::size_t>(u);
    if (d > vor_.dist[ui] || (d == vor_.dist[ui] && o > vor_.owner[ui])) continue;  // stale
    const std::int32_t hi = csr.end(u);
    for (std::int32_t i = csr.begin(u); i < hi; ++i) {
      const CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
      const Cost nd = d + a.cost;
      const auto ti = static_cast<std::size_t>(a.to);
      // The tie branch never re-owns a seed (owner == self): every source
      // must keep its own Voronoi cell even when a zero-cost path from a
      // smaller source reaches it at distance 0 — Mehlhorn's bridge MST
      // needs all |T| cells non-empty, and the library's VM-tap and
      // auxiliary-graph constructions make zero-cost edges routine.
      if (nd < vor_.dist[ti] ||
          (nd == vor_.dist[ti] && o < vor_.owner[ti] && vor_.owner[ti] != a.to)) {
        if (vor_.dist[ti] == kInfiniteCost) vor_touched_.push_back(a.to);
        vor_.dist[ti] = nd;
        vor_.owner[ti] = o;
        vor_.parent[ti] = u;
        vor_.parent_edge[ti] = a.edge;
        heap_push(multi_heap_, MultiHeapItem{nd, o, a.to});
      }
    }
  }
  return vor_;
}

}  // namespace sofe::graph
