#pragma once
// Disjoint-set union (union by size + path halving).  Used by Kruskal's MST,
// connectivity checks, and forest-structure validation.

#include <cassert>
#include <cstdint>
#include <numeric>
#include <vector>

namespace sofe::graph {

class DisjointSetUnion {
 public:
  explicit DisjointSetUnion(std::size_t n) : parent_(n), size_(n, 1), components_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    assert(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets containing a and b; returns false if already joined.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --components_;
    return true;
  }

  bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }

  std::size_t component_size(std::size_t x) { return size_[find(x)]; }

  std::size_t component_count() const noexcept { return components_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_;
};

}  // namespace sofe::graph
