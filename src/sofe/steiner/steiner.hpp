#pragma once
// Steiner-tree substrate.
//
// The paper's bounds are parametric in ρST, "the best approximation ratio of
// the Steiner Tree problem" ([20], ρST = 1.39).  The LP-based 1.39 algorithm
// is not fieldable; like every practical system we substitute combinatorial
// 2-approximations (see DESIGN.md §3).  Three interchangeable algorithms are
// provided so the ablation bench can compare them, plus an exact
// Dreyfus-Wagner DP for small terminal sets used as a test oracle and by the
// exact SOF solver's undirected pieces.
//
// All solvers return a `SteinerTree`: a set of host-graph edge ids forming a
// tree that spans the requested terminals (terminals must be connected in the
// host graph).

#include <vector>

#include "sofe/graph/graph.hpp"

namespace sofe::steiner {

using graph::Cost;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

struct SteinerTree {
  std::vector<EdgeId> edges;

  Cost cost(const Graph& g) const {
    Cost sum = 0.0;
    for (EdgeId e : edges) sum += g.edge(e).cost;
    return sum;
  }
};

enum class Algorithm {
  kKmb,                 // Kou-Markowsky-Berman metric-closure MST, 2-approx
  kMehlhorn,            // Mehlhorn's Voronoi variant of KMB, 2-approx, fastest
  kTakahashiMatsuyama,  // incremental nearest-terminal path heuristic, 2-approx
  kDreyfusWagner,       // exact DP, O(3^t * V + 2^t * Dijkstra); small t only
};

/// Solves the Steiner tree problem over `terminals` with the given algorithm.
/// Requires: all terminals in one connected component.  A single terminal
/// yields an empty tree.
SteinerTree solve(const Graph& g, const std::vector<NodeId>& terminals,
                  Algorithm algo = Algorithm::kMehlhorn);

/// Individual entry points (exposed for tests and the ablation bench).
SteinerTree kmb(const Graph& g, const std::vector<NodeId>& terminals);
SteinerTree mehlhorn(const Graph& g, const std::vector<NodeId>& terminals);
SteinerTree takahashi_matsuyama(const Graph& g, const std::vector<NodeId>& terminals);
SteinerTree dreyfus_wagner(const Graph& g, const std::vector<NodeId>& terminals);

/// True iff `tree` is a forest whose edges connect all `terminals`.
bool is_valid_steiner_tree(const Graph& g, const SteinerTree& tree,
                           const std::vector<NodeId>& terminals);

}  // namespace sofe::steiner
