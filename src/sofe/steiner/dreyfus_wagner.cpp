// Exact Steiner tree via the Dreyfus-Wagner dynamic program.
//
//   S[X][v] = cost of the cheapest tree spanning terminal subset X plus v.
//
// Recurrence: a merge phase (split X at v) followed by a shortest-path
// relaxation phase (grow from every u to v).  Complexity O(3^t V + 2^t E log V)
// — exact but exponential in the number of terminals; used as a test oracle
// and for small instances only.

#include <algorithm>
#include <bit>
#include <cassert>
#include <queue>

#include "sofe/graph/shortest_path_engine.hpp"
#include "sofe/steiner/steiner.hpp"

namespace sofe::steiner {

namespace {

struct Decision {
  // How S[X][v] was achieved:
  //  merge: split into (X & split_mask, X & ~split_mask) both at v;
  //  walk:  from S[X][parent] via edge parent_edge.
  std::uint32_t split_mask = 0;  // nonzero => merge decision
  NodeId parent = graph::kInvalidNode;
  EdgeId parent_edge = graph::kInvalidEdge;
};

}  // namespace

SteinerTree dreyfus_wagner(const Graph& g, const std::vector<NodeId>& terminals) {
  std::vector<NodeId> T = terminals;
  std::sort(T.begin(), T.end());
  T.erase(std::unique(T.begin(), T.end()), T.end());
  if (T.size() <= 1) return {};
  assert(T.size() <= 20 && "Dreyfus-Wagner is exponential in terminal count");

  const auto n = static_cast<std::size_t>(g.node_count());
  // DP over subsets of T \ {T.back()}; the last terminal is the final root.
  const std::size_t t = T.size() - 1;
  const std::uint32_t full = (1u << t) - 1u;
  std::vector<std::vector<Cost>> S(full + 1, std::vector<Cost>(n, graph::kInfiniteCost));
  std::vector<std::vector<Decision>> dec(full + 1, std::vector<Decision>(n));

  // Base: singletons via Dijkstra from each terminal (one engine, reused).
  graph::ShortestPathEngine engine(g);
  for (std::size_t i = 0; i < t; ++i) {
    const auto& sp = engine.run(T[i]);
    const std::uint32_t mask = 1u << i;
    for (std::size_t v = 0; v < n; ++v) {
      S[mask][v] = sp.dist[v];
      dec[mask][v].parent = sp.parent[v];
      dec[mask][v].parent_edge = sp.parent_edge[v];
    }
  }

  // Subsets in increasing popcount order (any increasing-mask order works
  // because proper subsets have smaller masks... not true in general, so sort
  // explicitly by popcount).
  std::vector<std::uint32_t> masks;
  for (std::uint32_t m = 1; m <= full; ++m) masks.push_back(m);
  std::stable_sort(masks.begin(), masks.end(), [](std::uint32_t a, std::uint32_t b) {
    return std::popcount(a) < std::popcount(b);
  });

  struct HeapItem {
    Cost cost;
    NodeId node;
    bool operator>(const HeapItem& o) const noexcept {
      if (cost != o.cost) return cost > o.cost;
      return node > o.node;
    }
  };

  for (std::uint32_t X : masks) {
    if (std::popcount(X) < 2) continue;
    // Merge phase: canonical splits keep the lowest set bit on one side.
    const std::uint32_t low = X & (~X + 1u);
    for (std::uint32_t sub = (X - 1) & X; sub > 0; sub = (sub - 1) & X) {
      if (!(sub & low)) continue;  // enumerate each unordered split once
      const std::uint32_t rest = X ^ sub;
      for (std::size_t v = 0; v < n; ++v) {
        const Cost c = S[sub][v] + S[rest][v];
        if (c < S[X][v]) {
          S[X][v] = c;
          dec[X][v] = Decision{sub, graph::kInvalidNode, graph::kInvalidEdge};
        }
      }
    }
    // Relaxation phase: Dijkstra with the merge results as initial labels,
    // streamed over the CSR adjacency (this multi-label relaxation has no
    // single source, so it keeps its own heap rather than the engine's).
    const graph::CsrView& csr = g.csr();
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    for (std::size_t v = 0; v < n; ++v) {
      if (S[X][v] < graph::kInfiniteCost) heap.push({S[X][v], static_cast<NodeId>(v)});
    }
    while (!heap.empty()) {
      const auto [c, u] = heap.top();
      heap.pop();
      if (c > S[X][static_cast<std::size_t>(u)]) continue;
      for (std::int32_t i = csr.begin(u); i < csr.end(u); ++i) {
        const graph::CsrArc& a = csr.arcs[static_cast<std::size_t>(i)];
        const Cost nc = c + a.cost;
        if (nc < S[X][static_cast<std::size_t>(a.to)]) {
          S[X][static_cast<std::size_t>(a.to)] = nc;
          dec[X][static_cast<std::size_t>(a.to)] = Decision{0, u, a.edge};
          heap.push({nc, a.to});
        }
      }
    }
  }

  // Reconstruct edges from (full, T.back()).
  SteinerTree tree;
  std::vector<std::pair<std::uint32_t, NodeId>> stack{{full, T.back()}};
  while (!stack.empty()) {
    const auto [X, v] = stack.back();
    stack.pop_back();
    const Decision& d = dec[X][static_cast<std::size_t>(v)];
    if (d.split_mask != 0) {
      stack.emplace_back(d.split_mask, v);
      stack.emplace_back(X ^ d.split_mask, v);
    } else if (d.parent != graph::kInvalidNode) {
      tree.edges.push_back(d.parent_edge);
      stack.emplace_back(X, d.parent);
    }
    // parent == kInvalidNode and no split: v is the terminal of a singleton
    // subset (base case root) — nothing to emit.
  }
  // Deduplicate (merge branches can share edges when costs tie).
  std::sort(tree.edges.begin(), tree.edges.end());
  tree.edges.erase(std::unique(tree.edges.begin(), tree.edges.end()), tree.edges.end());
  return tree;
}

}  // namespace sofe::steiner
