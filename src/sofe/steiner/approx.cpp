// Combinatorial Steiner-tree approximations: KMB, Mehlhorn, and
// Takahashi-Matsuyama.  All three carry the classic 2(1 - 1/t) guarantee.

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>
#include <set>

#include "sofe/graph/dsu.hpp"
#include "sofe/graph/metric_closure.hpp"
#include "sofe/graph/shortest_path_engine.hpp"
#include "sofe/graph/mst.hpp"
#include "sofe/steiner/steiner.hpp"

namespace sofe::steiner {

namespace {

std::vector<NodeId> dedupe(std::vector<NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

/// Final cleanup shared by all approximations: take the union subgraph, find
/// its MST, and prune non-terminal leaves.  Cost can only decrease.
SteinerTree finalize(const Graph& g, const std::set<EdgeId>& union_edges,
                     const std::vector<NodeId>& terminals) {
  std::vector<bool> in_subgraph(static_cast<std::size_t>(g.node_count()), false);
  for (EdgeId e : union_edges) {
    in_subgraph[static_cast<std::size_t>(g.edge(e).u)] = true;
    in_subgraph[static_cast<std::size_t>(g.edge(e).v)] = true;
  }
  for (NodeId t : terminals) in_subgraph[static_cast<std::size_t>(t)] = true;

  // MST of the union subgraph: Kruskal restricted to union_edges.
  std::vector<EdgeId> order(union_edges.begin(), union_edges.end());
  std::stable_sort(order.begin(), order.end(),
                   [&](EdgeId a, EdgeId b) { return g.edge(a).cost < g.edge(b).cost; });
  graph::DisjointSetUnion dsu(static_cast<std::size_t>(g.node_count()));
  std::vector<EdgeId> mst;
  for (EdgeId e : order) {
    if (dsu.unite(static_cast<std::size_t>(g.edge(e).u), static_cast<std::size_t>(g.edge(e).v))) {
      mst.push_back(e);
    }
  }

  std::vector<bool> keep(static_cast<std::size_t>(g.node_count()), false);
  for (NodeId t : terminals) keep[static_cast<std::size_t>(t)] = true;
  SteinerTree result;
  result.edges = graph::prune_non_terminal_leaves(g, std::move(mst), keep);
  return result;
}

}  // namespace

SteinerTree kmb(const Graph& g, const std::vector<NodeId>& terminals) {
  const std::vector<NodeId> T = dedupe(terminals);
  if (T.size() <= 1) return {};

  // 1. Metric closure among terminals.
  graph::MetricClosure closure(g, T);

  // 2. MST of the terminal closure (Prim on the dense closure).
  const std::size_t t = T.size();
  std::vector<bool> in_tree(t, false);
  std::vector<Cost> best(t, graph::kInfiniteCost);
  std::vector<std::size_t> best_from(t, 0);
  best[0] = 0.0;
  std::set<EdgeId> union_edges;
  for (std::size_t round = 0; round < t; ++round) {
    std::size_t pick = t;
    for (std::size_t i = 0; i < t; ++i) {
      if (!in_tree[i] && (pick == t || best[i] < best[pick])) pick = i;
    }
    if (pick == t || best[pick] >= graph::kInfiniteCost) break;  // rest unreachable
    in_tree[pick] = true;
    // 3. Expand the closure edge into its underlying shortest path.
    if (round > 0) {
      const auto path = closure.path(T[best_from[pick]], T[pick]);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        union_edges.insert(g.find_edge(path[i], path[i + 1]));
      }
    }
    for (std::size_t i = 0; i < t; ++i) {
      if (in_tree[i]) continue;
      const Cost d = closure.distance(T[pick], T[i]);
      if (d < best[i]) {
        best[i] = d;
        best_from[i] = pick;
      }
    }
  }

  // 4-5. MST of union subgraph + leaf pruning.
  return finalize(g, union_edges, T);
}

SteinerTree mehlhorn(const Graph& g, const std::vector<NodeId>& terminals) {
  const std::vector<NodeId> T = dedupe(terminals);
  if (T.size() <= 1) return {};

  // 1. One multi-source Dijkstra builds the Voronoi partition around
  //    terminals: owner[v] = closest terminal, dist[v] = distance to it
  //    (equal-distance ties owned by the smallest terminal id).
  graph::ShortestPathEngine engine(g);
  const auto& vor = engine.run_multi(T);

  // 2. For every graph edge (u, v) bridging two Voronoi cells s != t, the
  //    implied terminal-to-terminal connection costs
  //    dist[u] + c(u,v) + dist[v].  Keep the cheapest bridge per cell pair;
  //    the MST over these bridges is Mehlhorn's approximation of KMB's
  //    closure MST.
  struct Bridge {
    Cost cost = graph::kInfiniteCost;
    EdgeId via = graph::kInvalidEdge;
  };
  std::map<std::pair<NodeId, NodeId>, Bridge> bridges;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& ed = g.edge(e);
    const NodeId su = vor.owner[static_cast<std::size_t>(ed.u)];
    const NodeId sv = vor.owner[static_cast<std::size_t>(ed.v)];
    if (su == sv || su == graph::kInvalidNode || sv == graph::kInvalidNode) continue;
    const Cost c = vor.dist[static_cast<std::size_t>(ed.u)] + ed.cost +
                   vor.dist[static_cast<std::size_t>(ed.v)];
    // An infinite bridge (soft-disconnected link, or a cell only reachable
    // at infinite distance) connects nothing: inserting it would leave a
    // kInvalidEdge placeholder for Kruskal to dereference.
    if (c >= graph::kInfiniteCost) continue;
    auto& b = bridges[Graph::edge_key(su, sv)];
    if (c < b.cost) b = Bridge{c, e};
  }

  // 3. Kruskal over cell-pair bridges.
  std::vector<std::pair<std::pair<NodeId, NodeId>, Bridge>> items(bridges.begin(), bridges.end());
  std::stable_sort(items.begin(), items.end(),
                   [](const auto& a, const auto& b) { return a.second.cost < b.second.cost; });
  // Map terminal ids to dense indices for the DSU.
  std::map<NodeId, std::size_t> tid;
  for (std::size_t i = 0; i < T.size(); ++i) tid[T[i]] = i;
  graph::DisjointSetUnion dsu(T.size());

  std::set<EdgeId> union_edges;
  auto add_voronoi_path = [&](NodeId from) {
    // Walk up the Voronoi shortest-path tree to this node's owning terminal.
    for (NodeId v = from; vor.parent[static_cast<std::size_t>(v)] != graph::kInvalidNode;
         v = vor.parent[static_cast<std::size_t>(v)]) {
      union_edges.insert(vor.parent_edge[static_cast<std::size_t>(v)]);
    }
  };
  for (const auto& [cells, bridge] : items) {
    if (dsu.unite(tid.at(cells.first), tid.at(cells.second))) {
      const auto& ed = g.edge(bridge.via);
      union_edges.insert(bridge.via);
      add_voronoi_path(ed.u);
      add_voronoi_path(ed.v);
    }
  }
  // Terminals in distinct leftover components (only possible when links sit
  // at infinite cost) simply stay unspanned: the result is a Steiner forest
  // over the reachable terminals, and callers detect the gap via
  // is_valid_steiner_tree / their own span checks.
  return finalize(g, union_edges, T);
}

SteinerTree takahashi_matsuyama(const Graph& g, const std::vector<NodeId>& terminals) {
  const std::vector<NodeId> T = dedupe(terminals);
  if (T.size() <= 1) return {};

  // Grow the tree from T[0]; at every step connect the terminal nearest to
  // the current tree via its shortest path.  One engine serves every
  // iteration's multi-source query.
  graph::ShortestPathEngine engine(g);
  std::vector<bool> in_tree(static_cast<std::size_t>(g.node_count()), false);
  in_tree[static_cast<std::size_t>(T[0])] = true;
  std::set<EdgeId> union_edges;
  std::vector<NodeId> remaining(T.begin() + 1, T.end());

  while (!remaining.empty()) {
    // Multi-source Dijkstra from all current tree nodes.
    std::vector<NodeId> tree_nodes;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (in_tree[static_cast<std::size_t>(v)]) tree_nodes.push_back(v);
    }
    const auto& sp = engine.run_multi(tree_nodes);
    std::size_t pick = 0;
    for (std::size_t i = 1; i < remaining.size(); ++i) {
      if (sp.dist[static_cast<std::size_t>(remaining[i])] <
          sp.dist[static_cast<std::size_t>(remaining[pick])]) {
        pick = i;
      }
    }
    if (sp.dist[static_cast<std::size_t>(remaining[pick])] >= graph::kInfiniteCost) {
      break;  // every remaining terminal is unreachable from the tree
    }
    for (NodeId v = remaining[pick]; sp.parent[static_cast<std::size_t>(v)] != graph::kInvalidNode;
         v = sp.parent[static_cast<std::size_t>(v)]) {
      union_edges.insert(sp.parent_edge[static_cast<std::size_t>(v)]);
      in_tree[static_cast<std::size_t>(v)] = true;
    }
    in_tree[static_cast<std::size_t>(remaining[pick])] = true;
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  return finalize(g, union_edges, T);
}

SteinerTree solve(const Graph& g, const std::vector<NodeId>& terminals, Algorithm algo) {
  switch (algo) {
    case Algorithm::kKmb:
      return kmb(g, terminals);
    case Algorithm::kMehlhorn:
      return mehlhorn(g, terminals);
    case Algorithm::kTakahashiMatsuyama:
      return takahashi_matsuyama(g, terminals);
    case Algorithm::kDreyfusWagner:
      return dreyfus_wagner(g, terminals);
  }
  return {};
}

bool is_valid_steiner_tree(const Graph& g, const SteinerTree& tree,
                           const std::vector<NodeId>& terminals) {
  return graph::is_forest(g, tree.edges) && graph::spans(g, tree.edges, dedupe(terminals));
}

}  // namespace sofe::steiner
