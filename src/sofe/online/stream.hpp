#pragma once
// The deterministic arrival stream shared by the sequential driver and the
// epoch-pipelined admission service (DESIGN.md §10).
//
// Everything that defines the online scenario's semantics lives here, in one
// place, so `online::simulate` and `online::Pipeline` cannot drift: the
// pre-sampled request sequence (the RNG stream never depends on solver
// output, so all requests are drawn up front), the persistent master
// Problem, the load ledger, and the epoch protocol — price refreshes happen
// once per epoch of `OnlineConfig::epoch_size` arrivals, departures release
// at exactly the sequential points, and ledger charges commit in arrival
// order.  At epoch_size 1 the protocol degenerates to the paper's
// per-arrival Fig. 12 loop, bit for bit.

#include <cstdint>
#include <memory>
#include <vector>

#include "sofe/online/admission.hpp"
#include "sofe/online/simulator.hpp"
#include "sofe/resilience/recovery.hpp"

namespace sofe::online {

/// One pre-sampled arrival: the node sets the request asks to serve.
struct Request {
  std::vector<core::NodeId> sources;
  std::vector<core::NodeId> destinations;
};

/// Checks an OnlineConfig and throws std::invalid_argument with a message
/// naming the offending field instead of letting a degenerate configuration
/// silently produce an empty or malformed request sequence.
void validate(const OnlineConfig& cfg);

/// One arrival's commit outcome (DESIGN.md §14): what the stream decided,
/// at what cost, and how loaded the network was when it decided.
struct SlotOutcome {
  enum class Status : std::uint8_t {
    kAdmitted,    ///< embedded, (policy-)accepted, charged to the ledger
    kRejected,    ///< embedded but declined by policy or capacity gate
    kInfeasible,  ///< the solver produced no embedding
  };
  Status status = Status::kInfeasible;
  core::Cost cost = 0.0;  ///< snapshot-price cost; 0 unless admitted
  /// Max physical-link utilization at decision time (after the departures
  /// due at this slot released, before this slot's own charge).
  double decision_utilization = 0.0;
};

/// The online scenario's state machine.  One instance is driven by exactly
/// one thread (the sequential driver, or the pipeline's commit stage); the
/// pre-sampled requests are immutable after construction and safe for
/// concurrent readers.
///
/// Epoch protocol (DESIGN.md §10 + §14): the driver calls, in order,
///   open_epoch(first)          — releases pre-epoch departures, refreshes
///                                prices once; master() now carries the
///                                epoch snapshot every arrival of the epoch
///                                is priced against
///   commit_epoch(first, forests)
///                              — after every slot of the epoch has been
///                                solved: per slot in arrival order,
///                                releases the intra-epoch departure due at
///                                it, runs the admission decision (policy
///                                intent + capacity gate) and charges the
///                                admitted embeddings; returns one
///                                SlotOutcome per slot
/// and repeats until the stream is exhausted.  Batching the commit is what
/// lets batch-ranking policies (reject-costliest) see the whole epoch; it
/// is semantically free because solves read only the frozen snapshot and
/// the ledger is read only at epoch open — the per-slot ledger evolution
/// inside commit_epoch is exactly the historical per-slot interleaving.
///
/// Failure drills (DESIGN.md §12) ride the same protocol: scripted
/// FailureEvents compile into a time-sorted toggle schedule at
/// construction; open_epoch fires every toggle due in the epoch BEFORE the
/// price refresh, so a failed link simply refreshes to kInfiniteCost and a
/// healed one back to its ledger price — ordinary entries in the epoch's
/// EdgeCostDelta batch, which is how the drill reaches solver sessions and
/// pipeline worker replicas without any extra machinery.  After the
/// refresh, every live embedding charged across a newly-failed link is
/// recovered (resilience::recover_request) under the configured budget,
/// still inside open_epoch — i.e. while the pipeline's workers are parked —
/// which keeps the drill deterministic at every worker count.
class ArrivalStream {
 public:
  /// Validates cfg (throws std::invalid_argument), builds the persistent
  /// master Problem (topology + vms_per_dc VM taps per DC) and pre-samples
  /// the whole request sequence from cfg.seed — the identical sequence the
  /// historical per-arrival sampler produced.
  ArrivalStream(const topology::Topology& topo, const OnlineConfig& cfg);

  int requests() const noexcept { return cfg_.requests; }
  int epoch_size() const noexcept { return cfg_.epoch_size; }
  const OnlineConfig& config() const noexcept { return cfg_; }

  /// Slot r's pre-sampled request.  Immutable; safe from any thread.
  const Request& request(int r) const {
    return requests_[static_cast<std::size_t>(r)];
  }

  /// The persistent Problem at the current epoch's snapshot prices.
  /// Mutated only by open_epoch (prices) and stage (sources/destinations).
  const core::Problem& master() const noexcept { return master_; }

  /// Opens the epoch covering slots [first, first + count) where
  /// count = min(epoch_size, requests - first): releases the charges of
  /// every departure due in the epoch whose admission predates it, then
  /// refreshes link prices and VM setup costs from the ledger — writing
  /// only values that actually moved, so the master keeps its CSR cache
  /// and solver sessions see a cost-only delta batch.  Returns count.
  /// `moved` (optional) receives one EdgeCostDelta per rewritten link;
  /// `node_costs_moved` is set when any VM setup cost changed.
  int open_epoch(int first, std::vector<graph::EdgeCostDelta>* moved = nullptr,
                 bool* node_costs_moved = nullptr);

  /// Stages slot r's request on the master (sources/destinations assigned
  /// in place) and returns it, ready to hand to an embedder.
  const core::Problem& stage(int r);

  /// Commits the whole open epoch in arrival order: `forests[i]` is the
  /// embedding solved for slot first + i at the epoch snapshot (empty =
  /// infeasible).  Per slot, in order: the intra-epoch departure due at it
  /// releases (one admitted inside this epoch — pre-epoch ones were
  /// released by open_epoch), the admission decision applies, and an
  /// admitted embedding's bandwidth and VNF placements are charged.  With
  /// no policy configured every non-empty forest is admitted (the paper's
  /// soft regime); with one, the policy's batch intent is gated per slot by
  /// LoadLedger::can_admit, so a rejected arrival charges NOTHING — the
  /// rejection-through-commit rule (DESIGN.md §14).  Costs are evaluated at
  /// the frozen snapshot by re-staging each slot, so the values are
  /// bitwise the historical solve-then-commit interleaving's.
  std::vector<SlotOutcome> commit_epoch(int first,
                                        const std::vector<core::ServiceForest>& forests);

  /// Folds the end-of-stream statistics and admission bookkeeping into an
  /// OnlineResult (overloaded links, utilization, accept/reject tallies,
  /// recovery reports).  Both drivers call this last, which is what keeps
  /// the admission series structurally incapable of driver drift.
  void finish(OnlineResult& result) const;

  /// Links loaded beyond capacity right now (the end-of-stream statistic).
  std::size_t overloaded_links() const;

  /// The ledger, for invariant checks (test seam; loads never exceed
  /// capacity in enforced mode) and utilization probes.
  const costmodel::LoadLedger& ledger() const noexcept { return ledger_; }

  /// True when an admission policy is configured (enforced-capacity mode).
  bool has_admission() const noexcept { return policy_ != nullptr; }

  /// Replaces the policy parsed from OnlineConfig::admission (test seam for
  /// custom policies, e.g. replaying a recorded decision log).  Must be
  /// called before the first open_epoch; pass nullptr to disable admission.
  void set_admission_policy(std::unique_ptr<AdmissionPolicy> policy) {
    policy_ = std::move(policy);
  }

  /// Per-request ledger charges of slot r's live embedding (empty unless
  /// charges are tracked: holding, drills or admission).  One entry per
  /// charged stream copy / enabled VNF slot, multiplicity preserved.
  const std::vector<graph::EdgeId>& charged_links(int r) const {
    return charges_[static_cast<std::size_t>(r)].links;
  }
  const std::vector<std::size_t>& charged_hosts(int r) const {
    return charges_[static_cast<std::size_t>(r)].hosts;
  }

  /// True when the config scripts a failure drill (a non-empty
  /// OnlineConfig::failures plan survived validation).
  bool has_failures() const noexcept { return has_failures_; }

  /// Installs the from-scratch re-embedder recovery escalates to.  Must be
  /// set before the first open_epoch of a drill; each driver installs its
  /// own (the free-function driver wraps the embedder under test, the
  /// pipeline a dedicated solver session — interchangeable, because
  /// sessions are pure speed knobs).
  void set_recovery_embedder(resilience::EmbedFn embed) {
    recovery_embed_ = std::move(embed);
  }

  /// Failure-drill recovery reports, in (epoch, arrival-slot) order.
  const std::vector<resilience::RecoveryReport>& recoveries() const noexcept {
    return recoveries_;
  }

 private:
  void release(int admitted_slot);
  void charge(int r, const core::ServiceForest& forest);
  void recover_affected(const std::vector<graph::EdgeId>& newly_failed);
  /// The ledger charges `forest` would take if admitted (multiplicity
  /// preserved), the shape can_admit and charge() agree on.
  void collect_charges(const core::ServiceForest& forest,
                       std::vector<graph::EdgeId>* links,
                       std::vector<std::size_t>* hosts) const;
  /// The same embedding priced on an EMPTY network: zero-load Fortz-Thorup
  /// link prices plus zero-load VM setup — the denominator of the
  /// threshold-price policy's congestion-surcharge ratio.
  core::Cost uncongested_cost(const core::ServiceForest& forest) const;

  OnlineConfig cfg_;
  core::Problem master_;
  costmodel::LoadLedger ledger_;
  std::vector<std::size_t> vm_host_;  // per VM node (indexed from n_access_)
  std::vector<Request> requests_;
  graph::NodeId n_access_ = 0;   // nodes of the physical topology
  graph::EdgeId n_physical_ = 0; // edges of the physical topology
  int epoch_first_ = 0;          // first slot of the open epoch

  // Per-request ledger charges, kept so a departure can return exactly
  // what its admission took — and, in a drill, so the newly-failed edge
  // set can be intersected against every live embedding in O(charges).
  struct Charges {
    std::vector<graph::EdgeId> links;  // one entry per charged stream copy
    std::vector<std::size_t> hosts;    // one entry per enabled VNF slot
  };
  std::vector<Charges> charges_;
  bool track_charges_ = false;  // holding, drills or admission configured

  // Admission control (DESIGN.md §14).  The policy is parsed from
  // OnlineConfig::admission at construction; scalar tallies accumulate at
  // commit and fold into OnlineResult via finish().
  std::unique_ptr<AdmissionPolicy> policy_;
  int admitted_count_ = 0;
  int rejected_count_ = 0;
  double rejected_demand_ = 0.0;
  std::vector<AdmissionCandidate> batch_;  // commit_epoch scratch
  std::vector<char> intent_;

  // Failure drill (DESIGN.md §12).
  struct Toggle {
    int at = 0;        // arrival index the event aligns to
    bool fail = false; // true = drive edges to +inf, false = heal
    std::vector<graph::EdgeId> edges;
  };
  std::vector<Toggle> toggles_;  // stable-sorted by `at`
  std::size_t next_toggle_ = 0;
  std::vector<int> fail_count_;  // per physical link; overlapping plans compose
  // Live embeddings by slot (drill only; cleared on departure/loss) — the
  // ledger remembers what a request charged, this remembers its shape.
  std::vector<core::ServiceForest> admitted_;
  resilience::EmbedFn recovery_embed_;
  std::vector<resilience::RecoveryReport> recoveries_;
  bool has_failures_ = false;
};

}  // namespace sofe::online
