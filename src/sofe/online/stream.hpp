#pragma once
// The deterministic arrival stream shared by the sequential driver and the
// epoch-pipelined admission service (DESIGN.md §10).
//
// Everything that defines the online scenario's semantics lives here, in one
// place, so `online::simulate` and `online::Pipeline` cannot drift: the
// pre-sampled request sequence (the RNG stream never depends on solver
// output, so all requests are drawn up front), the persistent master
// Problem, the load ledger, and the epoch protocol — price refreshes happen
// once per epoch of `OnlineConfig::epoch_size` arrivals, departures release
// at exactly the sequential points, and ledger charges commit in arrival
// order.  At epoch_size 1 the protocol degenerates to the paper's
// per-arrival Fig. 12 loop, bit for bit.

#include <vector>

#include "sofe/online/simulator.hpp"
#include "sofe/resilience/recovery.hpp"

namespace sofe::online {

/// One pre-sampled arrival: the node sets the request asks to serve.
struct Request {
  std::vector<core::NodeId> sources;
  std::vector<core::NodeId> destinations;
};

/// Checks an OnlineConfig and throws std::invalid_argument with a message
/// naming the offending field instead of letting a degenerate configuration
/// silently produce an empty or malformed request sequence.
void validate(const OnlineConfig& cfg);

/// The online scenario's state machine.  One instance is driven by exactly
/// one thread (the sequential driver, or the pipeline's commit stage); the
/// pre-sampled requests are immutable after construction and safe for
/// concurrent readers.
///
/// Epoch protocol (DESIGN.md §10): the driver calls, in order,
///   open_epoch(first)          — releases pre-epoch departures, refreshes
///                                prices once; master() now carries the
///                                epoch snapshot every arrival of the epoch
///                                is priced against
///   commit(r, forest)          — for each slot r of the epoch in arrival
///                                order: releases intra-epoch departures due
///                                at r, charges the embedding, returns its
///                                cost at the snapshot prices
/// and repeats until the stream is exhausted.
///
/// Failure drills (DESIGN.md §12) ride the same protocol: scripted
/// FailureEvents compile into a time-sorted toggle schedule at
/// construction; open_epoch fires every toggle due in the epoch BEFORE the
/// price refresh, so a failed link simply refreshes to kInfiniteCost and a
/// healed one back to its ledger price — ordinary entries in the epoch's
/// EdgeCostDelta batch, which is how the drill reaches solver sessions and
/// pipeline worker replicas without any extra machinery.  After the
/// refresh, every live embedding charged across a newly-failed link is
/// recovered (resilience::recover_request) under the configured budget,
/// still inside open_epoch — i.e. while the pipeline's workers are parked —
/// which keeps the drill deterministic at every worker count.
class ArrivalStream {
 public:
  /// Validates cfg (throws std::invalid_argument), builds the persistent
  /// master Problem (topology + vms_per_dc VM taps per DC) and pre-samples
  /// the whole request sequence from cfg.seed — the identical sequence the
  /// historical per-arrival sampler produced.
  ArrivalStream(const topology::Topology& topo, const OnlineConfig& cfg);

  int requests() const noexcept { return cfg_.requests; }
  int epoch_size() const noexcept { return cfg_.epoch_size; }
  const OnlineConfig& config() const noexcept { return cfg_; }

  /// Slot r's pre-sampled request.  Immutable; safe from any thread.
  const Request& request(int r) const {
    return requests_[static_cast<std::size_t>(r)];
  }

  /// The persistent Problem at the current epoch's snapshot prices.
  /// Mutated only by open_epoch (prices) and stage (sources/destinations).
  const core::Problem& master() const noexcept { return master_; }

  /// Opens the epoch covering slots [first, first + count) where
  /// count = min(epoch_size, requests - first): releases the charges of
  /// every departure due in the epoch whose admission predates it, then
  /// refreshes link prices and VM setup costs from the ledger — writing
  /// only values that actually moved, so the master keeps its CSR cache
  /// and solver sessions see a cost-only delta batch.  Returns count.
  /// `moved` (optional) receives one EdgeCostDelta per rewritten link;
  /// `node_costs_moved` is set when any VM setup cost changed.
  int open_epoch(int first, std::vector<graph::EdgeCostDelta>* moved = nullptr,
                 bool* node_costs_moved = nullptr);

  /// Stages slot r's request on the master (sources/destinations assigned
  /// in place) and returns it, ready to hand to an embedder.
  const core::Problem& stage(int r);

  /// Commits slot r in arrival order: releases the intra-epoch departure
  /// due at r (one admitted inside the current epoch — pre-epoch ones were
  /// released by open_epoch), then charges the embedding's bandwidth and
  /// VNF placements to the ledger and returns its cost at the epoch
  /// snapshot prices.  An empty forest charges nothing and returns 0.
  core::Cost commit(int r, const core::ServiceForest& forest);

  /// Links loaded beyond capacity right now (the end-of-stream statistic).
  std::size_t overloaded_links() const;

  /// True when the config scripts a failure drill (a non-empty
  /// OnlineConfig::failures plan survived validation).
  bool has_failures() const noexcept { return has_failures_; }

  /// Installs the from-scratch re-embedder recovery escalates to.  Must be
  /// set before the first open_epoch of a drill; each driver installs its
  /// own (the free-function driver wraps the embedder under test, the
  /// pipeline a dedicated solver session — interchangeable, because
  /// sessions are pure speed knobs).
  void set_recovery_embedder(resilience::EmbedFn embed) {
    recovery_embed_ = std::move(embed);
  }

  /// Failure-drill recovery reports, in (epoch, arrival-slot) order.
  const std::vector<resilience::RecoveryReport>& recoveries() const noexcept {
    return recoveries_;
  }

 private:
  void release(int admitted_slot);
  void charge(int r, const core::ServiceForest& forest);
  void recover_affected(const std::vector<graph::EdgeId>& newly_failed);

  OnlineConfig cfg_;
  core::Problem master_;
  costmodel::LoadLedger ledger_;
  std::vector<std::size_t> vm_host_;  // per VM node (indexed from n_access_)
  std::vector<Request> requests_;
  graph::NodeId n_access_ = 0;   // nodes of the physical topology
  graph::EdgeId n_physical_ = 0; // edges of the physical topology
  int epoch_first_ = 0;          // first slot of the open epoch

  // Per-request ledger charges, kept so a departure can return exactly
  // what its admission took — and, in a drill, so the newly-failed edge
  // set can be intersected against every live embedding in O(charges).
  struct Charges {
    std::vector<graph::EdgeId> links;  // one entry per charged stream copy
    std::vector<std::size_t> hosts;    // one entry per enabled VNF slot
  };
  std::vector<Charges> charges_;
  bool track_charges_ = false;  // holding_arrivals > 0 || has_failures_

  // Failure drill (DESIGN.md §12).
  struct Toggle {
    int at = 0;        // arrival index the event aligns to
    bool fail = false; // true = drive edges to +inf, false = heal
    std::vector<graph::EdgeId> edges;
  };
  std::vector<Toggle> toggles_;  // stable-sorted by `at`
  std::size_t next_toggle_ = 0;
  std::vector<int> fail_count_;  // per physical link; overlapping plans compose
  // Live embeddings by slot (drill only; cleared on departure/loss) — the
  // ledger remembers what a request charged, this remembers its shape.
  std::vector<core::ServiceForest> admitted_;
  resilience::EmbedFn recovery_embed_;
  std::vector<resilience::RecoveryReport> recoveries_;
  bool has_failures_ = false;
};

}  // namespace sofe::online
