#pragma once
// Epoch-pipelined concurrent arrival service (DESIGN.md §10).
//
// The production shape of the online layer: arrivals queue up, N worker
// sessions price different queued arrivals in parallel against one
// immutable epoch snapshot (graph prices + published read-only metric
// closure + ledger state frozen at epoch open), and a single commit stage
// serializes ledger writes in arrival order — folding each epoch's price
// movements into ONE EdgeCostDelta batch that drives closure repair and
// pricing-cache invalidation per epoch instead of per arrival.
//
// Determinism contract: for every (topology, OnlineConfig) the cost series
// is bitwise identical to the sequential driver `online::simulate` at the
// same epoch_size, at ANY worker count — the sequential loop is the
// 1-worker degenerate case, and OnlineConfig::epoch_size = 1 makes both of
// them the paper's per-arrival Fig. 12 loop.  Workers may speculate one
// epoch ahead; a speculative result priced against epoch E commits at
// E + k only if no price moved in between (then it is bitwise the fresh
// result, by solver determinism), otherwise it is discarded and the slot
// re-solves at current prices (the stale-price repricing rule, §10).
//
// Declared here in the online layer, implemented in src/sofe/api/
// pipeline.cpp: the pipeline drives api::Solver sessions, and the layer
// DAG has api on top of online (the same split as the Solver& overload of
// online::simulate).

#include <memory>
#include <string>

#include "sofe/online/simulator.hpp"

namespace sofe::api {
class ReportAccumulator;
struct SolverOptions;
}  // namespace sofe::api

namespace sofe::online {

struct PipelineOptions {
  /// Pricing worker threads.  0 = std::thread::hardware_concurrency();
  /// 1 reproduces the sequential driver's schedule with the pipeline's
  /// machinery (still bit-identical — as is every other count).
  int workers = 1;
  /// How many epochs ahead an idle worker may speculate (it prices a
  /// not-yet-opened slot against the current snapshot; the stale-price
  /// rule validates or re-solves at commit).  0 disables speculation.
  int lookahead_epochs = 1;
};

/// The admission pipeline.  One instance serves one arrival stream; run()
/// may be called once.  Construction validates the OnlineConfig
/// (std::invalid_argument on nonsense) and resolves `solver_name` against
/// the global SolverRegistry — each worker owns a private solver session
/// built from these options, plus a private Problem replica advanced by
/// the per-epoch delta batch.
class Pipeline {
 public:
  Pipeline(const topology::Topology& topo, const OnlineConfig& cfg, std::string solver_name,
           const api::SolverOptions& opt, PipelineOptions popt = {});
  ~Pipeline();
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Optional aggregation sink, folded on the commit thread only: every
  /// committed arrival's SolveReport plus its queue-wait and commit-stage
  /// samples.  Attach before run(); must outlive it.
  void set_report_sink(api::ReportAccumulator* sink) noexcept;

  /// Serves the whole stream: spawns the workers, runs the epoch publish /
  /// commit loop on the calling thread, joins, and returns the same
  /// OnlineResult the sequential driver produces (plus the pipeline
  /// diagnostics fields).  Worker exceptions are rethrown here.
  OnlineResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience one-shot: Pipeline(...).run().
OnlineResult serve_pipelined(const topology::Topology& topo, const OnlineConfig& cfg,
                             const std::string& solver_name, const api::SolverOptions& opt,
                             PipelineOptions popt = {});

}  // namespace sofe::online
