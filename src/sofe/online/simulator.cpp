#include "sofe/online/simulator.hpp"

#include "sofe/online/stream.hpp"
#include "sofe/util/stopwatch.hpp"

namespace sofe::online {

OnlineResult simulate(const topology::Topology& topo, const OnlineConfig& cfg,
                      const std::string& algo_name, const EmbedFn& embed) {
  // The sequential epoch driver: the scenario's semantics (request
  // sampling, master Problem, price refreshes, departures, commit order)
  // live in ArrivalStream, shared with the pipelined service.  At the
  // default epoch_size 1 every epoch is a single arrival and this loop is
  // the paper's Fig. 12 loop, bit for bit; at S > 1 it is the determinism
  // reference online::Pipeline must reproduce at every worker count
  // (DESIGN.md §10).
  ArrivalStream stream(topo, cfg);

  // Failure drill: recovery escalates to the embedder under test, through
  // the same copy_problems gate as admissions so the differential reference
  // run exercises the identical code path.
  if (stream.has_failures()) {
    stream.set_recovery_embedder([&](const Problem& p) -> ServiceForest {
      if (!cfg.copy_problems) return embed(p);
      const Problem copy = p;
      return embed(copy);
    });
  }

  OnlineResult result;
  result.algorithm = algo_name;
  result.epoch_size = cfg.epoch_size;
  Cost accumulated = 0.0;

  for (int first = 0; first < cfg.requests;) {
    const int count = stream.open_epoch(first);
    for (int r = first; r < first + count; ++r) {
      const Problem& p = stream.stage(r);
      const util::Stopwatch watch;
      const ServiceForest forest = [&] {
        if (!cfg.copy_problems) return embed(p);
        // The historical copy-per-arrival driver, kept as the
        // differential-testing reference.
        const Problem copy = p;
        return embed(copy);
      }();
      result.arrival_seconds.push_back(watch.seconds());
      const Cost cost = stream.commit(r, forest);
      if (forest.empty()) {
        ++result.infeasible_requests;
      } else {
        accumulated += cost;
      }
      result.per_request_cost.push_back(forest.empty() ? 0.0 : cost);
      result.accumulative_cost.push_back(accumulated);
    }
    first += count;
  }
  result.overloaded_links = stream.overloaded_links();
  result.recoveries = stream.recoveries();
  return result;
}

// The Solver& overload is defined in api/solver.cpp: api sits on top of
// online in the layer DAG, so the adapter lives in the higher layer and
// this file never includes api headers.

}  // namespace sofe::online
