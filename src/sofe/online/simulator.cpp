#include "sofe/online/simulator.hpp"

#include "sofe/online/stream.hpp"
#include "sofe/util/stopwatch.hpp"

namespace sofe::online {

OnlineResult simulate(const topology::Topology& topo, const OnlineConfig& cfg,
                      const std::string& algo_name, const EmbedFn& embed) {
  // The sequential epoch driver: the scenario's semantics (request
  // sampling, master Problem, price refreshes, departures, commit order)
  // live in ArrivalStream, shared with the pipelined service.  At the
  // default epoch_size 1 every epoch is a single arrival and this loop is
  // the paper's Fig. 12 loop, bit for bit; at S > 1 it is the determinism
  // reference online::Pipeline must reproduce at every worker count
  // (DESIGN.md §10).
  ArrivalStream stream(topo, cfg);

  // Failure drill: recovery escalates to the embedder under test, through
  // the same copy_problems gate as admissions so the differential reference
  // run exercises the identical code path.
  if (stream.has_failures()) {
    stream.set_recovery_embedder([&](const Problem& p) -> ServiceForest {
      if (!cfg.copy_problems) return embed(p);
      const Problem copy = p;
      return embed(copy);
    });
  }

  OnlineResult result;
  result.algorithm = algo_name;
  result.epoch_size = cfg.epoch_size;
  Cost accumulated = 0.0;

  for (int first = 0; first < cfg.requests;) {
    const int count = stream.open_epoch(first);
    // Solve every slot of the epoch first, then commit the batch: solves
    // read only the frozen snapshot (stage() swaps sources/destinations per
    // slot) and commits only the ledger, so the split is bitwise the
    // historical interleaving — and it is what lets admission policies rank
    // the whole epoch (DESIGN.md §14).
    std::vector<ServiceForest> forests;
    forests.reserve(static_cast<std::size_t>(count));
    for (int r = first; r < first + count; ++r) {
      const Problem& p = stream.stage(r);
      const util::Stopwatch watch;
      forests.push_back([&] {
        if (!cfg.copy_problems) return embed(p);
        // The historical copy-per-arrival driver, kept as the
        // differential-testing reference.
        const Problem copy = p;
        return embed(copy);
      }());
      result.arrival_seconds.push_back(watch.seconds());
    }
    const auto outcomes = stream.commit_epoch(first, forests);
    for (const SlotOutcome& out : outcomes) {
      const bool admitted = out.status == SlotOutcome::Status::kAdmitted;
      if (out.status == SlotOutcome::Status::kInfeasible) ++result.infeasible_requests;
      if (admitted) accumulated += out.cost;
      result.per_request_cost.push_back(admitted ? out.cost : 0.0);
      result.accumulative_cost.push_back(accumulated);
      result.accepted.push_back(admitted ? 1 : 0);
      result.decision_utilization.push_back(out.decision_utilization);
    }
    first += count;
  }
  stream.finish(result);
  return result;
}

// The Solver& overload is defined in api/solver.cpp: api sits on top of
// online in the layer DAG, so the adapter lives in the higher layer and
// this file never includes api headers.

}  // namespace sofe::online
