#include "sofe/online/simulator.hpp"

#include <algorithm>
#include <set>

namespace sofe::online {

using costmodel::LoadLedger;
using graph::EdgeId;
using graph::NodeId;

OnlineResult simulate(const topology::Topology& topo, const OnlineConfig& cfg,
                      const std::string& algo_name, const EmbedFn& embed) {
  util::Rng rng(cfg.seed ^ 0x0427);

  // ONE persistent Problem for the whole stream (see simulator.hpp):
  // topology + VM nodes (vms_per_dc per DC), as in the paper's online
  // setup.  VM i is hosted on DC host i / vms_per_dc.  Per arrival only
  // sources/destinations and the prices that actually moved are mutated,
  // so the CSR cache refreshes costs in place and solver sessions see
  // cost-only deltas.
  Problem p;
  p.network = topo.g;
  p.chain_length = cfg.chain_length;
  const NodeId n_access = topo.g.node_count();
  p.node_cost.assign(static_cast<std::size_t>(n_access), 0.0);
  p.is_vm.assign(static_cast<std::size_t>(n_access), 0);
  std::vector<std::size_t> vm_host;  // per VM node (indexed from n_access)
  for (std::size_t h = 0; h < topo.dc_nodes.size(); ++h) {
    for (int i = 0; i < cfg.vms_per_dc; ++i) {
      const NodeId vm = p.network.add_node();
      p.network.add_edge(vm, topo.dc_nodes[h], 0.0);
      p.node_cost.push_back(0.0);
      p.is_vm.push_back(1);
      vm_host.push_back(h);
    }
  }

  LoadLedger ledger(static_cast<std::size_t>(topo.g.edge_count()), cfg.link_capacity,
                    topo.dc_nodes.size(), cfg.host_capacity);

  // Per-request ledger charges, kept so a departure (cfg.holding_arrivals)
  // can return exactly what its admission took.
  struct Charges {
    std::vector<EdgeId> links;       // one entry per charged stream copy
    std::vector<std::size_t> hosts;  // one entry per enabled VNF slot
  };
  std::vector<Charges> charges(static_cast<std::size_t>(std::max(cfg.requests, 0)));

  OnlineResult result;
  result.algorithm = algo_name;
  Cost accumulated = 0.0;

  for (int r = 0; r < cfg.requests; ++r) {
    // --- departures first: the request admitted holding_arrivals ago
    // releases its charges, so this arrival's price refresh below emits the
    // corresponding cost-restore deltas.
    if (cfg.holding_arrivals > 0 && r >= cfg.holding_arrivals) {
      Charges& old = charges[static_cast<std::size_t>(r - cfg.holding_arrivals)];
      for (EdgeId e : old.links) ledger.remove_link_load(e, cfg.demand_mbps);
      for (std::size_t h : old.hosts) ledger.remove_host_load(h, 1.0);
      old = Charges{};
    }

    // --- sample the request (identical across algorithms for a fixed seed).
    // Sources and destinations are drawn independently (a node may play both
    // roles — the paper's SoftLayer setting of up to 17 destinations plus 12
    // sources does not fit 27 nodes otherwise).
    const int n_dst = rng.uniform_int(cfg.min_destinations, cfg.max_destinations);
    const int n_src = rng.uniform_int(cfg.min_sources, cfg.max_sources);
    const auto dst_pick = rng.sample_without_replacement(
        static_cast<std::size_t>(n_access),
        static_cast<std::size_t>(std::min(n_dst, static_cast<int>(n_access))));
    const auto src_pick = rng.sample_without_replacement(
        static_cast<std::size_t>(n_access),
        static_cast<std::size_t>(std::min(n_src, static_cast<int>(n_access))));

    p.sources.assign(src_pick.begin(), src_pick.end());
    p.destinations.assign(dst_pick.begin(), dst_pick.end());

    // --- refresh prices from current loads, writing only real changes (an
    // untouched link keeps its cost, its CSR entry and its place outside
    // the session's delta list).
    for (EdgeId e = 0; e < topo.g.edge_count(); ++e) {
      const Cost price = ledger.link_price(e, cfg.demand_mbps);
      if (p.network.edge(e).cost != price) p.network.set_edge_cost(e, price);
    }
    for (std::size_t i = 0; i < vm_host.size(); ++i) {
      p.node_cost[static_cast<std::size_t>(n_access) + i] =
          cfg.setup_scale * ledger.host_price(vm_host[i]);
    }

    // --- embed (cfg.copy_problems: the historical copy-per-arrival driver,
    // kept as the differential-testing reference).
    const ServiceForest forest = [&] {
      if (!cfg.copy_problems) return embed(p);
      const Problem copy = p;
      return embed(copy);
    }();
    if (forest.empty()) {
      ++result.infeasible_requests;
      result.per_request_cost.push_back(0.0);
      result.accumulative_cost.push_back(accumulated);
      continue;
    }
    const Cost cost = core::total_cost(p, forest);
    accumulated += cost;
    result.per_request_cost.push_back(cost);
    result.accumulative_cost.push_back(accumulated);

    // --- charge the ledger: one stream copy per distinct (stage, link) use,
    // one VNF slot per enabled VM.
    Charges& mine = charges[static_cast<std::size_t>(r)];
    for (const auto& se : forest.stage_edges()) {
      const EdgeId e = p.network.find_edge(se.u, se.v);
      if (e < topo.g.edge_count()) {  // physical links only (VM taps are free)
        ledger.add_link_load(e, cfg.demand_mbps);
        if (cfg.holding_arrivals > 0) mine.links.push_back(e);
      }
    }
    for (const auto& [vm, idx] : forest.enabled_vms()) {
      (void)idx;
      if (vm >= n_access) {
        const std::size_t host = vm_host[static_cast<std::size_t>(vm - n_access)];
        ledger.add_host_load(host, 1.0);
        if (cfg.holding_arrivals > 0) mine.hosts.push_back(host);
      }
    }
  }
  result.overloaded_links = ledger.overloaded_links();
  return result;
}

// The Solver& overload is defined in api/solver.cpp: api sits on top of
// online in the layer DAG, so the adapter lives in the higher layer and
// this file never includes api headers.

}  // namespace sofe::online
