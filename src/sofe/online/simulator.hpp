#pragma once
// Online-deployment simulator (Section VIII-C, Fig. 12).
//
// Requests arrive sequentially; each asks to serve a random destination set
// from a random candidate-source set through a |C|-stage chain.  Before each
// arrival, link and VM prices are refreshed from the current loads via the
// Fortz-Thorup function; the algorithm under test embeds a forest at those
// prices; the embedding's bandwidth and VNF placements are then charged to
// the ledger.  The simulator reports the accumulative cost series the paper
// plots, plus congestion statistics.

#include <functional>
#include <string>
#include <vector>

#include "sofe/core/forest.hpp"
#include "sofe/costmodel/load_ledger.hpp"
#include "sofe/topology/topology.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::api {
class Solver;
}

namespace sofe::online {

using core::Cost;
using core::Problem;
using core::ServiceForest;

/// The algorithm under test: problem in, forest out.
using EmbedFn = std::function<ServiceForest(const Problem&)>;

struct OnlineConfig {
  int requests = 30;
  int min_destinations = 13, max_destinations = 17;  // SoftLayer defaults
  int min_sources = 8, max_sources = 12;
  int chain_length = 3;
  int vms_per_dc = 5;          // "each data center has 5 VMs"
  double demand_mbps = 5.0;    // per-destination-stream demand
  double link_capacity = 100.0;
  double host_capacity = 5.0;  // VNF slots per DC host
  double setup_scale = 3.0;
  std::uint64_t seed = 11;
};

struct OnlineResult {
  std::string algorithm;
  std::vector<Cost> accumulative_cost;  // after each arrival
  std::vector<Cost> per_request_cost;
  int infeasible_requests = 0;
  std::size_t overloaded_links = 0;  // links beyond capacity at the end
};

/// Runs the request sequence against one algorithm.  The identical sequence
/// is regenerated from cfg.seed for every algorithm, so series are paired.
OnlineResult simulate(const topology::Topology& topo, const OnlineConfig& cfg,
                      const std::string& algo_name, const EmbedFn& embed);

/// Runs the request sequence against a persistent solver session (the api
/// layer).  Unlike the EmbedFn overload — which erases all state, so every
/// arrival rebuilds its metric closure from scratch — the session carries
/// its ShortestPathEngine and closure workspaces across arrivals: only link
/// *prices* change between requests, so each refresh recomputes hub trees
/// into already-sized storage.  The cost series is bit-identical to
/// embedding each arrival with the equivalent free function (tested).
OnlineResult simulate(const topology::Topology& topo, const OnlineConfig& cfg,
                      api::Solver& solver);

}  // namespace sofe::online
