#pragma once
// Online-deployment simulator (Section VIII-C, Fig. 12).
//
// Requests arrive sequentially; each asks to serve a random destination set
// from a random candidate-source set through a |C|-stage chain.  Before each
// arrival, link and VM prices are refreshed from the current loads via the
// Fortz-Thorup function; the algorithm under test embeds a forest at those
// prices; the embedding's bandwidth and VNF placements are then charged to
// the ledger.  The simulator reports the accumulative cost series the paper
// plots, plus congestion statistics.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sofe/core/forest.hpp"
#include "sofe/costmodel/load_ledger.hpp"
#include "sofe/resilience/failure_plan.hpp"
#include "sofe/topology/topology.hpp"
#include "sofe/util/rng.hpp"

namespace sofe::api {
class Solver;
}

namespace sofe::online {

using core::Cost;
using core::Problem;
using core::ServiceForest;

/// The algorithm under test: problem in, forest out.
using EmbedFn = std::function<ServiceForest(const Problem&)>;

struct OnlineConfig {
  int requests = 30;
  int min_destinations = 13, max_destinations = 17;  // SoftLayer defaults
  int min_sources = 8, max_sources = 12;
  int chain_length = 3;
  int vms_per_dc = 5;          // "each data center has 5 VMs"
  double demand_mbps = 5.0;    // per-destination-stream demand
  double link_capacity = 100.0;
  double host_capacity = 5.0;  // VNF slots per DC host
  double setup_scale = 3.0;
  std::uint64_t seed = 11;
  /// Request lifetime in arrivals: > 0 means the request admitted at
  /// arrival r departs before arrival r + holding_arrivals, returning its
  /// bandwidth and VNF charges to the ledger — so the next price refresh
  /// mutates the persistent Problem with cost-RESTORE deltas, exactly the
  /// shape the session's incremental repair consumes.  0 (the default, and
  /// the paper's Fig. 12 setting) means requests never depart.
  int holding_arrivals = 0;
  /// Differential-testing reference mode: hand every embedder a fresh
  /// Problem copy per arrival instead of the persistent instance.  Output
  /// must be bit-identical either way (tested) — the persistent path
  /// differs only in what the session caches can reuse, never in values.
  bool copy_problems = false;
  /// Price-refresh granularity (DESIGN.md §10): link and VM prices refresh
  /// from the ledger once per epoch of this many arrivals, and every
  /// arrival of an epoch is priced against that one immutable snapshot
  /// (commits still apply in arrival order).  1 — the default, and the
  /// paper's Fig. 12 setting — refreshes per arrival, reproducing the
  /// historical loop bit for bit.  Values > 1 define the semantics the
  /// epoch-pipelined `online::Pipeline` parallelizes: the sequential
  /// driver at epoch_size S is the determinism reference the pipeline must
  /// match at every worker count.
  int epoch_size = 1;
  /// Optional failure drill (DESIGN.md §12): scripted link/node/DC failures
  /// and heals, realized as +inf / cost-restore delta batches at epoch
  /// opens, with budget-bounded recovery of every embedding a failure
  /// breaks.  Non-owning — the plan must outlive the run; nullptr (the
  /// default) streams without a drill.  Both drivers validate the plan at
  /// construction (resilience::validate throws std::invalid_argument).
  const resilience::FailurePlan* failures = nullptr;
  /// Migration budget the recovery engine works under (ignored when
  /// `failures` is null).  See resilience::RecoveryBudget.
  resilience::RecoveryBudget recovery;
  /// Recurring-source mode (DESIGN.md §13): when > 0, every request draws
  /// its sources from ONE pool of this many access nodes, sampled up front
  /// from the same RNG stream, instead of from the whole topology — the
  /// steady-state workload where a session's LRU row-retention window pays
  /// off, because yesterday's source hubs keep coming back.  Must be 0
  /// (off, the paper's Fig. 12 setting — the request sequence is then
  /// byte-identical to pre-pool builds) or >= max_sources.
  int source_pool = 0;
  /// Skew of the recurring-source draw: pool member at popularity rank r
  /// (0-based) is picked with weight 1 / (r + 1)^source_alpha, without
  /// replacement per request (Zipf-like; 0 = uniform over the pool).
  /// Ignored when source_pool == 0.
  double source_alpha = 1.0;
  /// Admission-control policy spec (DESIGN.md §14), e.g. "greedy",
  /// "threshold-price,theta=1.5", "reject-costliest,budget=250" — see
  /// online::make_admission_policy for the full grammar (an "admission/"
  /// prefix is accepted).  Empty (the default) is the paper's setting:
  /// every feasible arrival is embedded and capacity only shapes prices
  /// (the SOFT regime).  Non-empty switches the ledger to the ENFORCED
  /// regime: link/host capacities become hard constraints, the policy
  /// declares per-epoch admission intent, and the stream's commit gate
  /// rejects any arrival that the policy declines or that no longer fits —
  /// a rejected arrival charges nothing and costs nothing.  Malformed
  /// specs throw std::invalid_argument from online::validate (both
  /// drivers).
  std::string admission;
};

struct OnlineResult {
  std::string algorithm;
  std::vector<Cost> accumulative_cost;  // after each arrival
  std::vector<Cost> per_request_cost;
  /// Per-arrival embed wall time (the solve alone — queue wait and commit
  /// bookkeeping excluded), so throughput panels are self-describing.
  std::vector<double> arrival_seconds;
  int infeasible_requests = 0;
  /// Links loaded beyond capacity at the end of the stream.  Mode matters
  /// (DESIGN.md §14): with OnlineConfig::admission EMPTY the ledger is
  /// SOFT — Fortz-Thorup prices discourage congestion but nothing forbids
  /// it, so this count is the scenario's congestion statistic.  With a
  /// policy set the ledger is ENFORCED and this is provably zero: every
  /// admission passes LoadLedger::can_admit before charging, and
  /// departures/rejections only subtract (asserted in test_admission's
  /// fuzz suite and by the stream itself in debug builds).
  std::size_t overloaded_links = 0;
  int workers = 1;     // echo: pricing workers (1 = the sequential driver)
  int epoch_size = 1;  // echo: OnlineConfig::epoch_size
  // Pipeline-only diagnostics.  Timing-dependent — two runs of the same
  // scenario may split speculation differently — so they are excluded from
  // every determinism comparison; the cost series above never varies.
  int stale_repriced = 0;       // speculative results discarded and re-solved
  int speculative_commits = 0;  // speculative results that validated as fresh
  double publish_seconds = 0.0; // commit-thread wall spent publishing epochs
  /// Publisher-session steady-state tallies (DESIGN.md §13), summed over
  /// every epoch publish: warm-row hits, rows retained/evicted by the
  /// LRU window, and the peak closure slab footprint.  Zero for the
  /// sequential driver (its per-solve tallies live on the solver's
  /// ReportAccumulator) and for solver families without epoch closures.
  std::size_t closure_row_hits = 0;
  std::size_t closure_rows_retained = 0;
  std::size_t closure_rows_evicted = 0;
  std::size_t peak_closure_bytes = 0;
  /// Admission series (DESIGN.md §14), deterministic and compared bitwise
  /// between the two drivers.  `accepted[r]` is 1 iff arrival r was
  /// embedded AND admitted (with no policy configured that is simply "the
  /// solver found an embedding"); `decision_utilization[r]` is the maximum
  /// physical-link utilization at the moment arrival r's admission decision
  /// took effect (after the departures due at r released, before r's own
  /// charge).  `rejected_requests` counts policy/capacity rejections only —
  /// infeasible arrivals stay in `infeasible_requests` — and
  /// `rejected_demand_mbps` totals the demand those rejections turned away
  /// (|destinations| x demand_mbps each).
  std::vector<std::uint8_t> accepted;
  std::vector<double> decision_utilization;
  int rejected_requests = 0;
  double rejected_demand_mbps = 0.0;
  double accept_rate = 0.0;  // accepted / requests
  /// End-of-stream ledger utilization (max and mean over links / hosts).
  double max_link_utilization = 0.0;
  double mean_link_utilization = 0.0;
  double max_host_utilization = 0.0;
  double mean_host_utilization = 0.0;
  /// Failure drill only: one entry per (failure epoch, affected request),
  /// in recovery order.  RecoveryReport::seconds is wall time (excluded
  /// from determinism comparisons, like arrival_seconds); every other
  /// field is deterministic in (topology, config, plan, budget).
  std::vector<resilience::RecoveryReport> recoveries;
};

/// Runs the request sequence against one algorithm.  The identical sequence
/// is regenerated from cfg.seed for every algorithm, so series are paired.
///
/// Persistent-Problem contract (DESIGN.md §8): the simulator builds ONE
/// Problem — topology + VM taps — up front and mutates it in place per
/// arrival (sources/destinations reassigned, only the link prices that
/// actually moved rewritten via set_edge_cost, VM setup costs refreshed).
/// No per-arrival copy exists, so the network keeps its CSR cache across
/// arrivals and a solver session sees a cost-only delta between
/// consecutive solves — which its ClosureSession detects and repairs
/// instead of rebuilding.  Embedders receive the instance by const
/// reference, may keep no pointers past the call, and the values they see
/// are identical to the historical copy-per-arrival driver's
/// (cfg.copy_problems restores that driver for differential tests).
OnlineResult simulate(const topology::Topology& topo, const OnlineConfig& cfg,
                      const std::string& algo_name, const EmbedFn& embed);

/// Runs the request sequence against a persistent solver session (the api
/// layer).  With the persistent Problem above, consecutive arrivals differ
/// by link-price deltas plus the sampled source hubs, so an incremental
/// session (SolverOptions::incremental) repairs its hub trees per arrival
/// and builds only the new source roots — arrival cost scales with the
/// size of the price change, not the graph.  The cost series is
/// bit-identical to embedding each arrival with the equivalent free
/// function (tested).  Attach a ReportAccumulator via
/// Solver::set_report_sink to collect per-arrival phase timings.
OnlineResult simulate(const topology::Topology& topo, const OnlineConfig& cfg,
                      api::Solver& solver);

}  // namespace sofe::online
