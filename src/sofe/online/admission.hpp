#pragma once
// Capacity-constrained admission control (DESIGN.md §14).
//
// In the paper's Fig. 12 scenario every arrival is embedded no matter how
// loaded the network is; the online-admission literature (Lukovszki &
// Schmid, PAPERS.md) studies the finite-capacity regime where requests may
// be REJECTED instead.  An AdmissionPolicy turns that regime into a
// first-class scenario: per epoch batch it looks at each arrival's
// embedding (priced at the epoch's frozen snapshot) and declares an
// admission INTENT.  Intent is advisory — the arrival stream applies the
// universal capacity gate afterwards, in arrival order, so an arrival is
// admitted iff the policy wants it AND it still fits the ledger's hard
// link/host capacities at its commit slot (LoadLedger::can_admit).  The
// split keeps the over-capacity proof out of policy code entirely: no
// policy, however wrong, can overload an enforced ledger.
//
// Policies are pure functions of the candidate batch (no ledger access, no
// internal state across epochs), which is what makes the sequential driver
// and the epoch-pipelined service bitwise identical at every epoch size and
// worker count: everything admission-related runs inside the shared
// ArrivalStream commit path.
//
// Declared here in the online layer, implemented in src/sofe/api/
// admission.cpp — the same split as online::Pipeline, so the online layer's
// headers never include api ones.

#include <memory>
#include <string_view>
#include <vector>

#include "sofe/graph/graph.hpp"

namespace sofe::online {

/// One arrival of the epoch batch, as the policy sees it.  Costs are at the
/// epoch's frozen snapshot prices; an infeasible arrival (the solver found
/// no embedding) carries `feasible == false` and infinite costs, and no
/// policy may intend to admit it.
struct AdmissionCandidate {
  int slot = 0;                  ///< arrival index in the stream
  bool feasible = false;         ///< the solver produced an embedding
  graph::Cost marginal_cost = 0.0;     ///< embedding cost at snapshot prices
  graph::Cost uncongested_cost = 0.0;  ///< same embedding at zero-load prices
};

/// The policy contract (DESIGN.md §14): fill `intent` with one entry per
/// candidate — nonzero to request admission.  Must be deterministic in the
/// batch alone; called once per epoch on the commit thread.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual std::string_view name() const noexcept = 0;
  virtual void decide(const std::vector<AdmissionCandidate>& batch,
                      std::vector<char>& intent) const = 0;
};

/// Builds a policy from its option string (the SolverRegistry's strict
/// parse conventions — see "dist/k=<k>"):
///   "greedy"                         admit every feasible arrival
///   "threshold-price[,theta=<f>]"    reject when marginal cost exceeds
///                                    theta x the uncongested cost
///                                    (default theta 2.0)
///   "reject-costliest[,budget=<f>]"  rank the epoch batch by marginal cost
///                                    (ties by slot) and admit cheapest-
///                                    first while the batch's admitted cost
///                                    stays within the per-epoch budget
///                                    (default: unbounded)
/// An optional "admission/" prefix is accepted on any spec.  Unknown
/// policies, unknown or duplicate keys, malformed or trailing-junk numbers
/// and negative theta/budget all throw std::invalid_argument naming the
/// offending field.
std::unique_ptr<AdmissionPolicy> make_admission_policy(std::string_view spec);

}  // namespace sofe::online
