#include "sofe/online/stream.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace sofe::online {

using costmodel::LoadLedger;
using graph::EdgeId;
using graph::NodeId;

void validate(const OnlineConfig& cfg) {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("OnlineConfig: " + what);
  };
  if (cfg.requests <= 0) {
    fail("requests must be > 0 (got " + std::to_string(cfg.requests) + ")");
  }
  if (cfg.min_destinations < 1 || cfg.min_destinations > cfg.max_destinations) {
    fail("destination range requires 1 <= min_destinations <= max_destinations (got [" +
         std::to_string(cfg.min_destinations) + ", " + std::to_string(cfg.max_destinations) + "])");
  }
  if (cfg.min_sources < 1 || cfg.min_sources > cfg.max_sources) {
    fail("source range requires 1 <= min_sources <= max_sources (got [" +
         std::to_string(cfg.min_sources) + ", " + std::to_string(cfg.max_sources) + "])");
  }
  if (cfg.chain_length < 0) {
    fail("chain_length must be >= 0 (got " + std::to_string(cfg.chain_length) + ")");
  }
  if (cfg.vms_per_dc < 0) {
    fail("vms_per_dc must be >= 0 (got " + std::to_string(cfg.vms_per_dc) + ")");
  }
  if (cfg.demand_mbps < 0.0) fail("demand_mbps must be >= 0");
  if (cfg.link_capacity <= 0.0) fail("link_capacity must be > 0");
  if (cfg.host_capacity <= 0.0) fail("host_capacity must be > 0");
  if (cfg.setup_scale < 0.0) fail("setup_scale must be >= 0");
  if (cfg.holding_arrivals < 0) {
    fail("holding_arrivals must be >= 0 (got " + std::to_string(cfg.holding_arrivals) + ")");
  }
  if (cfg.epoch_size < 1) {
    fail("epoch_size must be >= 1 (got " + std::to_string(cfg.epoch_size) + ")");
  }
}

ArrivalStream::ArrivalStream(const topology::Topology& topo, const OnlineConfig& cfg)
    : cfg_(cfg),
      ledger_(static_cast<std::size_t>(topo.g.edge_count()), cfg.link_capacity,
              topo.dc_nodes.size(), cfg.host_capacity) {
  validate(cfg);

  // ONE persistent Problem for the whole stream (see simulator.hpp):
  // topology + VM nodes (vms_per_dc per DC), as in the paper's online
  // setup.  VM i is hosted on DC host i / vms_per_dc.  Per arrival only
  // sources/destinations and the prices that actually moved are mutated,
  // so the CSR cache refreshes costs in place and solver sessions see
  // cost-only deltas.
  master_.network = topo.g;
  master_.chain_length = cfg.chain_length;
  n_access_ = topo.g.node_count();
  n_physical_ = topo.g.edge_count();
  master_.node_cost.assign(static_cast<std::size_t>(n_access_), 0.0);
  master_.is_vm.assign(static_cast<std::size_t>(n_access_), 0);
  for (std::size_t h = 0; h < topo.dc_nodes.size(); ++h) {
    for (int i = 0; i < cfg.vms_per_dc; ++i) {
      const NodeId vm = master_.network.add_node();
      master_.network.add_edge(vm, topo.dc_nodes[h], 0.0);
      master_.node_cost.push_back(0.0);
      master_.is_vm.push_back(1);
      vm_host_.push_back(h);
    }
  }

  // Pre-sample the whole arrival sequence.  The draw order per request —
  // destination count, source count, destination pick, source pick — is
  // exactly the historical per-arrival sampler's, and the RNG stream never
  // observed solver output, so pulling the loop out of the drivers changes
  // nothing (pinned by the bit-identity tests).  Sources and destinations
  // are drawn independently (a node may play both roles — the paper's
  // SoftLayer setting of up to 17 destinations plus 12 sources does not fit
  // 27 nodes otherwise).
  util::Rng rng(cfg.seed ^ 0x0427);
  requests_.reserve(static_cast<std::size_t>(cfg.requests));
  for (int r = 0; r < cfg.requests; ++r) {
    const int n_dst = rng.uniform_int(cfg.min_destinations, cfg.max_destinations);
    const int n_src = rng.uniform_int(cfg.min_sources, cfg.max_sources);
    const auto dst_pick = rng.sample_without_replacement(
        static_cast<std::size_t>(n_access_),
        static_cast<std::size_t>(std::min(n_dst, static_cast<int>(n_access_))));
    const auto src_pick = rng.sample_without_replacement(
        static_cast<std::size_t>(n_access_),
        static_cast<std::size_t>(std::min(n_src, static_cast<int>(n_access_))));
    Request req;
    req.sources.assign(src_pick.begin(), src_pick.end());
    req.destinations.assign(dst_pick.begin(), dst_pick.end());
    requests_.push_back(std::move(req));
  }

  charges_.resize(static_cast<std::size_t>(cfg.requests));
}

void ArrivalStream::release(int admitted_slot) {
  Charges& old = charges_[static_cast<std::size_t>(admitted_slot)];
  for (EdgeId e : old.links) ledger_.remove_link_load(e, cfg_.demand_mbps);
  for (std::size_t h : old.hosts) ledger_.remove_host_load(h, 1.0);
  old = Charges{};
}

int ArrivalStream::open_epoch(int first, std::vector<graph::EdgeCostDelta>* moved,
                              bool* node_costs_moved) {
  assert(first >= 0 && first < cfg_.requests);
  epoch_first_ = first;
  const int count = std::min(cfg_.epoch_size, cfg_.requests - first);

  // Departures due inside this epoch whose admission predates it release
  // now, before the single refresh — each contributes its cost-restore
  // deltas to the epoch batch.  A departure whose admission also falls
  // inside the epoch releases at its due slot's commit() instead; ledger
  // charges commute, so the NEXT epoch's snapshot is identical to the
  // sequential interleaving, and at epoch_size 1 this block is exactly the
  // historical release-then-refresh order.
  if (cfg_.holding_arrivals > 0) {
    for (int due = first; due < first + count; ++due) {
      const int admitted = due - cfg_.holding_arrivals;
      if (admitted >= 0 && admitted < first) release(admitted);
    }
  }

  // One price refresh for the whole epoch, writing only real changes (an
  // untouched link keeps its cost, its CSR entry and its place outside the
  // delta batch).
  if (moved != nullptr) moved->clear();
  bool node_moved = false;
  for (EdgeId e = 0; e < n_physical_; ++e) {
    const Cost price = ledger_.link_price(e, cfg_.demand_mbps);
    const Cost old = master_.network.edge(e).cost;
    if (old != price) {
      master_.network.set_edge_cost(e, price);
      if (moved != nullptr) moved->push_back({e, old, price});
    }
  }
  for (std::size_t i = 0; i < vm_host_.size(); ++i) {
    const Cost price = cfg_.setup_scale * ledger_.host_price(vm_host_[i]);
    Cost& slot = master_.node_cost[static_cast<std::size_t>(n_access_) + i];
    if (slot != price) {
      slot = price;
      node_moved = true;
    }
  }
  if (node_costs_moved != nullptr) *node_costs_moved = node_moved;
  return count;
}

const core::Problem& ArrivalStream::stage(int r) {
  const Request& req = request(r);
  master_.sources = req.sources;
  master_.destinations = req.destinations;
  return master_;
}

core::Cost ArrivalStream::commit(int r, const core::ServiceForest& forest) {
  assert(r >= epoch_first_ && r < epoch_first_ + cfg_.epoch_size);

  // The intra-epoch departure: admitted after this epoch opened, due now.
  if (cfg_.holding_arrivals > 0) {
    const int admitted = r - cfg_.holding_arrivals;
    if (admitted >= epoch_first_) release(admitted);
  }

  if (forest.empty()) return 0.0;
  const Cost cost = core::total_cost(master_, forest);

  // Charge the ledger: one stream copy per distinct (stage, link) use, one
  // VNF slot per enabled VM.  total_cost above reads only network costs
  // and node_cost — never the ledger — so the epoch snapshot stays frozen
  // while its arrivals commit.
  Charges& mine = charges_[static_cast<std::size_t>(r)];
  for (const auto& se : forest.stage_edges()) {
    const EdgeId e = master_.network.find_edge(se.u, se.v);
    if (e < n_physical_) {  // physical links only (VM taps are free)
      ledger_.add_link_load(e, cfg_.demand_mbps);
      if (cfg_.holding_arrivals > 0) mine.links.push_back(e);
    }
  }
  for (const auto& [vm, idx] : forest.enabled_vms()) {
    (void)idx;
    if (vm >= n_access_) {
      const std::size_t host = vm_host_[static_cast<std::size_t>(vm - n_access_)];
      ledger_.add_host_load(host, 1.0);
      if (cfg_.holding_arrivals > 0) mine.hosts.push_back(host);
    }
  }
  return cost;
}

std::size_t ArrivalStream::overloaded_links() const { return ledger_.overloaded_links(); }

}  // namespace sofe::online
