#include "sofe/online/stream.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "sofe/util/stopwatch.hpp"

namespace sofe::online {

using costmodel::LoadLedger;
using graph::EdgeId;
using graph::NodeId;

void validate(const OnlineConfig& cfg) {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("OnlineConfig: " + what);
  };
  if (cfg.requests <= 0) {
    fail("requests must be > 0 (got " + std::to_string(cfg.requests) + ")");
  }
  if (cfg.min_destinations < 1 || cfg.min_destinations > cfg.max_destinations) {
    fail("destination range requires 1 <= min_destinations <= max_destinations (got [" +
         std::to_string(cfg.min_destinations) + ", " + std::to_string(cfg.max_destinations) + "])");
  }
  if (cfg.min_sources < 1 || cfg.min_sources > cfg.max_sources) {
    fail("source range requires 1 <= min_sources <= max_sources (got [" +
         std::to_string(cfg.min_sources) + ", " + std::to_string(cfg.max_sources) + "])");
  }
  if (cfg.chain_length < 0) {
    fail("chain_length must be >= 0 (got " + std::to_string(cfg.chain_length) + ")");
  }
  if (cfg.vms_per_dc < 0) {
    fail("vms_per_dc must be >= 0 (got " + std::to_string(cfg.vms_per_dc) + ")");
  }
  if (cfg.demand_mbps < 0.0) fail("demand_mbps must be >= 0");
  if (cfg.link_capacity <= 0.0) fail("link_capacity must be > 0");
  if (cfg.host_capacity <= 0.0) fail("host_capacity must be > 0");
  if (cfg.setup_scale < 0.0) fail("setup_scale must be >= 0");
  if (cfg.holding_arrivals < 0) {
    fail("holding_arrivals must be >= 0 (got " + std::to_string(cfg.holding_arrivals) + ")");
  }
  if (cfg.epoch_size < 1) {
    fail("epoch_size must be >= 1 (got " + std::to_string(cfg.epoch_size) + ")");
  }
  if (cfg.recovery.migration_cost_weight < 0.0) {
    fail("recovery.migration_cost_weight must be >= 0 (got " +
         std::to_string(cfg.recovery.migration_cost_weight) + ")");
  }
  if (cfg.source_pool != 0 && cfg.source_pool < cfg.max_sources) {
    fail("source_pool must be 0 (off) or >= max_sources (got " +
         std::to_string(cfg.source_pool) + " with max_sources " +
         std::to_string(cfg.max_sources) + ")");
  }
  if (cfg.source_alpha < 0.0) {
    fail("source_alpha must be >= 0 (got " + std::to_string(cfg.source_alpha) + ")");
  }
  if (!cfg.admission.empty()) {
    // Parse for effect: a malformed policy spec throws std::invalid_argument
    // naming the offending field, from BOTH drivers (each constructs an
    // ArrivalStream, which validates first).
    (void)make_admission_policy(cfg.admission);
  }
}

ArrivalStream::ArrivalStream(const topology::Topology& topo, const OnlineConfig& cfg)
    : cfg_(cfg),
      ledger_(static_cast<std::size_t>(topo.g.edge_count()), cfg.link_capacity,
              topo.dc_nodes.size(), cfg.host_capacity,
              /*enforce_capacity=*/!cfg.admission.empty()) {
  validate(cfg);
  if (!cfg.admission.empty()) policy_ = make_admission_policy(cfg.admission);

  // ONE persistent Problem for the whole stream (see simulator.hpp):
  // topology + VM nodes (vms_per_dc per DC), as in the paper's online
  // setup.  VM i is hosted on DC host i / vms_per_dc.  Per arrival only
  // sources/destinations and the prices that actually moved are mutated,
  // so the CSR cache refreshes costs in place and solver sessions see
  // cost-only deltas.
  master_.network = topo.g;
  master_.chain_length = cfg.chain_length;
  n_access_ = topo.g.node_count();
  n_physical_ = topo.g.edge_count();
  master_.node_cost.assign(static_cast<std::size_t>(n_access_), 0.0);
  master_.is_vm.assign(static_cast<std::size_t>(n_access_), 0);
  for (std::size_t h = 0; h < topo.dc_nodes.size(); ++h) {
    for (int i = 0; i < cfg.vms_per_dc; ++i) {
      const NodeId vm = master_.network.add_node();
      master_.network.add_edge(vm, topo.dc_nodes[h], 0.0);
      master_.node_cost.push_back(0.0);
      master_.is_vm.push_back(1);
      vm_host_.push_back(h);
    }
  }

  // Pre-sample the whole arrival sequence.  The draw order per request —
  // destination count, source count, destination pick, source pick — is
  // exactly the historical per-arrival sampler's, and the RNG stream never
  // observed solver output, so pulling the loop out of the drivers changes
  // nothing (pinned by the bit-identity tests).  Sources and destinations
  // are drawn independently (a node may play both roles — the paper's
  // SoftLayer setting of up to 17 destinations plus 12 sources does not fit
  // 27 nodes otherwise).
  util::Rng rng(cfg.seed ^ 0x0427);

  // Recurring-source mode (DESIGN.md §13): one source pool for the whole
  // stream, drawn before any request so the off path (source_pool == 0)
  // consumes the RNG stream exactly as pre-pool builds did — the sampled
  // sequence is then byte-identical (pinned by tests).  Pool member at
  // popularity rank r carries Zipf-like weight 1/(r+1)^alpha; `cum` holds
  // the cumulative weights the per-request inverse-CDF draw searches.
  std::vector<NodeId> pool;
  std::vector<double> cum;
  if (cfg.source_pool > 0) {
    const auto pick = rng.sample_without_replacement(
        static_cast<std::size_t>(n_access_),
        static_cast<std::size_t>(std::min(cfg.source_pool, static_cast<int>(n_access_))));
    pool.assign(pick.begin(), pick.end());
    cum.reserve(pool.size());
    double total = 0.0;
    for (std::size_t rank = 0; rank < pool.size(); ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank + 1), cfg.source_alpha);
      cum.push_back(total);
    }
  }

  requests_.reserve(static_cast<std::size_t>(cfg.requests));
  std::vector<char> used(pool.size(), 0);
  for (int r = 0; r < cfg.requests; ++r) {
    const int n_dst = rng.uniform_int(cfg.min_destinations, cfg.max_destinations);
    const int n_src = rng.uniform_int(cfg.min_sources, cfg.max_sources);
    const auto dst_pick = rng.sample_without_replacement(
        static_cast<std::size_t>(n_access_),
        static_cast<std::size_t>(std::min(n_dst, static_cast<int>(n_access_))));
    Request req;
    req.destinations.assign(dst_pick.begin(), dst_pick.end());
    if (pool.empty()) {
      const auto src_pick = rng.sample_without_replacement(
          static_cast<std::size_t>(n_access_),
          static_cast<std::size_t>(std::min(n_src, static_cast<int>(n_access_))));
      req.sources.assign(src_pick.begin(), src_pick.end());
    } else {
      // Inverse-CDF draw without replacement: land on a rank via the
      // cumulative weights, and on a duplicate scan forward (wrapping) to
      // the next untaken rank — deterministic in the RNG stream, and every
      // draw terminates because want <= pool size.
      const std::size_t want = static_cast<std::size_t>(
          std::min(n_src, static_cast<int>(pool.size())));
      std::fill(used.begin(), used.end(), 0);
      req.sources.reserve(want);
      while (req.sources.size() < want) {
        const double u = rng.uniform(0.0, cum.back());
        std::size_t i = static_cast<std::size_t>(
            std::upper_bound(cum.begin(), cum.end(), u) - cum.begin());
        if (i >= pool.size()) i = pool.size() - 1;
        while (used[i] != 0) i = (i + 1) % pool.size();
        used[i] = 1;
        req.sources.push_back(pool[i]);
      }
    }
    requests_.push_back(std::move(req));
  }

  charges_.resize(static_cast<std::size_t>(cfg.requests));

  // Compile the failure drill (DESIGN.md §12) into a time-sorted toggle
  // schedule.  Both drivers construct an ArrivalStream, so a degenerate
  // plan throws from online::simulate and online::Pipeline alike.
  if (cfg.failures != nullptr) {
    resilience::validate(*cfg.failures, topo);
    has_failures_ = !cfg.failures->empty();
    for (const resilience::FailureEvent& ev : cfg.failures->events) {
      std::vector<EdgeId> edges = resilience::affected_links(ev, topo);
      toggles_.push_back({ev.fail_at, true, edges});
      if (ev.heal_at >= 0) toggles_.push_back({ev.heal_at, false, std::move(edges)});
    }
    // Stable: simultaneous toggles fire in plan order, so "A fails, B
    // heals at the same arrival" is well defined (and per-link counts
    // make the outcome order-independent anyway).
    std::stable_sort(toggles_.begin(), toggles_.end(),
                     [](const Toggle& a, const Toggle& b) { return a.at < b.at; });
    fail_count_.assign(static_cast<std::size_t>(n_physical_), 0);
    admitted_.resize(static_cast<std::size_t>(cfg.requests));
  }
  // Admission also tracks charges: the capacity gate needs each live
  // embedding's exact charge lists for recovery re-fits and the decision-
  // log replay seam (test_admission).
  track_charges_ = cfg.holding_arrivals > 0 || has_failures_ || policy_ != nullptr;
}

void ArrivalStream::release(int admitted_slot) {
  Charges& old = charges_[static_cast<std::size_t>(admitted_slot)];
  for (EdgeId e : old.links) ledger_.remove_link_load(e, cfg_.demand_mbps);
  for (std::size_t h : old.hosts) ledger_.remove_host_load(h, 1.0);
  old = Charges{};
  if (has_failures_) admitted_[static_cast<std::size_t>(admitted_slot)] = core::ServiceForest{};
}

int ArrivalStream::open_epoch(int first, std::vector<graph::EdgeCostDelta>* moved,
                              bool* node_costs_moved) {
  assert(first >= 0 && first < cfg_.requests);
  epoch_first_ = first;
  const int count = std::min(cfg_.epoch_size, cfg_.requests - first);

  // Departures due inside this epoch whose admission predates it release
  // now, before the single refresh — each contributes its cost-restore
  // deltas to the epoch batch.  A departure whose admission also falls
  // inside the epoch releases at its due slot's commit() instead; ledger
  // charges commute, so the NEXT epoch's snapshot is identical to the
  // sequential interleaving, and at epoch_size 1 this block is exactly the
  // historical release-then-refresh order.
  if (cfg_.holding_arrivals > 0) {
    for (int due = first; due < first + count; ++due) {
      const int admitted = due - cfg_.holding_arrivals;
      if (admitted >= 0 && admitted < first) release(admitted);
    }
  }

  // Failure toggles due in this epoch fire now, BEFORE the refresh, so the
  // single price pass below realizes them as ordinary cost deltas: a
  // failing link refreshes to kInfiniteCost, a healing one back to its
  // ledger price.  Per-link fail counts make overlapping events compose; a
  // link is "newly failed" only on its 0 -> 1 transition — the trigger for
  // the recovery pass after the refresh.
  std::vector<EdgeId> newly_failed;
  while (next_toggle_ < toggles_.size() && toggles_[next_toggle_].at < first + count) {
    const Toggle& t = toggles_[next_toggle_++];
    for (const EdgeId e : t.edges) {
      int& fails = fail_count_[static_cast<std::size_t>(e)];
      if (t.fail) {
        if (fails++ == 0) newly_failed.push_back(e);
      } else {
        assert(fails > 0 && "heal toggle without its matching failure");
        --fails;
      }
    }
  }
  std::sort(newly_failed.begin(), newly_failed.end());
  newly_failed.erase(std::unique(newly_failed.begin(), newly_failed.end()),
                     newly_failed.end());

  // One price refresh for the whole epoch, writing only real changes (an
  // untouched link keeps its cost, its CSR entry and its place outside the
  // delta batch).
  if (moved != nullptr) moved->clear();
  bool node_moved = false;
  for (EdgeId e = 0; e < n_physical_; ++e) {
    const Cost price = (has_failures_ && fail_count_[static_cast<std::size_t>(e)] > 0)
                           ? graph::kInfiniteCost
                           : ledger_.link_price(e, cfg_.demand_mbps);
    const Cost old = master_.network.edge(e).cost;
    if (old != price) {
      master_.network.set_edge_cost(e, price);
      if (moved != nullptr) moved->push_back({e, old, price});
    }
  }
  for (std::size_t i = 0; i < vm_host_.size(); ++i) {
    const Cost price = cfg_.setup_scale * ledger_.host_price(vm_host_[i]);
    Cost& slot = master_.node_cost[static_cast<std::size_t>(n_access_) + i];
    if (slot != price) {
      slot = price;
      node_moved = true;
    }
  }
  if (node_costs_moved != nullptr) *node_costs_moved = node_moved;

  // Recover every live embedding the failure batch broke, still inside the
  // epoch open — in the pipeline this runs on the commit thread while all
  // workers are parked, so the drill is deterministic at any worker count.
  if (!newly_failed.empty()) recover_affected(newly_failed);
  return count;
}

void ArrivalStream::recover_affected(const std::vector<EdgeId>& newly_failed) {
  assert(recovery_embed_ && "set_recovery_embedder before the first epoch of a drill");
  const auto hits = [&](const Charges& c) {
    for (const EdgeId e : c.links) {
      if (std::binary_search(newly_failed.begin(), newly_failed.end(), e)) return true;
    }
    return false;
  };
  // Ascending slot order; the master's prices are frozen at the snapshot
  // just refreshed, and recover_request reads prices only from the master
  // (never the ledger), so the release/recharge sequence below cannot feed
  // back into this epoch — only into the NEXT refresh, which sees the net
  // post-recovery loads.
  for (int r = 0; r < epoch_first_; ++r) {
    core::ServiceForest& live = admitted_[static_cast<std::size_t>(r)];
    if (live.empty() || !hits(charges_[static_cast<std::size_t>(r)])) continue;
    const util::Stopwatch watch;
    const core::ServiceForest broken = std::move(live);
    release(r);  // return the broken embedding's charges; recharge below
    stage(r);    // master_ now carries this request at the epoch snapshot
    resilience::RecoveryOutcome out =
        resilience::recover_request(master_, broken, cfg_.recovery, recovery_embed_);

    // Recovery under capacity pressure (DESIGN.md §14): in enforced mode
    // the chosen recovery must still FIT — its charges were released above,
    // but other requests may have claimed the headroom since admission.  A
    // recovery that no longer fits drops the whole request: its users are
    // lost, nothing is recharged, and the freed capacity stays free.
    bool capacity_dropped = false;
    if (policy_ != nullptr && !out.forest.empty()) {
      std::vector<EdgeId> links;
      std::vector<std::size_t> hosts;
      collect_charges(out.forest, &links, &hosts);
      if (!ledger_.can_admit(links, cfg_.demand_mbps, hosts, 1.0)) {
        capacity_dropped = true;
        out.dropped_users += static_cast<int>(out.forest.walks.size());
        out.forest = core::ServiceForest{};
        out.chosen_cost = 0.0;
      }
    }
    charge(r, out.forest);

    resilience::RecoveryReport rep;
    rep.epoch_first = epoch_first_;
    rep.slot = r;
    rep.rerouted_segments = out.rerouted_segments;
    rep.moved_users = out.moved_users;
    rep.dropped_users = out.dropped_users;
    rep.escalated = out.escalated;
    rep.capacity_dropped = capacity_dropped;
    rep.repaired_cost = out.repaired_cost;
    rep.scratch_cost = out.scratch_cost;
    rep.chosen_cost = out.chosen_cost;
    rep.seconds = watch.seconds();
    recoveries_.push_back(rep);
  }
}

const core::Problem& ArrivalStream::stage(int r) {
  const Request& req = request(r);
  master_.sources = req.sources;
  master_.destinations = req.destinations;
  return master_;
}

std::vector<SlotOutcome> ArrivalStream::commit_epoch(
    int first, const std::vector<core::ServiceForest>& forests) {
  assert(first == epoch_first_ && "commit_epoch must match the open epoch");
  const int count = static_cast<int>(forests.size());
  assert(count == std::min(cfg_.epoch_size, cfg_.requests - first) &&
         "one forest per slot of the open epoch");

  // Phase A — price the whole batch at the frozen snapshot.  total_cost
  // reads only the master's costs (never the ledger), so computing every
  // slot's cost before any ledger mutation is bitwise the historical
  // solve-then-commit interleaving; each slot is re-staged because the
  // master currently carries the LAST staged request.  The candidate batch
  // is what a policy ranks (reject-costliest needs the whole epoch at
  // once — the reason commit is batched at all).
  batch_.clear();
  if (policy_ != nullptr) {
    for (int i = 0; i < count; ++i) {
      AdmissionCandidate c;
      c.slot = first + i;
      c.feasible = !forests[static_cast<std::size_t>(i)].empty();
      if (c.feasible) {
        stage(first + i);
        c.marginal_cost = core::total_cost(master_, forests[static_cast<std::size_t>(i)]);
        c.uncongested_cost = uncongested_cost(forests[static_cast<std::size_t>(i)]);
      } else {
        c.marginal_cost = graph::kInfiniteCost;
        c.uncongested_cost = graph::kInfiniteCost;
      }
      batch_.push_back(c);
    }
    policy_->decide(batch_, intent_);
    assert(intent_.size() == batch_.size() && "policy must decide every candidate");
  }

  // Phase B — commit in arrival order.  The ledger evolves slot by slot
  // exactly as the per-slot protocol did: the intra-epoch departure due at
  // a slot releases first, then the slot's own decision applies.  With a
  // policy, admission = policy intent AND the capacity gate — the gate is
  // universal and runs HERE, at the slot's own position in the ledger
  // evolution, which is what makes over-capacity impossible no matter what
  // the policy intended (DESIGN.md §14).
  std::vector<SlotOutcome> outcomes(static_cast<std::size_t>(count));
  std::vector<EdgeId> links;
  std::vector<std::size_t> hosts;
  for (int i = 0; i < count; ++i) {
    const int r = first + i;
    if (cfg_.holding_arrivals > 0) {
      const int admitted = r - cfg_.holding_arrivals;
      if (admitted >= epoch_first_) release(admitted);
    }
    SlotOutcome& out = outcomes[static_cast<std::size_t>(i)];
    out.decision_utilization = ledger_.max_link_utilization();
    const core::ServiceForest& forest = forests[static_cast<std::size_t>(i)];
    if (forest.empty()) {
      out.status = SlotOutcome::Status::kInfeasible;
      continue;
    }
    Cost cost = 0.0;
    if (policy_ != nullptr) {
      cost = batch_[static_cast<std::size_t>(i)].marginal_cost;
      collect_charges(forest, &links, &hosts);
      const bool fits = ledger_.can_admit(links, cfg_.demand_mbps, hosts, 1.0);
      if (intent_[static_cast<std::size_t>(i)] == 0 || !fits) {
        out.status = SlotOutcome::Status::kRejected;
        ++rejected_count_;
        rejected_demand_ +=
            static_cast<double>(request(r).destinations.size()) * cfg_.demand_mbps;
        continue;
      }
    } else {
      stage(r);
      cost = core::total_cost(master_, forest);
    }
    out.status = SlotOutcome::Status::kAdmitted;
    out.cost = cost;
    ++admitted_count_;
    charge(r, forest);
  }
  return outcomes;
}

void ArrivalStream::finish(OnlineResult& result) const {
  result.overloaded_links = ledger_.overloaded_links();
  result.recoveries = recoveries_;
  result.rejected_requests = rejected_count_;
  result.rejected_demand_mbps = rejected_demand_;
  result.accept_rate =
      cfg_.requests > 0
          ? static_cast<double>(admitted_count_) / static_cast<double>(cfg_.requests)
          : 0.0;
  result.max_link_utilization = ledger_.max_link_utilization();
  result.mean_link_utilization = ledger_.mean_link_utilization();
  result.max_host_utilization = ledger_.max_host_utilization();
  result.mean_host_utilization = ledger_.mean_host_utilization();
  // The §14 hard guarantee: an enforced ledger can never end up overloaded.
  assert((policy_ == nullptr || result.overloaded_links == 0) &&
         "enforced-capacity mode leaked past a can_admit gate");
}

void ArrivalStream::charge(int r, const core::ServiceForest& forest) {
  // Charge the ledger: one stream copy per distinct (stage, link) use, one
  // VNF slot per enabled VM.  Commit-path callers computed total_cost
  // first, and it reads only network costs and node_cost — never the
  // ledger — so the epoch snapshot stays frozen while its arrivals commit.
  if (forest.empty()) return;
  Charges& mine = charges_[static_cast<std::size_t>(r)];
  for (const auto& se : forest.stage_edges()) {
    const EdgeId e = master_.network.find_edge(se.u, se.v);
    if (e < n_physical_) {  // physical links only (VM taps are free)
      ledger_.add_link_load(e, cfg_.demand_mbps);
      if (track_charges_) mine.links.push_back(e);
    }
  }
  for (const auto& [vm, idx] : forest.enabled_vms()) {
    (void)idx;
    if (vm >= n_access_) {
      const std::size_t host = vm_host_[static_cast<std::size_t>(vm - n_access_)];
      ledger_.add_host_load(host, 1.0);
      if (track_charges_) mine.hosts.push_back(host);
    }
  }
  if (has_failures_) admitted_[static_cast<std::size_t>(r)] = forest;
}

void ArrivalStream::collect_charges(const core::ServiceForest& forest,
                                    std::vector<EdgeId>* links,
                                    std::vector<std::size_t>* hosts) const {
  // Mirrors charge() exactly — one stream copy per distinct (stage, link)
  // use on a physical link, one VNF slot per enabled VM — with multiplicity
  // preserved, so can_admit aggregates repeats before the boundary check.
  links->clear();
  hosts->clear();
  for (const auto& se : forest.stage_edges()) {
    const EdgeId e = master_.network.find_edge(se.u, se.v);
    if (e < n_physical_) links->push_back(e);
  }
  for (const auto& [vm, idx] : forest.enabled_vms()) {
    (void)idx;
    if (vm >= n_access_) {
      hosts->push_back(vm_host_[static_cast<std::size_t>(vm - n_access_)]);
    }
  }
}

core::Cost ArrivalStream::uncongested_cost(const core::ServiceForest& forest) const {
  // The same embedding priced on an EMPTY network: every physical stage
  // edge at the zero-load Fortz-Thorup price, VM taps free, each enabled
  // VNF at the zero-load setup price.  Structurally total_cost with the
  // ledger at zero — the threshold-price policy's ratio denominator.
  Cost sum = 0.0;
  for (const auto& se : forest.stage_edges()) {
    const EdgeId e = master_.network.find_edge(se.u, se.v);
    if (e < n_physical_) {
      sum += costmodel::fortz_thorup(cfg_.demand_mbps, cfg_.link_capacity);
    }
  }
  for (const auto& [vm, idx] : forest.enabled_vms()) {
    (void)idx;
    if (vm >= n_access_) {
      sum += cfg_.setup_scale * costmodel::fortz_thorup(1.0, cfg_.host_capacity);
    }
  }
  return sum;
}

std::size_t ArrivalStream::overloaded_links() const { return ledger_.overloaded_links(); }

}  // namespace sofe::online
