#pragma once
// Budget-bounded survivable re-embedding (DESIGN.md §12).
//
// When a failure batch drives links to kInfiniteCost, every embedded
// service forest whose charges cross a dead link is broken.  recover_request
// produces the replacement embedding for one such request, composing the
// machinery earlier PRs built for exactly this moment:
//
//   repair    — DynamicForest::reroute_link splices every walk segment that
//               crosses a dead link onto the cheapest surviving path (the
//               §8 engine repairs the forest's cached shortest-path trees
//               in place under the same +inf deltas).  Free: no user moves.
//   re-home   — destinations whose walk has no surviving path (source site
//               died, component split) leave their tree and re-attach via
//               DynamicForest::destination_join, each consuming one unit of
//               the migration budget.
//   escalate  — a from-scratch re-embed of the whole request at the current
//               epoch prices (the scratch embedder — the same solver
//               session that admits arrivals), adopted when the budget or
//               connectivity forces it, or when the budget admits it and
//               the objective cost + migration_cost_weight · moved favors
//               it.  An unbounded budget adopts it outright whenever
//               feasible, making the unbounded drill bitwise the
//               from-scratch reference.
//
// The layer sits between core and online: it consumes Problem/ServiceForest
// and an opaque embed callback, so the online stream can drive it without
// the api layer and the api pipeline can hand it a Solver session.

#include <functional>

#include "sofe/core/chain_walk.hpp"
#include "sofe/core/forest.hpp"
#include "sofe/resilience/failure_plan.hpp"

namespace sofe::resilience {

/// The from-scratch re-embedder: problem in, forest out (empty = infeasible).
/// Mirrors online::EmbedFn; redeclared on core types so resilience never
/// includes the online layer.
using EmbedFn = std::function<core::ServiceForest(const core::Problem&)>;

/// What recover_request decided for one affected request.  Costs are
/// total_cost at the prices of `staged` (the epoch snapshot); +inf marks an
/// infeasible candidate.
struct RecoveryOutcome {
  core::ServiceForest forest;  // the adopted embedding (empty = all lost)
  int rerouted_segments = 0;   // repair-phase splices (free)
  int moved_users = 0;         // re-homed destinations, or all on escalation
  int dropped_users = 0;       // destinations no admissible recovery served
  bool escalated = false;      // the from-scratch candidate was adopted
  Cost repaired_cost = graph::kInfiniteCost;
  Cost scratch_cost = graph::kInfiniteCost;
  Cost chosen_cost = graph::kInfiniteCost;
};

/// Recovers one request.  `staged` is the persistent master Problem at the
/// current epoch snapshot — dead links already at kInfiniteCost, sources and
/// destinations staged to the affected request — and `broken` is the
/// embedding admitted for it.  Deterministic in its arguments (both
/// candidates are always computed, so the quality delta the drill reports
/// never depends on which one wins); `opt` tunes the repair candidate's
/// k-stroll/Steiner choices exactly as core::AlgoOptions does elsewhere.
RecoveryOutcome recover_request(const core::Problem& staged, const core::ServiceForest& broken,
                                const RecoveryBudget& budget, const EmbedFn& scratch,
                                const core::AlgoOptions& opt = {});

}  // namespace sofe::resilience
