#pragma once
// Failure injection for the online layer (DESIGN.md §12).
//
// A FailurePlan scripts link, node and data-center failures (and their
// recoveries) against an arrival stream.  Every event is realized as a
// graph::EdgeCostDelta batch at an epoch boundary: a failure drives the
// affected physical links to kInfiniteCost (the §8 soft disconnect — the
// repair machinery treats infinite arcs as removed without any structural
// mutation), a heal restores the ledger-derived price.  Because the whole
// drill is "just another cost-delta batch", every downstream layer — the
// session closure repair (§8), the pricing-cache invalidation (§9), the
// pipeline's per-epoch replica sync (§10) and the sharded-closure row
// re-exchange (§11) — recovers incrementally instead of rebuilding, and the
// drill is deterministic at every thread and worker count.
//
// The companion RecoveryEngine (recovery.hpp) re-embeds the service forests
// a failure breaks; this header holds only the plan/report value types so
// the online layer can consume them without pulling in the engine.

#include <cstdint>
#include <vector>

#include "sofe/graph/graph.hpp"
#include "sofe/topology/topology.hpp"

namespace sofe::resilience {

using graph::Cost;
using graph::EdgeId;
using graph::NodeId;

/// One scripted failure (and optional recovery).  Indices are arrival
/// indices into the online stream; an event takes effect when the epoch
/// containing that arrival opens — at OnlineConfig::epoch_size 1 that is
/// exactly the named arrival, at S > 1 the event aligns to the epoch
/// boundary (the same boundary at every worker count, which is what keeps
/// the pipelined drill deterministic).
struct FailureEvent {
  enum class Target : std::uint8_t {
    kLink,        // id = EdgeId into the physical topology
    kNode,        // id = NodeId; fails every incident physical link
    kDataCenter,  // id = index into Topology::dc_nodes; node failure of the site
  };
  Target target = Target::kLink;
  std::int32_t id = 0;
  int fail_at = 0;   // arrival index at which the failure takes effect
  int heal_at = -1;  // arrival index of the recovery; negative = never heals
};

/// A scripted drill: any number of events, overlapping allowed (a link
/// failed by two events stays down until both heal — per-link failure
/// counts, so plans compose).
struct FailurePlan {
  std::vector<FailureEvent> events;

  bool empty() const noexcept { return events.empty(); }
};

/// Recovery budget (DESIGN.md §12): how much embedded state one failure
/// event may move.  Re-routing a walk segment around a dead link inside its
/// own tree is repair and always free; *moving a user* means re-homing a
/// destination onto a different attachment (DynamicForest::destination_join)
/// or adopting a from-scratch re-embed (which may move every user of the
/// request).
struct RecoveryBudget {
  /// Max destinations moved per affected request.  0 = repair-only (orphans
  /// the repair cannot save are dropped), negative = unbounded — migration
  /// is declared free and the engine adopts the global from-scratch
  /// re-embed outright whenever it is feasible, which makes the unbounded
  /// drill bitwise the from-scratch reference bench_fig13_failures asserts.
  int max_moved_users = -1;
  /// Folded into the candidate objective as `cost + weight * moved_users`,
  /// so a nonzero weight makes the engine prefer local repair unless the
  /// re-embed's quality gain pays for the churn it causes.
  Cost migration_cost_weight = 0.0;
};

/// One affected request's recovery, reported per (event epoch, request).
/// `seconds` is wall time and — like OnlineResult::arrival_seconds — is
/// excluded from every determinism comparison; all other fields are
/// deterministic in (topology, OnlineConfig, FailurePlan, budget).
struct RecoveryReport {
  int epoch_first = 0;        // first slot of the epoch whose open fired
  int slot = 0;               // the affected request's arrival index
  int rerouted_segments = 0;  // in-tree segment re-routes (free)
  int moved_users = 0;        // destinations re-homed / re-embedded
  int dropped_users = 0;      // destinations no feasible recovery served
  bool escalated = false;     // the from-scratch candidate was adopted
  /// Enforced-capacity mode only (DESIGN.md §14): the chosen recovery no
  /// longer fit the ledger's hard link/host limits, so the whole request
  /// was dropped instead of recharged — its users count in dropped_users
  /// and the bandwidth it held stays freed.  Always false in soft mode.
  bool capacity_dropped = false;
  Cost repaired_cost = 0.0;   // repair+re-home candidate (+inf if none)
  Cost scratch_cost = 0.0;    // from-scratch candidate (+inf if infeasible)
  Cost chosen_cost = 0.0;     // the adopted recovery's cost at epoch prices
  double seconds = 0.0;       // recovery wall time (timing, not semantics)
};

/// Checks a plan against the physical topology it will be drilled on and
/// throws std::invalid_argument naming the offending field (the
/// online::validate convention) for: negative arrival indices, a recovery
/// scheduled at or before its failure, and unknown link/node/DC ids.
/// Both online drivers call this from ArrivalStream construction, so a
/// degenerate plan fails fast in `online::simulate` and `online::Pipeline`
/// alike.
void validate(const FailurePlan& plan, const topology::Topology& topo);

/// The edge set an event takes down: the link itself (kLink) or every
/// physical link incident to the node/site (kNode/kDataCenter), ascending.
/// `plan_validated` inputs only — ids are resolved without re-checking.
std::vector<EdgeId> affected_links(const FailureEvent& event, const topology::Topology& topo);

}  // namespace sofe::resilience
