#include "sofe/resilience/recovery.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <vector>

#include "sofe/core/dynamic.hpp"

namespace sofe::resilience {

using core::ChainWalk;
using core::Problem;
using core::ServiceForest;
using graph::kInfiniteCost;

namespace {

/// A walk is broken when some consecutive hop has no finite link left.
/// find_edge picks the cheapest parallel edge — the same lookup the cost
/// accounting and the ledger charging use, so "broken" here is exactly
/// "charged a link that just died".
bool walk_broken(const Problem& p, const ChainWalk& w) {
  for (std::size_t i = 0; i + 1 < w.nodes.size(); ++i) {
    const graph::EdgeId e = p.network.find_edge(w.nodes[i], w.nodes[i + 1]);
    if (e == graph::kInvalidEdge || p.network.edge(e).cost == kInfiniteCost) return true;
  }
  return false;
}

}  // namespace

RecoveryOutcome recover_request(const Problem& staged, const ServiceForest& broken,
                                const RecoveryBudget& budget, const EmbedFn& scratch,
                                const core::AlgoOptions& opt) {
  assert(!broken.empty() && "only admitted (non-empty) embeddings can be recovered");
  RecoveryOutcome out;
  const int n_users = static_cast<int>(staged.destinations.size());

  // --- repair + re-home candidate -------------------------------------
  core::DynamicForest dyn(staged, broken);

  // Dead links the embedding crosses, ascending for a deterministic scan.
  std::set<graph::EdgeId> crossed;
  for (const ChainWalk& w : broken.walks) {
    for (std::size_t i = 0; i + 1 < w.nodes.size(); ++i) {
      const graph::EdgeId e = staged.network.find_edge(w.nodes[i], w.nodes[i + 1]);
      if (e != graph::kInvalidEdge && staged.network.edge(e).cost == kInfiniteCost) {
        crossed.insert(e);
      }
    }
  }
  for (const graph::EdgeId e : crossed) {
    // The cost is already kInfiniteCost in the staged snapshot; reroute_link
    // re-splices every segment still crossing the dead link onto the
    // cheapest surviving path (and repairs its cached trees in place).
    out.rerouted_segments += dyn.reroute_link(e, staged.network.edge(e).cost);
  }

  // Orphans: destinations whose walk has no surviving path at all (their
  // source site died, or the failure split their component).
  std::vector<core::NodeId> orphans;
  for (const ChainWalk& w : dyn.forest().walks) {
    if (walk_broken(dyn.problem(), w)) orphans.push_back(w.destination);
  }
  std::sort(orphans.begin(), orphans.end());
  orphans.erase(std::unique(orphans.begin(), orphans.end()), orphans.end());
  for (const core::NodeId d : orphans) dyn.destination_leave(d);

  int rehomed = 0;
  int dropped = 0;
  for (const core::NodeId d : orphans) {
    if (budget.max_moved_users >= 0 && rehomed >= budget.max_moved_users) {
      ++dropped;  // budget exhausted: repair-only from here on
      continue;
    }
    if (dyn.destination_join(d, opt)) {
      ++rehomed;
    } else {
      ++dropped;  // no feasible attachment survives the failure
    }
  }
  const bool repaired_ok = !dyn.forest().empty();
  if (repaired_ok) out.repaired_cost = core::total_cost(staged, dyn.forest());

  // --- from-scratch candidate ------------------------------------------
  // Always computed: the drill's quality-delta report compares against it
  // even when the budget keeps the repair.
  ServiceForest rebuilt = scratch(staged);
  if (!rebuilt.empty()) out.scratch_cost = core::total_cost(staged, rebuilt);
  const bool scratch_ok =
      !rebuilt.empty() && (budget.max_moved_users < 0 || n_users <= budget.max_moved_users);

  // --- choice ----------------------------------------------------------
  if (budget.max_moved_users < 0) {
    // Unbounded: migration is free, adopt the global re-optimization
    // whenever it exists (this is what makes the unbounded drill bitwise
    // the from-scratch reference).  Connectivity can still force the
    // partial repair: a re-embed that cannot reach every user is
    // infeasible, the repair serves the survivors.
    out.escalated = scratch_ok;
  } else {
    const int served_repaired = repaired_ok ? n_users - dropped : 0;
    const int served_scratch = n_users;
    const Cost obj_repaired =
        repaired_ok ? out.repaired_cost + budget.migration_cost_weight * rehomed : kInfiniteCost;
    const Cost obj_scratch = out.scratch_cost + budget.migration_cost_weight * n_users;
    // Serve more users first; then the migration-weighted objective; ties
    // keep the repair (fewer moved users).
    out.escalated = scratch_ok && (served_scratch > served_repaired ||
                                   (served_scratch == served_repaired &&
                                    obj_scratch < obj_repaired));
  }

  if (out.escalated) {
    out.forest = std::move(rebuilt);
    out.moved_users = n_users;
    out.dropped_users = 0;
    out.chosen_cost = out.scratch_cost;
  } else {
    out.forest = dyn.forest();
    out.moved_users = rehomed;
    out.dropped_users = dropped;  // == n_users when the whole forest was lost
    out.chosen_cost = out.repaired_cost;
  }
  return out;
}

}  // namespace sofe::resilience
