#include "sofe/resilience/failure_plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sofe::resilience {

namespace {

std::string target_name(FailureEvent::Target t) {
  switch (t) {
    case FailureEvent::Target::kLink:
      return "link";
    case FailureEvent::Target::kNode:
      return "node";
    case FailureEvent::Target::kDataCenter:
      return "data center";
  }
  return "?";
}

}  // namespace

void validate(const FailurePlan& plan, const topology::Topology& topo) {
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FailureEvent& ev = plan.events[i];
    const std::string field = "FailurePlan.events[" + std::to_string(i) + "]";
    const auto fail = [&](const std::string& member, const std::string& what) {
      throw std::invalid_argument(field + "." + member + ": " + what);
    };
    if (ev.fail_at < 0) {
      fail("fail_at", "arrival index must be >= 0 (got " + std::to_string(ev.fail_at) + ")");
    }
    if (ev.heal_at >= 0 && ev.heal_at <= ev.fail_at) {
      fail("heal_at", "recovery must come strictly after the failure (heal_at " +
                          std::to_string(ev.heal_at) + " <= fail_at " +
                          std::to_string(ev.fail_at) + ")");
    }
    switch (ev.target) {
      case FailureEvent::Target::kLink:
        if (ev.id < 0 || ev.id >= topo.g.edge_count()) {
          fail("id", "unknown link " + std::to_string(ev.id) + " (topology \"" + topo.name +
                         "\" has " + std::to_string(topo.g.edge_count()) + " links)");
        }
        break;
      case FailureEvent::Target::kNode:
        if (ev.id < 0 || ev.id >= topo.g.node_count()) {
          fail("id", "unknown node " + std::to_string(ev.id) + " (topology \"" + topo.name +
                         "\" has " + std::to_string(topo.g.node_count()) + " nodes)");
        }
        break;
      case FailureEvent::Target::kDataCenter:
        if (ev.id < 0 || static_cast<std::size_t>(ev.id) >= topo.dc_nodes.size()) {
          fail("id", "unknown data center " + std::to_string(ev.id) + " (topology \"" +
                         topo.name + "\" has " + std::to_string(topo.dc_nodes.size()) +
                         " sites)");
        }
        break;
      default:
        fail("target", "unknown target kind " +
                           std::to_string(static_cast<int>(ev.target)) + " (" +
                           target_name(ev.target) + ")");
    }
  }
}

std::vector<EdgeId> affected_links(const FailureEvent& event, const topology::Topology& topo) {
  std::vector<EdgeId> edges;
  if (event.target == FailureEvent::Target::kLink) {
    edges.push_back(event.id);
    return edges;
  }
  const NodeId site = event.target == FailureEvent::Target::kNode
                          ? event.id
                          : topo.dc_nodes[static_cast<std::size_t>(event.id)];
  for (const graph::Arc& a : topo.g.neighbors(site)) edges.push_back(a.edge);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace sofe::resilience
