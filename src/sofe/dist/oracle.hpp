#pragma once
// Exact inter-domain distance oracle (Section VI).
//
// No controller sees the whole network, yet SOFDA's pricing needs exact
// global shortest-path distances.  The oracle composes them from per-domain
// information only:
//
//   * every controller runs Dijkstra from each of its border nodes,
//     restricted to its own domain, and broadcasts the resulting
//     border-to-border distance matrix to its peers (one bulk round on the
//     MessageBus);
//   * the received matrices plus the physical inter-domain links form a small
//     *overlay graph* over all border nodes;
//   * a query (x, y) runs two domain-local Dijkstras (from x and from y) and
//     one Dijkstra on the overlay.
//
// Exactness (the property the tests pin to 1e-9): any global shortest path
// decomposes into maximal intra-domain segments joined by inter-domain
// links.  Each segment connects two border nodes of one domain (or an
// endpoint to a border) and uses only that domain's edges, so it is no
// cheaper than the domain-restricted shortest path the controller
// advertised; hence the overlay distance lower-bounds the global one.
// Conversely every overlay walk expands to a real walk in G, so it also
// upper-bounds it.  The two meet: composed distances equal global Dijkstra,
// and the expanded (stitched) paths are real shortest paths.

#include <unordered_map>
#include <vector>

#include "sofe/dist/domain_graphs.hpp"
#include "sofe/dist/message_bus.hpp"
#include "sofe/dist/partition.hpp"
#include "sofe/graph/graph.hpp"
#include "sofe/graph/shortest_path_engine.hpp"

namespace sofe::dist {

class DistanceOracle {
 public:
  /// Precomputes the per-domain border structures and charges the matrix
  /// exchange to `bus`: with k domains, each controller broadcasts its
  /// |borders|^2 matrix to the k-1 peers in a single round (no exchange —
  /// and no round — happens with a single controller).  `g` and `part` must
  /// outlive the oracle.
  DistanceOracle(const Graph& g, const Partition& part, MessageBus& bus);

  /// Exact global shortest-path distance between any two nodes.  When the
  /// endpoints live in different domains, the owning controller fetches the
  /// peer's border-to-target vector, charged as one request/response pair.
  Cost distance(NodeId x, NodeId y) const;

  /// A real shortest path x -> y, stitched from domain-local segments and
  /// inter-domain links.  Every consecutive pair is a physical link of `g`.
  std::vector<NodeId> path(NodeId x, NodeId y) const;

  /// Number of border nodes across all domains (the overlay size).
  std::size_t overlay_size() const noexcept { return overlay_nodes_.size(); }

 private:
  struct OverlayArc {
    int to;          // overlay index of the head border node
    Cost w;
    bool cross;      // physical inter-domain link vs composed intra segment
    int domain;      // intra arcs: the domain whose interior realizes the hop
    int src_border;  // intra arcs: index into that domain's border list
    NodeId tail, head;
  };

  /// Engine-backed Dijkstra from `start` over its domain's subgraph,
  /// written into `out` (local indices throughout).
  void local_tree(NodeId start, graph::ShortestPathTree& out) const;

  struct QueryResult {
    Cost dist = graph::kInfiniteCost;
    std::vector<NodeId> path;  // populated when requested and reachable
  };
  QueryResult query(NodeId x, NodeId y, bool want_path) const;

  /// The tree attaching query endpoint `v` to its domain's borders.  Border
  /// nodes reuse the constructor's trees; other endpoints are solved once
  /// and memoized (graph and partition are fixed for the oracle's
  /// lifetime).  Not thread-safe, like the query path's bus accounting.
  const graph::ShortestPathTree& attachment_tree(NodeId v) const;

  int local_index(NodeId v) const { return dg_.local(v); }

  const Graph* g_;
  const Partition* part_;
  MessageBus* bus_;

  // Per-domain induced subgraphs with both-way edge maps, shared structure
  // with the sharded closure (see domain_graphs.hpp).
  DomainGraphs dg_;
  // Per domain, per border node (indexed as in part.borders[d]): the
  // shortest-path tree from that border over the domain subgraph.
  // dist/parent are indexed by local member index, parents local too.
  std::vector<std::vector<graph::ShortestPathTree>> border_trees_;
  std::vector<int> overlay_index_;     // node -> overlay index (-1 if not a border)
  std::vector<int> border_pos_;        // node -> index within its domain's borders (-1)
  std::vector<NodeId> overlay_nodes_;  // overlay index -> node
  std::vector<std::vector<OverlayArc>> overlay_adj_;
  // Shared across all per-domain runs (construction and queries): rebound to
  // the relevant domain subgraph per call, workspaces reused throughout.
  mutable graph::ShortestPathEngine engine_;
  mutable std::unordered_map<NodeId, graph::ShortestPathTree> attach_cache_;
};

}  // namespace sofe::dist
