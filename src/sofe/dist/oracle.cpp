#include "sofe/dist/oracle.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace sofe::dist {

namespace {

using PQItem = std::pair<Cost, int>;  // (distance, index), min-heap
using MinHeap = std::priority_queue<PQItem, std::vector<PQItem>, std::greater<>>;

/// Per-query attachment arc from the virtual query source to a border node
/// of x's domain (or straight to the virtual target when x and y share a
/// domain).  All other query arcs are the prebuilt overlay adjacency.
struct QArc {
  int to;       // query-graph index of the head
  Cost w;
  NodeId head;  // the real node the arc reaches (border node, or y itself)
};

}  // namespace

DistanceOracle::DistanceOracle(const Graph& g, const Partition& part, MessageBus& bus)
    : g_(&g), part_(&part), bus_(&bus), dg_(g, part) {
  const auto n = static_cast<std::size_t>(g.node_count());
  const int k = part.num_domains;
  assert(static_cast<std::size_t>(part.domain_of.size()) == n);

  overlay_index_.assign(n, -1);
  border_pos_.assign(n, -1);
  for (int d = 0; d < k; ++d) {
    const auto& borders = part.borders[static_cast<std::size_t>(d)];
    for (std::size_t bi = 0; bi < borders.size(); ++bi) {
      overlay_index_[static_cast<std::size_t>(borders[bi])] =
          static_cast<int>(overlay_nodes_.size());
      border_pos_[static_cast<std::size_t>(borders[bi])] = static_cast<int>(bi);
      overlay_nodes_.push_back(borders[bi]);
    }
  }

  // The per-domain induced subgraphs come from the shared DomainGraphs view
  // (dg_, built in the initializer list).  Each controller runs Dijkstra
  // from its border nodes over its own domain.
  border_trees_.resize(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    const auto& borders = part.borders[static_cast<std::size_t>(d)];
    auto& trees = border_trees_[static_cast<std::size_t>(d)];
    trees.resize(borders.size());
    for (std::size_t bi = 0; bi < borders.size(); ++bi) {
      local_tree(borders[bi], trees[bi]);
    }
  }

  // Overlay arcs: the advertised intra-domain border-to-border distances plus
  // every physical inter-domain link (whose endpoints are borders by
  // definition).
  overlay_adj_.resize(overlay_nodes_.size());
  for (int d = 0; d < k; ++d) {
    const auto& borders = part.borders[static_cast<std::size_t>(d)];
    for (std::size_t bi = 0; bi < borders.size(); ++bi) {
      const NodeId b1 = borders[bi];
      for (NodeId b2 : borders) {
        if (b2 == b1) continue;
        const Cost w = border_trees_[static_cast<std::size_t>(d)][bi]
                           .dist[static_cast<std::size_t>(local_index(b2))];
        if (w < graph::kInfiniteCost) {
          overlay_adj_[static_cast<std::size_t>(overlay_index_[static_cast<std::size_t>(b1)])]
              .push_back(OverlayArc{overlay_index_[static_cast<std::size_t>(b2)], w,
                                    /*cross=*/false, d, static_cast<int>(bi), b1, b2});
        }
      }
    }
  }
  for (const auto& e : g.edges()) {
    if (part.domain_of[static_cast<std::size_t>(e.u)] !=
        part.domain_of[static_cast<std::size_t>(e.v)]) {
      const int ou = overlay_index_[static_cast<std::size_t>(e.u)];
      const int ov = overlay_index_[static_cast<std::size_t>(e.v)];
      assert(ou >= 0 && ov >= 0 && "cross-link endpoint is not a border node");
      overlay_adj_[static_cast<std::size_t>(ou)].push_back(
          OverlayArc{ov, e.cost, /*cross=*/true, -1, -1, e.u, e.v});
      overlay_adj_[static_cast<std::size_t>(ov)].push_back(
          OverlayArc{ou, e.cost, /*cross=*/true, -1, -1, e.v, e.u});
    }
  }

  // Charge the one-round all-to-all matrix exchange: each of the k
  // controllers broadcasts its |borders|^2 matrix to the k-1 peers.
  if (k > 1) {
    for (int d = 0; d < k; ++d) {
      const std::size_t m = part.borders[static_cast<std::size_t>(d)].size();
      bus.broadcast(static_cast<std::size_t>(k - 1), m * m);
    }
    bus.end_round();
  }
}

void DistanceOracle::local_tree(NodeId start, graph::ShortestPathTree& out) const {
  const int d = part_->domain(start);
  engine_.attach(dg_.domains[static_cast<std::size_t>(d)].subgraph);
  engine_.run_into(static_cast<NodeId>(local_index(start)), out);
}

const graph::ShortestPathTree& DistanceOracle::attachment_tree(NodeId v) const {
  if (const int bp = border_pos_[static_cast<std::size_t>(v)]; bp >= 0) {
    return border_trees_[static_cast<std::size_t>(part_->domain(v))]
                        [static_cast<std::size_t>(bp)];
  }
  auto it = attach_cache_.find(v);
  if (it == attach_cache_.end()) {
    it = attach_cache_.emplace(v, graph::ShortestPathTree{}).first;
    local_tree(v, it->second);
  }
  return it->second;
}

DistanceOracle::QueryResult DistanceOracle::query(NodeId x, NodeId y, bool want_path) const {
  assert(g_->valid_node(x) && g_->valid_node(y));
  QueryResult out;
  if (x == y) {
    out.dist = 0.0;
    out.path = {x};
    return out;
  }
  const int dx = part_->domain(x);
  const int dy = part_->domain(y);

  // A cross-domain query makes controller(x) fetch controller(y)'s
  // border-to-target vector: one request, one response.
  if (dx != dy) {
    bus_->send(1);
    bus_->send(part_->borders[static_cast<std::size_t>(dy)].size());
  }

  // Endpoint attachment trees (border endpoints reuse the constructor's
  // trees; others are memoized across queries).  dist/parent are indexed by
  // local member index; parents are local indices within the domain.
  const graph::ShortestPathTree& tx = attachment_tree(x);
  const graph::ShortestPathTree& ty = attachment_tree(y);
  const std::vector<Cost>& dist_x = tx.dist;
  const std::vector<Cost>& dist_y = ty.dist;

  // Query graph: the prebuilt overlay (reused as-is) plus two virtual
  // endpoints.  The only per-query arcs are the endpoint attachments.
  const int nb = static_cast<int>(overlay_nodes_.size());
  const int qx = nb, qy = nb + 1;
  std::vector<QArc> x_arcs;  // qx -> borders of dx, and qx -> qy when dx == dy
  for (NodeId b : part_->borders[static_cast<std::size_t>(dx)]) {
    const Cost w = dist_x[static_cast<std::size_t>(local_index(b))];
    if (w < graph::kInfiniteCost) {
      x_arcs.push_back(QArc{overlay_index_[static_cast<std::size_t>(b)], w, b});
    }
  }
  if (dx == dy) {
    const Cost w = dist_x[static_cast<std::size_t>(local_index(y))];
    if (w < graph::kInfiniteCost) {
      x_arcs.push_back(QArc{qy, w, y});
    }
  }
  std::vector<Cost> y_w(static_cast<std::size_t>(nb),
                        graph::kInfiniteCost);  // border -> y attachment weights
  for (NodeId b : part_->borders[static_cast<std::size_t>(dy)]) {
    const Cost w = dist_y[static_cast<std::size_t>(local_index(b))];
    if (w < graph::kInfiniteCost) {
      y_w[static_cast<std::size_t>(overlay_index_[static_cast<std::size_t>(b)])] = w;
    }
  }

  // Dijkstra over [0, nb+2), remembering (from, arc) per settled node so the
  // winning hop sequence can be expanded afterwards.  Arc encoding: from ==
  // qx indexes x_arcs; a border `from` with arc index >= 0 indexes
  // overlay_adj_[from]; arc index -1 is `from`'s border -> y attachment.
  std::vector<Cost> qdist(static_cast<std::size_t>(nb) + 2, graph::kInfiniteCost);
  std::vector<std::pair<int, int>> qpar(static_cast<std::size_t>(nb) + 2, {-1, -1});
  MinHeap pq;
  qdist[static_cast<std::size_t>(qx)] = 0.0;
  pq.emplace(0.0, qx);
  const auto relax = [&](int to, Cost nd, int from, int ai) {
    if (nd < qdist[static_cast<std::size_t>(to)]) {
      qdist[static_cast<std::size_t>(to)] = nd;
      qpar[static_cast<std::size_t>(to)] = {from, ai};
      pq.emplace(nd, to);
    }
  };
  while (!pq.empty()) {
    const auto [dv, v] = pq.top();
    pq.pop();
    if (dv > qdist[static_cast<std::size_t>(v)]) continue;
    if (v == qy) break;
    if (v == qx) {
      for (std::size_t ai = 0; ai < x_arcs.size(); ++ai) {
        relax(x_arcs[ai].to, dv + x_arcs[ai].w, qx, static_cast<int>(ai));
      }
    } else {
      const auto& arcs = overlay_adj_[static_cast<std::size_t>(v)];
      for (std::size_t ai = 0; ai < arcs.size(); ++ai) {
        relax(arcs[ai].to, dv + arcs[ai].w, v, static_cast<int>(ai));
      }
      if (y_w[static_cast<std::size_t>(v)] < graph::kInfiniteCost) {
        relax(qy, dv + y_w[static_cast<std::size_t>(v)], v, -1);
      }
    }
  }
  out.dist = qdist[static_cast<std::size_t>(qy)];
  if (!want_path || out.dist >= graph::kInfiniteCost) return out;

  // Collect the winning hops X -> ... -> Y.
  std::vector<std::pair<int, int>> hops;  // (from, arc index) per hop
  for (int v = qy; v != qx;) {
    const auto [from, ai] = qpar[static_cast<std::size_t>(v)];
    assert(from >= 0);
    hops.emplace_back(from, ai);
    v = from;
  }
  std::reverse(hops.begin(), hops.end());

  // Chain walkers: tree parents aim at the Dijkstra source and are LOCAL
  // member indices, so a chain from `v` walks local parents and maps each
  // step back to global ids via the domain's member list; the result is
  // v..source order — reverse it for source..v segments.  `from_node` lives
  // in the same domain as the tree at every call site.
  const auto chain = [&](NodeId from_node, const graph::ShortestPathTree& t) {
    const auto& mem = part_->members[static_cast<std::size_t>(part_->domain(from_node))];
    std::vector<NodeId> seg;
    for (NodeId v = static_cast<NodeId>(local_index(from_node)); v != graph::kInvalidNode;
         v = t.parent[static_cast<std::size_t>(v)]) {
      seg.push_back(mem[static_cast<std::size_t>(v)]);
    }
    return seg;
  };

  // Expand each hop to its full tail..head node sequence and stitch.
  out.path.push_back(x);
  for (const auto& [from, ai] : hops) {
    std::vector<NodeId> seg;
    if (from == qx) {
      // x -> border or x -> y attachment: walk back to x, reverse.
      seg = chain(x_arcs[static_cast<std::size_t>(ai)].head, tx);
      std::reverse(seg.begin(), seg.end());
    } else if (ai < 0) {
      // border -> y attachment: y's tree parents already aim at y.
      seg = chain(overlay_nodes_[static_cast<std::size_t>(from)], ty);
    } else {
      const OverlayArc& oa = overlay_adj_[static_cast<std::size_t>(from)]
                                         [static_cast<std::size_t>(ai)];
      if (oa.cross) {
        seg = {oa.tail, oa.head};
      } else {
        // Intra-domain border-to-border segment from the advertised tree.
        seg = chain(oa.head, border_trees_[static_cast<std::size_t>(oa.domain)]
                                          [static_cast<std::size_t>(oa.src_border)]);
        std::reverse(seg.begin(), seg.end());
      }
    }
    assert(!seg.empty() && seg.front() == out.path.back() &&
           "hop does not continue the stitched path");
    out.path.insert(out.path.end(), seg.begin() + 1, seg.end());
  }
  assert(out.path.front() == x && out.path.back() == y);
  return out;
}

Cost DistanceOracle::distance(NodeId x, NodeId y) const {
  return query(x, y, /*want_path=*/false).dist;
}

std::vector<NodeId> DistanceOracle::path(NodeId x, NodeId y) const {
  return query(x, y, /*want_path=*/true).path;
}

}  // namespace sofe::dist
