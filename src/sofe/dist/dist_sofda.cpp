#include "sofe/dist/dist_sofda.hpp"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <vector>

#include "sofe/graph/metric_closure.hpp"

namespace sofe::dist {

DistSofdaResult distributed_sofda_with(const core::Problem& p, const ShardedClosure& sc,
                                       MessageBus& bus, const core::AlgoOptions& opt) {
  assert(p.chain_length >= 1 && !p.destinations.empty());
  const Partition& part = sc.partition();
  const int k = part.num_domains;
  const graph::MetricClosure& closure = sc.closure();

  DistSofdaResult r;
  r.controllers = k;

  const std::vector<core::NodeId> vms = p.vms();
  std::vector<std::vector<core::NodeId>> sources_of(static_cast<std::size_t>(k));
  for (core::NodeId s : p.sources) {
    sources_of[static_cast<std::size_t>(part.domain(s))].push_back(s);
  }

  // --- Redistribution: peers price against the stitched view, so the
  // coordinator broadcasts the shared VM block (every VM's distances to the
  // VMs and destinations) and ships each peer its own sources' rows.
  if (k > 1) {
    const std::size_t vm_block = vms.size() * (vms.size() + p.destinations.size());
    bus.broadcast(static_cast<std::size_t>(k - 1), vm_block);
    for (int d = 1; d < k; ++d) {
      const auto& src = sources_of[static_cast<std::size_t>(d)];
      if (!src.empty()) bus.send(src.size() * vms.size());
    }
    bus.end_round();
  }

  // --- Per-controller chain pricing against the stitched closure (no
  // per-pair oracle queries: the closure rows are already exact).  Each
  // controller reports its candidates — a chain ships its VM sequence plus
  // its price.
  std::vector<core::PricedChain> candidates;
  for (int d = 0; d < k; ++d) {
    auto local = core::price_candidate_chains(p, closure, sources_of[static_cast<std::size_t>(d)],
                                              opt, opt.closure_threads);
    if (d != 0 && k > 1) {
      const std::size_t chain_bytes =
          sizeof(Cost) + static_cast<std::size_t>(p.chain_length + 1) * sizeof(NodeId);
      bus.send(local.size(), local.size() * chain_bytes);
    }
    candidates.insert(candidates.end(), std::make_move_iterator(local.begin()),
                      std::make_move_iterator(local.end()));
  }
  if (k > 1) bus.end_round();

  // Coordinator-side merge into the canonical (source, last_vm) order: with
  // disjoint per-domain source sets this reproduces the centralized
  // candidate list exactly (see core::merge_priced_chains).
  core::merge_priced_chains(candidates);

  // --- The coordinator solves Procedure 3 over the merged candidates and
  // broadcasts the selected chains plus the per-destination distribution
  // segments.
  r.forest = core::sofda_from_candidates(p, closure, candidates, opt, &r.stats);
  if (k > 1) {
    bus.broadcast(static_cast<std::size_t>(k - 1),
                  static_cast<std::size_t>(r.stats.deployed_chains) + r.forest.walks.size());
    bus.end_round();

    // --- Controllers install their local rule slices and ack.
    for (int d = 1; d < k; ++d) bus.send(1);
    bus.end_round();
  }

  r.messages = bus.messages();
  r.payload_items = bus.payload_items();
  r.payload_bytes = bus.payload_bytes();
  r.rounds = bus.rounds();
  const auto& cs = sc.stats();
  r.exchanged_rows = cs.exchanged_rows;
  r.exchanged_entries = cs.exchanged_entries;
  r.skeleton_edges = cs.skeleton_edges;
  r.closure_build_seconds = cs.local_build_seconds_max;
  r.closure_build_seconds_total = cs.local_build_seconds_total;
  r.stitch_seconds = cs.stitch_seconds;
  return r;
}

DistSofdaResult distributed_sofda(const core::Problem& p, int controllers,
                                  const core::AlgoOptions& opt) {
  assert(p.well_formed());
  const int n = static_cast<int>(p.network.node_count());
  const int k = std::clamp(controllers, 1, std::max(n, 1));

  if (k == 1 || p.chain_length == 0 || p.destinations.empty()) {
    // One controller or a pipeline-less instance: plain centralized SOFDA,
    // no protocol to run.
    DistSofdaResult r;
    r.controllers = k;
    r.forest = core::sofda(p, opt, &r.stats);
    return r;
  }

  MessageBus bus;

  // --- Round 1: the coordinator partitions the network and ships each peer
  // its domain assignment (one entry per node).
  Partition part = partition_bfs(p.network, k);
  bus.broadcast(static_cast<std::size_t>(k - 1), static_cast<std::size_t>(n));
  bus.end_round();

  // --- Round 2: parallel per-domain closure builds + the border/hub row
  // exchange (charged by ShardedClosure itself).  The one-shot solve wants
  // the cheapest exact view, so both the per-domain and the stitched trees
  // are bounded to the hubs and destinations pricing actually reads.
  const std::vector<core::NodeId> vms = p.vms();
  std::vector<core::NodeId> hubs = vms;
  hubs.insert(hubs.end(), p.sources.begin(), p.sources.end());
  ShardedClosure sc;
  sc.build(p.network, std::move(part), std::move(hubs), p.destinations, opt.closure_threads,
           bus, /*bounded=*/true);

  // --- Rounds 3-6.
  return distributed_sofda_with(p, sc, bus, opt);
}

}  // namespace sofe::dist
