#include "sofe/dist/dist_sofda.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iterator>
#include <vector>

#include "sofe/graph/metric_closure.hpp"
#include "sofe/graph/oracles.hpp"

namespace sofe::dist {

DistSofdaResult distributed_sofda(const core::Problem& p, int controllers,
                                  const core::AlgoOptions& opt) {
  assert(p.well_formed());
  DistSofdaResult r;
  const int n = static_cast<int>(p.network.node_count());
  const int k = std::clamp(controllers, 1, std::max(n, 1));
  r.controllers = k;

  if (k == 1 || p.chain_length == 0 || p.destinations.empty() ||
      !graph::is_connected(p.network)) {
    // One controller, a pipeline-less instance, or a disconnected fabric
    // (which the domain protocol does not model): plain centralized SOFDA,
    // no protocol to run.  core::sofda copes with disconnection by itself.
    r.forest = core::sofda(p, opt, &r.stats);
    return r;
  }

  MessageBus bus;

  // --- Round 1: the coordinator partitions the network and ships each peer
  // its domain assignment (one entry per node).
  const Partition part = partition_bfs(p.network, k);
  bus.broadcast(static_cast<std::size_t>(k - 1), static_cast<std::size_t>(n));
  bus.end_round();

  // --- Round 2: border-matrix exchange (charged by the oracle itself).
  const DistanceOracle oracle(p.network, part, bus);

  // --- Round 3: per-controller chain pricing.  Each controller prices the
  // sources it administers; grouping by domain and re-sorting below yields
  // the same canonical candidate list a centralized run prices, because
  // price_candidate_chains emits (source, last_vm)-ordered output and the
  // domains partition the source set.
  const std::vector<core::NodeId> vms = p.vms();
  std::vector<core::NodeId> hubs = vms;
  hubs.insert(hubs.end(), p.sources.begin(), p.sources.end());
  const graph::MetricClosure closure(p.network, hubs, opt.closure_threads);

  std::vector<std::vector<core::NodeId>> sources_of(static_cast<std::size_t>(k));
  for (core::NodeId s : p.sources) {
    sources_of[static_cast<std::size_t>(part.domain(s))].push_back(s);
  }

  std::vector<core::PricedChain> candidates;
  for (int d = 0; d < k; ++d) {
    auto local = core::price_candidate_chains(p, closure, sources_of[static_cast<std::size_t>(d)],
                                              opt);
    // Chains ending in a foreign domain are priced against the composed
    // oracle distance — a query to that domain's controller.  The composed
    // value must agree with the shared-state closure: that equality is the
    // whole reason the distributed certificate matches the centralized one.
    for (const auto& c : local) {
      if (part.domain(c.source) != part.domain(c.last_vm)) {
        [[maybe_unused]] const Cost composed = oracle.distance(c.source, c.last_vm);
        assert(std::abs(composed - closure.distance(c.source, c.last_vm)) <= 1e-6 &&
               "composed oracle distance diverged from the global metric");
      }
    }
    if (d != 0) bus.send(local.size());  // report to the coordinator (possibly empty)
    candidates.insert(candidates.end(), std::make_move_iterator(local.begin()),
                      std::make_move_iterator(local.end()));
  }
  bus.end_round();

  // Coordinator-side merge into the canonical (source, last_vm) order.
  std::sort(candidates.begin(), candidates.end(),
            [](const core::PricedChain& a, const core::PricedChain& b) {
              return a.source != b.source ? a.source < b.source : a.last_vm < b.last_vm;
            });

  // --- Round 4: the coordinator solves Procedure 3 over the merged
  // candidates and broadcasts the selected chains plus the per-destination
  // distribution segments.
  r.forest = core::sofda_from_candidates(p, closure, candidates, opt, &r.stats);
  bus.broadcast(static_cast<std::size_t>(k - 1),
                static_cast<std::size_t>(r.stats.deployed_chains) + r.forest.walks.size());
  bus.end_round();

  // --- Round 5: controllers install their local rule slices and ack.
  for (int d = 1; d < k; ++d) bus.send(1);
  bus.end_round();

  r.messages = bus.messages();
  r.payload_items = bus.payload_items();
  r.rounds = bus.rounds();
  return r;
}

}  // namespace sofe::dist
