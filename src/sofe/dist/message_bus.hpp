#pragma once
// Inter-controller message accounting (Section VI).
//
// The distributed pipeline is evaluated by its control-plane overhead: how
// many controller-to-controller messages fly, how much data they carry, and
// how many synchronized rounds the protocol needs.  MessageBus is the single
// ledger for all three.  It deliberately models *cost*, not delivery — the
// simulation computes with shared state and charges the bus for every
// exchange the real protocol would perform.
//
// A *message* is one directed controller-to-controller transmission.  Its
// *payload* is counted in items (matrix entries, candidate chains, walk
// segments — whatever the phase ships) and, separately, in bytes.  Most
// payloads are Cost entries, so the byte charge defaults to
// `payload * sizeof(graph::Cost)`; phases shipping anything else (edge ids plus
// costs, say) pass their true wire size explicitly so the bench ledger can
// report bytes/round honestly.  A *round* is one bulk-synchronous step: all
// messages of a phase are in flight together and the phase ends with
// `end_round()`.

#include <cstddef>

#include "sofe/graph/graph.hpp"

namespace sofe::dist {

class MessageBus {
 public:
  /// One directed message carrying `payload` items.  `bytes` is the wire
  /// size of those items; it defaults to one Cost per item.
  void send(std::size_t payload = 1, std::size_t bytes = kCostBytes) {
    ++messages_;
    payload_ += payload;
    bytes_ += bytes == kCostBytes ? payload * sizeof(graph::Cost) : bytes;
  }

  /// One controller sending the same `payload` to `peers` peers.
  void broadcast(std::size_t peers, std::size_t payload = 1,
                 std::size_t bytes = kCostBytes) {
    messages_ += peers;
    payload_ += peers * payload;
    bytes_ += peers * (bytes == kCostBytes ? payload * sizeof(graph::Cost) : bytes);
  }

  /// Closes the current bulk-synchronous round.
  void end_round() { ++rounds_; }

  std::size_t messages() const noexcept { return messages_; }
  std::size_t payload_items() const noexcept { return payload_; }
  std::size_t payload_bytes() const noexcept { return bytes_; }
  int rounds() const noexcept { return rounds_; }

 private:
  // Sentinel meaning "default: payload Cost entries".  Any real payload is
  // far below SIZE_MAX, so the sentinel cannot collide with an honest size.
  static constexpr std::size_t kCostBytes = static_cast<std::size_t>(-1);

  std::size_t messages_ = 0;
  std::size_t payload_ = 0;
  std::size_t bytes_ = 0;
  int rounds_ = 0;
};

}  // namespace sofe::dist
