#pragma once
// Inter-controller message accounting (Section VI).
//
// The distributed pipeline is evaluated by its control-plane overhead: how
// many controller-to-controller messages fly, how much data they carry, and
// how many synchronized rounds the protocol needs.  MessageBus is the single
// ledger for all three.  It deliberately models *cost*, not delivery — the
// simulation computes with shared state and charges the bus for every
// exchange the real protocol would perform.
//
// A *message* is one directed controller-to-controller transmission.  Its
// *payload* is counted in items (matrix entries, candidate chains, walk
// segments — whatever the phase ships).  A *round* is one bulk-synchronous
// step: all messages of a phase are in flight together and the phase ends
// with `end_round()`.

#include <cstddef>

namespace sofe::dist {

class MessageBus {
 public:
  /// One directed message carrying `payload` items.
  void send(std::size_t payload = 1) {
    ++messages_;
    payload_ += payload;
  }

  /// One controller sending the same `payload` to `peers` peers.
  void broadcast(std::size_t peers, std::size_t payload = 1) {
    messages_ += peers;
    payload_ += peers * payload;
  }

  /// Closes the current bulk-synchronous round.
  void end_round() { ++rounds_; }

  std::size_t messages() const noexcept { return messages_; }
  std::size_t payload_items() const noexcept { return payload_; }
  int rounds() const noexcept { return rounds_; }

 private:
  std::size_t messages_ = 0;
  std::size_t payload_ = 0;
  int rounds_ = 0;
};

}  // namespace sofe::dist
