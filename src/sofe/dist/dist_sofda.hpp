#pragma once
// Multi-controller SOFDA (Section VI): k cooperating SDN controllers embed
// one service overlay forest, each administering one connected domain of the
// network.
//
// Protocol (bulk-synchronous rounds on the MessageBus):
//   1. the coordinator (controller 0) computes the domain partition and
//      ships every peer its assignment;
//   2. sharded closure build (DESIGN.md §11): every controller builds the
//      metric closure of its own domain in parallel and ships its
//      border/hub rows to the coordinator, which stitches the exact global
//      pricing closure from the advertised skeleton (charged by
//      ShardedClosure itself — rows, entries, bytes, one round);
//   3. the coordinator redistributes the stitched pricing view: the shared
//      VM block to every peer plus each peer's own source rows;
//   4. each controller prices the candidate chains of the sources it
//      administers against the stitched closure and reports them to the
//      coordinator;
//   5. the coordinator merges the per-controller candidate lists into the
//      canonical order (core::merge_priced_chains), solves the auxiliary
//      Steiner instance (Procedure 3) and broadcasts the selected chains
//      and distribution segments;
//   6. controllers install their local rule slices and acknowledge.
//
// Cost model: the simulation computes with shared state — controllers in an
// SDN deployment all learn the link-state topology, domains split
// administration, not visibility — and charges the bus for every exchange
// the visibility-restricted protocol performs.  Because the stitched
// closure is bit-identical to the global one on every hub/destination query
// (sharded_closure.hpp), the per-controller pricing produces the
// *identical* candidate list the centralized run prices, so the merged
// auxiliary graph, the Steiner certificate and the deployed chains match
// the centralized ones exactly — at any controller count and thread count.

#include <cstddef>

#include "sofe/core/sofda.hpp"
#include "sofe/dist/message_bus.hpp"
#include "sofe/dist/sharded_closure.hpp"

namespace sofe::dist {

struct DistSofdaResult {
  core::ServiceForest forest;
  core::SofdaStats stats;      // certificate: equals the centralized run's
  int controllers = 1;         // k actually used (clamped to [1, |V|])
  std::size_t messages = 0;    // directed controller-to-controller messages
  std::size_t payload_items = 0;   // total items those messages carried
  std::size_t payload_bytes = 0;   // honest wire size of those items
  int rounds = 0;              // bulk-synchronous protocol rounds
  // Sharded-closure diagnostics (zero on the centralized fallback).
  std::size_t exchanged_rows = 0;
  std::size_t exchanged_entries = 0;
  std::size_t skeleton_edges = 0;
  double closure_build_seconds = 0.0;  // slowest controller's local build
  double closure_build_seconds_total = 0.0;
  double stitch_seconds = 0.0;
};

/// Embeds `p` with `controllers` cooperating controllers.  With one
/// controller (or a degenerate instance) this is exactly `core::sofda`,
/// message-free.  Deterministic in (p, controllers, opt).
DistSofdaResult distributed_sofda(const core::Problem& p, int controllers,
                                  const core::AlgoOptions& opt = {});

/// Protocol rounds 3-6 against an already-built (or session-repaired)
/// sharded closure: redistribution, per-domain pricing, the coordinator
/// solve and the acks.  `sc` must have been built for this problem's
/// hubs/destinations over `p.network`; `bus` keeps accumulating, so the
/// returned ledger covers everything charged on it (api::DistSolver passes
/// the same bus through ClosureSession::acquire_sharded first).  Requires
/// chain_length >= 1 and nonempty destinations.
DistSofdaResult distributed_sofda_with(const core::Problem& p, const ShardedClosure& sc,
                                       MessageBus& bus, const core::AlgoOptions& opt = {});

}  // namespace sofe::dist
