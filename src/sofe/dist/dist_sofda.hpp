#pragma once
// Multi-controller SOFDA (Section VI): k cooperating SDN controllers embed
// one service overlay forest, each administering one connected domain of the
// network.
//
// Protocol (bulk-synchronous rounds on the MessageBus):
//   1. the coordinator (controller 0) computes the domain partition and
//      ships every peer its assignment;
//   2. controllers exchange border-to-border distance matrices, giving every
//      one of them the exact composed distance oracle (see oracle.hpp);
//   3. each controller prices the candidate chains of the sources it
//      administers and reports them to the coordinator; pricing a chain
//      whose last VM lives in a foreign domain costs an oracle query
//      (request + response) against that domain's controller;
//   4. the coordinator merges the per-controller candidate lists into the
//      canonical order, solves the auxiliary Steiner instance (Procedure 3)
//      and broadcasts the selected chains and distribution segments;
//   5. controllers install their local rule slices and acknowledge.
//
// Cost model: the simulation computes with shared state — controllers in an
// SDN deployment all learn the link-state topology, domains split
// administration, not visibility — and charges the bus for every exchange
// the visibility-restricted protocol performs.  Because the oracle's
// composed distances provably equal global Dijkstra (tested to 1e-9), the
// per-controller pricing produces the *identical* candidate list the
// centralized run prices, so the merged auxiliary graph, the Steiner
// certificate and the deployed chains match the centralized ones exactly —
// at any controller count.

#include <cstddef>

#include "sofe/core/sofda.hpp"
#include "sofe/dist/oracle.hpp"

namespace sofe::dist {

struct DistSofdaResult {
  core::ServiceForest forest;
  core::SofdaStats stats;      // certificate: equals the centralized run's
  int controllers = 1;         // k actually used (clamped to [1, |V|])
  std::size_t messages = 0;    // directed controller-to-controller messages
  std::size_t payload_items = 0;  // total items those messages carried
  int rounds = 0;              // bulk-synchronous protocol rounds
};

/// Embeds `p` with `controllers` cooperating controllers.  With one
/// controller (or a degenerate instance) this is exactly `core::sofda`,
/// message-free.  Deterministic in (p, controllers, opt).
DistSofdaResult distributed_sofda(const core::Problem& p, int controllers,
                                  const core::AlgoOptions& opt = {});

}  // namespace sofe::dist
