#pragma once
// Domain partitioning for multi-controller embedding (Section VI).
//
// Each SDN controller administers one *domain*: a connected, nonempty set of
// nodes.  Domains jointly cover the network.  A node is a *border* node of
// its domain when at least one of its links crosses into another domain —
// border nodes are the only places where inter-domain traffic (and therefore
// inter-controller coordination) can happen, so the distance oracle and the
// distributed driver key all of their bookkeeping on them.

#include <vector>

#include "sofe/graph/graph.hpp"

namespace sofe::dist {

using graph::Cost;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

/// A k-domain partition of a connected graph.
struct Partition {
  int num_domains = 0;
  std::vector<int> domain_of;                // node -> domain id [0, k)
  std::vector<std::vector<NodeId>> members;  // domain -> ascending node list
  std::vector<std::vector<NodeId>> borders;  // domain -> ascending border list

  int domain(NodeId v) const { return domain_of[static_cast<std::size_t>(v)]; }
};

/// Partitions `g` into exactly `k` nonempty domains that cover every node
/// (k is clamped to [1, node_count]).  Seeds are placed by deterministic
/// farthest-first traversal (hop metric) and domains grow by synchronized
/// multi-source BFS, so on a connected graph each domain is a BFS tree and
/// therefore connected in its induced subgraph.  A disconnected graph still
/// yields a deterministic covering partition (each component is seeded
/// before any component gets a second seed; with k below the component
/// count, leftover components join existing domains round-robin and those
/// domains span components).
Partition partition_bfs(const Graph& g, int k);

}  // namespace sofe::dist
