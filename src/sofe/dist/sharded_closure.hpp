#pragma once
// Sharded metric closure (Section VI, DESIGN.md §11): k controllers build
// the pricing closure together, none of them holding global O(V²) state.
//
// Each controller builds a MetricClosure restricted to its own domain
// subgraph (DomainGraphs), rooted at the border nodes plus the hubs it owns
// and settled to the borders plus the hubs/destinations it owns — all k
// local builds running in parallel.  A controller then *advertises* its
// rows: for every root, the parent-chain edges its local trees use to reach
// the domain's targets (plus every inter-domain link, which both endpoints
// see by definition).  Non-coordinator controllers ship their rows over the
// MessageBus — O(|borders|·|hubs ∪ borders|) row payload, charged in rows,
// entries and bytes — and the coordinator stitches.
//
// The stitch is NOT a distance composition (overlay sums re-associate IEEE
// folds and can drift ulps from global Dijkstra).  Instead the coordinator
// rebuilds the advertised skeleton as a *cost mask* over a copy of G: every
// edge no advertisement mentions is set to kInfiniteCost, node ids, edge
// ids and CSR arc order all staying identical, and the standard
// MetricClosure runs on the masked graph.  Exactness (DESIGN.md §11): a
// global shortest path decomposes into intra-domain segments joined by
// cross links (the oracle's composition argument); each segment from its
// entry point is a domain-local canonical chain and is therefore advertised
// — so the masked graph contains every canonical hub-to-target chain, the
// masked distances meet the global ones bitwise (same edges folded in the
// same order), and since masking only removes relaxation candidates while
// the engine settles by (dist, node), the masked run picks the same parents
// on every advertised chain.  Distances, paths and zero-cost tap
// derivations over hubs × (hubs ∪ destinations) are bit-identical to the
// global closure — the property the distributed certificate rides on.
//
// Incremental (repairable builds only): an EdgeCostDelta batch routes to
// the owning domain (cross-link deltas hit the mask directly), the local
// closures repair in place, and only the dirtied rows re-advertise — their
// edge-set diffs become refcount moves on the mask, mask flips are
// themselves legal EdgeCostDeltas, and the stitched closure repairs through
// MetricClosure::refresh.  api::ClosureSession drives this path.

#include <cstddef>
#include <span>
#include <vector>

#include "sofe/dist/domain_graphs.hpp"
#include "sofe/dist/message_bus.hpp"
#include "sofe/dist/partition.hpp"
#include "sofe/graph/metric_closure.hpp"

namespace sofe::dist {

class ShardedClosure {
 public:
  struct Stats {
    int domains = 0;
    std::size_t rows = 0;             // advertised rows across all domains
    std::size_t entries = 0;          // advertised row entries (edges + distance slots)
    std::size_t exchanged_rows = 0;   // rows shipped to the coordinator (domains 1..k-1)
    std::size_t exchanged_entries = 0;
    std::size_t exchanged_bytes = 0;
    int exchange_rounds = 0;
    std::size_t skeleton_edges = 0;   // unmasked (advertised) edges of the stitch graph
    std::size_t repaired_rows = 0;    // cumulative dirtied rows over refresh()/extend()
    double local_build_seconds_max = 0.0;    // slowest controller: the parallel critical path
    double local_build_seconds_total = 0.0;  // sum over controllers: the k=1 work
    double stitch_seconds = 0.0;
  };

  ShardedClosure() = default;

  /// Builds the sharded closure: parallel per-domain local closures, the
  /// charged row exchange, and the stitched MetricClosure over `hubs` with
  /// every hub-to-(hub ∪ destination) distance and path bit-identical to a
  /// global build.  `part` must partition `g` (it is copied and kept).
  /// `bounded` builds truncated local and stitched trees (cheapest, the
  /// one-shot solve path); only unbounded builds are repairable/extendable.
  void build(const Graph& g, Partition part, std::vector<NodeId> hubs,
             std::span<const NodeId> destinations, int num_threads, MessageBus& bus,
             bool bounded = true);

  /// Repairs after the edge-cost mutations in `deltas` (g already carries
  /// the new costs; same preconditions as MetricClosure::refresh).  Deltas
  /// route to their owning domain, dirtied rows re-advertise and re-ship
  /// (charged), and the stitched closure repairs from the resulting mask
  /// deltas.  `changed` (optional) receives the stitched closure's
  /// RowDeltas — the pricing invalidation feed.  Unbounded builds only.
  void refresh(const Graph& g, std::span<const graph::EdgeCostDelta> deltas, int num_threads,
               MessageBus& bus, std::vector<graph::MetricClosure::RowDelta>* changed = nullptr);

  /// Adds rows for hubs not yet present (the session's churned-in sources).
  /// Owning domains grow local roots and targets, every root of an owning
  /// domain re-advertises toward the new hubs, freshly unmasked edges
  /// repair the stitched closure (RowDeltas appended to `changed`), and the
  /// new hub trees extend it.  Unbounded builds only.
  void extend(const Graph& g, const std::vector<NodeId>& hubs, int num_threads, MessageBus& bus,
              std::vector<graph::MetricClosure::RowDelta>* changed = nullptr);

  /// Drops stitched rows whose hub is not in `hubs`.  Local roots and their
  /// advertisements are kept warm (a returning hub costs no re-exchange);
  /// the mask only ever over-covers, which preserves exactness.
  void retain(const std::vector<NodeId>& hubs);

  /// The stitched global view SOFDA prices against.
  const graph::MetricClosure& closure() const noexcept { return stitched_; }
  const Partition& partition() const noexcept { return part_; }
  const Stats& stats() const noexcept { return stats_; }
  bool bounded() const noexcept { return bounded_; }

  /// Bytes held in closure rows across the deployment: every domain's
  /// local closure plus the stitched global view (each slab counted once
  /// per closure — the closures share no storage with each other).
  std::size_t memory_bytes() const;

  Cost distance(NodeId from, NodeId to) const { return stitched_.distance(from, to); }
  std::vector<NodeId> path(NodeId from, NodeId to) const { return stitched_.path(from, to); }

 private:
  struct DomainState {
    graph::MetricClosure local;
    std::vector<NodeId> roots;              // global ids, borders first then owned hubs
    std::vector<int> row_of_local;          // local node id -> row index, -1 otherwise
    std::vector<NodeId> targets_local;      // local ids: borders ∪ owned (hubs ∪ destinations)
    std::vector<char> is_target_local;      // local node id -> membership in targets_local
    std::vector<std::vector<EdgeId>> advert;  // per row: sorted global edge ids
    double build_seconds = 0.0;
  };

  void build_domain(int d, int inner_threads);
  std::vector<EdgeId> advertise_row(int d, NodeId root_global) const;
  /// Applies an advert edge-set change for one row: refcount moves plus
  /// first-touch recording of the edge's pre-refresh effective mask cost.
  void swap_row_advert(int d, int row, std::vector<EdgeId> fresh,
                       std::vector<std::pair<EdgeId, Cost>>& first_touch);

  Partition part_;
  DomainGraphs dg_;
  std::vector<DomainState> domains_;
  std::vector<int> ref_;       // global edge -> advertisement refcount (cross links: +1 base)
  Graph masked_;               // copy of g, non-advertised edges at kInfiniteCost
  graph::MetricClosure stitched_;
  std::vector<NodeId> hubs_;   // stitched hub list (global ids)
  std::vector<NodeId> dests_;  // extra settle targets of bounded stitches
  bool bounded_ = true;
  Stats stats_;
};

}  // namespace sofe::dist
