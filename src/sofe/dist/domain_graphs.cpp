#include "sofe/dist/domain_graphs.hpp"

#include <cassert>

namespace sofe::dist {

DomainGraphs::DomainGraphs(const Graph& g, const Partition& part) {
  const auto n = static_cast<std::size_t>(g.node_count());
  const int k = part.num_domains;
  assert(part.domain_of.size() == n);

  local_index.assign(n, -1);
  for (const auto& mem : part.members) {
    for (std::size_t i = 0; i < mem.size(); ++i) {
      local_index[static_cast<std::size_t>(mem[i])] = static_cast<int>(i);
    }
  }

  domains.resize(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    domains[static_cast<std::size_t>(d)].subgraph =
        Graph(static_cast<NodeId>(part.members[static_cast<std::size_t>(d)].size()));
  }
  edge_local.assign(static_cast<std::size_t>(g.edge_count()), graph::kInvalidEdge);
  const auto& edges = g.edges();
  for (std::size_t ei = 0; ei < edges.size(); ++ei) {
    const auto& e = edges[ei];
    const int du = part.domain_of[static_cast<std::size_t>(e.u)];
    if (du != part.domain_of[static_cast<std::size_t>(e.v)]) continue;
    auto& dom = domains[static_cast<std::size_t>(du)];
    edge_local[ei] = dom.subgraph.add_edge(static_cast<NodeId>(local(e.u)),
                                           static_cast<NodeId>(local(e.v)), e.cost);
    dom.edge_global.push_back(static_cast<EdgeId>(ei));
  }
}

}  // namespace sofe::dist
