#pragma once
// Per-domain subgraph materialization shared by the distributed components
// (Section VI).
//
// Both the distance oracle and the sharded closure need the same view of a
// partition: each controller owns the induced subgraph over its domain's
// members, with edge ids mapped both ways so global `EdgeCostDelta` batches
// can be routed to the owning domain and local shortest-path trees can be
// reported back in global edge ids.  DomainGraphs builds that view once —
// one pass over the global edge list — and both consumers share it.

#include <vector>

#include "sofe/dist/partition.hpp"
#include "sofe/graph/graph.hpp"

namespace sofe::dist {

struct DomainGraphs {
  struct Domain {
    // The domain's induced subgraph over local member indices (the graph a
    // controller actually owns); arc costs copied from the global graph,
    // edges in global insertion order so local CSR arc order mirrors the
    // global one restricted to intra-domain arcs.
    Graph subgraph;
    // Local edge id -> global edge id.
    std::vector<EdgeId> edge_global;
  };

  std::vector<int> local_index;   // node -> index within its domain's members
  std::vector<EdgeId> edge_local; // global edge id -> local id (kInvalidEdge for cross links)
  std::vector<Domain> domains;

  DomainGraphs() = default;
  DomainGraphs(const Graph& g, const Partition& part);

  int local(NodeId v) const { return local_index[static_cast<std::size_t>(v)]; }
};

}  // namespace sofe::dist
