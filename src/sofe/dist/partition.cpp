#include "sofe/dist/partition.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace sofe::dist {

namespace {

/// Hop distances from `source`, ignoring edge costs: controller placement is
/// a topology question (how many hops of the fabric a controller oversees),
/// not a routing one.
std::vector<int> hop_bfs(const Graph& g, NodeId source) {
  std::vector<int> dist(static_cast<std::size_t>(g.node_count()), -1);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const auto& arc : g.neighbors(v)) {
      auto& d = dist[static_cast<std::size_t>(arc.to)];
      if (d < 0) {
        d = dist[static_cast<std::size_t>(v)] + 1;
        q.push(arc.to);
      }
    }
  }
  return dist;
}

}  // namespace

Partition partition_bfs(const Graph& g, int k) {
  const NodeId n = g.node_count();
  assert(n > 0 && "cannot partition an empty graph");
  k = std::clamp(k, 1, static_cast<int>(n));

  // --- Seed placement: farthest-first traversal in the hop metric.  The
  // first controller sits at node 0; every next one claims the node farthest
  // from all chosen seats (ties break toward the smaller id), which spreads
  // the k seats across the diameter like a k-center heuristic.  A node no
  // seat can reach (disconnected graph) counts as infinitely far, so every
  // component is seeded before any component gets a second seat.
  const auto hop_or_inf = [](int d) {
    return d < 0 ? std::numeric_limits<int>::max() : d;
  };
  std::vector<NodeId> seeds{0};
  std::vector<int> nearest = hop_bfs(g, 0);
  while (static_cast<int>(seeds.size()) < k) {
    NodeId best = 0;
    for (NodeId v = 1; v < n; ++v) {
      if (hop_or_inf(nearest[static_cast<std::size_t>(v)]) >
          hop_or_inf(nearest[static_cast<std::size_t>(best)])) {
        best = v;
      }
    }
    assert(hop_or_inf(nearest[static_cast<std::size_t>(best)]) > 0 &&
           "farthest node is already a seed");
    seeds.push_back(best);
    const auto from_new = hop_bfs(g, best);
    for (NodeId v = 0; v < n; ++v) {
      nearest[static_cast<std::size_t>(v)] = std::min(
          hop_or_inf(nearest[static_cast<std::size_t>(v)]),
          hop_or_inf(from_new[static_cast<std::size_t>(v)]));
    }
  }

  // --- Synchronized multi-source BFS growth.  Every node is claimed through
  // a link from an already-claimed node of the same domain, so each domain is
  // a BFS tree: nonempty, connected in its induced subgraph.  FIFO order over
  // the seed list makes ties deterministic (earlier seed wins).
  Partition part;
  part.num_domains = k;
  part.domain_of.assign(static_cast<std::size_t>(n), -1);
  std::queue<NodeId> frontier;
  for (int d = 0; d < k; ++d) {
    part.domain_of[static_cast<std::size_t>(seeds[static_cast<std::size_t>(d)])] = d;
    frontier.push(seeds[static_cast<std::size_t>(d)]);
  }
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (const auto& arc : g.neighbors(v)) {
      auto& dom = part.domain_of[static_cast<std::size_t>(arc.to)];
      if (dom < 0) {
        dom = part.domain_of[static_cast<std::size_t>(v)];
        frontier.push(arc.to);
      }
    }
  }

  // Disconnected graph with fewer controllers than components: the loop
  // above left whole components unclaimed.  Hand each leftover component to
  // a domain round-robin so every node gets an owner in every build type —
  // those domains span components (the connectivity guarantee is only
  // attainable on a connected graph; see the header).
  int orphan_component = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (part.domain_of[static_cast<std::size_t>(v)] >= 0) continue;
    const int dom = orphan_component++ % k;
    part.domain_of[static_cast<std::size_t>(v)] = dom;
    frontier.push(v);
    while (!frontier.empty()) {
      const NodeId w = frontier.front();
      frontier.pop();
      for (const auto& arc : g.neighbors(w)) {
        auto& d2 = part.domain_of[static_cast<std::size_t>(arc.to)];
        if (d2 < 0) {
          d2 = dom;
          frontier.push(arc.to);
        }
      }
    }
  }

  part.members.resize(static_cast<std::size_t>(k));
  part.borders.resize(static_cast<std::size_t>(k));
  for (NodeId v = 0; v < n; ++v) {
    const int dom = part.domain_of[static_cast<std::size_t>(v)];
    part.members[static_cast<std::size_t>(dom)].push_back(v);
    for (const auto& arc : g.neighbors(v)) {
      if (part.domain_of[static_cast<std::size_t>(arc.to)] != dom) {
        part.borders[static_cast<std::size_t>(dom)].push_back(v);
        break;
      }
    }
  }
  return part;
}

}  // namespace sofe::dist
