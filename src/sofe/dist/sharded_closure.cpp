#include "sofe/dist/sharded_closure.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace sofe::dist {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

void ShardedClosure::build_domain(int d, int inner_threads) {
  const auto t0 = Clock::now();
  const auto du = static_cast<std::size_t>(d);
  const auto& dom = dg_.domains[du];
  auto& ds = domains_[du];
  const auto& members = part_.members[du];

  // Roots: the domain's borders (ascending, as partitioned) then the hubs it
  // owns, in hub-list order, deduplicated.
  ds.row_of_local.assign(members.size(), -1);
  const auto add_root = [&](NodeId global) {
    const int lv = dg_.local(global);
    if (ds.row_of_local[static_cast<std::size_t>(lv)] >= 0) return;
    ds.row_of_local[static_cast<std::size_t>(lv)] = static_cast<int>(ds.roots.size());
    ds.roots.push_back(global);
  };
  for (NodeId b : part_.borders[du]) add_root(b);
  for (NodeId h : hubs_) {
    if (part_.domain(h) == d) add_root(h);
  }

  // Settle targets: borders ∪ owned hubs ∪ owned destinations (local ids).
  ds.is_target_local.assign(members.size(), 0);
  const auto add_target = [&](NodeId global) {
    const auto lv = static_cast<std::size_t>(dg_.local(global));
    if (ds.is_target_local[lv]) return;
    ds.is_target_local[lv] = 1;
    ds.targets_local.push_back(static_cast<NodeId>(lv));
  };
  for (NodeId b : part_.borders[du]) add_target(b);
  for (NodeId h : hubs_) {
    if (part_.domain(h) == d) add_target(h);
  }
  for (NodeId t : dests_) {
    if (part_.domain(t) == d) add_target(t);
  }

  std::vector<NodeId> local_roots;
  local_roots.reserve(ds.roots.size());
  for (NodeId r : ds.roots) local_roots.push_back(static_cast<NodeId>(dg_.local(r)));

  graph::ClosureScope scope;
  if (bounded_) scope = {true, std::span<const NodeId>(ds.targets_local)};
  ds.local.build(dom.subgraph, local_roots, inner_threads, nullptr, scope);

  ds.advert.resize(ds.roots.size());
  for (std::size_t i = 0; i < ds.roots.size(); ++i) {
    ds.advert[i] = advertise_row(d, ds.roots[i]);
  }
  ds.build_seconds = seconds_since(t0);
}

std::vector<EdgeId> ShardedClosure::advertise_row(int d, NodeId root_global) const {
  const auto du = static_cast<std::size_t>(d);
  const auto& dom = dg_.domains[du];
  const auto& ds = domains_[du];
  const auto root_local = static_cast<NodeId>(dg_.local(root_global));
  const auto& t = ds.local.tree(root_local);

  std::vector<char> marked(static_cast<std::size_t>(dom.subgraph.edge_count()), 0);
  // Parent chains from every reachable target back to the root.  Chains to
  // the root share suffixes, so each walk stops at the first already-marked
  // parent edge.
  for (NodeId tl : ds.targets_local) {
    if (!t.reachable(tl)) continue;
    for (NodeId v = tl; t.parent[static_cast<std::size_t>(v)] != graph::kInvalidNode;
         v = t.parent[static_cast<std::size_t>(v)]) {
      const auto e = static_cast<std::size_t>(t.parent_edge[static_cast<std::size_t>(v)]);
      if (marked[e]) break;
      marked[e] = 1;
    }
  }
  // A root that is a zero-cost tap (the canonical VM attachment) advertises
  // its tap edge unconditionally, so the stitched build classifies it as a
  // tap exactly when the global build does, even when no target is
  // reachable from it.
  if (const auto arcs = dom.subgraph.neighbors(root_local);
      arcs.size() == 1 && dom.subgraph.edge(arcs[0].edge).cost == 0.0) {
    marked[static_cast<std::size_t>(arcs[0].edge)] = 1;
  }

  // Local edge ids map to global ids in insertion order, so scanning
  // ascending local ids yields a sorted global list for free.
  std::vector<EdgeId> out;
  for (std::size_t le = 0; le < marked.size(); ++le) {
    if (marked[le]) out.push_back(dom.edge_global[le]);
  }
  return out;
}

void ShardedClosure::swap_row_advert(int d, int row, std::vector<EdgeId> fresh,
                                     std::vector<std::pair<EdgeId, Cost>>& first_touch) {
  auto& advert = domains_[static_cast<std::size_t>(d)].advert[static_cast<std::size_t>(row)];
  const auto touch = [&](EdgeId e) {
    // Pre-change effective mask cost; masked_ still holds the pre-refresh
    // state here, so an advertised edge reads its old real cost.
    first_touch.emplace_back(e, ref_[static_cast<std::size_t>(e)] > 0
                                    ? masked_.edge(e).cost
                                    : graph::kInfiniteCost);
  };
  // Both vectors are sorted: one merge pass finds removals and additions.
  std::size_t i = 0, j = 0;
  while (i < advert.size() || j < fresh.size()) {
    if (j == fresh.size() || (i < advert.size() && advert[i] < fresh[j])) {
      touch(advert[i]);
      --ref_[static_cast<std::size_t>(advert[i])];
      ++i;
    } else if (i == advert.size() || fresh[j] < advert[i]) {
      touch(fresh[j]);
      ++ref_[static_cast<std::size_t>(fresh[j])];
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  advert = std::move(fresh);
}

void ShardedClosure::build(const Graph& g, Partition part, std::vector<NodeId> hubs,
                           std::span<const NodeId> destinations, int num_threads,
                           MessageBus& bus, bool bounded) {
  part_ = std::move(part);
  dg_ = DomainGraphs(g, part_);
  hubs_ = std::move(hubs);
  dests_.assign(destinations.begin(), destinations.end());
  bounded_ = bounded;
  stats_ = Stats{};
  const int k = part_.num_domains;
  stats_.domains = k;

  // All k controllers build their local closures in parallel: domains are
  // striped over min(threads, k) outer workers, each local MetricClosure
  // build getting the leftover inner threads.  Every worker writes only its
  // preassigned DomainState slots, so the result is bit-identical at any
  // thread count (as MetricClosure's own striping already is).
  domains_.clear();
  domains_.resize(static_cast<std::size_t>(k));
  const int outer = std::max(1, std::min(num_threads, k));
  if (outer > 1) {
    const int inner = std::max(1, num_threads / outer);
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(outer));
    for (int w = 0; w < outer; ++w) {
      workers.emplace_back([this, w, k, outer, inner] {
        for (int d = w; d < k; d += outer) build_domain(d, inner);
      });
    }
    for (auto& t : workers) t.join();
  } else {
    for (int d = 0; d < k; ++d) build_domain(d, num_threads);
  }
  for (const auto& ds : domains_) {
    stats_.local_build_seconds_total += ds.build_seconds;
    stats_.local_build_seconds_max = std::max(stats_.local_build_seconds_max, ds.build_seconds);
  }

  // Row exchange: non-coordinator controllers ship each row — its advertised
  // chain edges plus the per-target distance slots — to the coordinator.
  for (int d = 0; d < k; ++d) {
    const auto& ds = domains_[static_cast<std::size_t>(d)];
    for (const auto& row : ds.advert) {
      const std::size_t entries = row.size() + ds.targets_local.size();
      ++stats_.rows;
      stats_.entries += entries;
      if (d != 0) {
        bus.send(entries);
        ++stats_.exchanged_rows;
        stats_.exchanged_entries += entries;
        stats_.exchanged_bytes += entries * sizeof(Cost);
      }
    }
  }
  if (k > 1) {
    bus.end_round();
    stats_.exchange_rounds = 1;
  }

  // Stitch: mask every edge no advertisement mentions (cross links carry a
  // permanent base count — both endpoint controllers always see them) and
  // run the ordinary closure over the masked copy.
  ref_.assign(static_cast<std::size_t>(g.edge_count()), 0);
  for (std::size_t e = 0; e < ref_.size(); ++e) {
    if (dg_.edge_local[e] == graph::kInvalidEdge) ref_[e] = 1;
  }
  for (const auto& ds : domains_) {
    for (const auto& row : ds.advert) {
      for (EdgeId e : row) ++ref_[static_cast<std::size_t>(e)];
    }
  }
  const auto t0 = Clock::now();
  masked_ = g;
  for (std::size_t e = 0; e < ref_.size(); ++e) {
    if (ref_[e] == 0) {
      masked_.set_edge_cost(static_cast<EdgeId>(e), graph::kInfiniteCost);
    } else {
      ++stats_.skeleton_edges;
    }
  }
  graph::ClosureScope scope;
  if (bounded_) scope = {true, std::span<const NodeId>(dests_)};
  stitched_.build(masked_, hubs_, num_threads, nullptr, scope);
  stats_.stitch_seconds = seconds_since(t0);
}

void ShardedClosure::refresh(const Graph& g, std::span<const graph::EdgeCostDelta> deltas,
                             int num_threads, MessageBus& bus,
                             std::vector<graph::MetricClosure::RowDelta>* changed) {
  assert(!bounded_ && "bounded sharded closures are not repairable");
  const int k = part_.num_domains;

  // Route every delta to its owning domain; cross-link deltas have no owner
  // and hit the mask directly (their refcount base never drops).
  std::vector<std::pair<EdgeId, Cost>> first_touch;  // (edge, pre-refresh effective cost)
  std::vector<std::vector<graph::EdgeCostDelta>> local_deltas(static_cast<std::size_t>(k));
  for (const auto& dc : deltas) {
    const auto eu = static_cast<std::size_t>(dc.edge);
    first_touch.emplace_back(dc.edge,
                             ref_[eu] > 0 ? dc.old_cost : graph::kInfiniteCost);
    const EdgeId le = dg_.edge_local[eu];
    if (le == graph::kInvalidEdge) continue;
    const int dm = part_.domain(g.edge(dc.edge).u);
    local_deltas[static_cast<std::size_t>(dm)].push_back({le, dc.old_cost, dc.new_cost});
    dg_.domains[static_cast<std::size_t>(dm)].subgraph.set_edge_cost(le, dc.new_cost);
  }

  // Owning domains repair their local closures; only the dirtied rows
  // re-advertise, and only non-coordinator rows re-ship — the incremental
  // comms path.
  bool sent = false;
  std::vector<graph::MetricClosure::RowDelta> local_changed;
  for (int d = 0; d < k; ++d) {
    const auto du = static_cast<std::size_t>(d);
    if (local_deltas[du].empty()) continue;
    auto& ds = domains_[du];
    ds.local.refresh(dg_.domains[du].subgraph, local_deltas[du], num_threads, nullptr,
                     &local_changed);
    for (const auto& rc : local_changed) {
      const int row = ds.row_of_local[static_cast<std::size_t>(rc.hub)];
      assert(row >= 0 && "local refresh reported a non-root row");
      swap_row_advert(d, row, advertise_row(d, ds.roots[static_cast<std::size_t>(row)]),
                      first_touch);
      ++stats_.repaired_rows;
      const std::size_t entries =
          ds.advert[static_cast<std::size_t>(row)].size() + ds.targets_local.size();
      if (d != 0) {
        bus.send(entries);
        ++stats_.exchanged_rows;
        stats_.exchanged_entries += entries;
        stats_.exchanged_bytes += entries * sizeof(Cost);
        sent = true;
      }
    }
  }
  if (sent) {
    bus.end_round();
    ++stats_.exchange_rounds;
  }

  // Fold refcount moves and real cost changes into mask deltas (first
  // record per edge wins: it carries the pre-refresh effective cost).
  std::stable_sort(first_touch.begin(), first_touch.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<graph::EdgeCostDelta> mask_deltas;
  EdgeId last = graph::kInvalidEdge;
  for (const auto& [e, old_eff] : first_touch) {
    if (e == last) continue;
    last = e;
    const Cost now =
        ref_[static_cast<std::size_t>(e)] > 0 ? g.edge(e).cost : graph::kInfiniteCost;
    if (now != old_eff) {
      masked_.set_edge_cost(e, now);
      mask_deltas.push_back({e, old_eff, now});
    }
  }
  stats_.skeleton_edges = 0;
  for (int r : ref_) stats_.skeleton_edges += r > 0 ? 1 : 0;

  if (!mask_deltas.empty()) {
    const auto t0 = Clock::now();
    stitched_.refresh(masked_, mask_deltas, num_threads, nullptr, changed);
    stats_.stitch_seconds += seconds_since(t0);
  } else if (changed != nullptr) {
    changed->clear();
  }
}

void ShardedClosure::extend(const Graph& g, const std::vector<NodeId>& hubs, int num_threads,
                            MessageBus& bus,
                            std::vector<graph::MetricClosure::RowDelta>* changed) {
  assert(!bounded_ && "bounded sharded closures are not extendable");
  const int k = part_.num_domains;

  std::vector<NodeId> missing;
  for (NodeId h : hubs) {
    if (!stitched_.is_hub(h)) missing.push_back(h);
  }
  if (missing.empty()) return;

  std::vector<std::vector<NodeId>> new_hubs_of(static_cast<std::size_t>(k));
  for (NodeId h : missing) {
    new_hubs_of[static_cast<std::size_t>(part_.domain(h))].push_back(h);
  }

  std::vector<std::pair<EdgeId, Cost>> first_touch;
  bool sent = false;
  for (int d = 0; d < k; ++d) {
    const auto du = static_cast<std::size_t>(d);
    if (new_hubs_of[du].empty()) continue;
    auto& ds = domains_[du];

    // New local roots and targets for the hubs this domain now owns.  A hub
    // churning back in may already be a (warm) root — then nothing local
    // changes and no re-exchange is charged.
    std::vector<NodeId> new_root_locals;
    const std::size_t old_rows = ds.roots.size();
    bool new_targets = false;
    for (NodeId h : new_hubs_of[du]) {
      const auto lv = static_cast<std::size_t>(dg_.local(h));
      if (ds.row_of_local[lv] < 0) {
        ds.row_of_local[lv] = static_cast<int>(ds.roots.size());
        ds.roots.push_back(h);
        new_root_locals.push_back(static_cast<NodeId>(lv));
      }
      if (!ds.is_target_local[lv]) {
        ds.is_target_local[lv] = 1;
        ds.targets_local.push_back(static_cast<NodeId>(lv));
        new_targets = true;
      }
    }
    if (!new_root_locals.empty()) {
      ds.local.extend(dg_.domains[du].subgraph, new_root_locals, num_threads);
      ds.advert.resize(ds.roots.size());
    }

    // Every pre-existing root must now also advertise its chains toward the
    // new targets (the final segment of any global chain into a new hub
    // enters this domain at one of these roots); only the appended entries
    // ship.  New rows advertise — and ship — in full.
    for (std::size_t row = 0; row < ds.roots.size(); ++row) {
      const bool fresh_row = row >= old_rows;
      if (!fresh_row && !new_targets) continue;
      const std::size_t before = fresh_row ? 0 : ds.advert[row].size();
      swap_row_advert(d, static_cast<int>(row), advertise_row(d, ds.roots[row]), first_touch);
      const std::size_t appended = ds.advert[row].size() - before;
      const std::size_t entries =
          fresh_row ? ds.advert[row].size() + ds.targets_local.size()
                    : appended + new_hubs_of[du].size();
      ++stats_.repaired_rows;
      if (fresh_row) {
        ++stats_.rows;
        stats_.entries += entries;
      }
      if (d != 0) {
        bus.send(entries);
        ++stats_.exchanged_rows;
        stats_.exchanged_entries += entries;
        stats_.exchanged_bytes += entries * sizeof(Cost);
        sent = true;
      }
    }
  }
  if (sent) {
    bus.end_round();
    ++stats_.exchange_rounds;
  }

  // Freshly advertised edges flip from masked to real — legal deltas for
  // the stitched repair — then the new hub rows extend the stitched view.
  std::stable_sort(first_touch.begin(), first_touch.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<graph::EdgeCostDelta> mask_deltas;
  EdgeId last = graph::kInvalidEdge;
  for (const auto& [e, old_eff] : first_touch) {
    if (e == last) continue;
    last = e;
    const Cost now =
        ref_[static_cast<std::size_t>(e)] > 0 ? g.edge(e).cost : graph::kInfiniteCost;
    if (now != old_eff) {
      masked_.set_edge_cost(e, now);
      mask_deltas.push_back({e, old_eff, now});
    }
  }
  stats_.skeleton_edges = 0;
  for (int r : ref_) stats_.skeleton_edges += r > 0 ? 1 : 0;

  hubs_.insert(hubs_.end(), missing.begin(), missing.end());
  const auto t0 = Clock::now();
  if (!mask_deltas.empty()) {
    std::vector<graph::MetricClosure::RowDelta> flips;
    stitched_.refresh(masked_, mask_deltas, num_threads, nullptr,
                      changed != nullptr ? &flips : nullptr);
    if (changed != nullptr) {
      changed->insert(changed->end(), std::make_move_iterator(flips.begin()),
                      std::make_move_iterator(flips.end()));
    }
  }
  stitched_.extend(masked_, hubs_, num_threads);
  stats_.stitch_seconds += seconds_since(t0);
}

void ShardedClosure::retain(const std::vector<NodeId>& hubs) {
  stitched_.retain(hubs);
  std::unordered_set<NodeId> keep(hubs.begin(), hubs.end());
  std::erase_if(hubs_, [&](NodeId h) { return keep.find(h) == keep.end(); });
}

std::size_t ShardedClosure::memory_bytes() const {
  std::size_t bytes = stitched_.memory_bytes();
  for (const DomainState& ds : domains_) bytes += ds.local.memory_bytes();
  return bytes;
}

}  // namespace sofe::dist
