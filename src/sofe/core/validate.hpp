#pragma once
// Feasibility validation of a ServiceForest against a Problem.
//
// Mirrors the IP constraints of Section III-A: one served walk per
// destination rooted at a source (1), |C| VMs in order (2), destination
// terminal (3)-(4), and at most one VNF per VM across the whole forest
// (5)-(6).  Routing constraints (7)-(8) are enforced structurally: every
// consecutive walk pair must be a real link of G.

#include <string>
#include <vector>

#include "sofe/core/forest.hpp"
#include "sofe/core/problem.hpp"

namespace sofe::core {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string msg) {
    ok = false;
    errors.push_back(std::move(msg));
  }

  /// All error messages joined; empty when ok.
  std::string summary() const;
};

/// Full feasibility check.  `forest` is feasible iff the report's ok flag is
/// set; every violated requirement adds one human-readable error.
ValidationReport validate(const Problem& p, const ServiceForest& forest);

/// Convenience wrapper for tests.
inline bool is_feasible(const Problem& p, const ServiceForest& forest) {
  return validate(p, forest).ok;
}

}  // namespace sofe::core
