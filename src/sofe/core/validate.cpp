#include "sofe/core/validate.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace sofe::core {

std::string ValidationReport::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) os << "; ";
    os << errors[i];
  }
  return os.str();
}

ValidationReport validate(const Problem& p, const ServiceForest& forest) {
  ValidationReport r;
  if (!p.well_formed()) {
    r.fail("problem instance is malformed");
    return r;
  }
  const auto chain = static_cast<std::size_t>(p.chain_length);

  // Constraint (1)/(3): exactly one walk per destination.
  std::map<NodeId, int> walk_count;
  for (const ChainWalk& w : forest.walks) ++walk_count[w.destination];
  for (NodeId d : p.destinations) {
    const auto it = walk_count.find(d);
    if (it == walk_count.end()) {
      r.fail("destination " + std::to_string(d) + " is not served");
    } else if (it->second != 1) {
      r.fail("destination " + std::to_string(d) + " served by " +
             std::to_string(it->second) + " walks");
    }
  }
  const std::set<NodeId> dest_set(p.destinations.begin(), p.destinations.end());
  for (const ChainWalk& w : forest.walks) {
    if (!dest_set.contains(w.destination)) {
      r.fail("walk serves non-destination " + std::to_string(w.destination));
    }
  }

  const std::set<NodeId> source_set(p.sources.begin(), p.sources.end());
  std::map<NodeId, int> enabled;  // VM -> 1-based VNF index (constraint (6))

  for (const ChainWalk& w : forest.walks) {
    const std::string tag = "walk to " + std::to_string(w.destination);
    if (w.nodes.empty()) {
      r.fail(tag + ": empty node sequence");
      continue;
    }
    // Endpoints.
    if (!source_set.contains(w.source)) {
      r.fail(tag + ": source " + std::to_string(w.source) + " not in S");
    }
    if (w.nodes.front() != w.source) {
      r.fail(tag + ": does not start at its source");
    }
    if (w.nodes.back() != w.destination) {
      r.fail(tag + ": does not end at its destination");
    }
    // Adjacency (routing constraints (7)-(8) structurally).
    for (std::size_t i = 0; i + 1 < w.nodes.size(); ++i) {
      if (w.nodes[i] == w.nodes[i + 1]) {
        r.fail(tag + ": repeated node at step " + std::to_string(i));
        continue;
      }
      if (p.network.find_edge(w.nodes[i], w.nodes[i + 1]) == graph::kInvalidEdge) {
        r.fail(tag + ": no link between " + std::to_string(w.nodes[i]) + " and " +
               std::to_string(w.nodes[i + 1]));
      }
    }
    // Constraint (2): |C| VMs in strictly increasing walk positions.
    if (w.vnf_pos.size() != chain) {
      r.fail(tag + ": expected " + std::to_string(chain) + " VNFs, found " +
             std::to_string(w.vnf_pos.size()));
      continue;
    }
    for (std::size_t j = 0; j < w.vnf_pos.size(); ++j) {
      const std::size_t pos = w.vnf_pos[j];
      if (pos >= w.nodes.size()) {
        r.fail(tag + ": VNF position out of range");
        continue;
      }
      if (j > 0 && w.vnf_pos[j - 1] >= pos) {
        r.fail(tag + ": VNF positions not strictly increasing");
      }
      const NodeId vm = w.nodes[pos];
      if (!p.is_vm[static_cast<std::size_t>(vm)]) {
        r.fail(tag + ": f" + std::to_string(j + 1) + " placed on non-VM node " +
               std::to_string(vm));
        continue;
      }
      // Constraints (5)-(6): one VNF per VM across the forest.
      const int idx = static_cast<int>(j) + 1;
      const auto [it, inserted] = enabled.emplace(vm, idx);
      if (!inserted && it->second != idx) {
        r.fail("VNF conflict: VM " + std::to_string(vm) + " assigned f" +
               std::to_string(it->second) + " and f" + std::to_string(idx));
      }
    }
    // A chain must also use distinct VMs within one walk (a VM cannot run two
    // VNFs, even for the same destination).
    std::set<NodeId> seen;
    for (std::size_t pos : w.vnf_pos) {
      if (pos < w.nodes.size() && !seen.insert(w.nodes[pos]).second) {
        r.fail(tag + ": the same VM runs two VNFs of one chain");
      }
    }
  }
  return r;
}

}  // namespace sofe::core
