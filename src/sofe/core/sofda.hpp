#pragma once
// SOFDA (Algorithm 2): the 3ρST-approximation for the general SOF problem
// with multiple sources (Section V).
//
// Pipeline:
//   1. price every candidate service chain (source v -> last VM u) by a
//      (|C|+1)-stroll on the Procedure-1 metric instance;
//   2. build the auxiliary Steiner instance Ĝ (Procedure 3): a virtual
//      source ŝ, zero-cost edges to source duplicates v̂, virtual edges
//      (v̂, û) priced by the chains, and zero-cost edges û -> u;
//   3. find a Steiner tree over {ŝ} ∪ D (cost ≤ 3ρST · OPT by Lemma 2);
//   4. deploy the chain of every selected virtual edge, resolving VNF
//      conflicts (Procedure 4) without adding links or enabling new VMs;
//   5. route each destination along T ∩ G from its chain's last VM.

#include "sofe/core/chain_walk.hpp"
#include "sofe/core/conflict.hpp"
#include "sofe/core/forest.hpp"

namespace sofe::core {

struct SofdaStats {
  ConflictStats conflicts;
  int candidate_chains = 0;   // feasible (source, last VM) pairs priced
  int deployed_chains = 0;    // virtual edges selected by the Steiner tree
  int rehomed_destinations = 0;  // served via the drop-fallback (0 in practice)
  Cost steiner_tree_cost = 0.0;  // cost of T in Ĝ (the 3ρST·OPT certificate)
};

/// Runs SOFDA.  Returns an empty forest when the instance is infeasible
/// (no destinations, or no source can reach a full chain and a destination).
ServiceForest sofda(const Problem& p, const AlgoOptions& opt = {},
                    SofdaStats* stats = nullptr);

}  // namespace sofe::core
