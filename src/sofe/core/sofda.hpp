#pragma once
// SOFDA (Algorithm 2): the 3ρST-approximation for the general SOF problem
// with multiple sources (Section V).
//
// Pipeline:
//   1. price every candidate service chain (source v -> last VM u) by a
//      (|C|+1)-stroll on the Procedure-1 metric instance;
//   2. build the auxiliary Steiner instance Ĝ (Procedure 3): a virtual
//      source ŝ, zero-cost edges to source duplicates v̂, virtual edges
//      (v̂, û) priced by the chains, and zero-cost edges û -> u;
//   3. find a Steiner tree over {ŝ} ∪ D (cost ≤ 3ρST · OPT by Lemma 2);
//   4. deploy the chain of every selected virtual edge, resolving VNF
//      conflicts (Procedure 4) without adding links or enabling new VMs;
//   5. route each destination along T ∩ G from its chain's last VM.

#include "sofe/core/chain_walk.hpp"
#include "sofe/core/conflict.hpp"
#include "sofe/core/forest.hpp"

namespace sofe::core {

class PricingSession;   // pricing.hpp: the repair-aware chain cache (DESIGN.md §9)
struct ClosureUpdate;   //   what changed in the closure since its last price()
struct PricingTally;    //   per-call hit/reprice counters

struct SofdaStats {
  ConflictStats conflicts;
  int candidate_chains = 0;   // feasible (source, last VM) pairs priced
  int deployed_chains = 0;    // virtual edges selected by the Steiner tree
  int rehomed_destinations = 0;  // served via the drop-fallback (0 in practice)
  Cost steiner_tree_cost = 0.0;  // cost of T in Ĝ (the 3ρST·OPT certificate)
};

/// Runs SOFDA.  Returns an empty forest when the instance is infeasible
/// (no destinations, or no source can reach a full chain and a destination).
/// A non-null `pricing` prices through the session cache with a
/// conservative rebuilt() update (this one-shot builds a fresh closure, so
/// every chain re-prices — the session's value here is the shared-block
/// assembly and API uniformity; persistent reuse lives in api::Solver).
ServiceForest sofda(const Problem& p, const AlgoOptions& opt = {},
                    SofdaStats* stats = nullptr, PricingSession* pricing = nullptr);

/// One priced candidate service chain: a feasible (source, last VM) pair and
/// its Procedure-2 walk plan.  The unit of exchange between controllers in
/// the multi-controller pipeline (Section VI).
struct PricedChain {
  NodeId source = graph::kInvalidNode;
  NodeId last_vm = graph::kInvalidNode;
  ChainPlan plan;
};

/// Step 1 of SOFDA exposed as a standalone phase: prices every feasible
/// (source, last VM) chain for the given sources.  Sources are deduplicated
/// and processed in ascending order, so candidates come back in canonical
/// (source, last_vm) order regardless of the caller's grouping — merging the
/// outputs of several calls over disjoint source sets and sorting by
/// (source, last_vm) reproduces exactly what one call over the union yields.
/// `closure` must hold Dijkstra trees for every source and every VM.
///
/// `num_threads` > 1 prices sources in parallel: pricing is embarrassingly
/// parallel over sources (each k-stroll reads only the shared, read-only
/// closure), so sources are striped over workers and each source's
/// candidates land in a preassigned bucket; concatenating the buckets in
/// ascending-source order reproduces the serial output bit for bit at any
/// thread count (tested).  Values < 1 are clamped to 1.
///
/// A non-null `session` routes the call through the repair-aware
/// PricedChain cache (pricing.hpp, DESIGN.md §9): chains whose closure
/// rows survived `update` (rebuilt() when null — always sound) are served
/// from cache, the rest re-price through the shared-block assembly.
/// Output is bitwise identical either way; `tally` receives the
/// hit/reprice counts.  api::SofdaSolver threads its per-solve
/// ClosureSession outcome through here so pricing state persists across
/// online::simulate arrivals.
std::vector<PricedChain> price_candidate_chains(const Problem& p,
                                                const graph::MetricClosure& closure,
                                                const std::vector<NodeId>& sources,
                                                const AlgoOptions& opt = {},
                                                int num_threads = 1,
                                                PricingSession* session = nullptr,
                                                const ClosureUpdate* update = nullptr,
                                                PricingTally* tally = nullptr);

/// Coordinator-side merge of per-controller pricing outputs: restores the
/// canonical (source, last_vm) order a single price_candidate_chains call
/// over the union of the source sets emits.  Because each per-controller
/// call already emits canonically and the controllers' source sets are
/// disjoint, merging then feeding sofda_from_candidates reproduces the
/// centralized run bit for bit — the distributed driver's certificate
/// argument rests on this.
void merge_priced_chains(std::vector<PricedChain>& chains);

/// Steps 2-5 of SOFDA (auxiliary graph, Steiner tree, deployment, walks)
/// given already-priced candidates in canonical (source, last_vm) order.
/// `closure` must hold trees for every candidate's last VM (used by the
/// drop-fallback re-homing).  Requires chain_length >= 1.
ServiceForest sofda_from_candidates(const Problem& p, const graph::MetricClosure& closure,
                                    const std::vector<PricedChain>& candidates,
                                    const AlgoOptions& opt = {}, SofdaStats* stats = nullptr);

}  // namespace sofe::core
