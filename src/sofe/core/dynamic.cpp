#include "sofe/core/dynamic.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "sofe/kstroll/instance.hpp"

namespace sofe::core {

namespace {

/// Splices `mid` (a path a..b, inclusive) into walk `w`, replacing positions
/// [a_pos, b_pos].  VNF positions shift accordingly; positions strictly
/// inside the replaced span must have been cleared by the caller.
void splice_segment(ChainWalk& w, std::size_t a_pos, std::size_t b_pos,
                    const std::vector<NodeId>& mid) {
  assert(a_pos < b_pos && b_pos < w.nodes.size());
  assert(mid.front() == w.nodes[a_pos] && mid.back() == w.nodes[b_pos]);
  const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(a_pos + mid.size() - 1) -
                               static_cast<std::ptrdiff_t>(b_pos);
  std::vector<NodeId> nodes(w.nodes.begin(), w.nodes.begin() + static_cast<std::ptrdiff_t>(a_pos));
  nodes.insert(nodes.end(), mid.begin(), mid.end());
  nodes.insert(nodes.end(), w.nodes.begin() + static_cast<std::ptrdiff_t>(b_pos) + 1,
               w.nodes.end());
  w.nodes = std::move(nodes);
  for (std::size_t& pos : w.vnf_pos) {
    assert(pos <= a_pos || pos >= b_pos);
    if (pos >= b_pos) pos = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(pos) + shift);
  }
}

}  // namespace

const graph::ShortestPathTree& DynamicForest::paths_from(NodeId from) {
  // Rebind after construction or a move, and drop every cached tree when the
  // network mutated since it was built (edge-cost updates included —
  // Graph::version() covers set_edge_cost, add_edge and add_node).
  if (engine_.graph() != &p_.network || cache_version_ != p_.network.version()) {
    engine_.attach(p_.network);
    path_cache_.clear();
    cache_version_ = p_.network.version();
  }
  auto it = path_cache_.find(from);
  if (it == path_cache_.end()) {
    it = path_cache_.emplace(from, graph::ShortestPathTree{}).first;
    engine_.run_into(from, it->second);
  }
  return it->second;
}

bool DynamicForest::destination_leave(NodeId d) {
  const auto before = f_.walks.size();
  std::erase_if(f_.walks, [d](const ChainWalk& w) { return w.destination == d; });
  std::erase(p_.destinations, d);
  return f_.walks.size() != before;
}

bool DynamicForest::destination_join(NodeId d, const AlgoOptions& opt) {
  if (std::find(p_.destinations.begin(), p_.destinations.end(), d) != p_.destinations.end()) {
    return false;  // already served
  }
  const int chain = p_.chain_length;
  const auto enabled = f_.enabled_vms();
  std::vector<NodeId> fresh_vms;
  for (NodeId v : p_.vms()) {
    if (!enabled.contains(v)) fresh_vms.push_back(v);
  }

  struct Attachment {
    Cost cost = graph::kInfiniteCost;
    std::size_t walk = 0;
    std::size_t pos = 0;             // attachment position within the walk
    std::vector<NodeId> completion;  // nodes after the attachment point
    std::vector<std::size_t> completion_slots;  // positions within completion
  };
  Attachment best;

  // Candidate attachment points: every (walk, position) pair, deduplicated by
  // (node, #VNFs applied) since the completion cost only depends on those.
  struct Candidate {
    std::size_t walk;
    std::size_t pos;
    NodeId node;
    int remaining;  // VNFs still to install past this attachment point
  };
  std::vector<Candidate> cands;
  std::set<std::pair<NodeId, int>> seen;
  for (std::size_t wi = 0; wi < f_.walks.size(); ++wi) {
    const ChainWalk& w = f_.walks[wi];
    for (std::size_t i = 0; i < w.nodes.size(); ++i) {
      const int fu = w.stage_at(i);  // VNFs applied at/before position i
      if (!seen.insert({w.nodes[i], fu}).second) continue;
      cands.push_back(Candidate{wi, i, w.nodes[i], chain - fu});
    }
  }

  // One closure for the whole join: trees for every fresh VM plus every
  // attachment point that needs a completion chain.  Each hub tree is an
  // independent Dijkstra, so pooling candidates changes nothing in any
  // tree — and VM taps (the canonical zero-cost access links) are derived,
  // not recomputed, making the join cost one Dijkstra per distinct host
  // instead of O(candidates · fresh VMs) full runs.  Every query below is
  // hub-to-hub (reachability, stroll pricing, path lifting; the suffix to
  // the destination rides paths_from), so the build is BOUNDED: each run
  // stops once all hubs are settled.  The closure object persists on the
  // DynamicForest so consecutive joins reuse its tree storage.
  graph::MetricClosure& closure = join_closure_;
  bool have_closure = false;
  if (static_cast<int>(fresh_vms.size()) >= 1) {
    std::vector<NodeId> hubs = fresh_vms;
    for (const Candidate& c : cands) {
      if (c.remaining > 0 && static_cast<int>(fresh_vms.size()) >= c.remaining) {
        hubs.push_back(c.node);
        have_closure = true;
      }
    }
    if (have_closure) {
      closure.build(p_.network, hubs, 1, &engine_, graph::ClosureScope{/*bounded=*/true, {}});
    }
  }

  for (const Candidate& cand : cands) {
    const NodeId u = cand.node;

    if (cand.remaining == 0) {
      const auto& sp_u = paths_from(u);
      if (!sp_u.reachable(d) || u == d) continue;
      const Cost c = sp_u.distance(d);
      if (c < best.cost) {
        auto tail = sp_u.path_to(d);
        tail.erase(tail.begin());  // completion excludes the attachment node
        best = Attachment{c, cand.walk, cand.pos, std::move(tail), {}};
      }
      continue;
    }
    if (static_cast<int>(fresh_vms.size()) < cand.remaining) continue;
    assert(have_closure);
    // Completion chain: k-stroll from u through `remaining` fresh VMs to a
    // last VM u2, then the shortest path u2 -> d.
    for (NodeId u2 : fresh_vms) {
      if (u2 == u || !closure.tree(u).reachable(u2)) continue;
      const auto inst = kstroll::build_stroll_instance(p_.network, closure, u, fresh_vms, u2,
                                                       p_.node_cost);
      const auto stroll = kstroll::solve_stroll(inst, cand.remaining + 1, opt.stroll);
      if (!stroll.feasible()) continue;
      const auto& sp_u2 = paths_from(u2);
      if (!sp_u2.reachable(d)) continue;
      const Cost c = stroll.cost + sp_u2.distance(d);
      if (c >= best.cost) continue;

      Attachment a;
      a.cost = c;
      a.walk = cand.walk;
      a.pos = cand.pos;
      for (std::size_t s = 0; s + 1 < stroll.order.size(); ++s) {
        const auto path = closure.path(inst.nodes[stroll.order[s]],
                                       inst.nodes[stroll.order[s + 1]]);
        a.completion.insert(a.completion.end(), path.begin() + 1, path.end());
        a.completion_slots.push_back(a.completion.size() - 1);
      }
      const auto suffix = sp_u2.path_to(d);
      a.completion.insert(a.completion.end(), suffix.begin() + 1, suffix.end());
      best = std::move(a);
    }
  }
  if (best.cost == graph::kInfiniteCost) return false;

  const ChainWalk& host = f_.walks[best.walk];
  ChainWalk w;
  w.source = host.source;
  w.destination = d;
  w.nodes.assign(host.nodes.begin(), host.nodes.begin() + static_cast<std::ptrdiff_t>(best.pos) + 1);
  for (std::size_t pos : host.vnf_pos) {
    if (pos <= best.pos) w.vnf_pos.push_back(pos);
  }
  const std::size_t offset = w.nodes.size();
  w.nodes.insert(w.nodes.end(), best.completion.begin(), best.completion.end());
  for (std::size_t rel : best.completion_slots) w.vnf_pos.push_back(offset + rel);
  assert(w.vnf_pos.size() == static_cast<std::size_t>(chain));

  f_.walks.push_back(std::move(w));
  p_.destinations.push_back(d);
  return true;
}

bool DynamicForest::vnf_delete(int j) {
  if (j < 1 || j > p_.chain_length) return false;
  for (ChainWalk& w : f_.walks) {
    assert(w.vnf_pos.size() == static_cast<std::size_t>(p_.chain_length));
    w.vnf_pos.erase(w.vnf_pos.begin() + (j - 1));
  }
  --p_.chain_length;
  // The deleted VM is now pass-through; shortcut it where globally cheaper
  // (the paper's reconnect-upstream-to-downstream rule).
  shorten_pass_through(p_, f_);
  return true;
}

bool DynamicForest::vnf_insert(int j, const AlgoOptions& opt) {
  (void)opt;
  if (j < 1 || j > p_.chain_length + 1) return false;
  const auto enabled = f_.enabled_vms();
  std::vector<NodeId> available;
  for (NodeId v : p_.vms()) {
    if (!enabled.contains(v)) available.push_back(v);
  }
  if (available.empty() && !f_.walks.empty()) return false;

  // VMs already picked for the new f_j by earlier walks may be shared.
  std::set<NodeId> chosen;
  for (ChainWalk& w : f_.walks) {
    // Anchors: upstream = f_{j-1} (or walk start), downstream = old f_j (or
    // walk end).
    const std::size_t a_pos = j >= 2 ? w.vnf_pos[static_cast<std::size_t>(j) - 2] : 0;
    const std::size_t b_pos = static_cast<std::size_t>(j) <= w.vnf_pos.size()
                                  ? w.vnf_pos[static_cast<std::size_t>(j) - 1]
                                  : w.nodes.size() - 1;
    const NodeId a = w.nodes[a_pos];
    const NodeId b = w.nodes[b_pos];
    const auto& sp_a = paths_from(a);

    NodeId pick = graph::kInvalidNode;
    Cost pick_cost = graph::kInfiniteCost;
    auto consider = [&](NodeId v) {
      if (v == a || !sp_a.reachable(v)) return;
      const auto& sp_v = paths_from(v);
      if (!sp_v.reachable(b)) return;
      // d(a,v) + c(v) + d(v,b); a shared pick's setup is already paid.
      const Cost setup = chosen.contains(v) ? 0.0 : p_.node_cost[static_cast<std::size_t>(v)];
      const Cost c = sp_a.distance(v) + setup + sp_v.distance(b);
      if (c < pick_cost) {
        pick_cost = c;
        pick = v;
      }
    };
    for (NodeId v : available) consider(v);
    for (NodeId v : chosen) consider(v);
    if (pick == graph::kInvalidNode) return false;
    chosen.insert(pick);

    // Clear any old slots strictly inside (a_pos, b_pos): impossible since
    // anchors are consecutive essential positions.  Build detour a→v→b.
    std::vector<NodeId> mid = paths_from(a).path_to(pick);
    const auto back = paths_from(pick).path_to(b);
    const std::size_t vm_rel = mid.size() - 1;
    mid.insert(mid.end(), back.begin() + 1, back.end());
    if (a_pos == b_pos) {
      // Degenerate: inserting past the end anchor when the walk ends at the
      // anchor (destination == upstream VM position).  Append instead.
      const std::size_t off = w.nodes.size() - 1;
      w.nodes.insert(w.nodes.end(), mid.begin() + 1, mid.end());
      w.vnf_pos.insert(w.vnf_pos.begin() + (j - 1), off + vm_rel);
    } else {
      splice_segment(w, a_pos, b_pos, mid);
      w.vnf_pos.insert(w.vnf_pos.begin() + (j - 1), a_pos + vm_rel);
      std::sort(w.vnf_pos.begin(), w.vnf_pos.end());
    }
  }
  ++p_.chain_length;
  return true;
}

int DynamicForest::reroute_link(EdgeId e, Cost new_cost) {
  const Cost old_cost = p_.network.edge(e).cost;
  p_.network.set_edge_cost(e, new_cost);  // bumps version()
  // Repair every cached tree in place instead of letting the version bump
  // flush the cache: one congested link is exactly the delta the engine's
  // incremental mode is built for, and the re-route scan below queries
  // trees from many anchors.  Requires the cache to have been current
  // before the mutation (cache_version_ + 1) and the engine to be bound to
  // this problem's network; otherwise paths_from's self-invalidation takes
  // over as before.
  if (engine_.graph() == &p_.network && cache_version_ + 1 == p_.network.version()) {
    if (new_cost != old_cost) {
      const graph::EdgeCostDelta delta{e, old_cost, new_cost};
      for (auto& [root, tree] : path_cache_) {
        (void)root;
        engine_.repair(tree, {&delta, 1});
      }
    }
    cache_version_ = p_.network.version();
  }
  const NodeId eu = p_.network.edge(e).u;
  const NodeId ev = p_.network.edge(e).v;

  int rerouted = 0;
  Cost best = total_cost(p_, f_);
  for (ChainWalk& w : f_.walks) {
    // Essential anchors: start, VNF slots, end.
    std::vector<std::size_t> anchors{0};
    anchors.insert(anchors.end(), w.vnf_pos.begin(), w.vnf_pos.end());
    if (anchors.back() != w.nodes.size() - 1) anchors.push_back(w.nodes.size() - 1);

    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t k = 0; k + 1 < anchors.size(); ++k) {
        const std::size_t a = anchors[k];
        const std::size_t b = anchors[k + 1];
        bool crosses = false;
        for (std::size_t i = a; i < b; ++i) {
          if ((w.nodes[i] == eu && w.nodes[i + 1] == ev) ||
              (w.nodes[i] == ev && w.nodes[i + 1] == eu)) {
            crosses = true;
            break;
          }
        }
        if (!crosses) continue;
        const auto& sp = paths_from(w.nodes[a]);
        if (!sp.reachable(w.nodes[b])) continue;
        const auto mid = sp.path_to(w.nodes[b]);
        if (b == a + static_cast<std::size_t>(mid.size()) - 1 &&
            std::equal(mid.begin(), mid.end(),
                       w.nodes.begin() + static_cast<std::ptrdiff_t>(a))) {
          continue;  // already the cheapest segment
        }
        // Splice tentatively: a per-walk shortest path can still lose
        // forest-wide when it abandons segments shared with other walks.
        ChainWalk saved = w;
        splice_segment(w, a, b, mid);
        const Cost now = total_cost(p_, f_);
        if (now > best + 1e-12) {
          w = std::move(saved);
          continue;
        }
        best = now;
        ++rerouted;
        // Re-derive anchors after the splice and restart this walk's scan.
        anchors.assign(1, 0);
        anchors.insert(anchors.end(), w.vnf_pos.begin(), w.vnf_pos.end());
        if (anchors.back() != w.nodes.size() - 1) anchors.push_back(w.nodes.size() - 1);
        changed = true;
        break;
      }
    }
  }
  return rerouted;
}

bool DynamicForest::migrate_vm(NodeId v, Cost new_cost, const AlgoOptions& opt) {
  (void)opt;
  assert(p_.is_vm[static_cast<std::size_t>(v)]);
  p_.node_cost[static_cast<std::size_t>(v)] = new_cost;
  const auto enabled = f_.enabled_vms();
  const auto it = enabled.find(v);
  if (it == enabled.end()) return true;  // not in use; nothing to migrate
  const int j = it->second;

  std::vector<NodeId> available;
  for (NodeId cand : p_.vms()) {
    if (cand != v && !enabled.contains(cand)) available.push_back(cand);
  }
  if (available.empty()) return false;

  // Choose the replacement minimizing the total detour over affected walks.
  struct Affected {
    std::size_t walk;
    std::size_t a_pos, v_pos, b_pos;
  };
  std::vector<Affected> affected;
  for (std::size_t wi = 0; wi < f_.walks.size(); ++wi) {
    ChainWalk& w = f_.walks[wi];
    const std::size_t slot = static_cast<std::size_t>(j) - 1;
    if (slot >= w.vnf_pos.size() || w.nodes[w.vnf_pos[slot]] != v) continue;
    const std::size_t v_pos = w.vnf_pos[slot];
    const std::size_t a_pos = slot > 0 ? w.vnf_pos[slot - 1] : 0;
    const std::size_t b_pos =
        slot + 1 < w.vnf_pos.size() ? w.vnf_pos[slot + 1] : w.nodes.size() - 1;
    affected.push_back(Affected{wi, a_pos, v_pos, b_pos});
  }
  if (affected.empty()) return true;

  NodeId pick = graph::kInvalidNode;
  Cost pick_cost = graph::kInfiniteCost;
  for (NodeId cand : available) {
    Cost total = p_.node_cost[static_cast<std::size_t>(cand)];
    bool ok = true;
    for (const Affected& af : affected) {
      const ChainWalk& w = f_.walks[af.walk];
      const auto& sp_a = paths_from(w.nodes[af.a_pos]);
      const auto& sp_c = paths_from(cand);
      if (!sp_a.reachable(cand) || !sp_c.reachable(w.nodes[af.b_pos])) {
        ok = false;
        break;
      }
      total += sp_a.distance(cand) + sp_c.distance(w.nodes[af.b_pos]);
    }
    if (ok && total < pick_cost) {
      pick_cost = total;
      pick = cand;
    }
  }
  if (pick == graph::kInvalidNode) return false;

  for (const Affected& af : affected) {
    ChainWalk& w = f_.walks[af.walk];
    // Re-locate positions (earlier splices shift them); anchors are stable
    // relative to slots.
    const std::size_t slot = static_cast<std::size_t>(j) - 1;
    const std::size_t a_pos = slot > 0 ? w.vnf_pos[slot - 1] : 0;
    const std::size_t b_pos =
        slot + 1 < w.vnf_pos.size() ? w.vnf_pos[slot + 1] : w.nodes.size() - 1;
    std::vector<NodeId> mid = paths_from(w.nodes[a_pos]).path_to(pick);
    const std::size_t vm_rel = mid.size() - 1;
    const auto back = paths_from(pick).path_to(w.nodes[b_pos]);
    mid.insert(mid.end(), back.begin() + 1, back.end());
    // Temporarily remove the migrating slot so splice_segment's invariant
    // (no slots strictly inside the span) holds, then re-add at the VM.
    w.vnf_pos.erase(w.vnf_pos.begin() + static_cast<std::ptrdiff_t>(slot));
    splice_segment(w, a_pos, b_pos, mid);
    w.vnf_pos.insert(w.vnf_pos.begin() + static_cast<std::ptrdiff_t>(slot), a_pos + vm_rel);
  }
  return true;
}

}  // namespace sofe::core
