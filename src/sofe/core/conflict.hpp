#pragma once
// VNF-conflict resolution (Section V-B, Procedure 4, Fig. 5).
//
// SOFDA deploys one service-chain walk per selected virtual edge.  Walks may
// compete for a VM with *different* VNF indices ("VNF conflict").  The
// resolution re-attaches walks to each other — never adding links or VMs and
// never enabling a new VM — so the 3ρST cost bound survives:
//
//   case 1 (Fig. 5a): the new walk W adopts W1's prefix through the conflict
//     VM u when W's index j at u is <= W1's index i;
//   case 2 (Fig. 5b): if another conflict VM w carries index h >= j on W1, W
//     adopts W1's prefix through w, keeps its own w→u segment as pass-through
//     and its suffix after u;
//   case 3 (Fig. 5c): otherwise the *existing* walk W1 adopts W's prefix
//     through u and keeps its own suffix.
//
// ChainPool owns the deployed chains, applies the three cases iteratively,
// and exposes statistics.  If a pathological instance exhausts the iteration
// budget (never observed in tests; guarded regardless), the chain is dropped
// and the caller re-homes its destinations onto a committed chain.

#include <map>
#include <optional>
#include <vector>

#include "sofe/core/forest.hpp"
#include "sofe/core/problem.hpp"

namespace sofe::core {

/// A service-chain walk deployed (or being deployed) in the forest.
struct DeployedChain {
  NodeId source = graph::kInvalidNode;
  NodeId last_vm = graph::kInvalidNode;    // walk end; where distribution attaches
  std::vector<NodeId> nodes;               // walk in G
  std::vector<std::size_t> vnf_pos;        // |C| strictly increasing positions
};

struct ConflictStats {
  int case1 = 0;
  int case2 = 0;
  int case3 = 0;
  int requeued = 0;   // committed chains re-validated after a case-3 rewrite
  int dropped = 0;    // chains abandoned after budget exhaustion (fallback)

  int total_resolved() const noexcept { return case1 + case2 + case3; }
};

class ChainPool {
 public:
  explicit ChainPool(const Problem& p) : p_(&p) {}

  /// Deploys a chain under the given id, resolving VNF conflicts against all
  /// previously committed chains.  Returns false when resolution failed and
  /// the chain was dropped (callers re-home its destinations).
  bool add(int id, DeployedChain chain);

  /// Committed chain by id; nullptr when absent or dropped.
  const DeployedChain* find(int id) const;

  /// All committed chains (deterministic id order).
  const std::map<int, DeployedChain>& committed() const noexcept { return chains_; }

  const ConflictStats& stats() const noexcept { return stats_; }

  /// VM -> 1-based VNF index over all committed chains.
  std::map<NodeId, int> enabled() const;

 private:
  struct Owner {
    int index;        // 1-based VNF index the VM runs
    int chain_id;     // a committed chain carrying this slot
    std::size_t pos;  // the slot's position within that chain's walk
  };

  void rebuild_enabled();
  void commit(int id, DeployedChain chain);
  bool resolve(int id, DeployedChain& w, std::vector<std::pair<int, DeployedChain>>& requeue);

  const Problem* p_;
  std::map<int, DeployedChain> chains_;
  std::map<NodeId, Owner> enabled_;
  ConflictStats stats_;
};

/// Splices `prefix[0..prefix_end]` (carrying VNFs f1..fk at `prefix`'s own
/// slot positions <= prefix_end) with `tail_nodes` (appended verbatim), and
/// assigns f_{k+1}..f_{|C|} to the last eligible original tail slots.
/// Tail slots whose VM already runs one of f1..fk in the prefix become
/// pass-through.  Returns std::nullopt when too few eligible tail slots
/// remain (the caller falls back).
std::optional<DeployedChain> splice_chains(const DeployedChain& prefix, std::size_t prefix_end,
                                           int k, const std::vector<NodeId>& tail_nodes,
                                           const std::vector<std::size_t>& tail_slot_pos,
                                           int chain_length);

}  // namespace sofe::core
