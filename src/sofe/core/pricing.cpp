#include "sofe/core/pricing.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

namespace sofe::core {

void PricingSession::invalidate() {
  key_valid_ = false;
  buckets_.clear();
  block_.invalidate();
}

std::size_t PricingSession::cached_chains() const noexcept {
  std::size_t n = 0;
  for (const auto& [s, bucket] : buckets_) {
    (void)s;
    for (const Entry& e : bucket.entries) {
      if (e.state != Entry::State::kUnknown) ++n;
    }
  }
  return n;
}

void PricingSession::flush_chains() {
  // Keep buckets and their ChainPlan storage (capacity is the point of a
  // session); only the cached outcomes are dropped.
  for (auto& [s, bucket] : buckets_) {
    (void)s;
    for (Entry& e : bucket.entries) e.state = Entry::State::kUnknown;
  }
}

const std::vector<std::uint8_t>& PricingSession::row_marks(
    const graph::MetricClosure::RowDelta& row) {
  auto [it, fresh] = row_mark_cache_.try_emplace(row.hub);
  if (fresh) {
    it->second.assign(vm_mark_.size(), 0);
    for (NodeId x : row.nodes) it->second[static_cast<std::size_t>(x)] = 1;
  }
  return it->second;
}

bool PricingSession::lift_stale(const ChainPlan& plan) {
  // A cached plan's walk is its lift paths concatenated: segment i runs
  // from stroll node plan.nodes[prev] to plan.nodes[vnf_pos[i]] and was
  // read from closure.tree(plan.nodes[prev]).  The fresh lift reproduces
  // it bitwise iff no node ON the old segment changed (dist or parent) in
  // that row — walking unchanged parent pointers from an unchanged
  // endpoint retraces the old path (DESIGN.md §9).
  std::size_t prev = 0;
  for (std::size_t pos : plan.vnf_pos) {
    const NodeId a = plan.nodes[prev];
    const auto it = row_of_.find(a);
    if (it != row_of_.end()) {
      const graph::MetricClosure::RowDelta& row = *it->second;
      if (row.full) return true;
      const auto& marks = row_marks(row);
      for (std::size_t i = prev; i <= pos; ++i) {
        if (marks[static_cast<std::size_t>(plan.nodes[i])]) return true;
      }
    }
    prev = pos;
  }
  return false;
}

void PricingSession::apply_update(const Problem& p, const ClosureUpdate& update,
                                  PricingTally& tally) {
  const auto n = static_cast<std::size_t>(p.network.node_count());
  vm_mark_.assign(n, 0);
  for (NodeId v : key_vms_) vm_mark_[static_cast<std::size_t>(v)] = 1;
  row_of_.clear();          // previous call's pointers died with its spans
  row_mark_cache_.clear();

  // |C| == 1 means 2-strolls: the solve reads ONLY the (source, u) entry,
  // so the (VM, VM) block — and with it every VM row — is out of every
  // chain's read set and invalidation stays per (source row, entry).
  const bool row_only = key_chain_length_ == 1;

  // |C| >= 2: a changed VM row entry AT a VM changes the shared (VM, VM)
  // block, and with it every instance matrix — nothing survives.
  if (!row_only) {
    for (const auto& row : update.rows) {
      if (!vm_mark_[static_cast<std::size_t>(row.hub)]) continue;
      bool dirty = row.full;
      for (std::size_t i = 0; !dirty && i < row.nodes.size(); ++i) {
        dirty = vm_mark_[static_cast<std::size_t>(row.nodes[i])] != 0;
      }
      if (dirty) {
        flush_chains();
        block_.invalidate();
        tally.flushed = true;
        return;
      }
    }
  }

  for (const auto& row : update.rows) row_of_.emplace(row.hub, &row);

  // Re-added source hubs observed no deltas while evicted: flush their
  // buckets wholesale.
  for (NodeId h : update.added_hubs) {
    const auto it = buckets_.find(h);
    if (it == buckets_.end()) continue;
    for (Entry& e : it->second.entries) e.state = Entry::State::kUnknown;
  }

  for (auto& [s, bucket] : buckets_) {
    // A changed source row entry AT a VM changes that source's instance
    // matrix (including the reachability gate): the whole bucket flushes
    // when the stroll reads the full matrix, or — 2-strolls — exactly the
    // entries at the changed VMs.  Infeasible outcomes survive anything
    // weaker, feasible chains additionally need their lift paths
    // untouched.
    const auto it = row_of_.find(s);
    if (it != row_of_.end()) {
      const graph::MetricClosure::RowDelta& row = *it->second;
      if (row.full) {
        for (Entry& e : bucket.entries) e.state = Entry::State::kUnknown;
        continue;
      }
      if (row_only) {
        const auto& marks = row_marks(row);
        for (std::size_t j = 0; j < key_vms_.size(); ++j) {
          if (marks[static_cast<std::size_t>(key_vms_[j])]) {
            bucket.entries[j].state = Entry::State::kUnknown;
          }
        }
      } else {
        bool dirty = false;
        for (std::size_t i = 0; !dirty && i < row.nodes.size(); ++i) {
          dirty = vm_mark_[static_cast<std::size_t>(row.nodes[i])] != 0;
        }
        if (dirty) {
          for (Entry& e : bucket.entries) e.state = Entry::State::kUnknown;
          continue;
        }
      }
    }
    for (Entry& e : bucket.entries) {
      if (e.state == Entry::State::kFeasible && lift_stale(e.plan)) {
        e.state = Entry::State::kUnknown;
      }
    }
  }
}

void PricingSession::price_source(const Problem& p, const graph::MetricClosure& closure,
                                  NodeId s, Bucket& bucket,
                                  kstroll::InstanceAssembler& assembler, const AlgoOptions& opt,
                                  std::vector<PricedChain>& out, int& hits, int& repriced) {
  // The shared-block assembly needs the main construction (zero source
  // setup) and a source outside the VM set; anything else re-prices
  // through the per-pair builder — same results, just not as fast.
  const bool fast = !vm_pos_.contains(s) && p.source_cost(s) == 0.0;
  bool bound = false;
  for (std::size_t j = 0; j < key_vms_.size(); ++j) {
    const NodeId u = key_vms_[j];
    if (u == s) continue;
    Entry& e = bucket.entries[j];
    if (e.state == Entry::State::kUnknown) {
      ++repriced;
      if (fast) {
        // Mirrors plan_chain_walk: reachability gate, then the shared
        // Procedure-2 tail on the assembled instance.
        if (!closure.tree(s).reachable(u)) {
          e.plan = ChainPlan{};
          e.plan.source = s;
          e.plan.last_vm = u;
        } else {
          if (!bound) {
            assembler.bind_source(block_, closure, key_vms_, s);
            bound = true;
          }
          e.plan = plan_chain_walk_on(p, closure, assembler.with_last_vm(j, u, p.node_cost), opt);
        }
      } else {
        e.plan = plan_chain_walk(p, closure, s, key_vms_, u, opt);
      }
      e.state = e.plan.feasible() ? Entry::State::kFeasible : Entry::State::kInfeasible;
    } else {
      ++hits;
    }
    if (e.state == Entry::State::kFeasible) out.push_back(PricedChain{s, u, e.plan});
  }
}

std::vector<PricedChain> PricingSession::price(const Problem& p,
                                               const graph::MetricClosure& closure,
                                               const std::vector<NodeId>& sources,
                                               const ClosureUpdate& update,
                                               const AlgoOptions& opt, int num_threads,
                                               PricingTally* tally) {
  assert(p.well_formed());
  assert(p.chain_length >= 1 && "multicast-only problems have no chains to price");
  // A direct price() call leaves epoch mode: the caller's own update
  // stream now keys the cache, so the next price_epoch must flush.
  epoch_seen_ = false;
  PricingTally local;
  PricingTally& t = tally != nullptr ? *tally : local;
  t = PricingTally{};

  const std::vector<NodeId> vms = p.vms();
  const std::vector<NodeId> srcs = sorted_unique(sources);

  // --- 1. Session key: structural mismatches flush everything. ---
  const bool key_ok = key_valid_ && key_nodes_ == p.network.node_count() && key_vms_ == vms &&
                      key_chain_length_ == p.chain_length && key_stroll_ == opt.stroll &&
                      source_setup_cache_ == p.source_setup_cost;
  if (!key_ok) {
    buckets_.clear();
    block_.invalidate();
    key_valid_ = true;
    key_nodes_ = p.network.node_count();
    key_vms_ = vms;
    key_chain_length_ = p.chain_length;
    key_stroll_ = opt.stroll;
    source_setup_cache_ = p.source_setup_cost;
    node_cost_cache_ = p.node_cost;
    vm_pos_.clear();
    for (std::size_t j = 0; j < key_vms_.size(); ++j) vm_pos_.emplace(key_vms_[j], j);
    t.flushed = true;
  } else {
    // --- 2. Setup-cost deltas.  |C| >= 2: any changed node cost perturbs
    // the shared setup terms of every instance matrix — full flush.
    // |C| == 1: a 2-stroll's only entry carries only c(u), so just the
    // chains whose last VM's setup moved re-price.  (Only VM costs can
    // differ: well_formed pins switches to zero.) ---
    const bool row_only = key_chain_length_ == 1;
    const bool costs_changed = node_cost_cache_ != p.node_cost;
    if (update.kind == ClosureUpdate::Kind::kRebuilt || (costs_changed && !row_only)) {
      flush_chains();
      block_.invalidate();
      t.flushed = true;
    } else {
      if (costs_changed) {
        // The block's shared-setup terms go stale too, but a 2-stroll
        // never reads them — the block is invalidated on the key flush
        // that ends any |C| == 1 epoch.
        for (std::size_t j = 0; j < key_vms_.size(); ++j) {
          const auto v = static_cast<std::size_t>(key_vms_[j]);
          if (node_cost_cache_[v] == p.node_cost[v]) continue;
          for (auto& [s, bucket] : buckets_) {
            (void)s;
            bucket.entries[j].state = Entry::State::kUnknown;
          }
        }
      }
      if (update.kind == ClosureUpdate::Kind::kRepaired) {
        // --- 3. Closure repair: row-level and chain-level invalidation. ---
        apply_update(p, update, t);
      }
      // kUnchanged: the closure is bitwise the cached one; nothing to do.
    }
    if (costs_changed) node_cost_cache_ = p.node_cost;
  }

  // --- 4. Materialize buckets for the requested sources, and bound the
  // session: on a long stream of fresh random sources (the Inet-scale
  // panels) every bucket holds |M| cached plans, so churned-out sources
  // must not accumulate forever.  Evicting is always sound — a dropped
  // bucket simply re-prices cold on its next appearance. ---
  const std::size_t bucket_cap = std::max<std::size_t>(64, 4 * srcs.size());
  if (buckets_.size() > bucket_cap) {
    for (auto it = buckets_.begin(); it != buckets_.end();) {
      it = std::binary_search(srcs.begin(), srcs.end(), it->first) ? std::next(it)
                                                                   : buckets_.erase(it);
    }
  }
  for (NodeId s : srcs) {
    Bucket& b = buckets_[s];
    if (b.entries.size() != key_vms_.size()) b.entries.assign(key_vms_.size(), Entry{});
  }

  // --- 5. Shared block: (re)built once per call at most — the cost of
  // pricing ONE source the slow way buys the fast path for all of them. ---
  if (!block_.valid() && !key_vms_.empty()) {
    bool needed = false;
    for (NodeId s : srcs) {
      if (vm_pos_.contains(s) || p.source_cost(s) != 0.0) continue;
      const Bucket& b = buckets_.at(s);
      for (const Entry& e : b.entries) {
        if (e.state == Entry::State::kUnknown) {
          needed = true;
          break;
        }
      }
      if (needed) break;
    }
    if (needed) block_.build(closure, key_vms_, p.node_cost);
  }

  // --- 6. Price: same fixed source striping as price_candidate_chains,
  // so the concatenated buckets reproduce the serial output bit for bit
  // at any thread count. ---
  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(num_threads, 1)), std::max<std::size_t>(srcs.size(), 1));
  if (assemblers_.size() < workers) assemblers_.resize(workers);
  std::vector<std::vector<PricedChain>> per_source(srcs.size());
  std::vector<int> per_hits(srcs.size(), 0);
  std::vector<int> per_repriced(srcs.size(), 0);

  if (workers <= 1) {
    for (std::size_t i = 0; i < srcs.size(); ++i) {
      price_source(p, closure, srcs[i], buckets_.at(srcs[i]), assemblers_[0], opt,
                   per_source[i], per_hits[i], per_repriced[i]);
    }
  } else {
    p.network.ensure_csr();  // lift queries only read; keep csr() race-free
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        for (std::size_t i = w; i < srcs.size(); i += workers) {
          price_source(p, closure, srcs[i], buckets_.at(srcs[i]), assemblers_[w], opt,
                       per_source[i], per_hits[i], per_repriced[i]);
        }
      });
    }
    for (std::thread& th : pool) th.join();
  }

  std::vector<PricedChain> candidates;
  std::size_t total = 0;
  for (const auto& bucket : per_source) total += bucket.size();
  candidates.reserve(total);
  for (std::size_t i = 0; i < srcs.size(); ++i) {
    for (PricedChain& c : per_source[i]) candidates.push_back(std::move(c));
    t.hits += per_hits[i];
    t.repriced += per_repriced[i];
  }
  return candidates;
}

std::vector<PricedChain> PricingSession::price_epoch(const Problem& p,
                                                     const graph::MetricClosure& closure,
                                                     const std::vector<NodeId>& sources,
                                                     std::uint64_t generation,
                                                     const ClosureUpdate& update,
                                                     const AlgoOptions& opt, int num_threads,
                                                     PricingTally* tally) {
  // Generation dedup (pricing.hpp): the publisher hands the SAME update to
  // every worker that prices during an epoch, so only the first call of a
  // generation may apply it; a repeat sees an unchanged closure and a gap
  // (or a mode switch, or a brand-new session) flushes.
  ClosureUpdate effective = update;
  if (epoch_seen_ && generation == epoch_generation_) {
    effective = ClosureUpdate::unchanged();
  } else if (!epoch_seen_ || generation != epoch_generation_ + 1) {
    effective = ClosureUpdate::rebuilt();
  }
  auto out = price(p, closure, sources, effective, opt, num_threads, tally);
  epoch_seen_ = true;  // price() cleared it; this call stays in epoch mode
  epoch_generation_ = generation;
  return out;
}

}  // namespace sofe::core
