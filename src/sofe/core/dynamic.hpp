#pragma once
// Dynamic adjustments of a live service overlay forest (Section VII-C).
//
// DynamicForest owns a Problem copy plus the current ServiceForest and
// supports the six operations the paper describes:
//   1. destination leave   — drop the walk; shared structure stays paid-for
//                            by the remaining walks (cost dedup handles the
//                            paper's prune-to-branch-node rule);
//   2. destination join    — attach the newcomer at the forest node u that
//                            minimizes the completion-walk cost, installing
//                            the remaining |C|-f(u) VNFs via k-stroll;
//   3. VNF deletion        — the VM of f_j becomes pass-through everywhere;
//   4. VNF insertion       — every walk detours through an available VM
//                            minimizing d(u,v)+c(v)+d(v,w), sharing picks;
//   5. link congestion     — update the link cost, then re-route each walk
//                            segment that crosses it;
//   6. VM overload         — update the VM cost and migrate its VNF to an
//                            available VM with the cheapest total detour.
//
// Every operation preserves feasibility (validated in tests).

#include <cstdint>
#include <map>
#include <vector>

#include "sofe/core/chain_walk.hpp"
#include "sofe/core/forest.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/graph/metric_closure.hpp"
#include "sofe/graph/shortest_path_engine.hpp"

namespace sofe::core {

class DynamicForest {
 public:
  /// Takes ownership of a problem copy and an initial (feasible) forest.
  DynamicForest(Problem p, ServiceForest f) : p_(std::move(p)), f_(std::move(f)) {}

  const Problem& problem() const noexcept { return p_; }
  const ServiceForest& forest() const noexcept { return f_; }
  Cost cost() const { return total_cost(p_, f_); }

  /// Operation 1.  Returns false when d is not currently served.
  bool destination_leave(NodeId d);

  /// Operation 2.  Returns false when no feasible attachment exists.
  bool destination_join(NodeId d, const AlgoOptions& opt = {});

  /// Operation 3: removes VNF f_j (1-based).  Requires 1 <= j <= |C|.
  bool vnf_delete(int j);

  /// Operation 4: inserts a new VNF that becomes f_j (1-based, j in
  /// [1, |C|+1]).  Returns false when no VM is available for some walk.
  bool vnf_insert(int j, const AlgoOptions& opt = {});

  /// Operation 5: sets a new cost on edge e and re-routes every walk segment
  /// crossing it.  Returns the number of re-routed segments.
  int reroute_link(EdgeId e, Cost new_cost);

  /// Operation 6: sets a new setup cost on VM v and migrates its VNF (if
  /// enabled) to the available VM minimizing the forest-wide detour.
  /// Returns false if v is enabled and no replacement exists.
  bool migrate_vm(NodeId v, Cost new_cost, const AlgoOptions& opt = {});

 private:
  /// Shortest-path tree from `from`, built through the shared engine and
  /// cached per graph version: any mutation of the network (structural
  /// edits) bumps Graph::version(), and the cache drops itself on the next
  /// query — no manual invalidation calls to forget.  reroute_link is the
  /// exception it is built for: a single set_edge_cost there REPAIRS every
  /// cached tree in place (ShortestPathEngine::repair) and advances the
  /// cache version, so the re-route scans that follow reuse trees instead
  /// of recomputing them from scratch.  Several trees stay live at once
  /// (join/insert/migrate compare distances from multiple anchors), hence
  /// the per-source cache on top of the engine rather than the engine's
  /// single reusable tree.
  const graph::ShortestPathTree& paths_from(NodeId from);

  Problem p_;
  ServiceForest f_;
  graph::ShortestPathEngine engine_;
  std::map<NodeId, graph::ShortestPathTree> path_cache_;
  std::uint64_t cache_version_ = 0;
  graph::MetricClosure join_closure_;  // destination_join's storage, reused across joins
};

}  // namespace sofe::core
