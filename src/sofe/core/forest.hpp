#pragma once
// Service overlay forest representation and cost accounting (Section III).
//
// A solution stores, per destination, the *walk* that serves it: a node
// sequence from a source to the destination plus the positions at which the
// chain's VNFs are applied.  Walks may revisit nodes (clones, in the paper's
// terminology).  All tree/forest structure is implicit: cost accounting
// deduplicates shared (stage, link) uses exactly as the IP's τ_{f,u,v}
// variables do, and shared enabled VMs exactly as σ_{f,u} does.

#include <cassert>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sofe/core/problem.hpp"

namespace sofe::core {

/// The walk serving one destination.
///
/// `vnf_pos[j]` is the index into `nodes` where VNF f_{j+1} is applied; the
/// node there must be a VM.  Positions are strictly increasing.  The "stage"
/// of the walk edge (nodes[i], nodes[i+1]) is the number of VNFs already
/// applied at positions <= i; stage 0 edges carry unprocessed data from the
/// source, stage |C| edges carry fully processed data.
struct ChainWalk {
  NodeId source = graph::kInvalidNode;
  NodeId destination = graph::kInvalidNode;
  std::vector<NodeId> nodes;
  std::vector<std::size_t> vnf_pos;

  /// Stage of the edge leaving position i.
  int stage_at(std::size_t i) const {
    int stage = 0;
    for (std::size_t p : vnf_pos) {
      if (p <= i) ++stage;
    }
    return stage;
  }

  /// VM of VNF f_{j} (1-based j).
  NodeId vnf_node(int j) const {
    assert(j >= 1 && static_cast<std::size_t>(j) <= vnf_pos.size());
    return nodes[vnf_pos[static_cast<std::size_t>(j - 1)]];
  }
};

/// One (stage, undirected link) use; the unit of connection-cost accounting.
struct StageEdge {
  int stage;
  NodeId u, v;  // canonical: u < v

  auto operator<=>(const StageEdge&) const = default;
};

struct ServiceForest {
  std::vector<ChainWalk> walks;

  bool empty() const noexcept { return walks.empty(); }

  /// Map VM -> 1-based VNF index it runs, aggregated over all walks.
  /// If walks disagree (a VNF conflict), the entry keeps the first index seen;
  /// use validate() to detect conflicts.
  std::map<NodeId, int> enabled_vms() const;

  /// Distinct (stage, link) uses across all walks.
  std::set<StageEdge> stage_edges() const;

  /// Distinct sources actually used by walks.
  std::set<NodeId> used_sources() const;
};

/// Σ c(u) over enabled VMs (+ Appendix-D source costs when present).
Cost setup_cost(const Problem& p, const ServiceForest& f);

/// Σ c(e) over distinct (stage, link) uses — a link is paid once per stage
/// that crosses it, and once only however many walks share it at that stage.
Cost connection_cost(const Problem& p, const ServiceForest& f);

Cost total_cost(const Problem& p, const ServiceForest& f);

/// Pass-through shortening (the paper's Example 7 post-step): replaces each
/// maximal pass-through segment of every walk with a shortest path, keeping
/// the change only when the *forest* cost does not increase (shared-edge
/// accounting can make a locally shorter detour globally worse).
void shorten_pass_through(const Problem& p, ServiceForest& f);

/// Human-readable dump (examples / debugging).
std::string describe(const Problem& p, const ServiceForest& f);

}  // namespace sofe::core
