#pragma once
// Repair-aware k-stroll pricing: the delta-driven candidate-chain cache
// (DESIGN.md §9).
//
// PR 4 made the metric closure incremental; on the paper-scale online
// panels the remaining per-arrival wall clock is k-stroll pricing, which
// the free functions redo from scratch every solve.  PricingSession
// extends the delta principle one layer up: it keeps every PricedChain
// keyed per (source, last VM) across solves and consumes the same
// closure-change stream api::ClosureSession already computes —
// invalidating exactly the chains whose closure rows, lift paths or setup
// costs were touched, re-pricing those through the shared-block instance
// assembly (kstroll/pricing.hpp), and serving the rest from cache.  The
// output is bitwise identical to core::price_candidate_chains at any
// thread count (tested, and asserted end-to-end by bench_fig12_online's
// differential run).
//
// Invalidation contract (proofs and the full case analysis in DESIGN.md
// §9):
//   * closure rebuilt, VM set / chain length / stroll algorithm changed,
//     or (|C| >= 2) ANY node setup cost changed -> every chain re-prices;
//   * (|C| >= 2) a repaired VM row changed at a VM
//                                               -> every chain re-prices
//     (the stroll solver reads the whole matrix, and the shared (VM, VM)
//     block is part of every instance);
//   * a repaired source row changed at a VM, or the source hub was
//     re-added after churning out (no deltas observed while absent)
//                                               -> that source's bucket
//     (|C| == 1: only the entries at the changed VMs — a 2-stroll reads
//     nothing but its own (source, u) entry, so single-VNF chains
//     invalidate row by row and survive VM-block churn);
//   * otherwise a chain re-prices only if some repaired row changed on
//     one of its lift-path segments — which catches the equal-cost
//     plateau trap where a parent flips while every distance survives;
//   * everything untouched                      -> cache hit, zero work.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "sofe/core/sofda.hpp"
#include "sofe/graph/metric_closure.hpp"
#include "sofe/kstroll/pricing.hpp"

namespace sofe::core {

/// What happened to the metric closure since the previous price() call on
/// the same session.  api::ClosureSession::last_update produces this from
/// every acquire; callers without delta knowledge pass rebuilt() — always
/// sound, never fast.  The spans must stay alive for the price() call.
struct ClosureUpdate {
  enum class Kind {
    kUnchanged,  // bitwise the same closure (cache hit)
    kRepaired,   // repaired in place; `rows` lists what may have changed
    kRebuilt,    // rebuilt from scratch (or unknown provenance): flush
  };
  Kind kind = Kind::kRebuilt;
  /// kRepaired: per-row over-approximated change sets (MetricClosure
  /// refresh output).  Rows not listed are bitwise unchanged.
  std::span<const graph::MetricClosure::RowDelta> rows;
  /// kRepaired: hubs (re)built by an incremental extend.  A re-added
  /// source hub observed no deltas while absent, so its bucket flushes.
  std::span<const NodeId> added_hubs;

  static ClosureUpdate unchanged() noexcept { return {Kind::kUnchanged, {}, {}}; }
  static ClosureUpdate rebuilt() noexcept { return {Kind::kRebuilt, {}, {}}; }
};

/// Per-price() cache-effect counters, surfaced through api::SolveReport
/// and the bench's per-phase breakdown.
struct PricingTally {
  int hits = 0;        // chains served from cache, bitwise unchanged
  int repriced = 0;    // chains re-priced (cold, invalidated, or flushed)
  bool flushed = false;  // this call dropped every cached chain
};

/// Session-scoped PricedChain cache.  One PricingSession serves one
/// logical stream of Problems whose closure is maintained by one
/// ClosureSession (api::SofdaSolver owns exactly that pair); price() must
/// see every closure change exactly once via `update`.  Sessions are
/// single-threaded objects; `num_threads` parallelism happens inside a
/// price() call and is bit-identical to serial (per-source buckets,
/// fixed striping — the same scheme as core::price_candidate_chains).
class PricingSession {
 public:
  /// Drop-in replacement for core::price_candidate_chains (same canonical
  /// (source, last_vm) output order, bitwise-identical plans): serves
  /// cached chains that survived `update`, re-prices the rest.  Requires
  /// p.chain_length >= 1 and closure trees for every VM and every source.
  std::vector<PricedChain> price(const Problem& p, const graph::MetricClosure& closure,
                                 const std::vector<NodeId>& sources, const ClosureUpdate& update,
                                 const AlgoOptions& opt, int num_threads = 1,
                                 PricingTally* tally = nullptr);

  /// Fork-from-epoch mode (DESIGN.md §10): N worker sessions price against
  /// ONE publisher-maintained closure whose change stream arrives once per
  /// epoch as (generation, update) — api::ClosureEpoch.  A session must
  /// see every closure change exactly once, but an epoch's update reaches
  /// every worker that prices during it; this entry point dedups by
  /// generation so each worker applies each epoch's movement once:
  ///   * same generation as the previous call  -> the closure is bitwise
  ///     the one already observed: unchanged();
  ///   * exactly the next generation           -> `update` describes the
  ///     one-step advance: apply it;
  ///   * a gap, or the session's first epoch   -> this worker missed at
  ///     least one epoch's row deltas (it priced nothing that epoch):
  ///     flush — sound, never fast.
  /// Mixing price() and price_epoch() on one session re-keys the cache to
  /// whichever closure came last: the next price_epoch after a plain
  /// price() flushes (first-epoch rule), and callers switching the other
  /// way must invalidate() — the epoch closure's changes are not in their
  /// own update stream.
  std::vector<PricedChain> price_epoch(const Problem& p, const graph::MetricClosure& closure,
                                       const std::vector<NodeId>& sources,
                                       std::uint64_t generation, const ClosureUpdate& update,
                                       const AlgoOptions& opt, int num_threads = 1,
                                       PricingTally* tally = nullptr);

  /// Drops every cached chain and the shared block (next price() starts
  /// cold).  Call when closure changes may have gone unobserved.
  void invalidate();

  /// Cached chains currently held across all buckets (diagnostics).
  std::size_t cached_chains() const noexcept;

 private:
  struct Entry {
    enum class State : std::uint8_t { kUnknown, kFeasible, kInfeasible };
    State state = State::kUnknown;
    ChainPlan plan;
  };
  struct Bucket {
    std::vector<Entry> entries;  // indexed by position in the VM list
  };

  void flush_chains();
  void apply_update(const Problem& p, const ClosureUpdate& update, PricingTally& tally);
  bool lift_stale(const ChainPlan& plan);
  const std::vector<std::uint8_t>& row_marks(const graph::MetricClosure::RowDelta& row);
  void price_source(const Problem& p, const graph::MetricClosure& closure, NodeId s,
                    Bucket& bucket, kstroll::InstanceAssembler& assembler,
                    const AlgoOptions& opt, std::vector<PricedChain>& out, int& hits,
                    int& repriced);

  // Epoch-mode state (price_epoch): the last generation whose update this
  // session consumed.  Reset by price() so mode switches never replay or
  // skip an update.
  bool epoch_seen_ = false;
  std::uint64_t epoch_generation_ = 0;

  // Session key: a mismatch on any of these is a structural change that
  // flushes everything (chains AND block).
  bool key_valid_ = false;
  NodeId key_nodes_ = 0;
  std::vector<NodeId> key_vms_;
  int key_chain_length_ = 0;
  kstroll::StrollAlgorithm key_stroll_ = kstroll::StrollAlgorithm::kCheapestInsertion;
  std::vector<Cost> node_cost_cache_;
  std::vector<Cost> source_setup_cache_;

  kstroll::SharedVmBlock block_;
  std::unordered_map<NodeId, std::size_t> vm_pos_;  // VM -> index in key_vms_
  std::unordered_map<NodeId, Bucket> buckets_;

  std::vector<kstroll::InstanceAssembler> assemblers_;  // one per worker
  // apply_update scratch: VM membership marks, the row lookup, and
  // lazily-built per-row changed-node bitmaps for the lift-path checks.
  std::vector<std::uint8_t> vm_mark_;
  std::unordered_map<NodeId, const graph::MetricClosure::RowDelta*> row_of_;
  std::unordered_map<NodeId, std::vector<std::uint8_t>> row_mark_cache_;
};

}  // namespace sofe::core
