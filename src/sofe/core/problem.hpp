#pragma once
// The Service Overlay Forest (SOF) problem instance (Section III).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sofe/graph/graph.hpp"

namespace sofe::core {

using graph::Cost;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

/// Ascending, duplicate-free copy — the canonical node iteration order the
/// pricing paths share (centralized, per-controller, and the §9 session all
/// sort sources this way, which is what lets their outputs merge bitwise).
inline std::vector<NodeId> sorted_unique(std::vector<NodeId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// A SOF instance: network G = (M ∪ U, E), sources S, destinations D and the
/// demanded chain length |C|.  VNFs are anonymous — only their position in
/// the chain matters — so the chain is represented by its length; a VM's
/// assignment is "which chain position (1-based) it runs".
struct Problem {
  Graph network;
  std::vector<Cost> node_cost;        // setup cost c(v); must be 0 for switches
  std::vector<std::uint8_t> is_vm;    // 1 iff v ∈ M
  std::vector<NodeId> sources;        // S
  std::vector<NodeId> destinations;   // D
  int chain_length = 1;               // |C| >= 1

  /// Appendix D: per-source setup cost c(s).  Empty means all zero (the
  /// paper's main model, footnote iii).
  std::vector<Cost> source_setup_cost;

  bool has_source_costs() const noexcept { return !source_setup_cost.empty(); }

  Cost source_cost(NodeId s) const {
    return has_source_costs() ? source_setup_cost[static_cast<std::size_t>(s)] : 0.0;
  }

  std::vector<NodeId> vms() const {
    std::vector<NodeId> out;
    for (NodeId v = 0; v < network.node_count(); ++v) {
      if (is_vm[static_cast<std::size_t>(v)]) out.push_back(v);
    }
    return out;
  }

  /// Cheap structural sanity checks; returns false with no diagnosis (the
  /// validator in validate.hpp produces detailed reports for solutions).
  bool well_formed() const {
    const auto n = static_cast<std::size_t>(network.node_count());
    if (node_cost.size() != n || is_vm.size() != n) return false;
    if (has_source_costs() && source_setup_cost.size() != n) return false;
    if (chain_length < 0) return false;
    for (NodeId v = 0; v < network.node_count(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (!is_vm[i] && node_cost[i] != 0.0) return false;  // switches cost 0
      if (node_cost[i] < 0.0) return false;
    }
    for (NodeId s : sources) {
      if (!network.valid_node(s)) return false;
    }
    for (NodeId d : destinations) {
      if (!network.valid_node(d)) return false;
    }
    return !sources.empty();
  }
};

}  // namespace sofe::core
