#include "sofe/core/sofda.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <thread>

#include "sofe/core/pricing.hpp"
#include "sofe/graph/mst.hpp"
#include "sofe/steiner/steiner.hpp"

namespace sofe::core {

namespace {

/// Rooted view of a tree edge set in the auxiliary graph.
struct RootedTree {
  std::vector<NodeId> parent;      // parent node (kInvalidNode at root/absent)
  std::vector<EdgeId> parent_edge;
  std::vector<bool> in_tree;

  void build(const Graph& g, const std::vector<EdgeId>& edges, NodeId root) {
    const auto n = static_cast<std::size_t>(g.node_count());
    parent.assign(n, graph::kInvalidNode);
    parent_edge.assign(n, graph::kInvalidEdge);
    in_tree.assign(n, false);
    std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj(n);
    for (EdgeId e : edges) {
      adj[static_cast<std::size_t>(g.edge(e).u)].emplace_back(g.edge(e).v, e);
      adj[static_cast<std::size_t>(g.edge(e).v)].emplace_back(g.edge(e).u, e);
    }
    std::vector<NodeId> stack{root};
    in_tree[static_cast<std::size_t>(root)] = true;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const auto& [w, e] : adj[static_cast<std::size_t>(v)]) {
        if (!in_tree[static_cast<std::size_t>(w)]) {
          in_tree[static_cast<std::size_t>(w)] = true;
          parent[static_cast<std::size_t>(w)] = v;
          parent_edge[static_cast<std::size_t>(w)] = e;
          stack.push_back(w);
        }
      }
    }
  }
};

/// Pure multicast (|C| == 0): each destination connects to its nearest
/// source through a Steiner forest built on G + virtual root.
ServiceForest multicast_only(const Problem& p, const AlgoOptions& opt) {
  Graph aux = p.network;
  const NodeId vroot = aux.add_node();
  for (NodeId s : p.sources) aux.add_edge(vroot, s, 0.0);
  std::vector<NodeId> terminals = p.destinations;
  terminals.push_back(vroot);
  const auto tree = steiner::solve(aux, terminals, opt.steiner);
  RootedTree rt;
  rt.build(aux, tree.edges, vroot);

  ServiceForest f;
  for (NodeId d : p.destinations) {
    if (!rt.in_tree[static_cast<std::size_t>(d)]) return {};  // unreachable destination
    std::vector<NodeId> rev;
    for (NodeId v = d; v != vroot; v = rt.parent[static_cast<std::size_t>(v)]) {
      assert(v != graph::kInvalidNode);
      rev.push_back(v);
    }
    ChainWalk w;
    w.destination = d;
    w.source = rev.back();  // node attached to the virtual root == a source
    w.nodes.assign(rev.rbegin(), rev.rend());
    f.walks.push_back(std::move(w));
  }
  return f;
}

}  // namespace

std::vector<PricedChain> price_candidate_chains(const Problem& p,
                                                const graph::MetricClosure& closure,
                                                const std::vector<NodeId>& sources,
                                                const AlgoOptions& opt, int num_threads,
                                                PricingSession* session,
                                                const ClosureUpdate* update,
                                                PricingTally* tally) {
  if (session != nullptr) {
    return session->price(p, closure, sources,
                          update != nullptr ? *update : ClosureUpdate::rebuilt(), opt,
                          num_threads, tally);
  }
  const std::vector<NodeId> vms = p.vms();
  const std::vector<NodeId> srcs = sorted_unique(sources);
  const auto price_source = [&](NodeId s, std::vector<PricedChain>& out) {
    for (NodeId u : vms) {
      if (u == s) continue;
      ChainPlan plan = plan_chain_walk(p, closure, s, vms, u, opt);
      if (plan.feasible()) {
        out.push_back(PricedChain{s, u, std::move(plan)});
      }
    }
  };

  const std::size_t workers = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(num_threads, 1)), std::max<std::size_t>(srcs.size(), 1));
  std::vector<PricedChain> candidates;
  if (workers <= 1) {
    for (NodeId s : srcs) price_source(s, candidates);
    return candidates;
  }

  // Parallel path: stripe sources over workers; every source writes into its
  // own bucket, so concatenating buckets in ascending-source order yields
  // exactly the serial output.  Workers only read `p`, `vms` and the
  // prebuilt closure — plan_chain_walk is pure given those.
  std::vector<std::vector<PricedChain>> per_source(srcs.size());
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (std::size_t i = w; i < srcs.size(); i += workers) {
        price_source(srcs[i], per_source[i]);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  std::size_t total = 0;
  for (const auto& bucket : per_source) total += bucket.size();
  candidates.reserve(total);
  for (auto& bucket : per_source) {
    for (PricedChain& c : bucket) candidates.push_back(std::move(c));
  }
  return candidates;
}

void merge_priced_chains(std::vector<PricedChain>& chains) {
  std::sort(chains.begin(), chains.end(), [](const PricedChain& a, const PricedChain& b) {
    return a.source != b.source ? a.source < b.source : a.last_vm < b.last_vm;
  });
}

ServiceForest sofda(const Problem& p, const AlgoOptions& opt, SofdaStats* stats,
                    PricingSession* pricing) {
  assert(p.well_formed());
  SofdaStats local;
  SofdaStats& st = stats ? *stats : local;
  st = SofdaStats{};

  if (p.destinations.empty()) return {};
  if (p.chain_length == 0) return multicast_only(p, opt);

  const std::vector<NodeId> vms = p.vms();
  std::vector<NodeId> hubs = vms;
  hubs.insert(hubs.end(), p.sources.begin(), p.sources.end());
  const graph::MetricClosure closure(p.network, hubs, opt.closure_threads);

  // --- Step 1: price candidate service chains for every (source, last VM).
  // The closure is freshly built, so a session prices under the
  // conservative rebuilt() update (bitwise the same candidates; tested).
  const auto candidates = price_candidate_chains(p, closure, p.sources, opt,
                                                 opt.closure_threads, pricing);
  return sofda_from_candidates(p, closure, candidates, opt, stats);
}

ServiceForest sofda_from_candidates(const Problem& p, const graph::MetricClosure& closure,
                                    const std::vector<PricedChain>& candidates,
                                    const AlgoOptions& opt, SofdaStats* stats) {
  assert(p.well_formed());
  assert(p.chain_length >= 1);
  SofdaStats local;
  SofdaStats& st = stats ? *stats : local;
  st = SofdaStats{};

  if (p.destinations.empty()) return {};

  // Every source of `p` gets a duplicate in Ĝ (even candidate-less ones):
  // the aux-graph node numbering must not depend on which sources priced a
  // feasible chain, or heuristic tie-breaking could diverge between the
  // centralized and per-controller pricing paths.
  const std::vector<NodeId> vms = p.vms();
  const std::vector<NodeId> sorted_sources = sorted_unique(p.sources);

  st.candidate_chains = static_cast<int>(candidates.size());
  if (candidates.empty()) return {};

  // --- Step 2: auxiliary graph Ĝ (Procedure 3).
  Graph aux = p.network;
  const NodeId n_orig = p.network.node_count();
  const NodeId vroot = aux.add_node();  // ŝ
  std::map<NodeId, NodeId> source_dup;  // v -> v̂
  std::map<NodeId, NodeId> vm_dup;      // u -> û
  std::map<NodeId, NodeId> dup_owner;   // duplicate -> original
  for (NodeId s : sorted_sources) {
    const NodeId d = aux.add_node();
    source_dup[s] = d;
    dup_owner[d] = s;
    aux.add_edge(vroot, d, 0.0);
  }
  for (NodeId u : vms) {
    const NodeId d = aux.add_node();
    vm_dup[u] = d;
    dup_owner[d] = u;
    aux.add_edge(u, d, 0.0);
  }
  std::map<EdgeId, std::size_t> virtual_edge_candidate;  // aux edge -> candidate idx
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const EdgeId e = aux.add_edge(source_dup.at(candidates[i].source),
                                  vm_dup.at(candidates[i].last_vm), candidates[i].plan.cost);
    virtual_edge_candidate[e] = i;
  }

  // --- Step 3: Steiner tree over {ŝ} ∪ D.
  std::vector<NodeId> terminals = sorted_unique(p.destinations);
  terminals.push_back(vroot);
  auto tree = steiner::solve(aux, terminals, opt.steiner);

  // Canonicalize: every source duplicate in the tree must hang directly off
  // ŝ via its zero-cost edge (a minimal tree does this already except for
  // zero-cost ties; the fix never increases cost).
  RootedTree rt;
  rt.build(aux, tree.edges, vroot);
  for (const auto& [s, dup] : source_dup) {
    (void)s;
    const auto di = static_cast<std::size_t>(dup);
    if (rt.in_tree[di] && rt.parent[di] != vroot) {
      std::erase(tree.edges, rt.parent_edge[di]);
      tree.edges.push_back(aux.find_edge(vroot, dup));
      rt.build(aux, tree.edges, vroot);
    }
  }
  // Prune branches that reach no terminal.
  std::vector<bool> keep(static_cast<std::size_t>(aux.node_count()), false);
  for (NodeId t : terminals) keep[static_cast<std::size_t>(t)] = true;
  tree.edges = graph::prune_non_terminal_leaves(aux, std::move(tree.edges), keep);
  rt.build(aux, tree.edges, vroot);
  st.steiner_tree_cost = tree.cost(aux);

  // --- Step 4: deploy the chain of every selected virtual edge (Procedure 4).
  ChainPool pool(p);
  std::vector<std::pair<EdgeId, std::size_t>> selected;  // (aux edge, candidate)
  for (EdgeId e : tree.edges) {
    const auto it = virtual_edge_candidate.find(e);
    if (it == virtual_edge_candidate.end()) continue;
    // Orientation check: the VM duplicate must be the child.
    const NodeId dup_u = vm_dup.at(candidates[it->second].last_vm);
    if (rt.parent_edge[static_cast<std::size_t>(dup_u)] == e) {
      selected.emplace_back(e, it->second);
    }
  }
  std::sort(selected.begin(), selected.end());
  for (const auto& [e, ci] : selected) {
    (void)e;
    const ChainPlan& plan = candidates[ci].plan;
    DeployedChain chain;
    chain.source = plan.source;
    chain.last_vm = plan.last_vm;
    chain.nodes = plan.nodes;
    chain.vnf_pos = plan.vnf_pos;
    pool.add(static_cast<int>(ci), std::move(chain));
  }
  st.deployed_chains = static_cast<int>(selected.size());
  st.conflicts = pool.stats();

  // --- Step 5: per-destination walks = deployed chain + T ∩ G distribution.
  ServiceForest f;
  for (NodeId d : p.destinations) {
    if (!rt.in_tree[static_cast<std::size_t>(d)]) return {};  // disconnected
    // Ascend to the first duplicate node; the original node just before it is
    // the destination's last VM.
    std::vector<NodeId> ascent;  // graph nodes d ... u
    NodeId cursor = d;
    NodeId dup = graph::kInvalidNode;
    while (cursor != graph::kInvalidNode) {
      if (cursor >= n_orig) {
        dup = cursor;
        break;
      }
      ascent.push_back(cursor);
      cursor = rt.parent[static_cast<std::size_t>(cursor)];
    }
    const DeployedChain* chain = nullptr;
    if (dup != graph::kInvalidNode && dup != vroot) {
      // Find the candidate whose virtual edge feeds this duplicate.
      const EdgeId pe = rt.parent_edge[static_cast<std::size_t>(dup)];
      const auto it = virtual_edge_candidate.find(pe);
      if (it != virtual_edge_candidate.end()) chain = pool.find(static_cast<int>(it->second));
    }
    ChainWalk w;
    w.destination = d;
    if (chain != nullptr) {
      assert(!ascent.empty() && ascent.back() == chain->last_vm);
      w.source = chain->source;
      w.nodes = chain->nodes;
      w.vnf_pos = chain->vnf_pos;
      for (auto itn = ascent.rbegin() + 1; itn != ascent.rend(); ++itn) {
        w.nodes.push_back(*itn);
      }
    } else {
      // Fallback: the chain was dropped by conflict resolution (or the tree
      // reached d oddly); re-home d onto the committed chain with the
      // cheapest suffix.  Counted in stats; exercised only by adversarial
      // instances.
      ++st.rehomed_destinations;
      const DeployedChain* best = nullptr;
      Cost best_cost = graph::kInfiniteCost;
      for (const auto& [id, c] : pool.committed()) {
        (void)id;
        const Cost suffix = closure.tree(c.last_vm).distance(d);
        if (suffix < best_cost) {
          best_cost = suffix;
          best = &c;
        }
      }
      if (best == nullptr) return {};  // nothing deployed at all
      w.source = best->source;
      w.nodes = best->nodes;
      w.vnf_pos = best->vnf_pos;
      const auto suffix = closure.path(best->last_vm, d);
      w.nodes.insert(w.nodes.end(), suffix.begin() + 1, suffix.end());
    }
    f.walks.push_back(std::move(w));
  }

  if (opt.shorten) shorten_pass_through(p, f);
  return f;
}

}  // namespace sofe::core
