#pragma once
// SOFDA-SS (Algorithm 1): the (2+ρST)-approximation for the single-source
// Service Overlay Forest problem (Section IV).
//
// For every candidate last VM u, phase 1 finds a minimum-cost service chain
// from the source to u (Procedure 2 / k-stroll), and phase 2 appends a
// Steiner tree rooted at u spanning all destinations.  The cheapest of the
// |M| candidate forests is returned.

#include <cassert>

#include "sofe/core/chain_walk.hpp"
#include "sofe/core/forest.hpp"

namespace sofe::core {

/// Runs SOFDA-SS from the given source.  Requires p.well_formed(), the
/// source and destinations connected, and at least |C| VMs reachable.
/// Returns an empty forest when no destination exists.
ServiceForest sofda_ss(const Problem& p, NodeId source, const AlgoOptions& opt = {});

/// Same algorithm against a caller-owned metric closure holding trees for
/// `source` and every VM (the api::Solver session path — a persistent
/// session reuses the closure's workspaces across solves).
ServiceForest sofda_ss(const Problem& p, NodeId source, const graph::MetricClosure& closure,
                       const AlgoOptions& opt = {});

/// Convenience overload: uses p.sources.front() (the single-source setting).
inline ServiceForest sofda_ss(const Problem& p, const AlgoOptions& opt = {}) {
  assert(!p.sources.empty());
  return sofda_ss(p, p.sources.front(), opt);
}

}  // namespace sofe::core
