#include "sofe/core/sofda_ss.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "sofe/steiner/steiner.hpp"

namespace sofe::core {

namespace {

/// Adjacency of a tree edge set, for path extraction within the tree.
class TreePaths {
 public:
  TreePaths(const Graph& g, const std::vector<EdgeId>& edges, NodeId root) {
    adj_.resize(static_cast<std::size_t>(g.node_count()));
    for (EdgeId e : edges) {
      adj_[static_cast<std::size_t>(g.edge(e).u)].push_back(g.edge(e).v);
      adj_[static_cast<std::size_t>(g.edge(e).v)].push_back(g.edge(e).u);
    }
    parent_.assign(adj_.size(), graph::kInvalidNode);
    visited_.assign(adj_.size(), false);
    // Iterative DFS from the root.
    std::vector<NodeId> stack{root};
    visited_[static_cast<std::size_t>(root)] = true;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (NodeId w : adj_[static_cast<std::size_t>(v)]) {
        if (!visited_[static_cast<std::size_t>(w)]) {
          visited_[static_cast<std::size_t>(w)] = true;
          parent_[static_cast<std::size_t>(w)] = v;
          stack.push_back(w);
        }
      }
    }
    root_ = root;
  }

  bool reaches(NodeId v) const { return visited_[static_cast<std::size_t>(v)]; }

  /// Node sequence root -> v within the tree.
  std::vector<NodeId> path_from_root(NodeId v) const {
    assert(reaches(v));
    std::vector<NodeId> rev;
    for (NodeId x = v; x != graph::kInvalidNode; x = parent_[static_cast<std::size_t>(x)]) {
      rev.push_back(x);
    }
    assert(rev.back() == root_);
    return {rev.rbegin(), rev.rend()};
  }

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::vector<NodeId> parent_;
  std::vector<bool> visited_;
  NodeId root_ = graph::kInvalidNode;
};

}  // namespace

ServiceForest sofda_ss(const Problem& p, NodeId source, const AlgoOptions& opt) {
  assert(p.well_formed());
  if (p.destinations.empty()) return {};
  // Shared shortest-path trees for the source and all VMs.
  std::vector<NodeId> hubs = p.vms();
  hubs.push_back(source);
  const graph::MetricClosure closure(p.network, hubs, opt.closure_threads);
  return sofda_ss(p, source, closure, opt);
}

ServiceForest sofda_ss(const Problem& p, NodeId source, const graph::MetricClosure& closure,
                       const AlgoOptions& opt) {
  assert(p.well_formed());
  ServiceForest best;
  if (p.destinations.empty()) return best;

  const std::vector<NodeId> vms = p.vms();
  Cost best_cost = graph::kInfiniteCost;
  for (NodeId u : vms) {
    // Phase 1: minimum-cost service chain source -> u with |C| VMs.
    const ChainPlan chain = plan_chain_walk(p, closure, source, vms, u, opt);
    if (!chain.feasible()) continue;

    // Phase 2: Steiner tree rooted at the last VM spanning all destinations.
    std::vector<NodeId> terminals = p.destinations;
    terminals.push_back(u);
    const auto tree = steiner::solve(p.network, terminals, opt.steiner);
    const TreePaths paths(p.network, tree.edges, u);

    ServiceForest f;
    bool feasible = true;
    for (NodeId d : p.destinations) {
      if (!paths.reaches(d)) {
        feasible = false;
        break;
      }
      ChainWalk w;
      w.source = source;
      w.destination = d;
      w.nodes = chain.nodes;
      w.vnf_pos = chain.vnf_pos;
      const auto suffix = paths.path_from_root(d);
      w.nodes.insert(w.nodes.end(), suffix.begin() + 1, suffix.end());
      f.walks.push_back(std::move(w));
    }
    if (!feasible) continue;

    const Cost c = total_cost(p, f);
    if (c < best_cost) {
      best_cost = c;
      best = std::move(f);
    }
  }
  if (opt.shorten && !best.empty()) shorten_pass_through(p, best);
  return best;
}

}  // namespace sofe::core
