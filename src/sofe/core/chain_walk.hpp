#pragma once
// Procedure 2 of the paper: identification of the walk with |C| VMs.
//
// Builds the Procedure-1 metric instance, solves a (|C|+1)-stroll from the
// source to the chosen last VM, and lifts the stroll back into G by
// concatenating the underlying shortest paths.  The result is a chain-walk
// plan: the walk's node sequence plus the positions of the |C| enabled VMs.

#include <optional>
#include <vector>

#include "sofe/core/problem.hpp"
#include "sofe/graph/metric_closure.hpp"
#include "sofe/kstroll/solver.hpp"
#include "sofe/steiner/steiner.hpp"

namespace sofe::core {

/// Planned service chain from `source` to `last_vm`.
struct ChainPlan {
  NodeId source = graph::kInvalidNode;
  NodeId last_vm = graph::kInvalidNode;
  std::vector<NodeId> nodes;           // walk in G; front()==source, back()==last_vm
  std::vector<std::size_t> vnf_pos;    // |C| strictly increasing positions
  Cost cost = graph::kInfiniteCost;    // setup + connection cost of the walk
                                       // (+ source setup in the Appendix-D model)

  bool feasible() const noexcept { return cost < graph::kInfiniteCost; }
};

/// Tuning knobs shared by SOFDA-SS / SOFDA / baselines.
struct AlgoOptions {
  kstroll::StrollAlgorithm stroll = kstroll::StrollAlgorithm::kCheapestInsertion;
  steiner::Algorithm steiner = steiner::Algorithm::kMehlhorn;
  bool shorten = true;  // apply the pass-through shortening post-step
  // Threads for metric-closure (hub shortest-path tree) construction.
  // Output is bit-identical for any value (see MetricClosure); > 1 pays off
  // on Cogent/Inet-scale instances with many VMs + sources.
  int closure_threads = 1;
};

/// Procedure 2.  `closure` must contain Dijkstra trees for `source` and every
/// VM.  Returns an infeasible plan when fewer than |C| usable VMs exist or
/// `last_vm` is unreachable.
ChainPlan plan_chain_walk(const Problem& p, const graph::MetricClosure& closure, NodeId source,
                          const std::vector<NodeId>& vms, NodeId last_vm,
                          const AlgoOptions& opt = {});

/// Procedure-2 tail on an already-built metric instance: solves the
/// (|C|+1)-stroll on `inst` and lifts it through `closure` into G.  This is
/// the single implementation both pricing paths share — plan_chain_walk
/// calls it after build_stroll_instance, and the repair-aware PricingSession
/// (pricing.hpp, DESIGN.md §9) after its incremental instance assembly — so
/// their bit-identity is structural, not maintained by hand.  `inst` must
/// carry source/last_vm and satisfy the build_stroll_instance contract;
/// callers perform the reachability pre-check.
ChainPlan plan_chain_walk_on(const Problem& p, const graph::MetricClosure& closure,
                             const kstroll::StrollInstance& inst, const AlgoOptions& opt);

/// Recomputes a plan's cost from its structure (test invariant: equals the
/// stroll cost in the metric instance — the "first characteristic" of §IV).
Cost chain_plan_cost(const Problem& p, const ChainPlan& plan);

}  // namespace sofe::core
