#include "sofe/core/conflict.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <set>

namespace sofe::core {

std::optional<DeployedChain> splice_chains(const DeployedChain& prefix, std::size_t prefix_end,
                                           int k, const std::vector<NodeId>& tail_nodes,
                                           const std::vector<std::size_t>& tail_slot_pos,
                                           int chain_length) {
  assert(prefix_end < prefix.nodes.size());
  DeployedChain out;
  out.source = prefix.source;
  out.nodes.assign(prefix.nodes.begin(),
                   prefix.nodes.begin() + static_cast<std::ptrdiff_t>(prefix_end) + 1);

  // Prefix slots: every prefix VNF position <= prefix_end, which must carry
  // exactly f1..fk by the increasing-position invariant.
  std::set<NodeId> prefix_vms;
  for (std::size_t pos : prefix.vnf_pos) {
    if (pos <= prefix_end) {
      out.vnf_pos.push_back(pos);
      prefix_vms.insert(prefix.nodes[pos]);
    }
  }
  assert(static_cast<int>(out.vnf_pos.size()) == k &&
         "prefix must carry exactly f1..fk before the junction");

  const std::size_t offset = prefix_end + 1;
  out.nodes.insert(out.nodes.end(), tail_nodes.begin(), tail_nodes.end());

  // Assign f_{k+1}..f_{|C|} to the last eligible tail slots, in order.
  const int needed = chain_length - k;
  assert(needed >= 0);
  std::vector<std::size_t> eligible;
  for (std::size_t rel : tail_slot_pos) {
    assert(rel < tail_nodes.size());
    if (!prefix_vms.contains(tail_nodes[rel])) eligible.push_back(rel);
  }
  if (static_cast<int>(eligible.size()) < needed) return std::nullopt;
  for (std::size_t idx = eligible.size() - static_cast<std::size_t>(needed);
       idx < eligible.size(); ++idx) {
    out.vnf_pos.push_back(offset + eligible[idx]);
  }
  out.last_vm = out.nodes.back();
  return out;
}

std::map<NodeId, int> ChainPool::enabled() const {
  std::map<NodeId, int> out;
  for (const auto& [owner, chain] : chains_) {
    (void)owner;
    for (std::size_t j = 0; j < chain.vnf_pos.size(); ++j) {
      out.emplace(chain.nodes[chain.vnf_pos[j]], static_cast<int>(j) + 1);
    }
  }
  return out;
}

void ChainPool::rebuild_enabled() {
  enabled_.clear();
  for (const auto& [id, chain] : chains_) {
    for (std::size_t j = 0; j < chain.vnf_pos.size(); ++j) {
      const NodeId vm = chain.nodes[chain.vnf_pos[j]];
      enabled_.emplace(vm, Owner{static_cast<int>(j) + 1, id, chain.vnf_pos[j]});
    }
  }
}

void ChainPool::commit(int id, DeployedChain chain) {
  for (std::size_t j = 0; j < chain.vnf_pos.size(); ++j) {
    const NodeId vm = chain.nodes[chain.vnf_pos[j]];
    const int idx = static_cast<int>(j) + 1;
    const auto it = enabled_.find(vm);
    assert((it == enabled_.end() || it->second.index == idx) &&
           "commit requires a conflict-free chain");
    if (it == enabled_.end()) {
      enabled_.emplace(vm, Owner{idx, id, chain.vnf_pos[j]});
    }
  }
  chains_[id] = std::move(chain);
}

bool ChainPool::resolve(int id, DeployedChain& w,
                        std::vector<std::pair<int, DeployedChain>>& requeue) {
  const int chain_length = p_->chain_length;
  int budget = 16 + 4 * chain_length * static_cast<int>((chains_.size() + 2) * (chains_.size() + 2));

  while (true) {
    // Conflicts of w against the committed enablement, last-position first
    // ("backtracking W").
    struct Conflict {
      std::size_t pos;  // position of the slot in w
      int planned;      // 1-based index w plans at this VM
      NodeId vm;
    };
    std::vector<Conflict> conflicts;
    for (std::size_t j = 0; j < w.vnf_pos.size(); ++j) {
      const NodeId vm = w.nodes[w.vnf_pos[j]];
      const auto it = enabled_.find(vm);
      if (it != enabled_.end() && it->second.index != static_cast<int>(j) + 1) {
        conflicts.push_back(Conflict{w.vnf_pos[j], static_cast<int>(j) + 1, vm});
      }
    }
    if (conflicts.empty()) {
      commit(id, std::move(w));
      return true;
    }
    if (budget-- <= 0) {
      ++stats_.dropped;
      return false;
    }

    const Conflict& c = *std::max_element(
        conflicts.begin(), conflicts.end(),
        [](const Conflict& a, const Conflict& b) { return a.pos < b.pos; });
    const Owner owner = enabled_.at(c.vm);
    const DeployedChain& w1 = chains_.at(owner.chain_id);
    const int i = owner.index;
    const int j = c.planned;
    const std::size_t pos_w = c.pos;
    const std::size_t pos_w1 = owner.pos;

    // Tail pieces of w strictly after the conflict VM u.
    const std::vector<NodeId> tail_after_u(w.nodes.begin() + static_cast<std::ptrdiff_t>(pos_w) + 1,
                                           w.nodes.end());
    std::vector<std::size_t> slots_after_u;
    for (std::size_t pos : w.vnf_pos) {
      if (pos > pos_w) slots_after_u.push_back(pos - pos_w - 1);
    }

    if (j <= i) {
      // Case 1 (Fig. 5a): adopt w1's prefix through u.
      auto spliced = splice_chains(w1, pos_w1, i, tail_after_u, slots_after_u, chain_length);
      if (!spliced) {
        ++stats_.dropped;
        return false;
      }
      w = std::move(*spliced);
      ++stats_.case1;
      continue;
    }

    // Case 2 (Fig. 5b): find another conflict VM wv earlier on w where w1
    // runs f_h with h >= j; adopt w1's prefix through wv, keep w's wv→u
    // segment as pass-through and w's suffix after u.
    std::map<NodeId, std::pair<int, std::size_t>> w1_slots;  // vm -> (h, pos in w1)
    for (std::size_t jj = 0; jj < w1.vnf_pos.size(); ++jj) {
      w1_slots.emplace(w1.nodes[w1.vnf_pos[jj]],
                       std::make_pair(static_cast<int>(jj) + 1, w1.vnf_pos[jj]));
    }
    int best_h = -1;
    std::size_t best_pos_w1 = 0, best_pw = 0;
    for (std::size_t jj = 0; jj < w.vnf_pos.size(); ++jj) {
      const std::size_t pw = w.vnf_pos[jj];
      if (pw >= pos_w) break;
      const NodeId wv = w.nodes[pw];
      const auto it = w1_slots.find(wv);
      if (it == w1_slots.end()) continue;
      const int h = it->second.first;
      if (h == static_cast<int>(jj) + 1) continue;  // agreement, not a conflict
      if (h >= j && h > best_h) {
        best_h = h;
        best_pos_w1 = it->second.second;
        best_pw = pw;
      }
    }
    if (best_h >= 0) {
      // Tail = w's nodes after wv; reassignable slots only after u.
      const std::vector<NodeId> tail(w.nodes.begin() + static_cast<std::ptrdiff_t>(best_pw) + 1,
                                     w.nodes.end());
      std::vector<std::size_t> slots;
      for (std::size_t pos : w.vnf_pos) {
        if (pos > pos_w) slots.push_back(pos - best_pw - 1);
      }
      auto spliced = splice_chains(w1, best_pos_w1, best_h, tail, slots, chain_length);
      if (!spliced) {
        ++stats_.dropped;
        return false;
      }
      w = std::move(*spliced);
      ++stats_.case2;
      continue;
    }

    // Case 3 (Fig. 5c): rewrite the committed chain w1 to adopt w's prefix
    // through u; w1 is re-validated afterwards.
    const std::vector<NodeId> w1_tail(w1.nodes.begin() + static_cast<std::ptrdiff_t>(pos_w1) + 1,
                                      w1.nodes.end());
    std::vector<std::size_t> w1_slots_after;
    for (std::size_t pos : w1.vnf_pos) {
      if (pos > pos_w1) w1_slots_after.push_back(pos - pos_w1 - 1);
    }
    auto new_w1 = splice_chains(w, pos_w, j, w1_tail, w1_slots_after, chain_length);
    if (!new_w1) {
      ++stats_.dropped;
      return false;
    }
    const int w1_id = owner.chain_id;
    chains_.erase(w1_id);
    rebuild_enabled();
    requeue.emplace_back(w1_id, std::move(*new_w1));
    ++stats_.case3;
    ++stats_.requeued;
  }
}

bool ChainPool::add(int id, DeployedChain chain) {
  std::deque<std::pair<int, DeployedChain>> queue;
  queue.emplace_back(id, std::move(chain));
  bool primary_ok = true;
  int global_budget = 64 + 8 * static_cast<int>((chains_.size() + 2) * (chains_.size() + 2));
  while (!queue.empty()) {
    if (global_budget-- <= 0) {
      // Abandon whatever is still pending; callers re-home via find().
      stats_.dropped += static_cast<int>(queue.size());
      for (const auto& [cid, c] : queue) {
        (void)c;
        if (cid == id) primary_ok = false;
      }
      break;
    }
    auto [cid, c] = std::move(queue.front());
    queue.pop_front();
    std::vector<std::pair<int, DeployedChain>> requeue;
    const bool ok = resolve(cid, c, requeue);
    if (!ok && cid == id) primary_ok = false;
    for (auto& item : requeue) queue.push_back(std::move(item));
  }
  return primary_ok && chains_.contains(id);
}

const DeployedChain* ChainPool::find(int id) const {
  const auto it = chains_.find(id);
  return it == chains_.end() ? nullptr : &it->second;
}

}  // namespace sofe::core
