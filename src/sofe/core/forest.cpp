#include "sofe/core/forest.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "sofe/graph/shortest_path_engine.hpp"

namespace sofe::core {

std::map<NodeId, int> ServiceForest::enabled_vms() const {
  std::map<NodeId, int> enabled;
  for (const ChainWalk& w : walks) {
    for (std::size_t j = 0; j < w.vnf_pos.size(); ++j) {
      enabled.emplace(w.nodes[w.vnf_pos[j]], static_cast<int>(j) + 1);
    }
  }
  return enabled;
}

std::set<StageEdge> ServiceForest::stage_edges() const {
  std::set<StageEdge> uses;
  for (const ChainWalk& w : walks) {
    int stage = 0;
    std::size_t next_vnf = 0;
    for (std::size_t i = 0; i + 1 < w.nodes.size(); ++i) {
      while (next_vnf < w.vnf_pos.size() && w.vnf_pos[next_vnf] <= i) {
        ++stage;
        ++next_vnf;
      }
      const auto [a, b] = Graph::edge_key(w.nodes[i], w.nodes[i + 1]);
      uses.insert(StageEdge{stage, a, b});
    }
  }
  return uses;
}

std::set<NodeId> ServiceForest::used_sources() const {
  std::set<NodeId> out;
  for (const ChainWalk& w : walks) out.insert(w.source);
  return out;
}

Cost setup_cost(const Problem& p, const ServiceForest& f) {
  Cost sum = 0.0;
  for (const auto& [vm, idx] : f.enabled_vms()) {
    (void)idx;
    sum += p.node_cost[static_cast<std::size_t>(vm)];
  }
  if (p.has_source_costs()) {
    for (NodeId s : f.used_sources()) sum += p.source_cost(s);
  }
  return sum;
}

Cost connection_cost(const Problem& p, const ServiceForest& f) {
  Cost sum = 0.0;
  for (const StageEdge& se : f.stage_edges()) {
    const EdgeId e = p.network.find_edge(se.u, se.v);
    assert(e != graph::kInvalidEdge && "walk uses a non-existent link");
    sum += p.network.edge(e).cost;
  }
  return sum;
}

Cost total_cost(const Problem& p, const ServiceForest& f) {
  return setup_cost(p, f) + connection_cost(p, f);
}

void shorten_pass_through(const Problem& p, ServiceForest& f) {
  Cost best = total_cost(p, f);
  // One engine for the whole sweep: the per-segment queries below reuse its
  // workspaces instead of allocating a fresh Dijkstra per essential pair.
  graph::ShortestPathEngine engine(p.network);
  for (std::size_t wi = 0; wi < f.walks.size(); ++wi) {
    ChainWalk& w = f.walks[wi];
    // Essential positions: walk start, every VNF position, walk end.
    std::vector<std::size_t> essential{0};
    essential.insert(essential.end(), w.vnf_pos.begin(), w.vnf_pos.end());
    if (essential.back() != w.nodes.size() - 1) essential.push_back(w.nodes.size() - 1);

    for (std::size_t k = 0; k + 1 < essential.size(); ++k) {
      const std::size_t a = essential[k];
      const std::size_t b = essential[k + 1];
      if (b <= a + 1) continue;  // nothing between to shorten
      const auto& sp = engine.run(w.nodes[a]);
      if (!sp.reachable(w.nodes[b])) continue;
      const auto path = sp.path_to(w.nodes[b]);
      if (path.size() >= b - a + 1) continue;  // not shorter in hops; skip cheap

      // Tentatively splice and keep only if the forest cost does not grow
      // (shared stage-edge accounting can penalize rerouting off shared
      // segments).
      ChainWalk saved = w;
      std::vector<NodeId> nodes(w.nodes.begin(), w.nodes.begin() + static_cast<std::ptrdiff_t>(a));
      nodes.insert(nodes.end(), path.begin(), path.end());
      nodes.insert(nodes.end(), w.nodes.begin() + static_cast<std::ptrdiff_t>(b) + 1,
                   w.nodes.end());
      const std::ptrdiff_t shift =
          static_cast<std::ptrdiff_t>(a + path.size() - 1) - static_cast<std::ptrdiff_t>(b);
      ChainWalk candidate = w;
      candidate.nodes = std::move(nodes);
      for (std::size_t& pos : candidate.vnf_pos) {
        if (pos >= b) pos = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(pos) + shift);
      }
      w = std::move(candidate);
      const Cost now = total_cost(p, f);
      if (now <= best) {
        best = now;
        // Re-derive essential positions after the splice.
        essential.assign(1, 0);
        essential.insert(essential.end(), w.vnf_pos.begin(), w.vnf_pos.end());
        if (essential.back() != w.nodes.size() - 1) essential.push_back(w.nodes.size() - 1);
      } else {
        w = std::move(saved);
      }
    }
  }
}

std::string describe(const Problem& p, const ServiceForest& f) {
  std::ostringstream os;
  os << "ServiceForest: " << f.walks.size() << " walk(s), total cost "
     << total_cost(p, f) << " (setup " << setup_cost(p, f) << ", connection "
     << connection_cost(p, f) << ")\n";
  for (const ChainWalk& w : f.walks) {
    os << "  dest " << w.destination << " <- source " << w.source << ": ";
    std::size_t next_vnf = 0;
    for (std::size_t i = 0; i < w.nodes.size(); ++i) {
      if (i > 0) os << " -> ";
      os << w.nodes[i];
      if (next_vnf < w.vnf_pos.size() && w.vnf_pos[next_vnf] == i) {
        os << "[f" << next_vnf + 1 << "]";
        ++next_vnf;
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace sofe::core
