#include "sofe/core/chain_walk.hpp"

#include <algorithm>
#include <cassert>

#include "sofe/kstroll/instance.hpp"

namespace sofe::core {

ChainPlan plan_chain_walk(const Problem& p, const graph::MetricClosure& closure, NodeId source,
                          const std::vector<NodeId>& vms, NodeId last_vm,
                          const AlgoOptions& opt) {
  ChainPlan plan;
  plan.source = source;
  plan.last_vm = last_vm;
  if (source == last_vm) return plan;  // infeasible by construction

  if (p.chain_length == 0) {
    // Degenerate chain: the "walk" is the source itself; callers append the
    // distribution part.  last_vm is meaningless here.
    plan.nodes = {source};
    plan.cost = 0.0;
    return plan;
  }
  if (!closure.tree(source).reachable(last_vm)) return plan;

  const auto inst = kstroll::build_stroll_instance(p.network, closure, source, vms, last_vm,
                                                   p.node_cost, p.source_cost(source));
  return plan_chain_walk_on(p, closure, inst, opt);
}

ChainPlan plan_chain_walk_on(const Problem& p, const graph::MetricClosure& closure,
                             const kstroll::StrollInstance& inst, const AlgoOptions& opt) {
  ChainPlan plan;
  plan.source = inst.source;
  plan.last_vm = inst.last_vm;

  const int k = p.chain_length + 1;
  const auto stroll = kstroll::solve_stroll(inst, k, opt.stroll);
  if (!stroll.feasible()) return plan;

  // Lift: concatenate shortest paths between consecutive stroll nodes.
  plan.nodes = {inst.source};
  for (std::size_t i = 0; i + 1 < stroll.order.size(); ++i) {
    const NodeId a = inst.nodes[stroll.order[i]];
    const NodeId b = inst.nodes[stroll.order[i + 1]];
    const auto path = closure.path(a, b);
    assert(path.front() == a && path.back() == b);
    plan.nodes.insert(plan.nodes.end(), path.begin() + 1, path.end());
    plan.vnf_pos.push_back(plan.nodes.size() - 1);  // b hosts f_{i+1}
  }
  assert(plan.nodes.back() == inst.last_vm);
  assert(plan.vnf_pos.size() == static_cast<std::size_t>(p.chain_length));
  plan.cost = chain_plan_cost(p, plan);
  return plan;
}

Cost chain_plan_cost(const Problem& p, const ChainPlan& plan) {
  if (plan.nodes.empty()) return graph::kInfiniteCost;
  Cost sum = p.has_source_costs() ? p.source_cost(plan.source) : 0.0;
  for (std::size_t pos : plan.vnf_pos) {
    sum += p.node_cost[static_cast<std::size_t>(plan.nodes[pos])];
  }
  for (std::size_t i = 0; i + 1 < plan.nodes.size(); ++i) {
    const EdgeId e = p.network.find_edge(plan.nodes[i], plan.nodes[i + 1]);
    assert(e != graph::kInvalidEdge);
    sum += p.network.edge(e).cost;
  }
  return sum;
}

}  // namespace sofe::core
