#pragma once
// The paper's Integer Program for SOF (Section III-A).
//
// Variables (all binary):
//   γ[d][f][u]  node u is the enabled VM of stage f on d's walk; stage
//               indices run 0 (= f_S, the source role), 1..|C| (VNFs),
//               |C|+1 (= f_D, the destination role);
//   π[d][f][a]  directed arc a lies on d's walk segment that connects the
//               enabled VM of stage f to the enabled VM of stage f+1,
//               f in 0..|C|;
//   τ[f][a]     directed arc a belongs to the stage-f forest layer;
//   σ[f][u]     node u is enabled for VNF f (1..|C|) forest-wide.
//
// The module builds the full constraint system (1)-(8), can evaluate and
// check any 0/1 assignment, derive the assignment induced by a
// ServiceForest, and export the model in CPLEX LP format for external
// solvers (our own exact solver lives in sofe/exact).

#include <string>
#include <vector>

#include "sofe/core/forest.hpp"
#include "sofe/core/problem.hpp"

namespace sofe::ip {

using core::ChainWalk;
using core::Cost;
using core::NodeId;
using core::Problem;
using core::ServiceForest;

/// Dense 0/1 assignment of all model variables.
struct Assignment {
  // Indexing documented in IpModel; vectors sized by the model.
  std::vector<std::uint8_t> gamma, pi, tau, sigma;
};

/// A single linear constraint  Σ coeff_i · x_i  (sense)  rhs  over a global
/// variable numbering (see IpModel::var_*).
struct LinearConstraint {
  enum class Sense { kLe, kGe, kEq };
  std::vector<std::pair<int, double>> terms;  // (variable id, coefficient)
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::string name;
};

class IpModel {
 public:
  explicit IpModel(const Problem& p);

  // --- variable numbering (global ids used by constraints and LP export) ---
  int num_variables() const noexcept { return num_vars_; }
  int var_gamma(int d, int f, NodeId u) const;  // f in [0, |C|+1]
  int var_pi(int d, int f, int arc) const;      // f in [0, |C|], arc directed
  int var_tau(int f, int arc) const;            // f in [0, |C|]
  int var_sigma(int f, NodeId u) const;         // f in [1, |C|]

  int num_destinations() const noexcept { return static_cast<int>(p_->destinations.size()); }
  int num_arcs() const noexcept { return 2 * p_->network.edge_count(); }

  /// Directed arc id for edge e traversed u->v (2e) or v->u (2e+1).
  int arc_id(graph::EdgeId e, bool forward) const { return 2 * e + (forward ? 0 : 1); }

  const std::vector<LinearConstraint>& constraints() const noexcept { return constraints_; }

  /// Objective value of an assignment: Σ c(u)σ + Σ c(e)τ.
  double objective(const Assignment& a) const;

  /// Verifies every constraint; returns the names of violated ones.
  std::vector<std::string> violated(const Assignment& a) const;

  bool feasible(const Assignment& a) const { return violated(a).empty(); }

  /// Builds the assignment induced by a service forest (γ from walk slots,
  /// π from walk segments, σ/τ as the unions constraints (5)/(8) require).
  Assignment from_forest(const ServiceForest& f) const;

  /// CPLEX LP format text of the full model.
  std::string export_lp() const;

 private:
  void build_constraints();
  double value(const Assignment& a, int var) const;

  const Problem* p_;
  int chain_;           // |C|
  int num_vars_ = 0;
  int gamma_base_ = 0, pi_base_ = 0, tau_base_ = 0, sigma_base_ = 0;
  std::vector<int> dest_index_;  // node -> destination ordinal (-1 otherwise)
  std::vector<LinearConstraint> constraints_;
};

}  // namespace sofe::ip
