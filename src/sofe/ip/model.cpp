#include "sofe/ip/model.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

namespace sofe::ip {

namespace {

bool contains(const std::vector<NodeId>& v, NodeId x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

IpModel::IpModel(const Problem& p) : p_(&p), chain_(p.chain_length) {
  const int n = p.network.node_count();
  const int dests = num_destinations();
  const int arcs = num_arcs();
  const int stages_gamma = chain_ + 2;  // fS, f1..f|C|, fD
  const int stages_pi = chain_ + 1;     // fS, f1..f|C|

  gamma_base_ = 0;
  pi_base_ = gamma_base_ + dests * stages_gamma * n;
  tau_base_ = pi_base_ + dests * stages_pi * arcs;
  sigma_base_ = tau_base_ + stages_pi * arcs;
  num_vars_ = sigma_base_ + chain_ * n;

  dest_index_.assign(static_cast<std::size_t>(n), -1);
  for (int d = 0; d < dests; ++d) {
    dest_index_[static_cast<std::size_t>(p.destinations[static_cast<std::size_t>(d)])] = d;
  }
  build_constraints();
}

int IpModel::var_gamma(int d, int f, NodeId u) const {
  assert(d >= 0 && d < num_destinations() && f >= 0 && f <= chain_ + 1);
  return gamma_base_ + (d * (chain_ + 2) + f) * p_->network.node_count() + u;
}

int IpModel::var_pi(int d, int f, int arc) const {
  assert(d >= 0 && d < num_destinations() && f >= 0 && f <= chain_);
  return pi_base_ + (d * (chain_ + 1) + f) * num_arcs() + arc;
}

int IpModel::var_tau(int f, int arc) const {
  assert(f >= 0 && f <= chain_);
  return tau_base_ + f * num_arcs() + arc;
}

int IpModel::var_sigma(int f, NodeId u) const {
  assert(f >= 1 && f <= chain_);
  return sigma_base_ + (f - 1) * p_->network.node_count() + u;
}

void IpModel::build_constraints() {
  const Problem& p = *p_;
  const int n = p.network.node_count();
  const int dests = num_destinations();

  auto add = [&](LinearConstraint c) { constraints_.push_back(std::move(c)); };

  for (int d = 0; d < dests; ++d) {
    const NodeId dn = p.destinations[static_cast<std::size_t>(d)];
    // (1) one source per destination, and only sources may play fS.
    LinearConstraint c1;
    c1.sense = LinearConstraint::Sense::kEq;
    c1.rhs = 1.0;
    c1.name = "src_choice_d" + std::to_string(d);
    for (NodeId s : p.sources) c1.terms.emplace_back(var_gamma(d, 0, s), 1.0);
    add(std::move(c1));
    for (NodeId u = 0; u < n; ++u) {
      if (!contains(p.sources, u)) {
        LinearConstraint z;
        z.sense = LinearConstraint::Sense::kEq;
        z.rhs = 0.0;
        z.name = "src_only_d" + std::to_string(d) + "_u" + std::to_string(u);
        z.terms.emplace_back(var_gamma(d, 0, u), 1.0);
        add(std::move(z));
      }
    }
    // (2) one enabled VM per VNF, and only VMs may host VNFs.
    for (int f = 1; f <= chain_; ++f) {
      LinearConstraint c2;
      c2.sense = LinearConstraint::Sense::kEq;
      c2.rhs = 1.0;
      c2.name = "vm_choice_d" + std::to_string(d) + "_f" + std::to_string(f);
      for (NodeId u = 0; u < n; ++u) {
        if (p.is_vm[static_cast<std::size_t>(u)]) {
          c2.terms.emplace_back(var_gamma(d, f, u), 1.0);
        } else {
          LinearConstraint z;
          z.sense = LinearConstraint::Sense::kEq;
          z.rhs = 0.0;
          z.name = "vm_only_d" + std::to_string(d) + "_f" + std::to_string(f) + "_u" +
                   std::to_string(u);
          z.terms.emplace_back(var_gamma(d, f, u), 1.0);
          add(std::move(z));
        }
      }
      add(std::move(c2));
    }
    // (3)-(4) destination role is pinned to d.
    for (NodeId u = 0; u < n; ++u) {
      LinearConstraint c34;
      c34.sense = LinearConstraint::Sense::kEq;
      c34.rhs = (u == dn) ? 1.0 : 0.0;
      c34.name = "dest_role_d" + std::to_string(d) + "_u" + std::to_string(u);
      c34.terms.emplace_back(var_gamma(d, chain_ + 1, u), 1.0);
      add(std::move(c34));
    }
    // (5) γ ≤ σ.
    for (int f = 1; f <= chain_; ++f) {
      for (NodeId u = 0; u < n; ++u) {
        LinearConstraint c5;
        c5.sense = LinearConstraint::Sense::kLe;
        c5.rhs = 0.0;
        c5.name = "enable_d" + std::to_string(d) + "_f" + std::to_string(f) + "_u" +
                  std::to_string(u);
        c5.terms.emplace_back(var_gamma(d, f, u), 1.0);
        c5.terms.emplace_back(var_sigma(f, u), -1.0);
        add(std::move(c5));
      }
    }
    // (7) walk-stitching flow inequality per stage and node.
    for (int f = 0; f <= chain_; ++f) {
      for (NodeId u = 0; u < n; ++u) {
        LinearConstraint c7;
        c7.sense = LinearConstraint::Sense::kGe;
        c7.rhs = 0.0;
        c7.name = "flow_d" + std::to_string(d) + "_f" + std::to_string(f) + "_u" +
                  std::to_string(u);
        for (const graph::Arc& a : p.network.neighbors(u)) {
          const bool forward = p.network.edge(a.edge).u == u;
          c7.terms.emplace_back(var_pi(d, f, arc_id(a.edge, forward)), 1.0);    // out
          c7.terms.emplace_back(var_pi(d, f, arc_id(a.edge, !forward)), -1.0);  // in
        }
        c7.terms.emplace_back(var_gamma(d, f, u), -1.0);
        c7.terms.emplace_back(var_gamma(d, f + 1, u), 1.0);
        add(std::move(c7));
      }
    }
    // (8) π ≤ τ.
    for (int f = 0; f <= chain_; ++f) {
      for (int arc = 0; arc < num_arcs(); ++arc) {
        LinearConstraint c8;
        c8.sense = LinearConstraint::Sense::kLe;
        c8.rhs = 0.0;
        c8.name = "layer_d" + std::to_string(d) + "_f" + std::to_string(f) + "_a" +
                  std::to_string(arc);
        c8.terms.emplace_back(var_pi(d, f, arc), 1.0);
        c8.terms.emplace_back(var_tau(f, arc), -1.0);
        add(std::move(c8));
      }
    }
  }
  // (6) at most one VNF per node, forest-wide.
  for (NodeId u = 0; u < n; ++u) {
    LinearConstraint c6;
    c6.sense = LinearConstraint::Sense::kLe;
    c6.rhs = 1.0;
    c6.name = "one_vnf_u" + std::to_string(u);
    for (int f = 1; f <= chain_; ++f) c6.terms.emplace_back(var_sigma(f, u), 1.0);
    add(std::move(c6));
  }
}

double IpModel::value(const Assignment& a, int var) const {
  if (var >= sigma_base_) return a.sigma[static_cast<std::size_t>(var - sigma_base_)];
  if (var >= tau_base_) return a.tau[static_cast<std::size_t>(var - tau_base_)];
  if (var >= pi_base_) return a.pi[static_cast<std::size_t>(var - pi_base_)];
  return a.gamma[static_cast<std::size_t>(var - gamma_base_)];
}

double IpModel::objective(const Assignment& a) const {
  const Problem& p = *p_;
  double obj = 0.0;
  for (int f = 1; f <= chain_; ++f) {
    for (NodeId u = 0; u < p.network.node_count(); ++u) {
      obj += p.node_cost[static_cast<std::size_t>(u)] * value(a, var_sigma(f, u));
    }
  }
  for (int f = 0; f <= chain_; ++f) {
    for (graph::EdgeId e = 0; e < p.network.edge_count(); ++e) {
      obj += p.network.edge(e).cost *
             (value(a, var_tau(f, arc_id(e, true))) + value(a, var_tau(f, arc_id(e, false))));
    }
  }
  return obj;
}

std::vector<std::string> IpModel::violated(const Assignment& a) const {
  std::vector<std::string> out;
  constexpr double kTol = 1e-9;
  for (const LinearConstraint& c : constraints_) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : c.terms) lhs += coeff * value(a, var);
    const bool ok = c.sense == LinearConstraint::Sense::kLe   ? lhs <= c.rhs + kTol
                    : c.sense == LinearConstraint::Sense::kGe ? lhs >= c.rhs - kTol
                                                              : std::abs(lhs - c.rhs) <= kTol;
    if (!ok) out.push_back(c.name);
  }
  return out;
}

Assignment IpModel::from_forest(const ServiceForest& f) const {
  const Problem& p = *p_;
  const int n = p.network.node_count();
  Assignment a;
  a.gamma.assign(static_cast<std::size_t>(num_destinations() * (chain_ + 2) * n), 0);
  a.pi.assign(static_cast<std::size_t>(num_destinations() * (chain_ + 1) * num_arcs()), 0);
  a.tau.assign(static_cast<std::size_t>((chain_ + 1) * num_arcs()), 0);
  a.sigma.assign(static_cast<std::size_t>(chain_ * n), 0);

  auto set = [&](std::vector<std::uint8_t>& vec, int base, int var) {
    vec[static_cast<std::size_t>(var - base)] = 1;
  };

  for (const ChainWalk& w : f.walks) {
    const int d = dest_index_[static_cast<std::size_t>(w.destination)];
    assert(d >= 0 && "walk serves a node that is not a destination");
    set(a.gamma, gamma_base_, var_gamma(d, 0, w.source));
    for (std::size_t j = 0; j < w.vnf_pos.size(); ++j) {
      set(a.gamma, gamma_base_, var_gamma(d, static_cast<int>(j) + 1, w.nodes[w.vnf_pos[j]]));
      set(a.sigma, sigma_base_, var_sigma(static_cast<int>(j) + 1, w.nodes[w.vnf_pos[j]]));
    }
    set(a.gamma, gamma_base_, var_gamma(d, chain_ + 1, w.destination));

    int stage = 0;
    std::size_t next_vnf = 0;
    for (std::size_t i = 0; i + 1 < w.nodes.size(); ++i) {
      while (next_vnf < w.vnf_pos.size() && w.vnf_pos[next_vnf] <= i) {
        ++stage;
        ++next_vnf;
      }
      const graph::EdgeId e = p.network.find_edge(w.nodes[i], w.nodes[i + 1]);
      assert(e != graph::kInvalidEdge);
      const bool forward = p.network.edge(e).u == w.nodes[i];
      set(a.pi, pi_base_, var_pi(d, stage, arc_id(e, forward)));
      set(a.tau, tau_base_, var_tau(stage, arc_id(e, forward)));
    }
  }
  return a;
}

std::string IpModel::export_lp() const {
  const Problem& p = *p_;
  std::ostringstream os;
  auto vname = [&](int var) {
    std::ostringstream v;
    if (var >= sigma_base_) {
      const int rel = var - sigma_base_;
      v << "sigma_f" << rel / p.network.node_count() + 1 << "_u" << rel % p.network.node_count();
    } else if (var >= tau_base_) {
      const int rel = var - tau_base_;
      v << "tau_f" << rel / num_arcs() << "_a" << rel % num_arcs();
    } else if (var >= pi_base_) {
      const int rel = var - pi_base_;
      const int per_d = (chain_ + 1) * num_arcs();
      v << "pi_d" << rel / per_d << "_f" << (rel % per_d) / num_arcs() << "_a"
        << rel % num_arcs();
    } else {
      const int per_d = (chain_ + 2) * p.network.node_count();
      v << "gamma_d" << var / per_d << "_f" << (var % per_d) / p.network.node_count() << "_u"
        << var % p.network.node_count();
    }
    return v.str();
  };

  os << "\\ SOF integer program (Section III-A); generated by sofe::ip\n";
  os << "Minimize\n obj:";
  bool first = true;
  for (int f = 1; f <= chain_; ++f) {
    for (NodeId u = 0; u < p.network.node_count(); ++u) {
      const double c = p.node_cost[static_cast<std::size_t>(u)];
      if (c == 0.0) continue;
      os << (first ? " " : " + ") << c << ' ' << vname(var_sigma(f, u));
      first = false;
    }
  }
  for (int f = 0; f <= chain_; ++f) {
    for (graph::EdgeId e = 0; e < p.network.edge_count(); ++e) {
      const double c = p.network.edge(e).cost;
      if (c == 0.0) continue;
      os << (first ? " " : " + ") << c << ' ' << vname(var_tau(f, arc_id(e, true)));
      os << " + " << c << ' ' << vname(var_tau(f, arc_id(e, false)));
      first = false;
    }
  }
  os << "\nSubject To\n";
  for (const LinearConstraint& c : constraints_) {
    os << ' ' << c.name << ':';
    for (const auto& [var, coeff] : c.terms) {
      os << (coeff >= 0 ? " + " : " - ") << std::abs(coeff) << ' ' << vname(var);
    }
    os << (c.sense == LinearConstraint::Sense::kLe   ? " <= "
           : c.sense == LinearConstraint::Sense::kGe ? " >= "
                                                     : " = ")
       << c.rhs << '\n';
  }
  os << "Binary\n";
  for (int v = 0; v < num_vars_; ++v) os << ' ' << vname(v) << '\n';
  os << "End\n";
  return os.str();
}

}  // namespace sofe::ip
