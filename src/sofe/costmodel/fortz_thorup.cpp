#include "sofe/costmodel/fortz_thorup.hpp"

#include <cassert>

namespace sofe::costmodel {

double fortz_thorup(double load, double capacity) {
  assert(load >= 0.0 && capacity > 0.0);
  const double u = load / capacity;
  if (u <= 1.0 / 3.0) return load;
  if (u <= 2.0 / 3.0) return 3.0 * load - 2.0 / 3.0 * capacity;
  if (u <= 9.0 / 10.0) return 10.0 * load - 16.0 / 3.0 * capacity;
  if (u <= 1.0) return 70.0 * load - 178.0 / 3.0 * capacity;
  if (u <= 11.0 / 10.0) return 500.0 * load - 1468.0 / 3.0 * capacity;
  return 5000.0 * load - 16318.0 / 3.0 * capacity;
}

double fortz_thorup_slope(double load, double capacity) {
  assert(load >= 0.0 && capacity > 0.0);
  const double u = load / capacity;
  if (u <= 1.0 / 3.0) return 1.0;
  if (u <= 2.0 / 3.0) return 3.0;
  if (u <= 9.0 / 10.0) return 10.0;
  if (u <= 1.0) return 70.0;
  if (u <= 11.0 / 10.0) return 500.0;
  return 5000.0;
}

}  // namespace sofe::costmodel
