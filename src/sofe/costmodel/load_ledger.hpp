#pragma once
// Load bookkeeping for online deployment (Sections VII-B, VIII-C): tracks
// per-link bandwidth and per-DC host utilization, and converts them into
// Fortz-Thorup costs for the next request's problem instance.

#include <algorithm>
#include <cassert>
#include <vector>

#include "sofe/costmodel/fortz_thorup.hpp"
#include "sofe/graph/graph.hpp"

namespace sofe::costmodel {

using graph::Cost;
using graph::EdgeId;
using graph::NodeId;

class LoadLedger {
 public:
  /// `links` = number of physical links, each with `link_capacity` (Mb/s);
  /// `hosts` = number of DC hosts, each fitting `host_capacity` VNFs.
  LoadLedger(std::size_t links, double link_capacity, std::size_t hosts,
             double host_capacity)
      : link_load_(links, 0.0),
        host_load_(hosts, 0.0),
        link_capacity_(link_capacity),
        host_capacity_(host_capacity) {}

  void add_link_load(EdgeId e, double mbps) {
    link_load_[static_cast<std::size_t>(e)] += mbps;
  }
  void add_host_load(std::size_t host, double vnfs) { host_load_[host] += vnfs; }

  /// Departure bookkeeping (the online simulator's cost-restore path, and
  /// the recovery engine's release-then-recharge sequence): a request that
  /// leaves returns exactly the bandwidth/VNF slots it was charged, so the
  /// next price refresh emits downward cost deltas.  Removing more than was
  /// added — a double release — is a caller bug: asserted in debug builds,
  /// clamped at zero in release builds so one bad release can never drive a
  /// load negative and poison every price derived from it.  Returns the
  /// amount actually removed, so release-build callers can detect the
  /// shortfall (`removed < requested`) that the debug assert would trip.
  double remove_link_load(EdgeId e, double mbps) {
    assert(mbps >= 0.0 && "link-load release must be nonnegative");
    auto& load = link_load_[static_cast<std::size_t>(e)];
    assert(load + 1e-9 >= mbps && "removing more link load than was charged");
    const double removed = std::min(load, std::max(0.0, mbps));
    load -= removed;
    return removed;
  }
  double remove_host_load(std::size_t host, double vnfs) {
    assert(vnfs >= 0.0 && "host-load release must be nonnegative");
    auto& load = host_load_[host];
    assert(load + 1e-9 >= vnfs && "removing more host load than was charged");
    const double removed = std::min(load, std::max(0.0, vnfs));
    load -= removed;
    return removed;
  }

  double link_load(EdgeId e) const { return link_load_[static_cast<std::size_t>(e)]; }
  double link_utilization(EdgeId e) const { return link_load(e) / link_capacity_; }
  double host_load(std::size_t host) const { return host_load_[host]; }

  /// Price of carrying `demand` more Mb/s over link e: the cost function
  /// evaluated at the post-placement load (a congested link prices itself
  /// out, per Section VII-B).
  Cost link_price(EdgeId e, double demand) const {
    return fortz_thorup(link_load(e) + demand, link_capacity_);
  }

  /// Price of placing one more VNF on a host.
  Cost host_price(std::size_t host) const {
    return fortz_thorup(host_load(host) + 1.0, host_capacity_);
  }

  std::size_t overloaded_links(double threshold = 1.0) const {
    std::size_t n = 0;
    for (std::size_t e = 0; e < link_load_.size(); ++e) {
      if (link_load_[e] > threshold * link_capacity_) ++n;
    }
    return n;
  }

 private:
  std::vector<double> link_load_;
  std::vector<double> host_load_;
  double link_capacity_;
  double host_capacity_;
};

}  // namespace sofe::costmodel
