#pragma once
// Load bookkeeping for online deployment (Sections VII-B, VIII-C): tracks
// per-link bandwidth and per-DC host utilization, and converts them into
// Fortz-Thorup costs for the next request's problem instance.
//
// Two capacity regimes (DESIGN.md §14):
//   soft (default)  — capacity only shapes prices: the Fortz-Thorup function
//                     makes a congested link price itself out, but nothing
//                     stops a caller from loading past capacity (the paper's
//                     Fig. 12 setting; `overloaded_links()` counts how often
//                     that happened).
//   enforced        — capacity is a hard constraint: admission runs a
//                     `can_admit` feasibility check before charging, so no
//                     ledger entry ever exceeds its capacity.  The add paths
//                     assert the invariant in debug builds; the pricing
//                     surface is unchanged (soft prices still rank candidate
//                     embeddings below the hard gate).
#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

#include "sofe/costmodel/fortz_thorup.hpp"
#include "sofe/graph/graph.hpp"

namespace sofe::costmodel {

using graph::Cost;
using graph::EdgeId;
using graph::NodeId;

class LoadLedger {
 public:
  /// `links` = number of physical links, each with `link_capacity` (Mb/s);
  /// `hosts` = number of DC hosts, each fitting `host_capacity` VNFs.
  /// `enforce_capacity` selects the hard regime described above.
  LoadLedger(std::size_t links, double link_capacity, std::size_t hosts,
             double host_capacity, bool enforce_capacity = false)
      : link_load_(links, 0.0),
        host_load_(hosts, 0.0),
        link_capacity_(link_capacity),
        host_capacity_(host_capacity),
        enforce_capacity_(enforce_capacity) {}

  void add_link_load(EdgeId e, double mbps) {
    auto& load = link_load_[static_cast<std::size_t>(e)];
    load += mbps;
    assert((!enforce_capacity_ || load <= link_capacity_ + slack(link_capacity_)) &&
           "enforced-mode link charge exceeds capacity; gate with can_admit first");
  }
  void add_host_load(std::size_t host, double vnfs) {
    auto& load = host_load_[host];
    load += vnfs;
    assert((!enforce_capacity_ || load <= host_capacity_ + slack(host_capacity_)) &&
           "enforced-mode host charge exceeds capacity; gate with can_admit first");
  }

  /// Departure bookkeeping (the online simulator's cost-restore path, and
  /// the recovery engine's release-then-recharge sequence): a request that
  /// leaves returns exactly the bandwidth/VNF slots it was charged, so the
  /// next price refresh emits downward cost deltas.  Removing more than was
  /// added — a double release — is a caller bug: asserted in debug builds,
  /// clamped at zero in release builds so one bad release can never drive a
  /// load negative and poison every price derived from it.  Returns the
  /// amount actually removed, so release-build callers can detect the
  /// shortfall (`removed < requested`) that the debug assert would trip.
  double remove_link_load(EdgeId e, double mbps) {
    assert(mbps >= 0.0 && "link-load release must be nonnegative");
    auto& load = link_load_[static_cast<std::size_t>(e)];
    assert(load + 1e-9 >= mbps && "removing more link load than was charged");
    const double removed = std::min(load, std::max(0.0, mbps));
    load -= removed;
    return removed;
  }
  double remove_host_load(std::size_t host, double vnfs) {
    assert(vnfs >= 0.0 && "host-load release must be nonnegative");
    auto& load = host_load_[host];
    assert(load + 1e-9 >= vnfs && "removing more host load than was charged");
    const double removed = std::min(load, std::max(0.0, vnfs));
    load -= removed;
    return removed;
  }

  double link_load(EdgeId e) const { return link_load_[static_cast<std::size_t>(e)]; }
  double link_utilization(EdgeId e) const { return link_load(e) / link_capacity_; }
  double host_load(std::size_t host) const { return host_load_[host]; }
  double host_utilization(std::size_t host) const {
    return host_load_[host] / host_capacity_;
  }

  std::size_t links() const noexcept { return link_load_.size(); }
  std::size_t hosts() const noexcept { return host_load_.size(); }
  double link_capacity() const noexcept { return link_capacity_; }
  double host_capacity() const noexcept { return host_capacity_; }
  bool enforced() const noexcept { return enforce_capacity_; }

  /// Remaining room before the hard limit (never negative; a soft-mode
  /// ledger loaded past capacity reports zero headroom, not a debt).
  double link_headroom(EdgeId e) const {
    return std::max(0.0, link_capacity_ - link_load(e));
  }
  double host_headroom(std::size_t host) const {
    return std::max(0.0, host_capacity_ - host_load_[host]);
  }

  /// Feasibility of one candidate admission: would charging `mbps_each` on
  /// every listed link and `vnfs_each` on every listed host keep each entry
  /// within capacity?  The lists carry MULTIPLICITY — a forest that crosses
  /// one link at several chain stages charges it once per stage, and the
  /// repeats must be aggregated before the boundary check, or a link with
  /// room for one stream would wrongly admit two.  The boundary itself is
  /// closed (load + add == capacity admits, up to a relative epsilon), so a
  /// request that exactly fills a link is feasible; zero-demand requests
  /// are always feasible.  Pure query: the ledger is not mutated.
  bool can_admit(const std::vector<EdgeId>& links, double mbps_each,
                 const std::vector<std::size_t>& hosts, double vnfs_each) const {
    return fits(link_load_, link_capacity_, links, mbps_each) &&
           fits(host_load_, host_capacity_, hosts, vnfs_each);
  }

  /// Price of carrying `demand` more Mb/s over link e: the cost function
  /// evaluated at the post-placement load (a congested link prices itself
  /// out, per Section VII-B).
  Cost link_price(EdgeId e, double demand) const {
    return fortz_thorup(link_load(e) + demand, link_capacity_);
  }

  /// Price of placing one more VNF on a host.
  Cost host_price(std::size_t host) const {
    return fortz_thorup(host_load(host) + 1.0, host_capacity_);
  }

  std::size_t overloaded_links(double threshold = 1.0) const {
    std::size_t n = 0;
    for (std::size_t e = 0; e < link_load_.size(); ++e) {
      if (link_load_[e] > threshold * link_capacity_) ++n;
    }
    return n;
  }

  double max_link_utilization() const { return max_util(link_load_, link_capacity_); }
  double mean_link_utilization() const { return mean_util(link_load_, link_capacity_); }
  double max_host_utilization() const { return max_util(host_load_, host_capacity_); }
  double mean_host_utilization() const { return mean_util(host_load_, host_capacity_); }

 private:
  // Closed-boundary tolerance: repeated add/remove cycles accumulate
  // floating-point dust, and "exactly full" must stay admissible after any
  // number of charge/release round trips.
  static double slack(double capacity) { return 1e-9 * std::max(1.0, capacity); }

  template <typename Id>
  static bool fits(const std::vector<double>& load, double capacity,
                   const std::vector<Id>& ids, double each) {
    if (each <= 0.0 || ids.empty()) return true;
    // Aggregate multiplicity per entry: count repeats against a scratch-free
    // double pass over the (short) candidate list.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const std::size_t id = static_cast<std::size_t>(ids[i]);
      bool seen = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (static_cast<std::size_t>(ids[j]) == id) {
          seen = true;
          break;
        }
      }
      if (seen) continue;  // this entry was totalled on its first occurrence
      std::size_t copies = 1;
      for (std::size_t j = i + 1; j < ids.size(); ++j) {
        if (static_cast<std::size_t>(ids[j]) == id) ++copies;
      }
      if (load[id] + static_cast<double>(copies) * each > capacity + slack(capacity)) {
        return false;
      }
    }
    return true;
  }

  static double max_util(const std::vector<double>& load, double capacity) {
    double top = 0.0;
    for (const double l : load) top = std::max(top, l / capacity);
    return top;
  }
  static double mean_util(const std::vector<double>& load, double capacity) {
    if (load.empty()) return 0.0;
    double sum = 0.0;
    for (const double l : load) sum += l / capacity;
    return sum / static_cast<double>(load.size());
  }

  std::vector<double> link_load_;
  std::vector<double> host_load_;
  double link_capacity_;
  double host_capacity_;
  bool enforce_capacity_ = false;
};

}  // namespace sofe::costmodel
