#pragma once
// The convex piecewise-linear load cost of Section VII-B (Fig. 7), taken
// from Fortz & Thorup's OSPF weight optimization [46].
//
// With load l and capacity p:
//
//   c(l) = l                      l/p <= 1/3
//          3l  -    2/3 p         l/p <= 2/3
//          10l -   16/3 p         l/p <= 9/10
//          70l -  178/3 p         l/p <= 1
//          500l - 1468/3 p        l/p <= 11/10
//          5000l - 16318/3 p      otherwise
//
// Note: the paper prints the last intercept as 14318/3, which breaks
// continuity at l/p = 11/10; the original Fortz-Thorup function (and Fig. 7
// itself) uses 16318/3, which we implement.  Continuity at every breakpoint
// is unit-tested.

#include <cassert>

namespace sofe::costmodel {

/// Piecewise-linear congestion cost; homogeneous: cost(a*l, a*p) = a*cost(l,p).
double fortz_thorup(double load, double capacity);

/// Derivative (slope) of the cost at the given utilization; used by tests
/// and by marginal-cost pricing in the online simulator.
double fortz_thorup_slope(double load, double capacity);

}  // namespace sofe::costmodel
