#include "sofe/api/solver.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "sofe/api/report.hpp"
#include "sofe/dist/sharded_closure.hpp"
#include "sofe/online/simulator.hpp"
#include "sofe/util/stopwatch.hpp"

namespace sofe::online {

OnlineResult simulate(const topology::Topology& topo, const OnlineConfig& cfg,
                      api::Solver& solver) {
  // One code path for both overloads: the session is just another embedder,
  // which is what makes the bit-identity guarantee structural rather than
  // maintained by hand.  Defined here (not in online/) so the layer DAG
  // stays one-directional: api depends on online, never the reverse.
  return simulate(topo, cfg, std::string(solver.name()),
                  [&solver](const Problem& p) { return solver.solve(p); });
}

}  // namespace sofe::online

namespace sofe::api {

// Out of line so solver.hpp can hold the sharded cache behind an incomplete
// dist::ShardedClosure (the api header stays free of dist includes).
ClosureSession::ClosureSession() = default;
ClosureSession::~ClosureSession() = default;

template <typename StoredFn>
void ClosureSession::plan_retention(const std::vector<NodeId>& hubs, int retention,
                                    std::size_t stored_rows, const StoredFn& stored,
                                    SolveReport& report) {
  // keep = requested hubs (duplicates fine; retain dedupes) + up to
  // `retention` stored LRU hubs, most recently requested first.  Every
  // stored hub is requested, retained or evicted — the tallies below
  // partition `stored_rows` accordingly.
  keep_.assign(hubs.begin(), hubs.end());
  const std::unordered_set<NodeId> requested(hubs.begin(), hubs.end());
  const std::unordered_set<NodeId> prev(key_hubs_.begin(), key_hubs_.end());
  std::size_t requested_stored = 0;
  int hits = 0;
  for (NodeId h : requested) {
    if (!stored(h)) continue;
    ++requested_stored;
    if (!prev.contains(h)) ++hits;  // a Dijkstra the window saved
  }
  int retained = 0;
  for (NodeId h : lru_) {
    if (retained >= retention) break;
    if (requested.contains(h) || !stored(h)) continue;
    keep_.push_back(h);
    ++retained;
  }
  report.closure_row_hits = hits;
  report.closure_rows_retained = retained;
  report.closure_rows_evicted =
      static_cast<int>(stored_rows - requested_stored) - retained;
}

void ClosureSession::touch_lru(const std::vector<NodeId>& hubs, int retention) {
  const std::unordered_set<NodeId> requested(hubs.begin(), hubs.end());
  std::erase_if(lru_, [&](NodeId h) { return requested.contains(h); });
  std::vector<NodeId> next;
  next.reserve(requested.size() + lru_.size());
  std::unordered_set<NodeId> seen;
  for (NodeId h : hubs) {
    if (seen.insert(h).second) next.push_back(h);
  }
  next.insert(next.end(), lru_.begin(), lru_.end());
  // The window retains at most `retention` extras per acquire; a modest
  // multiple of that is enough recency history for eligibility to rotate
  // through, and it bounds the list on endless non-recurring streams.
  const std::size_t cap =
      seen.size() + static_cast<std::size_t>(std::max(retention, 0)) * 4;
  if (next.size() > cap) next.resize(cap);
  lru_ = std::move(next);
}

const graph::MetricClosure& ClosureSession::acquire(const graph::Graph& g,
                                                    const std::vector<NodeId>& hubs,
                                                    const ClosureRequest& req,
                                                    SolveReport& report) {
  report.closure_hubs = static_cast<int>(hubs.size());
  const bool window = req.incremental && !req.bounded;  // retention applies
  const auto edges = g.edges();

  // Structural part of the key: node count + edge endpoints.  Costs are
  // compared edge by edge below, and the differing ones ARE the arc-delta
  // list the repair path consumes.
  const bool structure_same =
      valid_ && closure_.bounded() == req.bounded && key_nodes_ == g.node_count() &&
      key_edges_.size() == edges.size() &&
      std::equal(edges.begin(), edges.end(), key_edges_.begin(),
                 [](const graph::Edge& a, const graph::Edge& b) {
                   return a.u == b.u && a.v == b.v;
                 });

  deltas_.clear();
  missing_.clear();
  bool hubs_ok = false;
  if (structure_same) {
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].cost != key_edges_[i].cost) {
        deltas_.push_back(graph::EdgeCostDelta{static_cast<graph::EdgeId>(i),
                                               key_edges_[i].cost, edges[i].cost});
      }
    }
    if (req.incremental && !req.bounded) {
      // Union semantics: only hubs without a stored tree matter.  Stale
      // extra hubs from earlier acquires are invisible to queries (each
      // tree is independent) and get repaired along with the rest.
      for (NodeId h : hubs) {
        if (!closure_.is_hub(h)) missing_.push_back(h);
      }
      hubs_ok = missing_.empty();
    } else {
      // Strict semantics: the exact hub sequence (and, when bounded, the
      // exact settle-target sequence — the truncation scope is part of
      // what the cached trees mean).
      hubs_ok = key_hubs_ == hubs &&
                (!req.bounded ||
                 (key_targets_.size() == req.settle_targets.size() &&
                  std::equal(key_targets_.begin(), key_targets_.end(),
                             req.settle_targets.begin())));
    }
  }
  report.closure_delta_edges = static_cast<int>(deltas_.size());

  row_changes_.clear();
  added_hubs_.clear();
  const auto is_stored = [this](NodeId h) { return closure_.is_hub(h); };
  if (structure_same && hubs_ok && deltas_.empty()) {
    report.closure_cache_hit = true;
    last_kind_ = core::ClosureUpdate::Kind::kUnchanged;
    if (window) {
      // Nothing is dropped on a pure hit: every extra stored row stays.
      const std::unordered_set<NodeId> prev(key_hubs_.begin(), key_hubs_.end());
      const std::unordered_set<NodeId> requested(hubs.begin(), hubs.end());
      for (NodeId h : requested) {
        if (!prev.contains(h)) ++report.closure_row_hits;
      }
      report.closure_rows_retained =
          static_cast<int>(closure_.hub_count() - requested.size());
      touch_lru(hubs, req.retention);
    }
    report.closure_bytes = closure_.memory_bytes();
    return closure_;
  }
  report.closure_cache_hit = false;

  const util::Stopwatch watch;
  g.ensure_csr();  // make subsequent csr() reads safe for worker threads

  // Repair-vs-rebuild: repair scales with the affected region, a rebuild
  // with |hubs| * (V + E); past a quarter of the edges changing, affected
  // regions approach whole trees and the rebuild's sequential sweeps win.
  const bool repairable =
      structure_same && window && deltas_.size() * 4 <= edges.size();
  if (repairable) {
    // Keep the requested hubs plus the retention window's warm rows;
    // everything kept is revalidated by the refresh below, so a retained
    // hub that returns later is served already-repaired (a row hit).
    plan_retention(hubs, req.retention, closure_.hub_count(), is_stored, report);
    closure_.retain(keep_);
    closure_.refresh(g, deltas_, req.threads, &engine_, &row_changes_);
    if (!missing_.empty()) closure_.extend(g, missing_, req.threads, &engine_);
    added_hubs_ = missing_;
    last_kind_ = core::ClosureUpdate::Kind::kRepaired;
    report.closure_repaired = true;
    report.closure_hubs_added = static_cast<int>(missing_.size());
    for (const graph::EdgeCostDelta& d : deltas_) {
      key_edges_[static_cast<std::size_t>(d.edge)].cost = d.new_cost;
    }
    // The strict key follows the REQUEST, not the stored superset: retained
    // rows are invisible to queries, and a later non-incremental acquire
    // must not falsely hit on a closure whose trees changed.
    key_hubs_ = hubs;
  } else {
    if (window && valid_) {
      report.closure_rows_evicted = static_cast<int>(closure_.hub_count());
    }
    graph::ClosureScope scope;
    scope.bounded = req.bounded;
    scope.extra_targets = req.settle_targets;
    closure_.build(g, hubs, req.threads, &engine_, scope);
    last_kind_ = core::ClosureUpdate::Kind::kRebuilt;
    key_nodes_ = g.node_count();
    key_edges_.assign(edges.begin(), edges.end());
    key_hubs_ = hubs;
    key_targets_.assign(req.settle_targets.begin(), req.settle_targets.end());
    valid_ = true;
    sharded_valid_ = false;  // the key storage no longer describes the sharded cache
  }
  if (window) touch_lru(hubs, req.retention);
  report.closure_bytes = closure_.memory_bytes();
  report.closure_seconds = watch.seconds();
  return closure_;
}

const dist::ShardedClosure& ClosureSession::acquire_sharded(
    const graph::Graph& g, const std::vector<NodeId>& hubs, int controllers,
    const ClosureRequest& req, dist::MessageBus& bus, SolveReport& report) {
  assert(controllers >= 1);
  report.closure_hubs = static_cast<int>(hubs.size());
  const bool window = req.incremental && !req.bounded;
  const auto edges = g.edges();

  // Same exact key as acquire(), plus the controller count: a different k
  // means a different partition, different borders, a different exchange —
  // the cached shards describe nothing of the new deployment.
  const bool structure_same =
      sharded_valid_ && sharded_ != nullptr && sharded_->bounded() == req.bounded &&
      sharded_k_ == controllers && key_nodes_ == g.node_count() &&
      key_edges_.size() == edges.size() &&
      std::equal(edges.begin(), edges.end(), key_edges_.begin(),
                 [](const graph::Edge& a, const graph::Edge& b) {
                   return a.u == b.u && a.v == b.v;
                 });

  deltas_.clear();
  missing_.clear();
  bool hubs_ok = false;
  if (structure_same) {
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].cost != key_edges_[i].cost) {
        deltas_.push_back(graph::EdgeCostDelta{static_cast<graph::EdgeId>(i),
                                               key_edges_[i].cost, edges[i].cost});
      }
    }
    if (req.incremental && !req.bounded) {
      for (NodeId h : hubs) {
        if (!sharded_->closure().is_hub(h)) missing_.push_back(h);
      }
      hubs_ok = missing_.empty();
    } else {
      hubs_ok = key_hubs_ == hubs && key_targets_.size() == req.settle_targets.size() &&
                std::equal(key_targets_.begin(), key_targets_.end(), req.settle_targets.begin());
    }
  }
  report.closure_delta_edges = static_cast<int>(deltas_.size());

  row_changes_.clear();
  added_hubs_.clear();
  const auto is_stored = [this](NodeId h) { return sharded_->closure().is_hub(h); };
  if (structure_same && hubs_ok && deltas_.empty()) {
    report.closure_cache_hit = true;
    last_kind_ = core::ClosureUpdate::Kind::kUnchanged;
    if (window) {
      const std::unordered_set<NodeId> prev(key_hubs_.begin(), key_hubs_.end());
      const std::unordered_set<NodeId> requested(hubs.begin(), hubs.end());
      for (NodeId h : requested) {
        if (!prev.contains(h)) ++report.closure_row_hits;
      }
      report.closure_rows_retained =
          static_cast<int>(sharded_->closure().hub_count() - requested.size());
      touch_lru(hubs, req.retention);
    }
    report.closure_bytes = sharded_->memory_bytes();
    return *sharded_;
  }
  report.closure_cache_hit = false;

  const util::Stopwatch watch;
  g.ensure_csr();

  const bool repairable =
      structure_same && window && deltas_.size() * 4 <= edges.size();
  if (repairable) {
    // retain -> refresh -> extend, every re-exchanged row charged on `bus`
    // by the ShardedClosure itself.  refresh clears `row_changes_` before
    // filling it; extend appends, so the combined list is this solve's
    // pricing-invalidation feed.  The keep-list includes the retention
    // window: a retained source hub that returns next acquire is NOT
    // missing, so no controller re-ships its rows (tested).
    plan_retention(hubs, req.retention, sharded_->closure().hub_count(), is_stored, report);
    sharded_->retain(keep_);
    if (!deltas_.empty()) sharded_->refresh(g, deltas_, req.threads, bus, &row_changes_);
    if (!missing_.empty()) sharded_->extend(g, hubs, req.threads, bus, &row_changes_);
    added_hubs_ = missing_;
    last_kind_ = core::ClosureUpdate::Kind::kRepaired;
    report.closure_repaired = true;
    report.closure_hubs_added = static_cast<int>(missing_.size());
    for (const graph::EdgeCostDelta& d : deltas_) {
      key_edges_[static_cast<std::size_t>(d.edge)].cost = d.new_cost;
    }
    key_hubs_ = hubs;
  } else {
    if (window && sharded_valid_ && sharded_ != nullptr) {
      report.closure_rows_evicted = static_cast<int>(sharded_->closure().hub_count());
    }
    // Cold rebuild: the coordinator re-partitions and ships each peer its
    // assignment (one protocol round), then the sharded build runs its
    // charged border/hub row exchange.
    dist::Partition part = dist::partition_bfs(g, controllers);
    if (controllers > 1) {
      bus.broadcast(static_cast<std::size_t>(controllers - 1),
                    static_cast<std::size_t>(g.node_count()));
      bus.end_round();
    }
    if (sharded_ == nullptr) sharded_ = std::make_unique<dist::ShardedClosure>();
    sharded_->build(g, std::move(part), hubs, req.settle_targets, req.threads, bus, req.bounded);
    last_kind_ = core::ClosureUpdate::Kind::kRebuilt;
    key_nodes_ = g.node_count();
    key_edges_.assign(edges.begin(), edges.end());
    key_hubs_ = hubs;
    key_targets_.assign(req.settle_targets.begin(), req.settle_targets.end());
    sharded_k_ = controllers;
    sharded_valid_ = true;
    valid_ = false;  // the key storage no longer describes the plain cache
  }
  if (window) touch_lru(hubs, req.retention);
  report.closure_bytes = sharded_->memory_bytes();
  report.closure_seconds = watch.seconds();
  return *sharded_;
}

ClosureEpoch ClosureSession::publish(const graph::Graph& g, const std::vector<NodeId>& hubs,
                                     const ClosureRequest& req, SolveReport& report) {
  // The outcome acquire records (hit / repair / rebuild) becomes the
  // epoch's snapshot advance; the snapshot itself shares row slabs with
  // the live closure copy-on-write (DESIGN.md §13), so publishing costs
  // O(rows) reference copies — not a deep copy of O(rows · V) trees.
  // Publishing over an un-retired epoch replaces it (the old handle's
  // rows are released first); retire() between publishes keeps the
  // intervening repair writing in place instead of relocating.
  (void)acquire(g, hubs, req, report);
  closure_.snapshot_to(epoch_closure_);
  published_ = true;
  ++generation_;
  ClosureEpoch epoch;
  epoch.closure = &epoch_closure_;
  epoch.update = last_update();
  epoch.generation = generation_;
  return epoch;
}

ServiceForest Solver::solve(const Problem& p) {
  assert(p.well_formed());
  report_ = SolveReport{};
  report_.solver = std::string(name());
  const util::Stopwatch watch;
  ServiceForest f = do_solve(p, report_);
  report_.total_seconds = watch.seconds();
  report_.feasible = !f.empty();
  report_.total_cost = report_.feasible ? core::total_cost(p, f) : 0.0;
  if (sink_ != nullptr) sink_->add(report_);
  return f;
}

ServiceForest Solver::solve_epoch(const Problem& p, const ClosureEpoch& epoch) {
  assert(p.well_formed());
  assert((!wants_epoch_closure() || epoch.closure != nullptr) &&
         "this solver prices against the published closure");
  report_ = SolveReport{};
  report_.solver = std::string(name());
  const util::Stopwatch watch;
  ServiceForest f = do_solve_epoch(p, epoch, report_);
  report_.total_seconds = watch.seconds();
  report_.feasible = !f.empty();
  report_.total_cost = report_.feasible ? core::total_cost(p, f) : 0.0;
  if (sink_ != nullptr) sink_->add(report_);
  return f;
}

}  // namespace sofe::api
