#include "sofe/api/solver.hpp"

#include <algorithm>
#include <cassert>

#include "sofe/online/simulator.hpp"
#include "sofe/util/stopwatch.hpp"

namespace sofe::online {

OnlineResult simulate(const topology::Topology& topo, const OnlineConfig& cfg,
                      api::Solver& solver) {
  // One code path for both overloads: the session is just another embedder,
  // which is what makes the bit-identity guarantee structural rather than
  // maintained by hand.  Defined here (not in online/) so the layer DAG
  // stays one-directional: api depends on online, never the reverse.
  return simulate(topo, cfg, std::string(solver.name()),
                  [&solver](const Problem& p) { return solver.solve(p); });
}

}  // namespace sofe::online

namespace sofe::api {

const graph::MetricClosure& ClosureSession::acquire(const graph::Graph& g,
                                                    const std::vector<NodeId>& hubs, int threads,
                                                    SolveReport& report) {
  report.closure_hubs = static_cast<int>(hubs.size());
  const auto edges = g.edges();
  const bool hit =
      valid_ && key_nodes_ == g.node_count() && key_edges_.size() == edges.size() &&
      key_hubs_ == hubs &&
      std::equal(edges.begin(), edges.end(), key_edges_.begin(),
                 [](const graph::Edge& a, const graph::Edge& b) {
                   return a.u == b.u && a.v == b.v && a.cost == b.cost;
                 });
  report.closure_cache_hit = hit;
  if (hit) return closure_;

  const util::Stopwatch watch;
  g.ensure_csr();  // make subsequent csr() reads safe for worker threads
  closure_.build(g, hubs, threads, &engine_);
  report.closure_seconds = watch.seconds();
  key_nodes_ = g.node_count();
  key_edges_.assign(edges.begin(), edges.end());
  key_hubs_ = hubs;
  valid_ = true;
  return closure_;
}

ServiceForest Solver::solve(const Problem& p) {
  assert(p.well_formed());
  report_ = SolveReport{};
  report_.solver = std::string(name());
  const util::Stopwatch watch;
  ServiceForest f = do_solve(p, report_);
  report_.total_seconds = watch.seconds();
  report_.feasible = !f.empty();
  report_.total_cost = report_.feasible ? core::total_cost(p, f) : 0.0;
  return f;
}

}  // namespace sofe::api
