#include "sofe/online/admission.hpp"

// Admission policies (DESIGN.md §14).  Lives in api/ alongside the solver
// registry whose option-string conventions the spec parser follows — the
// same layering as pipeline.cpp (declared in online/, implemented here).

#include <algorithm>
#include <charconv>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

namespace sofe::online {

namespace {

using graph::Cost;

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("admission policy: " + what);
}

/// Parses the value of "<key>=<float>" with the registry's strictness:
/// full consumption (trailing junk throws), finite, nonnegative.
double parse_value(std::string_view key, std::string_view text) {
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    bad_spec(std::string(key) + " must be a number (got \"" + std::string(text) + "\")");
  }
  if (value < 0.0) {
    bad_spec(std::string(key) + " must be >= 0 (got " + std::string(text) + ")");
  }
  return value;
}

class GreedyPolicy final : public AdmissionPolicy {
 public:
  std::string_view name() const noexcept override { return "greedy"; }
  void decide(const std::vector<AdmissionCandidate>& batch,
              std::vector<char>& intent) const override {
    intent.assign(batch.size(), 0);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      intent[i] = batch[i].feasible ? 1 : 0;
    }
  }
};

class ThresholdPricePolicy final : public AdmissionPolicy {
 public:
  explicit ThresholdPricePolicy(double theta)
      : theta_(theta), name_("threshold-price,theta=" + std::to_string(theta)) {}
  std::string_view name() const noexcept override { return name_; }
  void decide(const std::vector<AdmissionCandidate>& batch,
              std::vector<char>& intent) const override {
    intent.assign(batch.size(), 0);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const AdmissionCandidate& c = batch[i];
      // Congestion surcharge test: the Fortz-Thorup price of an embedding
      // at the CURRENT loads against the same embedding on an empty
      // network.  The ratio is >= 1 (the cost function is increasing in
      // load), so theta >= 1 admits every uncongested arrival and the knob
      // tightens monotonically: a smaller theta never admits an arrival a
      // larger theta rejected (tested).  A zero-cost embedding (possible
      // at demand 0) is free congestion-wise and always passes.
      intent[i] = c.feasible && c.marginal_cost <= theta_ * c.uncongested_cost ? 1 : 0;
      if (c.feasible && c.marginal_cost <= 0.0) intent[i] = 1;
    }
  }

 private:
  double theta_;
  std::string name_;
};

class RejectCostliestPolicy final : public AdmissionPolicy {
 public:
  explicit RejectCostliestPolicy(double budget)
      : budget_(budget), name_("reject-costliest,budget=" + std::to_string(budget)) {}
  std::string_view name() const noexcept override { return name_; }
  void decide(const std::vector<AdmissionCandidate>& batch,
              std::vector<char>& intent) const override {
    // Budgeted batch admission: rank the epoch's feasible arrivals by
    // marginal cost (ties broken by slot, so the order is total and the
    // decision deterministic) and admit cheapest-first while the batch's
    // running admitted cost stays within the budget.  Nothing is preempted:
    // arrivals admitted in earlier epochs are untouchable, and the budget
    // resets every epoch.  At epoch_size 1 this degenerates to "admit iff
    // the single arrival costs at most the budget".
    intent.assign(batch.size(), 0);
    std::vector<std::size_t> order(batch.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (batch[a].marginal_cost != batch[b].marginal_cost) {
        return batch[a].marginal_cost < batch[b].marginal_cost;
      }
      return batch[a].slot < batch[b].slot;
    });
    Cost spent = 0.0;
    for (const std::size_t i : order) {
      if (!batch[i].feasible) continue;
      if (spent + batch[i].marginal_cost > budget_) continue;
      spent += batch[i].marginal_cost;
      intent[i] = 1;
    }
  }

 private:
  double budget_;
  std::string name_;
};

}  // namespace

std::unique_ptr<AdmissionPolicy> make_admission_policy(std::string_view spec) {
  constexpr std::string_view kPrefix = "admission/";
  if (spec.starts_with(kPrefix)) spec.remove_prefix(kPrefix.size());

  const std::size_t comma = spec.find(',');
  const std::string_view policy = spec.substr(0, comma);
  std::string_view params =
      comma == std::string_view::npos ? std::string_view{} : spec.substr(comma + 1);

  const bool greedy = policy == "greedy";
  const bool threshold = policy == "threshold-price";
  const bool costliest = policy == "reject-costliest";
  if (!greedy && !threshold && !costliest) {
    bad_spec("unknown policy \"" + std::string(policy) +
             "\" (valid: greedy, threshold-price, reject-costliest)");
  }
  if (greedy && !params.empty()) {
    bad_spec("greedy takes no parameters (got \"" + std::string(params) + "\")");
  }

  double theta = 2.0;
  double budget = std::numeric_limits<double>::infinity();
  bool theta_set = false, budget_set = false;
  while (!params.empty()) {
    const std::size_t next = params.find(',');
    const std::string_view field = params.substr(0, next);
    params = next == std::string_view::npos ? std::string_view{} : params.substr(next + 1);
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      bad_spec("expected <key>=<value>, got \"" + std::string(field) + "\"");
    }
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    if (threshold && key == "theta") {
      if (theta_set) bad_spec("duplicate key theta");
      theta = parse_value(key, value);
      theta_set = true;
    } else if (costliest && key == "budget") {
      if (budget_set) bad_spec("duplicate key budget");
      budget = parse_value(key, value);
      budget_set = true;
    } else {
      bad_spec("unknown key \"" + std::string(key) + "\" for policy " + std::string(policy));
    }
  }

  if (threshold) return std::make_unique<ThresholdPricePolicy>(theta);
  if (costliest) return std::make_unique<RejectCostliestPolicy>(budget);
  return std::make_unique<GreedyPolicy>();
}

}  // namespace sofe::online
