#pragma once
// Unified solver session API (DESIGN.md §7; the delta-aware closure
// session is §8, the repair-aware pricing cache §9).
//
// Every embedding algorithm in the library — SOFDA, SOFDA-SS, the Section
// VIII baselines, the multi-controller pipeline and the exact solver — is
// exposed as a stateful `Solver` object with one uniform entry point,
// `solve(const Problem&) -> ServiceForest`.  A Solver is a *session*: it
// owns a persistent ShortestPathEngine and a MetricClosure cache that
// survive across solve() calls, so sequential workloads (the online
// simulator's arrival stream, bench sweeps over seeds) reuse workspaces
// instead of reallocating O(hubs · V) state per call, and an unchanged
// network + hub set skips closure construction entirely.
//
// The free functions (core::sofda, core::sofda_ss, baselines::run,
// dist::distributed_sofda, exact::solve_exact) remain as one-shot shims;
// solvers are obtained by name through the SolverRegistry (registry.hpp).

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sofe/core/chain_walk.hpp"
#include "sofe/core/forest.hpp"
#include "sofe/core/pricing.hpp"
#include "sofe/core/sofda.hpp"
#include "sofe/exact/solver.hpp"
#include "sofe/graph/metric_closure.hpp"
#include "sofe/graph/shortest_path_engine.hpp"

namespace sofe::dist {
class MessageBus;
class ShardedClosure;
}  // namespace sofe::dist

namespace sofe::api {

using core::Cost;
using core::NodeId;
using core::Problem;
using core::ServiceForest;

/// Solver-wide tuning knobs.  Absorbs core::AlgoOptions and generalizes its
/// closure_threads into `threads`, the session-wide parallelism knob: it
/// drives both metric-closure construction and SOFDA candidate pricing.
/// Every parallel path is bit-identical to the serial one (tested), so
/// `threads` is purely a speed knob, never a results knob.
struct SolverOptions {
  kstroll::StrollAlgorithm stroll =
      kstroll::StrollAlgorithm::kCheapestInsertion;        // k-stroll solver variant
  steiner::Algorithm steiner = steiner::Algorithm::kMehlhorn;  // Steiner-tree variant
  bool shorten = true;  // apply the pass-through shortening post-step
  int threads = 1;      // solver-wide: closure build + chain pricing workers
  /// Delta-aware session cache (DESIGN.md §8): when only edge costs changed
  /// since the cached closure was built, repair its trees in place
  /// (ShortestPathEngine::repair) instead of rebuilding, and grow the hub
  /// set incrementally instead of keying on the exact hub sequence.  Like
  /// `threads` this is purely a speed knob: repaired trees are bit-identical
  /// to rebuilt ones (tested), so results never depend on it.  Off restores
  /// the strict rebuild-on-any-change session of the pre-incremental API
  /// (the bench's recomputing baseline).
  bool incremental = true;
  /// Repair-aware k-stroll pricing (DESIGN.md §9): SOFDA sessions keep a
  /// PricedChain cache per (source, last VM) that subscribes to the
  /// closure session's change stream — after a repair, only the chains
  /// whose hub rows, lift paths or setup costs were actually touched
  /// re-price (through the shared-block instance assembly); a rebuild
  /// flushes everything.  Like `incremental`, purely a speed knob:
  /// candidates are bitwise identical to the recomputing path at any
  /// thread count (tested, and re-asserted on every bench_fig12_online
  /// panel).  Off restores per-solve from-scratch pricing.
  bool incremental_pricing = true;
  /// Build session closures bounded: every hub tree stops once all hubs and
  /// all destinations are settled (run_until_settled).  Exact for every
  /// query SOFDA pricing and re-homing perform, and cheaper on large graphs
  /// with clustered hubs, but truncated trees cannot be repaired — bounded
  /// sessions rebuild on every cost change, so prefer `incremental` for
  /// arrival streams and `bounded_closure` for one-shot solves.
  bool bounded_closure = false;
  /// Steady-state row retention window (DESIGN.md §13): how many hub rows
  /// beyond the current request the closure session keeps warm, most
  /// recently requested first.  An arrival stream with recurring sources
  /// (online::OnlineConfig::source_pool) then finds a returning source's
  /// tree already stored — revalidated against the same delta stream as
  /// every live row — instead of re-running its Dijkstra.  Retained rows
  /// cost one repair per price change while they stay in the window, so
  /// the window trades repair work for build work; 0 disables retention
  /// (every acquire drops all non-requested rows, the pre-window
  /// behaviour).  Purely a speed/memory knob: requested-hub trees are
  /// bit-identical with any window (tested).  Only incremental unbounded
  /// sessions retain; strict/bounded sessions ignore this.
  int retention_rows = 256;
  exact::ExactLimits exact_limits;  // the "exact" solver's search budget

  /// View for the procedural (core/baselines/dist) layers.
  core::AlgoOptions algo() const {
    core::AlgoOptions o;
    o.stroll = stroll;
    o.steiner = steiner;
    o.shorten = shorten;
    o.closure_threads = threads;
    return o;
  }

  static SolverOptions from(const core::AlgoOptions& o) {
    SolverOptions s;
    s.stroll = o.stroll;
    s.steiner = o.steiner;
    s.shorten = o.shorten;
    s.threads = o.closure_threads;
    return s;
  }
};

/// Uniform per-solve diagnostics, filled by Solver::solve.  Absorbs
/// SofdaStats/ConflictStats (zeroed for non-SOFDA solvers) plus the
/// distributed protocol ledger, the exact-solver certificate and a timing
/// breakdown; fields a given solver does not produce stay at their defaults.
struct SolveReport {
  std::string solver;          // registry name of the solver that ran
  bool feasible = false;       // a non-empty forest was returned
  Cost total_cost = 0.0;       // core::total_cost of the returned forest

  core::SofdaStats sofda;      // SOFDA-family runs (incl. dist/*)

  int controllers = 0;         // dist/*: k actually used
  std::size_t messages = 0;    //   directed controller-to-controller messages
  std::size_t payload_items = 0;
  std::size_t payload_bytes = 0;  // honest wire size of those items
  int rounds = 0;

  bool optimal = false;        // exact: optimum proven within limits
  int bnb_nodes = 0;           //   branch-and-bound tree size

  bool closure_cache_hit = false;  // session cache: closure reused as-is
  bool closure_repaired = false;   //   cost deltas repaired in place
  int closure_hubs = 0;            //   hub count requested of the closure
  int closure_delta_edges = 0;     //   edges whose cost changed since cached
  int closure_hubs_added = 0;      //   hubs newly built by an incremental acquire

  int pricing_hits = 0;      // chains served from the pricing cache (§9)
  int pricing_repriced = 0;  //   chains re-priced this solve
  bool pricing_flushed = false;  //   this solve dropped every cached chain

  /// Retention-window tallies (DESIGN.md §13).  A "row hit" is a requested
  /// hub whose tree was already stored but was NOT part of the previous
  /// request — i.e. a Dijkstra the retention window (or union cache)
  /// saved.  retained counts rows kept warm beyond this request's hubs;
  /// evicted counts stored rows this acquire dropped (LRU overflow or
  /// rebuild).  closure_bytes is the session closure's slab footprint
  /// after the acquire (MetricClosure::memory_bytes).
  int closure_row_hits = 0;
  int closure_rows_retained = 0;
  int closure_rows_evicted = 0;
  std::size_t closure_bytes = 0;

  double closure_seconds = 0.0;  // hub-tree (re)construction or repair
  double pricing_seconds = 0.0;  // candidate-chain pricing (SOFDA)
  double solve_seconds = 0.0;    // everything after pricing
  double total_seconds = 0.0;    // full solve() wall time
};

/// Per-acquire parameters of the session closure cache.
struct ClosureRequest {
  int threads = 1;           // as in MetricClosure::build
  bool incremental = true;   // SolverOptions::incremental
  bool bounded = false;      // SolverOptions::bounded_closure
  /// Extra settle targets of a bounded build (SOFDA passes the
  /// destinations); ignored when !bounded.  The span must stay alive for
  /// the duration of the acquire call only.
  std::span<const NodeId> settle_targets;
  /// LRU retention window size (SolverOptions::retention_rows): stored
  /// rows beyond the requested hubs kept warm by the repair path, most
  /// recently requested first.  Ignored unless incremental && !bounded.
  int retention = 0;
};

/// A published read-only closure epoch (DESIGN.md §10): the immutable
/// snapshot handle the admission pipeline's worker sessions price against.
/// Produced by ClosureSession::publish, consumed by Solver::solve_epoch.
/// The closure pointer and the update spans stay valid — and safe for any
/// number of concurrent readers — until the publishing session's retire().
struct ClosureEpoch {
  const graph::MetricClosure* closure = nullptr;
  /// The snapshot advance from the previous epoch to this one, in the
  /// shape core::PricingSession consumes: what publish()'s acquire did.
  core::ClosureUpdate update;
  /// Monotone per-publisher epoch counter (1 = first publish).  Workers
  /// feed it to PricingSession::price_epoch, which dedups the update by
  /// generation and flushes on gaps.
  std::uint64_t generation = 0;
};

/// Session-scoped MetricClosure cache shared by the concrete solvers.
///
/// `acquire` returns a closure holding Dijkstra trees for `hubs` over `g`,
/// recomputing only what actually changed.  The cache key is the exact
/// (node count, edge list incl. costs, hub membership) value rather than
/// (graph pointer, Graph::version()): version counters travel with Problem
/// copies, so two graphs can carry the same version at the same address
/// with different link prices — an exact key is what makes the session safe
/// to point at any Problem.  The O(E + hubs) comparison is noise next to
/// one Dijkstra, and it is exactly what produces the arc-delta list the
/// incremental path feeds to MetricClosure::refresh.
///
/// Outcomes of an incremental acquire (DESIGN.md §8):
///   * hit        — same structure, same costs, all hubs present: reuse.
///   * repair     — same structure, few cost deltas: repair every cached
///                  tree in place and build only the missing hubs.  The
///                  cached hub set is the UNION of requested sets (an
///                  arrival stream's VM hubs persist while source hubs
///                  churn); stale extra hubs are repaired along and are
///                  invisible to queries.
///   * rebuild    — structural change, hub-set cold start, or a delta list
///                  above the repair threshold (quarter of the edges: past
///                  that the affected regions approach whole trees and a
///                  rebuild's linear sweeps win).
/// Non-incremental sessions (SolverOptions::incremental = false) and
/// bounded closures key on the exact hub sequence (+ settle targets) and
/// only ever hit or rebuild.
class ClosureSession {
 public:
  ClosureSession();   // out of line: ShardedClosure is incomplete here
  ~ClosureSession();

  /// Updates report.closure_cache_hit/_repaired/_hubs/_delta_edges/
  /// _hubs_added and report.closure_seconds, and records the outcome for
  /// last_update().
  const graph::MetricClosure& acquire(const graph::Graph& g, const std::vector<NodeId>& hubs,
                                      const ClosureRequest& req, SolveReport& report);

  /// The sharded-mode acquire (DESIGN.md §11): the cached object is a
  /// dist::ShardedClosure over `controllers` domains, and every exchange a
  /// cold build or an incremental repair performs is charged on `bus` — the
  /// partition broadcast of a rebuild, the row exchange of the build, the
  /// dirtied-row re-exchange of a refresh, the new-row shipping of an
  /// extend.  Outcomes mirror acquire(): hit (same structure/costs/k, hubs
  /// present — nothing charged), repair (retain + refresh + extend on the
  /// sharded closure; incremental unbounded sessions only), rebuild
  /// (re-partition + full sharded build).  `req.settle_targets` names the
  /// problem's destinations — the sharded closure's advertisement targets,
  /// bounded or not.  Results are bit-identical to a fresh global closure
  /// at every k and thread count (tested), so sharing one session between
  /// plain and sharded acquires is safe; the two modes merely invalidate
  /// each other's cache.
  const dist::ShardedClosure& acquire_sharded(const graph::Graph& g,
                                              const std::vector<NodeId>& hubs, int controllers,
                                              const ClosureRequest& req, dist::MessageBus& bus,
                                              SolveReport& report);

  /// What the most recent acquire did to the cached closure, in the shape
  /// core::PricingSession consumes (DESIGN.md §9): hit -> unchanged,
  /// repair -> the per-row change sets from MetricClosure::refresh plus
  /// the hubs an incremental extend (re)built, rebuild -> flush.  The
  /// spans point into session storage overwritten by the next acquire.
  core::ClosureUpdate last_update() const noexcept {
    core::ClosureUpdate u;
    u.kind = last_kind_;
    u.rows = row_changes_;
    u.added_hubs = added_hubs_;
    return u;
  }

  /// Drops the cached closure (the next acquire rebuilds).  A published
  /// epoch is unaffected: it holds its own row references.
  void invalidate() {
    valid_ = false;
    sharded_valid_ = false;
  }

  /// Publishes the session closure as a read-only epoch (DESIGN.md §10):
  /// acquires exactly as acquire() would — hit, repair or rebuild — then
  /// snapshots the result by sharing row slabs copy-on-write
  /// (MetricClosure::snapshot_to, §13): O(rows) reference copies and slab
  /// pins, never a deep copy.  The handle N pipeline workers may query
  /// concurrently stays bitwise frozen even while the live session keeps
  /// acquiring — a repair relocates any row an epoch still pins before
  /// writing it — so publish/acquire no longer exclude each other; the
  /// caller must merely not mutate `g` while a reader is mid-query.
  ClosureEpoch publish(const graph::Graph& g, const std::vector<NodeId>& hubs,
                       const ClosureRequest& req, SolveReport& report);

  /// Ends the published epoch's sharing phase: drops the snapshot's row
  /// references and unpins its slabs (the caller guarantees no reader
  /// still dereferences the handle).  The cached closure itself is
  /// retained, so the next publish() repairs instead of rebuilding — and
  /// retiring BEFORE the next publish keeps that repair in place rather
  /// than copy-on-write.
  void retire() noexcept {
    epoch_closure_.release_rows();
    published_ = false;
  }

  /// The session's single-thread build engine (exposed so solvers can run
  /// auxiliary queries against persistent workspaces).
  graph::ShortestPathEngine& engine() noexcept { return engine_; }

 private:
  /// The retain keep-list of a repair-path acquire: the requested hubs
  /// plus up to `retention` stored LRU hubs.  Fills `keep_` (scratch) and
  /// the report's row-hit/retained/evicted tallies; `stored` answers
  /// whether a hub currently has a row, `stored_rows` is the row count
  /// before retention runs.
  template <typename StoredFn>
  void plan_retention(const std::vector<NodeId>& hubs, int retention, std::size_t stored_rows,
                      const StoredFn& stored, SolveReport& report);
  /// Moves this acquire's hubs to the front of the LRU recency list and
  /// prunes the tail (bounded by the retention window).
  void touch_lru(const std::vector<NodeId>& hubs, int retention);

  graph::MetricClosure closure_;
  graph::MetricClosure epoch_closure_;  // the published snapshot's row refs
  graph::ShortestPathEngine engine_;
  std::unique_ptr<dist::ShardedClosure> sharded_;  // sharded-mode cache (lazy)
  std::vector<NodeId> lru_;   // hubs by request recency, most recent first
  std::vector<NodeId> keep_;  // scratch: retain() keep-list
  bool valid_ = false;
  bool sharded_valid_ = false;
  int sharded_k_ = 0;               // controller count the sharded cache was built for
  bool published_ = false;          // epoch handle outstanding (publish/retire)
  std::uint64_t generation_ = 0;    // epochs published by this session
  NodeId key_nodes_ = 0;
  std::vector<graph::Edge> key_edges_;
  std::vector<NodeId> key_hubs_;     // exact-sequence key (non-incremental/bounded)
  std::vector<NodeId> key_targets_;  // bounded: the settle-target sequence
  std::vector<graph::EdgeCostDelta> deltas_;  // scratch
  std::vector<NodeId> missing_;               // scratch
  // last_update() storage, rewritten per acquire.
  core::ClosureUpdate::Kind last_kind_ = core::ClosureUpdate::Kind::kRebuilt;
  std::vector<graph::MetricClosure::RowDelta> row_changes_;
  std::vector<NodeId> added_hubs_;
};

class ReportAccumulator;

/// Abstract solver session.  Concrete implementations live behind the
/// SolverRegistry; all of them are deterministic in (problem, options) and
/// produce results bit-identical to their free-function counterparts.
///
/// Sessions are single-threaded objects (one Solver per driving thread);
/// `threads` parallelism happens *inside* a solve call.
class Solver {
 public:
  /// A fresh session with the given knobs (caches start cold).
  explicit Solver(SolverOptions opt = {}) : opt_(opt) {}
  virtual ~Solver() = default;
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// The registry name this solver answers to (e.g. "sofda", "dist/k=4").
  virtual std::string_view name() const noexcept = 0;

  /// Embeds one instance.  Returns an empty forest when infeasible.
  /// Diagnostics for the call are available from report() until the next
  /// solve().
  ServiceForest solve(const Problem& p);

  /// Embeds one instance against a published closure epoch (DESIGN.md
  /// §10): instead of maintaining its own ClosureSession, the solver
  /// prices against `epoch.closure` — shared, read-only, covering every
  /// hub the instance needs — and keys its caches to `epoch.generation`.
  /// Results are bit-identical to solve() on the same problem (the epoch
  /// is a cache, never an input).  Solvers that don't consume shared
  /// closures (wants_epoch_closure() == false) fall back to solve()
  /// semantics; callers may then skip publishing entirely.
  ServiceForest solve_epoch(const Problem& p, const ClosureEpoch& epoch);

  /// Whether solve_epoch actually reads the published closure.  The
  /// pipeline skips the per-epoch publish when no worker would use it.
  virtual bool wants_epoch_closure() const noexcept { return false; }

  const SolveReport& report() const noexcept { return report_; }

  /// Optional aggregation sink: every finished solve()'s report is folded
  /// into `sink` (report.hpp), so workloads that drive a session — the
  /// online simulator, the bench sweeps — get per-phase breakdowns for
  /// free.  Pass nullptr to detach.  The sink must outlive its use here.
  void set_report_sink(ReportAccumulator* sink) noexcept { sink_ = sink; }

  /// Live tuning knobs: mutations apply from the next solve() on (session
  /// caches detect semantic flips and restart cold where needed).
  SolverOptions& options() noexcept { return opt_; }
  const SolverOptions& options() const noexcept { return opt_; }

 protected:
  /// The algorithm body.  `report` arrives zeroed except for `solver`;
  /// feasible/total_cost/total_seconds are filled by the wrapper.
  virtual ServiceForest do_solve(const Problem& p, SolveReport& report) = 0;

  /// The epoch-mode body.  The default ignores the epoch and runs
  /// do_solve — correct for every solver (epochs are caches), merely
  /// missing the sharing; SofdaSolver overrides it to price against the
  /// published closure.
  virtual ServiceForest do_solve_epoch(const Problem& p, const ClosureEpoch& epoch,
                                       SolveReport& report) {
    (void)epoch;
    return do_solve(p, report);
  }

  SolverOptions opt_;

 private:
  SolveReport report_;
  ReportAccumulator* sink_ = nullptr;
};

}  // namespace sofe::api
