#pragma once
// SolveReport aggregation over a session's lifetime (DESIGN.md §8, with
// the pricing-cache tallies of §9).
//
// Every Solver::solve fills a SolveReport with a closure/pricing/solve/total
// timing breakdown plus the session-cache outcomes (closure hit / repaired /
// rebuilt, pricing chains cached / re-priced).  A ReportAccumulator folds
// those reports into per-phase count/mean/p50/p95 summaries, so the online
// simulator and the bench harnesses print phase breakdowns without any
// per-call bookkeeping of their own: attach one accumulator per solver via
// Solver::set_report_sink and read it after the workload.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sofe/api/solver.hpp"

namespace sofe::api {

/// Order-insensitive summary of one timing series (seconds).  Percentiles
/// use the nearest-rank definition: p_q = sorted[ceil(q * count)] (1-based),
/// so p50 of {1, 2, 3, 4} is 2 and p95 of 100 samples is the 95th.
struct PhaseSummary {
  std::size_t count = 0;  // samples folded in (== solves when attached throughout)
  double total = 0.0;     // sum of all samples
  double mean = 0.0;      // total / count (0 when empty)
  double p50 = 0.0;       // nearest-rank median
  double p95 = 0.0;       // nearest-rank 95th percentile
  double min = 0.0;       // smallest sample
  double max = 0.0;       // largest sample
};

class ReportAccumulator {
 public:
  /// Folds one solve's report in (phase samples + cache/feasibility tallies).
  void add(const SolveReport& r) {
    closure_.push_back(r.closure_seconds);
    pricing_.push_back(r.pricing_seconds);
    solve_.push_back(r.solve_seconds);
    total_.push_back(r.total_seconds);
    if (r.closure_cache_hit) ++cache_hits_;
    if (r.closure_repaired) ++repairs_;
    if (!r.feasible) ++infeasible_;
    pricing_hits_ += static_cast<std::size_t>(r.pricing_hits);
    pricing_repriced_ += static_cast<std::size_t>(r.pricing_repriced);
    if (r.pricing_flushed) ++pricing_flushes_;
    row_hits_ += static_cast<std::size_t>(r.closure_row_hits);
    rows_retained_ += static_cast<std::size_t>(r.closure_rows_retained);
    rows_evicted_ += static_cast<std::size_t>(r.closure_rows_evicted);
    peak_closure_bytes_ = std::max(peak_closure_bytes_, r.closure_bytes);
  }

  /// Pipeline phases (DESIGN.md §10), sampled by online::Pipeline's commit
  /// stage rather than by solvers: how long an arrival sat claimable in
  /// the queue before a worker picked it up, and how long its commit-stage
  /// turn took (stale validation + any re-solve + ledger charge).
  void add_queue_wait(double seconds) { queue_wait_.push_back(seconds); }
  void add_commit(double seconds) { commit_.push_back(seconds); }

  /// Resets the accumulator to its freshly-constructed state.
  void clear() { *this = ReportAccumulator{}; }

  /// Reports folded in so far.
  std::size_t solves() const noexcept { return total_.size(); }
  /// Solves whose closure was reused bitwise (SolveReport::closure_cache_hit).
  std::size_t cache_hits() const noexcept { return cache_hits_; }
  /// Solves whose closure was repaired in place (closure_repaired).
  std::size_t repairs() const noexcept { return repairs_; }
  /// Solves that neither hit the cache nor repaired it (cold or full-rebuild
  /// closures, and solvers without a session cache).
  std::size_t rebuilds() const noexcept { return solves() - cache_hits_ - repairs_; }
  /// Solves that returned an empty forest.
  std::size_t infeasible() const noexcept { return infeasible_; }
  /// Chains served from the pricing cache across all solves (DESIGN.md §9).
  std::size_t pricing_hits() const noexcept { return pricing_hits_; }
  /// Chains re-priced across all solves (cold, invalidated, or flushed).
  std::size_t pricing_repriced() const noexcept { return pricing_repriced_; }
  /// Solves on which the pricing cache dropped every cached chain.
  std::size_t pricing_flushes() const noexcept { return pricing_flushes_; }
  /// Requested hubs served from warm rows the previous request did not
  /// name (SolveReport::closure_row_hits summed; DESIGN.md §13).
  std::size_t closure_row_hits() const noexcept { return row_hits_; }
  /// Rows kept beyond their request by the retention window, summed.
  std::size_t closure_rows_retained() const noexcept { return rows_retained_; }
  /// Stored rows dropped by acquires (LRU overflow or rebuild), summed.
  std::size_t closure_rows_evicted() const noexcept { return rows_evicted_; }
  /// Largest per-solve closure slab footprint seen (closure_bytes max).
  std::size_t peak_closure_bytes() const noexcept { return peak_closure_bytes_; }

  /// Summary of the closure (re)build/repair phase, seconds.
  PhaseSummary closure() const { return summarize(closure_); }
  /// Summary of the candidate-chain pricing phase, seconds.
  PhaseSummary pricing() const { return summarize(pricing_); }
  /// Summary of everything after pricing, seconds.
  PhaseSummary solve() const { return summarize(solve_); }
  /// Summary of full solve() wall time, seconds.
  PhaseSummary total() const { return summarize(total_); }
  /// Summary of arrival queue wait, seconds (pipeline workloads; empty
  /// count for sequential drivers).
  PhaseSummary queue_wait() const { return summarize(queue_wait_); }
  /// Summary of per-arrival commit-stage time, seconds (pipeline).
  PhaseSummary commit() const { return summarize(commit_); }

 private:
  static PhaseSummary summarize(std::vector<double> samples) {
    PhaseSummary s;
    s.count = samples.size();
    if (samples.empty()) return s;
    std::sort(samples.begin(), samples.end());
    for (double v : samples) s.total += v;
    s.mean = s.total / static_cast<double>(s.count);
    const auto rank = [&](double q) {
      const auto i = static_cast<std::size_t>(
          std::max<long long>(0, static_cast<long long>(q * static_cast<double>(s.count) + 0.999999) - 1));
      return samples[std::min(i, s.count - 1)];
    };
    s.p50 = rank(0.50);
    s.p95 = rank(0.95);
    s.min = samples.front();
    s.max = samples.back();
    return s;
  }

  std::vector<double> closure_, pricing_, solve_, total_;
  std::vector<double> queue_wait_, commit_;
  std::size_t cache_hits_ = 0;
  std::size_t repairs_ = 0;
  std::size_t infeasible_ = 0;
  std::size_t pricing_hits_ = 0;
  std::size_t pricing_repriced_ = 0;
  std::size_t pricing_flushes_ = 0;
  std::size_t row_hits_ = 0;
  std::size_t rows_retained_ = 0;
  std::size_t rows_evicted_ = 0;
  std::size_t peak_closure_bytes_ = 0;
};

}  // namespace sofe::api
