#include "sofe/online/pipeline.hpp"

// The admission pipeline's engine room (DESIGN.md §10).  Lives in api/
// because it drives api::Solver sessions — the same layering as the
// Solver& overload of online::simulate.
//
// Thread architecture: N worker threads plus the caller of run(), which
// serves as both epoch publisher and commit stage.  One mutex guards all
// shared state; workers claim queued slots, price them OUTSIDE the lock
// against private Problem replicas (synced once per epoch from the
// published EdgeCostDelta batch) and the shared read-only closure epoch,
// and post results back.  The publisher mutates shared state (master
// Problem, ledger, publisher closure) only while every worker is parked —
// the `publishing` flag blocks new claims and the `active` counter drains
// in-flight solves — so the snapshot workers read is immutable by
// construction, not by convention.
//
// Determinism: slots commit in arrival order against the same epoch
// snapshots the sequential driver uses, and every number that enters the
// cost series is computed from (epoch snapshot, request) alone.  A
// speculative result priced at an older generation is validated at the
// next publish: if any price moved since, the slot is re-queued and
// re-solved at current prices by the workers (in parallel — staleness
// never serializes the pipeline); if nothing moved, the input was bitwise
// identical, so by solver determinism the result is exactly what a fresh
// solve would return.  Either way the committed value is
// schedule-independent, which is the whole proof.

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sofe/api/registry.hpp"
#include "sofe/api/report.hpp"
#include "sofe/api/solver.hpp"
#include "sofe/online/stream.hpp"
#include "sofe/util/stopwatch.hpp"

namespace sofe::online {

namespace {
using SteadyClock = std::chrono::steady_clock;
}  // namespace

struct Pipeline::Impl {
  Impl(const topology::Topology& topo, const OnlineConfig& cfg, std::string solver_name,
       const api::SolverOptions& opt, PipelineOptions popt)
      : stream(topo, cfg), solver_name(std::move(solver_name)), opt(opt) {
    workers = popt.workers;
    if (workers <= 0) workers = static_cast<int>(std::thread::hardware_concurrency());
    workers = std::max(workers, 1);
    lookahead = std::max(popt.lookahead_epochs, 0);
    if (stream.has_failures()) {
      // Recovery escalation gets its own session of the same family.  It
      // runs on the commit thread inside open_epoch — all workers parked —
      // and sessions are pure speed knobs, so a dedicated instance returns
      // bitwise what the sequential driver's shared embedder returns.
      recovery_solver = api::make_solver(this->solver_name, opt);
      stream.set_recovery_embedder(
          [this](const core::Problem& p) { return recovery_solver->solve(p); });
    }
  }

  // --- construction-time (immutable during run) ---
  ArrivalStream stream;
  std::string solver_name;
  api::SolverOptions opt;
  int workers = 1;
  int lookahead = 1;
  api::ReportAccumulator* sink = nullptr;
  std::unique_ptr<api::Solver> recovery_solver;  // failure drills only
  bool ran = false;

  // --- shared state, guarded by mu ---
  std::mutex mu;
  std::condition_variable cv_work;  // workers: claimable slot / shutdown
  std::condition_variable cv_main;  // driver: result posted / worker parked
  bool publishing = true;           // true until the first epoch publishes
  bool done = false;
  int active = 0;                    // workers inside a solve
  std::uint64_t generation = 0;      // epochs published so far
  int next_slot = 0;                 // lowest never-claimed slot
  int dispatch_limit = 0;            // slots [0, dispatch_limit) are claimable
  std::deque<int> requeued;          // stale slots awaiting a re-solve (sorted)
  std::exception_ptr failure;        // first worker exception, rethrown by run()

  // One entry per published epoch: payloads[g] is the snapshot advance
  // from generation g to g + 1.  Workers fold the batches they missed
  // into their replicas at claim time (under mu; O(moved links) per
  // epoch), which is how "ONE EdgeCostDelta batch per epoch" reaches
  // every worker-side repair and pricing invalidation.
  struct Payload {
    std::vector<graph::EdgeCostDelta> deltas;
    std::vector<Cost> node_cost;  // full post-refresh vector (VM setups)
    bool moved = false;           // any link or node cost changed
  };
  std::deque<Payload> payloads;

  // The published closure epoch, copied by workers at claim time.  Only
  // meaningful when use_epoch (the solver family prices against shared
  // closures); rewritten by the publisher while quiesced.
  api::ClosureEpoch epoch;
  bool use_epoch = false;

  struct Slot {
    bool ready = false;
    std::uint64_t priced_generation = 0;
    ServiceForest forest;
    api::SolveReport report;
    double solve_seconds = 0.0;
    double queue_seconds = 0.0;
  };
  std::vector<Slot> slots;
  std::vector<SteadyClock::time_point> eligible_at;  // when the slot became claimable

  // Publisher-side scratch (driver thread only).
  api::ClosureSession publisher;
  std::vector<core::NodeId> union_hubs;
  std::vector<std::uint8_t> hub_mark;

  // Diagnostics folded into OnlineResult (driver thread only).
  int stale_repriced = 0;
  int speculative_commits = 0;
  std::size_t pub_row_hits = 0;       // publisher-session §13 tallies
  std::size_t pub_rows_retained = 0;
  std::size_t pub_rows_evicted = 0;
  std::size_t pub_peak_bytes = 0;

  bool moved_since(std::uint64_t priced_gen) const {
    for (std::uint64_t g = priced_gen; g < generation; ++g) {
      if (payloads[static_cast<std::size_t>(g)].moved) return true;
    }
    return false;
  }

  void worker_main(Problem replica);
  void publish_epoch(int first, int* count, int committed);
  OnlineResult run();
};

void Pipeline::Impl::worker_main(Problem replica) {
  // Worker-private solver session and Problem replica: the replica starts
  // at the pre-stream master and advances one published delta batch per
  // epoch, so its prices are bitwise the epoch snapshot's at the claimed
  // generation.
  const auto solver = api::make_solver(solver_name, opt);
  std::uint64_t synced = 0;

  std::unique_lock lock(mu);
  for (;;) {
    cv_work.wait(lock, [&] {
      return done || (!publishing && (!requeued.empty() || next_slot < dispatch_limit));
    });
    if (done) return;

    // Claim: stale re-solves first (the commit stage is blocked on them),
    // then the lowest unclaimed slot — the arrival queue is FIFO.
    int r = 0;
    if (!requeued.empty()) {
      r = requeued.front();
      requeued.pop_front();
    } else {
      r = next_slot++;
    }
    const std::uint64_t gen = generation;
    const api::ClosureEpoch epoch_copy = epoch;
    ++active;

    // Replica sync under the lock (payloads grow only under mu): apply
    // every delta batch published since this worker last priced.
    while (synced < gen) {
      const Payload& pl = payloads[static_cast<std::size_t>(synced)];
      for (const graph::EdgeCostDelta& d : pl.deltas) {
        replica.network.set_edge_cost(d.edge, d.new_cost);
      }
      replica.node_cost = pl.node_cost;
      ++synced;
    }
    const Request& req = stream.request(r);
    const double queue_seconds =
        std::chrono::duration<double>(SteadyClock::now() -
                                      eligible_at[static_cast<std::size_t>(r)])
            .count();
    lock.unlock();

    replica.sources = req.sources;
    replica.destinations = req.destinations;
    const util::Stopwatch watch;
    ServiceForest forest;
    try {
      forest = use_epoch ? solver->solve_epoch(replica, epoch_copy) : solver->solve(replica);
    } catch (...) {
      lock.lock();
      if (!failure) failure = std::current_exception();
      done = true;
      --active;
      cv_main.notify_all();
      cv_work.notify_all();
      return;
    }
    const double solve_seconds = watch.seconds();

    lock.lock();
    Slot& s = slots[static_cast<std::size_t>(r)];
    s.ready = true;
    s.priced_generation = gen;
    s.forest = std::move(forest);
    s.report = solver->report();
    s.solve_seconds = solve_seconds;
    s.queue_seconds = queue_seconds;
    --active;
    cv_main.notify_all();
  }
}

void Pipeline::Impl::publish_epoch(int first, int* count, int committed) {
  const int total = stream.requests();
  const int S = stream.epoch_size();

  std::unique_lock lock(mu);
  publishing = true;  // block new claims...
  cv_main.wait(lock, [&] { return active == 0; });  // ...and drain in-flight ones

  // Every worker is parked: shared state is ours to mutate.
  if (use_epoch) publisher.retire();

  Payload pl;
  bool node_moved = false;
  *count = stream.open_epoch(first, &pl.deltas, &node_moved);
  pl.node_cost = stream.master().node_cost;
  pl.moved = !pl.deltas.empty() || node_moved;
  payloads.push_back(std::move(pl));
  ++generation;

  const int window_end = std::min(total, first + (1 + lookahead) * S);

  if (use_epoch) {
    // Union hubs over the whole claimable window: the VMs plus every
    // source any worker may price before the next publish — current epoch
    // and speculative lookahead alike.  Extras are invisible to queries
    // (§8 union semantics), so covering generously never changes results.
    union_hubs = stream.master().vms();
    hub_mark.assign(static_cast<std::size_t>(stream.master().network.node_count()), 0);
    for (core::NodeId vm : union_hubs) hub_mark[static_cast<std::size_t>(vm)] = 1;
    for (int r = first; r < window_end; ++r) {
      for (core::NodeId s : stream.request(r).sources) {
        if (!hub_mark[static_cast<std::size_t>(s)]) {
          hub_mark[static_cast<std::size_t>(s)] = 1;
          union_hubs.push_back(s);
        }
      }
    }
    api::ClosureRequest req;
    req.threads = opt.threads;
    req.incremental = opt.incremental;
    // Epoch closures are always unbounded: truncated trees cannot be
    // repaired per epoch, and the re-homing fallback queries
    // hub-to-destination rows for arbitrary queued requests.
    req.bounded = false;
    req.retention = opt.retention_rows;
    api::SolveReport publish_report;
    epoch = publisher.publish(stream.master().network, union_hubs, req, publish_report);
    pub_row_hits += static_cast<std::size_t>(publish_report.closure_row_hits);
    pub_rows_retained += static_cast<std::size_t>(publish_report.closure_rows_retained);
    pub_rows_evicted += static_cast<std::size_t>(publish_report.closure_rows_evicted);
    pub_peak_bytes = std::max(pub_peak_bytes, publish_report.closure_bytes);
  }

  // Stale-price rule (§10): every posted speculative result is validated
  // now, against the batches published since it was priced.  Nothing
  // moved -> its inputs were bitwise the fresh ones, keep it (it will
  // count as a speculative commit).  Something moved -> discard and
  // re-queue; workers re-solve the slot at the new generation, in
  // parallel with the rest of the epoch.
  for (int r = committed; r < dispatch_limit; ++r) {
    Slot& s = slots[static_cast<std::size_t>(r)];
    if (s.ready && s.priced_generation < generation && moved_since(s.priced_generation)) {
      s.ready = false;
      s.forest = ServiceForest{};
      requeued.push_back(r);
      ++stale_repriced;
    }
  }

  // Extend the claimable window and wake the floor.
  const auto now = SteadyClock::now();
  for (int r = dispatch_limit; r < window_end; ++r) {
    eligible_at[static_cast<std::size_t>(r)] = now;
  }
  dispatch_limit = window_end;
  publishing = false;
  lock.unlock();
  cv_work.notify_all();
}

OnlineResult Pipeline::Impl::run() {
  assert(!ran && "Pipeline::run() may be called once");
  ran = true;

  const int total = stream.requests();
  slots.resize(static_cast<std::size_t>(total));
  eligible_at.resize(static_cast<std::size_t>(total));

  // Probe the registry once for the family's name and closure appetite;
  // workers build their own sessions.
  OnlineResult result;
  {
    const auto probe = api::make_solver(solver_name, opt);
    result.algorithm = std::string(probe->name());
    use_epoch = probe->wants_epoch_closure();
  }
  result.workers = workers;
  result.epoch_size = stream.epoch_size();
  result.arrival_seconds.assign(static_cast<std::size_t>(total), 0.0);

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    // Replicas are copied before the first epoch opens, so no worker can
    // observe a half-refreshed master.
    pool.emplace_back(&Impl::worker_main, this, stream.master());
  }

  Cost accumulated = 0.0;
  for (int first = 0; first < total && !failure;) {
    int count = 0;
    {
      const util::Stopwatch publish_watch;
      publish_epoch(first, &count, first);
      result.publish_seconds += publish_watch.seconds();
    }

    // Collect the whole epoch's results (in arrival order), then commit
    // the batch through the same ArrivalStream::commit_epoch the sequential
    // driver uses — admission decisions, departures and ledger evolution
    // are shared code, so the two drivers cannot drift (DESIGN.md §14).
    // Workers never read the ledger, so batching the commit changes nothing
    // they observe.
    std::vector<Slot> epoch_slots;
    std::vector<ServiceForest> forests;
    epoch_slots.reserve(static_cast<std::size_t>(count));
    forests.reserve(static_cast<std::size_t>(count));
    for (int r = first; r < first + count; ++r) {
      Slot s;
      {
        std::unique_lock lock(mu);
        cv_main.wait(lock, [&] {
          return slots[static_cast<std::size_t>(r)].ready || failure != nullptr;
        });
        if (failure) break;
        s = std::move(slots[static_cast<std::size_t>(r)]);
      }
      // The slot survived every stale scan since it was priced, so its
      // result is bitwise what a fresh solve at this generation returns.
      if (s.priced_generation < generation) ++speculative_commits;
      forests.push_back(std::move(s.forest));
      epoch_slots.push_back(std::move(s));
    }
    if (failure) break;

    const util::Stopwatch commit_watch;
    const auto outcomes = stream.commit_epoch(first, forests);
    // The sink keeps its one-commit-sample-per-arrival shape: the epoch's
    // commit wall time is split evenly across its slots.
    const double commit_share =
        count > 0 ? commit_watch.seconds() / static_cast<double>(count) : 0.0;
    for (int i = 0; i < count; ++i) {
      const SlotOutcome& out = outcomes[static_cast<std::size_t>(i)];
      const Slot& s = epoch_slots[static_cast<std::size_t>(i)];
      const bool admitted = out.status == SlotOutcome::Status::kAdmitted;
      if (out.status == SlotOutcome::Status::kInfeasible) ++result.infeasible_requests;
      if (admitted) accumulated += out.cost;
      result.per_request_cost.push_back(admitted ? out.cost : 0.0);
      result.accumulative_cost.push_back(accumulated);
      result.accepted.push_back(admitted ? 1 : 0);
      result.decision_utilization.push_back(out.decision_utilization);
      result.arrival_seconds[static_cast<std::size_t>(first + i)] = s.solve_seconds;
      if (sink != nullptr) {
        sink->add(s.report);
        sink->add_queue_wait(s.queue_seconds);
        sink->add_commit(commit_share);
      }
    }
    first += count;
  }

  {
    const std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv_work.notify_all();
  for (std::thread& th : pool) th.join();
  if (use_epoch) publisher.retire();
  if (failure) std::rethrow_exception(failure);

  stream.finish(result);
  result.stale_repriced = stale_repriced;
  result.speculative_commits = speculative_commits;
  result.closure_row_hits = pub_row_hits;
  result.closure_rows_retained = pub_rows_retained;
  result.closure_rows_evicted = pub_rows_evicted;
  result.peak_closure_bytes = pub_peak_bytes;
  return result;
}

Pipeline::Pipeline(const topology::Topology& topo, const OnlineConfig& cfg,
                   std::string solver_name, const api::SolverOptions& opt, PipelineOptions popt)
    : impl_(std::make_unique<Impl>(topo, cfg, std::move(solver_name), opt, popt)) {}

Pipeline::~Pipeline() = default;

void Pipeline::set_report_sink(api::ReportAccumulator* sink) noexcept { impl_->sink = sink; }

OnlineResult Pipeline::run() { return impl_->run(); }

OnlineResult serve_pipelined(const topology::Topology& topo, const OnlineConfig& cfg,
                             const std::string& solver_name, const api::SolverOptions& opt,
                             PipelineOptions popt) {
  return Pipeline(topo, cfg, solver_name, opt, popt).run();
}

}  // namespace sofe::online
